// sleeptop: a top(1)-style live view of a running campaign, polling the
// admin plane's GET /statusz endpoint.
//
//   sleeptop --port P [--host 127.0.0.1] [--interval SEC] [--once]
//
// Start a campaign with `sleepwalk_cli measure --admin-port P ...` and
// point sleeptop at the same port. With --once it prints a single
// snapshot and exits (scripts use this); otherwise it redraws every
// --interval seconds (default 2) until interrupted or the server goes
// away.
//
// Dependency-free on purpose (raw TCP + a field scanner over the known
// /statusz schema), like the other tools: it must run wherever the
// project builds.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

namespace {

/// One blocking HTTP GET; returns false when the connection fails.
bool HttpGet(const std::string& host, int port, const std::string& path,
             std::string& body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  const char* data = request.c_str();
  std::size_t remaining = request.size();
  while (remaining > 0) {
    const auto sent = ::write(fd, data, remaining);
    if (sent <= 0) {
      ::close(fd);
      return false;
    }
    data += sent;
    remaining -= static_cast<std::size_t>(sent);
  }
  std::string response;
  char buf[4096];
  while (true) {
    const auto got = ::read(fd, buf, sizeof(buf));
    if (got <= 0) break;
    response.append(buf, static_cast<std::size_t>(got));
  }
  ::close(fd);
  const auto split = response.find("\r\n\r\n");
  if (split == std::string::npos || !response.starts_with("HTTP/1.1 200")) {
    return false;
  }
  body = response.substr(split + 4);
  return true;
}

/// First number following `"key":` after `from`; `fallback` when absent.
double FindNumber(const std::string& json, const std::string& key,
                  std::size_t from = 0, double fallback = 0.0) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = json.find(needle, from);
  if (pos == std::string::npos) return fallback;
  return std::strtod(json.c_str() + pos + needle.size(), nullptr);
}

std::string FormatCount(double value) {
  char buf[32];
  if (value >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fG", value / 1e9);
  } else if (value >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", value / 1e6);
  } else if (value >= 1e4) {
    std::snprintf(buf, sizeof(buf), "%.1fk", value / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  }
  return buf;
}

void Render(const std::string& json, const std::string& host, int port) {
  if (json.find("\"attached\":true") == std::string::npos) {
    std::cout << "no campaign attached at " << host << ":" << port << "\n";
    return;
  }
  const double blocks_done = FindNumber(json, "blocks_done");
  const double blocks_total = FindNumber(json, "blocks_total");
  const double pct =
      blocks_total > 0 ? 100.0 * blocks_done / blocks_total : 0.0;
  std::printf("sleepwalk campaign @ %s:%d\n", host.c_str(), port);
  std::printf("blocks   %s/%s (%.1f%%)   rounds %s (%s/s)\n",
              FormatCount(blocks_done).c_str(),
              FormatCount(blocks_total).c_str(), pct,
              FormatCount(FindNumber(json, "rounds_done")).c_str(),
              FormatCount(FindNumber(json, "rounds_per_sec")).c_str());
  std::printf("diurnal  strict %s  relaxed %s  non-diurnal %s  skipped %s\n",
              FormatCount(FindNumber(json, "strict")).c_str(),
              FormatCount(FindNumber(json, "relaxed")).c_str(),
              FormatCount(FindNumber(json, "non_diurnal")).c_str(),
              FormatCount(FindNumber(json, "skipped")).c_str());
  const double attempts = FindNumber(json, "attempts");
  const double lost = FindNumber(json, "lost");
  std::printf("probes   attempts %s  answered %s  lost %s (%.2f%%)\n",
              FormatCount(attempts).c_str(),
              FormatCount(FindNumber(json, "answered")).c_str(),
              FormatCount(lost).c_str(),
              attempts > 0 ? 100.0 * lost / attempts : 0.0);
  std::printf(
      "resil    retries %s  quarantined %s  ckpts %s  durability tax "
      "%.2f%%\n",
      FormatCount(FindNumber(json, "retries")).c_str(),
      FormatCount(FindNumber(json, "quarantined_blocks")).c_str(),
      FormatCount(FindNumber(json, "written")).c_str(),
      FindNumber(json, "durability_tax_pct"));

  // Per-shard scheduling counters from the "shards":[...] array.
  const auto shards = json.find("\"shards\":[");
  if (shards != std::string::npos) {
    std::printf("shards  ");
    std::size_t cursor = shards;
    while (true) {
      const auto open = json.find("{\"worker\":", cursor);
      const auto end = json.find(']', cursor);
      if (open == std::string::npos || (end != std::string::npos && open > end)) {
        break;
      }
      std::printf(" w%.0f:%s blk/%s steal",
                  FindNumber(json, "worker", open),
                  FormatCount(FindNumber(json, "blocks_run", open)).c_str(),
                  FormatCount(FindNumber(json, "steals", open)).c_str());
      cursor = json.find('}', open);
      if (cursor == std::string::npos) break;
    }
    std::printf("\n");
  }

  // Histogram quantile summaries from the "quantiles":[...] array.
  const auto quantiles = json.find("\"quantiles\":[");
  if (quantiles != std::string::npos) {
    std::size_t cursor = quantiles;
    while (true) {
      const auto open = json.find("{\"name\":\"", cursor);
      if (open == std::string::npos) break;
      const auto name_start = open + 9;
      const auto name_end = json.find('"', name_start);
      if (name_end == std::string::npos) break;
      std::printf("  %-36s p50 %-10g p95 %-10g p99 %-10g\n",
                  json.substr(name_start, name_end - name_start).c_str(),
                  FindNumber(json, "p50", open),
                  FindNumber(json, "p95", open),
                  FindNumber(json, "p99", open));
      cursor = json.find('}', open);
      if (cursor == std::string::npos) break;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  double interval = 2.0;
  bool once = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--once") {
      once = true;
    } else if (arg == "--port" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--interval" && i + 1 < argc) {
      interval = std::atof(argv[++i]);
    } else {
      std::cerr << "usage: sleeptop --port P [--host H] [--interval SEC] "
                   "[--once]\n";
      return 2;
    }
  }
  if (port <= 0) {
    std::cerr << "sleeptop: --port P is required\n";
    return 2;
  }

  int misses = 0;
  while (true) {
    std::string body;
    if (!HttpGet(host, port, "/statusz", body)) {
      if (once) {
        std::cerr << "sleeptop: cannot reach " << host << ":" << port
                  << "\n";
        return 1;
      }
      if (++misses >= 3) {
        std::cerr << "sleeptop: server gone\n";
        return 1;
      }
    } else {
      misses = 0;
      if (!once) std::printf("\033[H\033[2J");  // home + clear
      Render(body, host, port);
      std::fflush(stdout);
    }
    if (once) return 0;
    std::this_thread::sleep_for(std::chrono::duration<double>(interval));
  }
}
