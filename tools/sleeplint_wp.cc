#include "sleeplint_wp.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "sleeplint_policy.h"

namespace sleeplint {

namespace {

/// Layer directory of an include target spelled "sleepwalk/<dir>/...",
/// or "" for non-project and umbrella includes.
std::string TargetDirOf(const std::string& header) {
  static constexpr std::string_view kPrefix = "sleepwalk/";
  if (header.rfind(kPrefix, 0) != 0) return "";
  const std::size_t begin = kPrefix.size();
  const std::size_t slash = header.find('/', begin);
  if (slash == std::string::npos) return "";
  return header.substr(begin, slash - begin);
}

// ---------------------------------------------------------------------------
// Layer-DAG enforcement
// ---------------------------------------------------------------------------

void AnalyzeLayering(const std::vector<FileFacts>& files,
                     std::vector<Diagnostic>& out) {
  for (const auto& file : files) {
    const std::string from_dir = policy::LayerDirOf(file.path);
    if (from_dir.empty()) continue;  // unlayered (tools, umbrella, ...)
    const int from_rank = policy::RankOf(from_dir);
    if (from_rank < 0) continue;
    for (const auto& include : file.includes) {
      const std::string to_dir = TargetDirOf(include.header);
      if (to_dir.empty() || to_dir == from_dir) continue;
      const int to_rank = policy::RankOf(to_dir);
      if (to_rank < 0 || to_rank <= from_rank) continue;
      if (include.allowed) continue;
      if (const auto* exemption =
              policy::FindExemption(file.path, to_dir)) {
        (void)exemption;
        continue;
      }
      Diagnostic diagnostic;
      diagnostic.path = file.path;
      diagnostic.line = include.line;
      diagnostic.rule = std::string(rules::kLayering);
      diagnostic.message =
          "include of \"" + include.header + "\" climbs the layer map (" +
          from_dir + " rank " + std::to_string(from_rank) + " -> " +
          to_dir + " rank " + std::to_string(to_rank) +
          "); restructure, or add a named exemption in "
          "tools/sleeplint_policy.cc";
      out.push_back(std::move(diagnostic));
    }
  }
}

// ---------------------------------------------------------------------------
// Include-cycle detection (file granularity, scanned set only)
// ---------------------------------------------------------------------------

void AnalyzeIncludeCycles(const std::vector<FileFacts>& files,
                          std::vector<Diagnostic>& out) {
  // Resolve spelled targets against the scanned files by suffix: the
  // include "sleepwalk/x/y.h" names the scanned file whose normalized
  // path ends with "src/sleepwalk/x/y.h" (real tree and fixture trees
  // alike).
  std::map<std::string, int> by_relative;  // "src/sleepwalk/..." -> index
  for (std::size_t i = 0; i < files.size(); ++i) {
    const std::size_t at = files[i].path.rfind("src/sleepwalk/");
    if (at == std::string::npos) continue;
    by_relative[files[i].path.substr(at)] = static_cast<int>(i);
  }
  struct Edge {
    int to;
    int line;
  };
  std::vector<std::vector<Edge>> adjacency(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    for (const auto& include : files[i].includes) {
      const auto it = by_relative.find("src/" + include.header);
      if (it == by_relative.end()) continue;
      adjacency[i].push_back(Edge{it->second, include.line});
    }
  }

  enum class Color { kWhite, kGray, kBlack };
  std::vector<Color> color(files.size(), Color::kWhite);
  /// (file, line of the include leading to the next frame).
  std::vector<std::pair<int, int>> frames;
  std::set<std::set<int>> reported;

  const std::function<void(int)> visit = [&](int node) {
    color[node] = Color::kGray;
    for (const auto& edge : adjacency[node]) {
      if (color[edge.to] == Color::kGray) {
        frames.back().second = edge.line;
        std::size_t begin = 0;
        while (begin < frames.size() && frames[begin].first != edge.to) {
          ++begin;
        }
        std::set<int> key;
        for (std::size_t k = begin; k < frames.size(); ++k) {
          key.insert(frames[k].first);
        }
        if (reported.insert(key).second) {
          std::ostringstream message;
          message << "include cycle: ";
          for (std::size_t k = begin; k < frames.size(); ++k) {
            message << files[frames[k].first].path << ':'
                    << frames[k].second << " -> ";
          }
          message << files[edge.to].path;
          Diagnostic diagnostic;
          diagnostic.path = files[frames[begin].first].path;
          diagnostic.line = frames[begin].second;
          diagnostic.rule = std::string(rules::kIncludeCycle);
          diagnostic.message = message.str();
          out.push_back(std::move(diagnostic));
        }
        continue;
      }
      if (color[edge.to] == Color::kWhite) {
        frames.back().second = edge.line;
        frames.push_back({edge.to, 0});
        visit(edge.to);
        frames.pop_back();
      }
    }
    color[node] = Color::kBlack;
  };
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (color[i] == Color::kWhite) {
      frames.assign(1, {static_cast<int>(i), 0});
      visit(static_cast<int>(i));
    }
  }
}

// ---------------------------------------------------------------------------
// Lock-order analysis
// ---------------------------------------------------------------------------

struct ResolvedAcquisition {
  std::string id;  ///< qualified mutex identity
  int line = 0;
  bool allowed = false;
};

struct LockEdge {
  std::string from;
  std::string to;
  std::string file;    ///< file whose nesting produced the edge
  int held_line = 0;   ///< where `from` was acquired
  int line = 0;        ///< where `to` was acquired while holding `from`
};

void AnalyzeLockOrder(const std::vector<FileFacts>& files,
                      std::vector<Diagnostic>& out, std::string& dot) {
  // Merged declaration database.
  struct Declaration {
    std::string qualified;
    std::string file;
  };
  std::map<std::string, std::vector<Declaration>> by_member;
  std::set<std::string> nodes;
  for (const auto& file : files) {
    for (const auto& mutex : file.mutexes) {
      by_member[mutex.member].push_back(
          Declaration{mutex.qualified, file.path});
      nodes.insert(mutex.qualified);
    }
  }

  const auto resolve = [&](const FileFacts& file,
                           const LockAcquisitionFact& acquisition)
      -> std::string {
    const auto it = by_member.find(acquisition.member);
    if (it != by_member.end()) {
      if (!acquisition.owner_hint.empty()) {
        const std::string wanted =
            acquisition.owner_hint + "::" + acquisition.member;
        for (const auto& declaration : it->second) {
          if (declaration.qualified == wanted) return wanted;
        }
      }
      const Declaration* same_file = nullptr;
      bool same_file_unique = true;
      for (const auto& declaration : it->second) {
        if (declaration.file != file.path) continue;
        if (same_file != nullptr) same_file_unique = false;
        same_file = &declaration;
      }
      if (same_file != nullptr && same_file_unique) {
        return same_file->qualified;
      }
      if (it->second.size() == 1) return it->second.front().qualified;
    }
    return "?::" + acquisition.member;
  };

  std::vector<LockEdge> edges;
  for (const auto& file : files) {
    std::vector<ResolvedAcquisition> resolved;
    resolved.reserve(file.acquisitions.size());
    for (const auto& acquisition : file.acquisitions) {
      resolved.push_back(ResolvedAcquisition{resolve(file, acquisition),
                                             acquisition.line,
                                             acquisition.allowed});
      nodes.insert(resolved.back().id);
    }
    for (const auto& edge : file.edges) {
      const auto& held = resolved[static_cast<std::size_t>(edge.held_index)];
      const auto& acquired =
          resolved[static_cast<std::size_t>(edge.acquired_index)];
      if (held.allowed || acquired.allowed) continue;
      edges.push_back(LockEdge{held.id, acquired.id, file.path,
                               held.line, acquired.line});
    }
  }

  // Deduplicate edges, keep the first site per (from, to).
  std::sort(edges.begin(), edges.end(),
            [](const LockEdge& a, const LockEdge& b) {
              return std::tie(a.from, a.to, a.file, a.line) <
                     std::tie(b.from, b.to, b.file, b.line);
            });
  edges.erase(std::unique(edges.begin(), edges.end(),
                          [](const LockEdge& a, const LockEdge& b) {
                            return a.from == b.from && a.to == b.to;
                          }),
              edges.end());

  // DOT rendering (nodes sorted, edges sorted — byte-stable output).
  std::ostringstream dot_out;
  dot_out << "digraph lock_order {\n  rankdir=LR;\n"
          << "  node [shape=box, fontname=\"monospace\"];\n";
  for (const auto& node : nodes) {
    dot_out << "  \"" << node << "\";\n";
  }
  for (const auto& edge : edges) {
    dot_out << "  \"" << edge.from << "\" -> \"" << edge.to
            << "\" [label=\"" << edge.file << ':' << edge.line << "\"];\n";
  }
  dot_out << "}\n";
  dot = dot_out.str();

  // Cycle detection over the merged graph.
  std::map<std::string, std::vector<const LockEdge*>> adjacency;
  for (const auto& edge : edges) {
    adjacency[edge.from].push_back(&edge);
  }
  std::set<std::string> done;
  std::set<std::set<std::string>> reported;
  std::vector<const LockEdge*> path;
  std::set<std::string> on_path;

  const std::function<void(const std::string&)> visit =
      [&](const std::string& node) {
        on_path.insert(node);
        const auto it = adjacency.find(node);
        if (it != adjacency.end()) {
          for (const LockEdge* edge : it->second) {
            if (on_path.count(edge->to) > 0) {
              // Cycle: the path suffix starting at edge->to, plus edge.
              std::vector<const LockEdge*> cycle;
              bool in_cycle = false;
              for (const LockEdge* step : path) {
                if (step->from == edge->to) in_cycle = true;
                if (in_cycle) cycle.push_back(step);
              }
              cycle.push_back(edge);
              std::set<std::string> key;
              for (const LockEdge* step : cycle) key.insert(step->from);
              if (reported.insert(key).second) {
                std::ostringstream message;
                message << "potential deadlock, lock-order cycle: ";
                for (std::size_t i = 0; i < cycle.size(); ++i) {
                  if (i > 0) message << "; ";
                  message << cycle[i]->from << " -> " << cycle[i]->to
                          << " (" << cycle[i]->file << ':'
                          << cycle[i]->line << ", holding since :"
                          << cycle[i]->held_line << ")";
                }
                message << " — acquisition order must form a DAG";
                Diagnostic diagnostic;
                diagnostic.path = cycle.front()->file;
                diagnostic.line = cycle.front()->line;
                diagnostic.rule = std::string(rules::kLockOrder);
                diagnostic.message = message.str();
                out.push_back(std::move(diagnostic));
              }
              continue;
            }
            if (done.count(edge->to) == 0) {
              path.push_back(edge);
              visit(edge->to);
              path.pop_back();
            }
          }
        }
        on_path.erase(node);
        done.insert(node);
      };
  for (const auto& [node, unused] : adjacency) {
    (void)unused;
    if (done.count(node) == 0) visit(node);
  }
}

}  // namespace

WholeProgramResult AnalyzeWholeProgram(const std::vector<FileFacts>& files) {
  WholeProgramResult result;
  AnalyzeLayering(files, result.diagnostics);
  AnalyzeIncludeCycles(files, result.diagnostics);
  AnalyzeLockOrder(files, result.diagnostics, result.lock_dot);
  for (const auto& file : files) {
    for (const auto& diagnostic : file.diagnostics) {
      result.diagnostics.push_back(diagnostic);
    }
  }
  return result;
}

}  // namespace sleeplint
