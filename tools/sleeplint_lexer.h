// sleeplint's single-pass C++ lexer — the shared front end for both the
// per-line token rules (sleeplint.cc) and the whole-program fact
// extractor (sleeplint_facts.cc).
//
// One pass over the file produces four coordinated views:
//   * `code`     — the source split into lines with comments, string
//                  literals (including raw strings — the R"(...)"
//                  contents that the old per-line state machine could
//                  not blank), and char literals replaced by spaces, so
//                  column positions survive for substring rules;
//   * `comments` — the comment text per line, which is where the
//                  `// sleeplint: allow(...)` / `allow-file(...)`
//                  markers live (markers inside string literals are
//                  deliberately NOT honored — a quoted marker is data);
//   * `includes` — quoted #include targets with their line numbers,
//                  captured from the raw text before blanking (the
//                  layer-DAG analysis needs the spelled path);
//   * `tokens`   — identifiers / numbers / punctuators with 1-based
//                  line numbers, lexed from the blanked code so string
//                  contents can never masquerade as program structure.
//
// The lexer understands line and block comments spanning lines, plain
// and raw string literals (with u8/u/U/L prefixes and custom
// delimiters), char literals with escapes, and digit separators
// (1'000'000 does not open a char literal). It does not expand macros
// or splice continuation lines — the fact extractor is heuristic by
// design (see sleeplint.h for the philosophy).
#ifndef SLEEPWALK_TOOLS_SLEEPLINT_LEXER_H_
#define SLEEPWALK_TOOLS_SLEEPLINT_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

namespace sleeplint {

struct Token {
  enum class Kind { kIdentifier, kNumber, kPunct };
  Kind kind = Kind::kPunct;
  std::string text;
  int line = 0;  ///< 1-based
};

struct IncludeRef {
  std::string header;  ///< as spelled between the quotes
  int line = 0;        ///< 1-based
};

struct LexedSource {
  std::vector<std::string> code;      ///< blanked source, one per line
  std::vector<std::string> comments;  ///< comment text, one per line
  std::vector<IncludeRef> includes;   ///< quoted #include directives
  std::vector<Token> tokens;          ///< code tokens, blanked lines
  /// True for lines that are (or continue) a preprocessor directive —
  /// the fact extractor skips their tokens so macro bodies cannot be
  /// mistaken for declarations.
  std::vector<bool> preprocessor;
};

/// Lexes one file. Never fails: malformed input degrades to
/// conservatively blanked text, matching the old Prepare() contract.
LexedSource Lex(std::string_view content);

}  // namespace sleeplint

#endif  // SLEEPWALK_TOOLS_SLEEPLINT_LEXER_H_
