#include "sleeplint_policy.h"

#include <algorithm>

namespace sleeplint::policy {

namespace {

bool PathContains(const std::string& path, std::string_view needle) {
  return path.find(needle) != std::string::npos;
}

bool EndsWith(const std::string& path, std::string_view suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

/// One grant row: a capability and the path substring that carries it.
struct Grant {
  Capability capability;
  std::string_view path_substring;
};

// Live-probe networking and the admin plane time real sockets and run a
// serving loop (wall phenomena); storage/ is the single filesystem
// layer; util/rng is the one sanctioned RNG implementation; the
// failpoint machinery and the storage envs that execute its crash
// actions are the only CrashInjected throwers.
constexpr Grant kGrants[] = {
    {Capability::kClock, "net/socket"},
    {Capability::kClock, "net/icmp"},
    {Capability::kClock, "/serve/"},
    {Capability::kSocket, "net/socket"},
    {Capability::kSocket, "net/icmp"},
    {Capability::kSocket, "rdns/dns_resolver"},
    {Capability::kSocket, "/serve/"},
    {Capability::kFilesystem, "/storage/"},
    {Capability::kRng, "util/rng"},
    {Capability::kCrashThrow, "util/failpoint"},
    {Capability::kCrashThrow, "/storage/"},
};

}  // namespace

const std::vector<LayerEntry>& Layers() {
  static const std::vector<LayerEntry> kLayers = {
      {"util", 0},                                          // foundation
      {"fft", 1},     {"ts", 1},      {"stats", 1},         // math
      {"net", 2},     {"geo", 2},     {"asn", 2},           // domain
      {"rdns", 2},    {"sim", 2},     {"world", 2},
      {"faults", 3},  {"storage", 3}, {"probing", 3},       // mechanisms
      {"obs", 4},                                           // telemetry
      {"report", 5},  {"core", 5},                          // orchestration
      {"serve", 6},                                         // observers
  };
  return kLayers;
}

int RankOf(std::string_view dir) {
  for (const auto& entry : Layers()) {
    if (entry.dir == dir) return entry.rank;
  }
  return -1;
}

const std::vector<IncludeExemption>& IncludeExemptions() {
  // Every entry is an intentional upward edge, named so diagnostics and
  // DESIGN.md §14 can cite it. Keep this list painful to grow: each row
  // is a hole in the layer DAG.
  static const std::vector<IncludeExemption> kExemptions = {
      {"obs-context-threading", "net/instrumented_transport.h", "obs",
       "the obs::Context null-object seam is threaded through the "
       "transport decorators by design (DESIGN.md §7)"},
      {"obs-context-threading", "faults/faulty_transport.h", "obs",
       "fault attribution reports through the same obs::Context seam"},
      {"obs-context-threading", "probing/prober.h", "obs",
       "per-probe telemetry flows through the obs::Context seam"},
      {"obs-context-threading", "storage/instrumented_env.h", "obs",
       "storage op counters feed the obs registry through the seam"},
      {"probe-accounting-pod", "net/instrumented_transport.h", "report",
       "report::ProbeAccounting is the shared accounting POD the "
       "instrumented transport fills in"},
      {"probe-accounting-pod", "faults/faulty_transport.h", "report",
       "fault attribution reconciles against report::ProbeAccounting"},
      {"round-scheduler-shared", "sim/survey.h", "probing",
       "the simulated survey replays probing::RoundScheduler's cadence "
       "so sim ground truth and campaign rounds stay aligned"},
  };
  return kExemptions;
}

const IncludeExemption* FindExemption(const std::string& from_path,
                                      std::string_view to_dir) {
  for (const auto& exemption : IncludeExemptions()) {
    if (exemption.to_dir == to_dir &&
        EndsWith(from_path, exemption.from_suffix)) {
      return &exemption;
    }
  }
  return nullptr;
}

std::string LayerDirOf(const std::string& path) {
  static constexpr std::string_view kRoot = "src/sleepwalk/";
  const std::size_t at = path.rfind(kRoot);
  if (at == std::string::npos) return "";
  const std::size_t begin = at + kRoot.size();
  const std::size_t slash = path.find('/', begin);
  if (slash == std::string::npos) return "";  // umbrella sleepwalk.h
  return path.substr(begin, slash - begin);
}

bool Grants(const std::string& path, Capability capability) {
  for (const auto& grant : kGrants) {
    if (grant.capability == capability &&
        PathContains(path, grant.path_substring)) {
      return true;
    }
  }
  return false;
}

bool IsLibraryPath(const std::string& path) {
  return PathContains(path, "src/sleepwalk/");
}

bool IsSerializationPath(const std::string& path) {
  return PathContains(path, "core/checkpoint") ||
         PathContains(path, "core/dataset");
}

}  // namespace sleeplint::policy
