// Strict JSONL line validation, shared by the jsonl_check CLI and
// tests/obs/concurrency_stress_test.cc (which re-validates sink output
// written under thread contention).
//
// The parser is a strict recursive-descent JSON subset check (objects,
// arrays, strings with escapes, numbers, true/false/null) — enough to
// reject the classes of corruption a serializer bug would produce:
// unbalanced braces, broken escapes, trailing garbage, non-object roots.
#ifndef SLEEPWALK_TOOLS_JSONL_H_
#define SLEEPWALK_TOOLS_JSONL_H_

#include <cctype>
#include <cstring>
#include <string>

namespace jsonl {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  /// One JSON object, the whole line, nothing else.
  bool ParseObjectLine() {
    SkipSpace();
    if (!ParseObject()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  bool ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': return ParseString();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return ParseNumber();
    }
  }

  bool ParseObject() {
    if (!Consume('{')) return false;
    SkipSpace();
    if (Consume('}')) return true;
    do {
      SkipSpace();
      if (!ParseString()) return false;
      SkipSpace();
      if (!Consume(':')) return false;
      if (!ParseValue()) return false;
      SkipSpace();
    } while (Consume(','));
    return Consume('}');
  }

  bool ParseArray() {
    if (!Consume('[')) return false;
    SkipSpace();
    if (Consume(']')) return true;
    do {
      if (!ParseValue()) return false;
      SkipSpace();
    } while (Consume(','));
    return Consume(']');
  }

  bool ParseString() {
    if (!Consume('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      ++pos_;
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_++]))) {
              return false;
            }
          }
        } else if (std::strchr("\"\\/bfnrt", esc) == nullptr) {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool ParseNumber() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (!DigitRun()) return false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!DigitRun()) return false;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!DigitRun()) return false;
    }
    return pos_ > start;
  }

  bool DigitRun() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

/// True when `line` is exactly one well-formed JSON object.
inline bool IsJsonObjectLine(const std::string& line) {
  return Parser{line}.ParseObjectLine();
}

}  // namespace jsonl

#endif  // SLEEPWALK_TOOLS_JSONL_H_
