// Strict JSONL line validation, shared by the jsonl_check CLI and
// tests/obs/concurrency_stress_test.cc (which re-validates sink output
// written under thread contention).
//
// The parser is a strict recursive-descent JSON subset check (objects,
// arrays, strings with escapes, numbers, true/false/null) — enough to
// reject the classes of corruption a serializer bug would produce:
// unbalanced braces, broken escapes, trailing garbage, non-object roots.
#ifndef SLEEPWALK_TOOLS_JSONL_H_
#define SLEEPWALK_TOOLS_JSONL_H_

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace jsonl {

/// The fields of one Chrome trace event that CheckChromeTrace inspects.
/// `name`/`ph` keep their raw (still-escaped) string bytes — B/E
/// matching only needs equality, not decoding.
struct ChromeEvent {
  std::string name;
  std::string ph;
  double ts = 0.0;
  double tid = 0.0;
  bool has_ts = false;
  bool has_tid = false;
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  /// One JSON object, the whole line, nothing else.
  bool ParseObjectLine() {
    SkipSpace();
    if (!ParseObject()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

  /// A whole Chrome trace-event document: one JSON array of event
  /// objects, nothing else. Captures name/ph/ts/tid per event.
  bool ParseChromeDocument(std::vector<ChromeEvent>& events) {
    SkipSpace();
    if (!Consume('[')) return false;
    SkipSpace();
    if (!Consume(']')) {
      do {
        SkipSpace();
        ChromeEvent event;
        if (!ParseEventObject(event)) return false;
        events.push_back(std::move(event));
        SkipSpace();
      } while (Consume(','));
      if (!Consume(']')) return false;
    }
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  /// An event object; top-level name/ph/ts/tid values are captured,
  /// everything else (args etc.) is validated and skipped.
  bool ParseEventObject(ChromeEvent& event) {
    if (!Consume('{')) return false;
    SkipSpace();
    if (Consume('}')) return true;
    do {
      SkipSpace();
      const std::size_t key_start = pos_ + 1;
      if (!ParseString()) return false;
      const std::string key =
          text_.substr(key_start, pos_ - 1 - key_start);
      SkipSpace();
      if (!Consume(':')) return false;
      SkipSpace();
      const std::size_t value_start = pos_;
      if (!ParseValue()) return false;
      if (key == "name" || key == "ph") {
        if (text_[value_start] != '"') return false;
        const std::string raw =
            text_.substr(value_start + 1, pos_ - 2 - value_start);
        (key == "name" ? event.name : event.ph) = raw;
      } else if (key == "ts" || key == "tid") {
        const double value =
            std::strtod(text_.c_str() + value_start, nullptr);
        if (key == "ts") {
          event.ts = value;
          event.has_ts = true;
        } else {
          event.tid = value;
          event.has_tid = true;
        }
      }
      SkipSpace();
    } while (Consume(','));
    return Consume('}');
  }
  bool ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': return ParseString();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return ParseNumber();
    }
  }

  bool ParseObject() {
    if (!Consume('{')) return false;
    SkipSpace();
    if (Consume('}')) return true;
    do {
      SkipSpace();
      if (!ParseString()) return false;
      SkipSpace();
      if (!Consume(':')) return false;
      if (!ParseValue()) return false;
      SkipSpace();
    } while (Consume(','));
    return Consume('}');
  }

  bool ParseArray() {
    if (!Consume('[')) return false;
    SkipSpace();
    if (Consume(']')) return true;
    do {
      if (!ParseValue()) return false;
      SkipSpace();
    } while (Consume(','));
    return Consume(']');
  }

  bool ParseString() {
    if (!Consume('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      ++pos_;
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_++]))) {
              return false;
            }
          }
        } else if (std::strchr("\"\\/bfnrt", esc) == nullptr) {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool ParseNumber() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (!DigitRun()) return false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!DigitRun()) return false;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!DigitRun()) return false;
    }
    return pos_ > start;
  }

  bool DigitRun() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

/// True when `line` is exactly one well-formed JSON object.
inline bool IsJsonObjectLine(const std::string& line) {
  return Parser{line}.ParseObjectLine();
}

/// Validates a SARIF report (sleeplint --sarif-out): one well-formed
/// JSON object carrying the 2.1.0 version marker and a runs array.
/// Deliberately structural, not schema-complete — it gates the classes
/// of breakage a renderer bug would produce (bad escaping, truncation,
/// wrong root) before CI uploads the file to code scanning.
inline bool CheckSarif(const std::string& text, std::string& error) {
  if (!Parser{text}.ParseObjectLine()) {
    error = "not one well-formed JSON object";
    return false;
  }
  if (text.find("\"version\":\"2.1.0\"") == std::string::npos) {
    error = "missing SARIF 2.1.0 version marker";
    return false;
  }
  if (text.find("\"runs\"") == std::string::npos) {
    error = "missing runs array";
    return false;
  }
  return true;
}

/// Validates a Chrome trace-event export (obs::WriteChromeTrace):
///   * the document is one well-formed JSON array of event objects;
///   * every event is phase B or E with ts and tid present;
///   * ts is strictly monotone per tid (the exporter's deterministic
///     sequence ticks are globally unique);
///   * B/E events pair up stack-wise per tid with matching names, and
///     nothing is left open at the end.
/// On failure returns false with a diagnostic in `error`.
inline bool CheckChromeTrace(const std::string& text, std::string& error,
                             std::size_t* n_events = nullptr) {
  std::vector<ChromeEvent> events;
  if (!Parser{text}.ParseChromeDocument(events)) {
    error = "not a well-formed JSON array of objects";
    return false;
  }
  // tid is an integer in practice; key per-tid state on its bits.
  struct TidState {
    double tid = 0.0;
    double last_ts = 0.0;
    bool has_ts = false;
    std::vector<std::string> open;  // names of unmatched B events
  };
  std::vector<TidState> tids;
  const auto state_for = [&](double tid) -> TidState& {
    for (auto& state : tids) {
      if (state.tid == tid) return state;
    }
    tids.push_back(TidState{tid, 0.0, false, {}});
    return tids.back();
  };
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& event = events[i];
    const std::string at = "event " + std::to_string(i);
    if (event.ph != "B" && event.ph != "E") {
      error = at + ": phase '" + event.ph + "' is not B or E";
      return false;
    }
    if (!event.has_ts || !event.has_tid) {
      error = at + ": missing ts or tid";
      return false;
    }
    TidState& state = state_for(event.tid);
    if (state.has_ts && event.ts <= state.last_ts) {
      error = at + ": ts not strictly monotone within tid";
      return false;
    }
    state.last_ts = event.ts;
    state.has_ts = true;
    if (event.ph == "B") {
      state.open.push_back(event.name);
    } else {
      if (state.open.empty()) {
        error = at + ": E without a matching B";
        return false;
      }
      if (state.open.back() != event.name) {
        error = at + ": E name \"" + event.name +
                "\" does not match open B \"" + state.open.back() + "\"";
        return false;
      }
      state.open.pop_back();
    }
  }
  for (const auto& state : tids) {
    if (!state.open.empty()) {
      error = "unclosed B event \"" + state.open.back() + "\"";
      return false;
    }
  }
  if (n_events != nullptr) *n_events = events.size();
  return true;
}

}  // namespace jsonl

#endif  // SLEEPWALK_TOOLS_JSONL_H_
