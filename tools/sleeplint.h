// sleeplint — project-invariant lint for the sleepwalk tree.
//
// The pipeline is only reproducible because every layer is deterministic
// under a seeded virtual clock (DESIGN.md §8): one stray
// `std::random_device` or `system_clock::now()` in core code silently
// breaks same-seed reproduction in ways no unit test notices until a
// checkpoint diff fails weeks later. sleeplint enforces those invariants
// *statically*, as named rules with file:line diagnostics, so the CI
// `static-analysis` job fails at the offending line instead.
//
// It is deliberately libclang-free — a single-pass lexer
// (sleeplint_lexer.h) feeds both token/substring rules and a heuristic
// fact extractor, so it builds everywhere the project builds. False
// positives have sanctioned escapes: `// sleeplint: allow(<rule>)` on
// the same or the immediately preceding line, and
// `// sleeplint: allow-file(<rule>)` anywhere in a file to waive one
// rule for the whole file — always with the justification in the
// surrounding comment. Naming an unknown rule in either marker is
// itself an error (`bad-allow`): a typoed escape must not silently
// suppress nothing.
//
// Per-line rules (DESIGN.md §8):
//   no-wallclock            wall/monotonic clock reads outside the paths
//                           granted Capability::kClock (live-probe
//                           sockets, the admin serve loop)
//   no-ambient-rng          rand()/random_device/mt19937 outside util/rng
//   no-raw-io               printf/std::cout/std::cerr in library code
//   no-raw-fs               fstream/fopen/... outside storage/
//   no-raw-socket           socket/epoll syscalls outside the granted
//                           network layers
//   no-unchecked-narrowing  raw static_cast to a narrower integer in
//                           serialization files — use util::CheckedNarrow
//   header-hygiene          include guard or #pragma once in every header
//   bad-allow               allow/allow-file marker naming no known rule
//
// Whole-program rules (DESIGN.md §14), computed by the two-phase
// analyzer (`--wp`): per-file fact extraction (sleeplint_facts.h) then
// cross-file analyses over the merged database (sleeplint_wp.h):
//   layering             #include edges must descend the declarative
//                        layer map in sleeplint_policy.h
//   include-cycle        the include graph must be acyclic
//   lock-order           the global acquired-while-held graph over
//                        util::Mutex must be acyclic (deadlock freedom)
//   throwing-destructor  no throw inside a destructor
//   throw-in-noexcept    no throw inside a noexcept function
//   crash-containment    util::CrashInjected raised only by the
//                        failpoint/storage layers
//
// Fact extraction and analysis are separable for CI sharding:
// `--facts-out` dumps a deterministic fact database per shard,
// `--facts-in` merges shard dumps and runs the cross-file analyses
// once. Output renders as text (default), `--format=json`, or
// `--format=sarif` (GitHub code-scanning compatible).
#ifndef SLEEPWALK_TOOLS_SLEEPLINT_H_
#define SLEEPWALK_TOOLS_SLEEPLINT_H_

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace sleeplint {

/// Stable rule ids, shared by the per-line rules, the whole-program
/// analyses, allow markers, and baselines.
namespace rules {
inline constexpr std::string_view kWallclock = "no-wallclock";
inline constexpr std::string_view kRng = "no-ambient-rng";
inline constexpr std::string_view kRawIo = "no-raw-io";
inline constexpr std::string_view kRawFs = "no-raw-fs";
inline constexpr std::string_view kRawSocket = "no-raw-socket";
inline constexpr std::string_view kNarrowing = "no-unchecked-narrowing";
inline constexpr std::string_view kHygiene = "header-hygiene";
inline constexpr std::string_view kBadAllow = "bad-allow";
inline constexpr std::string_view kLayering = "layering";
inline constexpr std::string_view kIncludeCycle = "include-cycle";
inline constexpr std::string_view kLockOrder = "lock-order";
inline constexpr std::string_view kThrowingDtor = "throwing-destructor";
inline constexpr std::string_view kThrowNoexcept = "throw-in-noexcept";
inline constexpr std::string_view kCrashContainment = "crash-containment";
}  // namespace rules

/// One violation. `path` is the file as passed/found; `line` is
/// 1-based; `rule` is the stable rule id used by baselines and allow
/// comments.
struct Diagnostic {
  std::string path;
  int line = 0;
  std::string rule;
  std::string message;
};

struct Options {
  /// Files and/or directories to scan. Directories are walked
  /// recursively for .h/.hpp/.cc/.cpp/.cxx; explicit files are scanned
  /// regardless of extension. May be empty when `facts_in` is set.
  std::vector<std::string> roots;
  /// Baseline file: one `path:rule` or `path:line:rule` entry per line,
  /// `#` comments. Matching diagnostics are counted, not reported.
  std::string baseline_path;
  /// When non-empty, only these rule ids run/report.
  std::vector<std::string> only_rules;
  /// Run the phase-2 whole-program analyses (layering, include-cycle,
  /// lock-order, exception safety) over scanned + loaded facts.
  bool whole_program = false;
  /// When non-empty, dump the extracted fact database (including this
  /// shard's per-line diagnostics) to this path and report nothing —
  /// the CI extraction-shard mode.
  std::string facts_out;
  /// Fact-database dumps to merge before analysis.
  std::vector<std::string> facts_in;
};

struct Result {
  std::vector<Diagnostic> diagnostics;  ///< violations after baseline
  int files_scanned = 0;
  int suppressed_by_allow = 0;  ///< `// sleeplint: allow(...)` hits
  int suppressed_by_baseline = 0;
  bool baseline_error = false;  ///< baseline path given but unreadable
  bool facts_error = false;     ///< facts load/dump failed
  std::string facts_error_message;
  /// Whole-program mode: the global lock-order graph as Graphviz DOT
  /// (deterministic, byte-stable — committed into DESIGN.md §14).
  std::string lock_dot;
};

/// All rule ids, in reporting order.
const std::vector<std::string>& AllRules();

/// Lints one file's content with the per-line rules. `path` drives the
/// per-rule scoping (see sleeplint_policy.h), so fixture trees mirror
/// the real layout. Exposed for tests/tools/sleeplint_test.cc.
std::vector<Diagnostic> LintFile(const std::string& path,
                                 std::string_view content,
                                 const std::vector<std::string>& only_rules,
                                 int* suppressed_by_allow);

/// Walks roots, merges facts, applies the baseline, returns everything.
Result Run(const Options& options);

/// Renders `path:line: [rule] message` lines.
void PrintDiagnostics(std::ostream& out,
                      const std::vector<Diagnostic>& diagnostics);

/// Renders the result as one JSON object (machine-readable text form).
void RenderJson(std::ostream& out, const Result& result);

/// Renders the result as a SARIF 2.1.0 document for code scanning.
void RenderSarif(std::ostream& out, const Result& result);

}  // namespace sleeplint

#endif  // SLEEPWALK_TOOLS_SLEEPLINT_H_
