// sleeplint — project-invariant lint for the sleepwalk tree.
//
// The pipeline is only reproducible because every layer is deterministic
// under a seeded virtual clock (DESIGN.md §8): one stray
// `std::random_device` or `system_clock::now()` in core code silently
// breaks same-seed reproduction in ways no unit test notices until a
// checkpoint diff fails weeks later. sleeplint enforces those invariants
// *statically*, as named rules with file:line diagnostics, so the CI
// `static-analysis` job fails at the offending line instead.
//
// It is deliberately token/regex-level — no libclang dependency, so it
// builds everywhere the project builds — and deliberately small: rules
// are substring/boundary matchers over comment- and string-stripped
// source lines. That is enough to catch every spelling of the banned
// constructs that has ever appeared in this tree, and false positives
// have a sanctioned escape: `// sleeplint: allow(<rule>)` on the same or
// the immediately preceding line, stating the justification in the
// surrounding comment.
//
// Rule catalogue (see DESIGN.md §8 for the policy discussion):
//   no-wallclock            wall/monotonic clock reads outside net/socket*,
//                           net/icmp* (live-probe code is allowed to time
//                           real sockets; nothing else may read a clock)
//   no-ambient-rng          rand()/random_device/mt19937 outside util/rng —
//                           all randomness flows from explicit seeds
//   no-raw-io               printf/std::cout/std::cerr inside src/sleepwalk/
//                           — library code reports through obs::Context
//   no-raw-fs               fstream/fopen/fsync/std::rename inside
//                           src/sleepwalk/ outside storage/ — all
//                           persistence goes through storage::Env so
//                           crash/ENOSPC behaviour is provable; storage/
//                           is the single exempted layer
//   no-unchecked-narrowing  raw static_cast to a narrower integer in
//                           checkpoint/dataset serialization files — use
//                           util::CheckedNarrow (clamps, never corrupts)
//   header-hygiene          every header carries an include guard or
//                           #pragma once (self-sufficiency is compiled, not
//                           linted: scripts/static_analysis.sh builds one
//                           TU per header)
#ifndef SLEEPWALK_TOOLS_SLEEPLINT_H_
#define SLEEPWALK_TOOLS_SLEEPLINT_H_

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace sleeplint {

/// One violation. `path` is the file as passed/found; `line` is
/// 1-based; `rule` is the stable rule id used by baselines and allow
/// comments.
struct Diagnostic {
  std::string path;
  int line = 0;
  std::string rule;
  std::string message;
};

struct Options {
  /// Files and/or directories to scan. Directories are walked
  /// recursively for .h/.hpp/.cc/.cpp/.cxx; explicit files are scanned
  /// regardless of extension.
  std::vector<std::string> roots;
  /// Baseline file: one `path:rule` or `path:line:rule` entry per line,
  /// `#` comments. Matching diagnostics are counted, not reported.
  std::string baseline_path;
  /// When non-empty, only these rule ids run.
  std::vector<std::string> only_rules;
};

struct Result {
  std::vector<Diagnostic> diagnostics;  ///< violations after baseline
  int files_scanned = 0;
  int suppressed_by_allow = 0;  ///< `// sleeplint: allow(...)` hits
  int suppressed_by_baseline = 0;
  bool baseline_error = false;  ///< baseline path given but unreadable
};

/// All rule ids, in reporting order.
const std::vector<std::string>& AllRules();

/// Lints one file's content. `path` drives the per-rule scoping (e.g.
/// no-raw-io only applies under src/sleepwalk/), so fixture trees mirror
/// the real layout. Exposed for tests/tools/sleeplint_test.cc.
std::vector<Diagnostic> LintFile(const std::string& path,
                                 std::string_view content,
                                 const std::vector<std::string>& only_rules,
                                 int* suppressed_by_allow);

/// Walks roots, applies the baseline, returns everything.
Result Run(const Options& options);

/// Renders `path:line: [rule] message` lines.
void PrintDiagnostics(std::ostream& out,
                      const std::vector<Diagnostic>& diagnostics);

}  // namespace sleeplint

#endif  // SLEEPWALK_TOOLS_SLEEPLINT_H_
