// Phase 1 of the whole-program analyzer: per-file fact extraction.
//
// ExtractFacts() walks the lexer's token stream once, tracking the
// brace-scope structure (namespaces, classes, functions, blocks) with
// the classic declaration-head heuristic, and records the facts the
// phase-2 analyses (sleeplint_wp.h) consume:
//
//   * project #include targets (layer-DAG edges + include-cycle graph);
//   * util::Mutex declarations, qualified by their enclosing class
//     ("Shard::mutex", "CampaignLedger::mutex_");
//   * util::MutexLock acquisition sites, with the stack of locks
//     lexically held at that point — every (held, acquired) pair is an
//     acquired-while-held edge for the global lock-order graph. Member
//     expressions like `impl_->mutex` record the member name plus the
//     enclosing class as an owner hint; phase 2 resolves them against
//     the merged declaration set;
//   * exception-safety findings: `throw` inside a destructor, `throw`
//     inside a `noexcept` function, and `throw ... CrashInjected`
//     outside the paths granted Capability::kCrashThrow.
//
// Facts serialize to a deterministic line-oriented text format
// (DumpFacts/LoadFacts) so CI can shard extraction across jobs and run
// the cross-file analyses once over the merged database
// (`sleeplint --facts-out` / `--facts-in`). Per-line lint diagnostics
// ride along in the dump so a merge run reports everything.
#ifndef SLEEPWALK_TOOLS_SLEEPLINT_FACTS_H_
#define SLEEPWALK_TOOLS_SLEEPLINT_FACTS_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "sleeplint.h"
#include "sleeplint_lexer.h"

namespace sleeplint {

struct IncludeFact {
  std::string header;    ///< as spelled, e.g. "sleepwalk/obs/context.h"
  int line = 0;
  bool allowed = false;  ///< `// sleeplint: allow(layering)` on the line
};

struct MutexFact {
  std::string qualified;  ///< "EnclosingClass::member" or "::name"
  std::string member;     ///< bare member name
  int line = 0;
};

struct LockAcquisitionFact {
  std::string member;      ///< last identifier of the lock expression
  std::string owner_hint;  ///< enclosing class at the acquisition site
  int line = 0;
  bool allowed = false;    ///< allow(lock-order) on the line
};

/// One acquired-while-held pair; indices into `acquisitions`.
struct LockEdgeFact {
  int held_index = 0;
  int acquired_index = 0;
};

struct FileFacts {
  std::string path;  ///< normalized
  std::vector<IncludeFact> includes;
  std::vector<MutexFact> mutexes;
  std::vector<LockAcquisitionFact> acquisitions;
  std::vector<LockEdgeFact> edges;
  /// Exception-safety findings (throwing-destructor, throw-in-noexcept,
  /// crash-containment) plus, in dump/load round trips, the per-line
  /// rule diagnostics of the extraction shard.
  std::vector<Diagnostic> diagnostics;
};

/// Extracts facts from one lexed file. `allows` carries the per-line
/// allow sets (same shape LintFile uses) so escapes suppress facts at
/// the source. Exception findings land in `facts.diagnostics`.
FileFacts ExtractFacts(const std::string& path, const LexedSource& lexed,
                       const std::vector<std::vector<std::string>>& allows,
                       const std::vector<std::string>& file_allows);

/// Serializes facts as deterministic text ("sleeplint-facts v1").
void DumpFacts(std::ostream& out, const std::vector<FileFacts>& files);

/// Parses a dump; appends to `files`. Returns false (with `error` set)
/// on version or syntax problems.
bool LoadFacts(std::istream& in, std::vector<FileFacts>& files,
               std::string& error);

}  // namespace sleeplint

#endif  // SLEEPWALK_TOOLS_SLEEPLINT_FACTS_H_
