// jsonl_check: validates telemetry output files without a Python
// dependency. Used by scripts/tier1.sh and CI to gate the telemetry
// sinks (--log-json / --trace-out / --trace-chrome).
//
//   jsonl_check FILE...
//       every line of every FILE must be one well-formed JSON object
//   jsonl_check --chrome-trace FILE...
//       every FILE must be a Chrome trace-event JSON array: B/E phases
//       only, ts strictly monotone per tid, B/E stack-matched by name
//   jsonl_check --sarif FILE...
//       every FILE must be one well-formed SARIF 2.1.0 JSON object
//       (gates sleeplint --sarif-out before CI uploads it)
//
// Exit 0 on success; exit 1 with the first offending file (and line or
// event) printed.
//
// The validation logic lives in jsonl.h so the obs concurrency stress
// test can reuse it in-process.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "jsonl.h"

namespace {

int CheckFile(const char* path) {
  std::ifstream in{path};
  if (!in) {
    std::cerr << "jsonl_check: cannot open " << path << "\n";
    return 1;
  }
  std::string line;
  long number = 0;
  long objects = 0;
  while (std::getline(in, line)) {
    ++number;
    if (line.empty()) continue;  // tolerate a trailing blank line
    if (!jsonl::IsJsonObjectLine(line)) {
      std::cerr << "jsonl_check: " << path << ":" << number
                << ": not a well-formed JSON object\n";
      return 1;
    }
    ++objects;
  }
  std::cout << path << ": " << objects << " JSON objects OK\n";
  return 0;
}

int CheckChromeFile(const char* path) {
  std::ifstream in{path};
  if (!in) {
    std::cerr << "jsonl_check: cannot open " << path << "\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  std::size_t n_events = 0;
  if (!jsonl::CheckChromeTrace(buffer.str(), error, &n_events)) {
    std::cerr << "jsonl_check: " << path << ": " << error << "\n";
    return 1;
  }
  std::cout << path << ": " << n_events << " trace events OK\n";
  return 0;
}

int CheckSarifFile(const char* path) {
  std::ifstream in{path};
  if (!in) {
    std::cerr << "jsonl_check: cannot open " << path << "\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  if (!jsonl::CheckSarif(buffer.str(), error)) {
    std::cerr << "jsonl_check: " << path << ": " << error << "\n";
    return 1;
  }
  std::cout << path << ": SARIF report OK\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  enum class Mode { kJsonl, kChrome, kSarif };
  Mode mode = Mode::kJsonl;
  int first = 1;
  if (argc > 1 && std::string{argv[1]} == "--chrome-trace") {
    mode = Mode::kChrome;
    first = 2;
  } else if (argc > 1 && std::string{argv[1]} == "--sarif") {
    mode = Mode::kSarif;
    first = 2;
  }
  if (first >= argc) {
    std::cerr << "usage: jsonl_check [--chrome-trace|--sarif] FILE...\n";
    return 2;
  }
  for (int i = first; i < argc; ++i) {
    const int rc = mode == Mode::kChrome  ? CheckChromeFile(argv[i])
                   : mode == Mode::kSarif ? CheckSarifFile(argv[i])
                                          : CheckFile(argv[i]);
    if (rc != 0) return rc;
  }
  return 0;
}
