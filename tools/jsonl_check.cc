// jsonl_check: validates that every line of a file is one well-formed
// JSON object. Used by scripts/tier1.sh and CI to gate the telemetry
// sinks (--log-json / --trace-out) without a Python dependency.
//
//   jsonl_check FILE...        exit 0: every line of every file parses
//                              exit 1: first offending file:line printed
//
// The validation logic lives in jsonl.h so the obs concurrency stress
// test can reuse it in-process.
#include <fstream>
#include <iostream>
#include <string>

#include "jsonl.h"

namespace {

int CheckFile(const char* path) {
  std::ifstream in{path};
  if (!in) {
    std::cerr << "jsonl_check: cannot open " << path << "\n";
    return 1;
  }
  std::string line;
  long number = 0;
  long objects = 0;
  while (std::getline(in, line)) {
    ++number;
    if (line.empty()) continue;  // tolerate a trailing blank line
    if (!jsonl::IsJsonObjectLine(line)) {
      std::cerr << "jsonl_check: " << path << ":" << number
                << ": not a well-formed JSON object\n";
      return 1;
    }
    ++objects;
  }
  std::cout << path << ": " << objects << " JSON objects OK\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: jsonl_check FILE...\n";
    return 2;
  }
  for (int i = 1; i < argc; ++i) {
    if (const int rc = CheckFile(argv[i]); rc != 0) return rc;
  }
  return 0;
}
