// slck_fsck: integrity checker / dumper for the persistence formats.
//
//   slck_fsck FILE...          check each file, print a one-line verdict
//   slck_fsck --verbose FILE   add per-file structural detail
//
// Understands SLCK (checkpoint) v1/v2/v3 — including v3 block-store
// snapshots (kind 2) — and SLPW (dataset) v1/v2/v3 — including v3
// columnar datasets — by sniffing the magic and, for v3 containers,
// the kind discriminator. Exit status: 0 when every file decodes intact,
// 1 when any file is corrupt/truncated/unreadable, 2 on usage errors.
// scripts/tier1.sh runs it over freshly written artifacts so a format
// regression (bad CRC, broken framing) fails the tier-1 gate, and
// operators can point it at a damaged campaign directory to see which
// generation files are still worth resuming from.
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "sleepwalk/core/block_store.h"
#include "sleepwalk/core/checkpoint.h"
#include "sleepwalk/core/dataset.h"
#include "sleepwalk/core/dataset_columnar.h"
#include "sleepwalk/storage/columnar.h"
#include "sleepwalk/storage/file.h"

namespace {

using namespace sleepwalk;

int Usage() {
  std::cout << "usage: slck_fsck [--verbose] FILE...\n"
               "  checks SLCK (checkpoint) and SLPW (dataset) files;\n"
               "  exit 0 = all intact, 1 = any damage, 2 = usage\n";
  return 2;
}

bool CheckCheckpoint(const std::vector<std::uint8_t>& bytes,
                     const std::string& path, bool verbose) {
  core::CheckpointLoadReport report;
  const auto checkpoint = core::DecodeCheckpoint(bytes, &report);
  if (!checkpoint) {
    std::cout << path << ": SLCK v" << report.version << " CORRUPT ("
              << (report.detail.empty() ? "undecodable" : report.detail)
              << ", " << report.corrupt_sections << " bad section(s))\n";
    return false;
  }
  std::cout << path << ": SLCK v" << report.version << " ok, generation "
            << report.generation << ", " << checkpoint->completed.size()
            << " completed block(s)\n";
  if (verbose) {
    std::cout << "  fingerprint 0x" << std::hex << checkpoint->fingerprint
              << std::dec << "\n  next_block " << checkpoint->next_block
              << ", quarantined " << checkpoint->quarantined.size()
              << ", inflight " << (checkpoint->has_inflight ? "yes" : "no")
              << ", transport_state " << checkpoint->transport_state.size()
              << " byte(s)\n  checkpoints_written "
              << checkpoint->stats.checkpoints_written
              << ", rounds_attempted "
              << checkpoint->stats.rounds_attempted << "\n";
  }
  return true;
}

/// SLCK v3 containers carrying kind kStoreSnapshotKind are raw
/// block-store snapshots (core/block_store.h), not campaign
/// checkpoints; validate them with the store decoder so every column
/// CRC, width, and row-count invariant is exercised.
bool CheckStoreSnapshot(const std::vector<std::uint8_t>& bytes,
                        const std::string& path, bool verbose,
                        std::uint64_t fingerprint,
                        std::uint64_t generation) {
  core::BlockStore store;
  std::uint64_t rounds_done = 0;
  std::uint64_t checkpoints_written = 0;
  if (const auto error = store.DecodeSnapshot(bytes, fingerprint, rounds_done,
                                              checkpoints_written, path);
      !error.ok()) {
    std::cout << path << ": SLCK v3 store snapshot CORRUPT ("
              << error.ToString() << ")\n";
    return false;
  }
  std::cout << path << ": SLCK v3 store snapshot ok, generation "
            << generation << ", " << store.size() << " block row(s)\n";
  if (verbose) {
    std::cout << "  fingerprint 0x" << std::hex << fingerprint << std::dec
              << "\n  rounds_done " << rounds_done
              << ", checkpoints_written " << checkpoints_written << "\n";
  }
  return true;
}

/// Dispatches an SLCK file: v1/v2 (and v3 kind kCheckpointKind) go to
/// the checkpoint decoder; v3 kind kStoreSnapshotKind to the store
/// decoder. The kind peek reuses the full ColumnarReader validation so
/// a damaged header is reported, never mis-dispatched.
bool CheckSlck(const std::vector<std::uint8_t>& bytes,
               const std::string& path, bool verbose) {
  const auto version = storage::PeekContainerVersion(bytes, "SLCK");
  if (version == storage::kColumnarVersion) {
    storage::ColumnarReader reader;
    if (const auto error = reader.Parse(bytes, "SLCK", path); !error.ok()) {
      std::cout << path << ": SLCK v3 CORRUPT (" << error.ToString() << ")\n";
      return false;
    }
    if (reader.kind() == core::kStoreSnapshotKind) {
      return CheckStoreSnapshot(bytes, path, verbose, reader.fingerprint(),
                                reader.generation());
    }
    if (reader.kind() != core::kCheckpointKind) {
      std::cout << path << ": SLCK v3 CORRUPT (unknown container kind "
                << reader.kind() << ")\n";
      return false;
    }
  }
  return CheckCheckpoint(bytes, path, verbose);
}

/// SLPW v3 columnar datasets get the dedicated parser: the full
/// ColumnarReader strictness pass plus the cross-column offset/count
/// prefix-sum validation, with a per-column directory walk under
/// --verbose (what an operator needs to see WHICH column rotted).
bool CheckDatasetColumnar(const std::vector<std::uint8_t>& bytes,
                          const std::string& path, bool verbose) {
  core::ColumnarDatasetView view;
  if (const auto error = core::ParseDatasetColumnar(bytes, view, path);
      !error.ok()) {
    std::cout << path << ": SLPW v3 columnar dataset CORRUPT ("
              << error.ToString() << ")\n";
    return false;
  }
  std::cout << path << ": SLPW v3 columnar dataset ok, " << view.size()
            << " block(s), " << view.values.size() << " sample(s)\n";
  if (verbose) {
    std::cout << "  round_seconds " << view.round_seconds << ", epoch_sec "
              << view.epoch_sec << "\n";
    storage::ColumnarReader reader;
    if (reader.Parse(bytes, "SLPW", path).ok()) {
      for (const auto& column : reader.columns()) {
        std::cout << "  column id " << column.id << ": " << column.rows
                  << " row(s) x " << column.elem_width << " byte(s)\n";
      }
    }
  }
  return true;
}

bool CheckDataset(const std::vector<std::uint8_t>& bytes,
                  const std::string& path, bool verbose) {
  if (storage::PeekContainerVersion(bytes, "SLPW") ==
      storage::kColumnarVersion) {
    return CheckDatasetColumnar(bytes, path, verbose);
  }
  core::DatasetLoadReport report;
  const auto dataset = core::DecodeDataset(bytes, &report);
  if (!dataset) {
    std::cout << path << ": SLPW v" << report.version << " CORRUPT ("
              << (report.detail.empty() ? "undecodable" : report.detail)
              << ", " << report.corrupt_records << " bad record(s))\n";
    // A v2 dataset may still be partially salvageable; say how much.
    core::DatasetLoadReport salvage_report;
    if (const auto salvaged =
            core::DecodeDatasetTolerant(bytes, &salvage_report)) {
      std::cout << "  salvageable: " << salvaged->blocks.size() << "/"
                << salvage_report.records_expected << " record(s)\n";
    }
    return false;
  }
  std::cout << path << ": SLPW v" << report.version << " ok, "
            << dataset->blocks.size() << " block(s)\n";
  if (verbose) {
    std::cout << "  round_seconds " << dataset->round_seconds
              << ", epoch_sec " << dataset->epoch_sec << "\n";
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool verbose = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--verbose" || arg == "-v") {
      verbose = true;
    } else if (arg == "--help" || arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return Usage();

  auto& env = storage::RealEnvInstance();
  bool all_ok = true;
  for (const auto& path : paths) {
    std::vector<std::uint8_t> bytes;
    if (const auto error = env.ReadAll(path, bytes); !error.ok()) {
      std::cout << path << ": UNREADABLE (" << error.ToString() << ")\n";
      all_ok = false;
      continue;
    }
    if (bytes.size() >= 4 && std::memcmp(bytes.data(), "SLCK", 4) == 0) {
      all_ok = CheckSlck(bytes, path, verbose) && all_ok;
    } else if (bytes.size() >= 4 &&
               std::memcmp(bytes.data(), "SLPW", 4) == 0) {
      all_ok = CheckDataset(bytes, path, verbose) && all_ok;
    } else {
      std::cout << path << ": UNRECOGNIZED (no SLCK/SLPW magic in "
                << bytes.size() << " byte(s))\n";
      all_ok = false;
    }
  }
  return all_ok ? 0 : 1;
}
