// Phase 2 of the whole-program analyzer: cross-file analyses over the
// merged fact database (sleeplint_facts.h).
//
//   * layering        — every project #include must stay level or
//                       descend in the declarative layer map
//                       (sleeplint_policy.h); upward edges need a named
//                       exemption or an `allow(layering)` on the line.
//   * include-cycle   — the file-level include graph restricted to the
//                       scanned set must be acyclic; each cycle is
//                       reported once with its full file:line chain.
//   * lock-order      — merge every file's acquired-while-held pairs
//                       into one directed graph over qualified mutexes
//                       (cross-TU: member references resolve against
//                       the merged declaration set), then report every
//                       cycle — including self-loops, the two-instance
//                       deadlock pattern — with both acquisition
//                       chains. The graph is also rendered as DOT for
//                       DESIGN.md §14 (`sleeplint --dot`).
//
// Exception-safety findings (throwing-destructor, throw-in-noexcept,
// crash-containment) are computed during extraction and ride in
// FileFacts::diagnostics; this phase only concerns facts that cannot be
// judged one file at a time.
#ifndef SLEEPWALK_TOOLS_SLEEPLINT_WP_H_
#define SLEEPWALK_TOOLS_SLEEPLINT_WP_H_

#include <string>
#include <vector>

#include "sleeplint.h"
#include "sleeplint_facts.h"

namespace sleeplint {

struct WholeProgramResult {
  std::vector<Diagnostic> diagnostics;
  /// The global lock-order graph in Graphviz DOT, deterministic order.
  std::string lock_dot;
};

WholeProgramResult AnalyzeWholeProgram(const std::vector<FileFacts>& files);

}  // namespace sleeplint

#endif  // SLEEPWALK_TOOLS_SLEEPLINT_WP_H_
