#include "sleeplint_facts.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "sleeplint_policy.h"

namespace sleeplint {

namespace {

/// Brace-scope kinds tracked by the extractor.
struct Scope {
  enum class Kind { kNamespace, kClass, kFunction, kBlock };
  Kind kind = Kind::kBlock;
  std::string name;        ///< class/namespace/function display name
  std::string class_name;  ///< kFunction: owning class ("" if free)
  bool is_dtor = false;
  bool is_noexcept = false;
};

/// A lock lexically held: which acquisition, and the scope depth whose
/// exit releases it.
struct HeldLock {
  int acquisition_index = 0;
  std::size_t scope_depth = 0;
};

bool IsKeywordBlocked(const std::string& text) {
  return text == "if" || text == "for" || text == "while" ||
         text == "switch" || text == "catch" || text == "return" ||
         text == "sizeof" || text == "alignof" || text == "decltype" ||
         text == "constexpr" || text == "do" || text == "else" ||
         text == "try";
}

bool HasIdentifier(const std::vector<Token>& head, std::string_view text) {
  return std::any_of(head.begin(), head.end(), [&](const Token& token) {
    return token.kind == Token::Kind::kIdentifier && token.text == text;
  });
}

/// Index of the matching close for the open bracket at `open`, or npos.
std::size_t MatchingClose(const std::vector<Token>& head, std::size_t open,
                          std::string_view open_text,
                          std::string_view close_text) {
  int depth = 0;
  for (std::size_t i = open; i < head.size(); ++i) {
    if (head[i].text == open_text) ++depth;
    if (head[i].text == close_text && --depth == 0) return i;
  }
  return std::string::npos;
}

/// Classifies the declaration head preceding a '{'. Heuristic by
/// design: see sleeplint_facts.h.
Scope Classify(const std::vector<Token>& head) {
  Scope scope;
  if (head.empty()) return scope;  // bare block

  if (HasIdentifier(head, "namespace")) {
    scope.kind = Scope::Kind::kNamespace;
    scope.name = "(anon)";
    for (const auto& token : head) {
      if (token.kind == Token::Kind::kIdentifier &&
          token.text != "namespace" && token.text != "inline") {
        scope.name = token.text;
      }
    }
    return scope;
  }

  // Class-like: the keyword anywhere outside parens. (A function head
  // mentioning `struct stat` would misclassify; this tree doesn't.)
  for (std::size_t i = 0; i < head.size(); ++i) {
    const auto& token = head[i];
    if (token.kind != Token::Kind::kIdentifier ||
        (token.text != "class" && token.text != "struct" &&
         token.text != "union" && token.text != "enum")) {
      continue;
    }
    scope.kind = Scope::Kind::kClass;
    scope.name = "(anon)";
    int depth = 0;
    for (std::size_t j = i + 1; j < head.size(); ++j) {
      const auto& t = head[j];
      if (t.text == "(" || t.text == "<") ++depth;
      if (t.text == ")" || t.text == ">") --depth;
      if (depth > 0) continue;
      if (t.text == ":") break;  // base clause
      if (t.kind == Token::Kind::kIdentifier && t.text != "final" &&
          t.text != "class" && t.text != "alignas") {
        // Attribute-like macros (NAME followed by parens) are skipped
        // by taking the LAST plain identifier before the base clause.
        if (j + 1 < head.size() && head[j + 1].text == "(") continue;
        scope.name = t.text;
      }
    }
    scope.class_name = scope.name;
    return scope;
  }

  // Lambda introducer: `]` directly followed by a parameter list (or
  // ending the head). Resets destructor/noexcept context.
  for (std::size_t i = 0; i < head.size(); ++i) {
    if (head[i].text != "]") continue;
    if (i + 1 == head.size() || head[i + 1].text == "(") {
      scope.kind = Scope::Kind::kFunction;
      scope.name = "(lambda)";
      scope.is_noexcept = HasIdentifier(head, "noexcept");
      return scope;
    }
  }

  // Initializer lists: `= { ... }`.
  int depth = 0;
  for (const auto& token : head) {
    if (token.text == "(") ++depth;
    if (token.text == ")") --depth;
    if (depth == 0 && token.text == "=") return scope;  // kBlock
  }

  // Function definition: `name ( params ) ... {`.
  std::size_t open = std::string::npos;
  for (std::size_t i = 0; i < head.size(); ++i) {
    if (head[i].text == "(") {
      open = i;
      break;
    }
  }
  if (open == std::string::npos || open == 0) return scope;
  const auto& before = head[open - 1];
  if (before.kind != Token::Kind::kIdentifier ||
      IsKeywordBlocked(before.text)) {
    return scope;
  }
  scope.kind = Scope::Kind::kFunction;
  // Collect the (possibly qualified) name backwards: ident, ::, ~.
  std::size_t name_begin = open - 1;
  while (name_begin > 0) {
    const auto& t = head[name_begin - 1];
    if (t.text == "::" || t.text == "~" ||
        (t.kind == Token::Kind::kIdentifier &&
         head[name_begin].text == "::")) {
      --name_begin;
    } else {
      break;
    }
  }
  std::string qualifier;
  for (std::size_t i = name_begin; i < open; ++i) {
    scope.name += head[i].text;
    if (head[i].text == "~") scope.is_dtor = true;
  }
  const std::size_t last_sep = scope.name.rfind("::");
  if (last_sep != std::string::npos) {
    qualifier = scope.name.substr(0, last_sep);
    const std::size_t prev = qualifier.rfind("::");
    scope.class_name =
        prev == std::string::npos ? qualifier : qualifier.substr(prev + 2);
  }
  // noexcept after the parameter list (noexcept(false) opts out).
  const std::size_t close = MatchingClose(head, open, "(", ")");
  if (close != std::string::npos) {
    for (std::size_t i = close + 1; i < head.size(); ++i) {
      if (head[i].kind == Token::Kind::kIdentifier &&
          head[i].text == "noexcept") {
        scope.is_noexcept = true;
        if (i + 2 < head.size() && head[i + 1].text == "(" &&
            head[i + 2].text == "false") {
          scope.is_noexcept = false;
        }
      }
    }
  }
  return scope;
}

bool LineAllows(const std::vector<std::vector<std::string>>& allows,
                const std::vector<std::string>& file_allows, int line,
                std::string_view rule) {
  const auto has = [&](const std::vector<std::string>& list) {
    return std::find(list.begin(), list.end(), rule) != list.end();
  };
  if (has(file_allows)) return true;
  const std::size_t index = static_cast<std::size_t>(line) - 1;
  if (index < allows.size() && has(allows[index])) return true;
  return index > 0 && index - 1 < allows.size() && has(allows[index - 1]);
}

std::string Basename(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

FileFacts ExtractFacts(const std::string& path, const LexedSource& lexed,
                       const std::vector<std::vector<std::string>>& allows,
                       const std::vector<std::string>& file_allows) {
  FileFacts facts;
  facts.path = path;

  for (const auto& include : lexed.includes) {
    IncludeFact fact;
    fact.header = include.header;
    fact.line = include.line;
    fact.allowed =
        LineAllows(allows, file_allows, include.line, rules::kLayering);
    facts.includes.push_back(std::move(fact));
  }

  // Drop preprocessor-line tokens: macro bodies are not declarations.
  std::vector<Token> tokens;
  tokens.reserve(lexed.tokens.size());
  for (const auto& token : lexed.tokens) {
    const std::size_t line_index = static_cast<std::size_t>(token.line) - 1;
    if (line_index < lexed.preprocessor.size() &&
        lexed.preprocessor[line_index]) {
      continue;
    }
    tokens.push_back(token);
  }

  std::vector<Scope> scopes;
  std::vector<HeldLock> held;
  std::vector<Token> head;

  const auto nearest_class = [&]() -> std::string {
    // An out-of-class definition carries its qualifier; an in-class
    // definition (empty class_name) keeps walking out to the class
    // scope itself. Lambdas defer to their enclosing method the same
    // way.
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->kind == Scope::Kind::kFunction && !it->class_name.empty()) {
        return it->class_name;
      }
      if (it->kind == Scope::Kind::kClass) return it->name;
    }
    return "";
  };
  const auto nearest_function = [&]() -> const Scope* {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->kind == Scope::Kind::kFunction) return &*it;
    }
    return nullptr;
  };

  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (token.text == "{") {
      scopes.push_back(Classify(head));
      head.clear();
      continue;
    }
    if (token.text == "}") {
      if (!scopes.empty()) scopes.pop_back();
      while (!held.empty() && held.back().scope_depth > scopes.size()) {
        held.pop_back();
      }
      head.clear();
      continue;
    }
    if (token.text == ";") {
      head.clear();
      continue;
    }

    if (token.kind == Token::Kind::kIdentifier && token.text == "Mutex" &&
        i + 2 < tokens.size() &&
        tokens[i + 1].kind == Token::Kind::kIdentifier &&
        tokens[i + 2].text == ";") {
      MutexFact fact;
      fact.member = tokens[i + 1].text;
      fact.line = tokens[i + 1].line;
      const std::string owner = nearest_class();
      fact.qualified = (owner.empty() ? Basename(path) : owner) +
                       "::" + fact.member;
      facts.mutexes.push_back(std::move(fact));
      head.push_back(token);
      continue;
    }

    const bool is_lock_type =
        token.kind == Token::Kind::kIdentifier &&
        (token.text == "MutexLock" || token.text == "lock_guard" ||
         token.text == "unique_lock" || token.text == "scoped_lock");
    if (is_lock_type) {
      std::size_t j = i + 1;
      if (j < tokens.size() && tokens[j].text == "<") {
        int depth = 0;
        while (j < tokens.size()) {
          if (tokens[j].text == "<") ++depth;
          if (tokens[j].text == ">" && --depth == 0) {
            ++j;
            break;
          }
          ++j;
        }
      }
      // A named RAII lock: `MutexLock name{expr}` / `(expr)`. The bare
      // type name in other positions (constructor decls, parameters)
      // has no variable name before a bracket and is skipped.
      if (j < tokens.size() &&
          tokens[j].kind == Token::Kind::kIdentifier &&
          j + 1 < tokens.size() &&
          (tokens[j + 1].text == "{" || tokens[j + 1].text == "(")) {
        const std::string open = tokens[j + 1].text;
        const std::string close = open == "{" ? "}" : ")";
        int depth = 0;
        std::size_t k = j + 1;
        std::string member;
        for (; k < tokens.size(); ++k) {
          if (tokens[k].text == open) ++depth;
          if (tokens[k].text == close && --depth == 0) break;
          if (tokens[k].kind == Token::Kind::kIdentifier) {
            member = tokens[k].text;
          }
        }
        if (!member.empty() && k < tokens.size()) {
          LockAcquisitionFact acquisition;
          acquisition.member = member;
          acquisition.owner_hint = nearest_class();
          acquisition.line = tokens[j].line;
          acquisition.allowed = LineAllows(allows, file_allows,
                                           acquisition.line,
                                           rules::kLockOrder);
          const int index = static_cast<int>(facts.acquisitions.size());
          for (const auto& h : held) {
            facts.edges.push_back(
                LockEdgeFact{h.acquisition_index, index});
          }
          facts.acquisitions.push_back(std::move(acquisition));
          held.push_back(HeldLock{index, scopes.size()});
          i = k;  // skip past the lock expression
          continue;
        }
      }
      head.push_back(token);
      continue;
    }

    if (token.kind == Token::Kind::kIdentifier && token.text == "throw") {
      const Scope* function = nearest_function();
      bool crash_injected = false;
      for (std::size_t j = i + 1;
           j < tokens.size() && tokens[j].text != ";"; ++j) {
        if (tokens[j].text == "CrashInjected") crash_injected = true;
      }
      const auto report = [&](std::string_view rule, std::string message) {
        if (LineAllows(allows, file_allows, token.line, rule)) return;
        Diagnostic diagnostic;
        diagnostic.path = path;
        diagnostic.line = token.line;
        diagnostic.rule = std::string(rule);
        diagnostic.message = std::move(message);
        facts.diagnostics.push_back(std::move(diagnostic));
      };
      if (function != nullptr && function->is_dtor) {
        report(rules::kThrowingDtor,
               "throw inside destructor " + function->name +
                   "; a destructor that throws during unwind calls "
                   "std::terminate — report and swallow instead");
      }
      if (function != nullptr && function->is_noexcept &&
          !function->is_dtor) {
        report(rules::kThrowNoexcept,
               "throw inside noexcept function " + function->name +
                   "; escaping calls std::terminate — drop noexcept or "
                   "handle locally");
      }
      if (crash_injected && policy::IsLibraryPath(path) &&
          !policy::Grants(path, policy::Capability::kCrashThrow)) {
        report(rules::kCrashContainment,
               "CrashInjected thrown outside the failpoint/storage "
               "layers; only util/failpoint and storage/ may raise the "
               "crash signal (it is deliberately not std::exception)");
      }
      head.push_back(token);
      continue;
    }

    head.push_back(token);
  }
  return facts;
}

// ---------------------------------------------------------------------------
// Dump / load — deterministic line format, one record per line:
//   sleeplint-facts v1
//   file <path>
//   include <line> <allowed> <header>
//   mutex <line> <member> <qualified>
//   acq <line> <allowed> <member> <owner|->
//   edge <held_index> <acquired_index>
//   diag <line> <rule> <message to end of line>
// ---------------------------------------------------------------------------

void DumpFacts(std::ostream& out, const std::vector<FileFacts>& files) {
  out << "sleeplint-facts v1\n";
  for (const auto& file : files) {
    out << "file " << file.path << '\n';
    for (const auto& include : file.includes) {
      out << "include " << include.line << ' ' << (include.allowed ? 1 : 0)
          << ' ' << include.header << '\n';
    }
    for (const auto& mutex : file.mutexes) {
      out << "mutex " << mutex.line << ' ' << mutex.member << ' '
          << mutex.qualified << '\n';
    }
    for (const auto& acquisition : file.acquisitions) {
      out << "acq " << acquisition.line << ' '
          << (acquisition.allowed ? 1 : 0) << ' ' << acquisition.member
          << ' '
          << (acquisition.owner_hint.empty() ? "-"
                                             : acquisition.owner_hint)
          << '\n';
    }
    for (const auto& edge : file.edges) {
      out << "edge " << edge.held_index << ' ' << edge.acquired_index
          << '\n';
    }
    for (const auto& diagnostic : file.diagnostics) {
      out << "diag " << diagnostic.line << ' ' << diagnostic.rule << ' '
          << diagnostic.message << '\n';
    }
  }
}

bool LoadFacts(std::istream& in, std::vector<FileFacts>& files,
               std::string& error) {
  std::string line;
  if (!std::getline(in, line) || line != "sleeplint-facts v1") {
    error = "not a sleeplint-facts v1 file";
    return false;
  }
  FileFacts* current = nullptr;
  int line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream fields{line};
    std::string kind;
    fields >> kind;
    const auto fail = [&](const char* what) {
      error = "facts line " + std::to_string(line_no) + ": " + what;
      return false;
    };
    if (kind == "file") {
      std::string path;
      if (!(fields >> path)) return fail("missing path");
      files.emplace_back();
      current = &files.back();
      current->path = path;
      continue;
    }
    if (current == nullptr) return fail("record before any file");
    if (kind == "include") {
      IncludeFact fact;
      int allowed = 0;
      if (!(fields >> fact.line >> allowed >> fact.header)) {
        return fail("malformed include");
      }
      fact.allowed = allowed != 0;
      current->includes.push_back(std::move(fact));
    } else if (kind == "mutex") {
      MutexFact fact;
      if (!(fields >> fact.line >> fact.member >> fact.qualified)) {
        return fail("malformed mutex");
      }
      current->mutexes.push_back(std::move(fact));
    } else if (kind == "acq") {
      LockAcquisitionFact fact;
      int allowed = 0;
      std::string owner;
      if (!(fields >> fact.line >> allowed >> fact.member >> owner)) {
        return fail("malformed acq");
      }
      fact.allowed = allowed != 0;
      fact.owner_hint = owner == "-" ? "" : owner;
      current->acquisitions.push_back(std::move(fact));
    } else if (kind == "edge") {
      LockEdgeFact fact;
      if (!(fields >> fact.held_index >> fact.acquired_index)) {
        return fail("malformed edge");
      }
      const int n = static_cast<int>(current->acquisitions.size());
      if (fact.held_index < 0 || fact.held_index >= n ||
          fact.acquired_index < 0 || fact.acquired_index >= n) {
        return fail("edge index out of range");
      }
      current->edges.push_back(fact);
    } else if (kind == "diag") {
      Diagnostic diagnostic;
      diagnostic.path = current->path;
      if (!(fields >> diagnostic.line >> diagnostic.rule)) {
        return fail("malformed diag");
      }
      std::getline(fields, diagnostic.message);
      if (!diagnostic.message.empty() && diagnostic.message.front() == ' ') {
        diagnostic.message.erase(0, 1);
      }
      current->diagnostics.push_back(std::move(diagnostic));
    } else {
      return fail("unknown record kind");
    }
  }
  return true;
}

}  // namespace sleeplint
