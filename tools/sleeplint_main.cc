// sleeplint CLI. See sleeplint.h for the rule catalogue.
//
//   sleeplint [--baseline FILE] [--rules r1,r2] [--list-rules]
//             [--wp] [--format text|json|sarif] [--sarif-out FILE]
//             [--facts-out FILE] [--facts-in FILE]... [--dot FILE]
//             [PATH...]
//
// `--wp` adds the whole-program analyses (layering, include-cycle,
// lock-order, exception safety) over the scanned paths plus any
// `--facts-in` dumps. `--facts-out` is the CI extraction-shard mode: it
// dumps the fact database and reports nothing. `--dot` writes the
// global lock-order graph (Graphviz). `--sarif-out` writes a SARIF
// 2.1.0 report alongside whatever `--format` prints on stdout.
//
// Exit status: 0 clean, 1 violations found, 2 usage/IO error. Used by
// scripts/static_analysis.sh and the CI `static-analysis` job; run it
// locally via `scripts/tier1.sh --lint`.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sleeplint.h"

namespace {

int Usage() {
  std::cerr
      << "usage: sleeplint [--baseline FILE] [--rules r1,r2] [--list-rules]\n"
         "                 [--wp] [--format text|json|sarif]\n"
         "                 [--sarif-out FILE] [--facts-out FILE]\n"
         "                 [--facts-in FILE]... [--dot FILE] [PATH...]\n"
         "PATHs are files or directories (walked for "
         ".h/.hpp/.cc/.cpp/.cxx);\n"
         "they may be omitted when --facts-in supplies the database.\n";
  return 2;
}

std::vector<std::string> SplitCommas(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string part = text.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!part.empty()) parts.push_back(part);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return parts;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out{path, std::ios::binary};
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  sleeplint::Options options;
  std::string format = "text";
  std::string sarif_out;
  std::string dot_out;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Accept both `--flag value` and `--flag=value`.
    std::string inline_value;
    bool has_inline = false;
    if (arg.rfind("--", 0) == 0) {
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg.resize(eq);
        has_inline = true;
      }
    }
    const auto value = [&]() -> const char* {
      if (has_inline) return inline_value.c_str();
      return ++i < argc ? argv[i] : nullptr;
    };
    if (arg == "--baseline") {
      const char* v = value();
      if (v == nullptr) return Usage();
      options.baseline_path = v;
    } else if (arg == "--rules") {
      const char* v = value();
      if (v == nullptr) return Usage();
      options.only_rules = SplitCommas(v);
      for (const auto& rule : options.only_rules) {
        const auto& all = sleeplint::AllRules();
        if (std::find(all.begin(), all.end(), rule) == all.end()) {
          std::cerr << "sleeplint: unknown rule '" << rule << "'\n";
          return 2;
        }
      }
    } else if (arg == "--list-rules") {
      if (has_inline) return Usage();
      for (const auto& rule : sleeplint::AllRules()) {
        std::cout << rule << '\n';
      }
      return 0;
    } else if (arg == "--wp") {
      if (has_inline) return Usage();
      options.whole_program = true;
    } else if (arg == "--format") {
      const char* v = value();
      if (v == nullptr) return Usage();
      format = v;
      if (format != "text" && format != "json" && format != "sarif") {
        std::cerr << "sleeplint: unknown format '" << format << "'\n";
        return 2;
      }
    } else if (arg == "--sarif-out") {
      const char* v = value();
      if (v == nullptr) return Usage();
      sarif_out = v;
    } else if (arg == "--facts-out") {
      const char* v = value();
      if (v == nullptr) return Usage();
      options.facts_out = v;
    } else if (arg == "--facts-in") {
      const char* v = value();
      if (v == nullptr) return Usage();
      options.facts_in.push_back(v);
    } else if (arg == "--dot") {
      const char* v = value();
      if (v == nullptr) return Usage();
      dot_out = v;
      options.whole_program = true;  // the graph is a --wp product
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      options.roots.push_back(arg);
    }
  }
  if (options.roots.empty() && options.facts_in.empty()) return Usage();

  const sleeplint::Result result = sleeplint::Run(options);
  if (result.baseline_error) {
    std::cerr << "sleeplint: cannot read baseline '" << options.baseline_path
              << "'\n";
    return 2;
  }
  if (result.facts_error) {
    std::cerr << "sleeplint: " << result.facts_error_message << '\n';
    return 2;
  }
  if (!options.facts_out.empty()) {
    std::cerr << "sleeplint: " << result.files_scanned
              << " files, facts written to " << options.facts_out << '\n';
    return 0;
  }
  if (!dot_out.empty() && !WriteFile(dot_out, result.lock_dot)) {
    std::cerr << "sleeplint: cannot write dot file '" << dot_out << "'\n";
    return 2;
  }
  if (!sarif_out.empty()) {
    std::ostringstream sarif;
    sleeplint::RenderSarif(sarif, result);
    if (!WriteFile(sarif_out, sarif.str())) {
      std::cerr << "sleeplint: cannot write SARIF file '" << sarif_out
                << "'\n";
      return 2;
    }
  }
  if (format == "json") {
    sleeplint::RenderJson(std::cout, result);
  } else if (format == "sarif") {
    sleeplint::RenderSarif(std::cout, result);
  } else {
    sleeplint::PrintDiagnostics(std::cout, result.diagnostics);
  }
  std::cerr << "sleeplint: " << result.files_scanned << " files, "
            << result.diagnostics.size() << " violations"
            << ", " << result.suppressed_by_allow << " allowed"
            << ", " << result.suppressed_by_baseline << " baselined\n";
  return result.diagnostics.empty() ? 0 : 1;
}
