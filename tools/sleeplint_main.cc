// sleeplint CLI. See sleeplint.h for the rule catalogue.
//
//   sleeplint [--baseline FILE] [--rules r1,r2] [--list-rules] PATH...
//
// Exit status: 0 clean, 1 violations found, 2 usage/IO error. Used by
// scripts/static_analysis.sh and the CI `static-analysis` job; run it
// locally via `scripts/tier1.sh --lint`.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "sleeplint.h"

namespace {

int Usage() {
  std::cerr << "usage: sleeplint [--baseline FILE] [--rules r1,r2] "
               "[--list-rules] PATH...\n"
               "PATHs are files or directories (walked for "
               ".h/.hpp/.cc/.cpp/.cxx).\n";
  return 2;
}

std::vector<std::string> SplitCommas(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string part = text.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!part.empty()) parts.push_back(part);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return parts;
}

}  // namespace

int main(int argc, char** argv) {
  sleeplint::Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--baseline") {
      if (++i >= argc) return Usage();
      options.baseline_path = argv[i];
    } else if (arg == "--rules") {
      if (++i >= argc) return Usage();
      options.only_rules = SplitCommas(argv[i]);
      for (const auto& rule : options.only_rules) {
        const auto& all = sleeplint::AllRules();
        if (std::find(all.begin(), all.end(), rule) == all.end()) {
          std::cerr << "sleeplint: unknown rule '" << rule << "'\n";
          return 2;
        }
      }
    } else if (arg == "--list-rules") {
      for (const auto& rule : sleeplint::AllRules()) {
        std::cout << rule << '\n';
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      options.roots.push_back(arg);
    }
  }
  if (options.roots.empty()) return Usage();

  const sleeplint::Result result = sleeplint::Run(options);
  if (result.baseline_error) {
    std::cerr << "sleeplint: cannot read baseline '" << options.baseline_path
              << "'\n";
    return 2;
  }
  sleeplint::PrintDiagnostics(std::cout, result.diagnostics);
  std::cerr << "sleeplint: " << result.files_scanned << " files, "
            << result.diagnostics.size() << " violations"
            << ", " << result.suppressed_by_allow << " allowed"
            << ", " << result.suppressed_by_baseline << " baselined\n";
  return result.diagnostics.empty() ? 0 : 1;
}
