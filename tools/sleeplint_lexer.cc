#include "sleeplint_lexer.h"

namespace sleeplint {

namespace {

bool IsIdentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

bool IsIdentStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

/// The identifier ending just before column `at` (empty if none).
std::string IdentifierEndingAt(const std::string& line, std::size_t at) {
  std::size_t start = at;
  while (start > 0 && IsIdentChar(line[start - 1])) --start;
  return line.substr(start, at - start);
}

/// Quoted #include target on a raw (unblanked) directive line, if any.
void ExtractQuotedInclude(const std::string& line, int line_no,
                          std::vector<IncludeRef>& out) {
  std::size_t i = line.find_first_not_of(" \t");
  if (i == std::string::npos || line[i] != '#') return;
  ++i;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  static constexpr std::string_view kInclude = "include";
  if (line.compare(i, kInclude.size(), kInclude) != 0) return;
  i += kInclude.size();
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  if (i >= line.size() || line[i] != '"') return;  // <...> is not project code
  const std::size_t close = line.find('"', i + 1);
  if (close == std::string::npos) return;
  out.push_back(IncludeRef{line.substr(i + 1, close - i - 1), line_no});
}

/// Tokenizes one already-blanked code line.
void TokenizeLine(const std::string& line, int line_no,
                  std::vector<Token>& out) {
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    Token token;
    token.line = line_no;
    if (IsIdentStart(c)) {
      std::size_t end = i;
      while (end < line.size() && IsIdentChar(line[end])) ++end;
      token.kind = Token::Kind::kIdentifier;
      token.text = line.substr(i, end - i);
      i = end;
    } else if (c >= '0' && c <= '9') {
      // Numbers absorb identifier chars and dots (1e9, 0xFF, 1.5f); the
      // fact extractor never inspects their spelling.
      std::size_t end = i;
      while (end < line.size() && (IsIdentChar(line[end]) ||
                                   line[end] == '.')) {
        ++end;
      }
      token.kind = Token::Kind::kNumber;
      token.text = line.substr(i, end - i);
      i = end;
    } else {
      token.kind = Token::Kind::kPunct;
      const char next = i + 1 < line.size() ? line[i + 1] : '\0';
      if ((c == ':' && next == ':') || (c == '-' && next == '>')) {
        token.text = line.substr(i, 2);
        i += 2;
      } else {
        token.text = std::string(1, c);
        ++i;
      }
    }
    out.push_back(std::move(token));
  }
}

}  // namespace

LexedSource Lex(std::string_view content) {
  LexedSource out;
  // Split into lines first (handles a missing trailing newline).
  std::size_t start = 0;
  while (start <= content.size()) {
    const std::size_t end = content.find('\n', start);
    out.code.emplace_back(content.substr(
        start, end == std::string_view::npos ? std::string_view::npos
                                             : end - start));
    if (end == std::string_view::npos) break;
    start = end + 1;
  }
  out.comments.assign(out.code.size(), "");
  out.preprocessor.assign(out.code.size(), false);

  enum class State { kCode, kBlockComment, kRawString };
  State state = State::kCode;
  std::string raw_terminator;  // ")delim\"" for the open raw string
  bool directive_continues = false;

  for (std::size_t li = 0; li < out.code.size(); ++li) {
    std::string& line = out.code[li];
    if (state == State::kCode) {
      if (directive_continues) {
        out.preprocessor[li] = true;
      } else {
        const std::size_t first = line.find_first_not_of(" \t");
        if (first != std::string::npos && line[first] == '#') {
          out.preprocessor[li] = true;
          ExtractQuotedInclude(line, static_cast<int>(li) + 1,
                               out.includes);
        }
      }
      directive_continues =
          out.preprocessor[li] && !line.empty() && line.back() == '\\';
    } else {
      directive_continues = false;
    }

    std::size_t i = 0;
    while (i < line.size()) {
      const char c = line[i];
      const char next = i + 1 < line.size() ? line[i + 1] : '\0';
      switch (state) {
        case State::kBlockComment:
          if (c == '*' && next == '/') {
            state = State::kCode;
            line[i] = ' ';
            line[i + 1] = ' ';
            i += 2;
          } else {
            out.comments[li].push_back(c);
            line[i] = ' ';
            ++i;
          }
          break;
        case State::kRawString:
          if (line.compare(i, raw_terminator.size(), raw_terminator) == 0) {
            for (std::size_t k = 0; k < raw_terminator.size(); ++k) {
              line[i + k] = ' ';
            }
            i += raw_terminator.size();
            state = State::kCode;
          } else {
            line[i] = ' ';
            ++i;
          }
          break;
        case State::kCode:
          if (c == '/' && next == '/') {
            out.comments[li].append(line.substr(i + 2));
            for (std::size_t k = i; k < line.size(); ++k) line[k] = ' ';
            i = line.size();
          } else if (c == '/' && next == '*') {
            state = State::kBlockComment;
            line[i] = ' ';
            line[i + 1] = ' ';
            i += 2;
          } else if (c == '"') {
            const std::string prefix = IdentifierEndingAt(line, i);
            const bool is_raw = prefix == "R" || prefix == "u8R" ||
                                prefix == "uR" || prefix == "UR" ||
                                prefix == "LR";
            if (is_raw) {
              const std::size_t open = line.find('(', i + 1);
              // The standard caps raw-string delimiters at 16 chars; a
              // longer run means this '(' belongs to something else.
              if (open != std::string::npos && open - i - 1 <= 16) {
                raw_terminator.assign(1, ')');
                raw_terminator.append(line, i + 1, open - i - 1);
                raw_terminator.push_back('"');
                for (std::size_t k = i - prefix.size(); k <= open; ++k) {
                  line[k] = ' ';
                }
                i = open + 1;
                state = State::kRawString;
                break;
              }
            }
            line[i++] = ' ';
            while (i < line.size()) {
              const char s = line[i];
              line[i++] = ' ';
              if (s == '\\') {
                if (i < line.size()) line[i++] = ' ';
              } else if (s == '"') {
                break;
              }
            }
            // An unterminated string at end-of-line: treat as closed
            // (a multi-line macro, or our scanner being conservative).
          } else if (c == '\'') {
            const std::string prefix = IdentifierEndingAt(line, i);
            const bool is_char_prefix = prefix == "u8" || prefix == "u" ||
                                        prefix == "U" || prefix == "L";
            if (i > 0 && IsIdentChar(line[i - 1]) && !is_char_prefix) {
              line[i++] = ' ';  // digit separator: 1'000'000
              break;
            }
            line[i++] = ' ';
            while (i < line.size()) {
              const char s = line[i];
              line[i++] = ' ';
              if (s == '\\') {
                if (i < line.size()) line[i++] = ' ';
              } else if (s == '\'') {
                break;
              }
            }
          } else {
            ++i;
          }
          break;
      }
    }
  }

  for (std::size_t li = 0; li < out.code.size(); ++li) {
    TokenizeLine(out.code[li], static_cast<int>(li) + 1, out.tokens);
  }
  return out;
}

}  // namespace sleeplint
