// The declarative layering & capability policy for the sleepwalk tree.
//
// Before the whole-program pass existed, every rule carried its own
// ad-hoc path carve-out (IsClockExemptPath, IsSocketExemptPath, ...).
// This header replaces them with one declarative table, used by both
// the per-line rules (sleeplint.cc) and the layer-DAG analysis
// (sleeplint_wp.cc):
//
//   * a LAYER MAP assigning every top-level directory under
//     src/sleepwalk/ a rank:
//
//         util                                  (0, foundation)
//       < fft, ts, stats                        (1, math)
//       < net, geo, asn, rdns, sim, world      (2, domain)
//       < faults, storage, probing             (3, mechanisms)
//       < obs                                  (4, telemetry)
//       < report, core                         (5, orchestration)
//       < serve                                (6, observers)
//
//     A file may include headers of its own rank or below; an include
//     that climbs the map is a `layering` violation unless a *named
//     exemption* below covers it. The umbrella header
//     src/sleepwalk/sleepwalk.h is exempt by definition (it re-exports
//     everything).
//
//   * CAPABILITY GRANTS naming which paths may perform which ambient
//     effects (clock reads, raw sockets, raw filesystem, RNG
//     construction, CrashInjected throws). The per-line rules consult
//     Grants() instead of hardcoded path predicates, so the entire
//     escape-hatch surface of the linter is visible in one table.
//
// Paths are matched by substring (directories) or suffix (named
// exemptions), after normalizing '\' to '/'; fixture trees therefore
// exercise the same policy as the real tree.
#ifndef SLEEPWALK_TOOLS_SLEEPLINT_POLICY_H_
#define SLEEPWALK_TOOLS_SLEEPLINT_POLICY_H_

#include <string>
#include <string_view>
#include <vector>

namespace sleeplint::policy {

/// Ambient effects a path may be granted.
enum class Capability {
  kClock,       ///< wall/monotonic clock reads
  kSocket,      ///< raw socket/epoll syscalls
  kFilesystem,  ///< direct filesystem access (everyone else via storage::Env)
  kRng,         ///< constructing non-seeded randomness
  kCrashThrow,  ///< throwing util::CrashInjected (failpoint machinery)
};

struct LayerEntry {
  std::string_view dir;  ///< top-level directory under src/sleepwalk/
  int rank;              ///< higher may include lower or equal
};

/// A sanctioned upward include edge. `from_suffix` matches the end of
/// the including file's normalized path; `to_dir` is the layer dir of
/// the included header.
struct IncludeExemption {
  std::string_view name;
  std::string_view from_suffix;
  std::string_view to_dir;
  std::string_view reason;
};

/// The layer map, ascending rank. Order is the documentation.
const std::vector<LayerEntry>& Layers();

/// Rank for a layer dir; -1 when the dir is not in the map.
int RankOf(std::string_view dir);

/// The named exemption table.
const std::vector<IncludeExemption>& IncludeExemptions();

/// The exemption covering `from_path` including into `to_dir`, or
/// nullptr. `from_path` must already be normalized.
const IncludeExemption* FindExemption(const std::string& from_path,
                                      std::string_view to_dir);

/// Layer directory of a normalized path ("core", "util", ...), or ""
/// when the path is not under a src/sleepwalk/ root (tools, tests,
/// examples are unlayered) or is the umbrella header.
std::string LayerDirOf(const std::string& path);

/// True when `path` (normalized) is granted `capability`.
bool Grants(const std::string& path, Capability capability);

/// Library code: the obs::Logger / layering / storage disciplines apply.
bool IsLibraryPath(const std::string& path);

/// Binary serialization layers whose fixed-width narrowing must go
/// through util::CheckedNarrow.
bool IsSerializationPath(const std::string& path);

}  // namespace sleeplint::policy

#endif  // SLEEPWALK_TOOLS_SLEEPLINT_POLICY_H_
