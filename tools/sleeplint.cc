#include "sleeplint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <unordered_set>

namespace sleeplint {

namespace {

// ---------------------------------------------------------------------------
// Source preprocessing
// ---------------------------------------------------------------------------

/// A file split into lines, with comments and string/char literals
/// blanked out (replaced by spaces, so columns survive) and the allow
/// markers extracted *before* stripping — the markers live in comments.
struct PreparedSource {
  std::vector<std::string> code;  ///< stripped code, one entry per line
  /// Rules allowed per line via `// sleeplint: allow(rule)`; an entry
  /// suppresses diagnostics on its own line and the following line.
  std::vector<std::vector<std::string>> allows;
};

void ExtractAllows(std::string_view line, std::vector<std::string>& out) {
  static constexpr std::string_view kMarker = "sleeplint: allow(";
  std::size_t pos = 0;
  while ((pos = line.find(kMarker, pos)) != std::string_view::npos) {
    const std::size_t open = pos + kMarker.size();
    const std::size_t close = line.find(')', open);
    if (close == std::string_view::npos) break;
    out.emplace_back(line.substr(open, close - open));
    pos = close;
  }
}

PreparedSource Prepare(std::string_view content) {
  PreparedSource prepared;
  // Split into lines first (handles a missing trailing newline).
  std::size_t start = 0;
  while (start <= content.size()) {
    const std::size_t end = content.find('\n', start);
    const std::string_view line =
        content.substr(start, end == std::string_view::npos
                                  ? std::string_view::npos
                                  : end - start);
    prepared.code.emplace_back(line);
    prepared.allows.emplace_back();
    ExtractAllows(line, prepared.allows.back());
    if (end == std::string_view::npos) break;
    start = end + 1;
  }

  // Blank comments and literals in place. One pass with a tiny state
  // machine; raw strings are rare in this tree and not handled — a raw
  // string containing a banned token would only cause a false positive,
  // which the allow escape covers.
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (auto& line : prepared.code) {
    if (state == State::kLineComment) state = State::kCode;
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      const char next = i + 1 < line.size() ? line[i + 1] : '\0';
      switch (state) {
        case State::kCode:
          if (c == '/' && next == '/') {
            state = State::kLineComment;
            line.resize(i);  // drop the rest of the line
            i = line.size();
          } else if (c == '/' && next == '*') {
            state = State::kBlockComment;
            line[i] = ' ';
            line[i + 1] = ' ';
            ++i;
          } else if (c == '"') {
            state = State::kString;
            line[i] = ' ';
          } else if (c == '\'') {
            state = State::kChar;
            line[i] = ' ';
          }
          break;
        case State::kBlockComment:
          if (c == '*' && next == '/') {
            state = State::kCode;
            line[i] = ' ';
            line[i + 1] = ' ';
            ++i;
          } else {
            line[i] = ' ';
          }
          break;
        case State::kString:
        case State::kChar: {
          const char quote = state == State::kString ? '"' : '\'';
          if (c == '\\') {
            line[i] = ' ';
            if (i + 1 < line.size()) line[++i] = ' ';
          } else if (c == quote) {
            state = State::kCode;
            line[i] = ' ';
          } else {
            line[i] = ' ';
          }
          break;
        }
        case State::kLineComment:
          break;  // unreachable; handled above
      }
    }
    // An unterminated string at end-of-line: treat as closed (likely a
    // multi-line macro or our scanner being conservative).
    if (state == State::kString || state == State::kChar) state = State::kCode;
  }
  return prepared;
}

// ---------------------------------------------------------------------------
// Path scoping
// ---------------------------------------------------------------------------

std::string NormalizePath(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  return path;
}

bool PathContains(const std::string& path, std::string_view needle) {
  return path.find(needle) != std::string::npos;
}

/// Library code: the obs::Logger discipline (no-raw-io) applies.
bool IsLibraryPath(const std::string& path) {
  return PathContains(path, "src/sleepwalk/");
}

/// Live-probe networking and the admin plane: the only files allowed to
/// read real clocks (socket timeouts, ICMP RTTs, and a serving loop are
/// wall phenomena).
bool IsClockExemptPath(const std::string& path) {
  return PathContains(path, "net/socket") || PathContains(path, "net/icmp") ||
         PathContains(path, "/serve/");
}

/// Layers permitted raw socket/epoll syscalls: the probe datapath, the
/// DNS resolver, and the admin plane's server loop. Everywhere else a
/// listening socket or raw recv would be a determinism leak.
bool IsSocketExemptPath(const std::string& path) {
  return PathContains(path, "net/socket") || PathContains(path, "net/icmp") ||
         PathContains(path, "rdns/dns_resolver") ||
         PathContains(path, "/serve/");
}

/// The one sanctioned RNG implementation.
bool IsRngExemptPath(const std::string& path) {
  return PathContains(path, "util/rng");
}

/// The one layer permitted to touch the filesystem directly; everything
/// else persists through the storage::Env seam so crash/ENOSPC behaviour
/// stays provable (and failpoint-injectable).
bool IsStorageExemptPath(const std::string& path) {
  return PathContains(path, "/storage/");
}

/// Binary serialization layers whose fixed-width fields must narrow
/// through util::CheckedNarrow.
bool IsSerializationPath(const std::string& path) {
  return PathContains(path, "core/checkpoint") ||
         PathContains(path, "core/dataset");
}

bool IsHeaderPath(const std::string& path) {
  return path.ends_with(".h") || path.ends_with(".hpp");
}

// ---------------------------------------------------------------------------
// Token matching
// ---------------------------------------------------------------------------

bool IsIdentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// True when `token` occurs in `line` and is not immediately preceded by
/// an identifier character or a member/scope spelling that makes it a
/// different name. `allow_scope_prefix` controls whether `::token` (and
/// `.token` / `->token`) still counts as a match:
///   * for free functions like `time(` we *want* `std::time(`/`::time(`
///     to match, but not `x.time()` (our own accessors) — callers pass
///     member_call_exempt = true;
///   * for type names like `mt19937` any occurrence matches.
bool MatchesToken(const std::string& line, std::string_view token,
                  bool member_call_exempt) {
  std::size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    const char prev = pos > 0 ? line[pos - 1] : '\0';
    const char prev2 = pos > 1 ? line[pos - 2] : '\0';
    bool excluded = IsIdentChar(prev);
    if (!excluded && member_call_exempt) {
      // `belief.time()` or `span->time()` is a member of ours, not libc.
      excluded = prev == '.' || (prev == '>' && prev2 == '-');
    }
    if (!excluded) return true;
    ++pos;
  }
  return false;
}

struct TokenRule {
  std::string_view token;
  bool member_call_exempt;
  std::string_view what;  ///< human name for the message
};

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

constexpr std::string_view kRuleWallclock = "no-wallclock";
constexpr std::string_view kRuleRng = "no-ambient-rng";
constexpr std::string_view kRuleRawIo = "no-raw-io";
constexpr std::string_view kRuleRawFs = "no-raw-fs";
constexpr std::string_view kRuleRawSocket = "no-raw-socket";
constexpr std::string_view kRuleNarrowing = "no-unchecked-narrowing";
constexpr std::string_view kRuleHygiene = "header-hygiene";

constexpr TokenRule kWallclockTokens[] = {
    {"system_clock::now", false, "std::chrono::system_clock::now"},
    {"steady_clock::now", false, "std::chrono::steady_clock::now"},
    {"high_resolution_clock::now", false,
     "std::chrono::high_resolution_clock::now"},
    {"gettimeofday", false, "gettimeofday"},
    {"clock_gettime", false, "clock_gettime"},
    {"time(", true, "time()"},
    {"localtime(", true, "localtime()"},
    {"gmtime(", true, "gmtime()"},
};

constexpr TokenRule kRngTokens[] = {
    {"random_device", false, "std::random_device"},
    {"mt19937", false, "std::mt19937"},
    {"minstd_rand", false, "std::minstd_rand"},
    {"default_random_engine", false, "std::default_random_engine"},
    {"rand(", true, "rand()"},
    {"srand(", true, "srand()"},
    {"drand48", false, "drand48"},
    {"lrand48", false, "lrand48"},
};

constexpr TokenRule kRawFsTokens[] = {
    {"std::ofstream", false, "std::ofstream"},
    {"std::ifstream", false, "std::ifstream"},
    {"std::fstream", false, "std::fstream"},
    {"fopen(", true, "fopen()"},
    {"fsync(", true, "fsync()"},
    {"std::rename", false, "std::rename"},
    {"std::tmpfile", false, "std::tmpfile"},
};

// Raw socket/epoll syscalls. `bind(` and `connect(` are deliberately
// absent: std::bind and member connect() spellings would false-positive
// constantly, and no socket reaches bind/connect without first passing
// one of the tokens below.
constexpr TokenRule kRawSocketTokens[] = {
    {"socket(", true, "socket()"},
    {"accept(", true, "accept()"},
    {"accept4(", true, "accept4()"},
    {"listen(", true, "listen()"},
    {"epoll_create", false, "epoll_create"},
    {"epoll_ctl", false, "epoll_ctl"},
    {"epoll_wait", false, "epoll_wait"},
    {"setsockopt(", true, "setsockopt()"},
    {"getsockname(", true, "getsockname()"},
    {"recvfrom(", true, "recvfrom()"},
    {"sendto(", true, "sendto()"},
};

constexpr TokenRule kRawIoTokens[] = {
    {"std::cout", false, "std::cout"},
    {"std::cerr", false, "std::cerr"},
    {"std::clog", false, "std::clog"},
    {"printf(", true, "printf()"},
    {"fprintf(", true, "fprintf()"},
    {"puts(", true, "puts()"},
    {"putchar(", true, "putchar()"},
};

/// Narrow integer destinations for no-unchecked-narrowing. Plain
/// substring match after `static_cast<` — the serialization files only
/// ever cast to the fixed-width aliases.
constexpr std::string_view kNarrowTargets[] = {
    "std::uint8_t",  "std::uint16_t", "std::uint32_t", "std::int8_t",
    "std::int16_t",  "std::int32_t",  "uint8_t",       "uint16_t",
    "uint32_t",      "int8_t",        "int16_t",       "int32_t",
    "char",          "short",
};

bool IsNarrowingCast(const std::string& line) {
  std::size_t pos = 0;
  static constexpr std::string_view kCast = "static_cast<";
  while ((pos = line.find(kCast, pos)) != std::string::npos) {
    // Extract the target type up to the matching '>'.
    const std::size_t open = pos + kCast.size();
    const std::size_t close = line.find('>', open);
    if (close == std::string::npos) return false;
    std::string target = line.substr(open, close - open);
    // Trim whitespace and const.
    std::string cleaned;
    std::istringstream words{target};
    std::string word;
    while (words >> word) {
      if (word == "const") continue;
      if (!cleaned.empty()) cleaned.push_back(' ');
      cleaned += word;
    }
    for (const auto narrow : kNarrowTargets) {
      if (cleaned == narrow || cleaned == std::string("unsigned ") +
                                              std::string(narrow)) {
        return true;
      }
    }
    pos = close;
  }
  return false;
}

bool RuleEnabled(std::string_view rule,
                 const std::vector<std::string>& only_rules) {
  if (only_rules.empty()) return true;
  return std::find(only_rules.begin(), only_rules.end(), rule) !=
         only_rules.end();
}

bool LineAllows(const PreparedSource& source, std::size_t line_index,
                std::string_view rule) {
  const auto matches = [&](const std::vector<std::string>& allows) {
    return std::find(allows.begin(), allows.end(), rule) != allows.end();
  };
  if (matches(source.allows[line_index])) return true;
  return line_index > 0 && matches(source.allows[line_index - 1]);
}

/// header-hygiene: an include guard (#ifndef/#define pair) or #pragma
/// once must appear before any other preprocessor/code content.
bool HasIncludeGuard(const PreparedSource& source) {
  std::string guard_macro;
  for (const auto& line : source.code) {
    std::istringstream in{line};
    std::string tok;
    if (!(in >> tok)) continue;  // blank / comment-only line
    if (tok == "#pragma") {
      std::string what;
      if (in >> what && what == "once") return true;
      return false;  // some other pragma before any guard
    }
    if (tok == "#ifndef" && guard_macro.empty()) {
      in >> guard_macro;
      if (guard_macro.empty()) return false;
      continue;
    }
    if (tok == "#define" && !guard_macro.empty()) {
      std::string macro;
      in >> macro;
      return macro == guard_macro;
    }
    return false;  // real content before any guard
  }
  return false;  // empty file / no guard found
}

void CheckTokenRule(const std::string& path, const PreparedSource& source,
                    std::string_view rule, const TokenRule* tokens,
                    std::size_t n_tokens, std::string_view advice,
                    std::vector<Diagnostic>& out, int* suppressed) {
  for (std::size_t i = 0; i < source.code.size(); ++i) {
    for (std::size_t t = 0; t < n_tokens; ++t) {
      const auto& token = tokens[t];
      if (!MatchesToken(source.code[i], token.token,
                        token.member_call_exempt)) {
        continue;
      }
      if (LineAllows(source, i, rule)) {
        if (suppressed != nullptr) ++*suppressed;
        continue;
      }
      Diagnostic diagnostic;
      diagnostic.path = path;
      diagnostic.line = static_cast<int>(i) + 1;
      diagnostic.rule = std::string(rule);
      diagnostic.message =
          std::string(token.what) + " " + std::string(advice);
      out.push_back(std::move(diagnostic));
      break;  // one diagnostic per line per rule
    }
  }
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

struct Baseline {
  /// Entries `path:rule` (whole file) and `path:line:rule`.
  std::unordered_set<std::string> file_rules;
  std::unordered_set<std::string> line_rules;
  bool error = false;
};

Baseline LoadBaseline(const std::string& path) {
  Baseline baseline;
  if (path.empty()) return baseline;
  std::ifstream in{path};
  if (!in) {
    baseline.error = true;
    return baseline;
  }
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    while (!line.empty() && (line.back() == ' ' || line.back() == '\t' ||
                             line.back() == '\r')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    // path:line:rule has a digit-run between the last two colons.
    const std::size_t last = line.rfind(':');
    if (last == std::string::npos) continue;
    const std::size_t prev = line.rfind(':', last - 1);
    bool with_line = false;
    if (prev != std::string::npos && last > prev + 1) {
      with_line = std::all_of(line.begin() + static_cast<std::ptrdiff_t>(
                                                 prev + 1),
                              line.begin() + static_cast<std::ptrdiff_t>(last),
                              [](char c) { return c >= '0' && c <= '9'; });
    }
    if (with_line) {
      baseline.line_rules.insert(NormalizePath(line));
    } else {
      baseline.file_rules.insert(NormalizePath(line));
    }
  }
  return baseline;
}

bool BaselineMatches(const Baseline& baseline, const Diagnostic& diagnostic) {
  if (baseline.file_rules.count(diagnostic.path + ":" + diagnostic.rule) >
      0) {
    return true;
  }
  return baseline.line_rules.count(diagnostic.path + ":" +
                                   std::to_string(diagnostic.line) + ":" +
                                   diagnostic.rule) > 0;
}

// ---------------------------------------------------------------------------
// Walking
// ---------------------------------------------------------------------------

bool HasSourceExtension(const std::filesystem::path& path) {
  const auto ext = path.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp" ||
         ext == ".cxx";
}

std::vector<std::string> CollectFiles(const std::vector<std::string>& roots) {
  std::vector<std::string> files;
  for (const auto& root : roots) {
    std::error_code ec;
    if (std::filesystem::is_directory(root, ec)) {
      for (auto it = std::filesystem::recursive_directory_iterator(
               root, std::filesystem::directory_options::skip_permission_denied,
               ec);
           it != std::filesystem::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file(ec) && HasSourceExtension(it->path())) {
          files.push_back(it->path().generic_string());
        }
      }
    } else {
      files.push_back(root);  // explicit file: scanned regardless of extension
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace

const std::vector<std::string>& AllRules() {
  static const std::vector<std::string> kRules = {
      std::string(kRuleWallclock),  std::string(kRuleRng),
      std::string(kRuleRawIo),      std::string(kRuleRawFs),
      std::string(kRuleRawSocket),  std::string(kRuleNarrowing),
      std::string(kRuleHygiene)};
  return kRules;
}

std::vector<Diagnostic> LintFile(const std::string& raw_path,
                                 std::string_view content,
                                 const std::vector<std::string>& only_rules,
                                 int* suppressed_by_allow) {
  const std::string path = NormalizePath(raw_path);
  const PreparedSource source = Prepare(content);
  std::vector<Diagnostic> diagnostics;

  if (RuleEnabled(kRuleWallclock, only_rules) && !IsClockExemptPath(path)) {
    CheckTokenRule(path, source, kRuleWallclock, kWallclockTokens,
                   std::size(kWallclockTokens),
                   "reads a real clock; campaign code must use virtual time "
                   "(net/socket*, net/icmp* are exempt)",
                   diagnostics, suppressed_by_allow);
  }
  if (RuleEnabled(kRuleRng, only_rules) && !IsRngExemptPath(path)) {
    CheckTokenRule(path, source, kRuleRng, kRngTokens, std::size(kRngTokens),
                   "is ambient randomness; use a seeded sleepwalk::Rng "
                   "(util/rng.h)",
                   diagnostics, suppressed_by_allow);
  }
  if (RuleEnabled(kRuleRawIo, only_rules) && IsLibraryPath(path)) {
    CheckTokenRule(path, source, kRuleRawIo, kRawIoTokens,
                   std::size(kRawIoTokens),
                   "writes directly to a process stream; library code "
                   "reports through obs::Logger",
                   diagnostics, suppressed_by_allow);
  }
  if (RuleEnabled(kRuleRawFs, only_rules) && IsLibraryPath(path) &&
      !IsStorageExemptPath(path)) {
    CheckTokenRule(path, source, kRuleRawFs, kRawFsTokens,
                   std::size(kRawFsTokens),
                   "touches the filesystem directly; persist through "
                   "storage::Env (storage/file.h) so crash safety stays "
                   "provable (storage/ is exempt)",
                   diagnostics, suppressed_by_allow);
  }
  if (RuleEnabled(kRuleRawSocket, only_rules) && IsLibraryPath(path) &&
      !IsSocketExemptPath(path)) {
    CheckTokenRule(path, source, kRuleRawSocket, kRawSocketTokens,
                   std::size(kRawSocketTokens),
                   "is a raw socket/epoll syscall; only net/socket*, "
                   "net/icmp*, rdns/dns_resolver and serve/ may touch "
                   "sockets",
                   diagnostics, suppressed_by_allow);
  }
  if (RuleEnabled(kRuleNarrowing, only_rules) && IsSerializationPath(path)) {
    for (std::size_t i = 0; i < source.code.size(); ++i) {
      if (!IsNarrowingCast(source.code[i])) continue;
      if (LineAllows(source, i, kRuleNarrowing)) {
        if (suppressed_by_allow != nullptr) ++*suppressed_by_allow;
        continue;
      }
      Diagnostic diagnostic;
      diagnostic.path = path;
      diagnostic.line = static_cast<int>(i) + 1;
      diagnostic.rule = std::string(kRuleNarrowing);
      diagnostic.message =
          "raw static_cast to a narrower integer in a serialization file; "
          "use util::CheckedNarrow (util/narrow.h)";
      diagnostics.push_back(std::move(diagnostic));
    }
  }
  if (RuleEnabled(kRuleHygiene, only_rules) && IsHeaderPath(path)) {
    if (!HasIncludeGuard(source) && !LineAllows(source, 0, kRuleHygiene)) {
      Diagnostic diagnostic;
      diagnostic.path = path;
      diagnostic.line = 1;
      diagnostic.rule = std::string(kRuleHygiene);
      diagnostic.message =
          "header lacks an include guard (#ifndef/#define) or #pragma once";
      diagnostics.push_back(std::move(diagnostic));
    }
  }
  return diagnostics;
}

Result Run(const Options& options) {
  Result result;
  const Baseline baseline = LoadBaseline(options.baseline_path);
  result.baseline_error = baseline.error;

  for (const auto& file : CollectFiles(options.roots)) {
    std::ifstream in{file, std::ios::binary};
    if (!in) continue;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string content = buffer.str();
    ++result.files_scanned;
    for (auto& diagnostic :
         LintFile(file, content, options.only_rules,
                  &result.suppressed_by_allow)) {
      if (BaselineMatches(baseline, diagnostic)) {
        ++result.suppressed_by_baseline;
      } else {
        result.diagnostics.push_back(std::move(diagnostic));
      }
    }
  }
  return result;
}

void PrintDiagnostics(std::ostream& out,
                      const std::vector<Diagnostic>& diagnostics) {
  for (const auto& diagnostic : diagnostics) {
    out << diagnostic.path << ':' << diagnostic.line << ": ["
        << diagnostic.rule << "] " << diagnostic.message << '\n';
  }
}

}  // namespace sleeplint
