#include "sleeplint.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <tuple>
#include <unordered_set>

#include "sleeplint_facts.h"
#include "sleeplint_lexer.h"
#include "sleeplint_policy.h"
#include "sleeplint_wp.h"

namespace sleeplint {

namespace {

// ---------------------------------------------------------------------------
// Source preparation (lexing + allow markers)
// ---------------------------------------------------------------------------

/// A lexed file plus its escape markers. The lexer blanks comments and
/// all string forms (including raw strings) from `lexed.code` while the
/// markers are read from `lexed.comments` — so a quoted
/// "sleeplint: allow(...)" in a string literal is data, not an escape.
struct PreparedSource {
  LexedSource lexed;
  /// Rules allowed per line via `// sleeplint: allow(<rule>)`; an entry
  /// suppresses diagnostics on its own line and the following line.
  std::vector<std::vector<std::string>> allows;
  /// Rules waived for the file via `// sleeplint: allow-file(<rule>)`.
  std::vector<std::string> file_allows;
  /// bad-allow findings: markers naming no known rule.
  std::vector<Diagnostic> marker_diagnostics;
};

bool KnownRule(std::string_view rule) {
  const auto& all = AllRules();
  return std::find(all.begin(), all.end(), rule) != all.end();
}

/// Scans one comment line for allow/allow-file markers. Unknown rule
/// names become bad-allow diagnostics: a typoed escape that silently
/// suppresses nothing is worse than no escape at all.
void ExtractAllows(const std::string& path, std::string_view comment,
                   int line, std::vector<std::string>& line_allows,
                   std::vector<std::string>& file_allows,
                   std::vector<Diagnostic>& marker_diagnostics) {
  struct Marker {
    std::string_view text;
    bool file_scope;
  };
  static constexpr Marker kMarkers[] = {
      {"sleeplint: allow(", false},
      {"sleeplint: allow-file(", true},
  };
  for (const auto& marker : kMarkers) {
    std::size_t pos = 0;
    while ((pos = comment.find(marker.text, pos)) !=
           std::string_view::npos) {
      const std::size_t open = pos + marker.text.size();
      const std::size_t close = comment.find(')', open);
      if (close == std::string_view::npos) break;
      std::string rule{comment.substr(open, close - open)};
      // Placeholders in documentation ("...", "<rule>") are not
      // escapes and not typos — only identifier-shaped names count.
      const bool identifier_shaped =
          !rule.empty() &&
          std::all_of(rule.begin(), rule.end(), [](char c) {
            return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                   c == '-';
          });
      if (!identifier_shaped) {
        pos = close;
        continue;
      }
      if (KnownRule(rule)) {
        (marker.file_scope ? file_allows : line_allows)
            .push_back(std::move(rule));
      } else {
        Diagnostic diagnostic;
        diagnostic.path = path;
        diagnostic.line = line;
        diagnostic.rule = std::string(rules::kBadAllow);
        diagnostic.message = std::string(marker.file_scope
                                             ? "allow-file marker"
                                             : "allow marker") +
                             " names unknown rule \"" + rule +
                             "\"; see --list-rules for the catalogue";
        marker_diagnostics.push_back(std::move(diagnostic));
      }
      pos = close;
    }
  }
}

PreparedSource Prepare(const std::string& path, std::string_view content) {
  PreparedSource prepared;
  prepared.lexed = Lex(content);
  prepared.allows.resize(prepared.lexed.comments.size());
  for (std::size_t i = 0; i < prepared.lexed.comments.size(); ++i) {
    ExtractAllows(path, prepared.lexed.comments[i], static_cast<int>(i) + 1,
                  prepared.allows[i], prepared.file_allows,
                  prepared.marker_diagnostics);
  }
  return prepared;
}

// ---------------------------------------------------------------------------
// Path scoping
// ---------------------------------------------------------------------------

std::string NormalizePath(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  return path;
}

bool IsHeaderPath(const std::string& path) {
  return path.ends_with(".h") || path.ends_with(".hpp");
}

// ---------------------------------------------------------------------------
// Token matching
// ---------------------------------------------------------------------------

bool IsIdentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// True when `token` occurs in `line` and is not immediately preceded by
/// an identifier character or a member/scope spelling that makes it a
/// different name. `allow_scope_prefix` controls whether `::token` (and
/// `.token` / `->token`) still counts as a match:
///   * for free functions like `time(` we *want* `std::time(`/`::time(`
///     to match, but not `x.time()` (our own accessors) — callers pass
///     member_call_exempt = true;
///   * for type names like `mt19937` any occurrence matches.
bool MatchesToken(const std::string& line, std::string_view token,
                  bool member_call_exempt) {
  std::size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    const char prev = pos > 0 ? line[pos - 1] : '\0';
    const char prev2 = pos > 1 ? line[pos - 2] : '\0';
    bool excluded = IsIdentChar(prev);
    if (!excluded && member_call_exempt) {
      // `belief.time()` or `span->time()` is a member of ours, not libc.
      excluded = prev == '.' || (prev == '>' && prev2 == '-');
    }
    if (!excluded) return true;
    ++pos;
  }
  return false;
}

struct TokenRule {
  std::string_view token;
  bool member_call_exempt;
  std::string_view what;  ///< human name for the message
};

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

constexpr TokenRule kWallclockTokens[] = {
    {"system_clock::now", false, "std::chrono::system_clock::now"},
    {"steady_clock::now", false, "std::chrono::steady_clock::now"},
    {"high_resolution_clock::now", false,
     "std::chrono::high_resolution_clock::now"},
    {"gettimeofday", false, "gettimeofday"},
    {"clock_gettime", false, "clock_gettime"},
    {"time(", true, "time()"},
    {"localtime(", true, "localtime()"},
    {"gmtime(", true, "gmtime()"},
};

constexpr TokenRule kRngTokens[] = {
    {"random_device", false, "std::random_device"},
    {"mt19937", false, "std::mt19937"},
    {"minstd_rand", false, "std::minstd_rand"},
    {"default_random_engine", false, "std::default_random_engine"},
    {"rand(", true, "rand()"},
    {"srand(", true, "srand()"},
    {"drand48", false, "drand48"},
    {"lrand48", false, "lrand48"},
};

constexpr TokenRule kRawFsTokens[] = {
    {"std::ofstream", false, "std::ofstream"},
    {"std::ifstream", false, "std::ifstream"},
    {"std::fstream", false, "std::fstream"},
    {"fopen(", true, "fopen()"},
    {"fsync(", true, "fsync()"},
    {"std::rename", false, "std::rename"},
    {"std::tmpfile", false, "std::tmpfile"},
};

// Raw socket/epoll syscalls. `bind(` and `connect(` are deliberately
// absent: std::bind and member connect() spellings would false-positive
// constantly, and no socket reaches bind/connect without first passing
// one of the tokens below.
constexpr TokenRule kRawSocketTokens[] = {
    {"socket(", true, "socket()"},
    {"accept(", true, "accept()"},
    {"accept4(", true, "accept4()"},
    {"listen(", true, "listen()"},
    {"epoll_create", false, "epoll_create"},
    {"epoll_ctl", false, "epoll_ctl"},
    {"epoll_wait", false, "epoll_wait"},
    {"setsockopt(", true, "setsockopt()"},
    {"getsockname(", true, "getsockname()"},
    {"recvfrom(", true, "recvfrom()"},
    {"sendto(", true, "sendto()"},
};

constexpr TokenRule kRawIoTokens[] = {
    {"std::cout", false, "std::cout"},
    {"std::cerr", false, "std::cerr"},
    {"std::clog", false, "std::clog"},
    {"printf(", true, "printf()"},
    {"fprintf(", true, "fprintf()"},
    {"puts(", true, "puts()"},
    {"putchar(", true, "putchar()"},
};

/// Narrow integer destinations for no-unchecked-narrowing. Plain
/// substring match after `static_cast<` — the serialization files only
/// ever cast to the fixed-width aliases.
constexpr std::string_view kNarrowTargets[] = {
    "std::uint8_t",  "std::uint16_t", "std::uint32_t", "std::int8_t",
    "std::int16_t",  "std::int32_t",  "uint8_t",       "uint16_t",
    "uint32_t",      "int8_t",        "int16_t",       "int32_t",
    "char",          "short",
};

bool IsNarrowingCast(const std::string& line) {
  std::size_t pos = 0;
  static constexpr std::string_view kCast = "static_cast<";
  while ((pos = line.find(kCast, pos)) != std::string::npos) {
    // Extract the target type up to the matching '>'.
    const std::size_t open = pos + kCast.size();
    const std::size_t close = line.find('>', open);
    if (close == std::string::npos) return false;
    std::string target = line.substr(open, close - open);
    // Trim whitespace and const.
    std::string cleaned;
    std::istringstream words{target};
    std::string word;
    while (words >> word) {
      if (word == "const") continue;
      if (!cleaned.empty()) cleaned.push_back(' ');
      cleaned += word;
    }
    for (const auto narrow : kNarrowTargets) {
      if (cleaned == narrow || cleaned == std::string("unsigned ") +
                                              std::string(narrow)) {
        return true;
      }
    }
    pos = close;
  }
  return false;
}

bool RuleEnabled(std::string_view rule,
                 const std::vector<std::string>& only_rules) {
  if (only_rules.empty()) return true;
  return std::find(only_rules.begin(), only_rules.end(), rule) !=
         only_rules.end();
}

bool LineAllows(const PreparedSource& source, std::size_t line_index,
                std::string_view rule) {
  const auto matches = [&](const std::vector<std::string>& allows) {
    return std::find(allows.begin(), allows.end(), rule) != allows.end();
  };
  if (matches(source.file_allows)) return true;
  if (matches(source.allows[line_index])) return true;
  return line_index > 0 && matches(source.allows[line_index - 1]);
}

/// header-hygiene: an include guard (#ifndef/#define pair) or #pragma
/// once must appear before any other preprocessor/code content.
bool HasIncludeGuard(const PreparedSource& source) {
  std::string guard_macro;
  for (const auto& line : source.lexed.code) {
    std::istringstream in{line};
    std::string tok;
    if (!(in >> tok)) continue;  // blank / comment-only line
    if (tok == "#pragma") {
      std::string what;
      if (in >> what && what == "once") return true;
      return false;  // some other pragma before any guard
    }
    if (tok == "#ifndef" && guard_macro.empty()) {
      in >> guard_macro;
      if (guard_macro.empty()) return false;
      continue;
    }
    if (tok == "#define" && !guard_macro.empty()) {
      std::string macro;
      in >> macro;
      return macro == guard_macro;
    }
    return false;  // real content before any guard
  }
  return false;  // empty file / no guard found
}

void CheckTokenRule(const std::string& path, const PreparedSource& source,
                    std::string_view rule, const TokenRule* tokens,
                    std::size_t n_tokens, std::string_view advice,
                    std::vector<Diagnostic>& out, int* suppressed) {
  for (std::size_t i = 0; i < source.lexed.code.size(); ++i) {
    for (std::size_t t = 0; t < n_tokens; ++t) {
      const auto& token = tokens[t];
      if (!MatchesToken(source.lexed.code[i], token.token,
                        token.member_call_exempt)) {
        continue;
      }
      if (LineAllows(source, i, rule)) {
        if (suppressed != nullptr) ++*suppressed;
        continue;
      }
      Diagnostic diagnostic;
      diagnostic.path = path;
      diagnostic.line = static_cast<int>(i) + 1;
      diagnostic.rule = std::string(rule);
      diagnostic.message =
          std::string(token.what) + " " + std::string(advice);
      out.push_back(std::move(diagnostic));
      break;  // one diagnostic per line per rule
    }
  }
}

/// Runs the per-line rules over one prepared file.
std::vector<Diagnostic> LintPrepared(
    const std::string& path, const PreparedSource& source,
    const std::vector<std::string>& only_rules, int* suppressed_by_allow) {
  std::vector<Diagnostic> diagnostics;
  using policy::Capability;

  if (RuleEnabled(rules::kBadAllow, only_rules)) {
    for (const auto& diagnostic : source.marker_diagnostics) {
      diagnostics.push_back(diagnostic);
    }
  }
  if (RuleEnabled(rules::kWallclock, only_rules) &&
      !policy::Grants(path, Capability::kClock)) {
    CheckTokenRule(path, source, rules::kWallclock, kWallclockTokens,
                   std::size(kWallclockTokens),
                   "reads a real clock; campaign code must use virtual time "
                   "(net/socket*, net/icmp* are exempt)",
                   diagnostics, suppressed_by_allow);
  }
  if (RuleEnabled(rules::kRng, only_rules) &&
      !policy::Grants(path, Capability::kRng)) {
    CheckTokenRule(path, source, rules::kRng, kRngTokens,
                   std::size(kRngTokens),
                   "is ambient randomness; use a seeded sleepwalk::Rng "
                   "(util/rng.h)",
                   diagnostics, suppressed_by_allow);
  }
  if (RuleEnabled(rules::kRawIo, only_rules) && policy::IsLibraryPath(path)) {
    CheckTokenRule(path, source, rules::kRawIo, kRawIoTokens,
                   std::size(kRawIoTokens),
                   "writes directly to a process stream; library code "
                   "reports through obs::Logger",
                   diagnostics, suppressed_by_allow);
  }
  if (RuleEnabled(rules::kRawFs, only_rules) && policy::IsLibraryPath(path) &&
      !policy::Grants(path, Capability::kFilesystem)) {
    CheckTokenRule(path, source, rules::kRawFs, kRawFsTokens,
                   std::size(kRawFsTokens),
                   "touches the filesystem directly; persist through "
                   "storage::Env (storage/file.h) so crash safety stays "
                   "provable (storage/ is exempt)",
                   diagnostics, suppressed_by_allow);
  }
  if (RuleEnabled(rules::kRawSocket, only_rules) &&
      policy::IsLibraryPath(path) &&
      !policy::Grants(path, Capability::kSocket)) {
    CheckTokenRule(path, source, rules::kRawSocket, kRawSocketTokens,
                   std::size(kRawSocketTokens),
                   "is a raw socket/epoll syscall; only net/socket*, "
                   "net/icmp*, rdns/dns_resolver and serve/ may touch "
                   "sockets",
                   diagnostics, suppressed_by_allow);
  }
  if (RuleEnabled(rules::kNarrowing, only_rules) &&
      policy::IsSerializationPath(path)) {
    for (std::size_t i = 0; i < source.lexed.code.size(); ++i) {
      if (!IsNarrowingCast(source.lexed.code[i])) continue;
      if (LineAllows(source, i, rules::kNarrowing)) {
        if (suppressed_by_allow != nullptr) ++*suppressed_by_allow;
        continue;
      }
      Diagnostic diagnostic;
      diagnostic.path = path;
      diagnostic.line = static_cast<int>(i) + 1;
      diagnostic.rule = std::string(rules::kNarrowing);
      diagnostic.message =
          "raw static_cast to a narrower integer in a serialization file; "
          "use util::CheckedNarrow (util/narrow.h)";
      diagnostics.push_back(std::move(diagnostic));
    }
  }
  if (RuleEnabled(rules::kHygiene, only_rules) && IsHeaderPath(path)) {
    if (!HasIncludeGuard(source) && !source.lexed.code.empty() &&
        !LineAllows(source, 0, rules::kHygiene)) {
      Diagnostic diagnostic;
      diagnostic.path = path;
      diagnostic.line = 1;
      diagnostic.rule = std::string(rules::kHygiene);
      diagnostic.message =
          "header lacks an include guard (#ifndef/#define) or #pragma once";
      diagnostics.push_back(std::move(diagnostic));
    }
  }
  return diagnostics;
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

struct Baseline {
  /// Entries `path:rule` (whole file) and `path:line:rule`.
  std::unordered_set<std::string> file_rules;
  std::unordered_set<std::string> line_rules;
  bool error = false;
};

Baseline LoadBaseline(const std::string& path) {
  Baseline baseline;
  if (path.empty()) return baseline;
  std::ifstream in{path};
  if (!in) {
    baseline.error = true;
    return baseline;
  }
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    while (!line.empty() && (line.back() == ' ' || line.back() == '\t' ||
                             line.back() == '\r')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    // path:line:rule has a digit-run between the last two colons.
    const std::size_t last = line.rfind(':');
    if (last == std::string::npos) continue;
    const std::size_t prev = line.rfind(':', last - 1);
    bool with_line = false;
    if (prev != std::string::npos && last > prev + 1) {
      with_line = std::all_of(line.begin() + static_cast<std::ptrdiff_t>(
                                                 prev + 1),
                              line.begin() + static_cast<std::ptrdiff_t>(last),
                              [](char c) { return c >= '0' && c <= '9'; });
    }
    if (with_line) {
      baseline.line_rules.insert(NormalizePath(line));
    } else {
      baseline.file_rules.insert(NormalizePath(line));
    }
  }
  return baseline;
}

bool BaselineMatches(const Baseline& baseline, const Diagnostic& diagnostic) {
  if (baseline.file_rules.count(diagnostic.path + ":" + diagnostic.rule) >
      0) {
    return true;
  }
  return baseline.line_rules.count(diagnostic.path + ":" +
                                   std::to_string(diagnostic.line) + ":" +
                                   diagnostic.rule) > 0;
}

// ---------------------------------------------------------------------------
// Walking
// ---------------------------------------------------------------------------

bool HasSourceExtension(const std::filesystem::path& path) {
  const auto ext = path.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp" ||
         ext == ".cxx";
}

std::vector<std::string> CollectFiles(const std::vector<std::string>& roots) {
  std::vector<std::string> files;
  for (const auto& root : roots) {
    std::error_code ec;
    if (std::filesystem::is_directory(root, ec)) {
      for (auto it = std::filesystem::recursive_directory_iterator(
               root, std::filesystem::directory_options::skip_permission_denied,
               ec);
           it != std::filesystem::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file(ec) && HasSourceExtension(it->path())) {
          files.push_back(it->path().generic_string());
        }
      }
    } else {
      files.push_back(root);  // explicit file: scanned regardless of extension
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

// ---------------------------------------------------------------------------
// Output escaping
// ---------------------------------------------------------------------------

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const std::vector<std::string>& AllRules() {
  static const std::vector<std::string> kRules = {
      std::string(rules::kWallclock),     std::string(rules::kRng),
      std::string(rules::kRawIo),         std::string(rules::kRawFs),
      std::string(rules::kRawSocket),     std::string(rules::kNarrowing),
      std::string(rules::kHygiene),       std::string(rules::kBadAllow),
      std::string(rules::kLayering),      std::string(rules::kIncludeCycle),
      std::string(rules::kLockOrder),     std::string(rules::kThrowingDtor),
      std::string(rules::kThrowNoexcept),
      std::string(rules::kCrashContainment)};
  return kRules;
}

std::vector<Diagnostic> LintFile(const std::string& raw_path,
                                 std::string_view content,
                                 const std::vector<std::string>& only_rules,
                                 int* suppressed_by_allow) {
  const std::string path = NormalizePath(raw_path);
  const PreparedSource source = Prepare(path, content);
  return LintPrepared(path, source, only_rules, suppressed_by_allow);
}

Result Run(const Options& options) {
  Result result;
  const Baseline baseline = LoadBaseline(options.baseline_path);
  result.baseline_error = baseline.error;

  std::vector<FileFacts> facts_db;
  for (const auto& facts_path : options.facts_in) {
    std::ifstream in{facts_path, std::ios::binary};
    if (!in) {
      result.facts_error = true;
      result.facts_error_message = "cannot open facts file: " + facts_path;
      return result;
    }
    std::string error;
    if (!LoadFacts(in, facts_db, error)) {
      result.facts_error = true;
      result.facts_error_message = facts_path + ": " + error;
      return result;
    }
  }

  const bool need_facts =
      options.whole_program || !options.facts_out.empty();
  std::vector<Diagnostic> collected;

  for (const auto& file : CollectFiles(options.roots)) {
    std::ifstream in{file, std::ios::binary};
    if (!in) continue;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string content = buffer.str();
    ++result.files_scanned;
    const std::string path = NormalizePath(file);
    const PreparedSource source = Prepare(path, content);
    std::vector<Diagnostic> file_diagnostics = LintPrepared(
        path, source, options.only_rules, &result.suppressed_by_allow);
    if (need_facts) {
      FileFacts facts = ExtractFacts(path, source.lexed, source.allows,
                                     source.file_allows);
      if (!options.facts_out.empty()) {
        // Shard mode: the per-line diagnostics ride in the dump so the
        // merge run reports everything in one place.
        for (auto& diagnostic : file_diagnostics) {
          facts.diagnostics.push_back(std::move(diagnostic));
        }
        file_diagnostics.clear();
      }
      facts_db.push_back(std::move(facts));
    }
    for (auto& diagnostic : file_diagnostics) {
      collected.push_back(std::move(diagnostic));
    }
  }

  if (!options.facts_out.empty()) {
    std::ofstream out{options.facts_out, std::ios::binary};
    if (!out) {
      result.facts_error = true;
      result.facts_error_message =
          "cannot write facts file: " + options.facts_out;
      return result;
    }
    DumpFacts(out, facts_db);
    return result;  // extraction shard: analysis happens at the merge
  }

  if (options.whole_program) {
    WholeProgramResult wp = AnalyzeWholeProgram(facts_db);
    result.lock_dot = std::move(wp.lock_dot);
    for (auto& diagnostic : wp.diagnostics) {
      if (RuleEnabled(diagnostic.rule, options.only_rules)) {
        collected.push_back(std::move(diagnostic));
      }
    }
  }

  std::sort(collected.begin(), collected.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.path, a.line, a.rule, a.message) <
                     std::tie(b.path, b.line, b.rule, b.message);
            });
  for (auto& diagnostic : collected) {
    if (BaselineMatches(baseline, diagnostic)) {
      ++result.suppressed_by_baseline;
    } else {
      result.diagnostics.push_back(std::move(diagnostic));
    }
  }
  return result;
}

void PrintDiagnostics(std::ostream& out,
                      const std::vector<Diagnostic>& diagnostics) {
  for (const auto& diagnostic : diagnostics) {
    out << diagnostic.path << ':' << diagnostic.line << ": ["
        << diagnostic.rule << "] " << diagnostic.message << '\n';
  }
}

void RenderJson(std::ostream& out, const Result& result) {
  out << "{\"tool\":\"sleeplint\",\"filesScanned\":" << result.files_scanned
      << ",\"suppressedByAllow\":" << result.suppressed_by_allow
      << ",\"suppressedByBaseline\":" << result.suppressed_by_baseline
      << ",\"violations\":[";
  for (std::size_t i = 0; i < result.diagnostics.size(); ++i) {
    const auto& diagnostic = result.diagnostics[i];
    if (i > 0) out << ',';
    out << "{\"path\":\"" << JsonEscape(diagnostic.path)
        << "\",\"line\":" << diagnostic.line << ",\"rule\":\""
        << JsonEscape(diagnostic.rule) << "\",\"message\":\""
        << JsonEscape(diagnostic.message) << "\"}";
  }
  out << "]}\n";
}

void RenderSarif(std::ostream& out, const Result& result) {
  out << "{\"$schema\":"
         "\"https://json.schemastore.org/sarif-2.1.0.json\","
         "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
         "\"name\":\"sleeplint\",\"informationUri\":"
         "\"https://example.invalid/sleepwalk/tools/sleeplint\","
         "\"rules\":[";
  const auto& all = AllRules();
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (i > 0) out << ',';
    out << "{\"id\":\"" << JsonEscape(all[i]) << "\"}";
  }
  out << "]}},\"results\":[";
  for (std::size_t i = 0; i < result.diagnostics.size(); ++i) {
    const auto& diagnostic = result.diagnostics[i];
    if (i > 0) out << ',';
    out << "{\"ruleId\":\"" << JsonEscape(diagnostic.rule)
        << "\",\"level\":\"error\",\"message\":{\"text\":\""
        << JsonEscape(diagnostic.message)
        << "\"},\"locations\":[{\"physicalLocation\":{"
           "\"artifactLocation\":{\"uri\":\""
        << JsonEscape(diagnostic.path)
        << "\"},\"region\":{\"startLine\":"
        << (diagnostic.line > 0 ? diagnostic.line : 1) << "}}}]}";
  }
  out << "]}]}\n";
}

}  // namespace sleeplint
