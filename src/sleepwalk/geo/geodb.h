// MaxMind-style block geolocation database (paper §2.3.1).
//
// The paper uses MaxMind's city database: ~93% /24 coverage, claimed
// ~40 km accuracy, and a known failure mode where country-only entries
// are placed at the country's geographic centroid ("falsely placing many
// networks away from population in Brazil, Russia, and Australia").
// GeoDatabase reproduces all three properties when built from the
// simulator's true locations, so the analysis sees realistic geolocation
// error rather than ground truth.
#ifndef SLEEPWALK_GEO_GEODB_H_
#define SLEEPWALK_GEO_GEODB_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sleepwalk/net/ipv4.h"

namespace sleepwalk::geo {

/// A block's true physical placement, provided by the world generator.
struct TrueLocation {
  net::Prefix24 block;
  double latitude = 0.0;
  double longitude = 0.0;
  std::string country_code;  ///< ISO alpha-2; must exist in worlddata.
};

/// One geolocation answer.
struct GeoRecord {
  double latitude = 0.0;
  double longitude = 0.0;
  std::string country_code;
  bool centroid_only = false;  ///< country-centroid fallback entry
};

/// A queryable block → location database with MaxMind-like imperfections.
class GeoDatabase {
 public:
  struct Options {
    double coverage = 0.93;            ///< fraction of blocks with entries
    double jitter_km = 40.0;           ///< 1-sigma city-level error
    double centroid_fraction = 0.08;   ///< entries degraded to centroid
    std::uint64_t seed = 0x6e01;
  };

  /// Builds the database from true locations, applying coverage loss,
  /// positional jitter, and centroid degradation per `options`.
  static GeoDatabase FromTruth(std::span<const TrueLocation> truth,
                               const Options& options);

  /// Looks up a block; nullptr when the database has no entry (the
  /// paper's 7% unlocatable blocks).
  const GeoRecord* Lookup(net::Prefix24 block) const noexcept;

  std::size_t size() const noexcept { return records_.size(); }

 private:
  std::unordered_map<std::uint32_t, GeoRecord> records_;
};

}  // namespace sleepwalk::geo

#endif  // SLEEPWALK_GEO_GEODB_H_
