#include "sleepwalk/geo/region.h"

#include <cmath>

namespace sleepwalk::geo {

double WrapLongitude(double degrees) noexcept {
  double wrapped = std::fmod(degrees + 180.0, 360.0);
  if (wrapped < 0.0) wrapped += 360.0;
  return wrapped - 180.0;
}

double WrapAngle(double radians) noexcept {
  constexpr double kTwoPi = 2.0 * std::numbers::pi;
  double wrapped = std::fmod(radians + std::numbers::pi, kTwoPi);
  if (wrapped < 0.0) wrapped += kTwoPi;
  return wrapped - std::numbers::pi;
}

double UnrollPhase(double phase_radians, double longitude_degrees) noexcept {
  constexpr double kTwoPi = 2.0 * std::numbers::pi;
  const double center = DegToRad(longitude_degrees);
  double phase = phase_radians;
  while (phase < center - std::numbers::pi) phase += kTwoPi;
  while (phase >= center + std::numbers::pi) phase -= kTwoPi;
  return phase;
}

double KmToDegreesLon(double km, double at_latitude_degrees) noexcept {
  const double km_per_degree =
      kKmPerDegreeLat * std::cos(DegToRad(at_latitude_degrees));
  if (km_per_degree < 1e-9) return 0.0;
  return km / km_per_degree;
}

}  // namespace sleepwalk::geo
