// Geolocation from diurnal phase (paper §5.2, Fig 14c).
//
// "the relationship between phase and longitude suggests that phase may
//  help geolocate diurnal blocks ... most other phases predict longitude
//  within +/- 20 degrees."
//
// PhaseGeolocator is the library form of that idea: calibrate on
// diurnal blocks with known locations, then predict the longitude (with
// an uncertainty) of blocks known only by their FFT phase.
#ifndef SLEEPWALK_GEO_PHASE_GEOLOCATOR_H_
#define SLEEPWALK_GEO_PHASE_GEOLOCATOR_H_

#include <optional>
#include <vector>

namespace sleepwalk::geo {

/// A longitude prediction with its per-bin empirical spread.
struct LongitudePrediction {
  double longitude_degrees = 0.0;
  double stddev_degrees = 0.0;
  std::size_t calibration_samples = 0;  ///< samples in the phase bin used
};

/// Bins calibration (phase, longitude) pairs by phase and predicts by
/// per-bin mean — the estimator behind the paper's Fig 14c, which also
/// exposes how prediction quality varies with phase (some phases only
/// identify the hemisphere).
class PhaseGeolocator {
 public:
  /// `bins` phase bins over [-pi, pi).
  explicit PhaseGeolocator(int bins = 24);

  /// Adds one calibration observation: a diurnal block's daily-bin FFT
  /// phase and its known longitude.
  void AddCalibration(double phase_radians, double longitude_degrees);

  /// Predicts longitude from phase; nullopt when the phase bin (and its
  /// immediate neighbours) hold no calibration data.
  std::optional<LongitudePrediction> Predict(double phase_radians) const;

  std::size_t calibration_size() const noexcept { return total_; }

 private:
  struct Bin {
    // Longitudes are accumulated as unit vectors so the mean respects
    // wraparound at the antimeridian.
    double sum_sin = 0.0;
    double sum_cos = 0.0;
    std::vector<double> samples;  ///< unrolled around the running mean
  };

  std::size_t BinOf(double phase_radians) const noexcept;

  int bins_;
  std::vector<Bin> data_;
  std::size_t total_ = 0;
};

}  // namespace sleepwalk::geo

#endif  // SLEEPWALK_GEO_PHASE_GEOLOCATOR_H_
