#include "sleepwalk/geo/grid.h"

#include <algorithm>
#include <cmath>

namespace sleepwalk::geo {

GeoGrid::GeoGrid(double cell_degrees)
    : cell_degrees_(cell_degrees),
      rows_(static_cast<std::size_t>(std::ceil(180.0 / cell_degrees))),
      cols_(static_cast<std::size_t>(std::ceil(360.0 / cell_degrees))),
      cells_(rows_ * cols_) {}

std::size_t GeoGrid::IndexFor(double latitude,
                              double longitude) const noexcept {
  auto row = static_cast<std::ptrdiff_t>(
      std::floor((latitude + 90.0) / cell_degrees_));
  auto col = static_cast<std::ptrdiff_t>(
      std::floor((longitude + 180.0) / cell_degrees_));
  row = std::clamp<std::ptrdiff_t>(row, 0,
                                   static_cast<std::ptrdiff_t>(rows_) - 1);
  col = std::clamp<std::ptrdiff_t>(col, 0,
                                   static_cast<std::ptrdiff_t>(cols_) - 1);
  return static_cast<std::size_t>(row) * cols_ + static_cast<std::size_t>(col);
}

void GeoGrid::Add(double latitude, double longitude, bool diurnal) noexcept {
  auto& cell = cells_[IndexFor(latitude, longitude)];
  ++cell.total;
  if (diurnal) ++cell.diurnal;
  ++total_;
}

std::uint64_t GeoGrid::TotalAt(std::size_t row, std::size_t col) const {
  return cells_.at(row * cols_ + col).total;
}

std::uint64_t GeoGrid::DiurnalAt(std::size_t row, std::size_t col) const {
  return cells_.at(row * cols_ + col).diurnal;
}

double GeoGrid::DiurnalFractionAt(std::size_t row, std::size_t col) const {
  const auto& cell = cells_.at(row * cols_ + col);
  if (cell.total == 0) return 0.0;
  return static_cast<double>(cell.diurnal) / static_cast<double>(cell.total);
}

std::vector<std::vector<double>> GeoGrid::Coarsen(std::size_t out_rows,
                                                  std::size_t out_cols,
                                                  bool fractions) const {
  std::vector<std::vector<double>> out(out_rows,
                                       std::vector<double>(out_cols, 0.0));
  std::vector<std::vector<std::uint64_t>> totals(
      out_rows, std::vector<std::uint64_t>(out_cols, 0));
  std::vector<std::vector<std::uint64_t>> diurnals(
      out_rows, std::vector<std::uint64_t>(out_cols, 0));
  for (std::size_t r = 0; r < rows_; ++r) {
    const std::size_t out_r = r * out_rows / rows_;
    for (std::size_t c = 0; c < cols_; ++c) {
      const std::size_t out_c = c * out_cols / cols_;
      const auto& cell = cells_[r * cols_ + c];
      totals[out_r][out_c] += cell.total;
      diurnals[out_r][out_c] += cell.diurnal;
    }
  }
  for (std::size_t r = 0; r < out_rows; ++r) {
    for (std::size_t c = 0; c < out_cols; ++c) {
      if (fractions) {
        out[r][c] = totals[r][c] > 0
                        ? static_cast<double>(diurnals[r][c]) /
                              static_cast<double>(totals[r][c])
                        : 0.0;
      } else {
        out[r][c] = static_cast<double>(totals[r][c]);
      }
    }
  }
  return out;
}

}  // namespace sleepwalk::geo
