// 2x2-degree world grid aggregation (paper Figs 12-13).
#ifndef SLEEPWALK_GEO_GRID_H_
#define SLEEPWALK_GEO_GRID_H_

#include <cstdint>
#include <vector>

namespace sleepwalk::geo {

/// Counts blocks (total and diurnal) in fixed-degree latitude/longitude
/// cells, as the paper does with a 2x2-degree grid.
class GeoGrid {
 public:
  explicit GeoGrid(double cell_degrees = 2.0);

  /// Records one geolocated block.
  void Add(double latitude, double longitude, bool diurnal) noexcept;

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  std::uint64_t TotalAt(std::size_t row, std::size_t col) const;
  std::uint64_t DiurnalAt(std::size_t row, std::size_t col) const;

  /// Fraction diurnal in a cell; 0 when the cell is empty.
  double DiurnalFractionAt(std::size_t row, std::size_t col) const;

  std::uint64_t total() const noexcept { return total_; }

  /// Downsamples counts (or diurnal fractions when `fractions` is true)
  /// onto a coarser out_rows x out_cols grid for ASCII rendering. Rows
  /// are south-to-north (row 0 = -90).
  std::vector<std::vector<double>> Coarsen(std::size_t out_rows,
                                           std::size_t out_cols,
                                           bool fractions) const;

 private:
  struct Cell {
    std::uint64_t total = 0;
    std::uint64_t diurnal = 0;
  };

  std::size_t IndexFor(double latitude, double longitude) const noexcept;

  double cell_degrees_;
  std::size_t rows_;
  std::size_t cols_;
  std::vector<Cell> cells_;  // row-major, row 0 at latitude -90
  std::uint64_t total_ = 0;
};

}  // namespace sleepwalk::geo

#endif  // SLEEPWALK_GEO_GRID_H_
