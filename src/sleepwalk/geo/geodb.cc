#include "sleepwalk/geo/geodb.h"

#include <algorithm>

#include "sleepwalk/geo/region.h"
#include "sleepwalk/util/rng.h"
#include "sleepwalk/world/economics.h"

namespace sleepwalk::geo {

GeoDatabase GeoDatabase::FromTruth(std::span<const TrueLocation> truth,
                                   const Options& options) {
  GeoDatabase db;
  db.records_.reserve(truth.size());
  Rng rng{options.seed};
  for (const auto& location : truth) {
    if (!rng.NextBool(options.coverage)) continue;  // uncovered block

    GeoRecord record;
    record.country_code = location.country_code;
    if (rng.NextBool(options.centroid_fraction)) {
      // Country-only entry: MaxMind places these at the geographic
      // centroid, away from actual population.
      const auto* country = world::FindCountry(location.country_code);
      record.centroid_only = true;
      record.latitude = country != nullptr ? country->latitude
                                           : location.latitude;
      record.longitude = country != nullptr ? country->longitude
                                            : location.longitude;
    } else {
      const double lat_err_km = rng.NextGaussian() * options.jitter_km;
      const double lon_err_km = rng.NextGaussian() * options.jitter_km;
      record.latitude = std::clamp(
          location.latitude + lat_err_km / kKmPerDegreeLat, -89.9, 89.9);
      record.longitude = WrapLongitude(
          location.longitude +
          KmToDegreesLon(lon_err_km, location.latitude));
    }
    db.records_.insert_or_assign(location.block.Index(), std::move(record));
  }
  return db;
}

const GeoRecord* GeoDatabase::Lookup(net::Prefix24 block) const noexcept {
  const auto it = records_.find(block.Index());
  if (it == records_.end()) return nullptr;
  return &it->second;
}

}  // namespace sleepwalk::geo
