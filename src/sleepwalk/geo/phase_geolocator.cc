#include "sleepwalk/geo/phase_geolocator.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "sleepwalk/geo/region.h"

namespace sleepwalk::geo {

PhaseGeolocator::PhaseGeolocator(int bins)
    : bins_(std::max(bins, 1)),
      data_(static_cast<std::size_t>(bins_)) {}

std::size_t PhaseGeolocator::BinOf(double phase_radians) const noexcept {
  const double wrapped = WrapAngle(phase_radians);
  auto bin = static_cast<int>((wrapped + std::numbers::pi) /
                              (2.0 * std::numbers::pi) *
                              static_cast<double>(bins_));
  bin = std::clamp(bin, 0, bins_ - 1);
  return static_cast<std::size_t>(bin);
}

void PhaseGeolocator::AddCalibration(double phase_radians,
                                     double longitude_degrees) {
  auto& bin = data_[BinOf(phase_radians)];
  const double lon_rad = DegToRad(WrapLongitude(longitude_degrees));
  bin.sum_sin += std::sin(lon_rad);
  bin.sum_cos += std::cos(lon_rad);
  bin.samples.push_back(WrapLongitude(longitude_degrees));
  ++total_;
}

std::optional<LongitudePrediction> PhaseGeolocator::Predict(
    double phase_radians) const {
  // Use the phase's own bin; fall back to the nearest neighbours when it
  // is empty (sparse calibration sets).
  const auto center = static_cast<int>(BinOf(phase_radians));
  const Bin* chosen = nullptr;
  for (const int delta : {0, 1, -1}) {
    const int candidate = ((center + delta) % bins_ + bins_) % bins_;
    const auto& bin = data_[static_cast<std::size_t>(candidate)];
    if (!bin.samples.empty()) {
      chosen = &bin;
      break;
    }
  }
  if (chosen == nullptr) return std::nullopt;

  const double mean_rad = std::atan2(chosen->sum_sin, chosen->sum_cos);
  const double mean_deg = WrapLongitude(RadToDeg(mean_rad));

  // Circular stddev: sample deviations unrolled around the mean.
  double sum_sq = 0.0;
  for (const double lon : chosen->samples) {
    double delta = lon - mean_deg;
    while (delta >= 180.0) delta -= 360.0;
    while (delta < -180.0) delta += 360.0;
    sum_sq += delta * delta;
  }
  LongitudePrediction prediction;
  prediction.longitude_degrees = mean_deg;
  prediction.stddev_degrees =
      chosen->samples.size() > 1
          ? std::sqrt(sum_sq /
                      static_cast<double>(chosen->samples.size() - 1))
          : 180.0;
  prediction.calibration_samples = chosen->samples.size();
  return prediction;
}

}  // namespace sleepwalk::geo
