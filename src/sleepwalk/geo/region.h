// Geographic math shared by geolocation, the phase/longitude analysis
// (Fig 14), and the world maps (Figs 12-13).
#ifndef SLEEPWALK_GEO_REGION_H_
#define SLEEPWALK_GEO_REGION_H_

#include <numbers>

namespace sleepwalk::geo {

/// Degrees to radians.
constexpr double DegToRad(double degrees) noexcept {
  return degrees * std::numbers::pi / 180.0;
}

/// Radians to degrees.
constexpr double RadToDeg(double radians) noexcept {
  return radians * 180.0 / std::numbers::pi;
}

/// Wraps a longitude into [-180, 180).
double WrapLongitude(double degrees) noexcept;

/// Wraps an angle into [-pi, pi).
double WrapAngle(double radians) noexcept;

/// "Unrolls" a circular FFT phase against a longitude (paper §5.2): both
/// wrap around, so the phase is shifted by whole turns until it lies in
/// [-pi + L, pi + L) where L is the longitude in radians. This makes
/// phase/longitude correlation meaningful despite the wraparound.
double UnrollPhase(double phase_radians, double longitude_degrees) noexcept;

/// Kilometres per degree of latitude (spherical Earth).
inline constexpr double kKmPerDegreeLat = 111.32;

/// Converts a displacement in km at the given latitude into degrees of
/// longitude.
double KmToDegreesLon(double km, double at_latitude_degrees) noexcept;

}  // namespace sleepwalk::geo

#endif  // SLEEPWALK_GEO_REGION_H_
