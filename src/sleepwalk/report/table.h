// Plain-text table rendering for bench output that mirrors the paper's
// tables.
#ifndef SLEEPWALK_REPORT_TABLE_H_
#define SLEEPWALK_REPORT_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace sleepwalk::report {

/// Column alignment.
enum class Align { kLeft, kRight };

/// A simple text table: set headers, append rows of strings, stream out.
class TextTable {
 public:
  /// Creates a table with the given column headers; all columns default to
  /// right alignment except the first.
  explicit TextTable(std::vector<std::string> headers);

  void SetAlign(std::size_t column, Align align);

  /// Appends a row; missing cells render empty, extra cells are dropped.
  void AddRow(std::vector<std::string> cells);

  /// Appends a horizontal rule before the next row.
  void AddRule();

  std::size_t rows() const noexcept { return rows_.size(); }

  void Print(std::ostream& out) const;
  std::string ToString() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };

  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

/// Formats a double with `digits` decimal places.
std::string Fixed(double value, int digits);

/// Formats a double in scientific notation with `digits` significant
/// decimals (e.g. "6.61e-08").
std::string Scientific(double value, int digits);

/// Formats a fraction as a percentage string ("12.3%").
std::string Percent(double fraction, int digits = 1);

/// Thousands-separated integer ("394,244") as in the paper's tables.
std::string WithCommas(long long value);

}  // namespace sleepwalk::report

#endif  // SLEEPWALK_REPORT_TABLE_H_
