#include "sleepwalk/report/csv.h"

#include <cstdlib>

namespace sleepwalk::report {

namespace {

bool NeedsQuoting(const std::string& cell) {
  return cell.find_first_of(",\"\n\r") != std::string::npos;
}

std::string Escape(const std::string& cell) {
  if (!NeedsQuoting(cell)) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path) : out_(path) {}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << Escape(cells[i]);
  }
  out_ << '\n';
}

std::string CsvPathFor(const std::string& name) {
  const char* dir = std::getenv("SLEEPWALK_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return {};
  return std::string{dir} + "/" + name;
}

}  // namespace sleepwalk::report
