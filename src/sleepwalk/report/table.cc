#include "sleepwalk/report/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace sleepwalk::report {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::kRight) {
  if (!aligns_.empty()) aligns_[0] = Align::kLeft;
}

void TextTable::SetAlign(std::size_t column, Align align) {
  if (column < aligns_.size()) aligns_[column] = align;
}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back({std::move(cells), pending_rule_});
  pending_rule_ = false;
}

void TextTable::AddRule() { pending_rule_ = true; }

void TextTable::Print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  const auto print_rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      out << (c == 0 ? "+" : "+") << std::string(widths[c] + 2, '-');
    }
    out << "+\n";
  };
  const auto print_cells = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const auto pad = widths[c] - cells[c].size();
      out << "| ";
      if (aligns_[c] == Align::kRight) out << std::string(pad, ' ');
      out << cells[c];
      if (aligns_[c] == Align::kLeft) out << std::string(pad, ' ');
      out << ' ';
    }
    out << "|\n";
  };

  print_rule();
  print_cells(headers_);
  print_rule();
  for (const auto& row : rows_) {
    if (row.rule_before) print_rule();
    print_cells(row.cells);
  }
  print_rule();
}

std::string TextTable::ToString() const {
  std::ostringstream out;
  Print(out);
  return out.str();
}

std::string Fixed(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

std::string Scientific(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*e", digits, value);
  return buffer;
}

std::string Percent(double fraction, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f%%", digits, fraction * 100.0);
  return buffer;
}

std::string WithCommas(long long value) {
  const bool negative = value < 0;
  std::string digits = std::to_string(negative ? -value : value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int counter = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (counter > 0 && counter % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++counter;
  }
  if (negative) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace sleepwalk::report
