// Minimal CSV writer so every bench can also emit machine-readable output
// (written next to the binary when SLEEPWALK_CSV_DIR is set).
#ifndef SLEEPWALK_REPORT_CSV_H_
#define SLEEPWALK_REPORT_CSV_H_

#include <fstream>
#include <string>
#include <vector>

namespace sleepwalk::report {

/// Writes rows of cells as RFC-4180 CSV. Quotes cells containing commas,
/// quotes, or newlines.
class CsvWriter {
 public:
  /// Opens `path` for writing; check ok() before use.
  explicit CsvWriter(const std::string& path);

  bool ok() const noexcept { return static_cast<bool>(out_); }

  void WriteRow(const std::vector<std::string>& cells);

 private:
  // Bench-side CSV output is diagnostic, never campaign state; raw
  // stream I/O is acceptable here. sleeplint: allow(no-raw-fs)
  std::ofstream out_;
};

/// Returns "$SLEEPWALK_CSV_DIR/<name>" when the environment variable is
/// set, or an empty string (caller skips CSV output) otherwise.
std::string CsvPathFor(const std::string& name);

}  // namespace sleepwalk::report

#endif  // SLEEPWALK_REPORT_CSV_H_
