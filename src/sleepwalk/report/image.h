// Grayscale image output (binary PGM, P5) for the world-map figures.
//
// The paper's Figs 12-13 are grayscale world maps; PGM lets the benches
// emit actual images next to their ASCII renderings, with no external
// image library.
#ifndef SLEEPWALK_REPORT_IMAGE_H_
#define SLEEPWALK_REPORT_IMAGE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sleepwalk::report {

/// A simple grayscale raster: pixel(0,0) is the top-left corner.
class GrayImage {
 public:
  GrayImage(std::size_t width, std::size_t height);

  std::size_t width() const noexcept { return width_; }
  std::size_t height() const noexcept { return height_; }

  void Set(std::size_t x, std::size_t y, std::uint8_t value);
  std::uint8_t Get(std::size_t x, std::size_t y) const;

  /// Builds an image from a row-major value grid, normalizing [0, max]
  /// onto [0, 255]. `rows[0]` becomes the TOP row when `flip_rows` is
  /// false, the BOTTOM row when true (geographic grids store south
  /// first). `gamma` < 1 brightens sparse data (the paper's maps use a
  /// log-ish scale; gamma 0.5 approximates it).
  static GrayImage FromGrid(const std::vector<std::vector<double>>& rows,
                            bool flip_rows = false, double gamma = 1.0);

  /// Writes binary PGM (P5). Returns false on I/O failure.
  bool WritePgm(const std::string& path) const;

 private:
  std::size_t width_;
  std::size_t height_;
  std::vector<std::uint8_t> pixels_;
};

}  // namespace sleepwalk::report

#endif  // SLEEPWALK_REPORT_IMAGE_H_
