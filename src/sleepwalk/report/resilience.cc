#include "sleepwalk/report/resilience.h"

#include <ostream>
#include <sstream>

#include "sleepwalk/report/table.h"

namespace sleepwalk::report {

void PrintResilienceReport(std::ostream& out, const ResilienceStats& stats) {
  const auto& p = stats.probes;
  TextTable table{{"resilience", "count"}};
  table.AddRow({"probe attempts", WithCommas(
      static_cast<long long>(p.attempts))});
  table.AddRow({"  sent", WithCommas(static_cast<long long>(p.sent()))});
  table.AddRow({"  answered", WithCommas(
      static_cast<long long>(p.answered))});
  table.AddRow({"  lost (timeout)", WithCommas(
      static_cast<long long>(p.lost))});
  table.AddRow({"  rate-limited", WithCommas(
      static_cast<long long>(p.rate_limited))});
  table.AddRow({"  unreachable", WithCommas(
      static_cast<long long>(p.unreachable))});
  table.AddRow({"  transport errors", WithCommas(
      static_cast<long long>(p.errors))});
  table.AddRule();
  table.AddRow({"rounds attempted", WithCommas(
      static_cast<long long>(stats.rounds_attempted))});
  table.AddRow({"rounds failed", WithCommas(
      static_cast<long long>(stats.rounds_failed))});
  table.AddRow({"rounds gapped", WithCommas(
      static_cast<long long>(stats.rounds_gapped))});
  table.AddRow({"round retries", WithCommas(
      static_cast<long long>(stats.retries))});
  table.AddRow({"backoff budget (s)", Fixed(stats.backoff_seconds, 2)});
  table.AddRow({"forced restarts", WithCommas(
      static_cast<long long>(stats.forced_restarts))});
  table.AddRow({"quarantined blocks", WithCommas(
      static_cast<long long>(stats.quarantined_blocks))});
  table.AddRow({"checkpoints written", WithCommas(
      static_cast<long long>(stats.checkpoints_written))});
  table.AddRow({"resumed from checkpoint",
                stats.resumed_from_checkpoint ? "yes" : "no"});
  table.Print(out);
  if (!p.Balanced()) {
    out << "WARNING: probe accounting does not balance (sent "
        << p.sent() << " != answered " << p.answered << " + lost "
        << p.lost << " + rate-limited " << p.rate_limited
        << " + unreachable " << p.unreachable << ")\n";
  }
}

std::string ResilienceCsvHeader() {
  return "attempts,errors,answered,lost,rate_limited,unreachable,"
         "rounds_attempted,rounds_failed,rounds_gapped,retries,"
         "backoff_seconds,forced_restarts,quarantined_blocks,"
         "checkpoints_written,resumed";
}

std::string ResilienceCsvRow(const ResilienceStats& stats) {
  std::ostringstream row;
  const auto& p = stats.probes;
  row << p.attempts << ',' << p.errors << ',' << p.answered << ','
      << p.lost << ',' << p.rate_limited << ',' << p.unreachable << ','
      << stats.rounds_attempted << ',' << stats.rounds_failed << ','
      << stats.rounds_gapped << ',' << stats.retries << ','
      << stats.backoff_seconds << ',' << stats.forced_restarts << ','
      << stats.quarantined_blocks << ',' << stats.checkpoints_written << ','
      << (stats.resumed_from_checkpoint ? 1 : 0);
  return row.str();
}

}  // namespace sleepwalk::report
