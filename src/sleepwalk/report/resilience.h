// Per-campaign resilience accounting.
//
// A measurement campaign over a hostile network must be able to *state*
// how much signal survived: probes sent vs answered vs lost vs
// rate-limited, how often rounds were retried, which blocks were
// quarantined, how many checkpoints protected the run. Experiments print
// this next to their diurnal fractions so "20% of blocks are diurnal"
// always carries its denominator's health.
#ifndef SLEEPWALK_REPORT_RESILIENCE_H_
#define SLEEPWALK_REPORT_RESILIENCE_H_

#include <cstdint>
#include <iosfwd>
#include <string>

namespace sleepwalk::report {

/// Transport-level probe accounting. Every Probe() call lands in exactly
/// one bucket: attempts = errors (never sent) + sent, and
/// sent = answered + lost + rate_limited + unreachable.
struct ProbeAccounting {
  std::uint64_t attempts = 0;      ///< Probe() invocations
  std::uint64_t errors = 0;        ///< transport threw; probe never sent
  std::uint64_t answered = 0;      ///< echo replies
  std::uint64_t lost = 0;          ///< timeouts (real or injected loss)
  std::uint64_t rate_limited = 0;  ///< dropped by an ICMP rate limit
  std::uint64_t unreachable = 0;   ///< explicit ICMP unreachable

  std::uint64_t sent() const noexcept { return attempts - errors; }

  /// True when every probe is accounted for.
  bool Balanced() const noexcept {
    return sent() == answered + lost + rate_limited + unreachable;
  }

  void Merge(const ProbeAccounting& other) noexcept {
    attempts += other.attempts;
    errors += other.errors;
    answered += other.answered;
    lost += other.lost;
    rate_limited += other.rate_limited;
    unreachable += other.unreachable;
  }
};

/// Supervisor-level recovery accounting for one campaign.
struct ResilienceStats {
  ProbeAccounting probes;

  std::uint64_t rounds_attempted = 0;  ///< block-rounds the supervisor ran
  std::uint64_t rounds_failed = 0;     ///< rounds lost after all retries
  std::uint64_t rounds_gapped = 0;     ///< rounds skipped by clock gaps
  std::uint64_t retries = 0;           ///< round re-executions
  double backoff_seconds = 0.0;        ///< total retry delay budgeted

  std::uint64_t forced_restarts = 0;      ///< injected prober restarts
  std::uint64_t quarantined_blocks = 0;   ///< blocks abandoned as dead
  std::uint64_t checkpoints_written = 0;
  bool resumed_from_checkpoint = false;

  void Merge(const ResilienceStats& other) noexcept {
    probes.Merge(other.probes);
    rounds_attempted += other.rounds_attempted;
    rounds_failed += other.rounds_failed;
    rounds_gapped += other.rounds_gapped;
    retries += other.retries;
    backoff_seconds += other.backoff_seconds;
    forced_restarts += other.forced_restarts;
    quarantined_blocks += other.quarantined_blocks;
    checkpoints_written += other.checkpoints_written;
    resumed_from_checkpoint =
        resumed_from_checkpoint || other.resumed_from_checkpoint;
  }
};

/// Renders the stats as a two-column text table.
void PrintResilienceReport(std::ostream& out, const ResilienceStats& stats);

/// One CSV row (header written when `header` is true):
/// attempts,errors,answered,lost,rate_limited,unreachable,...
std::string ResilienceCsvHeader();
std::string ResilienceCsvRow(const ResilienceStats& stats);

}  // namespace sleepwalk::report

#endif  // SLEEPWALK_REPORT_RESILIENCE_H_
