#include "sleepwalk/report/image.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

namespace sleepwalk::report {

GrayImage::GrayImage(std::size_t width, std::size_t height)
    : width_(width), height_(height), pixels_(width * height, 0) {
  if (width == 0 || height == 0) {
    throw std::invalid_argument{"GrayImage: empty dimensions"};
  }
}

void GrayImage::Set(std::size_t x, std::size_t y, std::uint8_t value) {
  if (x >= width_ || y >= height_) {
    throw std::out_of_range{"GrayImage::Set: pixel outside image"};
  }
  pixels_[y * width_ + x] = value;
}

std::uint8_t GrayImage::Get(std::size_t x, std::size_t y) const {
  if (x >= width_ || y >= height_) {
    throw std::out_of_range{"GrayImage::Get: pixel outside image"};
  }
  return pixels_[y * width_ + x];
}

GrayImage GrayImage::FromGrid(const std::vector<std::vector<double>>& rows,
                              bool flip_rows, double gamma) {
  if (rows.empty() || rows.front().empty()) {
    throw std::invalid_argument{"GrayImage::FromGrid: empty grid"};
  }
  const std::size_t height = rows.size();
  const std::size_t width = rows.front().size();
  double max_value = 0.0;
  for (const auto& row : rows) {
    if (row.size() != width) {
      throw std::invalid_argument{"GrayImage::FromGrid: ragged grid"};
    }
    for (const double v : row) max_value = std::max(max_value, v);
  }
  if (max_value <= 0.0) max_value = 1.0;

  GrayImage image{width, height};
  for (std::size_t r = 0; r < height; ++r) {
    const std::size_t y = flip_rows ? height - 1 - r : r;
    for (std::size_t x = 0; x < width; ++x) {
      const double normalized =
          std::clamp(rows[r][x] / max_value, 0.0, 1.0);
      const double shaped =
          gamma == 1.0 ? normalized : std::pow(normalized, gamma);
      image.Set(x, y, static_cast<std::uint8_t>(
                          std::lround(shaped * 255.0)));
    }
  }
  return image;
}

bool GrayImage::WritePgm(const std::string& path) const {
  // PGM visualization output is diagnostic, never campaign state; raw
  // stream I/O is acceptable here. sleeplint: allow(no-raw-fs)
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  if (!out) return false;
  out << "P5\n" << width_ << ' ' << height_ << "\n255\n";
  out.write(reinterpret_cast<const char*>(pixels_.data()),
            static_cast<std::streamsize>(pixels_.size()));
  return static_cast<bool>(out);
}

}  // namespace sleepwalk::report
