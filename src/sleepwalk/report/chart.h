// ASCII charts: bar charts, CDF/series plots, and shaded density grids —
// enough to render every figure of the paper in a terminal.
#ifndef SLEEPWALK_REPORT_CHART_H_
#define SLEEPWALK_REPORT_CHART_H_

#include <ostream>
#include <span>
#include <string>
#include <vector>

namespace sleepwalk::report {

/// One labelled bar.
struct Bar {
  std::string label;
  double value = 0.0;
};

/// Horizontal bar chart; bar lengths scaled to `width` characters.
void PrintBarChart(std::ostream& out, std::span<const Bar> bars,
                   int width = 50, const std::string& value_suffix = "");

/// Line plot of a single series (y values on an implicit 0..n-1 x axis),
/// rendered as a height x width character grid with axis annotations.
void PrintSeries(std::ostream& out, std::span<const double> series,
                 int width = 78, int height = 16,
                 const std::string& title = "");

/// Two series overlaid (e.g. true A vs estimated A-hat); first series is
/// drawn with '*', second with 'o', overlap with '#'.
void PrintTwoSeries(std::ostream& out, std::span<const double> first,
                    std::span<const double> second, int width = 78,
                    int height = 16, const std::string& title = "");

/// Shaded density grid: each cell count mapped onto " .:-=+*#%@" by
/// fraction of the maximum. Rows print top (high y) first.
void PrintDensityGrid(std::ostream& out,
                      const std::vector<std::vector<double>>& cells,
                      const std::string& title = "");

/// Shade character for a value in [0, 1].
char ShadeChar(double fraction) noexcept;

}  // namespace sleepwalk::report

#endif  // SLEEPWALK_REPORT_CHART_H_
