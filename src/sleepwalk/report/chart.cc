#include "sleepwalk/report/chart.h"

#include <algorithm>
#include <cmath>
#include <string_view>

#include "sleepwalk/report/table.h"

namespace sleepwalk::report {

namespace {

constexpr std::string_view kShades = " .:-=+*#%@";

struct Range {
  double lo = 0.0;
  double hi = 1.0;
};

Range FindRange(std::span<const double> series) {
  Range range{series.empty() ? 0.0 : series[0],
              series.empty() ? 1.0 : series[0]};
  for (const double v : series) {
    range.lo = std::min(range.lo, v);
    range.hi = std::max(range.hi, v);
  }
  if (range.hi <= range.lo) range.hi = range.lo + 1.0;
  return range;
}

// Maps series index-space onto `width` columns by averaging each bucket.
std::vector<double> Resample(std::span<const double> series, int width) {
  std::vector<double> out(static_cast<std::size_t>(width), 0.0);
  if (series.empty()) return out;
  const double step =
      static_cast<double>(series.size()) / static_cast<double>(width);
  for (int c = 0; c < width; ++c) {
    const auto begin = static_cast<std::size_t>(c * step);
    auto end = static_cast<std::size_t>((c + 1) * step);
    end = std::max(end, begin + 1);
    end = std::min(end, series.size());
    double sum = 0.0;
    for (std::size_t i = begin; i < end; ++i) sum += series[i];
    out[static_cast<std::size_t>(c)] =
        sum / static_cast<double>(end - begin);
  }
  return out;
}

void RenderGrid(std::ostream& out,
                const std::vector<std::string>& grid_rows, Range range,
                std::size_t n_samples, const std::string& title) {
  if (!title.empty()) out << title << "\n";
  const int height = static_cast<int>(grid_rows.size());
  for (int r = 0; r < height; ++r) {
    const double y = range.hi - (range.hi - range.lo) *
                                    static_cast<double>(r) /
                                    static_cast<double>(height - 1);
    out << Fixed(y, 2) << " |" << grid_rows[static_cast<std::size_t>(r)]
        << "\n";
  }
  out << "     +" << std::string(grid_rows.empty() ? 0 : grid_rows[0].size(),
                                 '-')
      << "\n";
  out << "      0 .. " << n_samples - 1 << " (samples)\n";
}

}  // namespace

char ShadeChar(double fraction) noexcept {
  fraction = std::clamp(fraction, 0.0, 1.0);
  const auto index = static_cast<std::size_t>(
      std::lround(fraction * static_cast<double>(kShades.size() - 1)));
  return kShades[index];
}

void PrintBarChart(std::ostream& out, std::span<const Bar> bars, int width,
                   const std::string& value_suffix) {
  double max_value = 0.0;
  std::size_t label_width = 0;
  for (const auto& bar : bars) {
    max_value = std::max(max_value, bar.value);
    label_width = std::max(label_width, bar.label.size());
  }
  if (max_value <= 0.0) max_value = 1.0;
  for (const auto& bar : bars) {
    const int length = static_cast<int>(
        std::lround(bar.value / max_value * static_cast<double>(width)));
    out << bar.label << std::string(label_width - bar.label.size(), ' ')
        << " |" << std::string(static_cast<std::size_t>(length), '#')
        << std::string(static_cast<std::size_t>(width - length), ' ') << "| "
        << Fixed(bar.value, 4) << value_suffix << "\n";
  }
}

void PrintSeries(std::ostream& out, std::span<const double> series, int width,
                 int height, const std::string& title) {
  if (series.empty() || width < 2 || height < 2) return;
  const auto range = FindRange(series);
  const auto columns = Resample(series, width);
  std::vector<std::string> grid(
      static_cast<std::size_t>(height),
      std::string(static_cast<std::size_t>(width), ' '));
  for (int c = 0; c < width; ++c) {
    const double norm =
        (columns[static_cast<std::size_t>(c)] - range.lo) /
        (range.hi - range.lo);
    const int r = (height - 1) -
                  static_cast<int>(std::lround(norm * (height - 1)));
    grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = '*';
  }
  RenderGrid(out, grid, range, series.size(), title);
}

void PrintTwoSeries(std::ostream& out, std::span<const double> first,
                    std::span<const double> second, int width, int height,
                    const std::string& title) {
  if (first.empty() || second.empty() || width < 2 || height < 2) return;
  std::vector<double> all(first.begin(), first.end());
  all.insert(all.end(), second.begin(), second.end());
  const auto range = FindRange(all);
  const auto a = Resample(first, width);
  const auto b = Resample(second, width);
  std::vector<std::string> grid(
      static_cast<std::size_t>(height),
      std::string(static_cast<std::size_t>(width), ' '));
  const auto plot = [&](const std::vector<double>& columns, char mark) {
    for (int c = 0; c < width; ++c) {
      const double norm =
          (columns[static_cast<std::size_t>(c)] - range.lo) /
          (range.hi - range.lo);
      const int r = (height - 1) -
                    static_cast<int>(std::lround(norm * (height - 1)));
      char& cell =
          grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)];
      cell = (cell == ' ' || cell == mark) ? mark : '#';
    }
  };
  plot(a, '*');
  plot(b, 'o');
  RenderGrid(out, grid, range, std::max(first.size(), second.size()),
             title + "  [*: first  o: second  #: both]");
}

void PrintDensityGrid(std::ostream& out,
                      const std::vector<std::vector<double>>& cells,
                      const std::string& title) {
  if (!title.empty()) out << title << "\n";
  double max_value = 0.0;
  for (const auto& row : cells) {
    for (const double v : row) max_value = std::max(max_value, v);
  }
  if (max_value <= 0.0) max_value = 1.0;
  for (auto it = cells.rbegin(); it != cells.rend(); ++it) {
    out << "|";
    for (const double v : *it) out << ShadeChar(v / max_value);
    out << "|\n";
  }
}

}  // namespace sleepwalk::report
