#include "sleepwalk/world/economics.h"

#include <algorithm>
#include <array>

namespace sleepwalk::world {

namespace {

using enum Region;

// Columns: code, name, region, lat, lon, tz, GDP/capita (PPP USD),
// electricity kWh/capita, Internet users per host, /24 block count at
// paper (A_12w) scale, ground-truth strict-diurnal fraction.
//
// GDP and diurnal fractions for the 20 Table-3 countries and the US are
// the paper's published values; remaining rows are CIA-Factbook-era
// approximations with diurnal fractions consistent with Table 4 regional
// aggregates. Keep sorted by code (FindCountry binary-searches).
constexpr std::array kCountries = {
    Country{"AE", "United Arab Emirates", kWesternAsia, 24.0, 54.0, 4.0, 49800, 11260, 4.0, 2500, 0.030},
    Country{"AM", "Armenia", kWesternAsia, 40.2, 45.0, 4.0, 5900, 1700, 30.0, 1075, 0.630},
    Country{"AR", "Argentina", kSouthAmerica, -34.6, -64.0, -3.0, 18400, 2900, 9.0, 20382, 0.339},
    Country{"AT", "Austria", kWesternEurope, 47.5, 14.5, 1.0, 43100, 8360, 2.2, 11000, 0.010},
    Country{"AU", "Australia", kOceania, -25.3, 134.0, 10.0, 43300, 10710, 1.6, 24000, 0.034},
    Country{"BD", "Bangladesh", kSouthernAsia, 23.7, 90.4, 6.0, 2100, 280, 90.0, 1700, 0.210},
    Country{"BE", "Belgium", kWesternEurope, 50.8, 4.5, 1.0, 38500, 7970, 2.0, 14000, 0.011},
    Country{"BG", "Bulgaria", kEasternEurope, 42.7, 25.3, 2.0, 14500, 4640, 8.0, 8000, 0.110},
    Country{"BO", "Bolivia", kSouthAmerica, -16.5, -64.7, -4.0, 5200, 660, 25.0, 900, 0.280},
    Country{"BR", "Brazil", kSouthAmerica, -14.2, -51.9, -3.0, 12100, 2430, 10.0, 79095, 0.185},
    Country{"BY", "Belarus", kEasternEurope, 53.7, 27.9, 3.0, 15900, 3600, 12.0, 1748, 0.512},
    Country{"CA", "Canada", kNorthernAmerica, 56.1, -106.3, -6.0, 43100, 15500, 1.2, 48000, 0.003},
    Country{"CH", "Switzerland", kWesternEurope, 46.8, 8.2, 1.0, 46200, 7810, 1.5, 15000, 0.008},
    Country{"CL", "Chile", kSouthAmerica, -35.7, -71.5, -4.0, 18700, 3570, 7.0, 8000, 0.180},
    Country{"CN", "China", kEasternAsia, 35.9, 104.2, 8.0, 9300, 3475, 50.0, 394244, 0.498},
    Country{"CO", "Colombia", kSouthAmerica, 4.6, -74.1, -5.0, 11000, 1180, 16.0, 9379, 0.261},
    Country{"CZ", "Czech Republic", kEasternEurope, 49.8, 15.5, 1.0, 27600, 6260, 3.0, 14000, 0.060},
    Country{"DE", "Germany", kWesternEurope, 51.2, 10.4, 1.0, 39700, 7080, 2.5, 95000, 0.012},
    Country{"DK", "Denmark", kNorthernEurope, 56.3, 9.5, 1.0, 38300, 6040, 1.4, 12000, 0.012},
    Country{"DO", "Dominican Republic", kCaribbean, 18.7, -70.2, -4.0, 9800, 1480, 18.0, 1200, 0.016},
    Country{"DZ", "Algeria", kNorthernAfrica, 28.0, 1.7, 1.0, 7600, 1090, 40.0, 1600, 0.095},
    Country{"EC", "Ecuador", kSouthAmerica, -1.8, -78.2, -5.0, 10200, 1320, 20.0, 2300, 0.230},
    Country{"EG", "Egypt", kNorthernAfrica, 26.8, 30.8, 2.0, 6700, 1740, 35.0, 4500, 0.100},
    Country{"ES", "Spain", kSouthernEurope, 40.5, -3.7, 1.0, 31100, 5600, 3.5, 38000, 0.100},
    Country{"FI", "Finland", kNorthernEurope, 61.9, 25.7, 2.0, 37000, 15250, 1.2, 12000, 0.012},
    Country{"FR", "France", kWesternEurope, 46.2, 2.2, 1.0, 36100, 7370, 2.3, 78000, 0.011},
    Country{"GB", "United Kingdom", kNorthernEurope, 55.4, -3.4, 0.0, 37500, 5410, 1.8, 70000, 0.012},
    Country{"GE", "Georgia", kWesternAsia, 42.3, 43.4, 4.0, 6000, 2070, 28.0, 1395, 0.546},
    Country{"GR", "Greece", kSouthernEurope, 39.1, 21.8, 2.0, 24900, 5340, 5.0, 8000, 0.110},
    Country{"GT", "Guatemala", kCentralAmerica, 15.8, -90.2, -6.0, 5300, 570, 30.0, 1800, 0.150},
    Country{"HK", "Hong Kong", kEasternAsia, 22.4, 114.1, 8.0, 52300, 5900, 2.0, 18000, 0.030},
    Country{"HR", "Croatia", kSouthernEurope, 45.1, 15.2, 1.0, 18100, 3740, 6.0, 3000, 0.120},
    Country{"HU", "Hungary", kEasternEurope, 47.2, 19.5, 1.0, 20000, 3880, 4.0, 10000, 0.080},
    Country{"ID", "Indonesia", kSouthEasternAsia, -0.8, 113.9, 7.0, 5100, 750, 60.0, 7617, 0.166},
    Country{"IL", "Israel", kWesternAsia, 31.0, 34.9, 2.0, 32800, 6560, 2.5, 8000, 0.020},
    Country{"IN", "India", kSouthernAsia, 20.6, 79.0, 5.5, 3900, 720, 90.0, 36470, 0.225},
    Country{"IR", "Iran", kWesternAsia, 32.4, 53.7, 3.5, 13100, 2900, 45.0, 5000, 0.150},
    Country{"IT", "Italy", kSouthernEurope, 41.9, 12.6, 1.0, 30600, 5400, 4.0, 48000, 0.130},
    Country{"JM", "Jamaica", kCaribbean, 18.1, -77.3, -5.0, 9300, 2770, 20.0, 950, 0.016},
    Country{"JP", "Japan", kEasternAsia, 36.2, 138.3, 9.0, 36900, 7750, 2.0, 300000, 0.008},
    Country{"KG", "Kyrgyzstan", kCentralAsia, 41.2, 74.8, 6.0, 2400, 1640, 50.0, 450, 0.350},
    Country{"KR", "South Korea", kEasternAsia, 35.9, 127.8, 9.0, 32800, 10160, 2.2, 65000, 0.050},
    Country{"KZ", "Kazakhstan", kCentralAsia, 48.0, 66.9, 6.0, 14100, 4890, 18.0, 3832, 0.400},
    Country{"LK", "Sri Lanka", kSouthernAsia, 7.9, 80.8, 5.5, 6100, 530, 55.0, 1100, 0.190},
    Country{"MA", "Morocco", kNorthernAfrica, 31.8, -7.1, 0.0, 5400, 830, 45.0, 2115, 0.185},
    Country{"MD", "Moldova", kEasternEurope, 47.4, 28.4, 2.0, 3500, 1370, 25.0, 1500, 0.180},
    Country{"MX", "Mexico", kCentralAmerica, 23.6, -102.6, -6.0, 15600, 2000, 12.0, 28000, 0.120},
    Country{"MY", "Malaysia", kSouthEasternAsia, 4.2, 102.0, 8.0, 17200, 4250, 12.0, 9747, 0.247},
    Country{"NL", "Netherlands", kWesternEurope, 52.1, 5.3, 1.0, 42900, 6710, 1.5, 28000, 0.009},
    Country{"NO", "Norway", kNorthernEurope, 60.5, 8.5, 1.0, 55900, 23170, 1.1, 14000, 0.010},
    Country{"NZ", "New Zealand", kOceania, -40.9, 174.9, 12.0, 30200, 9080, 1.8, 3200, 0.040},
    Country{"PE", "Peru", kSouthAmerica, -9.2, -75.0, -5.0, 10900, 1250, 22.0, 4600, 0.401},
    Country{"PH", "Philippines", kSouthEasternAsia, 12.9, 121.8, 8.0, 4500, 650, 70.0, 5721, 0.239},
    Country{"PK", "Pakistan", kSouthernAsia, 30.4, 69.3, 5.0, 2900, 450, 85.0, 4200, 0.170},
    Country{"PL", "Poland", kEasternEurope, 51.9, 19.1, 1.0, 21100, 3940, 5.0, 35000, 0.070},
    Country{"PT", "Portugal", kSouthernEurope, 39.4, -8.2, 0.0, 23800, 4660, 4.5, 9000, 0.120},
    Country{"RO", "Romania", kEasternEurope, 45.9, 25.0, 2.0, 13400, 2580, 10.0, 15000, 0.130},
    Country{"RS", "Serbia", kSouthernEurope, 44.0, 21.0, 1.0, 10600, 4330, 12.0, 4429, 0.393},
    Country{"RU", "Russia", kEasternEurope, 56.0, 60.0, 4.0, 18000, 6540, 8.0, 53048, 0.159},
    Country{"SA", "Saudi Arabia", kWesternAsia, 23.9, 45.1, 3.0, 31800, 8740, 10.0, 6000, 0.060},
    Country{"SE", "Sweden", kNorthernEurope, 60.1, 18.6, 1.0, 41900, 14030, 1.2, 22000, 0.011},
    Country{"SG", "Singapore", kSouthEasternAsia, 1.35, 103.8, 8.0, 61400, 8700, 2.0, 6000, 0.030},
    Country{"SV", "El Salvador", kCentralAmerica, 13.8, -88.9, -6.0, 7600, 900, 35.0, 1145, 0.311},
    Country{"TH", "Thailand", kSouthEasternAsia, 15.9, 101.0, 7.0, 10300, 2400, 25.0, 10986, 0.336},
    Country{"TN", "Tunisia", kNorthernAfrica, 33.9, 9.6, 1.0, 9900, 1300, 30.0, 1900, 0.090},
    Country{"TR", "Turkey", kWesternAsia, 38.96, 35.2, 2.0, 15200, 2780, 14.0, 17000, 0.090},
    Country{"TW", "Taiwan", kEasternAsia, 23.7, 121.0, 8.0, 39600, 10400, 2.5, 35000, 0.080},
    Country{"UA", "Ukraine", kEasternEurope, 48.4, 31.2, 2.0, 7500, 3660, 15.0, 16575, 0.289},
    Country{"US", "United States", kNorthernAmerica, 39.8, -98.6, -6.0, 50700, 12185, 1.4, 672104, 0.002},
    Country{"UY", "Uruguay", kSouthAmerica, -32.5, -55.8, -3.0, 16200, 2970, 8.0, 1800, 0.160},
    Country{"UZ", "Uzbekistan", kCentralAsia, 41.4, 64.6, 5.0, 3600, 1630, 60.0, 700, 0.400},
    Country{"VE", "Venezuela", kSouthAmerica, 6.4, -66.6, -4.5, 13600, 3420, 18.0, 5200, 0.190},
    Country{"VN", "Vietnam", kSouthEasternAsia, 14.1, 108.3, 7.0, 3600, 1300, 65.0, 8197, 0.183},
    Country{"ZA", "South Africa", kSouthernAfrica, -30.6, 22.9, 2.0, 11600, 4400, 12.0, 10000, 0.011},
};

static_assert(std::is_sorted(kCountries.begin(), kCountries.end(),
                             [](const Country& a, const Country& b) {
                               return a.code < b.code;
                             }),
              "country table must stay sorted by code");

}  // namespace

std::string_view RegionName(Region region) noexcept {
  switch (region) {
    case kNorthernAmerica: return "Northern America";
    case kSouthernAfrica: return "Southern Africa";
    case kWesternEurope: return "W. Europe";
    case kNorthernEurope: return "Northern Europe";
    case kCaribbean: return "Caribbean";
    case kOceania: return "Oceania";
    case kWesternAsia: return "W. Asia";
    case kNorthernAfrica: return "Northern Africa";
    case kSouthernEurope: return "Southern Europe";
    case kCentralAmerica: return "Central America";
    case kEasternEurope: return "Eastern Europe";
    case kSouthernAsia: return "Southern Asia";
    case kSouthAmerica: return "South America";
    case kSouthEasternAsia: return "South-Eastern Asia";
    case kEasternAsia: return "Eastern Asia";
    case kCentralAsia: return "Central Asia";
  }
  return "unknown";
}

std::span<const Country> Countries() noexcept { return kCountries; }

const Country* FindCountry(std::string_view code) noexcept {
  const auto it = std::lower_bound(
      kCountries.begin(), kCountries.end(), code,
      [](const Country& c, std::string_view key) { return c.code < key; });
  if (it == kCountries.end() || it->code != code) return nullptr;
  return &*it;
}

std::int64_t TotalBlockWeight() noexcept {
  std::int64_t total = 0;
  for (const auto& country : kCountries) total += country.block_count;
  return total;
}

}  // namespace sleepwalk::world
