// Country-level external factors (paper §2.3.1, §5.4, Tables 3-5).
//
// The paper joins diurnal measurements against the CIA World Factbook
// (per-capita GDP, electricity consumption, Internet users per host) and
// MaxMind country locations. Those datasets are public but not shipped
// here; this module embeds a ~70-country snapshot with the paper's
// Table 3 GDP values verbatim and Factbook-era approximations elsewhere
// (see DESIGN.md substitution table).
//
// Each record also carries the simulator's ground-truth diurnal fraction
// (from the paper's Tables 3-4) and the civil timezone used to phase
// simulated diurnal behaviour. The *analysis* pipeline never reads the
// ground-truth columns; it must rediscover them from probes.
#ifndef SLEEPWALK_WORLD_ECONOMICS_H_
#define SLEEPWALK_WORLD_ECONOMICS_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

namespace sleepwalk::world {

/// UN-style regions, exactly the groups of the paper's Table 4.
enum class Region : std::uint8_t {
  kNorthernAmerica,
  kSouthernAfrica,
  kWesternEurope,
  kNorthernEurope,
  kCaribbean,
  kOceania,
  kWesternAsia,
  kNorthernAfrica,
  kSouthernEurope,
  kCentralAmerica,
  kEasternEurope,
  kSouthernAsia,
  kSouthAmerica,
  kSouthEasternAsia,
  kEasternAsia,
  kCentralAsia,
};

/// Display name matching Table 4 ("Northern America", "W. Europe", ...).
std::string_view RegionName(Region region) noexcept;

/// Number of distinct regions.
inline constexpr int kRegionCount = 16;

/// One country's external factors and simulation ground truth.
struct Country {
  std::string_view code;  ///< ISO 3166-1 alpha-2.
  std::string_view name;
  Region region;
  double latitude = 0.0;   ///< population-weighted centroid, degrees.
  double longitude = 0.0;  ///< east positive.
  double tz_offset_hours = 0.0;  ///< single civil offset (China: one zone).
  double gdp_per_capita_usd = 0.0;        ///< PPP, CIA Factbook era.
  double electricity_kwh_per_capita = 0.0;
  double internet_users_per_host = 0.0;
  int block_count = 0;  ///< /24 blocks at paper scale (A_12w, Table 3/4).
  /// Ground truth for the world generator: fraction of this country's
  /// blocks that behave strictly diurnally. NOT read by the analyzer.
  double true_diurnal_fraction = 0.0;
};

/// The full embedded table, sorted by country code.
std::span<const Country> Countries() noexcept;

/// Lookup by ISO code; nullptr when unknown.
const Country* FindCountry(std::string_view code) noexcept;

/// Sum of block_count across all countries (paper scale, ~3.45M).
std::int64_t TotalBlockWeight() noexcept;

}  // namespace sleepwalk::world

#endif  // SLEEPWALK_WORLD_ECONOMICS_H_
