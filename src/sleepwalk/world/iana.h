// IANA IPv4 /8 allocation registry (paper §5.3, Fig 15).
//
// The paper correlates diurnal fractions with the date each /8 was
// delegated by IANA/ICANN to a regional registry. We embed an
// approximation of the public registry (dates to month precision, a few
// legacy ranges collapsed); Fig 15 only needs the allocation-date *trend*,
// which survives this coarsening.
#ifndef SLEEPWALK_WORLD_IANA_H_
#define SLEEPWALK_WORLD_IANA_H_

#include <cstdint>
#include <optional>
#include <string_view>

namespace sleepwalk::world {

/// The registry (or legacy assignee class) a /8 was delegated to.
enum class Registry : std::uint8_t {
  kArin,
  kRipe,
  kApnic,
  kLacnic,
  kAfrinic,
  kLegacy,    ///< pre-RIR direct assignments (mostly US organizations)
  kReserved,  ///< private, loopback, multicast, future use
};

std::string_view RegistryName(Registry registry) noexcept;

/// One /8's delegation record.
struct Slash8Allocation {
  std::uint8_t slash8 = 0;
  Registry registry = Registry::kReserved;
  int year = 0;   ///< delegation year (0 for reserved space)
  int month = 1;  ///< 1-12
};

/// Delegation record for a /8; nullopt for reserved/unallocated space.
std::optional<Slash8Allocation> AllocationFor(std::uint8_t slash8) noexcept;

/// Months since January 1983 (the flag-day epoch the paper's Fig 15 axis
/// effectively starts after); -1 for reserved space.
int AllocationMonthIndex(std::uint8_t slash8) noexcept;

/// Allocation age in years relative to `reference_year` (fractional).
/// Returns nullopt for reserved space.
std::optional<double> AllocationAgeYears(std::uint8_t slash8,
                                         double reference_year) noexcept;

/// The default registry for a region's address space, used by the world
/// generator to place countries into plausible /8s.
Registry RegistryForRegionName(std::string_view region_name) noexcept;

}  // namespace sleepwalk::world

#endif  // SLEEPWALK_WORLD_IANA_H_
