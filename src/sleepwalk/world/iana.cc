#include "sleepwalk/world/iana.h"

#include <array>

namespace sleepwalk::world {

namespace {

using enum Registry;

struct Entry {
  std::uint8_t first;
  std::uint8_t last;  // inclusive
  Registry registry;
  int year;
  int month;
};

// Approximation of the IANA IPv4 address-space registry (month precision,
// contiguous same-registry runs collapsed). Sources: the public registry
// as of 2013; legacy Class A dates from the registry's "1991-05"-style
// WHOIS fields.
constexpr std::array<Entry, 72> kEntries = {{
    {0, 0, kReserved, 0, 1},      // "this network"
    {1, 1, kApnic, 2010, 1},
    {2, 2, kRipe, 2009, 9},
    {3, 3, kLegacy, 1988, 5},     // GE
    {4, 4, kLegacy, 1992, 12},    // Level 3
    {5, 5, kRipe, 2010, 11},
    {6, 7, kLegacy, 1994, 2},     // Army, DoD
    {8, 8, kLegacy, 1992, 12},    // Level 3
    {9, 9, kLegacy, 1992, 8},     // IBM
    {10, 10, kReserved, 0, 1},    // RFC 1918
    {11, 13, kLegacy, 1993, 5},   // DoD, AT&T, Xerox
    {14, 14, kApnic, 2010, 4},
    {15, 22, kLegacy, 1994, 7},   // HP .. DISA
    {23, 23, kApnic, 2010, 11},
    {24, 24, kArin, 2001, 5},
    {25, 26, kLegacy, 1995, 1},   // UK MoD, DISA
    {27, 27, kApnic, 2010, 1},
    {28, 30, kLegacy, 1992, 7},   // DSI, DISA
    {31, 31, kRipe, 2010, 5},
    {32, 35, kLegacy, 1994, 6},   // AT&T .. Merit
    {36, 36, kApnic, 2010, 10},
    {37, 37, kRipe, 2010, 11},
    {38, 38, kLegacy, 1994, 9},   // PSI
    {39, 39, kApnic, 2011, 1},
    {40, 40, kLegacy, 1994, 6},   // Eli Lilly
    {41, 41, kAfrinic, 2005, 4},
    {42, 42, kApnic, 2010, 10},
    {43, 43, kLegacy, 1991, 1},   // Japan Inet (administered as legacy)
    {44, 45, kLegacy, 1992, 7},   // amateur radio, Interop
    {46, 46, kRipe, 2009, 9},
    {47, 48, kLegacy, 1991, 1},   // Bell-Northern, Prudential
    {49, 49, kApnic, 2010, 8},
    {50, 50, kArin, 2010, 2},
    {51, 57, kLegacy, 1994, 8},   // UK Govt .. SITA
    {58, 59, kApnic, 2004, 4},
    {60, 60, kApnic, 2003, 4},
    {61, 61, kApnic, 1997, 4},
    {62, 62, kRipe, 1997, 4},
    {63, 63, kArin, 1997, 4},
    {64, 68, kArin, 1999, 7},
    {69, 72, kArin, 2002, 8},
    {73, 76, kArin, 2005, 3},
    {77, 80, kRipe, 2006, 8},
    {81, 88, kRipe, 2003, 4},
    {89, 95, kRipe, 2005, 6},
    {96, 99, kArin, 2006, 10},
    {100, 100, kArin, 2010, 11},
    {101, 101, kApnic, 2010, 8},
    {102, 102, kAfrinic, 2011, 2},
    {103, 103, kApnic, 2011, 2},
    {104, 104, kArin, 2011, 2},
    {105, 105, kAfrinic, 2010, 11},
    {106, 106, kApnic, 2011, 1},
    {107, 107, kArin, 2010, 2},
    {108, 108, kArin, 2008, 12},
    {109, 109, kRipe, 2009, 1},
    {110, 111, kApnic, 2008, 11},
    {112, 113, kApnic, 2008, 5},
    {114, 115, kApnic, 2007, 10},
    {116, 118, kApnic, 2007, 1},
    {119, 120, kApnic, 2007, 1},
    {121, 122, kApnic, 2006, 1},
    {123, 123, kApnic, 2006, 1},
    {124, 126, kApnic, 2005, 1},
    {127, 127, kReserved, 0, 1},  // loopback
    {128, 172, kLegacy, 1993, 5}, // legacy Class B space ("Various")
    {173, 174, kArin, 2008, 2},
    {175, 175, kApnic, 2009, 8},
    {176, 176, kRipe, 2010, 5},
    {177, 177, kLacnic, 2010, 6},
    {178, 178, kRipe, 2009, 1},
}};

constexpr std::array<Entry, 26> kEntriesHigh = {{
    {179, 179, kLacnic, 2011, 2},
    {180, 180, kApnic, 2009, 4},
    {181, 181, kLacnic, 2010, 6},
    {182, 183, kApnic, 2009, 8},
    {184, 184, kArin, 2008, 12},
    {185, 185, kRipe, 2011, 2},
    {186, 187, kLacnic, 2007, 9},
    {188, 188, kRipe, 2007, 10},
    {189, 190, kLacnic, 2005, 6},
    {191, 191, kLacnic, 1993, 5},
    {192, 192, kLegacy, 1993, 5},
    {193, 195, kRipe, 1993, 5},
    {196, 196, kAfrinic, 1993, 5},
    {197, 197, kAfrinic, 2008, 10},
    {198, 199, kArin, 1993, 5},
    {200, 201, kLacnic, 2002, 11},
    {202, 203, kApnic, 1993, 5},
    {204, 209, kArin, 1994, 3},
    {210, 211, kApnic, 1996, 6},
    {212, 213, kRipe, 1997, 10},
    {214, 215, kLegacy, 1998, 3},  // US DoD
    {216, 216, kArin, 1998, 4},
    {217, 217, kRipe, 2000, 6},
    {218, 219, kApnic, 2000, 12},
    {220, 222, kApnic, 2001, 12},
    {223, 223, kApnic, 2010, 4},
    // 224-255: multicast + reserved, handled by the fallthrough.
}};

}  // namespace

std::string_view RegistryName(Registry registry) noexcept {
  switch (registry) {
    case kArin: return "ARIN";
    case kRipe: return "RIPE NCC";
    case kApnic: return "APNIC";
    case kLacnic: return "LACNIC";
    case kAfrinic: return "AFRINIC";
    case kLegacy: return "Legacy";
    case kReserved: return "Reserved";
  }
  return "unknown";
}

std::optional<Slash8Allocation> AllocationFor(std::uint8_t slash8) noexcept {
  const auto scan = [slash8](const auto& entries)
      -> std::optional<Slash8Allocation> {
    for (const auto& entry : entries) {
      if (slash8 >= entry.first && slash8 <= entry.last) {
        if (entry.registry == kReserved) return std::nullopt;
        return Slash8Allocation{slash8, entry.registry, entry.year,
                                entry.month};
      }
    }
    return std::nullopt;
  };
  if (slash8 <= 178) return scan(kEntries);
  if (slash8 <= 223) return scan(kEntriesHigh);
  return std::nullopt;  // multicast / reserved
}

int AllocationMonthIndex(std::uint8_t slash8) noexcept {
  const auto allocation = AllocationFor(slash8);
  if (!allocation) return -1;
  return (allocation->year - 1983) * 12 + (allocation->month - 1);
}

std::optional<double> AllocationAgeYears(std::uint8_t slash8,
                                         double reference_year) noexcept {
  const auto allocation = AllocationFor(slash8);
  if (!allocation) return std::nullopt;
  const double allocated = allocation->year +
                           (allocation->month - 0.5) / 12.0;
  return reference_year - allocated;
}

Registry RegistryForRegionName(std::string_view region_name) noexcept {
  if (region_name == "Northern America") return kArin;
  if (region_name == "Caribbean" || region_name == "Central America" ||
      region_name == "South America") {
    return kLacnic;
  }
  if (region_name == "W. Europe" || region_name == "Northern Europe" ||
      region_name == "Southern Europe" || region_name == "Eastern Europe" ||
      region_name == "W. Asia" || region_name == "Central Asia") {
    return kRipe;
  }
  if (region_name == "Northern Africa" || region_name == "Southern Africa") {
    return kAfrinic;
  }
  return kApnic;  // Eastern/Southern/South-Eastern Asia, Oceania
}

}  // namespace sleepwalk::world
