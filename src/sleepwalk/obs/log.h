// Structured, leveled campaign logging.
//
// A 12-week campaign's operational record is measurement data in its own
// right — the paper diagnoses its 4.36 cycles/day spectral artifact from
// prober *restart logs* (§4). Records are key=value structured events,
// not printf strings, and carry two clocks:
//   * virtual campaign time — seconds since the dataset epoch, advanced
//     by the supervisor/analyzer as rounds execute;
//   * wall time — only attached when the logger is non-deterministic.
// In deterministic (simulation) mode every serialized byte derives from
// campaign state, so two same-seed runs emit identical JSONL; the
// integration tests diff the files to enforce this.
//
// Sinks: a human text sink ("INFO vt=3960 round.retry block=... ") and a
// JSONL sink (one JSON object per line). Library code never writes to
// std::cout/std::cerr directly — everything routes through a Logger the
// caller owns, and a null Logger* costs a single branch.
#ifndef SLEEPWALK_OBS_LOG_H_
#define SLEEPWALK_OBS_LOG_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "sleepwalk/util/sync.h"

namespace sleepwalk::obs {

/// Severity, ordered; a logger drops records below its threshold.
enum class Level : std::uint8_t {
  kTrace = 0,  ///< per-round noise (probes, belief updates)
  kDebug,      ///< per-block / per-recovery-action detail
  kInfo,       ///< campaign lifecycle + heartbeats
  kWarn,       ///< degraded but continuing (retries exhausted, quarantine)
  kError,      ///< a subsystem failed (checkpoint write error, ...)
  kOff,        ///< sink nothing
};

/// "trace"/"debug"/"info"/"warn"/"error"/"off" (case-insensitive);
/// anything else returns `fallback`.
Level ParseLevel(std::string_view text, Level fallback = Level::kInfo);

/// Lower-case name used in both sinks ("info", ...).
std::string_view LevelName(Level level) noexcept;

/// One typed key=value pair. Values are serialized immediately inside
/// Logger::Write, so string_view keys/values only need to outlive the
/// call. Overloads cover the integral spellings that appear at call
/// sites; everything narrower promotes to int64.
struct Field {
  enum class Kind : std::uint8_t { kInt, kUint, kDouble, kBool, kString };

  constexpr Field(std::string_view k, std::int64_t v) noexcept
      : key(k), kind(Kind::kInt), i(v) {}
  constexpr Field(std::string_view k, int v) noexcept
      : Field(k, static_cast<std::int64_t>(v)) {}
  constexpr Field(std::string_view k, unsigned int v) noexcept
      : key(k), kind(Kind::kUint), u(v) {}
  constexpr Field(std::string_view k, std::uint64_t v) noexcept
      : key(k), kind(Kind::kUint), u(v) {}
  constexpr Field(std::string_view k, double v) noexcept
      : key(k), kind(Kind::kDouble), d(v) {}
  constexpr Field(std::string_view k, bool v) noexcept
      : key(k), kind(Kind::kBool), b(v) {}
  constexpr Field(std::string_view k, std::string_view v) noexcept
      : key(k), kind(Kind::kString), s(v) {}
  constexpr Field(std::string_view k, const char* v) noexcept
      : key(k), kind(Kind::kString), s(v) {}

  std::string_view key;
  Kind kind;
  union {
    std::int64_t i;
    std::uint64_t u;
    double d;
    bool b;
  };
  std::string_view s;  ///< valid when kind == kString
};

/// Logger knobs.
struct LogConfig {
  Level level = Level::kInfo;
  /// When true (simulation campaigns), records carry only virtual time
  /// and the serialized output is a pure function of campaign state.
  /// When false (live campaigns), records also carry wall-clock
  /// nanoseconds since the Unix epoch.
  bool deterministic = true;
};

/// Leveled structured logger fanning out to text and/or JSONL sinks.
/// Thread-safe: the level gate and campaign clock are lock-free atomics
/// (the disabled path stays a single branch), and record emission
/// serializes on a mutex so concurrent Writes interleave at line — not
/// byte — granularity (tests/obs/concurrency_stress_test.cc validates
/// the JSONL sink under TSan). Sinks are borrowed and must outlive the
/// logger; a given ostream must not be shared with writers outside this
/// logger.
class Logger {
 public:
  explicit Logger(LogConfig config = {}) : config_(config) {}

  void AddTextSink(std::ostream* out) SLEEPWALK_EXCLUDES(mutex_);
  void AddJsonlSink(std::ostream* out) SLEEPWALK_EXCLUDES(mutex_);

  /// One-branch hot-path gate: true when a record at `level` would reach
  /// at least one sink. Callers skip field construction when false.
  bool Enabled(Level level) const noexcept {
    return level >= config_.level && level < Level::kOff &&
           has_sink_.load(std::memory_order_relaxed);
  }

  /// Emits one record. `event` is a dotted lowercase name
  /// ("supervisor.retry"); see DESIGN.md §7 for the event catalog.
  void Write(Level level, std::string_view event,
             std::initializer_list<Field> fields) SLEEPWALK_EXCLUDES(mutex_);

  /// Sink-kind introspection, used by the parallel executor to build a
  /// per-block buffer logger mirroring exactly this logger's shape.
  bool has_text_sink() const SLEEPWALK_EXCLUDES(mutex_);
  bool has_jsonl_sink() const SLEEPWALK_EXCLUDES(mutex_);

  /// Appends pre-rendered record bytes — `text` to every text sink,
  /// `jsonl` to every JSONL sink — under the same lock Write uses, so
  /// buffered shard telemetry merges without tearing concurrent records.
  /// The bytes must already be whole lines in this logger's formats.
  void AppendRaw(std::string_view text, std::string_view jsonl)
      SLEEPWALK_EXCLUDES(mutex_);

  /// Campaign clock, in seconds since the dataset epoch. The supervisor
  /// and block analyzer advance this as rounds execute; records stamp
  /// the value current at Write time. -1 = not yet known.
  void set_virtual_time(std::int64_t sec) noexcept {
    virtual_sec_.store(sec, std::memory_order_relaxed);
  }
  std::int64_t virtual_time() const noexcept {
    return virtual_sec_.load(std::memory_order_relaxed);
  }

  const LogConfig& config() const noexcept { return config_; }

 private:
  const LogConfig config_;  ///< immutable after construction
  std::atomic<std::int64_t> virtual_sec_{-1};
  std::atomic<bool> has_sink_{false};
  mutable util::Mutex mutex_;
  std::vector<std::ostream*> text_sinks_ SLEEPWALK_GUARDED_BY(mutex_);
  std::vector<std::ostream*> jsonl_sinks_ SLEEPWALK_GUARDED_BY(mutex_);
};

/// Appends `text` to `out` with JSON string escaping (quotes, backslash,
/// and control characters as \u00XX). Exposed for the JSONL validator
/// tests.
void AppendJsonEscaped(std::string& out, std::string_view text);

}  // namespace sleepwalk::obs

#endif  // SLEEPWALK_OBS_LOG_H_
