#include "sleepwalk/obs/export.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <ostream>
#include <string>
#include <string_view>

namespace sleepwalk::obs {

namespace {

/// Minimal JSON string escaping (quotes, backslash, control bytes).
/// Span names are short identifiers, so this is rarely more than a copy.
std::string EscapeJson(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xf];
          out += kHex[static_cast<unsigned char>(c) & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

double HistogramQuantile(const HistogramSnapshot& snapshot, double q) {
  if (snapshot.count == 0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(snapshot.count);
  double cumulative = 0.0;
  for (std::size_t i = 0;
       i < snapshot.bounds.size() && i < snapshot.buckets.size(); ++i) {
    const double in_bucket = static_cast<double>(snapshot.buckets[i]);
    if (in_bucket <= 0.0) continue;
    const double previous = cumulative;
    cumulative += in_bucket;
    if (cumulative >= rank) {
      // Linear interpolation inside the bucket, Prometheus-style: the
      // first finite bucket interpolates up from 0 unless its bound is
      // already negative.
      const double upper = snapshot.bounds[i];
      const double lower = i == 0 ? std::min(0.0, upper)
                                  : snapshot.bounds[i - 1];
      const double fraction =
          std::clamp((rank - previous) / in_bucket, 0.0, 1.0);
      return lower + (upper - lower) * fraction;
    }
  }
  // The rank lands in the +Inf bucket: the estimator cannot see past the
  // largest finite bound. With no finite bounds at all there is nothing
  // to report.
  return snapshot.bounds.empty() ? std::numeric_limits<double>::quiet_NaN()
                                 : snapshot.bounds.back();
}

QuantileSummary SummarizeQuantiles(const HistogramSnapshot& snapshot) {
  QuantileSummary summary;
  summary.p50 = HistogramQuantile(snapshot, 0.50);
  summary.p95 = HistogramQuantile(snapshot, 0.95);
  summary.p99 = HistogramQuantile(snapshot, 0.99);
  return summary;
}

void WriteChromeTrace(const std::vector<SpanRecord>& spans,
                      std::ostream& out) {
  // Flatten every closed span into its B and E events and order by the
  // deterministic sequence tick. Ticks are globally unique (one per span
  // start/end, preserved by Graft), so the order is total, `ts` is
  // strictly monotone, and B/E events nest exactly as the spans did.
  struct Event {
    std::uint64_t tick = 0;
    bool begin = false;
    const SpanRecord* span = nullptr;
  };
  std::vector<Event> events;
  events.reserve(spans.size() * 2);
  for (const auto& span : spans) {
    if (span.open) continue;  // same policy as Tracer::Graft
    events.push_back({span.seq_start, true, &span});
    events.push_back({span.seq_end, false, &span});
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.tick < b.tick; });

  out << '[';
  bool first = true;
  for (const auto& event : events) {
    out << (first ? "\n" : ",\n");
    first = false;
    const auto& span = *event.span;
    out << "{\"name\":\"" << EscapeJson(span.name)
        << "\",\"cat\":\"sleepwalk\",\"ph\":\"" << (event.begin ? 'B' : 'E')
        << "\",\"pid\":1,\"tid\":1,\"ts\":" << event.tick << ",\"args\":{"
        << "\"vt\":" << (event.begin ? span.vt_start : span.vt_end);
    // Wall duration only exists in non-deterministic runs; omitting the
    // zero keeps deterministic exports byte-stable.
    if (!event.begin && span.wall_ns > 0) {
      out << ",\"wall_ns\":" << span.wall_ns;
    }
    out << "}}";
  }
  out << "\n]\n";
}

void WriteChromeTrace(const Tracer& tracer, std::ostream& out) {
  WriteChromeTrace(tracer.spans(), out);
}

}  // namespace sleepwalk::obs
