#include "sleepwalk/obs/metrics.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "sleepwalk/obs/export.h"

namespace sleepwalk::obs {

namespace {

/// Shortest round-trip formatting (same rationale as the logger: byte
/// determinism). Prometheus spells infinity "+Inf".
std::string FormatNumber(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buffer[32];
  const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value);
  return std::string(buffer, static_cast<std::size_t>(ptr - buffer));
}

std::string FormatCount(std::uint64_t value) {
  char buffer[24];
  const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value);
  return std::string(buffer, static_cast<std::size_t>(ptr - buffer));
}

constexpr std::string_view kPrefix = "sleepwalk_";

std::string_view KindName(std::uint8_t kind) {
  switch (kind) {
    case 0: return "counter";
    case 1: return "gauge";
    default: return "histogram";
  }
}

std::vector<double> SortedUnique(std::vector<double> bounds) {
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  return bounds;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(SortedUnique(std::move(bounds))) {
  util::MutexLock lock{mutex_};
  per_bucket_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  util::MutexLock lock{mutex_};
  ++per_bucket_[bucket];
  ++count_;
  sum_ += value;
}

std::uint64_t Histogram::count() const noexcept {
  util::MutexLock lock{mutex_};
  return count_;
}

double Histogram::sum() const noexcept {
  util::MutexLock lock{mutex_};
  return sum_;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  util::MutexLock lock{mutex_};
  return per_bucket_;
}

bool Histogram::MergeFrom(const Histogram& other) {
  if (other.bounds_ != bounds_) return false;
  // Snapshot the source first so the two locks are never held together
  // (no lock-order obligation between arbitrary histogram pairs).
  const auto buckets = other.bucket_counts();
  const auto count = other.count();
  const auto sum = other.sum();
  util::MutexLock lock{mutex_};
  for (std::size_t i = 0; i < per_bucket_.size() && i < buckets.size(); ++i) {
    per_bucket_[i] += buckets[i];
  }
  count_ += count;
  sum_ += sum;
  return true;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.bounds = bounds_;
  util::MutexLock lock{mutex_};
  snapshot.buckets = per_bucket_;
  snapshot.count = count_;
  snapshot.sum = sum_;
  return snapshot;
}

std::uint64_t Histogram::CumulativeCount(std::size_t i) const noexcept {
  util::MutexLock lock{mutex_};
  std::uint64_t total = 0;
  for (std::size_t b = 0; b <= i && b < per_bucket_.size(); ++b) {
    total += per_bucket_[b];
  }
  return total;
}

void Registry::NoteKindCollision(std::string_view name,
                                 std::string_view requested,
                                 Instrument::Kind existing) const noexcept {
  kind_collisions_.fetch_add(1, std::memory_order_relaxed);
#ifndef NDEBUG
  const auto existing_name = KindName(static_cast<std::uint8_t>(existing));
  std::fprintf(  // sleeplint: allow(no-raw-io) — debug-build CHECK output
      stderr,
      "sleepwalk/obs: instrument kind collision: \"%.*s\" requested as %.*s "
      "but already registered as %.*s; the null return drops every update\n",
      static_cast<int>(name.size()), name.data(),
      static_cast<int>(requested.size()), requested.data(),
      static_cast<int>(existing_name.size()), existing_name.data());
#endif
}

Counter* Registry::FindOrCreateCounter(std::string_view name,
                                       std::string_view help) {
  util::MutexLock lock{mutex_};
  auto it = instruments_.find(name);
  if (it == instruments_.end()) {
    Instrument instrument;
    instrument.kind = Instrument::Kind::kCounter;
    instrument.help = help;
    instrument.counter = std::make_unique<Counter>();
    it = instruments_.emplace(std::string(name), std::move(instrument)).first;
  }
  if (it->second.kind != Instrument::Kind::kCounter) {
    NoteKindCollision(name, "counter", it->second.kind);
    return nullptr;
  }
  return it->second.counter.get();
}

Gauge* Registry::FindOrCreateGauge(std::string_view name,
                                   std::string_view help) {
  util::MutexLock lock{mutex_};
  auto it = instruments_.find(name);
  if (it == instruments_.end()) {
    Instrument instrument;
    instrument.kind = Instrument::Kind::kGauge;
    instrument.help = help;
    instrument.gauge = std::make_unique<Gauge>();
    it = instruments_.emplace(std::string(name), std::move(instrument)).first;
  }
  if (it->second.kind != Instrument::Kind::kGauge) {
    NoteKindCollision(name, "gauge", it->second.kind);
    return nullptr;
  }
  return it->second.gauge.get();
}

Histogram* Registry::FindOrCreateHistogram(std::string_view name,
                                           std::vector<double> bounds,
                                           std::string_view help) {
  util::MutexLock lock{mutex_};
  auto it = instruments_.find(name);
  if (it == instruments_.end()) {
    Instrument instrument;
    instrument.kind = Instrument::Kind::kHistogram;
    instrument.help = help;
    instrument.histogram = std::make_unique<Histogram>(std::move(bounds));
    it = instruments_.emplace(std::string(name), std::move(instrument)).first;
  }
  if (it->second.kind != Instrument::Kind::kHistogram) {
    NoteKindCollision(name, "histogram", it->second.kind);
    return nullptr;
  }
  return it->second.histogram.get();
}

const Counter* Registry::counter(std::string_view name) const {
  util::MutexLock lock{mutex_};
  const auto it = instruments_.find(name);
  return it != instruments_.end() &&
                 it->second.kind == Instrument::Kind::kCounter
             ? it->second.counter.get()
             : nullptr;
}

const Gauge* Registry::gauge(std::string_view name) const {
  util::MutexLock lock{mutex_};
  const auto it = instruments_.find(name);
  return it != instruments_.end() && it->second.kind == Instrument::Kind::kGauge
             ? it->second.gauge.get()
             : nullptr;
}

std::size_t Registry::size() const noexcept {
  util::MutexLock lock{mutex_};
  return instruments_.size();
}

const Histogram* Registry::histogram(std::string_view name) const {
  util::MutexLock lock{mutex_};
  const auto it = instruments_.find(name);
  return it != instruments_.end() &&
                 it->second.kind == Instrument::Kind::kHistogram
             ? it->second.histogram.get()
             : nullptr;
}

void Registry::MergeFrom(const Registry& other) {
  // Snapshot `other` under its own lock, then apply with only this
  // registry's lock held — same no-two-locks discipline as
  // Histogram::MergeFrom. Instrument pointers stay valid without the
  // lock: map nodes never move and `other` outlives the call.
  struct Item {
    std::string name;
    Instrument::Kind kind;
    std::string help;
    double value = 0.0;               // counter / gauge
    const Histogram* histogram = nullptr;
  };
  std::vector<Item> items;
  {
    util::MutexLock lock{other.mutex_};
    items.reserve(other.instruments_.size());
    for (const auto& [name, instrument] : other.instruments_) {
      Item item;
      item.name = name;
      item.kind = instrument.kind;
      item.help = instrument.help;
      switch (instrument.kind) {
        case Instrument::Kind::kCounter:
          item.value = instrument.counter->value();
          break;
        case Instrument::Kind::kGauge:
          item.value = instrument.gauge->value();
          break;
        case Instrument::Kind::kHistogram:
          item.histogram = instrument.histogram.get();
          break;
      }
      items.push_back(std::move(item));
    }
  }
  for (const auto& item : items) {
    switch (item.kind) {
      case Instrument::Kind::kCounter:
        if (auto* counter = FindOrCreateCounter(item.name, item.help)) {
          if (item.value != 0.0) counter->Inc(item.value);
        }
        break;
      case Instrument::Kind::kGauge:
        if (auto* gauge = FindOrCreateGauge(item.name, item.help)) {
          gauge->Set(item.value);
        }
        break;
      case Instrument::Kind::kHistogram:
        if (auto* histogram = FindOrCreateHistogram(
                item.name, item.histogram->bounds(), item.help)) {
          histogram->MergeFrom(*item.histogram);
        }
        break;
    }
  }
}

std::vector<std::pair<std::string, HistogramSnapshot>>
Registry::HistogramSnapshots() const {
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  util::MutexLock lock{mutex_};
  for (const auto& [name, instrument] : instruments_) {
    if (instrument.kind != Instrument::Kind::kHistogram) continue;
    out.emplace_back(name, instrument.histogram->Snapshot());
  }
  return out;
}

void Registry::WritePrometheus(std::ostream& out) const {
  util::MutexLock lock{mutex_};
  for (const auto& [name, instrument] : instruments_) {
    const std::string full = std::string(kPrefix) + name;
    if (!instrument.help.empty()) {
      out << "# HELP " << full << ' ' << instrument.help << '\n';
    }
    switch (instrument.kind) {
      case Instrument::Kind::kCounter:
        out << "# TYPE " << full << " counter\n"
            << full << ' ' << FormatNumber(instrument.counter->value())
            << '\n';
        break;
      case Instrument::Kind::kGauge:
        out << "# TYPE " << full << " gauge\n"
            << full << ' ' << FormatNumber(instrument.gauge->value()) << '\n';
        break;
      case Instrument::Kind::kHistogram: {
        // One locked snapshot per histogram, cumulative counts as a
        // running sum over it — per-bucket CumulativeCount() calls would
        // re-lock and re-scan, O(buckets^2) per exposition pass.
        const auto snapshot = instrument.histogram->Snapshot();
        out << "# TYPE " << full << " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < snapshot.bounds.size(); ++i) {
          cumulative += snapshot.buckets[i];
          out << full << "_bucket{le=\"" << FormatNumber(snapshot.bounds[i])
              << "\"} " << FormatCount(cumulative) << '\n';
        }
        out << full << "_bucket{le=\"+Inf\"} "
            << FormatCount(snapshot.count) << '\n'
            << full << "_sum " << FormatNumber(snapshot.sum) << '\n'
            << full << "_count " << FormatCount(snapshot.count) << '\n';
        break;
      }
    }
  }
}

void Registry::WriteCsv(std::ostream& out) const {
  util::MutexLock lock{mutex_};
  out << "name,kind,field,value\n";
  for (const auto& [name, instrument] : instruments_) {
    switch (instrument.kind) {
      case Instrument::Kind::kCounter:
        out << name << ",counter,value,"
            << FormatNumber(instrument.counter->value()) << '\n';
        break;
      case Instrument::Kind::kGauge:
        out << name << ",gauge,value,"
            << FormatNumber(instrument.gauge->value()) << '\n';
        break;
      case Instrument::Kind::kHistogram: {
        // Same single-snapshot discipline as WritePrometheus.
        const auto snapshot = instrument.histogram->Snapshot();
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < snapshot.bounds.size(); ++i) {
          cumulative += snapshot.buckets[i];
          out << name << ",histogram,le=" << FormatNumber(snapshot.bounds[i])
              << ',' << FormatCount(cumulative) << '\n';
        }
        out << name << ",histogram,le=+Inf,"
            << FormatCount(snapshot.count) << '\n'
            << name << ",histogram,sum," << FormatNumber(snapshot.sum)
            << '\n'
            << name << ",histogram,count," << FormatCount(snapshot.count)
            << '\n'
            << name << ",histogram,p50,"
            << FormatNumber(HistogramQuantile(snapshot, 0.50)) << '\n'
            << name << ",histogram,p95,"
            << FormatNumber(HistogramQuantile(snapshot, 0.95)) << '\n'
            << name << ",histogram,p99,"
            << FormatNumber(HistogramQuantile(snapshot, 0.99)) << '\n';
        break;
      }
    }
  }
}

}  // namespace sleepwalk::obs
