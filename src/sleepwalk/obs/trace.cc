#include "sleepwalk/obs/trace.h"

#include <chrono>
#include <ostream>
#include <utility>

#include "sleepwalk/obs/log.h"

namespace sleepwalk::obs {

namespace {

// The one sanctioned monotonic-clock read in the tracer: only reachable
// when TraceConfig::deterministic is false (live/bench runs), never in
// simulation — the determinism tests pin this.
std::uint64_t MonotonicNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now()  // sleeplint: allow(no-wallclock)
              .time_since_epoch())
          .count());
}

constexpr std::size_t kNoSpan = static_cast<std::size_t>(-1);

}  // namespace

ScopedSpan::ScopedSpan(Tracer* tracer, std::string_view name)
    : tracer_(tracer), index_(kNoSpan) {
  if (tracer_ != nullptr) index_ = tracer_->Start(name);
}

ScopedSpan::ScopedSpan(ScopedSpan&& other) noexcept
    : tracer_(std::exchange(other.tracer_, nullptr)),
      index_(std::exchange(other.index_, kNoSpan)) {}

ScopedSpan& ScopedSpan::operator=(ScopedSpan&& other) noexcept {
  if (this != &other) {
    if (tracer_ != nullptr && index_ != kNoSpan) tracer_->End(index_);
    tracer_ = std::exchange(other.tracer_, nullptr);
    index_ = std::exchange(other.index_, kNoSpan);
  }
  return *this;
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ != nullptr && index_ != kNoSpan) tracer_->End(index_);
}

std::size_t Tracer::Start(std::string_view name) {
  const std::uint64_t now_ns = config_.deterministic ? 0 : MonotonicNanos();
  SpanRecord record;
  record.name = std::string(name);
  record.vt_start = virtual_time();
  util::MutexLock lock{mutex_};
  record.depth = static_cast<int>(open_stack_.size());
  record.seq_start = seq_++;
  const std::size_t index = spans_.size();
  spans_.push_back(std::move(record));
  start_ns_.push_back(now_ns);
  open_stack_.push_back(index);
  return index;
}

void Tracer::End(std::size_t index) {
  const std::uint64_t now_ns = config_.deterministic ? 0 : MonotonicNanos();
  util::MutexLock lock{mutex_};
  if (index >= spans_.size() || !spans_[index].open) return;
  auto& record = spans_[index];
  record.seq_end = seq_++;
  record.vt_end = virtual_time();
  if (!config_.deterministic) {
    record.wall_ns = now_ns - start_ns_[index];
  }
  record.open = false;
  // Mis-nested manual End calls close everything above `index` too —
  // the stack must stay consistent for depth accounting.
  while (!open_stack_.empty() && open_stack_.back() >= index) {
    open_stack_.pop_back();
  }
}

void Tracer::Graft(const std::vector<SpanRecord>& records) {
  util::MutexLock lock{mutex_};
  const int depth_offset = static_cast<int>(open_stack_.size());
  const std::uint64_t seq_offset = seq_;
  std::uint64_t ticks = 0;
  for (const auto& record : records) {
    if (record.open) continue;
    SpanRecord grafted = record;
    grafted.depth += depth_offset;
    grafted.seq_start += seq_offset;
    grafted.seq_end += seq_offset;
    ticks = std::max(ticks, record.seq_end + 1);
    spans_.push_back(std::move(grafted));
    start_ns_.push_back(0);
  }
  seq_ += ticks;
}

std::vector<SpanRecord> Tracer::spans() const {
  util::MutexLock lock{mutex_};
  return spans_;
}

std::size_t Tracer::span_count() const {
  util::MutexLock lock{mutex_};
  return spans_.size();
}

void Tracer::WriteJsonl(std::ostream& out) const {
  util::MutexLock lock{mutex_};
  std::string line;
  for (const auto& span : spans_) {
    line.clear();
    line.append("{\"name\":\"");
    AppendJsonEscaped(line, span.name);
    line.append("\",\"depth\":");
    line.append(std::to_string(span.depth));
    line.append(",\"seq\":[");
    line.append(std::to_string(span.seq_start));
    line.push_back(',');
    line.append(std::to_string(span.seq_end));
    line.append("],\"vt\":[");
    line.append(std::to_string(span.vt_start));
    line.push_back(',');
    line.append(std::to_string(span.vt_end));
    line.push_back(']');
    if (!config_.deterministic) {
      line.append(",\"wall_ns\":");
      line.append(std::to_string(span.wall_ns));
    }
    if (span.open) line.append(",\"open\":true");
    line.append("}\n");
    out.write(line.data(), static_cast<std::streamsize>(line.size()));
  }
}

}  // namespace sleepwalk::obs
