// Scoped-span phase tracer.
//
// RAII spans time the campaign's phases (block measurement, the analyze
// pipeline's resample/clean/FFT/classify stages, checkpoint I/O) and
// serialize to a flame-ordered JSONL trace: records appear in span
// *start* order with an explicit nesting depth, so a flame graph is a
// single forward pass over the file.
//
// Two clocks, same rule as the logger: spans always carry virtual
// campaign time and a deterministic sequence number (one tick per span
// start/end); wall-clock durations are attached only when the tracer is
// non-deterministic, so same-seed simulation runs emit byte-identical
// traces while live/bench runs get real nanosecond timings.
#ifndef SLEEPWALK_OBS_TRACE_H_
#define SLEEPWALK_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sleepwalk/util/sync.h"

namespace sleepwalk::obs {

/// One completed (or still-open) span.
struct SpanRecord {
  std::string name;
  int depth = 0;                ///< 0 = root; children are deeper
  std::uint64_t seq_start = 0;  ///< deterministic event ticks
  std::uint64_t seq_end = 0;
  std::int64_t vt_start = -1;   ///< virtual seconds at start/end
  std::int64_t vt_end = -1;
  std::uint64_t wall_ns = 0;    ///< 0 in deterministic mode
  bool open = true;
};

struct TraceConfig {
  /// When true, no wall clock is read and serialized output is a pure
  /// function of campaign state (see obs/log.h for the invariant).
  bool deterministic = true;
};

class Tracer;

/// RAII guard: starts a span on construction (when the tracer is
/// non-null), ends it on destruction. Move-only; spans must nest.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(Tracer* tracer, std::string_view name);
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ScopedSpan(ScopedSpan&& other) noexcept;
  ScopedSpan& operator=(ScopedSpan&& other) noexcept;
  ~ScopedSpan();

 private:
  Tracer* tracer_ = nullptr;
  std::size_t index_ = 0;
};

/// Records spans. Thread-safe: Start/End serialize on a mutex (the
/// tracer is span-grained, not packet-grained, so contention is
/// negligible), and the depth/seq bookkeeping stays consistent even
/// when spans from different threads interleave — a span's depth is the
/// number of spans open at its start, whichever thread opened them.
/// Within one thread, RAII guards guarantee strict nesting and the
/// flame-ordered output is exact. Records accumulate in memory — a
/// campaign traces phases, not packets, so the volume is O(blocks).
class Tracer {
 public:
  explicit Tracer(TraceConfig config = {}) : config_(config) {}

  /// Starts a span, returning its record index (for End).
  std::size_t Start(std::string_view name) SLEEPWALK_EXCLUDES(mutex_);
  void End(std::size_t index) SLEEPWALK_EXCLUDES(mutex_);

  ScopedSpan Span(std::string_view name) { return ScopedSpan{this, name}; }

  void set_virtual_time(std::int64_t sec) noexcept {
    virtual_sec_.store(sec, std::memory_order_relaxed);
  }
  std::int64_t virtual_time() const noexcept {
    return virtual_sec_.load(std::memory_order_relaxed);
  }

  /// Splices spans recorded by another (shard-local) tracer into this
  /// one as children of whatever is open here: depths shift by the
  /// current open-span depth, sequence ticks shift past this tracer's
  /// clock, and the clock advances over the grafted ticks. The parallel
  /// executor grafts each block's buffered spans in block-commit order,
  /// which keeps the flame-ordered output identical for any worker
  /// count. `records` must all be closed (a finished block leaves no
  /// span open); open records are skipped.
  void Graft(const std::vector<SpanRecord>& records)
      SLEEPWALK_EXCLUDES(mutex_);

  /// Snapshot of all spans recorded so far (copy, taken under the lock).
  std::vector<SpanRecord> spans() const SLEEPWALK_EXCLUDES(mutex_);
  std::size_t span_count() const SLEEPWALK_EXCLUDES(mutex_);
  const TraceConfig& config() const noexcept { return config_; }

  /// One JSON object per span, flame (start) order:
  /// {"name":...,"depth":...,"seq":[s,e],"vt":[s,e],("wall_ns":n)}
  void WriteJsonl(std::ostream& out) const SLEEPWALK_EXCLUDES(mutex_);

 private:
  friend class ScopedSpan;

  const TraceConfig config_;  ///< immutable after construction
  std::atomic<std::int64_t> virtual_sec_{-1};
  mutable util::Mutex mutex_;
  std::vector<SpanRecord> spans_ SLEEPWALK_GUARDED_BY(mutex_);
  std::vector<std::size_t> open_stack_ SLEEPWALK_GUARDED_BY(mutex_);
  std::vector<std::uint64_t> start_ns_
      SLEEPWALK_GUARDED_BY(mutex_);  ///< parallel to spans_
  std::uint64_t seq_ SLEEPWALK_GUARDED_BY(mutex_) = 0;
};

}  // namespace sleepwalk::obs

#endif  // SLEEPWALK_OBS_TRACE_H_
