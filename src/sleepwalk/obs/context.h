// obs::Context — the one handle threaded through the measurement plane.
//
// A Context is three borrowed, individually-optional pointers: logger,
// metrics registry, tracer. The default Context{} is the null object:
// every helper degenerates to a single pointer test, so instrumented
// code paths cost one predictable branch when observability is off
// (bench/micro_perf.cc measures this at < 2% on the analyze hot path;
// see BENCH_obs.json).
//
// Hard invariant (enforced by tests/integration/obs_inertness_test.cc):
// a Context only *reads* campaign state. DatasetResult bytes, checkpoint
// bytes, and every RNG stream are identical whether a campaign runs with
// a null Context, full sinks, or anything between.
#ifndef SLEEPWALK_OBS_CONTEXT_H_
#define SLEEPWALK_OBS_CONTEXT_H_

#include <cstdint>

#include "sleepwalk/obs/log.h"
#include "sleepwalk/obs/metrics.h"
#include "sleepwalk/obs/trace.h"

namespace sleepwalk::obs {

struct Context {
  Logger* log = nullptr;
  Registry* metrics = nullptr;
  Tracer* tracer = nullptr;

  bool enabled() const noexcept {
    return log != nullptr || metrics != nullptr || tracer != nullptr;
  }

  /// True when a record at `level` would reach a sink — gate field
  /// construction behind this.
  bool Logs(Level level) const noexcept {
    return log != nullptr && log->Enabled(level);
  }

  /// Advances the campaign clock on every time-carrying component.
  void SetVirtualTime(std::int64_t sec) const noexcept {
    if (log != nullptr) log->set_virtual_time(sec);
    if (tracer != nullptr) tracer->set_virtual_time(sec);
  }

  /// Starts a span when tracing, else a no-op guard.
  ScopedSpan Span(std::string_view name) const {
    return ScopedSpan{tracer, name};
  }

  /// Instrument lookup that tolerates a null registry (returns null, and
  /// the call sites' `if (c) c->Inc()` pattern stays one branch).
  Counter* CounterOrNull(std::string_view name,
                         std::string_view help = "") const {
    return metrics != nullptr ? metrics->FindOrCreateCounter(name, help)
                              : nullptr;
  }
  Gauge* GaugeOrNull(std::string_view name, std::string_view help = "") const {
    return metrics != nullptr ? metrics->FindOrCreateGauge(name, help)
                              : nullptr;
  }
  Histogram* HistogramOrNull(std::string_view name, std::vector<double> bounds,
                             std::string_view help = "") const {
    return metrics != nullptr
               ? metrics->FindOrCreateHistogram(name, std::move(bounds), help)
               : nullptr;
  }
};

}  // namespace sleepwalk::obs

#endif  // SLEEPWALK_OBS_CONTEXT_H_
