// Derived-telemetry exporters: histogram quantile estimation and the
// Chrome trace-event trace format.
//
// Quantiles are estimated Prometheus-style — linear interpolation over
// the histogram's cumulative buckets — so p50/p95/p99 are a pure
// function of the bucket snapshot and byte-deterministic across
// same-seed runs (they surface in /statusz and the CSV exposition).
//
// The Chrome exporter renders the tracer's flame-ordered spans as a
// trace-event JSON array loadable by chrome://tracing and Perfetto:
// every closed span becomes a B/E pair stamped with its deterministic
// sequence ticks, so the export is byte-identical for same-seed runs
// and for any worker count (the ticks survive the parallel executor's
// Graft). Virtual campaign time and — in non-deterministic runs — wall
// nanoseconds ride along as event args.
#ifndef SLEEPWALK_OBS_EXPORT_H_
#define SLEEPWALK_OBS_EXPORT_H_

#include <iosfwd>
#include <vector>

#include "sleepwalk/obs/metrics.h"
#include "sleepwalk/obs/trace.h"

namespace sleepwalk::obs {

/// Estimated value at quantile `q` in [0, 1], Prometheus
/// histogram_quantile() semantics: find the bucket holding rank
/// q*count, interpolate linearly inside it (the first finite bucket
/// interpolates from 0 when its bound is positive). Observations landing
/// in the +Inf bucket degrade to the largest finite bound — the
/// estimator cannot see past it. Returns NaN for an empty histogram or
/// when every observation sits in +Inf with no finite bounds.
double HistogramQuantile(const HistogramSnapshot& snapshot, double q);

/// The fixed summary set /statusz and the CSV exposition publish.
struct QuantileSummary {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};
QuantileSummary SummarizeQuantiles(const HistogramSnapshot& snapshot);

/// Writes `spans` as a Chrome trace-event JSON array (B/E phase pairs,
/// one pid/tid, `ts` = deterministic sequence tick). Events are emitted
/// in tick order, so `ts` is strictly monotone and B/E nesting is exact.
/// Open spans are skipped (same policy as Tracer::Graft — a finished
/// campaign leaves none).
void WriteChromeTrace(const std::vector<SpanRecord>& spans,
                      std::ostream& out);

/// Convenience overload over the tracer's current span snapshot.
void WriteChromeTrace(const Tracer& tracer, std::ostream& out);

}  // namespace sleepwalk::obs

#endif  // SLEEPWALK_OBS_EXPORT_H_
