// Campaign metrics registry: named counters, gauges, and fixed-bucket
// histograms with Prometheus-text and CSV exposition.
//
// The registry is the quantitative side of the telemetry subsystem: the
// probe-accounting identity (sent = answered + lost + rate_limited +
// unreachable, report/resilience.h) is mirrored here so an external
// scraper can verify the measurement plane's health without parsing
// logs. Instruments are created once (FindOrCreate*) and then updated
// through stable pointers — the hot path pays one null check and one
// add, no hashing.
//
// Thread-safety: the registry is shared state for the parallel campaign
// runner, so it is internally synchronized and the locking discipline is
// machine-checked (util/sync.h annotations, -Wthread-safety in CI).
// Counters and gauges are lock-free atomics — the per-probe hot path
// never takes a lock; histogram observation and instrument lookup
// serialize on a mutex. tests/obs/concurrency_stress_test.cc hammers
// all three from many threads under TSan.
//
// Exposition is deterministic: instruments are stored name-sorted and
// numbers are shortest-round-trip formatted, so identical campaign
// state produces identical files. See DESIGN.md §7 for the name catalog
// (lowercase snake_case, counters end in `_total`, unit suffixes like
// `_seconds` spelled out — the Prometheus conventions).
#ifndef SLEEPWALK_OBS_METRICS_H_
#define SLEEPWALK_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sleepwalk/util/sync.h"

namespace sleepwalk::obs {

/// Monotonically increasing value (double, per Prometheus data model, so
/// second-valued counters like backoff time fit). Lock-free; relaxed
/// ordering is enough because a counter carries no happens-before
/// obligation — readers only need an eventually-consistent total.
class Counter {
 public:
  void Inc(double delta = 1.0) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Last-write-wins instantaneous value. Lock-free, same ordering
/// rationale as Counter.
class Gauge {
 public:
  void Set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(double delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time copy of one histogram's state, taken under a single
/// lock acquisition so buckets, count, and sum are mutually consistent.
/// Exposition and quantile estimation (obs/export.h) work from this
/// instead of re-locking per bucket.
struct HistogramSnapshot {
  std::vector<double> bounds;           ///< finite upper bounds, ascending
  std::vector<std::uint64_t> buckets;   ///< non-cumulative, +Inf last
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// Fixed-bucket cumulative histogram. Bucket i counts observations
/// <= bounds[i] (Prometheus `le` semantics: the bound is inclusive);
/// one implicit +Inf bucket catches the rest. Observation takes a
/// per-histogram mutex — bucket increment, count, and sum must move
/// together or exposition could show count() disagreeing with the
/// bucket totals.
class Histogram {
 public:
  /// `bounds` must be strictly increasing; violations are degraded to a
  /// sorted, deduplicated copy rather than UB.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value) noexcept SLEEPWALK_EXCLUDES(mutex_);

  std::uint64_t count() const noexcept SLEEPWALK_EXCLUDES(mutex_);
  double sum() const noexcept SLEEPWALK_EXCLUDES(mutex_);
  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Cumulative count of observations <= bounds()[i].
  std::uint64_t CumulativeCount(std::size_t i) const noexcept
      SLEEPWALK_EXCLUDES(mutex_);

  /// Non-cumulative per-bucket snapshot (+Inf bucket last).
  std::vector<std::uint64_t> bucket_counts() const SLEEPWALK_EXCLUDES(mutex_);

  /// Everything exposition needs in one lock acquisition. Prefer this
  /// over per-bucket CumulativeCount() calls, which each re-lock and
  /// re-scan (O(buckets^2) across a full exposition pass).
  HistogramSnapshot Snapshot() const SLEEPWALK_EXCLUDES(mutex_);

  /// Adds `other`'s buckets, count, and sum into this histogram. The two
  /// must share bounds (the shard histograms the parallel executor merges
  /// are created from the same instrument definitions); a bounds mismatch
  /// is a caller bug and the merge is skipped, mirroring the registry's
  /// kind-collision policy. Returns whether the merge applied.
  bool MergeFrom(const Histogram& other) SLEEPWALK_EXCLUDES(mutex_);

 private:
  const std::vector<double> bounds_;  ///< immutable after construction
  mutable util::Mutex mutex_;
  std::vector<std::uint64_t> per_bucket_
      SLEEPWALK_GUARDED_BY(mutex_);  ///< non-cumulative, +Inf last
  std::uint64_t count_ SLEEPWALK_GUARDED_BY(mutex_) = 0;
  double sum_ SLEEPWALK_GUARDED_BY(mutex_) = 0.0;
};

/// Owns every instrument for one campaign. Lookup creates on first use;
/// returned pointers are stable for the registry's lifetime (map nodes
/// never move) and safe to update from any thread without further
/// locking. Name collisions across kinds (a counter and a gauge both
/// named "x") are a caller bug; the later FindOrCreate returns null
/// rather than aliasing, bumps kind_collisions(), and — in debug builds
/// — prints a diagnostic naming both kinds, because audited call sites
/// (obs::Context::*OrNull, SupervisorMetrics, ProbeCounters) all store
/// the null and silently skip updates, which would otherwise hide the
/// bug as a mysteriously flat series.
class Registry {
 public:
  Counter* FindOrCreateCounter(std::string_view name,
                               std::string_view help = "")
      SLEEPWALK_EXCLUDES(mutex_);
  Gauge* FindOrCreateGauge(std::string_view name, std::string_view help = "")
      SLEEPWALK_EXCLUDES(mutex_);
  Histogram* FindOrCreateHistogram(std::string_view name,
                                   std::vector<double> bounds,
                                   std::string_view help = "")
      SLEEPWALK_EXCLUDES(mutex_);

  /// Lookup without creation; null when absent or of a different kind.
  const Counter* counter(std::string_view name) const
      SLEEPWALK_EXCLUDES(mutex_);
  const Gauge* gauge(std::string_view name) const SLEEPWALK_EXCLUDES(mutex_);
  const Histogram* histogram(std::string_view name) const
      SLEEPWALK_EXCLUDES(mutex_);

  std::size_t size() const noexcept SLEEPWALK_EXCLUDES(mutex_);

  /// Number of FindOrCreate* calls that hit a kind collision and
  /// returned null. A nonzero value means some instrument silently
  /// dropped its updates — regression-tested, surfaced loudly in debug
  /// builds.
  std::uint64_t kind_collisions() const noexcept {
    return kind_collisions_.load(std::memory_order_relaxed);
  }

  /// Snapshot of every histogram (name-sorted), one lock acquisition per
  /// histogram. Feeds /statusz quantile reporting (obs/export.h).
  std::vector<std::pair<std::string, HistogramSnapshot>> HistogramSnapshots()
      const SLEEPWALK_EXCLUDES(mutex_);

  /// Prometheus text exposition format 0.0.4, instruments name-sorted,
  /// every name prefixed "sleepwalk_".
  void WritePrometheus(std::ostream& out) const SLEEPWALK_EXCLUDES(mutex_);

  /// CSV exposition: header "name,kind,field,value", one row per scalar
  /// (histograms expand to bucket/sum/count rows plus estimated
  /// p50/p95/p99 rows — linear interpolation over the buckets, NaN when
  /// the histogram is empty).
  void WriteCsv(std::ostream& out) const SLEEPWALK_EXCLUDES(mutex_);

  /// Folds `other`'s instruments into this registry, creating missing
  /// instruments with `other`'s help text: counters add, gauges take
  /// `other`'s value (last merge wins), histograms add bucket-wise. This
  /// is the deterministic-merge half of the parallel executor's
  /// shard-local metrics buffers: shard registries are merged in block
  /// order, so double-valued sums accumulate in one fixed order
  /// regardless of worker count. Kind or bounds collisions skip the
  /// instrument (caller bug, same policy as FindOrCreate*).
  void MergeFrom(const Registry& other) SLEEPWALK_EXCLUDES(mutex_);

 private:
  struct Instrument {
    enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  /// Diagnoses a FindOrCreate* kind mismatch: counts it always, prints
  /// to stderr in debug builds.
  void NoteKindCollision(std::string_view name, std::string_view requested,
                         Instrument::Kind existing) const noexcept;

  mutable util::Mutex mutex_;
  // std::map: name-sorted iteration makes exposition deterministic.
  std::map<std::string, Instrument, std::less<>> instruments_
      SLEEPWALK_GUARDED_BY(mutex_);
  mutable std::atomic<std::uint64_t> kind_collisions_{0};
};

}  // namespace sleepwalk::obs

#endif  // SLEEPWALK_OBS_METRICS_H_
