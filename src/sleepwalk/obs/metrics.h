// Campaign metrics registry: named counters, gauges, and fixed-bucket
// histograms with Prometheus-text and CSV exposition.
//
// The registry is the quantitative side of the telemetry subsystem: the
// probe-accounting identity (sent = answered + lost + rate_limited +
// unreachable, report/resilience.h) is mirrored here so an external
// scraper can verify the measurement plane's health without parsing
// logs. Instruments are created once (FindOrCreate*) and then updated
// through stable pointers — the hot path pays one null check and one
// add, no hashing.
//
// Exposition is deterministic: instruments are stored name-sorted and
// numbers are shortest-round-trip formatted, so identical campaign
// state produces identical files. See DESIGN.md §7 for the name catalog
// (lowercase snake_case, counters end in `_total`, unit suffixes like
// `_seconds` spelled out — the Prometheus conventions).
#ifndef SLEEPWALK_OBS_METRICS_H_
#define SLEEPWALK_OBS_METRICS_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace sleepwalk::obs {

/// Monotonically increasing value (double, per Prometheus data model, so
/// second-valued counters like backoff time fit).
class Counter {
 public:
  void Inc(double delta = 1.0) noexcept { value_ += delta; }
  double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double value) noexcept { value_ = value; }
  void Add(double delta) noexcept { value_ += delta; }
  double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket cumulative histogram. Bucket i counts observations
/// <= bounds[i] (Prometheus `le` semantics: the bound is inclusive);
/// one implicit +Inf bucket catches the rest.
class Histogram {
 public:
  /// `bounds` must be strictly increasing; violations are degraded to a
  /// sorted, deduplicated copy rather than UB.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Cumulative count of observations <= bounds()[i].
  std::uint64_t CumulativeCount(std::size_t i) const noexcept;

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> per_bucket_;  ///< non-cumulative, +Inf last
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Owns every instrument for one campaign. Lookup creates on first use;
/// returned pointers are stable for the registry's lifetime. Name
/// collisions across kinds (a counter and a gauge both named "x") are a
/// caller bug; the later FindOrCreate returns null rather than aliasing.
class Registry {
 public:
  Counter* FindOrCreateCounter(std::string_view name,
                               std::string_view help = "");
  Gauge* FindOrCreateGauge(std::string_view name, std::string_view help = "");
  Histogram* FindOrCreateHistogram(std::string_view name,
                                   std::vector<double> bounds,
                                   std::string_view help = "");

  /// Lookup without creation; null when absent or of a different kind.
  const Counter* counter(std::string_view name) const;
  const Gauge* gauge(std::string_view name) const;
  const Histogram* histogram(std::string_view name) const;

  std::size_t size() const noexcept { return instruments_.size(); }

  /// Prometheus text exposition format 0.0.4, instruments name-sorted,
  /// every name prefixed "sleepwalk_".
  void WritePrometheus(std::ostream& out) const;

  /// CSV exposition: header "name,kind,field,value", one row per scalar
  /// (histograms expand to bucket/sum/count rows).
  void WriteCsv(std::ostream& out) const;

 private:
  struct Instrument {
    enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  // std::map: name-sorted iteration makes exposition deterministic.
  std::map<std::string, Instrument, std::less<>> instruments_;
};

}  // namespace sleepwalk::obs

#endif  // SLEEPWALK_OBS_METRICS_H_
