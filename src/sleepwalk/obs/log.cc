#include "sleepwalk/obs/log.h"

#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace sleepwalk::obs {

namespace {

char ToLower(char c) noexcept {
  return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
}

bool EqualsLower(std::string_view text, std::string_view lower) noexcept {
  if (text.size() != lower.size()) return false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (ToLower(text[i]) != lower[i]) return false;
  }
  return true;
}

void AppendInt(std::string& out, std::int64_t value) {
  char buffer[24];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  out.append(buffer, static_cast<std::size_t>(ptr - buffer));
}

void AppendUint(std::string& out, std::uint64_t value) {
  char buffer[24];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  out.append(buffer, static_cast<std::size_t>(ptr - buffer));
}

/// Shortest round-trip double formatting; identical input state thus
/// yields identical bytes, the property the determinism tests rely on.
/// Non-finite values are not valid JSON numbers; emit them as strings.
void AppendDouble(std::string& out, double value, bool json) {
  if (!std::isfinite(value)) {
    const char* name = std::isnan(value) ? "nan"
                       : value > 0.0     ? "inf"
                                         : "-inf";
    if (json) {
      out.push_back('"');
      out.append(name);
      out.push_back('"');
    } else {
      out.append(name);
    }
    return;
  }
  char buffer[32];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  out.append(buffer, static_cast<std::size_t>(ptr - buffer));
}

void AppendFieldValueText(std::string& out, const Field& field) {
  switch (field.kind) {
    case Field::Kind::kInt:
      AppendInt(out, field.i);
      break;
    case Field::Kind::kUint:
      AppendUint(out, field.u);
      break;
    case Field::Kind::kDouble:
      AppendDouble(out, field.d, /*json=*/false);
      break;
    case Field::Kind::kBool:
      out.append(field.b ? "true" : "false");
      break;
    case Field::Kind::kString:
      out.append(field.s);
      break;
  }
}

void AppendFieldValueJson(std::string& out, const Field& field) {
  switch (field.kind) {
    case Field::Kind::kInt:
      AppendInt(out, field.i);
      break;
    case Field::Kind::kUint:
      AppendUint(out, field.u);
      break;
    case Field::Kind::kDouble:
      AppendDouble(out, field.d, /*json=*/true);
      break;
    case Field::Kind::kBool:
      out.append(field.b ? "true" : "false");
      break;
    case Field::Kind::kString:
      out.push_back('"');
      AppendJsonEscaped(out, field.s);
      out.push_back('"');
      break;
  }
}

// The one sanctioned wall-clock read in the logger: only reachable when
// LogConfig::deterministic is false (live campaigns), never in
// simulation — the determinism tests pin this.
std::int64_t WallNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::system_clock::now()  // sleeplint: allow(no-wallclock)
                 .time_since_epoch())
      .count();
}

}  // namespace

Level ParseLevel(std::string_view text, Level fallback) {
  if (EqualsLower(text, "trace")) return Level::kTrace;
  if (EqualsLower(text, "debug")) return Level::kDebug;
  if (EqualsLower(text, "info")) return Level::kInfo;
  if (EqualsLower(text, "warn") || EqualsLower(text, "warning")) {
    return Level::kWarn;
  }
  if (EqualsLower(text, "error")) return Level::kError;
  if (EqualsLower(text, "off") || EqualsLower(text, "none")) {
    return Level::kOff;
  }
  return fallback;
}

std::string_view LevelName(Level level) noexcept {
  switch (level) {
    case Level::kTrace: return "trace";
    case Level::kDebug: return "debug";
    case Level::kInfo: return "info";
    case Level::kWarn: return "warn";
    case Level::kError: return "error";
    case Level::kOff: return "off";
  }
  return "info";
}

void AppendJsonEscaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out.append("\\\""); break;
      case '\\': out.append("\\\\"); break;
      case '\n': out.append("\\n"); break;
      case '\r': out.append("\\r"); break;
      case '\t': out.append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out.append(buffer);
        } else {
          out.push_back(c);
        }
    }
  }
}

void Logger::AddTextSink(std::ostream* out) {
  if (out == nullptr) return;
  {
    util::MutexLock lock{mutex_};
    text_sinks_.push_back(out);
  }
  has_sink_.store(true, std::memory_order_relaxed);
}

void Logger::AddJsonlSink(std::ostream* out) {
  if (out == nullptr) return;
  {
    util::MutexLock lock{mutex_};
    jsonl_sinks_.push_back(out);
  }
  has_sink_.store(true, std::memory_order_relaxed);
}

bool Logger::has_text_sink() const {
  util::MutexLock lock{mutex_};
  return !text_sinks_.empty();
}

bool Logger::has_jsonl_sink() const {
  util::MutexLock lock{mutex_};
  return !jsonl_sinks_.empty();
}

void Logger::AppendRaw(std::string_view text, std::string_view jsonl) {
  util::MutexLock lock{mutex_};
  if (!text.empty()) {
    for (auto* sink : text_sinks_) {
      sink->write(text.data(), static_cast<std::streamsize>(text.size()));
    }
  }
  if (!jsonl.empty()) {
    for (auto* sink : jsonl_sinks_) {
      sink->write(jsonl.data(), static_cast<std::streamsize>(jsonl.size()));
    }
  }
}

void Logger::Write(Level level, std::string_view event,
                   std::initializer_list<Field> fields) {
  if (!Enabled(level)) return;
  const std::int64_t wall_ns = config_.deterministic ? 0 : WallNanos();
  const std::int64_t vt = virtual_time();

  // Lines are built and flushed under one lock so concurrent Writes
  // interleave whole records, never bytes; the streams themselves are
  // not assumed thread-safe.
  util::MutexLock lock{mutex_};
  if (!text_sinks_.empty()) {
    std::string line;
    line.reserve(64);
    for (const char c : LevelName(level)) {
      line.push_back(static_cast<char>(c - 'a' + 'A'));
    }
    line.append(" vt=");
    AppendInt(line, vt);
    if (!config_.deterministic) {
      line.append(" wall_ns=");
      AppendInt(line, wall_ns);
    }
    line.push_back(' ');
    line.append(event);
    for (const auto& field : fields) {
      line.push_back(' ');
      line.append(field.key);
      line.push_back('=');
      AppendFieldValueText(line, field);
    }
    line.push_back('\n');
    for (auto* sink : text_sinks_) sink->write(line.data(),
        static_cast<std::streamsize>(line.size()));
  }

  if (!jsonl_sinks_.empty()) {
    std::string line;
    line.reserve(96);
    line.append("{\"vt\":");
    AppendInt(line, vt);
    if (!config_.deterministic) {
      line.append(",\"wall_ns\":");
      AppendInt(line, wall_ns);
    }
    line.append(",\"lvl\":\"");
    line.append(LevelName(level));
    line.append("\",\"ev\":\"");
    AppendJsonEscaped(line, event);
    line.push_back('"');
    for (const auto& field : fields) {
      line.push_back(',');
      line.push_back('"');
      AppendJsonEscaped(line, field.key);
      line.append("\":");
      AppendFieldValueJson(line, field);
    }
    line.append("}\n");
    for (auto* sink : jsonl_sinks_) sink->write(line.data(),
        static_cast<std::streamsize>(line.size()));
  }
}

}  // namespace sleepwalk::obs
