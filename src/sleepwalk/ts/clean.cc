#include "sleepwalk/ts/clean.h"

#include <algorithm>

namespace sleepwalk::ts {

bool Regularize(const RawSeries& raw, RegularizeScratch& scratch,
                EvenSeries& out, CleanStats* stats) {
  return Regularize(std::span<const Observation>(raw.observations()),
                    scratch, out, stats);
}

bool Regularize(std::span<const Observation> raw, RegularizeScratch& scratch,
                EvenSeries& out, CleanStats* stats) {
  out.values.clear();
  if (raw.empty()) return false;
  CleanStats local_stats;

  // Grid extent: observations carry arbitrary round numbers, so find the
  // span first, then deduplicate into flat slot tables (most recent
  // observation per round wins — appends are in arrival order, so a
  // later entry supersedes an earlier one). The slot walk replaces the
  // per-call std::map whose node allocations dominated cleaning cost.
  std::int64_t first = raw.front().round;
  std::int64_t last = first;
  for (const auto& obs : raw) {
    first = std::min(first, obs.round);
    last = std::max(last, obs.round);
  }
  const auto width = static_cast<std::size_t>(last - first + 1);
  scratch.slot_value.assign(width, 0.0);
  scratch.slot_seen.assign(width, 0);
  for (const auto& obs : raw) {
    const auto slot = static_cast<std::size_t>(obs.round - first);
    if (scratch.slot_seen[slot] != 0) ++local_stats.duplicates_dropped;
    scratch.slot_seen[slot] = 1;
    scratch.slot_value[slot] = obs.value;
  }

  out.first_round = first;
  out.values.reserve(width);

  // First slot is observed by construction (it is some observation's
  // round), as is the last — so a missing slot always has slot+1 in
  // range when probing for a single-round gap.
  double previous = scratch.slot_value[0];
  double before_previous = previous;
  bool previous_observed = true;
  for (std::size_t slot = 0; slot < width; ++slot) {
    const bool observed = scratch.slot_seen[slot] != 0;
    double value = 0.0;
    if (observed) {
      value = scratch.slot_value[slot];
    } else {
      // A "single missing estimate" is a gap of exactly one round:
      // observed neighbours on both sides.
      const bool single_gap =
          previous_observed && scratch.slot_seen[slot + 1] != 0;
      if (single_gap) {
        // Linear extrapolation from the previous two values.
        value = previous + (previous - before_previous);
        value = std::clamp(value, 0.0, 1.0);
        ++local_stats.single_gaps_filled;
      } else {
        value = previous;  // hold across longer gaps
        ++local_stats.long_gaps_filled;
      }
    }
    out.values.push_back(value);
    before_previous = previous;
    previous = value;
    previous_observed = observed;
  }

  if (stats != nullptr) *stats = local_stats;
  return true;
}

std::optional<EvenSeries> Regularize(const RawSeries& raw,
                                     CleanStats* stats) {
  RegularizeScratch scratch;
  EvenSeries series;
  if (!Regularize(raw, scratch, series, stats)) return std::nullopt;
  return series;
}

bool TrimToMidnightUtc(const EvenSeries& series, std::int64_t epoch_sec,
                       std::int64_t round_seconds, EvenSeries& out) {
  constexpr std::int64_t kDaySeconds = 86400;
  out.values.clear();
  if (series.values.empty() || round_seconds <= 0) return false;

  const std::int64_t start_sec =
      epoch_sec + series.first_round * round_seconds;
  // First round at or after the next midnight (or this one exactly).
  std::int64_t first_midnight = (start_sec / kDaySeconds) * kDaySeconds;
  if (first_midnight < start_sec) first_midnight += kDaySeconds;
  const std::int64_t first_round =
      (first_midnight - epoch_sec + round_seconds - 1) / round_seconds;

  const std::int64_t end_sec =
      epoch_sec +
      (series.first_round + static_cast<std::int64_t>(series.size())) *
          round_seconds;
  const std::int64_t last_midnight = (end_sec / kDaySeconds) * kDaySeconds;
  // Midnights rarely align exactly with 11-minute round boundaries; end
  // at the round *nearest* the final midnight ("start and end near
  // midnight UTC"), capped by the data we actually have.
  std::int64_t end_round =
      (last_midnight - epoch_sec + round_seconds / 2) / round_seconds;
  end_round = std::min(
      end_round,
      series.first_round + static_cast<std::int64_t>(series.size()));

  if (end_round <= first_round) return false;
  const std::int64_t offset = first_round - series.first_round;
  const std::int64_t count = end_round - first_round;
  if (offset < 0 || offset + count > static_cast<std::int64_t>(series.size())) {
    return false;
  }
  const std::int64_t span_sec = count * round_seconds;
  if (span_sec < kDaySeconds) return false;

  out.first_round = first_round;
  out.values.assign(
      series.values.begin() + static_cast<std::ptrdiff_t>(offset),
      series.values.begin() + static_cast<std::ptrdiff_t>(offset + count));
  return true;
}

std::optional<EvenSeries> TrimToMidnightUtc(const EvenSeries& series,
                                            std::int64_t epoch_sec,
                                            std::int64_t round_seconds) {
  EvenSeries trimmed;
  if (!TrimToMidnightUtc(series, epoch_sec, round_seconds, trimmed)) {
    return std::nullopt;
  }
  return trimmed;
}

int WholeDays(std::size_t samples, std::int64_t round_seconds) noexcept {
  constexpr std::int64_t kDaySeconds = 86400;
  // Nearest whole day: a midnight-trimmed series misses exact midnight
  // by at most half a round, so rounding recovers the day count N_d the
  // spectral test needs (a floor would report 13 days for a 14-day
  // series ending 3 minutes before midnight and mis-aim the daily bin).
  const std::int64_t span = static_cast<std::int64_t>(samples) *
                            round_seconds;
  return static_cast<int>((span + kDaySeconds / 2) / kDaySeconds);
}

}  // namespace sleepwalk::ts
