#include "sleepwalk/ts/clean.h"

#include <algorithm>
#include <map>

namespace sleepwalk::ts {

std::optional<EvenSeries> Regularize(const RawSeries& raw,
                                     CleanStats* stats) {
  if (raw.empty()) return std::nullopt;
  CleanStats local_stats;

  // Deduplicate: most recent observation per round wins. Observations are
  // appended in arrival order, so a later entry supersedes an earlier one.
  std::map<std::int64_t, double> by_round;
  for (const auto& obs : raw.observations()) {
    const auto [it, inserted] = by_round.insert_or_assign(obs.round, obs.value);
    (void)it;
    if (!inserted) ++local_stats.duplicates_dropped;
  }

  const std::int64_t first = by_round.begin()->first;
  const std::int64_t last = by_round.rbegin()->first;
  EvenSeries series;
  series.first_round = first;
  series.values.reserve(static_cast<std::size_t>(last - first + 1));

  double previous = by_round.begin()->second;
  double before_previous = previous;
  bool previous_observed = true;
  for (std::int64_t round = first; round <= last; ++round) {
    const auto found = by_round.find(round);
    double value = 0.0;
    if (found != by_round.end()) {
      value = found->second;
    } else {
      // A "single missing estimate" is a gap of exactly one round:
      // observed neighbours on both sides.
      const bool single_gap =
          previous_observed && by_round.contains(round + 1);
      if (single_gap) {
        // Linear extrapolation from the previous two values.
        value = previous + (previous - before_previous);
        value = std::clamp(value, 0.0, 1.0);
        ++local_stats.single_gaps_filled;
      } else {
        value = previous;  // hold across longer gaps
        ++local_stats.long_gaps_filled;
      }
    }
    series.values.push_back(value);
    before_previous = previous;
    previous = value;
    previous_observed = found != by_round.end();
  }

  if (stats != nullptr) *stats = local_stats;
  return series;
}

std::optional<EvenSeries> TrimToMidnightUtc(const EvenSeries& series,
                                            std::int64_t epoch_sec,
                                            std::int64_t round_seconds) {
  constexpr std::int64_t kDaySeconds = 86400;
  if (series.values.empty() || round_seconds <= 0) return std::nullopt;

  const std::int64_t start_sec =
      epoch_sec + series.first_round * round_seconds;
  // First round at or after the next midnight (or this one exactly).
  std::int64_t first_midnight = (start_sec / kDaySeconds) * kDaySeconds;
  if (first_midnight < start_sec) first_midnight += kDaySeconds;
  const std::int64_t first_round =
      (first_midnight - epoch_sec + round_seconds - 1) / round_seconds;

  const std::int64_t end_sec =
      epoch_sec +
      (series.first_round + static_cast<std::int64_t>(series.size())) *
          round_seconds;
  const std::int64_t last_midnight = (end_sec / kDaySeconds) * kDaySeconds;
  // Midnights rarely align exactly with 11-minute round boundaries; end
  // at the round *nearest* the final midnight ("start and end near
  // midnight UTC"), capped by the data we actually have.
  std::int64_t end_round =
      (last_midnight - epoch_sec + round_seconds / 2) / round_seconds;
  end_round = std::min(
      end_round,
      series.first_round + static_cast<std::int64_t>(series.size()));

  if (end_round <= first_round) return std::nullopt;
  const std::int64_t offset = first_round - series.first_round;
  const std::int64_t count = end_round - first_round;
  if (offset < 0 || offset + count > static_cast<std::int64_t>(series.size())) {
    return std::nullopt;
  }
  const std::int64_t span_sec = count * round_seconds;
  if (span_sec < kDaySeconds) return std::nullopt;

  EvenSeries trimmed;
  trimmed.first_round = first_round;
  trimmed.values.assign(
      series.values.begin() + static_cast<std::ptrdiff_t>(offset),
      series.values.begin() + static_cast<std::ptrdiff_t>(offset + count));
  return trimmed;
}

int WholeDays(std::size_t samples, std::int64_t round_seconds) noexcept {
  constexpr std::int64_t kDaySeconds = 86400;
  // Nearest whole day: a midnight-trimmed series misses exact midnight
  // by at most half a round, so rounding recovers the day count N_d the
  // spectral test needs (a floor would report 13 days for a 14-day
  // series ending 3 minutes before midnight and mis-aim the daily bin).
  const std::int64_t span = static_cast<std::int64_t>(samples) *
                            round_seconds;
  return static_cast<int>((span + kDaySeconds / 2) / kDaySeconds);
}

}  // namespace sleepwalk::ts
