// Timeseries containers for per-round availability observations.
//
// Probing emits one observation per 11-minute round, but rounds can be
// missed or duplicated (~5% in the paper). RawSeries keeps the (round,
// value) pairs as observed; clean.h turns them into the evenly-sampled
// grid the FFT requires.
#ifndef SLEEPWALK_TS_SERIES_H_
#define SLEEPWALK_TS_SERIES_H_

#include <cstdint>
#include <vector>

namespace sleepwalk::ts {

/// The paper's sampling period: 11 minutes (R = 660 s).
inline constexpr std::int64_t kRoundSeconds = 660;

/// One raw observation: the round index it belongs to and the value.
struct Observation {
  std::int64_t round = 0;
  double value = 0.0;
};

/// An append-only sequence of raw observations, not necessarily evenly
/// spaced or deduplicated.
class RawSeries {
 public:
  void Add(std::int64_t round, double value) {
    observations_.push_back({round, value});
  }

  const std::vector<Observation>& observations() const noexcept {
    return observations_;
  }
  bool empty() const noexcept { return observations_.empty(); }
  std::size_t size() const noexcept { return observations_.size(); }

  /// Replaces the contents wholesale (checkpoint restore).
  void RestoreObservations(std::vector<Observation> observations) {
    observations_ = std::move(observations);
  }

 private:
  std::vector<Observation> observations_;
};

/// An evenly-sampled series: values at rounds [first_round, first_round+n).
struct EvenSeries {
  std::int64_t first_round = 0;
  std::vector<double> values;

  std::size_t size() const noexcept { return values.size(); }
};

}  // namespace sleepwalk::ts

#endif  // SLEEPWALK_TS_SERIES_H_
