// series.h is header-only; this TU exists so the target always has at
// least one object file and as the anchor for future out-of-line code.
#include "sleepwalk/ts/series.h"
