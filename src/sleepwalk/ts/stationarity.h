// Stationarity screening (paper §2.2 "Data appropriateness").
//
// "We verified our data is roughly stationary ... by doing a linear fit of
//  A over the observation and confirming slopes are near-zero ... about
//  80.3% of these blocks are stationary, with a slope equivalent to less
//  than 1 address change per day."
#ifndef SLEEPWALK_TS_STATIONARITY_H_
#define SLEEPWALK_TS_STATIONARITY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "sleepwalk/ts/series.h"

namespace sleepwalk::ts {

/// Result of the linear-trend stationarity test.
struct StationarityResult {
  double slope_per_round = 0.0;        ///< availability units per round.
  double addresses_per_day = 0.0;      ///< |slope| scaled to addresses/day.
  bool stationary = false;
};

/// Fits availability ~ round and converts the slope to "address changes
/// per day" using the block's ever-active address count. A block is
/// stationary when that rate is below `max_addresses_per_day` (paper: 1).
/// `index_scratch` holds the regressor (0, 1, 2, ...); its capacity is
/// reused across calls so the steady state allocates nothing.
StationarityResult TestStationarity(std::span<const double> availability,
                                    int ever_active_addresses,
                                    double max_addresses_per_day,
                                    std::int64_t round_seconds,
                                    std::vector<double>& index_scratch);

/// Allocating convenience wrapper with the paper's defaults.
StationarityResult TestStationarity(std::span<const double> availability,
                                    int ever_active_addresses,
                                    double max_addresses_per_day = 1.0,
                                    std::int64_t round_seconds =
                                        kRoundSeconds);

}  // namespace sleepwalk::ts

#endif  // SLEEPWALK_TS_STATIONARITY_H_
