// Data cleaning for spectral analysis (paper §2.2 "Data cleaning").
//
// "We correct these by extrapolating single missing estimates, and
//  trusting most recent observation when duplicates occur. We trim our
//  timeseries to start and end near midnight UTC."
#ifndef SLEEPWALK_TS_CLEAN_H_
#define SLEEPWALK_TS_CLEAN_H_

#include <cstdint>
#include <optional>

#include "sleepwalk/ts/series.h"

namespace sleepwalk::ts {

/// Bookkeeping about what cleaning had to fix.
struct CleanStats {
  std::size_t duplicates_dropped = 0;
  std::size_t single_gaps_filled = 0;
  std::size_t long_gaps_filled = 0;  ///< gaps > 1 round, filled by hold.
};

/// Regularizes raw observations onto the even round grid
/// [first_round, last_round]:
///  * duplicate rounds: the most recent observation wins;
///  * single missing rounds: filled by extrapolation from the previous
///    two values (falling back to hold-last when at the series head);
///  * longer gaps: filled by holding the last value (and counted, so
///    callers can reject blocks with too much missing data).
/// Returns nullopt for an empty input.
std::optional<EvenSeries> Regularize(const RawSeries& raw,
                                     CleanStats* stats = nullptr);

/// Trims an even series so it starts and ends at midnight UTC boundaries
/// (paper: "ties phase to physical time" and reduces FFT noise).
/// `epoch_sec` is the UTC time of round 0; rounds are kRoundSeconds long.
/// Returns nullopt when less than one full day survives trimming.
std::optional<EvenSeries> TrimToMidnightUtc(const EvenSeries& series,
                                            std::int64_t epoch_sec,
                                            std::int64_t round_seconds =
                                                kRoundSeconds);

/// Number of whole observation days in a trimmed series.
int WholeDays(std::size_t samples, std::int64_t round_seconds =
                                       kRoundSeconds) noexcept;

}  // namespace sleepwalk::ts

#endif  // SLEEPWALK_TS_CLEAN_H_
