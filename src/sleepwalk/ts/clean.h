// Data cleaning for spectral analysis (paper §2.2 "Data cleaning").
//
// "We correct these by extrapolating single missing estimates, and
//  trusting most recent observation when duplicates occur. We trim our
//  timeseries to start and end near midnight UTC."
#ifndef SLEEPWALK_TS_CLEAN_H_
#define SLEEPWALK_TS_CLEAN_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "sleepwalk/ts/series.h"

namespace sleepwalk::ts {

/// Bookkeeping about what cleaning had to fix.
struct CleanStats {
  std::size_t duplicates_dropped = 0;
  std::size_t single_gaps_filled = 0;
  std::size_t long_gaps_filled = 0;  ///< gaps > 1 round, filled by hold.
};

/// Reusable working memory for Regularize: the per-round slot table that
/// earlier revisions rebuilt as a std::map every call (one node
/// allocation per observed round). Buffers retain capacity across calls,
/// so a worker regularizing same-length blocks allocates only once.
struct RegularizeScratch {
  std::vector<double> slot_value;     ///< latest value per grid slot
  std::vector<std::uint8_t> slot_seen;  ///< 1 when the round was observed
};

/// Regularizes raw observations onto the even round grid
/// [first_round, last_round]:
///  * duplicate rounds: the most recent observation wins;
///  * single missing rounds: filled by extrapolation from the previous
///    two values (falling back to hold-last when at the series head);
///  * longer gaps: filled by holding the last value (and counted, so
///    callers can reject blocks with too much missing data).
/// Writes into `out` (capacity reused) and returns false for an empty
/// input, in which case `out` is left empty.
bool Regularize(const RawSeries& raw, RegularizeScratch& scratch,
                EvenSeries& out, CleanStats* stats = nullptr);

/// Span form of the scratch overload: same algorithm over observations
/// that live in caller-owned storage (the columnar store's ring
/// buffers) rather than a RawSeries. The RawSeries overload delegates
/// here, so the two are bitwise identical by construction.
bool Regularize(std::span<const Observation> raw, RegularizeScratch& scratch,
                EvenSeries& out, CleanStats* stats = nullptr);

/// Allocating convenience wrapper. Returns nullopt for an empty input.
std::optional<EvenSeries> Regularize(const RawSeries& raw,
                                     CleanStats* stats = nullptr);

/// Trims an even series so it starts and ends at midnight UTC boundaries
/// (paper: "ties phase to physical time" and reduces FFT noise).
/// `epoch_sec` is the UTC time of round 0; rounds are kRoundSeconds long.
/// Writes into `out` (capacity reused; `out` must not alias `series`) and
/// returns false when less than one full day survives trimming.
bool TrimToMidnightUtc(const EvenSeries& series, std::int64_t epoch_sec,
                       std::int64_t round_seconds, EvenSeries& out);

/// Allocating convenience wrapper; nullopt when under one full day.
std::optional<EvenSeries> TrimToMidnightUtc(const EvenSeries& series,
                                            std::int64_t epoch_sec,
                                            std::int64_t round_seconds =
                                                kRoundSeconds);

/// Number of whole observation days in a trimmed series.
int WholeDays(std::size_t samples, std::int64_t round_seconds =
                                       kRoundSeconds) noexcept;

}  // namespace sleepwalk::ts

#endif  // SLEEPWALK_TS_CLEAN_H_
