#include "sleepwalk/ts/stationarity.h"

#include <cmath>
#include <numeric>
#include <vector>

#include "sleepwalk/stats/regression.h"

namespace sleepwalk::ts {

StationarityResult TestStationarity(std::span<const double> availability,
                                    int ever_active_addresses,
                                    double max_addresses_per_day,
                                    std::int64_t round_seconds,
                                    std::vector<double>& index_scratch) {
  StationarityResult result;
  if (availability.size() < 2 || round_seconds <= 0) return result;

  index_scratch.resize(availability.size());
  std::iota(index_scratch.begin(), index_scratch.end(), 0.0);
  const auto fit = stats::FitSimple(index_scratch, availability);
  result.slope_per_round = fit.slope;

  const double rounds_per_day = 86400.0 / static_cast<double>(round_seconds);
  result.addresses_per_day = std::fabs(fit.slope) * rounds_per_day *
                             static_cast<double>(ever_active_addresses);
  result.stationary = result.addresses_per_day < max_addresses_per_day;
  return result;
}

StationarityResult TestStationarity(std::span<const double> availability,
                                    int ever_active_addresses,
                                    double max_addresses_per_day,
                                    std::int64_t round_seconds) {
  std::vector<double> index;
  return TestStationarity(availability, ever_active_addresses,
                          max_addresses_per_day, round_seconds, index);
}

}  // namespace sleepwalk::ts
