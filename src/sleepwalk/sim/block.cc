#include "sleepwalk/sim/block.h"

#include <algorithm>

namespace sleepwalk::sim {

namespace {

enum class Category { kNone, kAlways, kDiurnal, kIntermittent };

Category CategoryOf(const BlockSpec& spec, std::uint8_t octet) noexcept {
  // Ever-active addresses occupy octets [1, 1 + EverActiveCount()).
  if (octet < 1) return Category::kNone;
  int index = octet - 1;
  if (index < spec.n_always) return Category::kAlways;
  index -= spec.n_always;
  if (index < spec.n_diurnal) return Category::kDiurnal;
  index -= spec.n_diurnal;
  if (index < spec.n_intermittent) return Category::kIntermittent;
  return Category::kNone;
}

bool InOutage(const BlockSpec& spec, std::int64_t when_sec) noexcept {
  return spec.outage_start_sec >= 0 && when_sec >= spec.outage_start_sec &&
         when_sec < spec.outage_end_sec;
}

DiurnalParams DiurnalParamsOf(const BlockSpec& spec,
                              std::uint8_t octet) noexcept {
  DiurnalParams params;
  params.on_start_sec = DiurnalStartOf(spec, octet);
  params.on_duration_sec = spec.on_duration_sec;
  params.sigma_start_sec = spec.sigma_start_sec;
  params.sigma_duration_sec = spec.sigma_duration_sec;
  return params;
}

}  // namespace

double DiurnalStartOf(const BlockSpec& spec, std::uint8_t octet) noexcept {
  const double offset =
      spec.phase_spread_sec > 0.0F
          ? HashUniform(MixHash(spec.seed, octet, 0x9a5eu)) *
                static_cast<double>(spec.phase_spread_sec)
          : 0.0;
  return static_cast<double>(spec.on_start_sec) + offset;
}

bool AddressIsOn(const BlockSpec& spec, std::uint8_t octet,
                 std::int64_t when_sec) noexcept {
  if (InOutage(spec, when_sec)) return false;
  switch (CategoryOf(spec, octet)) {
    case Category::kNone:
      return false;
    case Category::kAlways:
      return true;
    case Category::kDiurnal:
      return DiurnalIsOn(DiurnalParamsOf(spec, octet), when_sec,
                         MixHash(spec.seed, octet));
    case Category::kIntermittent:
      return IntermittentIsOn(spec.intermittent_duty,
                              spec.intermittent_chunk_sec, when_sec,
                              MixHash(spec.seed, octet, 0x17u));
  }
  return false;
}

bool AddressResponds(const BlockSpec& spec, std::uint8_t octet,
                     std::int64_t when_sec, Rng& rng) noexcept {
  if (!AddressIsOn(spec, octet, when_sec)) return false;
  return rng.NextBool(static_cast<double>(spec.response_prob));
}

double TrueAvailability(const BlockSpec& spec,
                        std::int64_t when_sec) noexcept {
  const int ever_active = spec.EverActiveCount();
  if (ever_active == 0 || InOutage(spec, when_sec)) return 0.0;

  double up = static_cast<double>(spec.n_always);
  const int diurnal_begin = 1 + spec.n_always;
  for (int i = 0; i < spec.n_diurnal; ++i) {
    const auto octet = static_cast<std::uint8_t>(diurnal_begin + i);
    if (DiurnalIsOn(DiurnalParamsOf(spec, octet), when_sec,
                    MixHash(spec.seed, octet))) {
      up += 1.0;
    }
  }
  const int intermittent_begin = diurnal_begin + spec.n_diurnal;
  for (int i = 0; i < spec.n_intermittent; ++i) {
    const auto octet = static_cast<std::uint8_t>(intermittent_begin + i);
    if (IntermittentIsOn(spec.intermittent_duty, spec.intermittent_chunk_sec,
                         when_sec, MixHash(spec.seed, octet, 0x17u))) {
      up += 1.0;
    }
  }
  return up * static_cast<double>(spec.response_prob) /
         static_cast<double>(ever_active);
}

std::vector<std::uint8_t> EverActiveOctets(const BlockSpec& spec) {
  const int count = spec.EverActiveCount();
  std::vector<std::uint8_t> octets;
  octets.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    octets.push_back(static_cast<std::uint8_t>(1 + i));
  }
  return octets;
}

void SimTransport::AddBlock(const BlockSpec* spec) {
  blocks_.insert_or_assign(spec->block.Index(), spec);
}

net::ProbeStatus SimTransport::Probe(net::Ipv4Addr target,
                                     std::int64_t when_sec) {
  ++probes_sent_;
  const auto it = blocks_.find(net::Prefix24{target}.Index());
  if (it == blocks_.end()) return net::ProbeStatus::kUnreachable;
  if (when_sec != current_when_) {
    current_when_ = when_sec;
    attempt_counts_.clear();
  }
  const std::uint32_t attempt = attempt_counts_[target.value()]++;
  // Keyed stream, not a sequenced one: the draw for (target, when,
  // attempt) is identical whatever was probed before it.
  Rng stream = Rng::ForStream(
      site_seed_, (static_cast<std::uint64_t>(target.value()) << 16) | attempt,
      static_cast<std::uint64_t>(when_sec));
  const auto octet = target.Octets()[3];
  return AddressResponds(*it->second, octet, when_sec, stream)
             ? net::ProbeStatus::kEchoReply
             : net::ProbeStatus::kTimeout;
}

void SimTransport::SaveState(std::vector<std::uint8_t>& out) const {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&probes_sent_);
  out.insert(out.end(), p, p + sizeof(probes_sent_));
}

bool SimTransport::RestoreState(std::span<const std::uint8_t> in) {
  if (in.size() != sizeof(probes_sent_)) return false;
  std::copy_n(in.data(), sizeof(probes_sent_),
              reinterpret_cast<std::uint8_t*>(&probes_sent_));
  current_when_ = -1;
  attempt_counts_.clear();
  return true;
}

}  // namespace sleepwalk::sim
