#include "sleepwalk/sim/block.h"

#include <algorithm>

namespace sleepwalk::sim {

namespace {

enum class Category { kNone, kAlways, kDiurnal, kIntermittent };

Category CategoryOf(const BlockSpec& spec, std::uint8_t octet) noexcept {
  // Ever-active addresses occupy octets [1, 1 + EverActiveCount()).
  if (octet < 1) return Category::kNone;
  int index = octet - 1;
  if (index < spec.n_always) return Category::kAlways;
  index -= spec.n_always;
  if (index < spec.n_diurnal) return Category::kDiurnal;
  index -= spec.n_diurnal;
  if (index < spec.n_intermittent) return Category::kIntermittent;
  return Category::kNone;
}

bool InOutage(const BlockSpec& spec, std::int64_t when_sec) noexcept {
  return spec.outage_start_sec >= 0 && when_sec >= spec.outage_start_sec &&
         when_sec < spec.outage_end_sec;
}

DiurnalParams DiurnalParamsOf(const BlockSpec& spec,
                              std::uint8_t octet) noexcept {
  DiurnalParams params;
  params.on_start_sec = DiurnalStartOf(spec, octet);
  params.on_duration_sec = spec.on_duration_sec;
  params.sigma_start_sec = spec.sigma_start_sec;
  params.sigma_duration_sec = spec.sigma_duration_sec;
  return params;
}

}  // namespace

double DiurnalStartOf(const BlockSpec& spec, std::uint8_t octet) noexcept {
  const double offset =
      spec.phase_spread_sec > 0.0F
          ? HashUniform(MixHash(spec.seed, octet, 0x9a5eu)) *
                static_cast<double>(spec.phase_spread_sec)
          : 0.0;
  return static_cast<double>(spec.on_start_sec) + offset;
}

bool AddressIsOn(const BlockSpec& spec, std::uint8_t octet,
                 std::int64_t when_sec) noexcept {
  if (InOutage(spec, when_sec)) return false;
  switch (CategoryOf(spec, octet)) {
    case Category::kNone:
      return false;
    case Category::kAlways:
      return true;
    case Category::kDiurnal:
      return DiurnalIsOn(DiurnalParamsOf(spec, octet), when_sec,
                         MixHash(spec.seed, octet));
    case Category::kIntermittent:
      return IntermittentIsOn(spec.intermittent_duty,
                              spec.intermittent_chunk_sec, when_sec,
                              MixHash(spec.seed, octet, 0x17u));
  }
  return false;
}

bool AddressResponds(const BlockSpec& spec, std::uint8_t octet,
                     std::int64_t when_sec, Rng& rng) noexcept {
  if (!AddressIsOn(spec, octet, when_sec)) return false;
  return rng.NextBool(static_cast<double>(spec.response_prob));
}

double TrueAvailability(const BlockSpec& spec,
                        std::int64_t when_sec) noexcept {
  const int ever_active = spec.EverActiveCount();
  if (ever_active == 0 || InOutage(spec, when_sec)) return 0.0;

  double up = static_cast<double>(spec.n_always);
  const int diurnal_begin = 1 + spec.n_always;
  for (int i = 0; i < spec.n_diurnal; ++i) {
    const auto octet = static_cast<std::uint8_t>(diurnal_begin + i);
    if (DiurnalIsOn(DiurnalParamsOf(spec, octet), when_sec,
                    MixHash(spec.seed, octet))) {
      up += 1.0;
    }
  }
  const int intermittent_begin = diurnal_begin + spec.n_diurnal;
  for (int i = 0; i < spec.n_intermittent; ++i) {
    const auto octet = static_cast<std::uint8_t>(intermittent_begin + i);
    if (IntermittentIsOn(spec.intermittent_duty, spec.intermittent_chunk_sec,
                         when_sec, MixHash(spec.seed, octet, 0x17u))) {
      up += 1.0;
    }
  }
  return up * static_cast<double>(spec.response_prob) /
         static_cast<double>(ever_active);
}

std::vector<std::uint8_t> EverActiveOctets(const BlockSpec& spec) {
  const int count = spec.EverActiveCount();
  std::vector<std::uint8_t> octets;
  octets.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    octets.push_back(static_cast<std::uint8_t>(1 + i));
  }
  return octets;
}

void SimTransport::AddBlock(const BlockSpec* spec) {
  blocks_.insert_or_assign(spec->block.Index(), spec);
}

net::ProbeStatus SimTransport::Probe(net::Ipv4Addr target,
                                     std::int64_t when_sec) {
  ++probes_sent_;
  const auto it = blocks_.find(net::Prefix24{target}.Index());
  if (it == blocks_.end()) return net::ProbeStatus::kUnreachable;
  const auto octet = target.Octets()[3];
  return AddressResponds(*it->second, octet, when_sec, rng_)
             ? net::ProbeStatus::kEchoReply
             : net::ProbeStatus::kTimeout;
}

void SimTransport::SaveState(std::vector<std::uint8_t>& out) const {
  const auto rng = rng_.SaveState();
  const auto append = [&out](const void* data, std::size_t bytes) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    out.insert(out.end(), p, p + bytes);
  };
  for (const auto word : rng.words) append(&word, sizeof(word));
  const std::uint8_t have_spare = rng.have_spare ? 1 : 0;
  append(&have_spare, sizeof(have_spare));
  append(&rng.spare, sizeof(rng.spare));
  append(&probes_sent_, sizeof(probes_sent_));
}

bool SimTransport::RestoreState(std::span<const std::uint8_t> in) {
  Rng::State rng;
  std::size_t offset = 0;
  const auto take = [&in, &offset](void* data, std::size_t bytes) {
    if (offset + bytes > in.size()) return false;
    std::copy_n(in.data() + offset, bytes, static_cast<std::uint8_t*>(data));
    offset += bytes;
    return true;
  };
  for (auto& word : rng.words) {
    if (!take(&word, sizeof(word))) return false;
  }
  std::uint8_t have_spare = 0;
  if (!take(&have_spare, sizeof(have_spare)) ||
      !take(&rng.spare, sizeof(rng.spare)) ||
      !take(&probes_sent_, sizeof(probes_sent_))) {
    return false;
  }
  rng.have_spare = have_spare != 0;
  rng_.RestoreState(rng);
  return offset == in.size();
}

}  // namespace sleepwalk::sim
