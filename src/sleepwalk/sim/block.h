// Compact /24 block model and the simulated probing transport.
//
// A BlockSpec describes a whole /24 in ~100 bytes: how many addresses are
// always-on, diurnal, or intermittent, and the shared behaviour
// parameters. Per-address variation (diurnal phase within the block,
// day-to-day jitter) is derived by hashing, so worlds of hundreds of
// thousands of blocks stay cheap and every observer site sees the same
// underlying truth.
//
// Address layout within the block: octets [1, 1+n_always) are always-on,
// then n_diurnal diurnal, then n_intermittent intermittent; everything
// else (including .0 and .255) never responds.
#ifndef SLEEPWALK_SIM_BLOCK_H_
#define SLEEPWALK_SIM_BLOCK_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sleepwalk/net/ipv4.h"
#include "sleepwalk/net/transport.h"
#include "sleepwalk/sim/behavior.h"
#include "sleepwalk/util/rng.h"

namespace sleepwalk::sim {

/// Full description of one simulated /24.
struct BlockSpec {
  net::Prefix24 block;
  std::uint64_t seed = 0;  ///< per-block noise key

  std::uint8_t n_always = 0;
  std::uint8_t n_diurnal = 0;
  std::uint8_t n_intermittent = 0;

  /// Response probability of an up address to a single probe.
  float response_prob = 0.95F;

  // Diurnal behaviour (shared by the block's diurnal addresses).
  float on_start_sec = 8.0F * 3600.0F;   ///< earliest daily start, UTC.
  float phase_spread_sec = 0.0F;         ///< Phi: per-address uniform shift.
  float on_duration_sec = 8.0F * 3600.0F;
  float sigma_start_sec = 0.0F;          ///< per-day start jitter.
  float sigma_duration_sec = 0.0F;       ///< per-day duration jitter.

  // Intermittent behaviour.
  float intermittent_duty = 0.5F;
  std::int32_t intermittent_chunk_sec = 7200;

  // Optional block-wide outage window [start, end) in seconds; -1 = none.
  std::int64_t outage_start_sec = -1;
  std::int64_t outage_end_sec = -1;

  /// Number of ever-active addresses |E(b)|.
  int EverActiveCount() const noexcept {
    return n_always + n_diurnal + n_intermittent;
  }
};

/// Deterministic on/off state of one address (before response loss).
bool AddressIsOn(const BlockSpec& spec, std::uint8_t octet,
                 std::int64_t when_sec) noexcept;

/// Stochastic probe outcome for one address (on-state AND response draw).
bool AddressResponds(const BlockSpec& spec, std::uint8_t octet,
                     std::int64_t when_sec, Rng& rng) noexcept;

/// Ground truth availability A(t): the expected fraction of ever-active
/// addresses that would answer a probe at `when_sec` (paper §2.1: "the
/// fraction of addresses that respond when all are probed", restricted
/// to E(b) as Trinocular's denominator is).
double TrueAvailability(const BlockSpec& spec, std::int64_t when_sec) noexcept;

/// Last-octets of the ever-active set E(b), in address order.
std::vector<std::uint8_t> EverActiveOctets(const BlockSpec& spec);

/// The diurnal window start (seconds within the UTC day) of one diurnal
/// address, including its hashed phase offset — exposed for tests.
double DiurnalStartOf(const BlockSpec& spec, std::uint8_t octet) noexcept;

/// net::Transport over a set of BlockSpecs. Each site gets its own
/// SimTransport (own RNG seed): response-loss draws are independent
/// across sites while the underlying world state is shared.
///
/// Response-loss randomness is *stateless*: each probe draws from the
/// keyed stream (site_seed, target, when, attempt) via Rng::ForStream,
/// where `attempt` counts repeated probes of the same address at the
/// same instant (retried rounds re-draw, as a real network would). No
/// draw depends on probe order, so two transports with the same site
/// seed agree probe-for-probe even when different workers probe
/// different subsets of blocks — the property the parallel executor's
/// N-thread == 1-thread byte-identity rests on. The only mutable state
/// is the probes_sent accounting; checkpoints persist just that.
class SimTransport final : public net::StatefulTransport {
 public:
  explicit SimTransport(std::uint64_t site_seed) : site_seed_(site_seed) {}

  /// Registers a block. The spec must outlive the transport.
  void AddBlock(const BlockSpec* spec);

  net::ProbeStatus Probe(net::Ipv4Addr target, std::int64_t when_sec) override;

  void SaveState(std::vector<std::uint8_t>& out) const override;
  bool RestoreState(std::span<const std::uint8_t> in) override;

  std::uint64_t probes_sent() const noexcept { return probes_sent_; }

 private:
  std::unordered_map<std::uint32_t, const BlockSpec*> blocks_;
  std::uint64_t site_seed_;
  std::uint64_t probes_sent_ = 0;

  // Per-instant attempt transients (same idiom as FaultyTransport):
  // reset whenever the probed instant changes, so they are derived
  // cache, not state a checkpoint must carry — a campaign resumed at a
  // round boundary starts the instant with fresh counters exactly as an
  // uninterrupted run did.
  std::int64_t current_when_ = -1;
  std::unordered_map<std::uint32_t, std::uint32_t> attempt_counts_;
};

}  // namespace sleepwalk::sim

#endif  // SLEEPWALK_SIM_BLOCK_H_
