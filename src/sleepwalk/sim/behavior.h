// Per-address behaviour models for the simulated Internet.
//
// Address state must be a *pure function of time* (plus a noise key):
// multiple observer sites and the ground-truth survey all evaluate the
// same world independently, so no mutable per-address state is kept.
// Day-to-day variation comes from hashing (block, address, day) into
// uniform/Gaussian deviates.
#ifndef SLEEPWALK_SIM_BEHAVIOR_H_
#define SLEEPWALK_SIM_BEHAVIOR_H_

#include <cstdint>

namespace sleepwalk::sim {

/// Seconds per day.
inline constexpr std::int64_t kDaySeconds = 86400;

/// Uniform [0,1) deviate from a hash key.
double HashUniform(std::uint64_t key) noexcept;

/// Standard normal deviate from a hash key (Box-Muller over two hashed
/// uniforms).
double HashGaussian(std::uint64_t key) noexcept;

/// Parameters of one diurnal address: up for `on_duration_sec` starting
/// at `on_start_sec` within each UTC day, with per-day Gaussian jitter on
/// start (sigma_start_sec) and duration (sigma_duration_sec) — exactly
/// the paper's §3.2.2 controlled model (phi, sigma_s, sigma_d).
struct DiurnalParams {
  double on_start_sec = 8.0 * 3600.0;
  double on_duration_sec = 8.0 * 3600.0;
  double sigma_start_sec = 0.0;
  double sigma_duration_sec = 0.0;
};

/// True when a diurnal address is up at `when_sec`. `noise_key`
/// identifies the address; jitter is drawn once per (address, day).
/// Windows may cross midnight; both the current and previous day's
/// windows are checked.
bool DiurnalIsOn(const DiurnalParams& params, std::int64_t when_sec,
                 std::uint64_t noise_key) noexcept;

/// Intermittent (always-erratic) address: time is cut into
/// `chunk_sec`-long chunks and the address is up in a chunk with
/// probability `duty`, independently per chunk. Produces the dense
/// low-availability pattern of the paper's Figure 2 without any 24-hour
/// periodicity.
bool IntermittentIsOn(double duty, std::int64_t chunk_sec,
                      std::int64_t when_sec,
                      std::uint64_t noise_key) noexcept;

}  // namespace sleepwalk::sim

#endif  // SLEEPWALK_SIM_BEHAVIOR_H_
