#include "sleepwalk/sim/survey.h"

namespace sleepwalk::sim {

std::vector<double> TrueAvailabilitySeries(
    const BlockSpec& spec, const probing::RoundScheduler& scheduler,
    std::int64_t n_rounds) {
  std::vector<double> series;
  series.reserve(static_cast<std::size_t>(n_rounds));
  for (std::int64_t round = 0; round < n_rounds; ++round) {
    series.push_back(TrueAvailability(spec, scheduler.TimeOf(round)));
  }
  return series;
}

SurveyData RunSurvey(const BlockSpec& spec,
                     const probing::RoundScheduler& scheduler,
                     std::int64_t n_rounds, std::uint64_t seed,
                     bool keep_bitmaps) {
  SurveyData data;
  data.availability.reserve(static_cast<std::size_t>(n_rounds));
  Rng rng{seed};
  const auto octets = EverActiveOctets(spec);
  for (std::int64_t round = 0; round < n_rounds; ++round) {
    const std::int64_t when = scheduler.TimeOf(round);
    int responding = 0;
    RoundBitmap bitmap;
    if (keep_bitmaps) bitmap.assign(net::kBlockSize, false);
    for (const auto octet : octets) {
      const bool responds = AddressResponds(spec, octet, when, rng);
      if (responds) {
        ++responding;
        if (keep_bitmaps) bitmap[octet] = true;
      }
    }
    data.availability.push_back(
        octets.empty() ? 0.0
                       : static_cast<double>(responding) /
                             static_cast<double>(octets.size()));
    if (keep_bitmaps) data.bitmaps.push_back(std::move(bitmap));
  }
  return data;
}

}  // namespace sleepwalk::sim
