// The simulated Internet: a country-weighted population of /24 blocks
// with realistic behaviour mixes, addressing, ASNs, and reverse names.
//
// This is the data-gate substitute for the paper's A_12w / S_51w
// collections (DESIGN.md §2): the generator encodes plausible ground
// truth (who is diurnal, where, on what technology), and the measurement
// pipeline must rediscover it from probe responses alone.
#ifndef SLEEPWALK_SIM_WORLD_H_
#define SLEEPWALK_SIM_WORLD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sleepwalk/asn/asmap.h"
#include "sleepwalk/geo/geodb.h"
#include "sleepwalk/net/ipv4.h"
#include "sleepwalk/rdns/names.h"
#include "sleepwalk/sim/block.h"
#include "sleepwalk/world/economics.h"

namespace sleepwalk::sim {

/// Knobs of world generation.
struct WorldConfig {
  int total_blocks = 20000;
  std::uint64_t seed = 42;
  /// Floor on blocks per country. The real Internet gives Armenia 1,075
  /// blocks and the US 672,104; at laptop scale a proportional share
  /// would leave small countries with a statistically useless handful,
  /// so country-level benches raise this floor.
  int min_blocks_per_country = 1;
  /// Fraction of blocks too sparse to probe (|E(b)| < 15); Trinocular
  /// policy drops these (§3.2.4), making measured diurnal fractions a
  /// lower bound.
  double sparse_fraction = 0.05;
  /// Fraction of blocks experiencing one outage during the campaign.
  double outage_fraction = 0.02;
  /// Campaign length, used to place outages.
  int duration_days = 35;
  /// Global multiplier on every country's diurnal propensity; Fig 11's
  /// long-term trend bench sweeps this per era.
  double diurnal_scale = 1.0;
};

/// One generated block with its ground-truth metadata.
struct WorldBlock {
  BlockSpec spec;
  const world::Country* country = nullptr;
  double latitude = 0.0;   ///< true location
  double longitude = 0.0;
  rdns::AccessTech tech = rdns::AccessTech::kUnnamed;
  std::uint32_t asn = 0;
  bool truly_diurnal = false;  ///< generator intent (strict-diurnal usage)
};

/// A generated world. Keep it alive for as long as any transport or
/// lookup built from it is in use.
class SimWorld {
 public:
  static SimWorld Generate(const WorldConfig& config);

  const std::vector<WorldBlock>& blocks() const noexcept { return blocks_; }
  const WorldConfig& config() const noexcept { return config_; }

  const WorldBlock* Find(net::Prefix24 block) const noexcept;

  /// A probing transport for one observer site. Independent sites use
  /// different seeds: response-loss randomness differs, world truth does
  /// not (§3.3 multi-site stability).
  std::unique_ptr<SimTransport> MakeTransport(std::uint64_t site_seed) const;

  /// True block locations, input for geo::GeoDatabase::FromTruth.
  std::vector<geo::TrueLocation> TrueLocations() const;

  /// Team-Cymru-style IP→ASN map (99.4% coverage as in §2.3.2).
  asn::IpToAsnMap BuildAsnMap() const;

  /// The AS registry (all generated ASes with names and countries).
  const std::vector<asn::AsInfo>& as_registry() const noexcept {
    return as_registry_;
  }

  /// Deterministically synthesizes the block's 256 reverse names.
  std::vector<std::string> NamesFor(const WorldBlock& block) const;

 private:
  WorldConfig config_;
  std::vector<WorldBlock> blocks_;
  std::unordered_map<std::uint32_t, std::size_t> index_;
  std::vector<asn::AsInfo> as_registry_;
  std::unordered_map<std::uint32_t, std::string> asn_domain_;
};

}  // namespace sleepwalk::sim

#endif  // SLEEPWALK_SIM_WORLD_H_
