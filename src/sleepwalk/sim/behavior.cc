#include "sleepwalk/sim/behavior.h"

#include <cmath>
#include <numbers>

#include "sleepwalk/util/rng.h"

namespace sleepwalk::sim {

double HashUniform(std::uint64_t key) noexcept {
  std::uint64_t state = key;
  return static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53;
}

double HashGaussian(std::uint64_t key) noexcept {
  // Box-Muller over two hashed uniforms; keep u1 away from 0.
  const double u1 = HashUniform(MixHash(key, 0x9e37u)) + 1e-12;
  const double u2 = HashUniform(MixHash(key, 0x79b9u));
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

namespace {

// Is `when_sec` inside day `day`'s jittered up-window?
bool InWindowOfDay(const DiurnalParams& params, std::int64_t when_sec,
                   std::int64_t day, std::uint64_t noise_key) noexcept {
  const auto day_key = MixHash(noise_key, static_cast<std::uint64_t>(day));
  const double start_jitter =
      params.sigma_start_sec > 0.0
          ? params.sigma_start_sec * HashGaussian(MixHash(day_key, 1))
          : 0.0;
  const double duration_jitter =
      params.sigma_duration_sec > 0.0
          ? params.sigma_duration_sec * HashGaussian(MixHash(day_key, 2))
          : 0.0;
  const double start = static_cast<double>(day * kDaySeconds) +
                       params.on_start_sec + start_jitter;
  const double duration =
      std::max(params.on_duration_sec + duration_jitter, 0.0);
  const auto t = static_cast<double>(when_sec);
  return t >= start && t < start + duration;
}

}  // namespace

bool DiurnalIsOn(const DiurnalParams& params, std::int64_t when_sec,
                 std::uint64_t noise_key) noexcept {
  // Floor-division day index (robust to negative times).
  std::int64_t day = when_sec / kDaySeconds;
  if (when_sec < 0 && when_sec % kDaySeconds != 0) --day;
  return InWindowOfDay(params, when_sec, day, noise_key) ||
         InWindowOfDay(params, when_sec, day - 1, noise_key);
}

bool IntermittentIsOn(double duty, std::int64_t chunk_sec,
                      std::int64_t when_sec,
                      std::uint64_t noise_key) noexcept {
  if (chunk_sec <= 0) return false;
  std::int64_t chunk = when_sec / chunk_sec;
  if (when_sec < 0 && when_sec % chunk_sec != 0) --chunk;
  return HashUniform(MixHash(noise_key, static_cast<std::uint64_t>(chunk),
                             0xc4a1u)) < duty;
}

}  // namespace sleepwalk::sim
