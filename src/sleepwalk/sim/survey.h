// Internet-survey ground truth (paper §2.5: "probes to every address in
// about 2% of IPv4 /24 blocks, taken every 11 minutes for 2 weeks").
//
// A survey probes *all* addresses of a block each round, so its per-round
// availability is the ground truth A that validates the sparse Trinocular
// estimates (§3.1). Both the exact expectation and a sampled (actually-
// probed) variant are provided.
#ifndef SLEEPWALK_SIM_SURVEY_H_
#define SLEEPWALK_SIM_SURVEY_H_

#include <cstdint>
#include <vector>

#include "sleepwalk/probing/scheduler.h"
#include "sleepwalk/sim/block.h"

namespace sleepwalk::sim {

/// Full response bitmap of one survey round (index = last octet).
using RoundBitmap = std::vector<bool>;

/// A completed survey of one block.
struct SurveyData {
  std::vector<double> availability;  ///< A per round, over E(b).
  std::vector<RoundBitmap> bitmaps;  ///< per-round responses (optional).
};

/// Exact expected availability per round: deterministic, cheap, used as
/// the black "true A" line in Figs 1-3 and the §3.1.2 comparison.
std::vector<double> TrueAvailabilitySeries(
    const BlockSpec& spec, const probing::RoundScheduler& scheduler,
    std::int64_t n_rounds);

/// Survey by actually probing every address of E(b) each round through a
/// per-survey RNG. `keep_bitmaps` additionally retains raw per-address
/// responses (the top strip of Figs 1-3).
SurveyData RunSurvey(const BlockSpec& spec,
                     const probing::RoundScheduler& scheduler,
                     std::int64_t n_rounds, std::uint64_t seed,
                     bool keep_bitmaps = false);

}  // namespace sleepwalk::sim

#endif  // SLEEPWALK_SIM_SURVEY_H_
