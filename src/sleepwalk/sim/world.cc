#include "sleepwalk/sim/world.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <string_view>

#include "sleepwalk/geo/region.h"
#include "sleepwalk/world/iana.h"

namespace sleepwalk::sim {

namespace {

using rdns::AccessTech;

constexpr std::array<AccessTech, 11> kTechs = {
    AccessTech::kStatic,      AccessTech::kDynamic, AccessTech::kServer,
    AccessTech::kDhcp,        AccessTech::kPpp,     AccessTech::kDsl,
    AccessTech::kDialup,      AccessTech::kCable,   AccessTech::kResidential,
    AccessTech::kWireless,    AccessTech::kUnnamed,
};

// Technology mixes for fully-developed and developing deployments; a
// country's mix interpolates by its wealth index.
constexpr std::array<double, 11> kRichMix = {
    0.22, 0.04, 0.08, 0.08, 0.01, 0.18, 0.01, 0.16, 0.06, 0.003, 0.157};
constexpr std::array<double, 11> kPoorMix = {
    0.05, 0.22, 0.03, 0.10, 0.07, 0.16, 0.04, 0.04, 0.02, 0.003, 0.207};

// Relative diurnal propensity by technology (dynamic pools and PPP are
// reassigned nightly; servers and static space essentially never sleep).
// Shapes follow the paper's Fig 17 findings: dynamic ~19%, dsl ~11%,
// dialup < 3%.
constexpr std::array<double, 11> kTechDiurnalFactor = {
    0.35, 2.0, 0.05, 1.35, 1.8, 1.15, 0.25, 0.6, 1.0, 1.5, 0.95};

// Diurnal propensity multiplier by /8 allocation date: newer allocations
// are denser and more dynamic (paper §5.3: +0.08%/month trend).
double AllocFactor(int month_index) noexcept {
  if (month_index < 0) return 1.0;
  // 1983-01 -> 0.55, 2011-12 (month 347) -> ~1.6.
  return 0.55 + 3.0e-3 * static_cast<double>(month_index);
}

double WealthIndex(const world::Country& country) noexcept {
  return std::clamp((country.gdp_per_capita_usd - 3000.0) / 47000.0, 0.0,
                    1.0);
}

std::array<double, 11> MixFor(const world::Country& country) noexcept {
  const double w = WealthIndex(country);
  std::array<double, 11> mix{};
  for (std::size_t i = 0; i < mix.size(); ++i) {
    mix[i] = w * kRichMix[i] + (1.0 - w) * kPoorMix[i];
  }
  return mix;
}

std::size_t SampleIndex(const std::array<double, 11>& weights, Rng& rng) {
  double total = 0.0;
  for (const double w : weights) total += w;
  double pick = rng.NextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    pick -= weights[i];
    if (pick <= 0.0) return i;
  }
  return weights.size() - 1;
}

// /8 pools per registry, from the embedded IANA table.
std::vector<std::uint8_t> PoolFor(world::Registry registry) {
  std::vector<std::uint8_t> pool;
  for (int s = 1; s < 224; ++s) {
    const auto allocation =
        world::AllocationFor(static_cast<std::uint8_t>(s));
    if (allocation && allocation->registry == registry) {
      pool.push_back(static_cast<std::uint8_t>(s));
    }
  }
  return pool;
}

// Geographic spread of a country's blocks, growing with its block count
// as a crude size proxy.
double SpreadDegrees(const world::Country& country) noexcept {
  const double magnitude =
      std::log10(std::max(country.block_count, 100) / 100.0);
  return std::clamp(1.0 + 2.2 * magnitude, 1.0, 11.0);
}

struct IspSet {
  std::vector<std::uint32_t> asns;   // one or more ASNs per ISP
  std::vector<double> weights;       // zipf-ish popularity
};

}  // namespace

SimWorld SimWorld::Generate(const WorldConfig& config) {
  SimWorld world;
  world.config_ = config;
  Rng rng{config.seed};

  const auto countries = world::Countries();
  const double total_weight =
      static_cast<double>(world::TotalBlockWeight());

  // Per-registry /8 pools and sequential sub-block allocators.
  std::unordered_map<int, std::vector<std::uint8_t>> registry_pools;
  std::unordered_map<std::uint8_t, std::uint32_t> next_sub;

  std::uint32_t next_asn = 64500;
  const std::int64_t duration_sec =
      static_cast<std::int64_t>(config.duration_days) * kDaySeconds;

  for (const auto& country : countries) {
    const int n_blocks = std::max(
        std::max(1, config.min_blocks_per_country),
        static_cast<int>(std::lround(static_cast<double>(
            config.total_blocks) *
            static_cast<double>(country.block_count) / total_weight)));

    // Registry /8 pool for this country's region.
    const auto registry =
        world::RegistryForRegionName(world::RegionName(country.region));
    auto& pool = registry_pools[static_cast<int>(registry)];
    if (pool.empty()) pool = PoolFor(registry);

    // ISPs: names feed the org clusterer; domains feed rDNS synthesis.
    // Domains avoid the 16 link keywords so names only carry the
    // technology tokens the synthesizer injects deliberately.
    IspSet isps;
    const int n_isps =
        std::clamp(1 + country.block_count / 40000, 1, 6);
    for (int i = 0; i < n_isps; ++i) {
      static constexpr std::array<std::string_view, 6> kStyles = {
          " TELECOM", " NET BACKBONE", " ONLINE", " COMMUNICATIONS",
          " BROADBAND GROUP", " ACADEMIC NETWORK"};
      const int n_ases = 1 + static_cast<int>(rng.NextBelow(3));
      for (int a = 0; a < n_ases; ++a) {
        asn::AsInfo info;
        info.asn = next_asn++;
        info.name = std::string{country.name} +
                    std::string{kStyles[static_cast<std::size_t>(i) %
                                        kStyles.size()]};
        if (a > 0) info.name += "-" + std::to_string(a + 1);
        info.country_code = std::string{country.code};
        world.asn_domain_.insert_or_assign(
            info.asn, "as" + std::to_string(info.asn) + ".example-" +
                          std::string{country.code} + ".net");
        world.as_registry_.push_back(std::move(info));
        isps.asns.push_back(next_asn - 1);
        isps.weights.push_back(1.0 /
                               (1.0 + static_cast<double>(isps.asns.size())));
      }
    }

    // Expected diurnal-propensity multiplier for normalization, so the
    // country's realized fraction stays near its Table 3/4 target.
    const auto mix = MixFor(country);
    double expected_tech = 0.0;
    for (std::size_t i = 0; i < mix.size(); ++i) {
      expected_tech += mix[i] * kTechDiurnalFactor[i];
    }
    double expected_alloc = 0.0;
    for (const auto s : pool) expected_alloc += AllocFactor(
        world::AllocationMonthIndex(s));
    expected_alloc /= static_cast<double>(pool.size());
    const double normalizer = expected_tech * expected_alloc;

    for (int b = 0; b < n_blocks; ++b) {
      WorldBlock wb;
      wb.country = &country;

      // Address: pick a /8 from the registry pool, take its next /24.
      std::uint8_t slash8 = pool[rng.NextBelow(pool.size())];
      for (int attempts = 0; next_sub[slash8] >= 65536 && attempts < 64;
           ++attempts) {
        slash8 = pool[rng.NextBelow(pool.size())];
      }
      const std::uint32_t sub = next_sub[slash8]++;
      wb.spec.block = net::Prefix24::FromIndex(
          (static_cast<std::uint32_t>(slash8) << 16) | sub);
      wb.spec.seed = MixHash(config.seed, wb.spec.block.Index(), 0xb10cu);

      // Location: country centroid plus spread.
      const double spread = SpreadDegrees(country);
      wb.latitude = std::clamp(
          country.latitude + rng.NextGaussian() * spread * 0.6, -85.0, 85.0);
      wb.longitude = geo::WrapLongitude(country.longitude +
                                        rng.NextGaussian() * spread);

      // Technology and ASN.
      wb.tech = kTechs[SampleIndex(mix, rng)];
      {
        std::array<double, 11> weights{};  // reuse sampler over ISP weights
        const std::size_t n =
            std::min(isps.asns.size(), weights.size());
        for (std::size_t i = 0; i < n; ++i) weights[i] = isps.weights[i];
        wb.asn = isps.asns[SampleIndex(weights, rng) % isps.asns.size()];
      }

      // Diurnal propensity: country base x technology x allocation age,
      // normalized so the country's expected fraction matches its base.
      const double tech_factor =
          kTechDiurnalFactor[static_cast<std::size_t>(
              std::find(kTechs.begin(), kTechs.end(), wb.tech) -
              kTechs.begin())];
      const double alloc_factor =
          AllocFactor(world::AllocationMonthIndex(slash8));
      const double p_diurnal = std::clamp(
          country.true_diurnal_fraction * config.diurnal_scale *
              tech_factor * alloc_factor / normalizer,
          0.0, 0.92);
      wb.truly_diurnal = rng.NextBool(p_diurnal);

      auto& spec = wb.spec;
      spec.response_prob =
          static_cast<float>(0.72 + 0.26 * rng.NextDouble());

      if (wb.truly_diurnal) {
        spec.n_always = static_cast<std::uint8_t>(3 + rng.NextBelow(28));
        spec.n_diurnal = static_cast<std::uint8_t>(30 + rng.NextBelow(130));
        // Local morning start (07:00-09:30 local time) mapped to UTC.
        const double local_start_h = 7.0 + 2.5 * rng.NextDouble();
        double utc_start_h =
            std::fmod(local_start_h - country.tz_offset_hours + 48.0, 24.0);
        spec.on_start_sec = static_cast<float>(utc_start_h * 3600.0);
        spec.on_duration_sec = static_cast<float>(
            std::clamp(9.0 + 1.5 * rng.NextGaussian(), 5.0, 14.0) * 3600.0);
        spec.phase_spread_sec =
            static_cast<float>((0.5 + 3.5 * rng.NextDouble()) * 3600.0);
        spec.sigma_start_sec =
            static_cast<float>((0.3 + 0.9 * rng.NextDouble()) * 3600.0);
        spec.sigma_duration_sec =
            static_cast<float>((0.3 + 1.7 * rng.NextDouble()) * 3600.0);
      } else if (rng.NextBool(config.sparse_fraction)) {
        // Too sparse to probe: Trinocular drops |E(b)| < 15 (§3.2.4).
        spec.n_always = static_cast<std::uint8_t>(2 + rng.NextBelow(11));
      } else if (rng.NextBool(0.12)) {
        // Dense but erratic, the paper's Figure 2 shape.
        spec.n_always = static_cast<std::uint8_t>(2 + rng.NextBelow(9));
        spec.n_intermittent =
            static_cast<std::uint8_t>(80 + rng.NextBelow(165));
        spec.intermittent_duty =
            static_cast<float>(0.1 + 0.3 * rng.NextDouble());
      } else {
        // Always-on block, possibly with a small dynamic pocket (the
        // paper's USC "surprise": pockets of dynamic addresses inside
        // general-use blocks).
        spec.n_always = static_cast<std::uint8_t>(16 + rng.NextBelow(190));
        if (rng.NextBool(0.15)) {
          spec.n_diurnal = static_cast<std::uint8_t>(rng.NextBelow(9));
          spec.on_duration_sec = 9.0F * 3600.0F;
          spec.phase_spread_sec = 2.0F * 3600.0F;
        }
      }

      // Outage injection.
      if (rng.NextBool(config.outage_fraction)) {
        const auto start = static_cast<std::int64_t>(
            rng.NextDouble() * 0.8 * static_cast<double>(duration_sec));
        const std::int64_t length =
            660 * (1 + static_cast<std::int64_t>(rng.NextBelow(36)));
        spec.outage_start_sec = start;
        spec.outage_end_sec = start + length;
      }

      world.index_.insert_or_assign(wb.spec.block.Index(),
                                    world.blocks_.size());
      world.blocks_.push_back(std::move(wb));
    }
  }
  return world;
}

const WorldBlock* SimWorld::Find(net::Prefix24 block) const noexcept {
  const auto it = index_.find(block.Index());
  if (it == index_.end()) return nullptr;
  return &blocks_[it->second];
}

std::unique_ptr<SimTransport> SimWorld::MakeTransport(
    std::uint64_t site_seed) const {
  auto transport = std::make_unique<SimTransport>(site_seed);
  for (const auto& wb : blocks_) transport->AddBlock(&wb.spec);
  return transport;
}

std::vector<geo::TrueLocation> SimWorld::TrueLocations() const {
  std::vector<geo::TrueLocation> locations;
  locations.reserve(blocks_.size());
  for (const auto& wb : blocks_) {
    locations.push_back({wb.spec.block, wb.latitude, wb.longitude,
                         std::string{wb.country->code}});
  }
  return locations;
}

asn::IpToAsnMap SimWorld::BuildAsnMap() const {
  asn::IpToAsnMap map;
  for (const auto& info : as_registry_) map.RegisterAs(info);
  for (const auto& wb : blocks_) {
    // Team Cymru covers 99.41% of blocks; drop a hashed ~0.6%.
    if (HashUniform(MixHash(wb.spec.seed, 0xa51u)) < 0.0059) continue;
    map.Assign(wb.spec.block, wb.asn);
  }
  return map;
}

std::vector<std::string> SimWorld::NamesFor(const WorldBlock& block) const {
  const auto it = asn_domain_.find(block.asn);
  const std::string_view domain =
      it != asn_domain_.end() ? std::string_view{it->second}
                              : std::string_view{"example.net"};
  Rng rng{MixHash(block.spec.seed, 0xd5u)};
  const double coverage =
      0.50 + 0.35 * WealthIndex(*block.country);
  return rdns::SynthesizeBlockNames(block.spec.block, block.tech, domain,
                                    coverage, rng);
}

}  // namespace sleepwalk::sim
