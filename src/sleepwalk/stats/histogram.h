// Fixed-bin 1-D and 2-D histograms for the density figures
// (Figs 4, 5, 10, 14) and CDFs.
#ifndef SLEEPWALK_STATS_HISTOGRAM_H_
#define SLEEPWALK_STATS_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace sleepwalk::stats {

/// 1-D histogram with `bins` equal-width bins over [lo, hi). Values
/// outside the range are clamped into the edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void Add(double value, std::uint64_t weight = 1) noexcept;

  std::size_t bins() const noexcept { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t total() const noexcept { return total_; }

  double BinLow(std::size_t bin) const noexcept;
  double BinCenter(std::size_t bin) const noexcept;
  double BinWidth() const noexcept { return width_; }

  /// Cumulative fraction at the *upper* edge of each bin, in [0, 1].
  std::vector<double> Cdf() const;

  /// Fraction of the total in each bin.
  std::vector<double> Density() const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// 2-D histogram over [x_lo, x_hi) x [y_lo, y_hi); the backing store for
/// the paper's density plots.
class Histogram2d {
 public:
  Histogram2d(double x_lo, double x_hi, std::size_t x_bins, double y_lo,
              double y_hi, std::size_t y_bins);

  void Add(double x, double y, std::uint64_t weight = 1) noexcept;

  std::size_t x_bins() const noexcept { return x_bins_; }
  std::size_t y_bins() const noexcept { return y_bins_; }
  std::uint64_t count(std::size_t xb, std::size_t yb) const;
  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t max_count() const noexcept { return max_count_; }

  double XCenter(std::size_t xb) const noexcept;
  double YCenter(std::size_t yb) const noexcept;

  /// All y-values recorded in x-bin `xb` expanded by weight — the per-bin
  /// sample set used for the quartile overlays in Figs 4-5 is tracked
  /// separately by callers; here we return the weighted mean instead.
  double YMeanInColumn(std::size_t xb) const;

 private:
  std::size_t IndexOf(double value, double lo, double width,
                      std::size_t bins) const noexcept;

  double x_lo_, x_width_;
  double y_lo_, y_width_;
  std::size_t x_bins_, y_bins_;
  std::vector<std::uint64_t> counts_;        // row-major [yb * x_bins + xb]
  std::vector<double> column_weighted_sum_;  // sum of y per x column
  std::vector<std::uint64_t> column_weight_;
  std::uint64_t total_ = 0;
  std::uint64_t max_count_ = 0;
};

}  // namespace sleepwalk::stats

#endif  // SLEEPWALK_STATS_HISTOGRAM_H_
