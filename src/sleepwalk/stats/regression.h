// Ordinary least squares: simple and multiple linear regression.
//
// Used for the stationarity test (§2.2 "linear fit of A"), the allocation-
// age trend (Fig 15), the GDP fit (Fig 16), and as the engine underneath
// the Type-I ANOVA (Table 5).
#ifndef SLEEPWALK_STATS_REGRESSION_H_
#define SLEEPWALK_STATS_REGRESSION_H_

#include <span>
#include <vector>

namespace sleepwalk::stats {

/// Result of a simple (one predictor) linear regression y = a + b*x.
struct SimpleFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r = 0.0;          ///< Pearson correlation of x and y.
  double r_squared = 0.0;  ///< Coefficient of determination.
  double slope_stderr = 0.0;
  std::size_t n = 0;
};

/// Fits y = a + b*x by least squares. Returns a zero fit for n < 2 or
/// constant x.
SimpleFit FitSimple(std::span<const double> x, std::span<const double> y);

/// Result of a multiple regression y = X*beta (X includes any intercept
/// column the caller provides).
struct MultipleFit {
  std::vector<double> coefficients;
  double residual_ss = 0.0;  ///< Sum of squared residuals.
  double total_ss = 0.0;     ///< Total sum of squares around the mean of y.
  std::size_t n = 0;
  std::size_t rank = 0;      ///< Number of linearly independent columns.
  bool ok = false;
};

/// Solves least squares for the column-major design matrix `columns`
/// (each inner vector one predictor column, all the same length as y).
/// Uses normal equations with partial-pivot Gaussian elimination, adequate
/// for the small factor counts used here. Rank-deficient columns get a
/// zero coefficient (pivot skipped), matching R's aliased-term handling.
MultipleFit FitMultiple(std::span<const std::vector<double>> columns,
                        std::span<const double> y);

}  // namespace sleepwalk::stats

#endif  // SLEEPWALK_STATS_REGRESSION_H_
