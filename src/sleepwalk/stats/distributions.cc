#include "sleepwalk/stats/distributions.h"

#include <cmath>
#include <limits>

namespace sleepwalk::stats {

namespace {

// Continued-fraction evaluation for the incomplete beta function
// (modified Lentz). Converges for x < (a+1)/(a+b+2).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEpsilon = 1e-15;
  constexpr double kTiny = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  if (!(a > 0.0) || !(b > 0.0) || std::isnan(x)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;

  const double log_front = std::lgamma(a + b) - std::lgamma(a) -
                           std::lgamma(b) + a * std::log(x) +
                           b * std::log1p(-x);
  const double front = std::exp(log_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  // Use the symmetry relation for better convergence in the other regime.
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double FCdf(double f, double d1, double d2) {
  if (!(d1 > 0.0) || !(d2 > 0.0)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (f <= 0.0) return 0.0;
  const double x = d1 * f / (d1 * f + d2);
  return RegularizedIncompleteBeta(d1 / 2.0, d2 / 2.0, x);
}

double FSurvival(double f, double d1, double d2) {
  if (!(d1 > 0.0) || !(d2 > 0.0)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (f <= 0.0) return 1.0;
  // Compute the upper tail directly through the symmetric beta form to
  // avoid catastrophic cancellation for large F.
  const double x = d2 / (d2 + d1 * f);
  return RegularizedIncompleteBeta(d2 / 2.0, d1 / 2.0, x);
}

double StudentTTwoSided(double t, double df) {
  if (!(df > 0.0)) return std::numeric_limits<double>::quiet_NaN();
  const double x = df / (df + t * t);
  return RegularizedIncompleteBeta(df / 2.0, 0.5, x);
}

double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

}  // namespace sleepwalk::stats
