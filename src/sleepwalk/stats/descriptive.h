// Descriptive statistics used across validation and analysis benches.
#ifndef SLEEPWALK_STATS_DESCRIPTIVE_H_
#define SLEEPWALK_STATS_DESCRIPTIVE_H_

#include <span>
#include <vector>

namespace sleepwalk::stats {

/// Arithmetic mean; 0 for empty input.
double Mean(std::span<const double> values) noexcept;

/// Unbiased sample variance (divides by n-1); 0 for n < 2.
double Variance(std::span<const double> values) noexcept;

/// Sample standard deviation.
double StdDev(std::span<const double> values) noexcept;

/// p-th quantile (p in [0,1]) with linear interpolation between order
/// statistics (type-7, the R default). NaN for empty input.
double Quantile(std::span<const double> values, double p);

/// Median (Quantile at 0.5).
double Median(std::span<const double> values);

/// Quartile summary of a sample.
struct Quartiles {
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
};

/// First/second/third quartiles. NaN-filled for empty input.
Quartiles ComputeQuartiles(std::span<const double> values);

/// Pearson correlation coefficient; 0 when either side has zero variance
/// or sizes differ/are < 2.
double PearsonCorrelation(std::span<const double> x,
                          std::span<const double> y) noexcept;

/// Spearman rank correlation (Pearson over mid-ranks; ties averaged).
/// Robust to monotone nonlinearity — the paper's rho for claims like
/// "correlations between first allocation and GDP are poor, rho < 0.27".
double SpearmanCorrelation(std::span<const double> x,
                           std::span<const double> y);

/// Mid-ranks of a sample (1-based; ties get the average of their ranks).
std::vector<double> Ranks(std::span<const double> values);

}  // namespace sleepwalk::stats

#endif  // SLEEPWALK_STATS_DESCRIPTIVE_H_
