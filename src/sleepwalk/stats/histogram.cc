#include "sleepwalk/stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sleepwalk::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument{"Histogram: need bins > 0 and hi > lo"};
  }
}

void Histogram::Add(double value, std::uint64_t weight) noexcept {
  auto bin = static_cast<std::ptrdiff_t>(std::floor((value - lo_) / width_));
  bin = std::clamp<std::ptrdiff_t>(
      bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(bin)] += weight;
  total_ += weight;
}

double Histogram::BinLow(std::size_t bin) const noexcept {
  return lo_ + static_cast<double>(bin) * width_;
}

double Histogram::BinCenter(std::size_t bin) const noexcept {
  return BinLow(bin) + width_ / 2.0;
}

std::vector<double> Histogram::Cdf() const {
  std::vector<double> cdf(counts_.size(), 0.0);
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    running += counts_[i];
    cdf[i] = total_ > 0
                 ? static_cast<double>(running) / static_cast<double>(total_)
                 : 0.0;
  }
  return cdf;
}

std::vector<double> Histogram::Density() const {
  std::vector<double> density(counts_.size(), 0.0);
  if (total_ == 0) return density;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    density[i] =
        static_cast<double>(counts_[i]) / static_cast<double>(total_);
  }
  return density;
}

Histogram2d::Histogram2d(double x_lo, double x_hi, std::size_t x_bins,
                         double y_lo, double y_hi, std::size_t y_bins)
    : x_lo_(x_lo), x_width_((x_hi - x_lo) / static_cast<double>(x_bins)),
      y_lo_(y_lo), y_width_((y_hi - y_lo) / static_cast<double>(y_bins)),
      x_bins_(x_bins), y_bins_(y_bins), counts_(x_bins * y_bins, 0),
      column_weighted_sum_(x_bins, 0.0), column_weight_(x_bins, 0) {
  if (x_bins == 0 || y_bins == 0 || !(x_hi > x_lo) || !(y_hi > y_lo)) {
    throw std::invalid_argument{"Histogram2d: invalid shape"};
  }
}

std::size_t Histogram2d::IndexOf(double value, double lo, double width,
                                 std::size_t bins) const noexcept {
  auto bin = static_cast<std::ptrdiff_t>(std::floor((value - lo) / width));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(bins) - 1);
  return static_cast<std::size_t>(bin);
}

void Histogram2d::Add(double x, double y, std::uint64_t weight) noexcept {
  const std::size_t xb = IndexOf(x, x_lo_, x_width_, x_bins_);
  const std::size_t yb = IndexOf(y, y_lo_, y_width_, y_bins_);
  auto& cell = counts_[yb * x_bins_ + xb];
  cell += weight;
  max_count_ = std::max(max_count_, cell);
  total_ += weight;
  column_weighted_sum_[xb] += y * static_cast<double>(weight);
  column_weight_[xb] += weight;
}

std::uint64_t Histogram2d::count(std::size_t xb, std::size_t yb) const {
  return counts_.at(yb * x_bins_ + xb);
}

double Histogram2d::XCenter(std::size_t xb) const noexcept {
  return x_lo_ + (static_cast<double>(xb) + 0.5) * x_width_;
}

double Histogram2d::YCenter(std::size_t yb) const noexcept {
  return y_lo_ + (static_cast<double>(yb) + 0.5) * y_width_;
}

double Histogram2d::YMeanInColumn(std::size_t xb) const {
  const auto weight = column_weight_.at(xb);
  if (weight == 0) return 0.0;
  return column_weighted_sum_[xb] / static_cast<double>(weight);
}

}  // namespace sleepwalk::stats
