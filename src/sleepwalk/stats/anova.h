// Analysis of variance (paper §2.4, Table 5).
//
// Two entry points:
//  * OneWay(): classic one-way ANOVA across categorical groups.
//  * SequentialAnova(): regression ANOVA with Type-I (sequential) sums of
//    squares, the same decomposition R's aov() reports. This is what the
//    paper uses to weigh continuous country-level factors (GDP,
//    electricity, allocation age) against the diurnal fraction.
#ifndef SLEEPWALK_STATS_ANOVA_H_
#define SLEEPWALK_STATS_ANOVA_H_

#include <span>
#include <string>
#include <vector>

namespace sleepwalk::stats {

/// One row of an ANOVA table.
struct AnovaTerm {
  std::string name;
  double sum_sq = 0.0;
  double df = 0.0;
  double mean_sq = 0.0;
  double f = 0.0;
  double p_value = 1.0;
};

/// A full ANOVA decomposition.
struct AnovaTable {
  std::vector<AnovaTerm> terms;
  double residual_ss = 0.0;
  double residual_df = 0.0;
  bool ok = false;
};

/// One-way ANOVA over `groups` (each inner vector one treatment group).
/// Requires >= 2 groups and > k total observations.
AnovaTable OneWay(std::span<const std::vector<double>> groups);

/// One named model term: one or more design-matrix columns entered
/// together (a continuous factor is one column; an interaction is the
/// elementwise product column; a categorical factor is its dummy columns).
struct ModelTerm {
  std::string name;
  std::vector<std::vector<double>> columns;
};

/// Sequential (Type-I) ANOVA: an intercept is implicit, then terms are
/// added in order; each term's sum of squares is the drop in residual SS
/// when it enters. F-tests use the full-model residual mean square.
AnovaTable SequentialAnova(std::span<const ModelTerm> terms,
                           std::span<const double> y);

/// p-value of a single continuous factor: the `x` term of y ~ x.
double SingleFactorPValue(std::span<const double> y,
                          std::span<const double> x);

/// p-value of the interaction term in y ~ x1 + x2 + x1:x2 — the paper's
/// off-diagonal "pairwise combination" entries in Table 5.
double PairInteractionPValue(std::span<const double> y,
                             std::span<const double> x1,
                             std::span<const double> x2);

}  // namespace sleepwalk::stats

#endif  // SLEEPWALK_STATS_ANOVA_H_
