#include "sleepwalk/stats/regression.h"

#include <cmath>

#include "sleepwalk/stats/descriptive.h"

namespace sleepwalk::stats {

SimpleFit FitSimple(std::span<const double> x, std::span<const double> y) {
  SimpleFit fit;
  const std::size_t n = x.size();
  if (n != y.size() || n < 2) return fit;
  fit.n = n;
  const double mx = Mean(x);
  const double my = Mean(y);
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  if (syy > 0.0) {
    fit.r = sxy / std::sqrt(sxx * syy);
    fit.r_squared = fit.r * fit.r;
  }
  if (n > 2) {
    const double residual_ss = syy - fit.slope * sxy;
    const double sigma2 =
        std::max(residual_ss, 0.0) / static_cast<double>(n - 2);
    fit.slope_stderr = std::sqrt(sigma2 / sxx);
  }
  return fit;
}

MultipleFit FitMultiple(std::span<const std::vector<double>> columns,
                        std::span<const double> y) {
  MultipleFit fit;
  const std::size_t n = y.size();
  const std::size_t k = columns.size();
  fit.n = n;
  fit.coefficients.assign(k, 0.0);
  if (n == 0 || k == 0) return fit;
  for (const auto& column : columns) {
    if (column.size() != n) return fit;
  }

  // Normal equations: (X'X) beta = X'y.
  std::vector<std::vector<double>> xtx(k, std::vector<double>(k, 0.0));
  std::vector<double> xty(k, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i; j < k; ++j) {
      double sum = 0.0;
      for (std::size_t r = 0; r < n; ++r) sum += columns[i][r] * columns[j][r];
      xtx[i][j] = sum;
      xtx[j][i] = sum;
    }
    double sum = 0.0;
    for (std::size_t r = 0; r < n; ++r) sum += columns[i][r] * y[r];
    xty[i] = sum;
  }

  // Gaussian elimination with partial pivoting; skip near-singular pivots
  // (aliased columns) by zeroing their coefficient.
  std::vector<std::size_t> order(k);
  for (std::size_t i = 0; i < k; ++i) order[i] = i;
  std::vector<bool> aliased(k, false);
  const double scale_hint = [&] {
    double max_diag = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      max_diag = std::max(max_diag, std::fabs(xtx[i][i]));
    }
    return max_diag > 0.0 ? max_diag : 1.0;
  }();
  const double pivot_tolerance = 1e-12 * scale_hint;

  for (std::size_t col = 0; col < k; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < k; ++row) {
      if (std::fabs(xtx[row][col]) > std::fabs(xtx[pivot][col])) pivot = row;
    }
    if (std::fabs(xtx[pivot][col]) <= pivot_tolerance) {
      aliased[col] = true;
      continue;
    }
    std::swap(xtx[col], xtx[pivot]);
    std::swap(xty[col], xty[pivot]);
    for (std::size_t row = col + 1; row < k; ++row) {
      const double factor = xtx[row][col] / xtx[col][col];
      if (factor == 0.0) continue;
      for (std::size_t j = col; j < k; ++j) xtx[row][j] -= factor * xtx[col][j];
      xty[row] -= factor * xty[col];
    }
  }

  for (std::size_t i = k; i-- > 0;) {
    if (aliased[i]) {
      fit.coefficients[i] = 0.0;
      continue;
    }
    double sum = xty[i];
    for (std::size_t j = i + 1; j < k; ++j) {
      sum -= xtx[i][j] * fit.coefficients[j];
    }
    fit.coefficients[i] = sum / xtx[i][i];
  }

  fit.rank = k;
  for (const bool a : aliased) {
    if (a) --fit.rank;
  }

  const double mean_y = Mean(y);
  for (std::size_t r = 0; r < n; ++r) {
    double predicted = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      predicted += fit.coefficients[i] * columns[i][r];
    }
    const double residual = y[r] - predicted;
    fit.residual_ss += residual * residual;
    const double centered = y[r] - mean_y;
    fit.total_ss += centered * centered;
  }
  fit.ok = true;
  return fit;
}

}  // namespace sleepwalk::stats
