#include "sleepwalk/stats/anova.h"

#include <cmath>
#include <limits>

#include "sleepwalk/stats/descriptive.h"
#include "sleepwalk/stats/distributions.h"
#include "sleepwalk/stats/regression.h"

namespace sleepwalk::stats {

AnovaTable OneWay(std::span<const std::vector<double>> groups) {
  AnovaTable table;
  const std::size_t k = groups.size();
  if (k < 2) return table;

  std::size_t n = 0;
  double grand_sum = 0.0;
  for (const auto& group : groups) {
    n += group.size();
    for (const double v : group) grand_sum += v;
  }
  if (n <= k) return table;
  const double grand_mean = grand_sum / static_cast<double>(n);

  double between_ss = 0.0;
  double within_ss = 0.0;
  for (const auto& group : groups) {
    if (group.empty()) continue;
    const double group_mean = Mean(group);
    const double diff = group_mean - grand_mean;
    between_ss += static_cast<double>(group.size()) * diff * diff;
    for (const double v : group) {
      const double d = v - group_mean;
      within_ss += d * d;
    }
  }

  AnovaTerm term;
  term.name = "between";
  term.sum_sq = between_ss;
  term.df = static_cast<double>(k - 1);
  term.mean_sq = between_ss / term.df;
  table.residual_ss = within_ss;
  table.residual_df = static_cast<double>(n - k);
  const double residual_ms = within_ss / table.residual_df;
  term.f = residual_ms > 0.0 ? term.mean_sq / residual_ms
                             : std::numeric_limits<double>::infinity();
  term.p_value = FSurvival(term.f, term.df, table.residual_df);
  table.terms.push_back(std::move(term));
  table.ok = true;
  return table;
}

AnovaTable SequentialAnova(std::span<const ModelTerm> terms,
                           std::span<const double> y) {
  AnovaTable table;
  const std::size_t n = y.size();
  if (n < 3 || terms.empty()) return table;

  std::vector<std::vector<double>> design;
  design.emplace_back(n, 1.0);  // intercept

  // Fit the intercept-only model: RSS = total SS around the mean.
  const double mean_y = Mean(y);
  double previous_rss = 0.0;
  for (const double v : y) {
    const double d = v - mean_y;
    previous_rss += d * d;
  }
  std::size_t previous_rank = 1;

  struct Step {
    std::string name;
    double ss;
    double df;
  };
  std::vector<Step> steps;

  MultipleFit fit;
  for (const auto& term : terms) {
    for (const auto& column : term.columns) {
      if (column.size() != n) return table;
      design.push_back(column);
    }
    fit = FitMultiple(design, y);
    if (!fit.ok) return table;
    const double term_ss = std::max(previous_rss - fit.residual_ss, 0.0);
    const auto term_df = static_cast<double>(fit.rank - previous_rank);
    steps.push_back({term.name, term_ss, term_df});
    previous_rss = fit.residual_ss;
    previous_rank = fit.rank;
  }

  table.residual_ss = fit.residual_ss;
  table.residual_df = static_cast<double>(n - fit.rank);
  if (table.residual_df <= 0.0) return table;
  const double residual_ms = table.residual_ss / table.residual_df;

  for (const auto& step : steps) {
    AnovaTerm row;
    row.name = step.name;
    row.sum_sq = step.ss;
    row.df = step.df;
    if (step.df > 0.0) {
      row.mean_sq = step.ss / step.df;
      row.f = residual_ms > 0.0
                  ? row.mean_sq / residual_ms
                  : std::numeric_limits<double>::infinity();
      row.p_value = FSurvival(row.f, row.df, table.residual_df);
    } else {
      // Aliased term: contributes nothing; report as untestable.
      row.mean_sq = 0.0;
      row.f = 0.0;
      row.p_value = 1.0;
    }
    table.terms.push_back(std::move(row));
  }
  table.ok = true;
  return table;
}

double SingleFactorPValue(std::span<const double> y,
                          std::span<const double> x) {
  std::vector<ModelTerm> terms(1);
  terms[0].name = "x";
  terms[0].columns.emplace_back(x.begin(), x.end());
  const auto table = SequentialAnova(terms, y);
  if (!table.ok || table.terms.empty()) return 1.0;
  return table.terms.front().p_value;
}

double PairInteractionPValue(std::span<const double> y,
                             std::span<const double> x1,
                             std::span<const double> x2) {
  if (x1.size() != y.size() || x2.size() != y.size()) return 1.0;
  std::vector<ModelTerm> terms(3);
  terms[0].name = "x1";
  terms[0].columns.emplace_back(x1.begin(), x1.end());
  terms[1].name = "x2";
  terms[1].columns.emplace_back(x2.begin(), x2.end());
  terms[2].name = "x1:x2";
  std::vector<double> product(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) product[i] = x1[i] * x2[i];
  terms[2].columns.push_back(std::move(product));
  const auto table = SequentialAnova(terms, y);
  if (!table.ok || table.terms.size() != 3) return 1.0;
  return table.terms.back().p_value;
}

}  // namespace sleepwalk::stats
