// Statistical distribution functions needed for hypothesis testing.
//
// The ANOVA in §2.4 needs F-distribution tail probabilities (p-values).
// These are computed from the regularized incomplete beta function, which
// we implement with Lentz's continued-fraction method — the standard
// approach (Numerical Recipes §6.4) accurate to ~1e-14 over our range.
#ifndef SLEEPWALK_STATS_DISTRIBUTIONS_H_
#define SLEEPWALK_STATS_DISTRIBUTIONS_H_

namespace sleepwalk::stats {

/// Regularized incomplete beta function I_x(a, b), for a, b > 0 and
/// x in [0, 1]. Returns NaN for invalid arguments.
double RegularizedIncompleteBeta(double a, double b, double x);

/// CDF of the F distribution with (d1, d2) degrees of freedom.
double FCdf(double f, double d1, double d2);

/// Upper-tail probability of the F distribution: the ANOVA p-value for an
/// observed statistic `f` with (d1, d2) degrees of freedom.
double FSurvival(double f, double d1, double d2);

/// Two-sided p-value of Student's t with `df` degrees of freedom.
double StudentTTwoSided(double t, double df);

/// Standard normal CDF.
double NormalCdf(double z);

}  // namespace sleepwalk::stats

#endif  // SLEEPWALK_STATS_DISTRIBUTIONS_H_
