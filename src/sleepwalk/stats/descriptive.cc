#include "sleepwalk/stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace sleepwalk::stats {

double Mean(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Variance(std::span<const double> values) noexcept {
  const std::size_t n = values.size();
  if (n < 2) return 0.0;
  const double mean = Mean(values);
  double sum_sq = 0.0;
  for (const double v : values) {
    const double d = v - mean;
    sum_sq += d * d;
  }
  return sum_sq / static_cast<double>(n - 1);
}

double StdDev(std::span<const double> values) noexcept {
  return std::sqrt(Variance(values));
}

double Quantile(std::span<const double> values, double p) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  p = std::clamp(p, 0.0, 1.0);
  const double h = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const auto hi = static_cast<std::size_t>(std::ceil(h));
  const double frac = h - std::floor(h);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double Median(std::span<const double> values) { return Quantile(values, 0.5); }

Quartiles ComputeQuartiles(std::span<const double> values) {
  Quartiles q;
  q.q1 = Quantile(values, 0.25);
  q.median = Quantile(values, 0.5);
  q.q3 = Quantile(values, 0.75);
  return q;
}

std::vector<double> Ranks(std::span<const double> values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return values[a] < values[b];
  });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Tie group [i, j]: every member gets the average rank.
    const double mid_rank = (static_cast<double>(i) +
                             static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = mid_rank;
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(std::span<const double> x,
                           std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const auto rx = Ranks(x);
  const auto ry = Ranks(y);
  return PearsonCorrelation(rx, ry);
}

double PearsonCorrelation(std::span<const double> x,
                          std::span<const double> y) noexcept {
  const std::size_t n = x.size();
  if (n != y.size() || n < 2) return 0.0;
  const double mx = Mean(x);
  const double my = Mean(y);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace sleepwalk::stats
