#include "sleepwalk/rdns/classifier.h"

#include <algorithm>
#include <bit>
#include <cctype>

namespace sleepwalk::rdns {

namespace {

constexpr std::array<std::string_view, kKeywordCount> kKeywordTexts = {
    "sta", "dyn", "srv", "rtr", "gw", "dhcp", "ppp", "dsl",
    "dial", "cable", "ded", "res", "client", "sql", "wireless", "wifi",
};

constexpr KeywordMask kDiscardedMask =
    MaskOf(LinkKeyword::kRtr) | MaskOf(LinkKeyword::kGw) |
    MaskOf(LinkKeyword::kDed) | MaskOf(LinkKeyword::kClient) |
    MaskOf(LinkKeyword::kSql) | MaskOf(LinkKeyword::kWireless) |
    MaskOf(LinkKeyword::kWifi);

std::string ToLower(std::string_view text) {
  std::string out{text};
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

}  // namespace

std::string_view KeywordText(LinkKeyword keyword) noexcept {
  return kKeywordTexts[static_cast<std::size_t>(keyword)];
}

bool IsDiscardedKeyword(LinkKeyword keyword) noexcept {
  return (kDiscardedMask & MaskOf(keyword)) != 0;
}

KeywordMask MatchAddressName(std::string_view reverse_name) noexcept {
  if (reverse_name.empty()) return 0;
  const std::string lowered = ToLower(reverse_name);
  KeywordMask mask = 0;
  for (int i = 0; i < kKeywordCount; ++i) {
    if (lowered.find(kKeywordTexts[static_cast<std::size_t>(i)]) !=
        std::string::npos) {
      mask = static_cast<KeywordMask>(mask | (1u << i));
    }
  }
  return mask;
}

BlockLinkLabel ClassifyBlock(std::span<const std::string> reverse_names,
                             const ClassifierOptions& options) {
  BlockLinkLabel result;
  for (const auto& name : reverse_names) {
    const KeywordMask mask = MatchAddressName(name);
    for (int i = 0; i < kKeywordCount; ++i) {
      if ((mask & (1u << i)) != 0) {
        ++result.counts[static_cast<std::size_t>(i)];
      }
    }
  }

  const int dominant =
      *std::max_element(result.counts.begin(), result.counts.end());
  if (dominant == 0) return result;

  // Suppress minor features: fewer than 1/15th of the dominant count.
  // Integer threshold: a feature survives when
  //   count * divisor >= dominant  (i.e. count >= dominant/divisor).
  for (int i = 0; i < kKeywordCount; ++i) {
    const auto keyword = static_cast<LinkKeyword>(i);
    const int count = result.counts[static_cast<std::size_t>(i)];
    if (count == 0) continue;
    if (count * options.suppression_divisor < dominant) continue;
    if (!options.include_discarded && IsDiscardedKeyword(keyword)) continue;
    result.label = static_cast<KeywordMask>(result.label | (1u << i));
  }
  const int surviving = std::popcount(static_cast<unsigned>(result.label));
  result.has_any = surviving > 0;
  result.multiple = surviving > 1;
  return result;
}

std::vector<LinkKeyword> KeptKeywords() {
  std::vector<LinkKeyword> kept;
  for (int i = 0; i < kKeywordCount; ++i) {
    const auto keyword = static_cast<LinkKeyword>(i);
    if (!IsDiscardedKeyword(keyword)) kept.push_back(keyword);
  }
  return kept;
}

}  // namespace sleepwalk::rdns
