#include "sleepwalk/rdns/names.h"

#include <array>
#include <cstdio>

namespace sleepwalk::rdns {

namespace {

std::string DashQuad(net::Ipv4Addr addr) {
  const auto o = addr.Octets();
  char buffer[20];
  std::snprintf(buffer, sizeof(buffer), "%u-%u-%u-%u", o[0], o[1], o[2],
                o[3]);
  return buffer;
}

std::string PickTemplate(AccessTech tech, net::Ipv4Addr addr, Rng& rng) {
  const auto quad = DashQuad(addr);
  const auto last = std::to_string(addr.Octets()[3]);
  switch (tech) {
    case AccessTech::kStatic: {
      constexpr std::array<std::string_view, 3> kPrefixes = {
          "sta-", "static-", "sta"};
      return std::string{kPrefixes[rng.NextBelow(kPrefixes.size())]} + quad;
    }
    case AccessTech::kDynamic: {
      constexpr std::array<std::string_view, 3> kPrefixes = {
          "dyn-", "dynamic-", "dyn"};
      return std::string{kPrefixes[rng.NextBelow(kPrefixes.size())]} + quad;
    }
    case AccessTech::kServer: {
      constexpr std::array<std::string_view, 3> kPrefixes = {"srv", "srv-",
                                                             "server-srv"};
      return std::string{kPrefixes[rng.NextBelow(kPrefixes.size())]} + last;
    }
    case AccessTech::kDhcp:
      return rng.NextBool(0.5) ? "dhcp-" + quad : "dhcp" + last;
    case AccessTech::kPpp:
      return rng.NextBool(0.5) ? "ppp-" + quad : "ppp" + last;
    case AccessTech::kDsl: {
      constexpr std::array<std::string_view, 3> kPrefixes = {"dsl-", "adsl-",
                                                             "dsl-pool-"};
      return std::string{kPrefixes[rng.NextBelow(kPrefixes.size())]} + quad;
    }
    case AccessTech::kDialup: {
      constexpr std::array<std::string_view, 3> kPrefixes = {
          "dialup-", "dial-", "dhcp-dialup-"};
      return std::string{kPrefixes[rng.NextBelow(kPrefixes.size())]} + last;
    }
    case AccessTech::kCable: {
      constexpr std::array<std::string_view, 2> kPrefixes = {"cable-",
                                                             "cablemodem-"};
      return std::string{kPrefixes[rng.NextBelow(kPrefixes.size())]} + quad;
    }
    case AccessTech::kResidential: {
      constexpr std::array<std::string_view, 2> kPrefixes = {"res-",
                                                             "resnet-"};
      return std::string{kPrefixes[rng.NextBelow(kPrefixes.size())]} + quad;
    }
    case AccessTech::kWireless:
      return rng.NextBool(0.5) ? "wifi-" + last : "wireless-" + quad;
    case AccessTech::kUnnamed:
      return "host-" + quad;
  }
  return "host-" + quad;
}

}  // namespace

std::string_view AccessTechName(AccessTech tech) noexcept {
  switch (tech) {
    case AccessTech::kStatic: return "static";
    case AccessTech::kDynamic: return "dynamic";
    case AccessTech::kServer: return "server";
    case AccessTech::kDhcp: return "dhcp";
    case AccessTech::kPpp: return "ppp";
    case AccessTech::kDsl: return "dsl";
    case AccessTech::kDialup: return "dialup";
    case AccessTech::kCable: return "cable";
    case AccessTech::kResidential: return "residential";
    case AccessTech::kWireless: return "wireless";
    case AccessTech::kUnnamed: return "unnamed";
  }
  return "unknown";
}

std::string SynthesizeName(AccessTech tech, net::Ipv4Addr addr,
                           std::string_view isp_domain, Rng& rng) {
  std::string name = PickTemplate(tech, addr, rng);
  name.push_back('.');
  name += isp_domain;
  return name;
}

std::vector<std::string> SynthesizeBlockNames(net::Prefix24 block,
                                              AccessTech tech,
                                              std::string_view isp_domain,
                                              double ptr_coverage, Rng& rng) {
  std::vector<std::string> names(net::kBlockSize);
  for (int i = 0; i < net::kBlockSize; ++i) {
    if (!rng.NextBool(ptr_coverage)) continue;  // no PTR record
    const auto addr = block.Address(static_cast<std::uint8_t>(i));
    // Real access zones carry a sprinkling of infrastructure names
    // (routers, unnamed hosts) that must not flip the block's label.
    const bool generic = tech != AccessTech::kUnnamed && rng.NextBool(0.04);
    names[static_cast<std::size_t>(i)] = SynthesizeName(
        generic ? AccessTech::kUnnamed : tech, addr, isp_domain, rng);
  }
  return names;
}

}  // namespace sleepwalk::rdns
