// Reverse-DNS resolution on top of the wire codec.
//
// PtrResolver is the seam: the measurement pipeline asks for the PTR
// name of an address and does not care whether the answer comes from a
// simulated authoritative server (InMemoryPtrResolver, which round-trips
// every lookup through real wire bytes) or a live UDP resolver
// (UdpDnsClient).
#ifndef SLEEPWALK_RDNS_DNS_RESOLVER_H_
#define SLEEPWALK_RDNS_DNS_RESOLVER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sleepwalk/net/ipv4.h"
#include "sleepwalk/rdns/dns_codec.h"

namespace sleepwalk::rdns {

/// Abstract PTR lookup: name for an address, or nullopt (NXDOMAIN /
/// timeout / malformed response).
class PtrResolver {
 public:
  virtual ~PtrResolver() = default;
  virtual std::optional<std::string> Resolve(net::Ipv4Addr addr) = 0;
};

/// An authoritative PTR zone held in memory. Every Resolve() builds a
/// real query packet, "serves" it by parsing the query and building a
/// compressed response, then parses the response — so the full codec
/// path is exercised per lookup, exactly as a wire resolver would.
class InMemoryPtrResolver final : public PtrResolver {
 public:
  /// Adds (or replaces) a PTR record.
  void AddRecord(net::Ipv4Addr addr, std::string name);

  /// Loads a whole /24's names (empty entries are skipped).
  void AddBlock(net::Prefix24 block,
                const std::vector<std::string>& names);

  std::optional<std::string> Resolve(net::Ipv4Addr addr) override;

  std::size_t record_count() const noexcept { return records_.size(); }
  std::uint64_t queries_served() const noexcept { return queries_; }

 private:
  std::unordered_map<std::uint32_t, std::string> records_;
  std::uint64_t queries_ = 0;
  std::uint16_t next_id_ = 1;
};

/// Live PTR resolution over UDP (RFC 1035 §4.2.1) against a recursive
/// resolver. Returns nullptr when no UDP socket can be opened.
std::unique_ptr<PtrResolver> MakeUdpPtrResolver(
    net::Ipv4Addr server = net::Ipv4Addr{8, 8, 8, 8},
    int timeout_ms = 2000);

/// Resolves all 256 names of a /24 (empty string where resolution
/// fails) — the per-block input to the link-type classifier.
std::vector<std::string> ResolveBlock(PtrResolver& resolver,
                                      net::Prefix24 block);

}  // namespace sleepwalk::rdns

#endif  // SLEEPWALK_RDNS_DNS_RESOLVER_H_
