#include "sleepwalk/rdns/dns_resolver.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "sleepwalk/net/socket.h"

namespace sleepwalk::rdns {

void InMemoryPtrResolver::AddRecord(net::Ipv4Addr addr, std::string name) {
  records_.insert_or_assign(addr.value(), std::move(name));
}

void InMemoryPtrResolver::AddBlock(net::Prefix24 block,
                                   const std::vector<std::string>& names) {
  for (std::size_t i = 0; i < names.size() && i < net::kBlockSize; ++i) {
    if (names[i].empty()) continue;
    AddRecord(block.Address(static_cast<std::uint8_t>(i)), names[i]);
  }
}

std::optional<std::string> InMemoryPtrResolver::Resolve(net::Ipv4Addr addr) {
  ++queries_;
  const std::uint16_t id = next_id_++;

  // Client side: build the query bytes.
  const auto query_bytes = BuildPtrQuery(id, addr);

  // Server side: parse the query and answer from the zone.
  const auto query = ParseMessage(query_bytes);
  if (!query || query->header.is_response ||
      query->question_type != DnsType::kPtr) {
    return std::nullopt;
  }
  const auto queried_addr = ParseReverseName(query->question_name);
  if (!queried_addr) return std::nullopt;
  const auto it = records_.find(queried_addr->value());
  const std::string_view target =
      it != records_.end() ? std::string_view{it->second}
                           : std::string_view{};
  const auto response_bytes = BuildPtrResponse(id, *queried_addr, target);

  // Client side again: parse the response.
  const auto response = ParseMessage(response_bytes);
  if (!response || !response->header.is_response ||
      response->header.id != id) {
    return std::nullopt;
  }
  if (response->header.rcode != DnsRcode::kNoError ||
      response->answers.empty()) {
    return std::nullopt;
  }
  return response->answers.front().target;
}

namespace {

class UdpPtrResolver final : public PtrResolver {
 public:
  UdpPtrResolver(net::FileDescriptor fd, net::Ipv4Addr server,
                 int timeout_ms) noexcept
      : fd_(std::move(fd)), server_(server), timeout_ms_(timeout_ms) {}

  std::optional<std::string> Resolve(net::Ipv4Addr addr) override {
    const std::uint16_t id = next_id_++;
    const auto query = BuildPtrQuery(id, addr);

    sockaddr_in dest{};
    dest.sin_family = AF_INET;
    dest.sin_port = htons(53);
    dest.sin_addr.s_addr = htonl(server_.value());
    if (::sendto(fd_.get(), query.data(), query.size(), 0,
                 reinterpret_cast<const sockaddr*>(&dest),
                 sizeof(dest)) != static_cast<ssize_t>(query.size())) {
      return std::nullopt;
    }

    pollfd pfd{fd_.get(), POLLIN, 0};
    if (::poll(&pfd, 1, timeout_ms_) <= 0) return std::nullopt;

    std::vector<std::uint8_t> buffer(1500);
    const auto received =
        ::recv(fd_.get(), buffer.data(), buffer.size(), 0);
    if (received <= 0) return std::nullopt;

    const auto response = ParseMessage(
        {buffer.data(), static_cast<std::size_t>(received)});
    if (!response || response->header.id != id ||
        !response->header.is_response ||
        response->header.rcode != DnsRcode::kNoError) {
      return std::nullopt;
    }
    for (const auto& answer : response->answers) {
      if (answer.type == DnsType::kPtr) return answer.target;
    }
    return std::nullopt;
  }

 private:
  net::FileDescriptor fd_;
  net::Ipv4Addr server_;
  int timeout_ms_;
  std::uint16_t next_id_ = 0x1035;
};

}  // namespace

std::unique_ptr<PtrResolver> MakeUdpPtrResolver(net::Ipv4Addr server,
                                                int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return nullptr;
  return std::make_unique<UdpPtrResolver>(net::FileDescriptor{fd}, server,
                                          timeout_ms);
}

std::vector<std::string> ResolveBlock(PtrResolver& resolver,
                                      net::Prefix24 block) {
  std::vector<std::string> names(net::kBlockSize);
  for (int i = 0; i < net::kBlockSize; ++i) {
    auto name =
        resolver.Resolve(block.Address(static_cast<std::uint8_t>(i)));
    if (name) names[static_cast<std::size_t>(i)] = std::move(*name);
  }
  return names;
}

}  // namespace sleepwalk::rdns
