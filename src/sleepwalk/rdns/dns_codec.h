// DNS wire-format codec (RFC 1035) for reverse (PTR) lookups.
//
// The paper's link-type inference (§2.3.3) begins with "look up the
// reverse domain name of each address in each analyzable block" — at
// 3.7M blocks that is ~1e9 PTR queries. This module implements the wire
// format those lookups ride on: header packing, QNAME encoding, message
// compression pointers, and PTR record parsing. It performs no I/O;
// dns_resolver.h layers the simulated and UDP transports on top.
#ifndef SLEEPWALK_RDNS_DNS_CODEC_H_
#define SLEEPWALK_RDNS_DNS_CODEC_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "sleepwalk/net/ipv4.h"

namespace sleepwalk::rdns {

/// DNS record types we speak.
enum class DnsType : std::uint16_t {
  kA = 1,
  kNs = 2,
  kCname = 5,
  kPtr = 12,
  kTxt = 16,
};

/// Response codes (RFC 1035 §4.1.1).
enum class DnsRcode : std::uint8_t {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNxDomain = 3,
  kNotImp = 4,
  kRefused = 5,
};

/// Fixed 12-byte DNS header.
struct DnsHeader {
  std::uint16_t id = 0;
  bool is_response = false;
  bool recursion_desired = true;
  bool recursion_available = false;
  bool truncated = false;
  bool authoritative = false;
  DnsRcode rcode = DnsRcode::kNoError;
  std::uint16_t question_count = 0;
  std::uint16_t answer_count = 0;
  std::uint16_t authority_count = 0;
  std::uint16_t additional_count = 0;
};

inline constexpr std::size_t kDnsHeaderSize = 12;

/// One parsed resource record.
struct DnsRecord {
  std::string name;
  DnsType type = DnsType::kPtr;
  std::uint32_t ttl = 0;
  /// For PTR/NS/CNAME: the decoded target name. Other types keep raw
  /// RDATA bytes in `rdata`.
  std::string target;
  std::vector<std::uint8_t> rdata;
};

/// A parsed DNS message.
struct DnsMessage {
  DnsHeader header;
  std::string question_name;  ///< first question's QNAME (lowercased)
  DnsType question_type = DnsType::kPtr;
  std::vector<DnsRecord> answers;
};

/// The reverse-lookup name for an address: "d.c.b.a.in-addr.arpa".
std::string ReverseName(net::Ipv4Addr addr);

/// Parses a "d.c.b.a.in-addr.arpa" name back to the address; nullopt for
/// anything else.
std::optional<net::Ipv4Addr> ParseReverseName(std::string_view name);

/// Encodes a domain name into DNS label format, appended to `out`.
/// Returns false for invalid names (label > 63 octets, total > 255).
bool EncodeName(std::string_view name, std::vector<std::uint8_t>& out);

/// Decodes a (possibly compressed) name starting at `offset` within the
/// full `message`. On success returns the name (lowercased, no trailing
/// dot) and advances `offset` past the name's in-place bytes. Rejects
/// pointer loops and out-of-range pointers.
std::optional<std::string> DecodeName(std::span<const std::uint8_t> message,
                                      std::size_t& offset);

/// Builds a PTR query for `addr` with the given transaction id.
std::vector<std::uint8_t> BuildPtrQuery(std::uint16_t id,
                                        net::Ipv4Addr addr);

/// Builds a response to a PTR query: one PTR answer (or an empty answer
/// section with the given rcode when `ptr_target` is empty). The
/// question is re-encoded; the answer name uses a compression pointer to
/// it — exercising the compression path on every simulated lookup.
std::vector<std::uint8_t> BuildPtrResponse(std::uint16_t id,
                                           net::Ipv4Addr addr,
                                           std::string_view ptr_target,
                                           DnsRcode rcode = DnsRcode::kNoError,
                                           std::uint32_t ttl = 3600);

/// Parses any DNS message (query or response). Returns nullopt on
/// malformed input; never reads out of bounds.
std::optional<DnsMessage> ParseMessage(std::span<const std::uint8_t> data);

}  // namespace sleepwalk::rdns

#endif  // SLEEPWALK_RDNS_DNS_CODEC_H_
