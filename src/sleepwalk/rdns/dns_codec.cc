#include "sleepwalk/rdns/dns_codec.h"

#include <algorithm>
#include <cctype>

namespace sleepwalk::rdns {

namespace {

void PutU16(std::vector<std::uint8_t>& out, std::uint16_t value) {
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value & 0xff));
}

void PutU32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  out.push_back(static_cast<std::uint8_t>(value >> 24));
  out.push_back(static_cast<std::uint8_t>(value >> 16));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value & 0xff));
}

std::optional<std::uint16_t> GetU16(std::span<const std::uint8_t> data,
                                    std::size_t& offset) {
  if (offset + 2 > data.size()) return std::nullopt;
  const auto value = static_cast<std::uint16_t>(
      (data[offset] << 8) | data[offset + 1]);
  offset += 2;
  return value;
}

std::optional<std::uint32_t> GetU32(std::span<const std::uint8_t> data,
                                    std::size_t& offset) {
  if (offset + 4 > data.size()) return std::nullopt;
  const std::uint32_t value = (static_cast<std::uint32_t>(data[offset]) << 24) |
                              (static_cast<std::uint32_t>(data[offset + 1]) << 16) |
                              (static_cast<std::uint32_t>(data[offset + 2]) << 8) |
                              static_cast<std::uint32_t>(data[offset + 3]);
  offset += 4;
  return value;
}

void EncodeHeader(std::vector<std::uint8_t>& out, const DnsHeader& header) {
  PutU16(out, header.id);
  std::uint16_t flags = 0;
  if (header.is_response) flags |= 0x8000;
  if (header.authoritative) flags |= 0x0400;
  if (header.truncated) flags |= 0x0200;
  if (header.recursion_desired) flags |= 0x0100;
  if (header.recursion_available) flags |= 0x0080;
  flags |= static_cast<std::uint16_t>(header.rcode) & 0x000f;
  PutU16(out, flags);
  PutU16(out, header.question_count);
  PutU16(out, header.answer_count);
  PutU16(out, header.authority_count);
  PutU16(out, header.additional_count);
}

std::optional<DnsHeader> DecodeHeader(std::span<const std::uint8_t> data,
                                      std::size_t& offset) {
  DnsHeader header;
  const auto id = GetU16(data, offset);
  const auto flags = GetU16(data, offset);
  const auto qd = GetU16(data, offset);
  const auto an = GetU16(data, offset);
  const auto ns = GetU16(data, offset);
  const auto ar = GetU16(data, offset);
  if (!id || !flags || !qd || !an || !ns || !ar) return std::nullopt;
  header.id = *id;
  header.is_response = (*flags & 0x8000) != 0;
  header.authoritative = (*flags & 0x0400) != 0;
  header.truncated = (*flags & 0x0200) != 0;
  header.recursion_desired = (*flags & 0x0100) != 0;
  header.recursion_available = (*flags & 0x0080) != 0;
  header.rcode = static_cast<DnsRcode>(*flags & 0x000f);
  header.question_count = *qd;
  header.answer_count = *an;
  header.authority_count = *ns;
  header.additional_count = *ar;
  return header;
}

}  // namespace

std::string ReverseName(net::Ipv4Addr addr) {
  const auto octets = addr.Octets();
  std::string name;
  name.reserve(29);
  for (int i = 3; i >= 0; --i) {
    name += std::to_string(octets[static_cast<std::size_t>(i)]);
    name.push_back('.');
  }
  name += "in-addr.arpa";
  return name;
}

std::optional<net::Ipv4Addr> ParseReverseName(std::string_view name) {
  constexpr std::string_view kSuffix = ".in-addr.arpa";
  if (name.size() <= kSuffix.size()) return std::nullopt;
  // Accept an optional trailing root dot.
  if (name.ends_with(".")) name.remove_suffix(1);
  if (!name.ends_with(kSuffix)) return std::nullopt;
  const std::string_view quad =
      name.substr(0, name.size() - kSuffix.size());
  const auto reversed = net::Ipv4Addr::Parse(quad);
  if (!reversed) return std::nullopt;
  const auto o = reversed->Octets();
  return net::Ipv4Addr{o[3], o[2], o[1], o[0]};
}

bool EncodeName(std::string_view name, std::vector<std::uint8_t>& out) {
  if (name.ends_with(".")) name.remove_suffix(1);
  std::size_t total = 1;  // the root terminator
  while (!name.empty()) {
    const auto dot = name.find('.');
    const std::string_view label =
        dot == std::string_view::npos ? name : name.substr(0, dot);
    if (label.empty() || label.size() > 63) return false;
    total += label.size() + 1;
    if (total > 255) return false;
    out.push_back(static_cast<std::uint8_t>(label.size()));
    out.insert(out.end(), label.begin(), label.end());
    if (dot == std::string_view::npos) break;
    name.remove_prefix(dot + 1);
  }
  out.push_back(0);
  return true;
}

std::optional<std::string> DecodeName(std::span<const std::uint8_t> message,
                                      std::size_t& offset) {
  std::string name;
  std::size_t position = offset;
  std::optional<std::size_t> resume;  // offset after the first pointer
  int jumps = 0;
  constexpr int kMaxJumps = 16;  // defeats pointer loops

  while (true) {
    if (position >= message.size()) return std::nullopt;
    const std::uint8_t length = message[position];
    if ((length & 0xc0) == 0xc0) {
      // Compression pointer: 14-bit offset into the message.
      if (position + 1 >= message.size()) return std::nullopt;
      if (++jumps > kMaxJumps) return std::nullopt;
      const std::size_t target =
          (static_cast<std::size_t>(length & 0x3f) << 8) |
          message[position + 1];
      if (!resume) resume = position + 2;
      if (target >= position) return std::nullopt;  // forward loops
      position = target;
      continue;
    }
    if ((length & 0xc0) != 0) return std::nullopt;  // reserved tags
    ++position;
    if (length == 0) break;
    if (position + length > message.size()) return std::nullopt;
    if (!name.empty()) name.push_back('.');
    for (std::uint8_t i = 0; i < length; ++i) {
      name.push_back(static_cast<char>(
          std::tolower(message[position + i])));
    }
    position += length;
    if (name.size() > 255) return std::nullopt;
  }

  offset = resume.value_or(position);
  return name;
}

std::vector<std::uint8_t> BuildPtrQuery(std::uint16_t id,
                                        net::Ipv4Addr addr) {
  std::vector<std::uint8_t> out;
  DnsHeader header;
  header.id = id;
  header.question_count = 1;
  EncodeHeader(out, header);
  EncodeName(ReverseName(addr), out);
  PutU16(out, static_cast<std::uint16_t>(DnsType::kPtr));
  PutU16(out, 1);  // class IN
  return out;
}

std::vector<std::uint8_t> BuildPtrResponse(std::uint16_t id,
                                           net::Ipv4Addr addr,
                                           std::string_view ptr_target,
                                           DnsRcode rcode,
                                           std::uint32_t ttl) {
  std::vector<std::uint8_t> out;
  DnsHeader header;
  header.id = id;
  header.is_response = true;
  header.authoritative = true;
  header.recursion_available = true;
  header.rcode = ptr_target.empty() && rcode == DnsRcode::kNoError
                     ? DnsRcode::kNxDomain
                     : rcode;
  header.question_count = 1;
  header.answer_count = ptr_target.empty() ? 0 : 1;
  EncodeHeader(out, header);

  const std::size_t question_offset = out.size();
  EncodeName(ReverseName(addr), out);
  PutU16(out, static_cast<std::uint16_t>(DnsType::kPtr));
  PutU16(out, 1);

  if (!ptr_target.empty()) {
    // Answer name: compression pointer back to the question QNAME.
    out.push_back(static_cast<std::uint8_t>(0xc0 | (question_offset >> 8)));
    out.push_back(static_cast<std::uint8_t>(question_offset & 0xff));
    PutU16(out, static_cast<std::uint16_t>(DnsType::kPtr));
    PutU16(out, 1);
    PutU32(out, ttl);
    std::vector<std::uint8_t> rdata;
    EncodeName(ptr_target, rdata);
    PutU16(out, static_cast<std::uint16_t>(rdata.size()));
    out.insert(out.end(), rdata.begin(), rdata.end());
  }
  return out;
}

std::optional<DnsMessage> ParseMessage(std::span<const std::uint8_t> data) {
  std::size_t offset = 0;
  const auto header = DecodeHeader(data, offset);
  if (!header) return std::nullopt;

  DnsMessage message;
  message.header = *header;

  if (header->question_count > 0) {
    // Only the first question is retained (multi-question messages are
    // not used in practice); remaining questions are skipped.
    for (std::uint16_t q = 0; q < header->question_count; ++q) {
      auto name = DecodeName(data, offset);
      if (!name) return std::nullopt;
      const auto qtype = GetU16(data, offset);
      const auto qclass = GetU16(data, offset);
      if (!qtype || !qclass) return std::nullopt;
      if (q == 0) {
        message.question_name = std::move(*name);
        message.question_type = static_cast<DnsType>(*qtype);
      }
    }
  }

  for (std::uint16_t a = 0; a < header->answer_count; ++a) {
    DnsRecord record;
    auto name = DecodeName(data, offset);
    if (!name) return std::nullopt;
    record.name = std::move(*name);
    const auto rtype = GetU16(data, offset);
    const auto rclass = GetU16(data, offset);
    const auto ttl = GetU32(data, offset);
    const auto rdlength = GetU16(data, offset);
    if (!rtype || !rclass || !ttl || !rdlength) return std::nullopt;
    if (offset + *rdlength > data.size()) return std::nullopt;
    record.type = static_cast<DnsType>(*rtype);
    record.ttl = *ttl;
    const std::size_t rdata_start = offset;
    record.rdata.assign(data.begin() + static_cast<std::ptrdiff_t>(offset),
                        data.begin() + static_cast<std::ptrdiff_t>(
                                           offset + *rdlength));
    if (record.type == DnsType::kPtr || record.type == DnsType::kNs ||
        record.type == DnsType::kCname) {
      std::size_t name_offset = rdata_start;
      auto target = DecodeName(data, name_offset);
      if (!target || name_offset > rdata_start + *rdlength) {
        return std::nullopt;
      }
      record.target = std::move(*target);
    }
    offset = rdata_start + *rdlength;
    message.answers.push_back(std::move(record));
  }
  return message;
}

}  // namespace sleepwalk::rdns
