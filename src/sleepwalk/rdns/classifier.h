// Link-technology inference from reverse DNS names (paper §2.3.3, Fig 17).
//
// "We consider 16 keywords (sta, dyn, srv, rtr*, gw*, dhcp, ppp, dsl,
//  dial, cable, ded*, res, client*, sql*, wireless*, wifi*). Of these, we
//  discard the seven marked with asterisks because they are dominant in
//  less than 1000 blocks."
//
// Per-address matching is non-exclusive substring search; per-block
// labelling suppresses features below 1/15th of the dominant feature and
// keeps everything else.
#ifndef SLEEPWALK_RDNS_CLASSIFIER_H_
#define SLEEPWALK_RDNS_CLASSIFIER_H_

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sleepwalk::rdns {

/// All 16 keywords, in the paper's order.
enum class LinkKeyword : std::uint8_t {
  kSta, kDyn, kSrv, kRtr, kGw, kDhcp, kPpp, kDsl,
  kDial, kCable, kDed, kRes, kClient, kSql, kWireless, kWifi,
};

inline constexpr int kKeywordCount = 16;

/// The keyword's matching string.
std::string_view KeywordText(LinkKeyword keyword) noexcept;

/// True for the seven asterisked keywords the paper discards (dominant in
/// fewer than 1000 blocks): rtr, gw, ded, client, sql, wireless, wifi.
bool IsDiscardedKeyword(LinkKeyword keyword) noexcept;

/// Bitmask type over LinkKeyword; bit i corresponds to keyword i.
using KeywordMask = std::uint16_t;

constexpr KeywordMask MaskOf(LinkKeyword keyword) noexcept {
  return static_cast<KeywordMask>(1u << static_cast<unsigned>(keyword));
}

/// Per-address feature extraction: every keyword found as a substring of
/// the (lowercased) reverse name. "dhcp-dialup-001.example.com" yields
/// dhcp | dial.
KeywordMask MatchAddressName(std::string_view reverse_name) noexcept;

/// A /24's inferred link-technology label.
struct BlockLinkLabel {
  std::array<int, kKeywordCount> counts{};  ///< addresses matching each kw
  KeywordMask label = 0;   ///< surviving features after suppression
  bool has_any = false;    ///< at least one feature survived
  bool multiple = false;   ///< more than one feature survived
};

/// Classification knobs.
struct ClassifierOptions {
  /// Features with fewer than dominant/suppression_divisor matches are
  /// dropped (paper: 1/15th).
  int suppression_divisor = 15;
  /// Keep the seven asterisked keywords instead of discarding them.
  bool include_discarded = false;
};

/// Classifies a block from its (up to 256) address reverse names.
BlockLinkLabel ClassifyBlock(std::span<const std::string> reverse_names,
                             const ClassifierOptions& options = {});

/// Names of the 9 kept keywords in Fig 17's display order
/// (static, dynamic, server, dhcp, ppp, dsl, dialup, cable, residential).
std::vector<LinkKeyword> KeptKeywords();

}  // namespace sleepwalk::rdns

#endif  // SLEEPWALK_RDNS_CLASSIFIER_H_
