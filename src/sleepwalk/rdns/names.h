// Reverse-DNS name synthesis for the simulated Internet.
//
// The paper classified 3.7M real blocks from their PTR records; we cannot
// ship those, so the world generator assigns each block a true access
// technology and this module renders it into realistic ISP-style reverse
// names ("dhcp-dialup-001.example.com"). The classifier (classifier.h)
// then has to recover the technology from the names alone — the same
// inference problem the paper solves.
#ifndef SLEEPWALK_RDNS_NAMES_H_
#define SLEEPWALK_RDNS_NAMES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sleepwalk/net/ipv4.h"
#include "sleepwalk/util/rng.h"

namespace sleepwalk::rdns {

/// Ground-truth access technology of a block (what the ISP actually
/// deployed). kUnnamed models blocks whose PTR records carry no
/// technology hints (the paper finds features in only 46.3% of blocks).
enum class AccessTech : std::uint8_t {
  kStatic,
  kDynamic,
  kServer,
  kDhcp,
  kPpp,
  kDsl,
  kDialup,
  kCable,
  kResidential,
  kWireless,
  kUnnamed,
};

/// Human-readable technology name ("dynamic", "dsl", ...).
std::string_view AccessTechName(AccessTech tech) noexcept;

/// Synthesizes the reverse name of one address. Returns an empty string
/// for addresses without PTR records.
std::string SynthesizeName(AccessTech tech, net::Ipv4Addr addr,
                           std::string_view isp_domain, Rng& rng);

/// Synthesizes names for a whole /24: `ptr_coverage` of addresses get
/// records, the rest are empty strings. A small fraction of named
/// addresses in technology blocks get generic (feature-free) names,
/// as real zones mix infrastructure names into access pools.
std::vector<std::string> SynthesizeBlockNames(net::Prefix24 block,
                                              AccessTech tech,
                                              std::string_view isp_domain,
                                              double ptr_coverage, Rng& rng);

}  // namespace sleepwalk::rdns

#endif  // SLEEPWALK_RDNS_NAMES_H_
