// Transport: the seam between probing policy and the network under test.
//
// Trinocular's probing logic (sleepwalk/probing) is written against this
// interface so the same prober runs over the simulated Internet
// (sleepwalk/sim) and over real ICMP (LiveIcmpTransport).
#ifndef SLEEPWALK_NET_TRANSPORT_H_
#define SLEEPWALK_NET_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "sleepwalk/net/ipv4.h"

namespace sleepwalk::net {

/// Outcome of a single probe.
enum class ProbeStatus : std::uint8_t {
  kEchoReply,    ///< Positive response: address is up.
  kTimeout,      ///< No answer within the probe timeout.
  kUnreachable,  ///< Explicit ICMP unreachable / refused.
};

/// True when the probe counts as a positive response in the availability
/// estimator (paper §2.1: "addresses ... will reply to an ICMP probe").
constexpr bool IsPositive(ProbeStatus status) noexcept {
  return status == ProbeStatus::kEchoReply;
}

/// Thrown by transports whose probing machinery itself failed (socket
/// torn down, injected fault window, ...): distinct from a probe that was
/// sent and went unanswered. The campaign supervisor retries these with
/// backoff and eventually quarantines the block.
class TransportError : public std::runtime_error {
 public:
  explicit TransportError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Abstract probing transport. `when_sec` is the measurement time in
/// seconds since the dataset epoch; simulated transports evaluate the
/// world at that instant, live transports ignore it and use wall clock.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual ProbeStatus Probe(Ipv4Addr target, std::int64_t when_sec) = 0;
};

/// A transport whose internal randomness/counters can be persisted, so a
/// checkpointed campaign resumes bit-identically to an uninterrupted run.
/// Live transports have no meaningful state to save; simulated ones do.
class StatefulTransport : public Transport {
 public:
  /// Appends an opaque serialized state blob to `out`.
  virtual void SaveState(std::vector<std::uint8_t>& out) const = 0;
  /// Restores state written by SaveState; false on malformed input.
  virtual bool RestoreState(std::span<const std::uint8_t> in) = 0;
};

/// Live transport over a RawIcmpSocket. Construction fails (returns null)
/// when no ICMP socket can be opened. Non-positive `timeout_ms` is
/// clamped to 1 ms. Transient send errors (EINTR/EAGAIN) are retried once
/// and then reported as kTimeout — only hard network errors (for example
/// ENETUNREACH) surface as kUnreachable.
std::unique_ptr<Transport> MakeLiveIcmpTransport(int timeout_ms = 1000);

}  // namespace sleepwalk::net

#endif  // SLEEPWALK_NET_TRANSPORT_H_
