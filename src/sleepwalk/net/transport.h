// Transport: the seam between probing policy and the network under test.
//
// Trinocular's probing logic (sleepwalk/probing) is written against this
// interface so the same prober runs over the simulated Internet
// (sleepwalk/sim) and over real ICMP (LiveIcmpTransport).
#ifndef SLEEPWALK_NET_TRANSPORT_H_
#define SLEEPWALK_NET_TRANSPORT_H_

#include <cstdint>
#include <memory>

#include "sleepwalk/net/ipv4.h"

namespace sleepwalk::net {

/// Outcome of a single probe.
enum class ProbeStatus : std::uint8_t {
  kEchoReply,    ///< Positive response: address is up.
  kTimeout,      ///< No answer within the probe timeout.
  kUnreachable,  ///< Explicit ICMP unreachable / refused.
};

/// True when the probe counts as a positive response in the availability
/// estimator (paper §2.1: "addresses ... will reply to an ICMP probe").
constexpr bool IsPositive(ProbeStatus status) noexcept {
  return status == ProbeStatus::kEchoReply;
}

/// Abstract probing transport. `when_sec` is the measurement time in
/// seconds since the dataset epoch; simulated transports evaluate the
/// world at that instant, live transports ignore it and use wall clock.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual ProbeStatus Probe(Ipv4Addr target, std::int64_t when_sec) = 0;
};

/// Live transport over a RawIcmpSocket. Construction fails (returns null)
/// when no ICMP socket can be opened.
std::unique_ptr<Transport> MakeLiveIcmpTransport(int timeout_ms = 1000);

}  // namespace sleepwalk::net

#endif  // SLEEPWALK_NET_TRANSPORT_H_
