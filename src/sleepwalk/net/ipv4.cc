#include "sleepwalk/net/ipv4.h"

#include <charconv>

namespace sleepwalk::net {

namespace {

// Parses one decimal octet at the front of `text`, advancing it.
// Rejects empty, >255, and leading zeros ("01").
std::optional<std::uint8_t> ParseOctet(std::string_view& text) noexcept {
  if (text.empty()) return std::nullopt;
  unsigned value = 0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr == begin || value > 255) return std::nullopt;
  const auto digits = static_cast<std::size_t>(ptr - begin);
  if (digits > 1 && *begin == '0') return std::nullopt;
  text.remove_prefix(digits);
  return static_cast<std::uint8_t>(value);
}

bool ConsumeDot(std::string_view& text) noexcept {
  if (text.empty() || text.front() != '.') return false;
  text.remove_prefix(1);
  return true;
}

}  // namespace

std::optional<Ipv4Addr> Ipv4Addr::Parse(std::string_view text) noexcept {
  std::array<std::uint8_t, 4> octets{};
  for (int i = 0; i < 4; ++i) {
    if (i > 0 && !ConsumeDot(text)) return std::nullopt;
    const auto octet = ParseOctet(text);
    if (!octet) return std::nullopt;
    octets[static_cast<std::size_t>(i)] = *octet;
  }
  if (!text.empty()) return std::nullopt;
  return Ipv4Addr{octets[0], octets[1], octets[2], octets[3]};
}

std::string Ipv4Addr::ToString() const {
  const auto o = Octets();
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(o[static_cast<std::size_t>(i)]);
  }
  return out;
}

std::optional<Prefix24> Prefix24::Parse(std::string_view text) noexcept {
  if (const auto slash = text.find('/'); slash != std::string_view::npos) {
    if (text.substr(slash + 1) != "24") return std::nullopt;
    std::string_view head = text.substr(0, slash);
    std::array<std::uint8_t, 3> octets{};
    for (int i = 0; i < 3; ++i) {
      if (i > 0 && !ConsumeDot(head)) return std::nullopt;
      const auto octet = ParseOctet(head);
      if (!octet) return std::nullopt;
      octets[static_cast<std::size_t>(i)] = *octet;
    }
    if (!head.empty()) return std::nullopt;
    return Prefix24{Ipv4Addr{octets[0], octets[1], octets[2], 0}};
  }
  const auto addr = Ipv4Addr::Parse(text);
  if (!addr) return std::nullopt;
  return Prefix24{*addr};
}

std::string Prefix24::ToString() const {
  const auto o = base().Octets();
  std::string out;
  out.reserve(14);
  out += std::to_string(o[0]);
  out.push_back('.');
  out += std::to_string(o[1]);
  out.push_back('.');
  out += std::to_string(o[2]);
  out += "/24";
  return out;
}

}  // namespace sleepwalk::net
