#include "sleepwalk/net/rate_limiter.h"

#include <algorithm>

namespace sleepwalk::net {

TokenBucket::TokenBucket(double rate_per_sec, double burst) noexcept
    : rate_(std::max(rate_per_sec, 0.0)), burst_(std::max(burst, 0.0)),
      tokens_(burst_) {}

void TokenBucket::Refill(double now_sec) noexcept {
  if (!started_) {
    started_ = true;
    last_refill_sec_ = now_sec;
    return;
  }
  if (now_sec <= last_refill_sec_) return;  // clock went backwards: hold
  tokens_ = std::min(burst_, tokens_ + (now_sec - last_refill_sec_) * rate_);
  last_refill_sec_ = now_sec;
}

bool TokenBucket::TryAcquire(double now_sec, double tokens) noexcept {
  Refill(now_sec);
  if (tokens_ + 1e-12 < tokens) return false;
  tokens_ -= tokens;
  return true;
}

double TokenBucket::Available(double now_sec) noexcept {
  Refill(now_sec);
  return tokens_;
}

double TokenBucket::DelayUntilAvailable(double now_sec,
                                        double tokens) noexcept {
  Refill(now_sec);
  if (tokens_ >= tokens) return 0.0;
  if (rate_ <= 0.0) return -1.0;  // never
  return (tokens - tokens_) / rate_;
}

ShardedRateLimiter::ShardedRateLimiter(double rate_per_sec, double burst,
                                       std::size_t n_shards)
    : rate_(std::max(rate_per_sec, 0.0)),
      burst_(std::max(burst, 0.0)),
      global_(rate_, burst_) {
  const std::size_t n = std::max<std::size_t>(n_shards, 1);
  // Each shard gets 1/N of the budget, floored at one token of burst so
  // a finely sharded limiter can still emit single probes; the global
  // bucket remains the binding aggregate cap.
  const double shard_burst = std::max(burst_ / static_cast<double>(n),
                                      std::min(burst_, 1.0));
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>(
        TokenBucket{rate_ / static_cast<double>(n), shard_burst}));
  }
}

bool ShardedRateLimiter::TryAcquire(std::size_t shard, double now_sec,
                                    double tokens) {
  if (shard >= shards_.size()) return false;
  // Peek the shard bucket first (refill only, no deduction): a
  // shard-local denial must not burn global budget, and a global denial
  // must not burn shard budget. Only this shard's worker touches the
  // shard bucket, so the peek-then-deduct pair cannot race.
  TokenBucket& local = shards_[shard]->bucket;
  if (local.Available(now_sec) + 1e-12 < tokens) return false;
  {
    util::MutexLock lock{mutex_};
    if (!global_.TryAcquire(now_sec, tokens)) return false;
  }
  return local.TryAcquire(now_sec, tokens);
}

TokenBucket MakeTrinocularBudget() noexcept {
  return TokenBucket{kTrinocularProbesPerHour / 3600.0, 15.0};
}

}  // namespace sleepwalk::net
