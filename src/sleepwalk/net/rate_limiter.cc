#include "sleepwalk/net/rate_limiter.h"

#include <algorithm>

namespace sleepwalk::net {

TokenBucket::TokenBucket(double rate_per_sec, double burst) noexcept
    : rate_(std::max(rate_per_sec, 0.0)), burst_(std::max(burst, 0.0)),
      tokens_(burst_) {}

void TokenBucket::Refill(double now_sec) noexcept {
  if (!started_) {
    started_ = true;
    last_refill_sec_ = now_sec;
    return;
  }
  if (now_sec <= last_refill_sec_) return;  // clock went backwards: hold
  tokens_ = std::min(burst_, tokens_ + (now_sec - last_refill_sec_) * rate_);
  last_refill_sec_ = now_sec;
}

bool TokenBucket::TryAcquire(double now_sec, double tokens) noexcept {
  Refill(now_sec);
  if (tokens_ + 1e-12 < tokens) return false;
  tokens_ -= tokens;
  return true;
}

double TokenBucket::Available(double now_sec) noexcept {
  Refill(now_sec);
  return tokens_;
}

double TokenBucket::DelayUntilAvailable(double now_sec,
                                        double tokens) noexcept {
  Refill(now_sec);
  if (tokens_ >= tokens) return 0.0;
  if (rate_ <= 0.0) return -1.0;  // never
  return (tokens - tokens_) / rate_;
}

TokenBucket MakeTrinocularBudget() noexcept {
  return TokenBucket{kTrinocularProbesPerHour / 3600.0, 15.0};
}

}  // namespace sleepwalk::net
