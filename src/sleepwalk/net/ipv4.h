// IPv4 address and /24 prefix value types.
//
// The whole paper operates on /24 blocks ("prior work has shown they are
// often homogeneous in use"), so Prefix24 is the unit of measurement
// throughout the library.
#ifndef SLEEPWALK_NET_IPV4_H_
#define SLEEPWALK_NET_IPV4_H_

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace sleepwalk::net {

/// An IPv4 address held in host byte order.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() noexcept = default;
  constexpr explicit Ipv4Addr(std::uint32_t host_order) noexcept
      : value_(host_order) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d) noexcept
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  /// Parses dotted-quad notation ("192.0.2.1"). Rejects anything else:
  /// leading zeros beyond a lone 0, out-of-range octets, trailing junk.
  static std::optional<Ipv4Addr> Parse(std::string_view text) noexcept;

  constexpr std::uint32_t value() const noexcept { return value_; }

  constexpr std::array<std::uint8_t, 4> Octets() const noexcept {
    return {static_cast<std::uint8_t>(value_ >> 24),
            static_cast<std::uint8_t>(value_ >> 16),
            static_cast<std::uint8_t>(value_ >> 8),
            static_cast<std::uint8_t>(value_)};
  }

  std::string ToString() const;

  friend constexpr auto operator<=>(Ipv4Addr, Ipv4Addr) noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

/// A /24 block: 256 consecutive addresses sharing their top 24 bits.
class Prefix24 {
 public:
  constexpr Prefix24() noexcept = default;

  /// Builds the /24 containing `addr`.
  constexpr explicit Prefix24(Ipv4Addr addr) noexcept
      : base_(addr.value() & 0xffffff00u) {}

  /// Builds from a block index in [0, 2^24), i.e. the top 24 address bits.
  static constexpr Prefix24 FromIndex(std::uint32_t index) noexcept {
    Prefix24 p;
    p.base_ = index << 8;
    return p;
  }

  /// Parses "a.b.c/24" or "a.b.c.d" (the latter is truncated to its /24).
  static std::optional<Prefix24> Parse(std::string_view text) noexcept;

  /// First address of the block (the .0 address).
  constexpr Ipv4Addr base() const noexcept { return Ipv4Addr{base_}; }

  /// Block index: the top 24 bits, unique per /24.
  constexpr std::uint32_t Index() const noexcept { return base_ >> 8; }

  /// The i-th address of the block; i must be in [0, 256).
  constexpr Ipv4Addr Address(std::uint8_t last_octet) const noexcept {
    return Ipv4Addr{base_ | last_octet};
  }

  constexpr bool Contains(Ipv4Addr addr) const noexcept {
    return (addr.value() & 0xffffff00u) == base_;
  }

  /// "a.b.c/24" as in the paper's figures (e.g. "1.9.21/24").
  std::string ToString() const;

  friend constexpr auto operator<=>(Prefix24, Prefix24) noexcept = default;

 private:
  std::uint32_t base_ = 0;  // .0 address, low 8 bits always zero
};

/// Number of addresses in a /24 block.
inline constexpr int kBlockSize = 256;

}  // namespace sleepwalk::net

#endif  // SLEEPWALK_NET_IPV4_H_
