// RAII socket wrappers for the live ICMP prober.
//
// Raw ICMP sockets need CAP_NET_RAW (or the kernel's ping_group_range for
// the ICMP datagram fallback). RawIcmpSocket::Open tries both and reports
// which was used; everything degrades to a clear error, never UB.
#ifndef SLEEPWALK_NET_SOCKET_H_
#define SLEEPWALK_NET_SOCKET_H_

#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "sleepwalk/net/ipv4.h"

namespace sleepwalk::net {

/// Owns a file descriptor; closes it on destruction. Move-only.
class FileDescriptor {
 public:
  FileDescriptor() noexcept = default;
  explicit FileDescriptor(int fd) noexcept : fd_(fd) {}
  ~FileDescriptor();

  FileDescriptor(const FileDescriptor&) = delete;
  FileDescriptor& operator=(const FileDescriptor&) = delete;
  FileDescriptor(FileDescriptor&& other) noexcept
      : fd_(std::exchange(other.fd_, -1)) {}
  FileDescriptor& operator=(FileDescriptor&& other) noexcept;

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  /// Closes the descriptor now (idempotent).
  void Reset() noexcept;

 private:
  int fd_ = -1;
};

/// Result of waiting for one ICMP echo reply.
struct EchoReply {
  Ipv4Addr from;
  std::uint16_t id = 0;
  std::uint16_t sequence = 0;
  std::chrono::microseconds rtt{0};
};

/// A raw (or datagram) ICMP socket for sending echo requests and
/// receiving replies.
class RawIcmpSocket {
 public:
  /// Opens an ICMP socket. Tries SOCK_RAW first, then SOCK_DGRAM
  /// (unprivileged ping). Returns nullopt with `error` filled in when
  /// neither is permitted.
  static std::optional<RawIcmpSocket> Open(std::string* error = nullptr);

  /// True when the socket is SOCK_RAW (receives include the IPv4 header).
  bool is_raw() const noexcept { return raw_; }

  /// Sends one echo request. Returns false on send failure.
  bool SendEchoRequest(Ipv4Addr to, std::uint16_t id, std::uint16_t sequence,
                       std::span<const std::uint8_t> payload = {}) noexcept;

  /// Waits up to `timeout` for an echo reply matching `id` (any sequence).
  /// Non-matching traffic is discarded. Returns nullopt on timeout.
  std::optional<EchoReply> WaitForReply(std::uint16_t id,
                                        std::chrono::milliseconds timeout);

 private:
  RawIcmpSocket(FileDescriptor fd, bool raw) noexcept
      : fd_(std::move(fd)), raw_(raw) {}

  FileDescriptor fd_;
  bool raw_ = false;
};

}  // namespace sleepwalk::net

#endif  // SLEEPWALK_NET_SOCKET_H_
