#include "sleepwalk/net/instrumented_transport.h"

namespace sleepwalk::net {

ProbeCounters::ProbeCounters(const obs::Context& context)
    : attempted(context.CounterOrNull(ProbeMetricNames::kAttempted,
                                      "Probe() invocations")),
      errors(context.CounterOrNull(ProbeMetricNames::kErrors,
                                   "transport threw; probe never sent")),
      answered(context.CounterOrNull(ProbeMetricNames::kAnswered,
                                     "echo replies")),
      lost(context.CounterOrNull(ProbeMetricNames::kLost,
                                 "timeouts (real or injected loss)")),
      rate_limited(
          context.CounterOrNull(ProbeMetricNames::kRateLimited,
                                "probes dropped by an ICMP rate limit")),
      unreachable(context.CounterOrNull(ProbeMetricNames::kUnreachable,
                                        "explicit ICMP unreachable")) {}

void ProbeCounters::RecordStatus(ProbeStatus status) noexcept {
  switch (status) {
    case ProbeStatus::kEchoReply:
      if (answered != nullptr) answered->Inc();
      break;
    case ProbeStatus::kTimeout:
      if (lost != nullptr) lost->Inc();
      break;
    case ProbeStatus::kUnreachable:
      if (unreachable != nullptr) unreachable->Inc();
      break;
  }
}

InstrumentedTransport::InstrumentedTransport(Transport& inner,
                                             const obs::Context& context)
    : inner_(inner), context_(context), counters_(context) {}

void InstrumentedTransport::AttachObs(const obs::Context& context) {
  context_ = context;
  counters_ = ProbeCounters{context};
}

ProbeStatus InstrumentedTransport::Probe(Ipv4Addr target,
                                         std::int64_t when_sec) {
  ++accounting_.attempts;
  counters_.RecordAttempt();
  ProbeStatus status;
  try {
    status = inner_.Probe(target, when_sec);
  } catch (const TransportError&) {
    ++accounting_.errors;
    counters_.RecordError();
    if (context_.Logs(obs::Level::kDebug)) {
      context_.log->Write(obs::Level::kDebug, "transport.error",
                          {{"target", target.ToString()},
                           {"when_sec", when_sec}});
    }
    throw;
  }
  switch (status) {
    case ProbeStatus::kEchoReply: ++accounting_.answered; break;
    case ProbeStatus::kTimeout: ++accounting_.lost; break;
    case ProbeStatus::kUnreachable: ++accounting_.unreachable; break;
  }
  counters_.RecordStatus(status);
  return status;
}

void InstrumentedTransport::SaveState(std::vector<std::uint8_t>& out) const {
  if (const auto* stateful =
          dynamic_cast<const StatefulTransport*>(&inner_)) {
    stateful->SaveState(out);
  }
}

bool InstrumentedTransport::RestoreState(std::span<const std::uint8_t> in) {
  if (auto* stateful = dynamic_cast<StatefulTransport*>(&inner_)) {
    return stateful->RestoreState(in);
  }
  return in.empty();
}

}  // namespace sleepwalk::net
