// Token-bucket rate limiting for probing traffic.
//
// Trinocular's defining constraint is *do no harm*: "outage detection
// requires less than 20 probes per hour per /24 block; less than 1% of
// background radiation". The simulator enforces that statistically; a
// live deployment must enforce it mechanically. TokenBucket provides
// per-target and aggregate budgets for the live prober.
#ifndef SLEEPWALK_NET_RATE_LIMITER_H_
#define SLEEPWALK_NET_RATE_LIMITER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "sleepwalk/util/sync.h"

namespace sleepwalk::net {

/// Classic token bucket over a caller-supplied clock (seconds, double).
/// Deterministic and trivially testable; wall-clock adapters live at the
/// call site.
class TokenBucket {
 public:
  /// `rate_per_sec` tokens accrue continuously up to `burst` capacity.
  /// The bucket starts full.
  TokenBucket(double rate_per_sec, double burst) noexcept;

  /// Attempts to take `tokens` at time `now_sec`. Returns true and
  /// deducts on success; false (no deduction) when under-funded.
  bool TryAcquire(double now_sec, double tokens = 1.0) noexcept;

  /// Tokens available at `now_sec` (refills as a side effect).
  double Available(double now_sec) noexcept;

  /// Seconds from `now_sec` until `tokens` could be acquired (0 when
  /// already available).
  double DelayUntilAvailable(double now_sec, double tokens = 1.0) noexcept;

  double rate() const noexcept { return rate_; }
  double burst() const noexcept { return burst_; }

 private:
  void Refill(double now_sec) noexcept;

  double rate_;
  double burst_;
  double tokens_;
  double last_refill_sec_ = 0.0;
  bool started_ = false;
};

/// Probe budget split across the parallel executor's worker shards.
/// Each shard owns a private bucket with 1/N of the rate and burst (a
/// shard bucket is only touched by its worker, so the hot path is
/// uncontended and needs no lock), and every grant additionally debits a
/// mutex-guarded campaign-global bucket carrying the full budget. The
/// global bucket is the safety invariant — the paper's "do no harm"
/// probe bound holds in aggregate no matter how unevenly work lands on
/// the shards; the shard buckets merely keep one hot worker from
/// consuming the whole budget before its siblings probe at all.
class ShardedRateLimiter {
 public:
  ShardedRateLimiter(double rate_per_sec, double burst, std::size_t n_shards);

  /// Attempts to take `tokens` for `shard` at `now_sec`; both the shard
  /// bucket and the global bucket must grant. A shard-local denial never
  /// touches the global bucket.
  bool TryAcquire(std::size_t shard, double now_sec, double tokens = 1.0);

  std::size_t shard_count() const noexcept { return shards_.size(); }
  double rate() const noexcept { return rate_; }
  double burst() const noexcept { return burst_; }

 private:
  struct Shard {
    explicit Shard(TokenBucket bucket) : bucket(bucket) {}
    TokenBucket bucket;  ///< worker-private; no lock by contract
  };

  double rate_;
  double burst_;
  std::vector<std::unique_ptr<Shard>> shards_;
  util::Mutex mutex_;
  TokenBucket global_ SLEEPWALK_GUARDED_BY(mutex_);
};

/// The paper's probing budget: at most ~19 probes per hour per /24.
inline constexpr double kTrinocularProbesPerHour = 19.0;

/// A bucket dimensioned to Trinocular's per-block budget: 19/hour with a
/// burst of one full round (15 probes).
TokenBucket MakeTrinocularBudget() noexcept;

}  // namespace sleepwalk::net

#endif  // SLEEPWALK_NET_RATE_LIMITER_H_
