#include "sleepwalk/net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "sleepwalk/net/icmp.h"

namespace sleepwalk::net {

FileDescriptor::~FileDescriptor() { Reset(); }

FileDescriptor& FileDescriptor::operator=(FileDescriptor&& other) noexcept {
  if (this != &other) {
    Reset();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void FileDescriptor::Reset() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<RawIcmpSocket> RawIcmpSocket::Open(std::string* error) {
  int fd = ::socket(AF_INET, SOCK_RAW, IPPROTO_ICMP);
  if (fd >= 0) return RawIcmpSocket{FileDescriptor{fd}, /*raw=*/true};
  const int raw_errno = errno;
  fd = ::socket(AF_INET, SOCK_DGRAM, IPPROTO_ICMP);
  if (fd >= 0) return RawIcmpSocket{FileDescriptor{fd}, /*raw=*/false};
  if (error != nullptr) {
    *error = std::string{"raw socket: "} + std::strerror(raw_errno) +
             "; dgram icmp: " + std::strerror(errno);
  }
  return std::nullopt;
}

bool RawIcmpSocket::SendEchoRequest(
    Ipv4Addr to, std::uint16_t id, std::uint16_t sequence,
    std::span<const std::uint8_t> payload) noexcept {
  const auto packet = BuildEchoRequest(id, sequence, payload);
  sockaddr_in dest{};
  dest.sin_family = AF_INET;
  dest.sin_addr.s_addr = htonl(to.value());
  const auto sent =
      ::sendto(fd_.get(), packet.data(), packet.size(), 0,
               reinterpret_cast<const sockaddr*>(&dest), sizeof(dest));
  return sent == static_cast<ssize_t>(packet.size());
}

std::optional<EchoReply> RawIcmpSocket::WaitForReply(
    std::uint16_t id, std::chrono::milliseconds timeout) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  const auto deadline = start + timeout;
  std::vector<std::uint8_t> buffer(2048);
  while (true) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (remaining.count() <= 0) return std::nullopt;
    pollfd pfd{fd_.get(), POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (ready < 0 && errno == EINTR) continue;  // signal, not a timeout
    if (ready <= 0) return std::nullopt;

    sockaddr_in from{};
    socklen_t from_len = sizeof(from);
    const auto received = ::recvfrom(
        fd_.get(), buffer.data(), buffer.size(), 0,
        reinterpret_cast<sockaddr*>(&from), &from_len);
    if (received <= 0) continue;

    std::span<const std::uint8_t> packet{buffer.data(),
                                         static_cast<std::size_t>(received)};
    if (raw_) {
      // Raw sockets deliver the IPv4 header; skip it.
      const auto header = ParseIpv4Header(packet);
      if (!header || header->protocol != kProtocolIcmp) continue;
      packet = packet.subspan(header->header_bytes);
    }
    const auto echo = ParseEcho(packet);
    if (!echo || echo->type != IcmpType::kEchoReply) continue;
    // Datagram ICMP sockets rewrite the id to the local port; accept any
    // id there, require a match on raw sockets.
    if (raw_ && echo->id != id) continue;

    EchoReply reply;
    reply.from = Ipv4Addr{ntohl(from.sin_addr.s_addr)};
    reply.id = echo->id;
    reply.sequence = echo->sequence;
    reply.rtt = std::chrono::duration_cast<std::chrono::microseconds>(
        Clock::now() - start);
    return reply;
  }
}

}  // namespace sleepwalk::net
