#include "sleepwalk/net/icmp.h"

#include <algorithm>

#include "sleepwalk/net/checksum.h"

namespace sleepwalk::net {

namespace {

std::vector<std::uint8_t> BuildEcho(IcmpType type, std::uint16_t id,
                                    std::uint16_t sequence,
                                    std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> packet(kIcmpHeaderSize + payload.size());
  packet[0] = static_cast<std::uint8_t>(type);
  packet[1] = 0;  // code
  packet[2] = 0;  // checksum placeholder
  packet[3] = 0;
  packet[4] = static_cast<std::uint8_t>(id >> 8);
  packet[5] = static_cast<std::uint8_t>(id & 0xff);
  packet[6] = static_cast<std::uint8_t>(sequence >> 8);
  packet[7] = static_cast<std::uint8_t>(sequence & 0xff);
  std::copy(payload.begin(), payload.end(), packet.begin() + kIcmpHeaderSize);
  const std::uint16_t sum = Checksum(packet);
  packet[2] = static_cast<std::uint8_t>(sum >> 8);
  packet[3] = static_cast<std::uint8_t>(sum & 0xff);
  return packet;
}

}  // namespace

std::vector<std::uint8_t> BuildEchoRequest(
    std::uint16_t id, std::uint16_t sequence,
    std::span<const std::uint8_t> payload) {
  return BuildEcho(IcmpType::kEchoRequest, id, sequence, payload);
}

std::vector<std::uint8_t> BuildEchoReply(
    std::uint16_t id, std::uint16_t sequence,
    std::span<const std::uint8_t> payload) {
  return BuildEcho(IcmpType::kEchoReply, id, sequence, payload);
}

std::optional<IcmpEcho> ParseEcho(std::span<const std::uint8_t> packet) {
  if (packet.size() < kIcmpHeaderSize) return std::nullopt;
  const auto type = packet[0];
  if (type != static_cast<std::uint8_t>(IcmpType::kEchoReply) &&
      type != static_cast<std::uint8_t>(IcmpType::kEchoRequest)) {
    return std::nullopt;
  }
  if (Checksum(packet) != 0) return std::nullopt;
  IcmpEcho echo;
  echo.type = static_cast<IcmpType>(type);
  echo.code = packet[1];
  echo.id = static_cast<std::uint16_t>((packet[4] << 8) | packet[5]);
  echo.sequence = static_cast<std::uint16_t>((packet[6] << 8) | packet[7]);
  echo.payload.assign(packet.begin() + kIcmpHeaderSize, packet.end());
  return echo;
}

std::optional<Ipv4HeaderView> ParseIpv4Header(
    std::span<const std::uint8_t> packet) {
  if (packet.size() < 20) return std::nullopt;
  const std::uint8_t version = packet[0] >> 4;
  if (version != 4) return std::nullopt;
  Ipv4HeaderView header;
  header.ihl = packet[0] & 0x0f;
  header.header_bytes = static_cast<std::size_t>(header.ihl) * 4;
  if (header.ihl < 5 || packet.size() < header.header_bytes) {
    return std::nullopt;
  }
  header.ttl = packet[8];
  header.protocol = packet[9];
  header.source = Ipv4Addr{
      (static_cast<std::uint32_t>(packet[12]) << 24) |
      (static_cast<std::uint32_t>(packet[13]) << 16) |
      (static_cast<std::uint32_t>(packet[14]) << 8) |
      static_cast<std::uint32_t>(packet[15])};
  header.destination = Ipv4Addr{
      (static_cast<std::uint32_t>(packet[16]) << 24) |
      (static_cast<std::uint32_t>(packet[17]) << 16) |
      (static_cast<std::uint32_t>(packet[18]) << 8) |
      static_cast<std::uint32_t>(packet[19])};
  return header;
}

}  // namespace sleepwalk::net
