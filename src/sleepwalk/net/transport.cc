#include "sleepwalk/net/transport.h"

#include <cerrno>

#include <algorithm>
#include <atomic>

#include "sleepwalk/net/socket.h"

namespace sleepwalk::net {

namespace {

/// Errors that mean "try again", not "the network rejected the probe".
bool IsTransientErrno(int err) noexcept {
  return err == EINTR || err == EAGAIN || err == EWOULDBLOCK ||
         err == ENOBUFS || err == ENOMEM;
}

class LiveIcmpTransport final : public Transport {
 public:
  LiveIcmpTransport(RawIcmpSocket socket, int timeout_ms) noexcept
      : socket_(std::move(socket)), timeout_ms_(std::max(timeout_ms, 1)) {}

  ProbeStatus Probe(Ipv4Addr target, std::int64_t /*when_sec*/) override {
    const auto seq = static_cast<std::uint16_t>(sequence_.fetch_add(1));
    // One bounded retry on transient send errors: an EINTR'd sendto must
    // not masquerade as an ICMP unreachable — that would feed phantom
    // hard-down evidence into the belief model.
    bool sent = socket_.SendEchoRequest(target, kIcmpId, seq);
    if (!sent && IsTransientErrno(errno)) {
      sent = socket_.SendEchoRequest(target, kIcmpId, seq);
    }
    if (!sent) {
      return IsTransientErrno(errno) ? ProbeStatus::kTimeout
                                     : ProbeStatus::kUnreachable;
    }
    const auto reply =
        socket_.WaitForReply(kIcmpId, std::chrono::milliseconds{timeout_ms_});
    if (!reply) return ProbeStatus::kTimeout;
    return ProbeStatus::kEchoReply;
  }

 private:
  static constexpr std::uint16_t kIcmpId = 0x51ee;  // "SLEE(pwalk)"

  RawIcmpSocket socket_;
  int timeout_ms_;
  std::atomic<std::uint16_t> sequence_{0};
};

}  // namespace

std::unique_ptr<Transport> MakeLiveIcmpTransport(int timeout_ms) {
  auto socket = RawIcmpSocket::Open();
  if (!socket) return nullptr;
  return std::make_unique<LiveIcmpTransport>(std::move(*socket), timeout_ms);
}

}  // namespace sleepwalk::net
