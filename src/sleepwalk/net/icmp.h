// ICMP echo (ping) packet construction and parsing, plus enough IPv4
// header parsing to consume raw-socket receive buffers.
//
// Trinocular-style outage probing sends ICMP echo requests; this module is
// the wire-format layer shared by the live prober (examples/live_probe) and
// the protocol tests. It performs no I/O.
#ifndef SLEEPWALK_NET_ICMP_H_
#define SLEEPWALK_NET_ICMP_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "sleepwalk/net/ipv4.h"

namespace sleepwalk::net {

/// ICMP message types we care about.
enum class IcmpType : std::uint8_t {
  kEchoReply = 0,
  kDestUnreachable = 3,
  kEchoRequest = 8,
  kTimeExceeded = 11,
};

/// A parsed ICMP echo message (request or reply).
struct IcmpEcho {
  IcmpType type = IcmpType::kEchoRequest;
  std::uint8_t code = 0;
  std::uint16_t id = 0;        ///< Identifier, host byte order.
  std::uint16_t sequence = 0;  ///< Sequence number, host byte order.
  std::vector<std::uint8_t> payload;
};

/// Fixed ICMP header size in bytes (type, code, checksum, id, seq).
inline constexpr std::size_t kIcmpHeaderSize = 8;

/// Serializes an ICMP echo request with a valid checksum.
std::vector<std::uint8_t> BuildEchoRequest(
    std::uint16_t id, std::uint16_t sequence,
    std::span<const std::uint8_t> payload = {});

/// Serializes an ICMP echo reply with a valid checksum (for tests and
/// loopback responders).
std::vector<std::uint8_t> BuildEchoReply(
    std::uint16_t id, std::uint16_t sequence,
    std::span<const std::uint8_t> payload = {});

/// Parses an ICMP echo request/reply from `packet` (which must start at
/// the ICMP header). Returns nullopt for non-echo types, short buffers, or
/// checksum mismatch.
std::optional<IcmpEcho> ParseEcho(std::span<const std::uint8_t> packet);

/// Minimal parsed IPv4 header, as seen on a raw ICMP socket.
struct Ipv4HeaderView {
  std::uint8_t ihl = 5;  ///< Header length in 32-bit words.
  std::uint8_t ttl = 0;
  std::uint8_t protocol = 0;
  Ipv4Addr source;
  Ipv4Addr destination;
  std::size_t header_bytes = 20;  ///< ihl * 4.
};

/// ICMP protocol number in the IPv4 header.
inline constexpr std::uint8_t kProtocolIcmp = 1;

/// Parses the IPv4 header at the front of `packet`. Returns nullopt if the
/// buffer is shorter than the stated header or the version is not 4.
std::optional<Ipv4HeaderView> ParseIpv4Header(
    std::span<const std::uint8_t> packet);

}  // namespace sleepwalk::net

#endif  // SLEEPWALK_NET_ICMP_H_
