// InstrumentedTransport: a net::Transport decorator that counts every
// probe into an obs::Context and a report::ProbeAccounting.
//
// This is the observability seam for *non-faulty* stacks (live ICMP or
// plain simulation): it gives the campaign the same probe accounting a
// faults::FaultyTransport maintains natively, so the metrics identity
// sent = answered + lost + rate_limited + unreachable holds for every
// transport configuration. (Behind this decorator a rate-limited drop is
// indistinguishable from loss, so rate_limited stays 0 here; the faulty
// transport attributes it precisely.)
//
// Pass-through is exact: status values, exceptions, and state
// save/restore all reach the inner transport unmodified, so wrapping is
// inert with respect to campaign results.
#ifndef SLEEPWALK_NET_INSTRUMENTED_TRANSPORT_H_
#define SLEEPWALK_NET_INSTRUMENTED_TRANSPORT_H_

#include "sleepwalk/net/transport.h"
#include "sleepwalk/obs/context.h"
#include "sleepwalk/report/resilience.h"

namespace sleepwalk::net {

/// Probe-metric names shared by every transport-level instrument (this
/// decorator and faults::FaultyTransport), so dashboards see one series
/// regardless of the stack. Catalog: DESIGN.md §7.
struct ProbeMetricNames {
  static constexpr const char* kAttempted = "probes_attempted_total";
  static constexpr const char* kErrors = "probes_error_total";
  static constexpr const char* kAnswered = "probes_answered_total";
  static constexpr const char* kLost = "probes_lost_total";
  static constexpr const char* kRateLimited = "probes_rate_limited_total";
  static constexpr const char* kUnreachable = "probes_unreachable_total";
};

/// Counter pointers resolved once from a Context; null context => all
/// null and RecordStatus costs one branch per bucket.
struct ProbeCounters {
  ProbeCounters() = default;
  explicit ProbeCounters(const obs::Context& context);

  void RecordAttempt() noexcept {
    if (attempted != nullptr) attempted->Inc();
  }
  void RecordError() noexcept {
    if (errors != nullptr) errors->Inc();
  }
  void RecordStatus(ProbeStatus status) noexcept;
  void RecordRateLimited() noexcept {
    if (rate_limited != nullptr) rate_limited->Inc();
  }

  obs::Counter* attempted = nullptr;
  obs::Counter* errors = nullptr;
  obs::Counter* answered = nullptr;
  obs::Counter* lost = nullptr;
  obs::Counter* rate_limited = nullptr;
  obs::Counter* unreachable = nullptr;
};

/// The decorator. Inner transport must outlive it.
class InstrumentedTransport final : public StatefulTransport {
 public:
  InstrumentedTransport(Transport& inner, const obs::Context& context);

  ProbeStatus Probe(Ipv4Addr target, std::int64_t when_sec) override;

  /// Re-points the probe counters at a different obs context. The
  /// parallel executor calls this once per block to direct this chain's
  /// instruments at the block's buffered registry; the cumulative
  /// accounting() is unaffected.
  void AttachObs(const obs::Context& context);

  /// Forwarded to the inner transport when it is stateful; accounting is
  /// derived telemetry, not campaign state, so it is not persisted.
  void SaveState(std::vector<std::uint8_t>& out) const override;
  bool RestoreState(std::span<const std::uint8_t> in) override;

  const report::ProbeAccounting& accounting() const noexcept {
    return accounting_;
  }

 private:
  Transport& inner_;
  obs::Context context_;
  ProbeCounters counters_;
  report::ProbeAccounting accounting_;
};

}  // namespace sleepwalk::net

#endif  // SLEEPWALK_NET_INSTRUMENTED_TRANSPORT_H_
