// RFC 1071 Internet checksum, used by ICMP (and IPv4 headers).
#ifndef SLEEPWALK_NET_CHECKSUM_H_
#define SLEEPWALK_NET_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace sleepwalk::net {

/// Incremental RFC 1071 checksum accumulator. Feed any number of byte
/// ranges with Add(), then read the folded one's-complement sum.
class InternetChecksum {
 public:
  /// Accumulates `data` into the checksum. Ranges may be fed in any
  /// chunking as long as total byte order is preserved.
  void Add(std::span<const std::uint8_t> data) noexcept;

  /// Returns the checksum: the one's complement of the folded 16-bit sum,
  /// in host byte order (store into packets with big-endian conversion).
  std::uint16_t Finish() const noexcept;

 private:
  std::uint64_t sum_ = 0;
  bool odd_ = false;  // previous Add() ended mid-word
};

/// One-shot checksum over a single buffer.
std::uint16_t Checksum(std::span<const std::uint8_t> data) noexcept;

}  // namespace sleepwalk::net

#endif  // SLEEPWALK_NET_CHECKSUM_H_
