// RFC 1071 Internet checksum, used by ICMP (and IPv4 headers), and
// CRC32C (Castagnoli), used by the storage layer to frame checkpoint
// sections and dataset records (RFC 3720 polynomial 0x1EDC6F41 — the
// iSCSI/ext4/Btrfs choice, far stronger against burst errors than the
// 16-bit ones'-complement sum).
#ifndef SLEEPWALK_NET_CHECKSUM_H_
#define SLEEPWALK_NET_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace sleepwalk::net {

/// Incremental RFC 1071 checksum accumulator. Feed any number of byte
/// ranges with Add(), then read the folded one's-complement sum.
class InternetChecksum {
 public:
  /// Accumulates `data` into the checksum. Ranges may be fed in any
  /// chunking as long as total byte order is preserved.
  void Add(std::span<const std::uint8_t> data) noexcept;

  /// Returns the checksum: the one's complement of the folded 16-bit sum,
  /// in host byte order (store into packets with big-endian conversion).
  std::uint16_t Finish() const noexcept;

 private:
  std::uint64_t sum_ = 0;
  bool odd_ = false;  // previous Add() ended mid-word
};

/// One-shot checksum over a single buffer.
std::uint16_t Checksum(std::span<const std::uint8_t> data) noexcept;

/// Incremental CRC32C (Castagnoli) accumulator. Feed byte ranges in any
/// chunking; Finish() returns the conventional reflected CRC with the
/// final XOR applied (CRC32C("123456789") == 0xE3069283).
class Crc32c {
 public:
  void Add(std::span<const std::uint8_t> data) noexcept;
  std::uint32_t Finish() const noexcept { return state_ ^ 0xffffffffU; }

 private:
  std::uint32_t state_ = 0xffffffffU;
};

/// One-shot CRC32C over a single buffer.
std::uint32_t Crc32cOf(std::span<const std::uint8_t> data) noexcept;

}  // namespace sleepwalk::net

#endif  // SLEEPWALK_NET_CHECKSUM_H_
