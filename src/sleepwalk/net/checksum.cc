#include "sleepwalk/net/checksum.h"

#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#include <nmmintrin.h>
#define SLEEPWALK_CRC32C_X86 1
#endif

namespace sleepwalk::net {

void InternetChecksum::Add(std::span<const std::uint8_t> data) noexcept {
  std::size_t i = 0;
  if (odd_ && !data.empty()) {
    // Complete the previously half-filled 16-bit word: the pending byte
    // was already added as the high half, this one is the low half.
    sum_ += data[0];
    odd_ = false;
    i = 1;
  }
  for (; i + 1 < data.size(); i += 2) {
    sum_ += (static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1];
  }
  if (i < data.size()) {
    sum_ += static_cast<std::uint32_t>(data[i]) << 8;
    odd_ = true;
  }
}

std::uint16_t InternetChecksum::Finish() const noexcept {
  std::uint64_t sum = sum_;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

std::uint16_t Checksum(std::span<const std::uint8_t> data) noexcept {
  InternetChecksum acc;
  acc.Add(data);
  return acc.Finish();
}

namespace {

/// Slicing-by-8 tables for the Castagnoli polynomial 0x1EDC6F41
/// (reversed: 0x82F63B78), built at compile time. Table 0 is the
/// classic byte-at-a-time table; table k advances a byte's influence k
/// further positions, so the hot loop folds 8 input bytes per
/// iteration — checkpoint saves and resume loads CRC megabytes of
/// section payload, and the byte-wise loop was a measurable share of
/// the durability tax (bench/checkpoint_io).
struct Crc32cTables {
  constexpr Crc32cTables() : entries{} {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1U) != 0 ? (crc >> 1) ^ 0x82F63B78U : crc >> 1;
      }
      entries[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = entries[0][i];
      for (int slice = 1; slice < 8; ++slice) {
        crc = (crc >> 8) ^ entries[0][crc & 0xffU];
        entries[slice][i] = crc;
      }
    }
  }
  std::uint32_t entries[8][256];
};

constexpr Crc32cTables kCrc32c{};

#if SLEEPWALK_CRC32C_X86
/// SSE4.2 CRC32 instruction path: one `crc32q` per 8 bytes runs an
/// order of magnitude ahead of the table fold and dominates the v3
/// snapshot encode at paper scale (10 MB images every checkpoint
/// stride). Same polynomial, same result — only the throughput
/// changes. Selected once at startup via cpuid.
__attribute__((target("sse4.2"))) std::uint32_t AddHw(
    std::uint32_t crc, const std::uint8_t* p, std::size_t n) noexcept {
  std::uint64_t state = crc;
  while (n >= 8) {
    std::uint64_t chunk = 0;
    std::memcpy(&chunk, p, sizeof(chunk));
    state = _mm_crc32_u64(state, chunk);
    p += 8;
    n -= 8;
  }
  crc = static_cast<std::uint32_t>(state);
  for (; n > 0; ++p, --n) {
    crc = _mm_crc32_u8(crc, *p);
  }
  return crc;
}

bool HaveHwCrc() noexcept {
  static const bool have = __builtin_cpu_supports("sse4.2");
  return have;
}
#endif

}  // namespace

void Crc32c::Add(std::span<const std::uint8_t> data) noexcept {
  std::uint32_t crc = state_;
#if SLEEPWALK_CRC32C_X86
  if (HaveHwCrc()) {
    state_ = AddHw(crc, data.data(), data.size());
    return;
  }
#endif
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    // Little-endian 64-bit load (host is LE on every supported target,
    // see storage/bytes.h); the CRC state folds into the low word.
    std::uint64_t chunk = 0;
    std::memcpy(&chunk, p, sizeof(chunk));
    chunk ^= crc;
    crc = kCrc32c.entries[7][chunk & 0xffU] ^
          kCrc32c.entries[6][(chunk >> 8) & 0xffU] ^
          kCrc32c.entries[5][(chunk >> 16) & 0xffU] ^
          kCrc32c.entries[4][(chunk >> 24) & 0xffU] ^
          kCrc32c.entries[3][(chunk >> 32) & 0xffU] ^
          kCrc32c.entries[2][(chunk >> 40) & 0xffU] ^
          kCrc32c.entries[1][(chunk >> 48) & 0xffU] ^
          kCrc32c.entries[0][(chunk >> 56) & 0xffU];
    p += 8;
    n -= 8;
  }
  for (; n > 0; ++p, --n) {
    crc = (crc >> 8) ^ kCrc32c.entries[0][(crc ^ *p) & 0xffU];
  }
  state_ = crc;
}

std::uint32_t Crc32cOf(std::span<const std::uint8_t> data) noexcept {
  Crc32c acc;
  acc.Add(data);
  return acc.Finish();
}

}  // namespace sleepwalk::net
