#include "sleepwalk/net/checksum.h"

namespace sleepwalk::net {

void InternetChecksum::Add(std::span<const std::uint8_t> data) noexcept {
  std::size_t i = 0;
  if (odd_ && !data.empty()) {
    // Complete the previously half-filled 16-bit word: the pending byte
    // was already added as the high half, this one is the low half.
    sum_ += data[0];
    odd_ = false;
    i = 1;
  }
  for (; i + 1 < data.size(); i += 2) {
    sum_ += (static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1];
  }
  if (i < data.size()) {
    sum_ += static_cast<std::uint32_t>(data[i]) << 8;
    odd_ = true;
  }
}

std::uint16_t InternetChecksum::Finish() const noexcept {
  std::uint64_t sum = sum_;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

std::uint16_t Checksum(std::span<const std::uint8_t> data) noexcept {
  InternetChecksum acc;
  acc.Add(data);
  return acc.Finish();
}

}  // namespace sleepwalk::net
