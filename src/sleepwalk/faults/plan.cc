#include "sleepwalk/faults/plan.h"

#include <algorithm>

#include "sleepwalk/util/rng.h"

namespace sleepwalk::faults {

bool InAnyWindow(std::span<const FaultWindow> windows,
                 std::int64_t when_sec) noexcept {
  return std::any_of(windows.begin(), windows.end(),
                     [when_sec](const FaultWindow& window) {
                       return window.Contains(when_sec);
                     });
}

std::vector<std::int64_t> PeriodicRestarts(std::int64_t every_rounds,
                                           std::int64_t n_rounds) {
  std::vector<std::int64_t> rounds;
  if (every_rounds <= 0) return rounds;
  for (std::int64_t round = every_rounds; round < n_rounds;
       round += every_rounds) {
    rounds.push_back(round);
  }
  return rounds;
}

std::vector<FaultWindow> RandomWindows(std::uint64_t seed, int count,
                                       std::int64_t campaign_seconds,
                                       std::int64_t mean_seconds) {
  std::vector<FaultWindow> windows;
  if (count <= 0 || campaign_seconds <= 0 || mean_seconds <= 0) {
    return windows;
  }
  Rng rng{seed ^ 0x51eef0c5ULL};
  windows.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const auto start = static_cast<std::int64_t>(
        rng.NextBelow(static_cast<std::uint64_t>(campaign_seconds)));
    // Length in [mean/2, 3*mean/2): bounded so a "transient" storm cannot
    // randomly swallow the campaign.
    const auto length =
        mean_seconds / 2 +
        static_cast<std::int64_t>(rng.NextBelow(
            static_cast<std::uint64_t>(std::max<std::int64_t>(
                1, mean_seconds))));
    windows.push_back({start, std::min(start + length, campaign_seconds)});
  }
  std::sort(windows.begin(), windows.end(),
            [](const FaultWindow& a, const FaultWindow& b) {
              return a.start_sec < b.start_sec;
            });
  return windows;
}

double HashUnit(std::uint64_t a, std::uint64_t b, std::uint64_t c) noexcept {
  return static_cast<double>(MixHash(a, b, c) >> 11) * 0x1.0p-53;
}

bool GilbertElliottStateAt(const GilbertElliott& model, std::uint64_t seed,
                           std::uint32_t block, std::int64_t window,
                           std::int64_t cached_window,
                           bool cached_state) noexcept {
  if (!model.enabled || window < 0) return false;
  // The chain starts good at window 0 and evolves one transition draw per
  // window, each a pure function of (seed, block, step) — so any two
  // computations of the same window agree, cached cursor or not.
  std::int64_t step = 0;
  bool bad = false;
  if (cached_window >= 0 && cached_window <= window) {
    step = cached_window;
    bad = cached_state;
  }
  for (; step < window; ++step) {
    const double u = HashUnit(seed ^ 0x6e11b075ULL, block,
                              static_cast<std::uint64_t>(step));
    bad = bad ? (u >= model.p_bad_to_good) : (u < model.p_good_to_bad);
  }
  return bad;
}

}  // namespace sleepwalk::faults
