#include "sleepwalk/faults/faulty_transport.h"

#include <algorithm>
#include <utility>

namespace sleepwalk::faults {

FaultyTransport::FaultyTransport(net::Transport& inner, FaultPlan plan)
    : inner_(inner), plan_(std::move(plan)) {}

void FaultyTransport::AttachObs(const obs::Context& context) {
  obs_ = context;
  probe_counters_ = net::ProbeCounters{context};
  fault_counters_[kFaultError] = context.CounterOrNull(
      "fault_injected_error_total", "injected transport errors");
  fault_counters_[kFaultRateLimited] = context.CounterOrNull(
      "fault_injected_rate_limited_total", "injected rate-limit drops");
  fault_counters_[kFaultUnreachable] = context.CounterOrNull(
      "fault_injected_unreachable_total", "injected unreachable answers");
  fault_counters_[kFaultTimeout] = context.CounterOrNull(
      "fault_injected_timeout_total", "injected timeout-window answers");
  fault_counters_[kFaultLoss] = context.CounterOrNull(
      "fault_injected_loss_total", "injected packet loss");
  // Counters attached mid-campaign report activity from this point
  // forward: the parallel executor re-points one chain at a fresh
  // per-block registry for every block it measures, and replaying the
  // cumulative history into each would multiply-count probes. Checkpoint
  // restores still replay restored totals via RestoreState's own
  // MirrorAccounting call.
  mirrored_ = accounting_;
}

void FaultyTransport::NoteFault(FaultKind kind, net::Ipv4Addr target,
                                std::int64_t when_sec) {
  if (fault_counters_[kind] != nullptr) fault_counters_[kind]->Inc();
  if (obs_.Logs(obs::Level::kTrace)) {
    static constexpr std::string_view kNames[kFaultKinds] = {
        "fault.error", "fault.rate_limited", "fault.unreachable",
        "fault.timeout", "fault.loss"};
    obs_.log->Write(obs::Level::kTrace, kNames[kind],
                    {{"target", target.ToString()}, {"when_sec", when_sec}});
  }
}

void FaultyTransport::MirrorAccounting() noexcept {
  if (probe_counters_.attempted == nullptr) return;
  probe_counters_.attempted->Inc(
      static_cast<double>(accounting_.attempts - mirrored_.attempts));
  probe_counters_.errors->Inc(
      static_cast<double>(accounting_.errors - mirrored_.errors));
  probe_counters_.answered->Inc(
      static_cast<double>(accounting_.answered - mirrored_.answered));
  probe_counters_.lost->Inc(
      static_cast<double>(accounting_.lost - mirrored_.lost));
  probe_counters_.rate_limited->Inc(static_cast<double>(
      accounting_.rate_limited - mirrored_.rate_limited));
  probe_counters_.unreachable->Inc(
      static_cast<double>(accounting_.unreachable - mirrored_.unreachable));
  mirrored_ = accounting_;
}

bool FaultyTransport::BurstStateAt(std::uint32_t block,
                                   std::int64_t window) noexcept {
  auto& cursor = chains_[block];
  const bool bad =
      GilbertElliottStateAt(plan_.burst, plan_.seed, block, window,
                            cursor.window, cursor.bad);
  // Only advance the cursor forward: a retried round re-queries an older
  // window, and rewinding the cache would make the recompute O(window).
  if (window >= cursor.window) {
    cursor.window = window;
    cursor.bad = bad;
  }
  return bad;
}

net::ProbeStatus FaultyTransport::Probe(net::Ipv4Addr target,
                                        std::int64_t when_sec) {
  ++accounting_.attempts;
  const std::uint32_t block = net::Prefix24{target}.Index();
  if (when_sec != current_when_ || block != current_block_) {
    current_when_ = when_sec;
    current_block_ = block;
    window_probes_ = 0;
    attempt_counts_.clear();
  }
  const std::uint32_t attempt = attempt_counts_[target.value()]++;

  if (plan_.IsDead(block) || InAnyWindow(plan_.error_windows, when_sec)) {
    ++accounting_.errors;
    NoteFault(kFaultError, target, when_sec);
    MirrorAccounting();
    throw net::TransportError{"injected transport fault"};
  }

  ++window_probes_;
  if (plan_.rate_limit_per_window > 0 &&
      window_probes_ > plan_.rate_limit_per_window) {
    ++accounting_.rate_limited;
    NoteFault(kFaultRateLimited, target, when_sec);
    MirrorAccounting();
    return net::ProbeStatus::kTimeout;
  }
  if (InAnyWindow(plan_.unreachable_windows, when_sec)) {
    ++accounting_.unreachable;
    NoteFault(kFaultUnreachable, target, when_sec);
    MirrorAccounting();
    return net::ProbeStatus::kUnreachable;
  }
  if (InAnyWindow(plan_.timeout_windows, when_sec)) {
    ++accounting_.lost;
    NoteFault(kFaultTimeout, target, when_sec);
    MirrorAccounting();
    return net::ProbeStatus::kTimeout;
  }

  // Loss: i.i.d. and bursty drops are independent events; a probe
  // survives only when it dodges both.
  double loss = plan_.iid_loss;
  if (plan_.burst.enabled) {
    const std::int64_t window =
        plan_.window_seconds > 0 ? when_sec / plan_.window_seconds : 0;
    const double burst_loss = BurstStateAt(block, window)
                                  ? plan_.burst.loss_bad
                                  : plan_.burst.loss_good;
    loss = 1.0 - (1.0 - loss) * (1.0 - burst_loss);
  }
  if (loss > 0.0) {
    const double u =
        HashUnit(plan_.seed ^ 0x10550001ULL,
                 (static_cast<std::uint64_t>(target.value()) << 32) |
                     static_cast<std::uint64_t>(attempt),
                 static_cast<std::uint64_t>(when_sec));
    if (u < loss) {
      ++accounting_.lost;
      NoteFault(kFaultLoss, target, when_sec);
      MirrorAccounting();
      return net::ProbeStatus::kTimeout;
    }
  }

  const auto status = inner_.Probe(target, when_sec);
  switch (status) {
    case net::ProbeStatus::kEchoReply:
      ++accounting_.answered;
      break;
    case net::ProbeStatus::kTimeout:
      ++accounting_.lost;
      break;
    case net::ProbeStatus::kUnreachable:
      ++accounting_.unreachable;
      break;
  }
  MirrorAccounting();
  return status;
}

void FaultyTransport::SaveState(std::vector<std::uint8_t>& out) const {
  const auto append = [&out](const void* data, std::size_t bytes) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    out.insert(out.end(), p, p + bytes);
  };
  append(&accounting_, sizeof(accounting_));
  if (const auto* stateful =
          dynamic_cast<const net::StatefulTransport*>(&inner_)) {
    stateful->SaveState(out);
  }
}

bool FaultyTransport::RestoreState(std::span<const std::uint8_t> in) {
  if (in.size() < sizeof(accounting_)) return false;
  std::copy_n(in.data(), sizeof(accounting_),
              reinterpret_cast<std::uint8_t*>(&accounting_));
  const auto rest = in.subspan(sizeof(accounting_));
  // The restored accounting includes pre-kill probes; fold the jump into
  // the mirrored counters so the metric series resumes exactly.
  MirrorAccounting();
  if (auto* stateful = dynamic_cast<net::StatefulTransport*>(&inner_)) {
    return stateful->RestoreState(rest);
  }
  return rest.empty();
}

}  // namespace sleepwalk::faults
