// FaultPlan: a deterministic, seeded schedule of measurement-plane
// faults.
//
// The paper's pipeline only works because it survives a hostile
// measurement plane: §2.1's estimator absorbs biased, quantized probing;
// §4 shows a mere prober *restart* manufacturing a phantom 4.3 cycles/day
// spectral line (Fig 10); and the cleaning stage (§2.2) exists because
// real campaigns drop rounds. A FaultPlan makes those failures
// injectable and reproducible: wrap any net::Transport in a
// FaultyTransport and the same seed replays the same packet loss, ICMP
// rate limiting, unreachable storms, transport breakage, prober restarts
// and clock gaps — so tests and benches can measure how much each fault
// distorts the diurnal verdicts.
//
// Loss models:
//  * i.i.d.: every probe dropped with probability `iid_loss`;
//  * bursty (Gilbert-Elliott): a two-state Markov chain per /24 stepping
//    once per `window_seconds` (one probing round), dropping probes with
//    `loss_good` / `loss_bad` depending on state. Burstiness is what
//    turns "2% loss" into multi-round outage look-alikes.
//
// All per-probe randomness is derived statelessly from
// (seed, target, window, attempt), and the Gilbert-Elliott chain state at
// window w is a pure function of (seed, block, w) — so a campaign resumed
// from a round-boundary checkpoint sees the exact fault sequence an
// uninterrupted run would have seen.
#ifndef SLEEPWALK_FAULTS_PLAN_H_
#define SLEEPWALK_FAULTS_PLAN_H_

#include <cstdint>
#include <span>
#include <unordered_set>
#include <utility>
#include <vector>

namespace sleepwalk::faults {

/// A half-open time window [start_sec, end_sec) in campaign time.
struct FaultWindow {
  std::int64_t start_sec = 0;
  std::int64_t end_sec = 0;

  bool Contains(std::int64_t when_sec) const noexcept {
    return when_sec >= start_sec && when_sec < end_sec;
  }
};

/// True when any window contains `when_sec`.
bool InAnyWindow(std::span<const FaultWindow> windows,
                 std::int64_t when_sec) noexcept;

/// Gilbert-Elliott bursty-loss parameters. Defaults model occasional
/// multi-round loss bursts on an otherwise clean path.
struct GilbertElliott {
  bool enabled = false;
  double p_good_to_bad = 0.05;  ///< per-window entry into the bad state
  double p_bad_to_good = 0.3;   ///< per-window recovery
  double loss_good = 0.0;       ///< drop probability in the good state
  double loss_bad = 0.8;        ///< drop probability in the bad state

  /// Long-run fraction of windows spent in the bad state.
  double StationaryBad() const noexcept {
    const double denom = p_good_to_bad + p_bad_to_good;
    return denom > 0.0 ? p_good_to_bad / denom : 0.0;
  }

  /// Long-run expected loss rate.
  double ExpectedLoss() const noexcept {
    const double bad = StationaryBad();
    return bad * loss_bad + (1.0 - bad) * loss_good;
  }
};

/// The full fault schedule for one campaign.
struct FaultPlan {
  std::uint64_t seed = 0xfa017;    ///< per-probe randomness key
  std::int64_t window_seconds = 660;  ///< GE step = one probing round

  // --- transport-level faults (consumed by FaultyTransport) ---
  double iid_loss = 0.0;           ///< i.i.d. drop probability
  GilbertElliott burst;            ///< bursty loss overlay
  /// Probes per (block, round instant) before an ICMP rate limiter
  /// starts dropping; 0 disables.
  int rate_limit_per_window = 0;
  std::vector<FaultWindow> timeout_windows;      ///< every probe times out
  std::vector<FaultWindow> unreachable_windows;  ///< kUnreachable storms
  std::vector<FaultWindow> error_windows;  ///< transport throws (breakage)
  /// /24 prefix indices that persistently error — the blocks a resilient
  /// supervisor must quarantine instead of aborting the campaign.
  std::unordered_set<std::uint32_t> dead_blocks;

  // --- supervisor-level faults (consumed by the campaign supervisor) ---
  /// Rounds at which the prober is restarted (§4's artifact on demand).
  std::vector<std::int64_t> restart_rounds;
  /// Half-open round ranges [first, last) the prober sleeps through
  /// (process dead / clock gap): no probes, no observations.
  std::vector<std::pair<std::int64_t, std::int64_t>> gap_round_windows;

  bool IsDead(std::uint32_t prefix_index) const noexcept {
    return dead_blocks.count(prefix_index) != 0;
  }
};

/// Restart schedule every `every_rounds` rounds over [1, n_rounds)
/// (round 0 is a fresh start already, as in probing::RoundScheduler).
std::vector<std::int64_t> PeriodicRestarts(std::int64_t every_rounds,
                                           std::int64_t n_rounds);

/// `count` seeded random windows of ~`mean_seconds` length placed
/// uniformly in [0, campaign_seconds); deterministic in `seed`.
std::vector<FaultWindow> RandomWindows(std::uint64_t seed, int count,
                                       std::int64_t campaign_seconds,
                                       std::int64_t mean_seconds);

/// Uniform [0, 1) draw from up to three keys — the stateless randomness
/// every fault decision uses.
double HashUnit(std::uint64_t a, std::uint64_t b, std::uint64_t c) noexcept;

/// Gilbert-Elliott chain state (true = bad) for `block` at chain step
/// `window`, as a pure function of the plan seed. O(window) when computed
/// from scratch; FaultyTransport caches per-block cursors so sequential
/// campaigns pay O(1) amortized.
bool GilbertElliottStateAt(const GilbertElliott& model, std::uint64_t seed,
                           std::uint32_t block, std::int64_t window,
                           std::int64_t cached_window = -1,
                           bool cached_state = false) noexcept;

}  // namespace sleepwalk::faults

#endif  // SLEEPWALK_FAULTS_PLAN_H_
