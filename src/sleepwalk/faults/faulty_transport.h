// FaultyTransport: a net::Transport decorator executing a FaultPlan.
//
// Wraps any transport (simulated or live) and injects, per probe and in
// this order:
//   1. transport breakage   — error windows / dead blocks throw
//                             net::TransportError (probe never sent);
//   2. ICMP rate limiting   — probes beyond the per-round threshold are
//                             silently dropped (kTimeout);
//   3. unreachable storms   — scheduled windows answer kUnreachable;
//   4. forced timeouts      — scheduled windows answer kTimeout;
//   5. packet loss          — i.i.d. and/or Gilbert-Elliott bursty drops;
//   6. pass-through         — the inner transport answers.
// Every probe lands in exactly one accounting bucket, so campaigns can
// prove sent = answered + lost + rate-limited + unreachable.
//
// Determinism: all draws are stateless hashes of (seed, target, window,
// attempt); transient per-window counters reset whenever the probed
// (block, instant) changes. A campaign checkpointed at a round boundary
// and resumed therefore replays the identical fault sequence.
#ifndef SLEEPWALK_FAULTS_FAULTY_TRANSPORT_H_
#define SLEEPWALK_FAULTS_FAULTY_TRANSPORT_H_

#include <cstdint>
#include <unordered_map>

#include "sleepwalk/faults/plan.h"
#include "sleepwalk/net/instrumented_transport.h"
#include "sleepwalk/net/transport.h"
#include "sleepwalk/obs/context.h"
#include "sleepwalk/report/resilience.h"

namespace sleepwalk::faults {

/// Fault-injecting decorator. The inner transport must outlive it.
class FaultyTransport final : public net::StatefulTransport {
 public:
  FaultyTransport(net::Transport& inner, FaultPlan plan);

  /// Attaches telemetry: the shared probe counters (net::ProbeMetricNames
  /// — here rate-limited drops are attributed precisely, unlike the
  /// generic decorator) plus fault_injected_*_total counters and
  /// trace-level fault events. Telemetry is derived from the accounting
  /// it mirrors and never feeds back into fault decisions, so attaching
  /// a context cannot change a campaign's results.
  void AttachObs(const obs::Context& context);

  net::ProbeStatus Probe(net::Ipv4Addr target,
                         std::int64_t when_sec) override;

  /// Persists probe accounting plus the inner transport's state (when the
  /// inner transport is stateful). Per-window transients are not state:
  /// they reset at the next round instant anyway.
  void SaveState(std::vector<std::uint8_t>& out) const override;
  bool RestoreState(std::span<const std::uint8_t> in) override;

  const report::ProbeAccounting& accounting() const noexcept {
    return accounting_;
  }
  const FaultPlan& plan() const noexcept { return plan_; }

 private:
  bool BurstStateAt(std::uint32_t block, std::int64_t window) noexcept;

  /// Fault-kind slots in fault_counters_, and names for fault events.
  enum FaultKind : std::size_t {
    kFaultError = 0,
    kFaultRateLimited,
    kFaultUnreachable,
    kFaultTimeout,
    kFaultLoss,
    kFaultKinds,
  };

  /// Logs the injected fault (trace level) and bumps its counter.
  void NoteFault(FaultKind kind, net::Ipv4Addr target,
                 std::int64_t when_sec);
  /// Increments the shared probe counters by however much accounting_
  /// advanced since the last mirror, so metrics stay exact across both
  /// normal probes and checkpoint restores.
  void MirrorAccounting() noexcept;

  net::Transport& inner_;
  FaultPlan plan_;
  report::ProbeAccounting accounting_;

  // Telemetry (never consulted by fault decisions).
  obs::Context obs_;
  net::ProbeCounters probe_counters_;
  obs::Counter* fault_counters_[kFaultKinds] = {};
  report::ProbeAccounting mirrored_;

  // Per-(block, instant) transients.
  std::uint32_t current_block_ = 0xffffffffu;
  std::int64_t current_when_ = -1;
  int window_probes_ = 0;
  std::unordered_map<std::uint32_t, std::uint32_t> attempt_counts_;

  // Per-block Gilbert-Elliott chain cursors (pure cache; recomputable).
  struct ChainCursor {
    std::int64_t window = -1;
    bool bad = false;
  };
  std::unordered_map<std::uint32_t, ChainCursor> chains_;
};

}  // namespace sleepwalk::faults

#endif  // SLEEPWALK_FAULTS_FAULTY_TRANSPORT_H_
