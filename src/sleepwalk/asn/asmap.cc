#include "sleepwalk/asn/asmap.h"

namespace sleepwalk::asn {

void IpToAsnMap::RegisterAs(AsInfo info) {
  as_registry_.insert_or_assign(info.asn, std::move(info));
}

void IpToAsnMap::Assign(net::Prefix24 block, std::uint32_t asn) {
  block_to_asn_.insert_or_assign(block.Index(), asn);
}

std::optional<std::uint32_t> IpToAsnMap::AsnFor(
    net::Prefix24 block) const noexcept {
  const auto it = block_to_asn_.find(block.Index());
  if (it == block_to_asn_.end()) return std::nullopt;
  return it->second;
}

const AsInfo* IpToAsnMap::InfoFor(std::uint32_t asn) const noexcept {
  const auto it = as_registry_.find(asn);
  if (it == as_registry_.end()) return nullptr;
  return &it->second;
}

}  // namespace sleepwalk::asn
