// AS-to-organization clustering (paper §2.3.2).
//
// "We map ASes to organizations using prior work that uses WHOIS and
//  string-based clustering [4]. For a given organization or ISP P ... we
//  first use keyword matching (ex. 'Time Warner') to find relevant
//  clusters, then find all ASes within same cluster(s)."
//
// The clustering here follows that recipe: AS names are normalized
// (lowercased, punctuation removed, corporate boilerplate tokens dropped)
// and ASes sharing the same leading significant tokens form one cluster.
#ifndef SLEEPWALK_ASN_ORGS_H_
#define SLEEPWALK_ASN_ORGS_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sleepwalk/asn/asmap.h"

namespace sleepwalk::asn {

/// Normalizes an AS or organization name for clustering: lowercase,
/// punctuation to spaces, boilerplate tokens ("inc", "llc", "as", ...)
/// removed, whitespace collapsed.
std::string NormalizeName(std::string_view name);

/// Clusters ASes into organizations by normalized-name matching.
class OrgClusterer {
 public:
  /// Builds clusters over every AS in `infos`.
  explicit OrgClusterer(std::span<const AsInfo> infos);

  std::size_t cluster_count() const noexcept { return clusters_.size(); }

  /// Canonical organization name for an ASN; empty when unknown.
  std::string_view OrganizationOf(std::uint32_t asn) const noexcept;

  /// All ASNs whose cluster's canonical name contains the (normalized)
  /// keyword — the paper's "Time Warner" → all Time Warner ASes step.
  std::vector<std::uint32_t> AsesForKeyword(std::string_view keyword) const;

 private:
  struct Cluster {
    std::string canonical;  ///< normalized representative name
    std::vector<std::uint32_t> ases;
  };

  std::vector<Cluster> clusters_;
  std::unordered_map<std::uint32_t, std::size_t> asn_to_cluster_;
};

}  // namespace sleepwalk::asn

#endif  // SLEEPWALK_ASN_ORGS_H_
