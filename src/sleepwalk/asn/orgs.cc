#include "sleepwalk/asn/orgs.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <sstream>

namespace sleepwalk::asn {

namespace {

// Corporate boilerplate that carries no organizational identity.
constexpr std::array<std::string_view, 12> kBoilerplate = {
    "inc", "llc", "ltd", "co", "corp", "corporation",
    "company", "as", "sa", "gmbh", "plc", "the",
};

bool IsBoilerplate(std::string_view token) noexcept {
  return std::find(kBoilerplate.begin(), kBoilerplate.end(), token) !=
         kBoilerplate.end();
}

// Cluster key: the first two significant tokens of the normalized name.
// "time warner cable texas" and "time warner cable ohio" share
// "time warner"; distinct ISPs differ in their leading tokens.
std::string ClusterKey(const std::string& normalized) {
  std::istringstream stream{normalized};
  std::string token;
  std::string key;
  int taken = 0;
  while (taken < 2 && stream >> token) {
    if (!key.empty()) key.push_back(' ');
    key += token;
    ++taken;
  }
  return key;
}

}  // namespace

std::string NormalizeName(std::string_view name) {
  std::string spaced;
  spaced.reserve(name.size());
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      spaced.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else {
      spaced.push_back(' ');
    }
  }
  std::istringstream stream{spaced};
  std::string token;
  std::string out;
  while (stream >> token) {
    if (IsBoilerplate(token)) continue;
    if (!out.empty()) out.push_back(' ');
    out += token;
  }
  return out;
}

OrgClusterer::OrgClusterer(std::span<const AsInfo> infos) {
  std::unordered_map<std::string, std::size_t> key_to_cluster;
  for (const auto& info : infos) {
    const std::string normalized = NormalizeName(info.name);
    const std::string key = ClusterKey(normalized);
    auto [it, inserted] = key_to_cluster.try_emplace(key, clusters_.size());
    if (inserted) {
      clusters_.push_back({key, {}});
    }
    clusters_[it->second].ases.push_back(info.asn);
    asn_to_cluster_.insert_or_assign(info.asn, it->second);
  }
  for (auto& cluster : clusters_) {
    std::sort(cluster.ases.begin(), cluster.ases.end());
  }
}

std::string_view OrgClusterer::OrganizationOf(
    std::uint32_t asn) const noexcept {
  const auto it = asn_to_cluster_.find(asn);
  if (it == asn_to_cluster_.end()) return {};
  return clusters_[it->second].canonical;
}

std::vector<std::uint32_t> OrgClusterer::AsesForKeyword(
    std::string_view keyword) const {
  const std::string needle = NormalizeName(keyword);
  std::vector<std::uint32_t> result;
  if (needle.empty()) return result;
  for (const auto& cluster : clusters_) {
    if (cluster.canonical.find(needle) != std::string::npos) {
      result.insert(result.end(), cluster.ases.begin(), cluster.ases.end());
    }
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

}  // namespace sleepwalk::asn
