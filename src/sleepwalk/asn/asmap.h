// IP-to-ASN mapping (paper §2.3.2, Team Cymru substitute).
//
// "We map each /24 to an AS based on its .0 address ... Their data
//  provides AS numbers and names for 99.41% of /24 blocks."
#ifndef SLEEPWALK_ASN_ASMAP_H_
#define SLEEPWALK_ASN_ASMAP_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "sleepwalk/net/ipv4.h"

namespace sleepwalk::asn {

/// Registered information about one autonomous system.
struct AsInfo {
  std::uint32_t asn = 0;
  std::string name;          ///< WHOIS-style AS name, e.g. "CT-TELECOM-CN".
  std::string country_code;  ///< registration country.
};

/// Block → ASN map with the AS registry attached.
class IpToAsnMap {
 public:
  /// Registers an AS; later registrations with the same number overwrite.
  void RegisterAs(AsInfo info);

  /// Maps a /24 (by its .0 address, as Team Cymru data is keyed) to an AS.
  void Assign(net::Prefix24 block, std::uint32_t asn);

  /// ASN for a block; nullopt for the ~0.6% unmapped blocks.
  std::optional<std::uint32_t> AsnFor(net::Prefix24 block) const noexcept;

  /// Registry record for an ASN; nullptr when unknown.
  const AsInfo* InfoFor(std::uint32_t asn) const noexcept;

  std::size_t mapped_blocks() const noexcept { return block_to_asn_.size(); }
  std::size_t as_count() const noexcept { return as_registry_.size(); }

  const std::unordered_map<std::uint32_t, AsInfo>& registry() const noexcept {
    return as_registry_;
  }

 private:
  std::unordered_map<std::uint32_t, std::uint32_t> block_to_asn_;
  std::unordered_map<std::uint32_t, AsInfo> as_registry_;
};

}  // namespace sleepwalk::asn

#endif  // SLEEPWALK_ASN_ASMAP_H_
