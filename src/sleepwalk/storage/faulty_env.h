// Failpoint-driven storage decorator.
//
// FaultyEnv wraps any Env and consults a util::FailpointSet before
// every operation, under these site names:
//
//   storage.create   storage.append   storage.sync    storage.close
//   storage.rename   storage.link     storage.remove  storage.syncdir
//   storage.read     storage.map
//
// plus the `*` wildcard, whose ordinal counts every operation in
// sequence — the hook the exhaustive crash-point sweep uses: dry-run a
// campaign to count N storage operations, then re-run it N times with
// `*=crash@i` for i = 1..N and prove every recovery.
//
// Action semantics (util/failpoint.h):
//   eio / enospc  the operation does nothing and reports that errno;
//   short         Append writes the first half of the bytes, then
//                 reports ENOSPC (other operations degrade to eio);
//   crash         CrashInjected is thrown BEFORE the operation — the
//                 disk state is exactly "process died between ops";
//   torn          Append writes the first half, then throws — a torn
//                 page; for non-append operations same as crash.
#ifndef SLEEPWALK_STORAGE_FAULTY_ENV_H_
#define SLEEPWALK_STORAGE_FAULTY_ENV_H_

#include <memory>
#include <string>
#include <vector>

#include "sleepwalk/storage/file.h"
#include "sleepwalk/util/failpoint.h"

namespace sleepwalk::storage {

class FaultyEnv final : public Env {
 public:
  FaultyEnv(Env& base, util::FailpointSet& failpoints)
      : base_(base), failpoints_(failpoints) {}

  std::unique_ptr<WritableFile> Create(const std::string& path,
                                       Error& error) override;
  Error ReadAll(const std::string& path,
                std::vector<std::uint8_t>& out) override;
  Error Rename(const std::string& from, const std::string& to) override;
  Error Link(const std::string& from, const std::string& to) override;
  Error Remove(const std::string& path) override;
  bool Exists(const std::string& path) override;
  Error SyncDir(const std::string& dir) override;
  std::vector<std::string> List(const std::string& dir) override;
  Error Map(const std::string& path, MappedRegion& out) override;

  util::FailpointSet& failpoints() noexcept { return failpoints_; }

 private:
  Env& base_;
  util::FailpointSet& failpoints_;
};

}  // namespace sleepwalk::storage

#endif  // SLEEPWALK_STORAGE_FAULTY_ENV_H_
