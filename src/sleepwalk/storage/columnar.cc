#include "sleepwalk/storage/columnar.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <utility>

#include "sleepwalk/net/checksum.h"
#include "sleepwalk/storage/bytes.h"

namespace sleepwalk::storage {

static_assert(std::endian::native == std::endian::little,
              "v3 containers are little-endian on disk and mapped "
              "zero-copy; a big-endian port must byte-swap in As<T>()");

namespace {

constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8 + 4 + 4 + 4;  // 36
constexpr std::size_t kDirEntryBytes = 4 + 4 + 8 + 8 + 8 + 4;    // 36

std::size_t AlignUp(std::size_t value, std::size_t alignment) {
  return (value + alignment - 1) / alignment * alignment;
}

Error Corrupt(const std::string& path, std::string detail) {
  Error error;
  error.op = "columnar";
  error.path = path;
  error.detail = std::move(detail);
  return error;
}

}  // namespace

ColumnarWriter::ColumnarWriter(std::string_view magic, std::uint32_t kind,
                               std::uint64_t fingerprint,
                               std::uint64_t generation)
    : kind_(kind), fingerprint_(fingerprint), generation_(generation) {
  // A short magic is a programming error; fail loudly in debug, pad in
  // release (the reader will refuse the file either way).
  std::memset(magic_, 0, sizeof(magic_));
  std::memcpy(magic_, magic.data(),
              magic.size() < sizeof(magic_) ? magic.size() : sizeof(magic_));
}

void ColumnarWriter::Add(std::uint32_t id, std::uint32_t elem_width,
                         std::span<const std::uint8_t> bytes) {
  Pending pending;
  pending.id = id;
  pending.elem_width = elem_width == 0 ? 1 : elem_width;
  pending.rows = bytes.size() / pending.elem_width;
  pending.owned.assign(bytes.begin(), bytes.end());
  pending.payload = pending.owned;
  columns_.push_back(std::move(pending));
}

void ColumnarWriter::AddBorrowed(std::uint32_t id, std::uint32_t elem_width,
                                 std::span<const std::uint8_t> bytes) {
  Pending pending;
  pending.id = id;
  pending.elem_width = elem_width == 0 ? 1 : elem_width;
  pending.rows = bytes.size() / pending.elem_width;
  pending.payload = bytes;
  columns_.push_back(std::move(pending));
}

std::vector<std::uint8_t> ColumnarWriter::Finish() const {
  // Lay out payload offsets first so the directory can be written in
  // one pass: data region starts at the next page boundary after the
  // directory, each payload cache-line aligned.
  const std::size_t dir_bytes = columns_.size() * kDirEntryBytes + 4;
  const std::size_t data_start =
      AlignUp(kHeaderBytes + dir_bytes, kColumnarPageBytes);
  std::vector<std::uint64_t> offsets(columns_.size());
  std::size_t cursor = data_start;
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    cursor = AlignUp(cursor, kColumnarAlignBytes);
    offsets[i] = cursor;
    cursor += columns_[i].payload.size();
  }

  ByteWriter writer;
  writer.Reserve(cursor);
  writer.PutBytes({magic_, sizeof(magic_)});
  writer.Put<std::uint32_t>(kColumnarVersion);
  writer.Put<std::uint64_t>(fingerprint_);
  writer.Put<std::uint64_t>(generation_);
  writer.Put<std::uint32_t>(kind_);
  writer.Put<std::uint32_t>(static_cast<std::uint32_t>(columns_.size()));
  writer.Put<std::uint32_t>(
      net::Crc32cOf({writer.bytes().data(), writer.size()}));

  const std::size_t dir_start = writer.size();
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    const Pending& column = columns_[i];
    writer.Put<std::uint32_t>(column.id);
    writer.Put<std::uint32_t>(column.elem_width);
    writer.Put<std::uint64_t>(column.rows);
    writer.Put<std::uint64_t>(offsets[i]);
    writer.Put<std::uint64_t>(column.payload.size());
    writer.Put<std::uint32_t>(net::Crc32cOf(column.payload));
  }
  writer.Put<std::uint32_t>(net::Crc32cOf(
      {writer.bytes().data() + dir_start, writer.size() - dir_start}));

  // One pass, no full-image zero-fill: resize() only bridges the
  // padding gaps (page-align after the directory, cache-line gaps
  // between payloads) with zeros; each payload is memcpy'd exactly
  // once. At paper scale the old zero-then-overwrite cost a second
  // full pass over a multi-megabyte image every checkpoint stride.
  std::vector<std::uint8_t> image = writer.Take();
  image.reserve(cursor);
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    image.resize(offsets[i], 0);
    image.insert(image.end(), columns_[i].payload.begin(),
                 columns_[i].payload.end());
  }
  image.resize(cursor, 0);  // zero-columns case: pad to the data start
  return image;
}

Error ColumnarReader::Parse(std::span<const std::uint8_t> file,
                            std::string_view magic, const std::string& path) {
  columns_.clear();
  if (file.size() < kHeaderBytes) {
    return Corrupt(path, "truncated: no room for a v3 header");
  }
  if (magic.size() != 4 || std::memcmp(file.data(), magic.data(), 4) != 0) {
    return Corrupt(path, "bad magic");
  }
  ByteReader reader(file);
  reader.Skip(4);
  std::uint32_t version = 0;
  std::uint32_t n_columns = 0;
  std::uint32_t header_crc = 0;
  reader.Get(version);
  reader.Get(fingerprint_);
  reader.Get(generation_);
  reader.Get(kind_);
  reader.Get(n_columns);
  reader.Get(header_crc);
  if (version != kColumnarVersion) {
    std::string detail;
    if (version >= 1 && version < kColumnarVersion) {
      detail = "v";
      detail += std::to_string(version);
      detail +=
          " container refused: this is the v3 columnar reader; decode "
          "with the v";
      detail += std::to_string(version);
      detail +=
          " row format instead (or re-write the file with "
          "checkpoint_format=3)";
    } else {
      detail = "unsupported version ";
      detail += std::to_string(version);
    }
    return Corrupt(path, std::move(detail));
  }
  if (net::Crc32cOf(file.first(kHeaderBytes - 4)) != header_crc) {
    return Corrupt(path, "header crc mismatch");
  }

  const std::size_t dir_bytes =
      static_cast<std::size_t>(n_columns) * kDirEntryBytes;
  if (file.size() < kHeaderBytes + dir_bytes + 4) {
    return Corrupt(path, "truncated: directory overruns file");
  }
  const auto directory = file.subspan(kHeaderBytes, dir_bytes);
  std::uint32_t dir_crc = 0;
  std::memcpy(&dir_crc, file.data() + kHeaderBytes + dir_bytes, 4);
  if (net::Crc32cOf(directory) != dir_crc) {
    return Corrupt(path, "directory crc mismatch");
  }

  columns_.reserve(n_columns);
  ByteReader entries(directory);
  for (std::uint32_t i = 0; i < n_columns; ++i) {
    std::uint32_t id = 0;
    std::uint32_t elem_width = 0;
    std::uint64_t rows = 0;
    std::uint64_t offset = 0;
    std::uint64_t byte_len = 0;
    std::uint32_t crc = 0;
    entries.Get(id);
    entries.Get(elem_width);
    entries.Get(rows);
    entries.Get(offset);
    entries.Get(byte_len);
    entries.Get(crc);
    const std::string label = "column " + std::to_string(id);
    if (elem_width == 0 || byte_len != rows * elem_width) {
      columns_.clear();
      return Corrupt(path, label + ": rows * width != byte length");
    }
    if (offset % kColumnarAlignBytes != 0) {
      columns_.clear();
      return Corrupt(path, label + ": misaligned column offset " +
                               std::to_string(offset));
    }
    if (offset < kHeaderBytes + dir_bytes + 4 || offset > file.size() ||
        byte_len > file.size() - offset) {
      columns_.clear();
      return Corrupt(path, label + ": truncated: payload overruns file");
    }
    ColumnarColumn column;
    column.id = id;
    column.elem_width = elem_width;
    column.rows = rows;
    column.bytes = file.subspan(offset, byte_len);
    if (net::Crc32cOf(column.bytes) != crc) {
      columns_.clear();
      return Corrupt(path, label + ": column crc mismatch");
    }
    for (const ColumnarColumn& existing : columns_) {
      if (existing.id == id) {
        columns_.clear();
        return Corrupt(path, label + ": duplicate column id");
      }
    }
    columns_.push_back(column);
  }

  // Strictness pass: payloads must not overlap, and every byte outside
  // the header, directory, and payloads must be zero padding ending
  // exactly where the last payload does. CRCs alone would leave padding
  // unprotected; this closes the gap so *any* single-byte corruption of
  // a well-formed file is detected (the contract the v2 robustness
  // tests established and the v3 hostile-input tests keep).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> extents;
  extents.reserve(columns_.size());
  for (const ColumnarColumn& column : columns_) {
    const auto offset = static_cast<std::uint64_t>(
        column.bytes.data() - file.data());
    extents.emplace_back(offset, offset + column.bytes.size());
  }
  std::sort(extents.begin(), extents.end());
  std::uint64_t cursor = kHeaderBytes + dir_bytes + 4;
  for (const auto& [begin, end] : extents) {
    if (begin < cursor) {
      columns_.clear();
      return Corrupt(path, "overlapping column payloads");
    }
    for (std::uint64_t i = cursor; i < begin; ++i) {
      if (file[i] != 0) {
        columns_.clear();
        return Corrupt(path, "nonzero padding byte at offset " +
                                 std::to_string(i));
      }
    }
    cursor = end;
  }
  const std::uint64_t expected_end =
      extents.empty()
          ? AlignUp(kHeaderBytes + dir_bytes + 4, kColumnarPageBytes)
          : extents.back().second;
  if (file.size() > expected_end) {
    for (std::uint64_t i = cursor; i < file.size(); ++i) {
      if (file[i] != 0) {
        columns_.clear();
        return Corrupt(path, "nonzero padding byte at offset " +
                                 std::to_string(i));
      }
    }
    columns_.clear();
    return Corrupt(path, "trailing bytes after last column");
  }
  if (file.size() < expected_end) {
    // Only reachable with zero columns (payload bounds were checked);
    // an empty container is still padded to the page boundary.
    columns_.clear();
    return Corrupt(path, "truncated: data region short of page boundary");
  }
  return {};
}

const ColumnarColumn* ColumnarReader::Find(std::uint32_t id) const noexcept {
  for (const ColumnarColumn& column : columns_) {
    if (column.id == id) return &column;
  }
  return nullptr;
}

std::optional<std::uint32_t> PeekContainerVersion(
    std::span<const std::uint8_t> file, std::string_view magic) noexcept {
  if (file.size() < 8 || magic.size() != 4) return std::nullopt;
  if (std::memcmp(file.data(), magic.data(), 4) != 0) return std::nullopt;
  std::uint32_t version = 0;
  std::memcpy(&version, file.data() + 4, 4);
  return version;
}

}  // namespace sleepwalk::storage
