// InstrumentedEnv: a storage::Env decorator that counts every VFS
// operation into an obs::Context.
//
// The decorator is exactly pass-through — same return values, same
// exceptions (a FaultyEnv's CrashInjected unwinds straight through), no
// extra Env calls — so wrapping changes no persisted byte and no
// failpoint ordinal. The supervisor and the parallel executor wrap the
// checkpoint store's env with this, which makes the op/byte counters a
// live census of checkpoint I/O (the PR 6 durability-tax story, now
// observable on a running campaign).
//
// Determinism: operation and byte counters are pure functions of the
// storage op sequence, which is deterministic for same-seed runs, so
// they are safe in the campaign registry. Latency histograms need a
// wall clock; the clock is *injected* (`NowNsFn`) so this layer stays
// clock-free under sleeplint, and callers only supply one for
// non-deterministic runs — without it no latency instrument is even
// created, keeping deterministic exposition byte-stable.
#ifndef SLEEPWALK_STORAGE_INSTRUMENTED_ENV_H_
#define SLEEPWALK_STORAGE_INSTRUMENTED_ENV_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sleepwalk/obs/context.h"
#include "sleepwalk/storage/file.h"

namespace sleepwalk::storage {

/// The decorator. Inner env must outlive it. Thread-safe to the same
/// degree as the inner env (instruments are atomic / internally locked).
class InstrumentedEnv final : public Env {
 public:
  /// Monotonic nanoseconds; empty = no latency histograms.
  using NowNsFn = std::function<std::uint64_t()>;

  InstrumentedEnv(Env& inner, const obs::Context& context,
                  NowNsFn now_ns = {});

  std::unique_ptr<WritableFile> Create(const std::string& path,
                                       Error& error) override;
  Error ReadAll(const std::string& path,
                std::vector<std::uint8_t>& out) override;
  Error Rename(const std::string& from, const std::string& to) override;
  Error Link(const std::string& from, const std::string& to) override;
  Error Remove(const std::string& path) override;
  bool Exists(const std::string& path) override;
  Error SyncDir(const std::string& dir) override;
  std::vector<std::string> List(const std::string& dir) override;
  Error Map(const std::string& path, MappedRegion& out) override;

 private:
  friend class InstrumentedFile;

  void NoteError(const Error& error) noexcept {
    if (!error.ok() && errors_ != nullptr) errors_->Inc();
  }

  Env& inner_;
  NowNsFn now_ns_;
  obs::Counter* creates_ = nullptr;
  obs::Counter* appends_ = nullptr;
  obs::Counter* syncs_ = nullptr;
  obs::Counter* reads_ = nullptr;
  obs::Counter* maps_ = nullptr;
  obs::Counter* renames_ = nullptr;
  obs::Counter* links_ = nullptr;
  obs::Counter* removes_ = nullptr;
  obs::Counter* dir_syncs_ = nullptr;
  obs::Counter* bytes_written_ = nullptr;
  obs::Counter* bytes_read_ = nullptr;
  obs::Counter* errors_ = nullptr;
  obs::Histogram* sync_seconds_ = nullptr;  ///< fsync latency
};

}  // namespace sleepwalk::storage

#endif  // SLEEPWALK_STORAGE_INSTRUMENTED_ENV_H_
