#include "sleepwalk/storage/file.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <map>
#include <utility>

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "sleepwalk/util/sync.h"

namespace sleepwalk::storage {

namespace {

Error Fail(const char* op, const std::string& path, int err,
           std::string detail = {}) {
  Error error;
  error.op = op;
  error.path = path;
  error.err = err;
  error.detail = std::move(detail);
  return error;
}

/// POSIX file with explicit fsync. All writes go straight to the fd —
/// no user-space buffer to lose.
class RealFile final : public WritableFile {
 public:
  RealFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~RealFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Error Append(std::span<const std::uint8_t> data) override {
    if (fd_ < 0) return Fail("append", path_, EBADF, "file closed");
    std::size_t done = 0;
    while (done < data.size()) {
      const ssize_t n =
          ::write(fd_, data.data() + done, data.size() - done);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Fail("append", path_, errno);
      }
      done += static_cast<std::size_t>(n);
    }
    return {};
  }

  Error Sync() override {
    if (fd_ < 0) return Fail("sync", path_, EBADF, "file closed");
    if (::fsync(fd_) != 0) return Fail("sync", path_, errno);
    return {};
  }

  Error Close() override {
    if (fd_ < 0) return {};
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return Fail("close", path_, errno);
    return {};
  }

 private:
  int fd_;
  std::string path_;
};

class RealEnv final : public Env {
 public:
  std::unique_ptr<WritableFile> Create(const std::string& path,
                                       Error& error) override {
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
      error = Fail("create", path, errno);
      return nullptr;
    }
    error = {};
    return std::make_unique<RealFile>(fd, path);
  }

  Error ReadAll(const std::string& path,
                std::vector<std::uint8_t>& out) override {
    out.clear();
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Fail("read", path, errno);
    std::uint8_t buffer[1 << 16];
    while (true) {
      const ssize_t n = ::read(fd, buffer, sizeof(buffer));
      if (n < 0) {
        if (errno == EINTR) continue;
        const int err = errno;
        ::close(fd);
        return Fail("read", path, err);
      }
      if (n == 0) break;
      out.insert(out.end(), buffer, buffer + n);
    }
    ::close(fd);
    return {};
  }

  Error Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Fail("rename", from, errno, "to " + to);
    }
    return {};
  }

  Error Link(const std::string& from, const std::string& to) override {
    if (::link(from.c_str(), to.c_str()) == 0) return {};
    if (errno == EEXIST) return Fail("link", from, EEXIST, "to " + to);
    // Cross-device or no-hardlink filesystems: degrade to a copy.
    std::vector<std::uint8_t> bytes;
    if (auto error = ReadAll(from, bytes); !error.ok()) return error;
    Error error;
    auto file = Create(to, error);
    if (file == nullptr) return error;
    if (error = file->Append(bytes); !error.ok()) return error;
    if (error = file->Sync(); !error.ok()) return error;
    return file->Close();
  }

  Error Remove(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return Fail("remove", path, errno);
    return {};
  }

  bool Exists(const std::string& path) override {
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0;
  }

  Error SyncDir(const std::string& dir) override {
    const int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd < 0) return Fail("syncdir", dir, errno);
    const int rc = ::fsync(fd);
    const int err = errno;
    ::close(fd);
    // Some filesystems refuse directory fsync; the rename before it is
    // still ordered, so treat "unsupported" as best-effort success.
    if (rc != 0 && err != EINVAL && err != ENOTSUP && err != EBADF) {
      return Fail("syncdir", dir, err);
    }
    return {};
  }

  std::vector<std::string> List(const std::string& dir) override {
    std::vector<std::string> names;
    DIR* handle = ::opendir(dir.c_str());
    if (handle == nullptr) return names;
    while (const dirent* entry = ::readdir(handle)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      names.push_back(name);
    }
    ::closedir(handle);
    std::sort(names.begin(), names.end());
    return names;
  }

  Error Map(const std::string& path, MappedRegion& out) override {
    out.Reset();
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Fail("map", path, errno);
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      const int err = errno;
      ::close(fd);
      return Fail("map", path, err, "fstat");
    }
    const auto length = static_cast<std::size_t>(st.st_size);
    if (length == 0) {  // mmap(0) is EINVAL; an empty file maps to empty
      ::close(fd);
      out.AdoptCopy({});
      return {};
    }
    void* base = ::mmap(nullptr, length, PROT_READ, MAP_PRIVATE, fd, 0);
    const int err = errno;
    ::close(fd);  // the mapping keeps the inode alive
    if (base == MAP_FAILED) return Fail("map", path, err, "mmap");
    out.AdoptMapping(base, length);
    return {};
  }
};

}  // namespace

MappedRegion& MappedRegion::operator=(MappedRegion&& other) noexcept {
  if (this == &other) return *this;
  Reset();
  data_ = other.data_;
  size_ = other.size_;
  map_base_ = other.map_base_;
  map_length_ = other.map_length_;
  owned_ = std::move(other.owned_);
  other.data_ = nullptr;
  other.size_ = 0;
  other.map_base_ = nullptr;
  other.map_length_ = 0;
  other.owned_.clear();
  return *this;
}

void MappedRegion::Reset() noexcept {
  if (map_base_ != nullptr) ::munmap(map_base_, map_length_);
  map_base_ = nullptr;
  map_length_ = 0;
  owned_.clear();
  data_ = nullptr;
  size_ = 0;
}

void MappedRegion::AdoptMapping(void* base, std::size_t length) noexcept {
  Reset();
  map_base_ = base;
  map_length_ = length;
  data_ = static_cast<const std::uint8_t*>(base);
  size_ = length;
}

void MappedRegion::AdoptCopy(std::vector<std::uint8_t> bytes) noexcept {
  Reset();
  owned_ = std::move(bytes);
  data_ = owned_.data();
  size_ = owned_.size();
}

Error Env::Map(const std::string& path, MappedRegion& out) {
  out.Reset();
  std::vector<std::uint8_t> bytes;
  if (auto error = ReadAll(path, bytes); !error.ok()) {
    error.op = "map";  // callers see one op name whatever the transport
    return error;
  }
  out.AdoptCopy(std::move(bytes));
  return {};
}

std::string Error::ToString() const {
  if (ok()) return "ok";
  std::string text = op + " " + path + ": ";
  text += err != 0 ? std::strerror(err) : "error";
  if (!detail.empty()) text += " (" + detail + ")";
  return text;
}

Env& RealEnvInstance() {
  static RealEnv env;
  return env;
}

// ---------------------------------------------------------------------------
// MemEnv

struct MemEnv::Impl {
  util::Mutex mutex;
  std::map<std::string, std::vector<std::uint8_t>> files
      SLEEPWALK_GUARDED_BY(mutex);
};

namespace {

/// Buffers writes, publishing into the Impl map on Close (Sync is a
/// no-op publish too, so a crash between Sync and Close loses nothing —
/// mirroring the durability point RealFile::Sync establishes).
class MemFile final : public WritableFile {
 public:
  MemFile(MemEnv::Impl* impl, std::string path)
      : impl_(impl), path_(std::move(path)) {
    Publish();  // Create truncates immediately, like O_TRUNC
  }

  Error Append(std::span<const std::uint8_t> data) override {
    if (closed_) return Fail("append", path_, EBADF, "file closed");
    bytes_.insert(bytes_.end(), data.begin(), data.end());
    dirty_ = true;
    Publish();
    return {};
  }

  Error Sync() override {
    if (closed_) return Fail("sync", path_, EBADF, "file closed");
    Publish();
    return {};
  }

  Error Close() override {
    if (closed_) return {};
    closed_ = true;
    Publish();
    return {};
  }

 private:
  void Publish() {
    // Re-copying an unchanged buffer on Sync/Close would double or
    // quadruple the bytes moved per checkpoint at paper scale; the
    // published state is identical either way, so crash-point semantics
    // (FaultyEnv kills between ops, never mid-copy) are unaffected.
    if (!dirty_) return;
    dirty_ = false;
    util::MutexLock lock{impl_->mutex};
    impl_->files[path_] = bytes_;
  }

  MemEnv::Impl* impl_;
  std::string path_;
  std::vector<std::uint8_t> bytes_;
  bool dirty_ = true;  // Create truncates: the first Publish must land
  bool closed_ = false;
};

}  // namespace

MemEnv::MemEnv() : impl_(std::make_unique<Impl>()) {}
MemEnv::~MemEnv() = default;

std::unique_ptr<WritableFile> MemEnv::Create(const std::string& path,
                                             Error& error) {
  error = {};
  return std::make_unique<MemFile>(impl_.get(), path);
}

Error MemEnv::ReadAll(const std::string& path,
                      std::vector<std::uint8_t>& out) {
  util::MutexLock lock{impl_->mutex};
  const auto it = impl_->files.find(path);
  if (it == impl_->files.end()) return Fail("read", path, ENOENT);
  out = it->second;
  return {};
}

Error MemEnv::Rename(const std::string& from, const std::string& to) {
  util::MutexLock lock{impl_->mutex};
  const auto it = impl_->files.find(from);
  if (it == impl_->files.end()) return Fail("rename", from, ENOENT);
  impl_->files[to] = std::move(it->second);
  impl_->files.erase(it);
  return {};
}

Error MemEnv::Link(const std::string& from, const std::string& to) {
  util::MutexLock lock{impl_->mutex};
  const auto it = impl_->files.find(from);
  if (it == impl_->files.end()) return Fail("link", from, ENOENT);
  if (impl_->files.count(to) != 0) {
    return Fail("link", from, EEXIST, "to " + to);
  }
  impl_->files[to] = it->second;
  return {};
}

Error MemEnv::Remove(const std::string& path) {
  util::MutexLock lock{impl_->mutex};
  if (impl_->files.erase(path) == 0) return Fail("remove", path, ENOENT);
  return {};
}

bool MemEnv::Exists(const std::string& path) {
  util::MutexLock lock{impl_->mutex};
  return impl_->files.count(path) != 0;
}

Error MemEnv::SyncDir(const std::string&) { return {}; }

std::vector<std::string> MemEnv::List(const std::string& dir) {
  std::vector<std::string> names;
  const std::string prefix = dir == "." ? "" : dir + "/";
  util::MutexLock lock{impl_->mutex};
  for (const auto& [path, bytes] : impl_->files) {
    if (path.compare(0, prefix.size(), prefix) != 0) continue;
    const std::string rest = path.substr(prefix.size());
    if (rest.empty() || rest.find('/') != std::string::npos) continue;
    names.push_back(rest);  // map iteration is already sorted
  }
  return names;
}

// ---------------------------------------------------------------------------

std::string DirName(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Error AtomicWrite(Env& env, const std::string& path,
                  std::span<const std::uint8_t> bytes) {
  const std::string tmp = path + ".tmp";
  Error error;
  auto file = env.Create(tmp, error);
  if (file == nullptr) return error;

  // Unlink the temp file on every error exit — the .tmp-leak fix: the
  // old writer returned early and left the orphan behind.
  const auto fail = [&](Error failed) {
    file->Close();  // best effort; the original error wins
    env.Remove(tmp);
    return failed;
  };

  if (error = file->Append(bytes); !error.ok()) return fail(error);
  if (error = file->Sync(); !error.ok()) return fail(error);
  if (error = file->Close(); !error.ok()) return fail(error);
  if (error = env.Rename(tmp, path); !error.ok()) return fail(error);
  return env.SyncDir(DirName(path));
}

}  // namespace sleepwalk::storage
