// Page-aligned columnar container: the SLCK/SLPW v3 on-disk engine.
//
// v2 frames row-oriented sections (storage/bytes.h streams, one record
// at a time); loading a million-block checkpoint through it costs a
// full decode pass before the first block is usable. v3 keeps the same
// trust discipline — magic, version, CRC32C over every payload — but
// lays the state out as fixed-width columns so a reader can hand out
// *typed spans straight into the mapped file* (storage::Env::Map) and
// the block store (core/block_store.h) can adopt them with one memcpy
// per column instead of one decode per field per row.
//
// File layout (all integers little-endian, like v2):
//
//   header  (36 bytes)
//     0   magic[4]        caller-supplied ("SLCK", "SLPW")
//     4   u32 version     == 3
//     8   u64 fingerprint campaign/config identity (caller semantics)
//     16  u64 generation  monotone snapshot counter
//     24  u32 kind        caller-defined payload discriminator
//     28  u32 n_columns
//     32  u32 header_crc  CRC32C of bytes [0, 32)
//   directory  (n_columns x 36 bytes, then u32 directory_crc)
//     u32 id | u32 elem_width | u64 rows | u64 offset | u64 byte_len
//     | u32 column_crc
//   zero padding to the 4096-byte data region boundary
//   column payloads, each offset 64-byte aligned, zero padding between
//
// The reader validates *everything* before exposing a byte: magic,
// version (a v2 file is refused with a distinct remediation message,
// not parsed as garbage), header CRC, directory CRC, and per column
// that byte_len == rows * elem_width, the offset is aligned and inside
// the file, and the payload CRC matches. Hostile inputs fail closed
// with an Error naming the first violated invariant.
#ifndef SLEEPWALK_STORAGE_COLUMNAR_H_
#define SLEEPWALK_STORAGE_COLUMNAR_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <type_traits>
#include <vector>

#include "sleepwalk/storage/file.h"

namespace sleepwalk::storage {

/// The shared SLCK/SLPW v3 container version.
inline constexpr std::uint32_t kColumnarVersion = 3;
/// Data region starts on a page boundary (mmap-friendly).
inline constexpr std::size_t kColumnarPageBytes = 4096;
/// Every column payload starts on a cache-line boundary; also the
/// alignment contract typed zero-copy views rely on.
inline constexpr std::size_t kColumnarAlignBytes = 64;

/// Assembles a v3 container image in memory; storage::AtomicWrite (or a
/// CheckpointStore) moves the finished buffer to disk. Column ids are
/// caller-defined and must be unique; insertion order is preserved.
class ColumnarWriter {
 public:
  /// `magic` must be exactly 4 bytes.
  ColumnarWriter(std::string_view magic, std::uint32_t kind,
                 std::uint64_t fingerprint, std::uint64_t generation);

  /// Adds a raw column. `bytes.size()` must be a multiple of
  /// `elem_width` (elem_width >= 1); rows = size / width.
  void Add(std::uint32_t id, std::uint32_t elem_width,
           std::span<const std::uint8_t> bytes);

  /// Like Add, but borrows `bytes` instead of copying: the caller
  /// guarantees the span outlives every Finish(). The paper-scale
  /// encode path — megabytes of arena columns per snapshot — uses this
  /// to skip a full defensive pass over the payload.
  void AddBorrowed(std::uint32_t id, std::uint32_t elem_width,
                   std::span<const std::uint8_t> bytes);

  /// Adds a column of scalars (the fixed-width fast path).
  template <typename T>
  void AddTyped(std::uint32_t id, std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "columns hold plain scalar types");
    Add(id, sizeof(T),
        {reinterpret_cast<const std::uint8_t*>(values.data()),
         values.size_bytes()});
  }

  /// AddTyped over a borrowed span (see AddBorrowed for the lifetime
  /// contract).
  template <typename T>
  void AddTypedBorrowed(std::uint32_t id, std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "columns hold plain scalar types");
    AddBorrowed(id, sizeof(T),
                {reinterpret_cast<const std::uint8_t*>(values.data()),
                 values.size_bytes()});
  }

  /// Assembles the final file image: header, CRC'd directory, padded
  /// page-aligned payloads. The writer may be reused after (columns
  /// stay; call again after more Add()s for a superset image).
  std::vector<std::uint8_t> Finish() const;

 private:
  struct Pending {
    std::uint32_t id;
    std::uint32_t elem_width;
    std::uint64_t rows;
    std::vector<std::uint8_t> owned;        // empty when borrowed
    std::span<const std::uint8_t> payload;  // into `owned` or borrowed
  };

  std::uint8_t magic_[4];
  std::uint32_t kind_;
  std::uint64_t fingerprint_;
  std::uint64_t generation_;
  std::vector<Pending> columns_;
};

/// A validated view of one column inside a parsed container. `bytes`
/// points into the caller's buffer/mapping (zero-copy).
struct ColumnarColumn {
  std::uint32_t id = 0;
  std::uint32_t elem_width = 0;
  std::uint64_t rows = 0;
  std::span<const std::uint8_t> bytes;

  /// Typed zero-copy view; empty span when the element width or the
  /// pointer alignment does not match T (callers must check rows).
  template <typename T>
  std::span<const T> As() const noexcept {
    static_assert(std::is_trivially_copyable_v<T>,
                  "columns hold plain scalar types");
    if (elem_width != sizeof(T)) return {};
    if (reinterpret_cast<std::uintptr_t>(bytes.data()) % alignof(T) != 0) {
      return {};
    }
    return {reinterpret_cast<const T*>(bytes.data()),
            static_cast<std::size_t>(rows)};
  }
};

/// Parses + validates a v3 container over a caller-owned byte range
/// (typically a MappedRegion's bytes; the range must outlive the
/// reader and every span it hands out).
class ColumnarReader {
 public:
  /// Full validation pass; on failure the reader is empty and the
  /// Error's detail names the violated invariant ("bad magic",
  /// "truncated", "misaligned column offset", "column crc mismatch",
  /// "v2 container refused", ...). `path` only labels errors.
  Error Parse(std::span<const std::uint8_t> file, std::string_view magic,
              const std::string& path = "<memory>");

  std::uint32_t kind() const noexcept { return kind_; }
  std::uint64_t fingerprint() const noexcept { return fingerprint_; }
  std::uint64_t generation() const noexcept { return generation_; }

  const std::vector<ColumnarColumn>& columns() const noexcept {
    return columns_;
  }
  /// Lookup by id; null when absent.
  const ColumnarColumn* Find(std::uint32_t id) const noexcept;

  /// Typed column fetch with a row-count demand — the decode-side
  /// workhorse: fails closed when the column is missing, mis-typed,
  /// misaligned, or the wrong length.
  template <typename T>
  bool FetchTyped(std::uint32_t id, std::uint64_t rows,
                  std::span<const T>& out) const noexcept {
    const ColumnarColumn* column = Find(id);
    if (column == nullptr || column->rows != rows) return false;
    out = column->As<T>();
    return out.size() == rows;
  }

 private:
  std::uint32_t kind_ = 0;
  std::uint64_t fingerprint_ = 0;
  std::uint64_t generation_ = 0;
  std::vector<ColumnarColumn> columns_;
};

/// Sniffs the container version at bytes [4, 8) when `file` starts with
/// `magic` (shared by the v2 and v3 headers, so format dispatch and
/// slck_fsck use this before committing to a decoder). nullopt when the
/// file is too short or the magic differs.
std::optional<std::uint32_t> PeekContainerVersion(
    std::span<const std::uint8_t> file, std::string_view magic) noexcept;

}  // namespace sleepwalk::storage

#endif  // SLEEPWALK_STORAGE_COLUMNAR_H_
