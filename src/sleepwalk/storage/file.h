// Crash-safe storage seam.
//
// Every byte the measurement system persists — checkpoints, datasets,
// flushed telemetry — goes through this Env abstraction instead of raw
// iostream/POSIX calls (sleeplint's `no-raw-fs` rule bans those outside
// storage/). Three implementations share one contract:
//
//   * RealEnv — POSIX files with the full durability discipline:
//     write → fsync(file) → close → rename → fsync(directory). An
//     interrupted AtomicWrite leaves the previous file intact, never a
//     half-written one (O_TMPFILE-free, portable to any POSIX fs).
//   * MemEnv — an in-process filesystem for tests and benches; same
//     semantics, no disk.
//   * FaultyEnv (storage/faulty_env.h) — decorates either with
//     util/failpoint.h sites, so crash/ENOSPC/short-write behaviour is
//     provable rather than assumed.
//
// Errors carry (operation, path, errno): a campaign that loses its disk
// reports *which* syscall on *which* file said what, instead of a bare
// `false`.
#ifndef SLEEPWALK_STORAGE_FILE_H_
#define SLEEPWALK_STORAGE_FILE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace sleepwalk::storage {

/// Outcome of a storage operation. Default-constructed == success.
struct Error {
  std::string op;      ///< failing operation ("append", "rename", ...)
  std::string path;    ///< file the operation targeted
  int err = 0;         ///< errno when the OS supplied one
  std::string detail;  ///< extra context ("short write (3/6 bytes)")

  bool ok() const noexcept { return op.empty(); }
  /// "append /tmp/x.slck: Input/output error (short write)"
  std::string ToString() const;
};

/// A read-only view of a whole file, either zero-copy (mmap, RealEnv)
/// or an owned heap copy (the portable fallback every other Env uses).
/// Movable, not copyable; unmaps/frees on destruction. The bytes are
/// immutable and stay valid for the region's lifetime — columnar
/// readers (storage/columnar.h) hand out typed spans into them.
class MappedRegion {
 public:
  MappedRegion() = default;
  ~MappedRegion() { Reset(); }
  MappedRegion(MappedRegion&& other) noexcept { *this = std::move(other); }
  MappedRegion& operator=(MappedRegion&& other) noexcept;
  MappedRegion(const MappedRegion&) = delete;
  MappedRegion& operator=(const MappedRegion&) = delete;

  std::span<const std::uint8_t> bytes() const noexcept {
    return {data_, size_};
  }
  std::size_t size() const noexcept { return size_; }
  /// True when the bytes are a live mmap rather than a heap copy.
  bool zero_copy() const noexcept { return map_base_ != nullptr; }

  /// Releases the mapping / copy; bytes() becomes empty.
  void Reset() noexcept;

  /// Takes ownership of an existing mmap (munmap'd on Reset).
  void AdoptMapping(void* base, std::size_t length) noexcept;
  /// Takes ownership of a heap copy (the ReadAll fallback).
  void AdoptCopy(std::vector<std::uint8_t> bytes) noexcept;

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  void* map_base_ = nullptr;  ///< munmap target; null for copies
  std::size_t map_length_ = 0;
  std::vector<std::uint8_t> owned_;
};

/// An open file being written sequentially.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Error Append(std::span<const std::uint8_t> data) = 0;
  /// Flushes buffered bytes to stable storage (fsync for RealEnv).
  virtual Error Sync() = 0;
  /// Closes the descriptor; further calls are invalid. Idempotent.
  virtual Error Close() = 0;
};

/// The filesystem seam. All paths are plain strings; directories are
/// never created implicitly.
class Env {
 public:
  virtual ~Env() = default;

  /// Creates (truncating) `path` for writing.
  virtual std::unique_ptr<WritableFile> Create(const std::string& path,
                                               Error& error) = 0;
  /// Reads the whole file into `out` (replaced, not appended).
  virtual Error ReadAll(const std::string& path,
                        std::vector<std::uint8_t>& out) = 0;
  /// Atomically replaces `to` with `from` (POSIX rename semantics).
  virtual Error Rename(const std::string& from, const std::string& to) = 0;
  /// Makes `to` refer to `from`'s current bytes (hard link where the
  /// filesystem supports it, a copy otherwise). Fails if `to` exists.
  virtual Error Link(const std::string& from, const std::string& to) = 0;
  virtual Error Remove(const std::string& path) = 0;
  virtual bool Exists(const std::string& path) = 0;
  /// Durably commits a directory's entry table (fsync of the directory
  /// fd; a no-op where the concept does not apply).
  virtual Error SyncDir(const std::string& dir) = 0;
  /// Names (not paths) of the directory's entries, sorted.
  virtual std::vector<std::string> List(const std::string& dir) = 0;

  /// Maps the whole file read-only into `out`. RealEnv overrides this
  /// with a true zero-copy mmap; the base implementation (MemEnv and
  /// any decorator's inner fallback) degrades to ReadAll + an owned
  /// copy, so every Env satisfies the same contract and callers never
  /// branch on capability. The region's bytes reflect the file at call
  /// time; concurrent rewrites of the same *path* are safe because
  /// AtomicWrite replaces via rename and the old inode stays alive
  /// under the mapping.
  virtual Error Map(const std::string& path, MappedRegion& out);
};

/// The process-wide POSIX environment.
Env& RealEnvInstance();

/// In-memory Env for tests and benches: full paths as keys, rename and
/// link with POSIX semantics, SyncDir a no-op. Thread-safe.
class MemEnv final : public Env {
 public:
  MemEnv();
  ~MemEnv() override;

  std::unique_ptr<WritableFile> Create(const std::string& path,
                                       Error& error) override;
  Error ReadAll(const std::string& path,
                std::vector<std::uint8_t>& out) override;
  Error Rename(const std::string& from, const std::string& to) override;
  Error Link(const std::string& from, const std::string& to) override;
  Error Remove(const std::string& path) override;
  bool Exists(const std::string& path) override;
  Error SyncDir(const std::string& dir) override;
  std::vector<std::string> List(const std::string& dir) override;

  struct Impl;  // public so the file handle implementation can reach it

 private:
  std::unique_ptr<Impl> impl_;
};

/// Everything up to the last '/', or "." for a bare filename.
std::string DirName(const std::string& path);

/// Durable atomic replacement of `path` with `bytes`:
///   create path.tmp → append → sync → close → rename → sync(dir).
/// On ANY failure the temp file is removed and the previous `path`
/// content is untouched; the returned Error names the failing step and
/// carries its errno (the .tmp-leak fix over the old checkpoint
/// writer). A CrashInjected from a faulty env propagates — that is the
/// simulated power cut, and the temp file deliberately stays behind
/// exactly as a real crash would leave it.
Error AtomicWrite(Env& env, const std::string& path,
                  std::span<const std::uint8_t> bytes);

}  // namespace sleepwalk::storage

#endif  // SLEEPWALK_STORAGE_FILE_H_
