// Little-endian byte-buffer codec for the persistence formats.
//
// The SLCK/SLPW writers used to stream fields straight into an
// ofstream; that couples serialization to the filesystem and makes
// per-section checksums impossible (you cannot CRC bytes you have
// already flushed). ByteWriter/ByteReader split the concerns: encode
// and decode are pure in-memory transforms, and storage/file.h moves
// the finished buffer atomically. A reader never reads past its span —
// a truncated or hostile file fails closed instead of resizing vectors
// from garbage lengths.
//
// Host is little-endian on every supported target (documented in
// core/dataset.h since v1); a portable build would byte-swap here.
#ifndef SLEEPWALK_STORAGE_BYTES_H_
#define SLEEPWALK_STORAGE_BYTES_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

namespace sleepwalk::storage {

class ByteWriter {
 public:
  template <typename T>
  void Put(T value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Put() serializes plain scalar types");
    // Pointer-range insert, not resize+memcpy: identical codegen, but
    // the resize path's value-init trips GCC 12 -Wstringop-overflow
    // false positives when inlined into large encoders at -O3.
    const auto* raw = reinterpret_cast<const std::uint8_t*>(&value);
    buffer_.insert(buffer_.end(), raw, raw + sizeof(value));
  }

  void PutBytes(std::span<const std::uint8_t> data) {
    buffer_.insert(buffer_.end(), data.begin(), data.end());
  }

  /// Whole scalar array in one memcpy. Per-sample Put() calls dominated
  /// checkpoint encode cost for long availability series; the layout is
  /// identical (host is little-endian, see header comment).
  template <typename T>
  void PutArray(std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "PutArray() serializes plain scalar types");
    const auto offset = buffer_.size();
    buffer_.resize(offset + values.size_bytes());
    std::memcpy(buffer_.data() + offset, values.data(), values.size_bytes());
  }

  /// Pre-sizes the buffer (capacity only). Encoders that know their
  /// rough output size avoid the geometric-regrowth copies that
  /// otherwise dominate multi-megabyte checkpoint assembly.
  void Reserve(std::size_t n) { buffer_.reserve(n); }

  std::size_t size() const noexcept { return buffer_.size(); }
  const std::vector<std::uint8_t>& bytes() const noexcept { return buffer_; }
  std::vector<std::uint8_t> Take() { return std::move(buffer_); }

 private:
  std::vector<std::uint8_t> buffer_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  template <typename T>
  bool Get(T& value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Get() deserializes plain scalar types");
    if (data_.size() - pos_ < sizeof(value)) {
      pos_ = data_.size();
      failed_ = true;
      return false;
    }
    std::memcpy(&value, data_.data() + pos_, sizeof(value));
    pos_ += sizeof(value);
    return true;
  }

  bool GetBytes(std::uint8_t* out, std::size_t n) {
    if (data_.size() - pos_ < n) {
      pos_ = data_.size();
      failed_ = true;
      return false;
    }
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  /// Whole scalar array in one memcpy (bulk counterpart of Get()).
  /// Fails closed without consuming when fewer than `count` elements
  /// remain, exactly like an element-wise Get() loop would.
  template <typename T>
  bool GetArray(T* out, std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "GetArray() deserializes plain scalar types");
    if ((data_.size() - pos_) / sizeof(T) < count) {
      pos_ = data_.size();
      failed_ = true;
      return false;
    }
    std::memcpy(out, data_.data() + pos_, count * sizeof(T));
    pos_ += count * sizeof(T);
    return true;
  }

  /// Remaining bytes as a subspan (without consuming them).
  std::span<const std::uint8_t> Rest() const noexcept {
    return data_.subspan(pos_);
  }

  bool Skip(std::size_t n) {
    if (data_.size() - pos_ < n) {
      pos_ = data_.size();
      failed_ = true;
      return false;
    }
    pos_ += n;
    return true;
  }

  std::size_t position() const noexcept { return pos_; }
  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool ok() const noexcept { return !failed_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace sleepwalk::storage

#endif  // SLEEPWALK_STORAGE_BYTES_H_
