#include "sleepwalk/storage/instrumented_env.h"

#include <utility>

namespace sleepwalk::storage {

namespace {

/// Latency buckets: 10µs to 5s, log-spaced — covers MemEnv noise through
/// a slow spinning disk's fsync.
const std::vector<double> kLatencyBounds{1e-5, 1e-4, 1e-3, 1e-2,
                                         0.1,  0.5,  1.0,  5.0};

}  // namespace

/// Decorated write handle: counts appends/bytes/syncs, measures fsync
/// latency when a clock was injected. Errors and exceptions pass
/// through untouched.
class InstrumentedFile final : public WritableFile {
 public:
  InstrumentedFile(std::unique_ptr<WritableFile> inner, InstrumentedEnv& env)
      : inner_(std::move(inner)), env_(env) {}

  Error Append(std::span<const std::uint8_t> data) override {
    if (env_.appends_ != nullptr) env_.appends_->Inc();
    const Error error = inner_->Append(data);
    if (error.ok() && env_.bytes_written_ != nullptr) {
      env_.bytes_written_->Inc(static_cast<double>(data.size()));
    }
    env_.NoteError(error);
    return error;
  }

  Error Sync() override {
    if (env_.syncs_ != nullptr) env_.syncs_->Inc();
    const std::uint64_t start = env_.now_ns_ ? env_.now_ns_() : 0;
    const Error error = inner_->Sync();
    if (env_.now_ns_ && env_.sync_seconds_ != nullptr) {
      env_.sync_seconds_->Observe(
          static_cast<double>(env_.now_ns_() - start) * 1e-9);
    }
    env_.NoteError(error);
    return error;
  }

  Error Close() override {
    const Error error = inner_->Close();
    env_.NoteError(error);
    return error;
  }

 private:
  std::unique_ptr<WritableFile> inner_;
  InstrumentedEnv& env_;
};

InstrumentedEnv::InstrumentedEnv(Env& inner, const obs::Context& context,
                                 NowNsFn now_ns)
    : inner_(inner), now_ns_(std::move(now_ns)) {
  creates_ = context.CounterOrNull("storage_creates_total",
                                   "files opened for writing");
  appends_ = context.CounterOrNull("storage_appends_total",
                                   "WritableFile::Append calls");
  syncs_ = context.CounterOrNull("storage_syncs_total", "file fsyncs");
  reads_ = context.CounterOrNull("storage_reads_total", "whole-file reads");
  maps_ = context.CounterOrNull("storage_maps_total",
                                "whole-file read-only mappings");
  renames_ = context.CounterOrNull("storage_renames_total",
                                   "atomic rename commits");
  links_ = context.CounterOrNull("storage_links_total",
                                 "generation hard links");
  removes_ = context.CounterOrNull("storage_removes_total", "file removals");
  dir_syncs_ = context.CounterOrNull("storage_dir_syncs_total",
                                     "directory fsyncs");
  bytes_written_ = context.CounterOrNull("storage_bytes_written_total",
                                         "bytes appended to files");
  bytes_read_ = context.CounterOrNull("storage_bytes_read_total",
                                      "bytes read from files");
  errors_ = context.CounterOrNull("storage_errors_total",
                                  "storage operations that failed");
  // Latency instruments exist only when a clock was injected: a
  // deterministic run creates neither, so its exposition stays a pure
  // function of campaign state.
  if (now_ns_) {
    sync_seconds_ = context.HistogramOrNull(
        "storage_sync_seconds", kLatencyBounds,
        "fsync wall latency (live runs only)");
  }
}

std::unique_ptr<WritableFile> InstrumentedEnv::Create(const std::string& path,
                                                      Error& error) {
  if (creates_ != nullptr) creates_->Inc();
  auto file = inner_.Create(path, error);
  NoteError(error);
  if (file == nullptr) return nullptr;
  return std::make_unique<InstrumentedFile>(std::move(file), *this);
}

Error InstrumentedEnv::ReadAll(const std::string& path,
                               std::vector<std::uint8_t>& out) {
  if (reads_ != nullptr) reads_->Inc();
  const Error error = inner_.ReadAll(path, out);
  if (error.ok() && bytes_read_ != nullptr) {
    bytes_read_->Inc(static_cast<double>(out.size()));
  }
  NoteError(error);
  return error;
}

Error InstrumentedEnv::Rename(const std::string& from, const std::string& to) {
  if (renames_ != nullptr) renames_->Inc();
  const Error error = inner_.Rename(from, to);
  NoteError(error);
  return error;
}

Error InstrumentedEnv::Link(const std::string& from, const std::string& to) {
  if (links_ != nullptr) links_->Inc();
  const Error error = inner_.Link(from, to);
  NoteError(error);
  return error;
}

Error InstrumentedEnv::Remove(const std::string& path) {
  if (removes_ != nullptr) removes_->Inc();
  const Error error = inner_.Remove(path);
  NoteError(error);
  return error;
}

bool InstrumentedEnv::Exists(const std::string& path) {
  return inner_.Exists(path);
}

Error InstrumentedEnv::SyncDir(const std::string& dir) {
  if (dir_syncs_ != nullptr) dir_syncs_->Inc();
  const Error error = inner_.SyncDir(dir);
  NoteError(error);
  return error;
}

std::vector<std::string> InstrumentedEnv::List(const std::string& dir) {
  return inner_.List(dir);
}

Error InstrumentedEnv::Map(const std::string& path, MappedRegion& out) {
  if (maps_ != nullptr) maps_->Inc();
  const Error error = inner_.Map(path, out);
  if (error.ok() && bytes_read_ != nullptr) {
    bytes_read_->Inc(static_cast<double>(out.size()));
  }
  NoteError(error);
  return error;
}

}  // namespace sleepwalk::storage
