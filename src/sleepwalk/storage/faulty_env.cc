#include "sleepwalk/storage/faulty_env.h"

#include <cerrno>
#include <utility>

namespace sleepwalk::storage {

namespace {

using util::CrashInjected;
using util::FailAction;

Error Injected(const char* op, const std::string& path, int err,
               std::string detail = "failpoint") {
  Error error;
  error.op = op;
  error.path = path;
  error.err = err;
  error.detail = std::move(detail);
  return error;
}

/// Evaluates a non-append site: returns an Error to report, throws on
/// crash actions, or returns success (meaning: perform the operation).
Error Consult(util::FailpointSet& failpoints, const std::string& site,
              const char* op, const std::string& path) {
  switch (failpoints.Hit(site)) {
    case FailAction::kNone:
      return {};
    case FailAction::kEio:
    case FailAction::kShortWrite:  // no bytes to tear here
      return Injected(op, path, EIO);
    case FailAction::kEnospc:
      return Injected(op, path, ENOSPC);
    case FailAction::kCrash:
    case FailAction::kCrashTorn:
      throw CrashInjected{site};
  }
  return {};
}

class FaultyFile final : public WritableFile {
 public:
  FaultyFile(std::unique_ptr<WritableFile> base,
             util::FailpointSet& failpoints, std::string path)
      : base_(std::move(base)),
        failpoints_(failpoints),
        path_(std::move(path)) {}

  Error Append(std::span<const std::uint8_t> data) override {
    switch (failpoints_.Hit("storage.append")) {
      case FailAction::kNone:
        break;
      case FailAction::kEio:
        return Injected("append", path_, EIO);
      case FailAction::kEnospc:
        return Injected("append", path_, ENOSPC);
      case FailAction::kShortWrite: {
        const auto half = data.size() / 2;
        base_->Append(data.first(half));
        Error error = Injected("append", path_, ENOSPC);
        error.detail = "short write (" + std::to_string(half) + "/" +
                       std::to_string(data.size()) + " bytes)";
        return error;
      }
      case FailAction::kCrash:
        throw CrashInjected{"storage.append"};
      case FailAction::kCrashTorn:
        base_->Append(data.first(data.size() / 2));
        throw CrashInjected{"storage.append"};
    }
    return base_->Append(data);
  }

  Error Sync() override {
    if (auto error = Consult(failpoints_, "storage.sync", "sync", path_);
        !error.ok()) {
      return error;
    }
    return base_->Sync();
  }

  Error Close() override {
    if (auto error = Consult(failpoints_, "storage.close", "close", path_);
        !error.ok()) {
      return error;
    }
    return base_->Close();
  }

 private:
  std::unique_ptr<WritableFile> base_;
  util::FailpointSet& failpoints_;
  std::string path_;
};

}  // namespace

std::unique_ptr<WritableFile> FaultyEnv::Create(const std::string& path,
                                                Error& error) {
  if (error = Consult(failpoints_, "storage.create", "create", path);
      !error.ok()) {
    return nullptr;
  }
  auto base = base_.Create(path, error);
  if (base == nullptr) return nullptr;
  return std::make_unique<FaultyFile>(std::move(base), failpoints_, path);
}

Error FaultyEnv::ReadAll(const std::string& path,
                         std::vector<std::uint8_t>& out) {
  if (auto error = Consult(failpoints_, "storage.read", "read", path);
      !error.ok()) {
    return error;
  }
  return base_.ReadAll(path, out);
}

Error FaultyEnv::Rename(const std::string& from, const std::string& to) {
  if (auto error = Consult(failpoints_, "storage.rename", "rename", from);
      !error.ok()) {
    return error;
  }
  return base_.Rename(from, to);
}

Error FaultyEnv::Link(const std::string& from, const std::string& to) {
  if (auto error = Consult(failpoints_, "storage.link", "link", from);
      !error.ok()) {
    return error;
  }
  return base_.Link(from, to);
}

Error FaultyEnv::Remove(const std::string& path) {
  if (auto error = Consult(failpoints_, "storage.remove", "remove", path);
      !error.ok()) {
    return error;
  }
  return base_.Remove(path);
}

bool FaultyEnv::Exists(const std::string& path) { return base_.Exists(path); }

Error FaultyEnv::SyncDir(const std::string& dir) {
  if (auto error = Consult(failpoints_, "storage.syncdir", "syncdir", dir);
      !error.ok()) {
    return error;
  }
  return base_.SyncDir(dir);
}

std::vector<std::string> FaultyEnv::List(const std::string& dir) {
  return base_.List(dir);
}

Error FaultyEnv::Map(const std::string& path, MappedRegion& out) {
  if (auto error = Consult(failpoints_, "storage.map", "map", path);
      !error.ok()) {
    return error;
  }
  return base_.Map(path, out);
}

}  // namespace sleepwalk::storage
