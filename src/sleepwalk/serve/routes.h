// Standard admin-plane routes: /metrics, /healthz, /statusz, /tracez.
//
// InstallAdminRoutes wires an AdminServer to the observability surfaces
// of a (possibly running) campaign. Everything is read-only: handlers
// snapshot — they never create instruments, never touch the ledger
// beyond its locked read path, and never write a campaign byte, so an
// admin-attached run stays byte-identical to a bare one.
#ifndef SLEEPWALK_SERVE_ROUTES_H_
#define SLEEPWALK_SERVE_ROUTES_H_

#include <cstddef>

#include "sleepwalk/core/status.h"
#include "sleepwalk/obs/metrics.h"
#include "sleepwalk/obs/trace.h"
#include "sleepwalk/serve/admin_server.h"

namespace sleepwalk::serve {

/// The observability surfaces the routes read from. Null members
/// degrade gracefully (empty exposition / "attached": false). Everything
/// pointed to must outlive the server.
struct AdminPlane {
  const obs::Registry* metrics = nullptr;
  const obs::Tracer* tracer = nullptr;
  core::StatusHub* status = nullptr;
  /// Most recent closed spans /tracez returns.
  std::size_t tracez_spans = 256;
};

/// Registers the four standard routes on `server`:
///   GET /metrics  — Prometheus text exposition 0.0.4
///   GET /healthz  — "ok\n" liveness probe
///   GET /statusz  — CampaignStatus JSON via the StatusHub
///   GET /tracez   — JSON array of the most recent closed spans
void InstallAdminRoutes(AdminServer& server, const AdminPlane& plane);

}  // namespace sleepwalk::serve

#endif  // SLEEPWALK_SERVE_ROUTES_H_
