#include "sleepwalk/serve/routes.h"

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

namespace sleepwalk::serve {

namespace {

constexpr const char* kJsonType = "application/json; charset=utf-8";
constexpr const char* kPrometheusType =
    "text/plain; version=0.0.4; charset=utf-8";

void AppendEscaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// The most recent `limit` closed spans, JSON-arrayed in record order.
std::string RenderTracez(const obs::Tracer* tracer, std::size_t limit) {
  std::string out = "[";
  if (tracer != nullptr) {
    const std::vector<obs::SpanRecord> spans = tracer->spans();
    std::vector<const obs::SpanRecord*> closed;
    closed.reserve(spans.size());
    for (const auto& span : spans) {
      if (!span.open) closed.push_back(&span);
    }
    const std::size_t first =
        closed.size() > limit ? closed.size() - limit : 0;
    bool comma = false;
    for (std::size_t i = first; i < closed.size(); ++i) {
      const auto& span = *closed[i];
      if (comma) out += ',';
      comma = true;
      out += "{\"name\":\"";
      AppendEscaped(out, span.name);
      out += "\",\"depth\":" + std::to_string(span.depth);
      out += ",\"seq\":[" + std::to_string(span.seq_start) + ',' +
             std::to_string(span.seq_end) + ']';
      out += ",\"vt\":[" + std::to_string(span.vt_start) + ',' +
             std::to_string(span.vt_end) + ']';
      out += ",\"wall_ns\":" + std::to_string(span.wall_ns);
      out += '}';
    }
  }
  out += "]\n";
  return out;
}

}  // namespace

void InstallAdminRoutes(AdminServer& server, const AdminPlane& plane) {
  const obs::Registry* metrics = plane.metrics;
  server.Route("/metrics", [metrics](const HttpRequest&) {
    std::ostringstream out;
    if (metrics != nullptr) metrics->WritePrometheus(out);
    return HttpResponse{200, kPrometheusType, std::move(out).str()};
  });

  server.Route("/healthz", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain; charset=utf-8", "ok\n"};
  });

  core::StatusHub* status = plane.status;
  server.Route("/statusz", [status](const HttpRequest&) {
    core::CampaignStatus snapshot;
    if (status == nullptr || !status->Snapshot(snapshot)) {
      return HttpResponse{200, kJsonType, "{\"attached\":false}\n"};
    }
    return HttpResponse{200, kJsonType, core::RenderStatusJson(snapshot)};
  });

  const obs::Tracer* tracer = plane.tracer;
  const std::size_t limit = plane.tracez_spans;
  server.Route("/tracez", [tracer, limit](const HttpRequest&) {
    return HttpResponse{200, kJsonType, RenderTracez(tracer, limit)};
  });
}

}  // namespace sleepwalk::serve
