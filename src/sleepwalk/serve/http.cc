#include "sleepwalk/serve/http.h"

#include <cctype>
#include <cstddef>

namespace sleepwalk::serve {

namespace {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto lower = [](char c) {
      return static_cast<char>(
          std::tolower(static_cast<unsigned char>(c)));
    };
    if (lower(a[i]) != lower(b[i])) return false;
  }
  return true;
}

std::string_view TrimSpace(std::string_view s) noexcept {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Pops the next line (up to LF) off `rest`, stripping the optional CR.
std::string_view NextLine(std::string_view& rest) noexcept {
  const auto lf = rest.find('\n');
  std::string_view line = rest.substr(0, lf);
  rest = lf == std::string_view::npos ? std::string_view{}
                                      : rest.substr(lf + 1);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

}  // namespace

std::string_view HttpRequest::Header(std::string_view name) const noexcept {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) return value;
  }
  return {};
}

ParseStatus ParseRequest(std::string_view buffer, HttpRequest& request) {
  // Complete once the blank line ending the header block has arrived.
  const auto end_crlf = buffer.find("\r\n\r\n");
  const auto end_lf = buffer.find("\n\n");
  std::size_t head_end = std::string_view::npos;
  if (end_crlf != std::string_view::npos) head_end = end_crlf + 2;
  if (end_lf != std::string_view::npos && end_lf + 1 < head_end) {
    head_end = end_lf + 1;
  }
  if (head_end == std::string_view::npos) return ParseStatus::kIncomplete;
  std::string_view head = buffer.substr(0, head_end);

  std::string_view line = NextLine(head);
  const auto first_space = line.find(' ');
  const auto last_space = line.rfind(' ');
  if (first_space == std::string_view::npos || first_space == last_space) {
    return ParseStatus::kBad;
  }
  const std::string_view method = line.substr(0, first_space);
  std::string_view target =
      line.substr(first_space + 1, last_space - first_space - 1);
  const std::string_view version = line.substr(last_space + 1);
  if (method.empty() || target.empty() || target.front() != '/' ||
      !version.starts_with("HTTP/1.")) {
    return ParseStatus::kBad;
  }

  request = HttpRequest{};
  request.method = std::string{method};
  const auto question = target.find('?');
  if (question != std::string_view::npos) {
    request.query = std::string{target.substr(question + 1)};
    target = target.substr(0, question);
  }
  request.path = std::string{target};

  while (!head.empty()) {
    line = NextLine(head);
    if (line.empty()) break;  // end of header block
    const auto colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return ParseStatus::kBad;
    }
    request.headers.emplace_back(
        std::string{TrimSpace(line.substr(0, colon))},
        std::string{TrimSpace(line.substr(colon + 1))});
  }
  return ParseStatus::kOk;
}

std::string_view ReasonPhrase(int status) noexcept {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    default:
      return "Unknown";
  }
}

std::string SerializeResponse(const HttpResponse& response) {
  std::string out;
  out.reserve(response.body.size() + 128);
  out += "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += ReasonPhrase(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += response.body;
  return out;
}

}  // namespace sleepwalk::serve
