#include "sleepwalk/serve/admin_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <utility>

namespace sleepwalk::serve {

namespace {

/// Reject request heads larger than this; nothing the admin plane
/// accepts is remotely that big, and it bounds per-connection memory.
constexpr std::size_t kMaxRequestBytes = 16 * 1024;

/// One accepted connection: read until the request head is complete,
/// write the serialized response, close.
struct Connection {
  net::FileDescriptor fd;
  std::string in;
  std::string out;
  std::size_t out_sent = 0;
};

bool SetNonBlocking(int fd) noexcept {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void Fail(std::string* error, const char* what) {
  if (error != nullptr) {
    *error = std::string{what} + ": " + std::strerror(errno);
  }
}

}  // namespace

AdminServer::~AdminServer() { Stop(); }

void AdminServer::Route(std::string path, Handler handler) {
  routes_[std::move(path)] = std::move(handler);
}

bool AdminServer::Start(std::uint16_t port, std::string* error) {
  if (running()) {
    if (error != nullptr) *error = "already running";
    return false;
  }

  net::FileDescriptor listener{
      ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0)};
  if (!listener.valid()) {
    Fail(error, "socket");
    return false;
  }
  const int one = 1;
  ::setsockopt(listener.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only
  addr.sin_port = htons(port);
  if (::bind(listener.get(), reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    Fail(error, "bind");
    return false;
  }
  if (::listen(listener.get(), 16) != 0) {
    Fail(error, "listen");
    return false;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listener.get(), reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) != 0) {
    Fail(error, "getsockname");
    return false;
  }

  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_CLOEXEC | O_NONBLOCK) != 0) {
    Fail(error, "pipe2");
    return false;
  }
  net::FileDescriptor wake_read{pipe_fds[0]};
  net::FileDescriptor wake_write{pipe_fds[1]};

  net::FileDescriptor epoll{::epoll_create1(EPOLL_CLOEXEC)};
  if (!epoll.valid()) {
    Fail(error, "epoll_create1");
    return false;
  }
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.fd = listener.get();
  if (::epoll_ctl(epoll.get(), EPOLL_CTL_ADD, listener.get(), &event) != 0) {
    Fail(error, "epoll_ctl(listener)");
    return false;
  }
  event.data.fd = wake_read.get();
  if (::epoll_ctl(epoll.get(), EPOLL_CTL_ADD, wake_read.get(), &event) != 0) {
    Fail(error, "epoll_ctl(wakeup)");
    return false;
  }

  listener_ = std::move(listener);
  epoll_ = std::move(epoll);
  wake_read_ = std::move(wake_read);
  wake_write_ = std::move(wake_write);
  port_ = ntohs(addr.sin_port);
  thread_ = std::thread{[this] { Serve(); }};
  return true;
}

void AdminServer::Stop() {
  if (!running()) return;
  const char byte = 'q';
  [[maybe_unused]] const auto ignored = ::write(wake_write_.get(), &byte, 1);
  thread_.join();
  listener_.Reset();
  epoll_.Reset();
  wake_read_.Reset();
  wake_write_.Reset();
  port_ = 0;
}

HttpResponse AdminServer::Dispatch(const HttpRequest& request) const {
  if (request.method != "GET" && request.method != "HEAD") {
    return HttpResponse{405, "text/plain; charset=utf-8",
                        "method not allowed\n"};
  }
  const auto it = routes_.find(request.path);
  if (it == routes_.end()) {
    return HttpResponse{404, "text/plain; charset=utf-8", "not found\n"};
  }
  HttpResponse response = it->second(request);
  if (request.method == "HEAD") response.body.clear();
  return response;
}

void AdminServer::Serve() {
  std::unordered_map<int, std::unique_ptr<Connection>> connections;
  epoll_event events[16];

  const auto arm = [&](int fd, std::uint32_t mask, bool add) {
    epoll_event event{};
    event.events = mask;
    event.data.fd = fd;
    ::epoll_ctl(epoll_.get(), add ? EPOLL_CTL_ADD : EPOLL_CTL_MOD, fd,
                &event);
  };
  const auto drop = [&](int fd) {
    ::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, fd, nullptr);
    connections.erase(fd);  // closes via FileDescriptor
  };

  while (true) {
    const int n = ::epoll_wait(epoll_.get(), events, 16, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // epoll itself broke; nothing sensible left to do
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_read_.get()) return;  // Stop() requested

      if (fd == listener_.get()) {
        while (true) {
          net::FileDescriptor client{::accept4(
              listener_.get(), nullptr, nullptr, SOCK_CLOEXEC)};
          if (!client.valid()) break;  // EAGAIN or transient error
          if (!SetNonBlocking(client.get())) continue;
          const int client_fd = client.get();
          auto connection = std::make_unique<Connection>();
          connection->fd = std::move(client);
          connections.emplace(client_fd, std::move(connection));
          arm(client_fd, EPOLLIN, /*add=*/true);
        }
        continue;
      }

      const auto it = connections.find(fd);
      if (it == connections.end()) continue;
      Connection& connection = *it->second;

      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        drop(fd);
        continue;
      }

      if ((events[i].events & EPOLLIN) != 0 && connection.out.empty()) {
        char buf[4096];
        bool closed = false;
        while (true) {
          const auto got = ::read(fd, buf, sizeof(buf));
          if (got > 0) {
            connection.in.append(buf, static_cast<std::size_t>(got));
            if (connection.in.size() > kMaxRequestBytes) break;
            continue;
          }
          if (got == 0) closed = true;
          break;  // EAGAIN, error, or EOF
        }

        HttpRequest request;
        const auto status = connection.in.size() > kMaxRequestBytes
                                ? ParseStatus::kBad
                                : ParseRequest(connection.in, request);
        if (status == ParseStatus::kIncomplete) {
          if (closed) drop(fd);  // peer gave up mid-request
          continue;
        }
        HttpResponse response =
            status == ParseStatus::kBad
                ? HttpResponse{connection.in.size() > kMaxRequestBytes
                                   ? 431
                                   : 400,
                               "text/plain; charset=utf-8", "bad request\n"}
                : Dispatch(request);
        connection.out = SerializeResponse(response);
        connection.out_sent = 0;
        arm(fd, EPOLLOUT, /*add=*/false);
      }

      if (!connection.out.empty()) {
        while (connection.out_sent < connection.out.size()) {
          const auto sent =
              ::write(fd, connection.out.data() + connection.out_sent,
                      connection.out.size() - connection.out_sent);
          if (sent <= 0) break;  // EAGAIN or peer reset
          connection.out_sent += static_cast<std::size_t>(sent);
        }
        if (connection.out_sent >= connection.out.size()) {
          drop(fd);  // Connection: close — response done, hang up
        } else {
          arm(fd, EPOLLOUT, /*add=*/false);
        }
      }
    }
  }
}

}  // namespace sleepwalk::serve
