// Minimal HTTP/1.1 request parsing and response serialization for the
// admin plane.
//
// Deliberately tiny: the admin server accepts GET requests on loopback
// from curl/sleeptop/Prometheus, answers, and closes the connection.
// This file is the pure (socket-free, clock-free) half — parse bytes
// into a request, serialize a response into bytes — so it unit-tests
// without a network and stays outside the sleeplint socket allowance.
#ifndef SLEEPWALK_SERVE_HTTP_H_
#define SLEEPWALK_SERVE_HTTP_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sleepwalk::serve {

/// A parsed request line plus headers. Bodies are ignored (the admin
/// plane is GET-only); the query string is split off the target.
struct HttpRequest {
  std::string method;
  std::string path;   ///< target without the query string
  std::string query;  ///< bytes after '?', empty when absent
  std::vector<std::pair<std::string, std::string>> headers;

  /// First header value matching `name` (ASCII case-insensitive), or "".
  std::string_view Header(std::string_view name) const noexcept;
};

/// Outcome of feeding a request buffer to the parser.
enum class ParseStatus {
  kOk,          ///< request complete and well-formed
  kIncomplete,  ///< need more bytes (no terminating CRLFCRLF yet)
  kBad,         ///< malformed; answer 400 and close
};

/// Parses one request from `buffer`. Complete means the header block's
/// terminating CRLFCRLF has arrived; anything after it is ignored
/// (GET-only server, Connection: close). Bare-LF line endings are
/// tolerated.
ParseStatus ParseRequest(std::string_view buffer, HttpRequest& request);

/// A response to serialize. `body` is sent as-is with Content-Length.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Canonical reason phrase for the handful of statuses the admin plane
/// uses; "Unknown" otherwise.
std::string_view ReasonPhrase(int status) noexcept;

/// Serializes `response` as an HTTP/1.1 message with Connection: close.
std::string SerializeResponse(const HttpResponse& response);

}  // namespace sleepwalk::serve

#endif  // SLEEPWALK_SERVE_HTTP_H_
