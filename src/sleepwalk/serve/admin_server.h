// AdminServer: a minimal epoll-based HTTP/1.1 server for the admin
// plane (/metrics, /healthz, /statusz, /tracez).
//
// Scope is deliberately narrow: loopback-only (binds 127.0.0.1), GET
// requests, Connection: close, one server thread. It is a *read-only
// observer* of a running campaign — handlers installed on it must not
// mutate campaign state, and attaching a server changes no dataset,
// checkpoint, or telemetry byte (the obs inertness tests enforce this).
//
// All socket/epoll/clock use in the tree is confined to this layer (and
// net/), under an explicit sleeplint allowance for serve/.
#ifndef SLEEPWALK_SERVE_ADMIN_SERVER_H_
#define SLEEPWALK_SERVE_ADMIN_SERVER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

#include "sleepwalk/net/socket.h"
#include "sleepwalk/serve/http.h"

namespace sleepwalk::serve {

/// A request handler; runs on the server thread, must be fast and
/// read-only. Registered per exact path.
using Handler = std::function<HttpResponse(const HttpRequest&)>;

class AdminServer {
 public:
  AdminServer() = default;
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Registers `handler` for GET `path` (exact match). Must be called
  /// before Start(); later calls are a data race by design choice (the
  /// route table is read lock-free on the server thread).
  void Route(std::string path, Handler handler);

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port), starts the
  /// server thread. Returns false with `error` filled on failure.
  bool Start(std::uint16_t port, std::string* error = nullptr);

  /// Stops the server thread and closes every socket. Idempotent;
  /// called by the destructor.
  void Stop();

  /// The bound port (after a successful Start), else 0.
  std::uint16_t port() const noexcept { return port_; }

  bool running() const noexcept { return thread_.joinable(); }

 private:
  void Serve();
  HttpResponse Dispatch(const HttpRequest& request) const;

  std::map<std::string, Handler> routes_;
  net::FileDescriptor listener_;
  net::FileDescriptor epoll_;
  net::FileDescriptor wake_read_;
  net::FileDescriptor wake_write_;
  std::uint16_t port_ = 0;
  std::thread thread_;
};

}  // namespace sleepwalk::serve

#endif  // SLEEPWALK_SERVE_ADMIN_SERVER_H_
