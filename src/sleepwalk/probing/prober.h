// Per-block adaptive prober (the Trinocular probing engine [31]).
//
// Each 11-minute round the prober walks the block's ever-active addresses
// in pseudorandom order, sending 1..15 probes:
//  * a positive response concludes the block is up and stops probing
//    ("stopping on first positive response" — the sampling bias §2.1.1
//    the availability estimator must cope with);
//  * enough negatives to drive belief conclusively down stop probing with
//    an outage verdict;
//  * otherwise probing stops at the per-round budget.
// The round's (positives, total) counts feed the availability estimator
// owned by the caller, which returns the operational A-hat_o used for the
// next round's inference — closing the loop of §2.1.
#ifndef SLEEPWALK_PROBING_PROBER_H_
#define SLEEPWALK_PROBING_PROBER_H_

#include <cstdint>
#include <vector>

#include "sleepwalk/net/ipv4.h"
#include "sleepwalk/net/transport.h"
#include "sleepwalk/obs/context.h"
#include "sleepwalk/probing/belief.h"
#include "sleepwalk/probing/walker.h"

namespace sleepwalk::probing {

/// Prober tunables. Defaults follow the paper/Trinocular: at most 15
/// probes per round, which with 11-minute rounds keeps the average under
/// ~20 probes/hour/block ("less than 1% of background radiation").
struct ProberConfig {
  int max_probes_per_round = 15;
  BeliefParams belief;
};

/// What one round of probing observed.
struct RoundRecord {
  std::int64_t round = 0;
  int probes = 0;     ///< t: total probes sent this round
  int positives = 0;  ///< p: positive responses (0 or 1 with early stop)
  bool concluded_up = false;
  bool concluded_down = false;  ///< an outage verdict for this round
  double belief = 0.0;          ///< belief after the round
};

/// Round-boundary snapshot of a prober's mutable state: enough to resume
/// a checkpointed campaign, or to roll back a round aborted mid-way by a
/// transport error before retrying it.
struct ProberState {
  std::uint64_t cursor = 0;
  double belief = 0.0;
};

/// Adaptive prober for a single /24 block.
class AdaptiveProber {
 public:
  /// `ever_active` holds the last-octets of E(b) from historical data.
  /// Must be non-empty; throws std::invalid_argument otherwise.
  AdaptiveProber(net::Prefix24 block, std::vector<std::uint8_t> ever_active,
                 std::uint64_t seed, const ProberConfig& config = {});

  /// Attaches telemetry: per-round trace records, belief up/down
  /// transition events, and a probes-per-round histogram. Read-only with
  /// respect to probing decisions — attaching a context never changes
  /// which addresses are probed or what the belief concludes.
  void AttachObs(const obs::Context& context);

  /// Runs one probing round at simulation time `when_sec`, using the
  /// caller's current operational availability estimate.
  RoundRecord RunRound(net::Transport& transport, std::int64_t round,
                       std::int64_t when_sec, double operational_availability);

  /// Simulates a prober software restart: belief and walk position reset.
  void Restart() noexcept;

  /// Captures / restores the mutable state (walker cursor + belief).
  ProberState ExportState() const noexcept;
  void RestoreState(const ProberState& state) noexcept;

  net::Prefix24 block() const noexcept { return block_; }
  std::size_t ever_active_count() const noexcept { return walker_.size(); }
  const BeliefModel& belief() const noexcept { return belief_model_; }

 private:
  net::Prefix24 block_;
  ProberConfig config_;
  AddressWalker walker_;
  BeliefModel belief_model_;

  // Telemetry (null / inert by default).
  obs::Context obs_;
  obs::Histogram* round_probes_ = nullptr;
  bool obs_last_down_ = false;  ///< last *conclusive* verdict was down
};

}  // namespace sleepwalk::probing

#endif  // SLEEPWALK_PROBING_PROBER_H_
