#include "sleepwalk/probing/belief.h"

#include <algorithm>

namespace sleepwalk::probing {

void BeliefModel::Update(double likelihood_up,
                         double likelihood_down) noexcept {
  const double numerator = belief_ * likelihood_up;
  const double denominator = numerator + (1.0 - belief_) * likelihood_down;
  if (denominator <= 0.0) return;
  // Bounded memory: belief never saturates so deeply that fresh contrary
  // evidence (one positive after a long outage) cannot flip it within a
  // probe or two.
  belief_ = std::clamp(numerator / denominator, 0.01, 0.99);
}

void BeliefModel::ObservePositive(double a) noexcept {
  a = std::clamp(a, 0.01, 0.99);
  Update(a, params_.pos_given_down);
}

void BeliefModel::ObserveNegative(double a) noexcept {
  a = std::clamp(a, 0.01, 0.99);
  Update(1.0 - a, 1.0 - params_.pos_given_down);
}

void BeliefModel::StartRound() noexcept {
  belief_ = (1.0 - params_.inter_round_decay) * belief_ +
            params_.inter_round_decay * params_.prior_up;
}

}  // namespace sleepwalk::probing
