#include "sleepwalk/probing/walker.h"

#include <stdexcept>
#include <utility>

namespace sleepwalk::probing {

AddressWalker::AddressWalker(std::vector<std::uint8_t> ever_active,
                             std::uint64_t seed)
    : order_(std::move(ever_active)) {
  if (order_.empty()) {
    throw std::invalid_argument{"AddressWalker: ever-active set is empty"};
  }
  Rng rng{seed};
  // Fisher-Yates shuffle.
  for (std::size_t i = order_.size() - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(rng.NextBelow(i + 1));
    std::swap(order_[i], order_[j]);
  }
}

std::uint8_t AddressWalker::Next() noexcept {
  const std::uint8_t address = order_[cursor_];
  cursor_ = (cursor_ + 1) % order_.size();
  return address;
}

}  // namespace sleepwalk::probing
