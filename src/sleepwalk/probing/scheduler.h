// Round timing and prober-restart policy.
//
// The paper's probing software restarted every 5.5 hours (30 rounds) "to
// recover from possible prober failure", which leaves a measurable
// spectral artifact at ~4.36 cycles/day in 3% of blocks (Fig 10). Later
// collections (A_16all) moved to ~weekly restarts. Both policies are
// expressible here.
#ifndef SLEEPWALK_PROBING_SCHEDULER_H_
#define SLEEPWALK_PROBING_SCHEDULER_H_

#include <cstdint>

namespace sleepwalk::probing {

/// Timing configuration for a probing campaign.
struct ScheduleConfig {
  std::int64_t round_seconds = 660;      ///< 11 minutes (paper).
  std::int64_t epoch_sec = 0;            ///< UTC seconds of round 0.
  /// Rounds between prober restarts; 0 disables restarts.
  /// 30 rounds = 5.5 h, the A_12w policy; 916 rounds ~ 1 week (A_16all).
  std::int64_t restart_every_rounds = 30;
};

/// Maps rounds to wall-clock time and flags restart boundaries.
class RoundScheduler {
 public:
  explicit constexpr RoundScheduler(const ScheduleConfig& config) noexcept
      : config_(config) {}

  constexpr std::int64_t TimeOf(std::int64_t round) const noexcept {
    return config_.epoch_sec + round * config_.round_seconds;
  }

  /// True when the prober process restarts at the start of this round.
  constexpr bool IsRestartRound(std::int64_t round) const noexcept {
    return config_.restart_every_rounds > 0 && round > 0 &&
           round % config_.restart_every_rounds == 0;
  }

  /// Rounds per (86400-second) day, rounded down.
  constexpr std::int64_t RoundsPerDay() const noexcept {
    return 86400 / config_.round_seconds;
  }

  /// Number of rounds needed to span `days` whole days (rounded up so
  /// the final midnight is included).
  constexpr std::int64_t RoundsForDays(int days) const noexcept {
    const std::int64_t seconds = static_cast<std::int64_t>(days) * 86400;
    return (seconds + config_.round_seconds - 1) / config_.round_seconds;
  }

  const ScheduleConfig& config() const noexcept { return config_; }

 private:
  ScheduleConfig config_;
};

}  // namespace sleepwalk::probing

#endif  // SLEEPWALK_PROBING_SCHEDULER_H_
