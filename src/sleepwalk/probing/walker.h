// Pseudorandom address walker (paper §2.1.2).
//
// "[Trinocular's] policy of walking all responsive addresses in a
//  pseudorandom order is ideal for analysis of diurnal blocks."
//
// The walker holds a fixed Fisher-Yates permutation of the block's
// ever-active addresses and a cursor that persists across rounds, so over
// time every ever-active address is sampled uniformly.
#ifndef SLEEPWALK_PROBING_WALKER_H_
#define SLEEPWALK_PROBING_WALKER_H_

#include <cstdint>
#include <vector>

#include "sleepwalk/util/rng.h"

namespace sleepwalk::probing {

/// Cyclic pseudorandom walk over a set of last-octets.
class AddressWalker {
 public:
  /// `ever_active` lists the last-octets of E(b), the addresses known to
  /// have responded historically. Must be non-empty: an empty set is
  /// rejected with std::invalid_argument (Next() would otherwise be UB).
  AddressWalker(std::vector<std::uint8_t> ever_active, std::uint64_t seed);

  /// Next address to probe; wraps around the permutation forever.
  std::uint8_t Next() noexcept;

  /// Returns the cursor to the start of the permutation — what happens
  /// when the prober process restarts (§4: the 5.5-hour restart produces
  /// a 4.3 cycles/day artifact, Fig 10).
  void Restart() noexcept { cursor_ = 0; }

  std::size_t size() const noexcept { return order_.size(); }
  const std::vector<std::uint8_t>& order() const noexcept { return order_; }

  /// Walk position, exposed for checkpointing. The permutation itself is
  /// a pure function of (ever_active, seed), so cursor alone restores the
  /// walk.
  std::size_t cursor() const noexcept { return cursor_; }
  void set_cursor(std::size_t cursor) noexcept {
    cursor_ = cursor % order_.size();
  }

 private:
  std::vector<std::uint8_t> order_;
  std::size_t cursor_ = 0;
};

}  // namespace sleepwalk::probing

#endif  // SLEEPWALK_PROBING_WALKER_H_
