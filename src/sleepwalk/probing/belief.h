// Bayesian up/down belief for one /24 block (the Trinocular model [31]).
//
// Trinocular maintains belief B(U) that a block is up and updates it per
// probe with simple Bayesian inference:
//   P(positive | up)   = a        (operational availability A-hat_o)
//   P(positive | down) = epsilon  (essentially zero)
//   P(negative | up)   = 1 - a
//   P(negative | down) = 1 - epsilon
// Probing in a round continues until belief is conclusive either way or
// the per-round probe budget is exhausted. This is exactly why the paper
// needs A-hat_o to never overestimate: with a too high, a couple of
// negative probes drive belief down and produce false outages (§2.1.1).
#ifndef SLEEPWALK_PROBING_BELIEF_H_
#define SLEEPWALK_PROBING_BELIEF_H_

namespace sleepwalk::probing {

/// Tunables of the belief model.
struct BeliefParams {
  double prior_up = 0.9;        ///< initial / post-restart belief
  double conclusive = 0.9;      ///< threshold: belief >= this is "up"
  double pos_given_down = 1e-4; ///< epsilon: stray positives when down
  double inter_round_decay = 0.05;  ///< drift toward prior between rounds
};

/// Evolving belief that a block is reachable.
class BeliefModel {
 public:
  explicit BeliefModel(const BeliefParams& params = {}) noexcept
      : params_(params), belief_(params.prior_up) {}

  double belief() const noexcept { return belief_; }

  /// Bayes update for a positive probe with operational availability `a`.
  void ObservePositive(double a) noexcept;

  /// Bayes update for a negative probe with operational availability `a`.
  void ObserveNegative(double a) noexcept;

  bool ConclusiveUp() const noexcept { return belief_ >= params_.conclusive; }
  bool ConclusiveDown() const noexcept {
    return belief_ <= 1.0 - params_.conclusive;
  }

  /// Called at round boundaries: belief drifts slightly toward the prior,
  /// modelling state uncertainty growing between observations.
  void StartRound() noexcept;

  /// Resets to the prior (prober restart).
  void Reset() noexcept { belief_ = params_.prior_up; }

  /// Restores a checkpointed belief value (clamped to [0, 1]).
  void RestoreBelief(double belief) noexcept {
    belief_ = belief < 0.0 ? 0.0 : belief > 1.0 ? 1.0 : belief;
  }

 private:
  void Update(double likelihood_up, double likelihood_down) noexcept;

  BeliefParams params_;
  double belief_;
};

}  // namespace sleepwalk::probing

#endif  // SLEEPWALK_PROBING_BELIEF_H_
