#include "sleepwalk/probing/prober.h"

#include <stdexcept>
#include <utility>

namespace sleepwalk::probing {

namespace {

std::vector<std::uint8_t> RequireNonEmpty(
    std::vector<std::uint8_t> ever_active) {
  if (ever_active.empty()) {
    throw std::invalid_argument{
        "AdaptiveProber: ever-active set is empty; the Trinocular policy "
        "(min_ever_active) should have rejected this block upstream"};
  }
  return ever_active;
}

}  // namespace

AdaptiveProber::AdaptiveProber(net::Prefix24 block,
                               std::vector<std::uint8_t> ever_active,
                               std::uint64_t seed, const ProberConfig& config)
    : block_(block), config_(config),
      walker_(RequireNonEmpty(std::move(ever_active)), seed ^ block.Index()),
      belief_model_(config.belief) {}

RoundRecord AdaptiveProber::RunRound(net::Transport& transport,
                                     std::int64_t round,
                                     std::int64_t when_sec,
                                     double operational_availability) {
  RoundRecord record;
  record.round = round;
  belief_model_.StartRound();

  while (record.probes < config_.max_probes_per_round) {
    const std::uint8_t octet = walker_.Next();
    const auto status = transport.Probe(block_.Address(octet), when_sec);
    ++record.probes;
    if (net::IsPositive(status)) {
      ++record.positives;
      belief_model_.ObservePositive(operational_availability);
      // Trinocular policy: the first positive proves the block up; stop
      // to minimize traffic.
      record.concluded_up = true;
      break;
    }
    belief_model_.ObserveNegative(operational_availability);
    if (belief_model_.ConclusiveDown()) {
      record.concluded_down = true;
      break;
    }
  }

  record.belief = belief_model_.belief();
  return record;
}

void AdaptiveProber::Restart() noexcept {
  walker_.Restart();
  belief_model_.Reset();
}

ProberState AdaptiveProber::ExportState() const noexcept {
  return {static_cast<std::uint64_t>(walker_.cursor()),
          belief_model_.belief()};
}

void AdaptiveProber::RestoreState(const ProberState& state) noexcept {
  walker_.set_cursor(static_cast<std::size_t>(state.cursor));
  belief_model_.RestoreBelief(state.belief);
}

}  // namespace sleepwalk::probing
