#include "sleepwalk/probing/prober.h"

#include <stdexcept>
#include <utility>

namespace sleepwalk::probing {

namespace {

std::vector<std::uint8_t> RequireNonEmpty(
    std::vector<std::uint8_t> ever_active) {
  if (ever_active.empty()) {
    throw std::invalid_argument{
        "AdaptiveProber: ever-active set is empty; the Trinocular policy "
        "(min_ever_active) should have rejected this block upstream"};
  }
  return ever_active;
}

}  // namespace

AdaptiveProber::AdaptiveProber(net::Prefix24 block,
                               std::vector<std::uint8_t> ever_active,
                               std::uint64_t seed, const ProberConfig& config)
    : block_(block), config_(config),
      walker_(RequireNonEmpty(std::move(ever_active)), seed ^ block.Index()),
      belief_model_(config.belief) {}

void AdaptiveProber::AttachObs(const obs::Context& context) {
  obs_ = context;
  // 1..15 probes per round (Trinocular budget); bucket at every count so
  // the early-stop distribution (§2.1.1 sampling bias) is fully visible.
  round_probes_ = context.HistogramOrNull(
      "prober_round_probes",
      {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
      "probes sent per round");
}

RoundRecord AdaptiveProber::RunRound(net::Transport& transport,
                                     std::int64_t round,
                                     std::int64_t when_sec,
                                     double operational_availability) {
  RoundRecord record;
  record.round = round;
  belief_model_.StartRound();

  while (record.probes < config_.max_probes_per_round) {
    const std::uint8_t octet = walker_.Next();
    const auto status = transport.Probe(block_.Address(octet), when_sec);
    ++record.probes;
    if (net::IsPositive(status)) {
      ++record.positives;
      belief_model_.ObservePositive(operational_availability);
      // Trinocular policy: the first positive proves the block up; stop
      // to minimize traffic.
      record.concluded_up = true;
      break;
    }
    belief_model_.ObserveNegative(operational_availability);
    if (belief_model_.ConclusiveDown()) {
      record.concluded_down = true;
      break;
    }
  }

  record.belief = belief_model_.belief();

  if (round_probes_ != nullptr) {
    round_probes_->Observe(static_cast<double>(record.probes));
  }
  if (obs_.log != nullptr) {
    // A belief *transition* (conclusive up after down, or vice versa) is
    // the outage-boundary signal; per-round records are kTrace noise.
    if ((record.concluded_down && !obs_last_down_) ||
        (record.concluded_up && obs_last_down_)) {
      if (obs_.Logs(obs::Level::kDebug)) {
        obs_.log->Write(obs::Level::kDebug, "belief.transition",
                        {{"block", block_.ToString()},
                         {"round", round},
                         {"to", record.concluded_down ? "down" : "up"},
                         {"belief", record.belief}});
      }
    }
    if (obs_.Logs(obs::Level::kTrace)) {
      obs_.log->Write(obs::Level::kTrace, "prober.round",
                      {{"block", block_.ToString()},
                       {"round", round},
                       {"probes", record.probes},
                       {"positives", record.positives},
                       {"up", record.concluded_up},
                       {"down", record.concluded_down},
                       {"belief", record.belief}});
    }
  }
  if (record.concluded_down) {
    obs_last_down_ = true;
  } else if (record.concluded_up) {
    obs_last_down_ = false;
  }
  return record;
}

void AdaptiveProber::Restart() noexcept {
  walker_.Restart();
  belief_model_.Reset();
}

ProberState AdaptiveProber::ExportState() const noexcept {
  return {static_cast<std::uint64_t>(walker_.cursor()),
          belief_model_.belief()};
}

void AdaptiveProber::RestoreState(const ProberState& state) noexcept {
  walker_.set_cursor(static_cast<std::size_t>(state.cursor));
  belief_model_.RestoreBelief(state.belief);
}

}  // namespace sleepwalk::probing
