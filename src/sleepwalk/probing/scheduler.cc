// RoundScheduler is header-only; this TU anchors the target.
#include "sleepwalk/probing/scheduler.h"
