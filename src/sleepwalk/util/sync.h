// Thread-safety annotated synchronization primitives.
//
// The ROADMAP's parallel/sharded campaign runner will put the obs
// registry, log sinks, tracer, and the supervisor's checkpoint state on
// multiple threads at once. Locking discipline enforced by comments does
// not survive refactors; Clang's -Wthread-safety analysis does. This
// header wraps std::mutex / std::lock_guard in the standard capability
// attribute macros (see the Clang thread-safety-analysis docs) so that
//   * shared state is declared `SLEEPWALK_GUARDED_BY(mutex_)`,
//   * functions that need the lock say `SLEEPWALK_REQUIRES(mutex_)`,
// and a clang build with -Wthread-safety -Werror (scripts/
// static_analysis.sh, CI `static-analysis` job) rejects every unlocked
// access at compile time. On GCC the attributes expand to nothing and
// the wrappers are zero-cost aliases of the std types.
#ifndef SLEEPWALK_UTIL_SYNC_H_
#define SLEEPWALK_UTIL_SYNC_H_

#include <condition_variable>
#include <mutex>

// Capability attribute spelling: clang >= 3.6 understands
// __attribute__((capability("mutex"))) and friends; every other compiler
// sees empty token soup. Kept to the exact subset the codebase uses —
// add spellings here (ACQUIRED_BEFORE, shared capabilities, ...) as the
// parallel runner needs them.
#if defined(__clang__) && !defined(SWIG)
#define SLEEPWALK_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define SLEEPWALK_THREAD_ANNOTATION_(x)
#endif

/// Marks a type as a lockable capability ("mutex").
#define SLEEPWALK_CAPABILITY(x) SLEEPWALK_THREAD_ANNOTATION_(capability(x))

/// Marks a RAII type whose lifetime acquires/releases a capability.
#define SLEEPWALK_SCOPED_CAPABILITY \
  SLEEPWALK_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define SLEEPWALK_GUARDED_BY(x) SLEEPWALK_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define SLEEPWALK_PT_GUARDED_BY(x) \
  SLEEPWALK_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function that must be called with the capability held.
#define SLEEPWALK_REQUIRES(...) \
  SLEEPWALK_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function that must be called with the capability NOT held.
#define SLEEPWALK_EXCLUDES(...) \
  SLEEPWALK_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function that acquires the capability (and does not release it).
#define SLEEPWALK_ACQUIRE(...) \
  SLEEPWALK_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function that releases the capability.
#define SLEEPWALK_RELEASE(...) \
  SLEEPWALK_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Returns a reference to the guarded data without analysis — for
/// single-threaded setup/teardown paths that provably have no sharing.
#define SLEEPWALK_NO_THREAD_SAFETY_ANALYSIS \
  SLEEPWALK_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace sleepwalk::util {

/// std::mutex declared as a capability so members can be GUARDED_BY it.
class SLEEPWALK_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SLEEPWALK_ACQUIRE() { mutex_.lock(); }
  void Unlock() SLEEPWALK_RELEASE() { mutex_.unlock(); }

  /// BasicLockable spelling, required by std::condition_variable_any.
  void lock() SLEEPWALK_ACQUIRE() { mutex_.lock(); }
  void unlock() SLEEPWALK_RELEASE() { mutex_.unlock(); }

 private:
  std::mutex mutex_;
};

/// Condition variable paired with util::Mutex. Wait must be called with
/// the mutex held (the annotation enforces it); as usual the wait
/// releases and reacquires the lock internally, so the caller re-checks
/// its predicate in a loop.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mutex) SLEEPWALK_REQUIRES(mutex) { cv_.wait(mutex); }
  void NotifyOne() noexcept { cv_.notify_one(); }
  void NotifyAll() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

/// RAII lock; the scoped-capability annotation lets Clang track the
/// critical section's extent.
class SLEEPWALK_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) SLEEPWALK_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.Lock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() SLEEPWALK_RELEASE() { mutex_.Unlock(); }

 private:
  Mutex& mutex_;
};

}  // namespace sleepwalk::util

#endif  // SLEEPWALK_UTIL_SYNC_H_
