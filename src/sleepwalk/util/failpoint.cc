#include "sleepwalk/util/failpoint.h"

#include <cstdlib>

#include "sleepwalk/util/rng.h"

namespace sleepwalk::util {

namespace {

std::uint64_t HashName(const std::string& name) {
  // FNV-1a; only has to be stable, not cryptographic.
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::optional<FailAction> ParseAction(const std::string& name) {
  if (name == "short") return FailAction::kShortWrite;
  if (name == "eio") return FailAction::kEio;
  if (name == "enospc") return FailAction::kEnospc;
  if (name == "crash") return FailAction::kCrash;
  if (name == "torn") return FailAction::kCrashTorn;
  return std::nullopt;
}

}  // namespace

const char* FailActionName(FailAction action) noexcept {
  switch (action) {
    case FailAction::kNone: return "none";
    case FailAction::kShortWrite: return "short";
    case FailAction::kEio: return "eio";
    case FailAction::kEnospc: return "enospc";
    case FailAction::kCrash: return "crash";
    case FailAction::kCrashTorn: return "torn";
  }
  return "none";
}

bool FailpointSet::Parse(const std::string& text, FailpointSet& out,
                         std::string* error) {
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(',', start);
    if (end == std::string::npos) end = text.size();
    const std::string item = text.substr(start, end - start);
    start = end + 1;
    if (item.empty()) {
      if (end == text.size()) break;
      continue;
    }
    const auto eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      if (error != nullptr) *error = "expected site=action: '" + item + "'";
      return false;
    }
    FailpointSpec spec;
    spec.site = item.substr(0, eq);
    std::string rest = item.substr(eq + 1);
    const auto at = rest.find('@');
    const auto pct = rest.find('%');
    std::string action = rest;
    if (at != std::string::npos) {
      action = rest.substr(0, at);
      spec.after = std::strtoull(rest.c_str() + at + 1, nullptr, 10);
      if (spec.after == 0) {
        if (error != nullptr) *error = "count must be >= 1: '" + item + "'";
        return false;
      }
    } else if (pct != std::string::npos) {
      action = rest.substr(0, pct);
      spec.probability = std::strtod(rest.c_str() + pct + 1, nullptr);
      if (spec.probability <= 0.0 || spec.probability > 1.0) {
        if (error != nullptr) {
          *error = "probability must be in (0, 1]: '" + item + "'";
        }
        return false;
      }
    } else {
      spec.after = 1;  // bare `site=action` fires on the first hit
    }
    const auto parsed = ParseAction(action);
    if (!parsed) {
      if (error != nullptr) *error = "unknown action: '" + item + "'";
      return false;
    }
    spec.action = *parsed;
    out.Arm(std::move(spec));
    if (end == text.size()) break;
  }
  return true;
}

void FailpointSet::Arm(FailpointSpec spec) {
  MutexLock lock{mutex_};
  armed_.push_back(Armed{std::move(spec), true});
}

FailAction FailpointSet::Hit(const std::string& site) {
  MutexLock lock{mutex_};
  ++total_;
  std::uint64_t* site_count = nullptr;
  for (auto& [name, count] : site_hits_) {
    if (name == site) {
      site_count = &count;
      break;
    }
  }
  if (site_count == nullptr) {
    site_hits_.emplace_back(site, 0);
    site_count = &site_hits_.back().second;
  }
  ++*site_count;

  for (auto& armed : armed_) {
    if (!armed.live) continue;
    const auto& spec = armed.spec;
    const bool any = spec.site == "*";
    if (!any && spec.site != site) continue;
    const std::uint64_t ordinal = any ? total_ : *site_count;
    if (spec.after > 0) {
      if (ordinal != spec.after) continue;
      armed.live = false;  // count triggers are one-shot
      return spec.action;
    }
    // Probability arm: a stateless seeded draw keyed by the draw
    // ordinal, so a replay with the same seed fires identically.
    const std::uint64_t h = MixHash(seed_, HashName(spec.site), ++draws_);
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
    if (u < spec.probability) return spec.action;
  }
  return FailAction::kNone;
}

std::uint64_t FailpointSet::hits(const std::string& site) const {
  MutexLock lock{mutex_};
  for (const auto& [name, count] : site_hits_) {
    if (name == site) return count;
  }
  return 0;
}

std::uint64_t FailpointSet::total_hits() const {
  MutexLock lock{mutex_};
  return total_;
}

void FailpointSet::Reset() {
  MutexLock lock{mutex_};
  armed_.clear();
  site_hits_.clear();
  total_ = 0;
  draws_ = 0;
}

}  // namespace sleepwalk::util
