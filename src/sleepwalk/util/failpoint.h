// Deterministic I/O failpoints.
//
// A 12-week campaign meets torn writes, full disks, and SIGKILL; the
// storage layer must be provably safe against all three. A FailpointSet
// is a registry of named sites (storage/file.h consults one before
// every filesystem operation) armed to misbehave on demand:
//
//   * by count — "fail the 17th storage operation" — which lets a test
//     sweep exhaustively over every reachable crash point (count the
//     operations in a dry run, then arm crash@1, crash@2, ...);
//   * by probability — a seeded, stateless draw (util/rng.h MixHash of
//     the arm seed and the hit ordinal), never ambient RNG, so a
//     "1% ENOSPC" soak run is replayable bit-for-bit.
//
// Actions model the real failure surface: short-write (half the bytes
// land, then an error), EIO, ENOSPC, crash-here (throw CrashInjected —
// the process "dies" before the operation), and torn-crash (half the
// bytes land, then the process dies).
//
// Specs parse from a CLI-friendly string (`--failpoints`):
//   site=action@N      fire on the N-th hit of `site` (one-shot)
//   site=action%P      fire with probability P on every hit
// `site` is a registered name such as storage.append, or `*` to match
// every site by global operation ordinal. Multiple specs are
// comma-separated; count-armed specs disarm after firing.
#ifndef SLEEPWALK_UTIL_FAILPOINT_H_
#define SLEEPWALK_UTIL_FAILPOINT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sleepwalk/util/sync.h"

namespace sleepwalk::util {

/// What an armed failpoint does when it fires.
enum class FailAction : std::uint8_t {
  kNone = 0,    ///< proceed normally
  kShortWrite,  ///< write half the bytes, then report an error
  kEio,         ///< report EIO without touching the file
  kEnospc,      ///< report ENOSPC without touching the file
  kCrash,       ///< throw CrashInjected before the operation
  kCrashTorn,   ///< write half the bytes, then throw CrashInjected
};

const char* FailActionName(FailAction action) noexcept;

/// Thrown by a crash-armed failpoint: simulates the process dying at
/// this exact storage operation. Deliberately NOT derived from
/// std::exception so no recovery-minded catch block downstream can
/// swallow a simulated power cut by accident.
struct CrashInjected {
  std::string site;
};

/// One armed misbehaviour.
struct FailpointSpec {
  std::string site;  ///< exact site name, or "*" for any site
  FailAction action = FailAction::kNone;
  /// Fire on this hit ordinal (1-based; per-site for named specs,
  /// global for "*"). 0 disables count arming.
  std::uint64_t after = 0;
  /// Fire with this probability on every hit; ignored when `after` > 0.
  double probability = 0.0;
};

/// A thread-safe registry of armed failpoints plus per-site hit
/// counters. A default-constructed (or empty) set is inert: Hit()
/// returns kNone after a counter bump.
class FailpointSet {
 public:
  FailpointSet() = default;
  explicit FailpointSet(std::uint64_t seed) : seed_(seed) {}

  /// Parses the comma-separated spec grammar above and arms each spec
  /// into `out` (which keeps its own seed; the set is not movable
  /// because it owns a Mutex). Returns false and fills `error` (when
  /// non-null) on a malformed spec, leaving `out` partially armed —
  /// callers should treat that as fatal.
  static bool Parse(const std::string& text, FailpointSet& out,
                    std::string* error = nullptr);

  void Arm(FailpointSpec spec) SLEEPWALK_EXCLUDES(mutex_);

  /// Registers one hit of `site` and returns the action to apply.
  /// Count-armed specs disarm after firing; probability-armed specs
  /// stay armed.
  FailAction Hit(const std::string& site) SLEEPWALK_EXCLUDES(mutex_);

  /// Hits seen at `site` so far.
  std::uint64_t hits(const std::string& site) const
      SLEEPWALK_EXCLUDES(mutex_);

  /// Hits seen across every site (the "*" ordinal space).
  std::uint64_t total_hits() const SLEEPWALK_EXCLUDES(mutex_);

  /// Disarms every spec and zeroes all counters (the seed is kept).
  void Reset() SLEEPWALK_EXCLUDES(mutex_);

 private:
  struct Armed {
    FailpointSpec spec;
    bool live = true;
  };

  mutable Mutex mutex_;
  std::uint64_t seed_ = 0;
  std::uint64_t total_ SLEEPWALK_GUARDED_BY(mutex_) = 0;
  std::uint64_t draws_ SLEEPWALK_GUARDED_BY(mutex_) = 0;
  std::vector<std::pair<std::string, std::uint64_t>> site_hits_
      SLEEPWALK_GUARDED_BY(mutex_);
  std::vector<Armed> armed_ SLEEPWALK_GUARDED_BY(mutex_);
};

}  // namespace sleepwalk::util

#endif  // SLEEPWALK_UTIL_FAILPOINT_H_
