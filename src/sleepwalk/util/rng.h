// Deterministic, fast pseudorandom number generation.
//
// All simulation and probing components take explicit seeds so that every
// experiment in this repository is exactly reproducible. We use
// xoshiro256++ (Blackman & Vigna) seeded through splitmix64, which is much
// faster than std::mt19937_64 and has no measurable bias for our use.
#ifndef SLEEPWALK_UTIL_RNG_H_
#define SLEEPWALK_UTIL_RNG_H_

#include <array>
#include <cstdint>
#include <limits>

namespace sleepwalk {

/// splitmix64 step: turns any 64-bit value into a well-mixed successor.
/// Used for seeding and for stateless per-entity hashing.
constexpr std::uint64_t SplitMix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless mix of up to three 64-bit keys into one well-distributed
/// 64-bit hash. Used to derive per-(block, address, day) noise without
/// storing per-entity RNG state.
constexpr std::uint64_t MixHash(std::uint64_t a, std::uint64_t b = 0,
                                std::uint64_t c = 0) noexcept {
  std::uint64_t s = a;
  std::uint64_t h = SplitMix64(s);
  s ^= b + 0x632be59bd9b4e019ULL;
  h ^= SplitMix64(s);
  s ^= c + 0xd6e8feb86659fd93ULL;
  h ^= SplitMix64(s);
  return h;
}

/// Derives the 64-bit seed of an independent child stream from a parent
/// seed and up to two stream keys. This is the stream-splitting primitive
/// behind the parallel executor: per-block and per-probe generators are
/// keyed (never sequenced), so the draw a worker makes for block b cannot
/// depend on which other blocks its shard happened to process first.
constexpr std::uint64_t StreamSeed(std::uint64_t seed, std::uint64_t stream,
                                   std::uint64_t substream = 0) noexcept {
  return MixHash(seed ^ 0x51e255eedc0de4ULL, stream, substream);
}

/// xoshiro256++ generator. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via splitmix64.
  constexpr explicit Rng(std::uint64_t seed = 0x5eedf00dULL) noexcept {
    std::uint64_t s = seed;
    for (auto& word : state_) word = SplitMix64(s);
  }

  /// A generator for the keyed child stream (seed, stream, substream) —
  /// see StreamSeed. Stateless in the parent: any caller holding the same
  /// keys gets the same stream, in any order, from any thread.
  static constexpr Rng ForStream(std::uint64_t seed, std::uint64_t stream,
                                 std::uint64_t substream = 0) noexcept {
    return Rng{StreamSeed(seed, stream, substream)};
  }

  /// Splits a keyed child generator off this one *without* advancing or
  /// reading mutable state: the child is a pure function of the parent's
  /// current state and `key`, so equal parents split equal children.
  constexpr Rng Split(std::uint64_t key) const noexcept {
    return Rng{MixHash(state_[0] ^ key, state_[1], state_[3])};
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result =
        Rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound) noexcept;

  /// true with probability p (clamped to [0, 1]).
  bool NextBool(double p) noexcept { return NextDouble() < p; }

  /// Standard normal deviate (Marsaglia polar method).
  double NextGaussian() noexcept;

  /// Full generator state, exposed so checkpoints can persist and restore
  /// an in-flight stream (bit-identical resume across process restarts).
  struct State {
    std::array<std::uint64_t, 4> words{};
    bool have_spare = false;
    double spare = 0.0;
  };

  State SaveState() const noexcept { return {state_, have_spare_, spare_}; }
  void RestoreState(const State& state) noexcept {
    state_ = state.words;
    have_spare_ = state.have_spare;
    spare_ = state.spare;
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace sleepwalk

#endif  // SLEEPWALK_UTIL_RNG_H_
