// Checked integral narrowing for serialization code.
//
// The checkpoint and dataset writers narrow in-memory types (size_t,
// int, enum counts) into fixed on-disk widths. A raw static_cast there
// silently truncates when a campaign outgrows the field — exactly the
// class of bug that turns a resumed campaign into a franken-dataset.
// CheckedNarrow<T>() is the sanctioned spelling: it asserts the value is
// representable in the target type (debug builds abort; release builds
// clamp, which is still deterministic and cannot corrupt neighbouring
// fields). sleeplint's `no-unchecked-narrowing` rule bans the raw casts
// in checkpoint serialization files and points here.
#ifndef SLEEPWALK_UTIL_NARROW_H_
#define SLEEPWALK_UTIL_NARROW_H_

#include <cassert>
#include <cstdint>
#include <limits>
#include <type_traits>

namespace sleepwalk::util {

/// Narrow `value` to To, asserting (debug) / clamping (release) instead
/// of truncating. Usable on any integral-to-integral conversion,
/// including signed/unsigned crossings.
template <typename To, typename From>
constexpr To CheckedNarrow(From value) noexcept {
  static_assert(std::is_integral_v<To> && std::is_integral_v<From>,
                "CheckedNarrow is for integral types");
  constexpr To kMin = std::numeric_limits<To>::min();
  constexpr To kMax = std::numeric_limits<To>::max();
  bool below = false;
  bool above = false;
  if constexpr (std::is_signed_v<From>) {
    below = value < 0 && static_cast<std::intmax_t>(value) <
                             static_cast<std::intmax_t>(kMin);
    above = value > 0 && static_cast<std::uintmax_t>(value) >
                             static_cast<std::uintmax_t>(kMax);
  } else {
    above = static_cast<std::uintmax_t>(value) >
            static_cast<std::uintmax_t>(kMax);
  }
  assert(!below && !above && "CheckedNarrow: value out of range");
  if (below) return kMin;
  if (above) return kMax;
  return static_cast<To>(value);
}

/// Bool is always representable; spelled separately so call sites read
/// as intent (flag serialization) rather than a width change.
constexpr std::uint8_t BoolByte(bool value) noexcept {
  return value ? std::uint8_t{1} : std::uint8_t{0};
}

}  // namespace sleepwalk::util

#endif  // SLEEPWALK_UTIL_NARROW_H_
