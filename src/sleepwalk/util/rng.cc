#include "sleepwalk/util/rng.h"

#include <cmath>

namespace sleepwalk {

std::uint64_t Rng::NextBelow(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method with rejection to remove bias.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::NextGaussian() noexcept {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  have_spare_ = true;
  return u * factor;
}

}  // namespace sleepwalk
