// sleepwalk: a C++20 reproduction of "When the Internet Sleeps:
// Correlating Diurnal Networks With External Factors" (Quan, Heidemann,
// Pradkin — ACM IMC 2014).
//
// Umbrella header pulling in the full public API. Downstream users link
// against the `sleepwalk::sleepwalk` CMake target. See README.md for a
// quickstart and DESIGN.md for the architecture and experiment index.
#ifndef SLEEPWALK_SLEEPWALK_H_
#define SLEEPWALK_SLEEPWALK_H_

// Core contribution: availability estimation + diurnal detection.
#include "sleepwalk/core/agreement.h"
#include "sleepwalk/core/availability.h"
#include "sleepwalk/core/block_analyzer.h"
#include "sleepwalk/core/daily_profile.h"
#include "sleepwalk/core/dataset.h"
#include "sleepwalk/core/dataset_columnar.h"
#include "sleepwalk/core/diurnal.h"
#include "sleepwalk/core/checkpoint.h"
#include "sleepwalk/core/parallel_executor.h"
#include "sleepwalk/core/pipeline.h"
#include "sleepwalk/core/quick_screen.h"
#include "sleepwalk/core/status.h"
#include "sleepwalk/core/supervisor.h"

// Probing substrate (Trinocular).
#include "sleepwalk/probing/belief.h"
#include "sleepwalk/probing/prober.h"
#include "sleepwalk/probing/scheduler.h"
#include "sleepwalk/probing/walker.h"

// Fault injection (deterministic measurement-plane breakage).
#include "sleepwalk/faults/faulty_transport.h"
#include "sleepwalk/faults/plan.h"

// Networking primitives.
#include "sleepwalk/net/checksum.h"
#include "sleepwalk/net/icmp.h"
#include "sleepwalk/net/instrumented_transport.h"
#include "sleepwalk/net/ipv4.h"
#include "sleepwalk/net/rate_limiter.h"
#include "sleepwalk/net/socket.h"
#include "sleepwalk/net/transport.h"

// Observability: structured log, metrics registry, phase tracing.
#include "sleepwalk/obs/context.h"
#include "sleepwalk/obs/export.h"
#include "sleepwalk/obs/log.h"
#include "sleepwalk/obs/metrics.h"
#include "sleepwalk/obs/trace.h"

// Admin plane: live /metrics, /statusz, /tracez over loopback HTTP.
#include "sleepwalk/serve/admin_server.h"
#include "sleepwalk/serve/http.h"
#include "sleepwalk/serve/routes.h"

// Signal processing and statistics.
#include "sleepwalk/fft/fft.h"
#include "sleepwalk/fft/goertzel.h"
#include "sleepwalk/fft/spectrum.h"
#include "sleepwalk/stats/anova.h"
#include "sleepwalk/stats/descriptive.h"
#include "sleepwalk/stats/distributions.h"
#include "sleepwalk/stats/histogram.h"
#include "sleepwalk/stats/regression.h"
#include "sleepwalk/ts/clean.h"
#include "sleepwalk/ts/series.h"
#include "sleepwalk/ts/stationarity.h"

// External-factor substrates.
#include "sleepwalk/asn/asmap.h"
#include "sleepwalk/asn/orgs.h"
#include "sleepwalk/geo/geodb.h"
#include "sleepwalk/geo/grid.h"
#include "sleepwalk/geo/phase_geolocator.h"
#include "sleepwalk/geo/region.h"
#include "sleepwalk/rdns/classifier.h"
#include "sleepwalk/rdns/dns_codec.h"
#include "sleepwalk/rdns/dns_resolver.h"
#include "sleepwalk/rdns/names.h"
#include "sleepwalk/world/economics.h"
#include "sleepwalk/world/iana.h"

// Simulated Internet.
#include "sleepwalk/sim/behavior.h"
#include "sleepwalk/sim/block.h"
#include "sleepwalk/sim/survey.h"
#include "sleepwalk/sim/world.h"

// Reporting helpers.
#include "sleepwalk/report/chart.h"
#include "sleepwalk/report/csv.h"
#include "sleepwalk/report/image.h"
#include "sleepwalk/report/resilience.h"
#include "sleepwalk/report/table.h"

// Crash-safe storage layer and deterministic failure injection.
#include "sleepwalk/storage/bytes.h"
#include "sleepwalk/storage/faulty_env.h"
#include "sleepwalk/storage/file.h"
#include "sleepwalk/util/failpoint.h"

#endif  // SLEEPWALK_SLEEPWALK_H_
