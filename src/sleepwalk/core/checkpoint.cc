#include "sleepwalk/core/checkpoint.h"

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <type_traits>
#include <utility>

#include "sleepwalk/core/block_store.h"
#include "sleepwalk/net/checksum.h"
#include "sleepwalk/storage/bytes.h"
#include "sleepwalk/storage/columnar.h"
#include "sleepwalk/util/narrow.h"
#include "sleepwalk/util/rng.h"

namespace sleepwalk::core {

namespace {

using storage::ByteReader;
using storage::ByteWriter;

constexpr char kMagic[4] = {'S', 'L', 'C', 'K'};

// Section ids of the v2 framing; every id appears exactly once.
constexpr std::uint32_t kSectionMeta = 1;
constexpr std::uint32_t kSectionCompleted = 2;
constexpr std::uint32_t kSectionQuarantined = 3;
constexpr std::uint32_t kSectionInflight = 4;
constexpr std::uint32_t kSectionTransport = 5;
constexpr std::uint32_t kSectionCount = 5;

// Bytes between the magic and the header CRC: u32 version
// + u64 fingerprint + u64 generation + u32 n_sections.
constexpr std::size_t kHeaderBytes = 4 + 8 + 8 + 4;

// v3 column ids (container kind kCheckpointKind). The small v2 sections
// keep their exact payload encodings as byte-blob columns; COMPLETED is
// shredded into fixed-width per-record columns (ids 10..32, one row per
// completed analysis) plus three concatenated variable-length blobs
// (ids 40..42) indexed by the per-record length columns.
constexpr std::uint32_t kColMeta = 1;         // META payload, meta v == 3
constexpr std::uint32_t kColQuarantined = 2;  // u32 prefix indices
constexpr std::uint32_t kColInflight = 3;     // INFLIGHT payload blob
constexpr std::uint32_t kColTransport = 4;    // transport state blob
constexpr std::uint32_t kColBlockIndex = 10;      // u32
constexpr std::uint32_t kColProbed = 11;          // u8
constexpr std::uint32_t kColEverActive = 12;      // i32
constexpr std::uint32_t kColSeriesFirstRound = 13;  // i64
constexpr std::uint32_t kColSeriesLen = 14;       // u64
constexpr std::uint32_t kColObservedDays = 15;    // i32
constexpr std::uint32_t kColClassification = 16;  // u8
constexpr std::uint32_t kColNDays = 17;           // i32
constexpr std::uint32_t kColDailyBin = 18;        // u64
constexpr std::uint32_t kColDailyAmplitude = 19;  // f64
constexpr std::uint32_t kColPhase = 20;           // f64
constexpr std::uint32_t kColStrongestBin = 21;    // u64
constexpr std::uint32_t kColStrongestAmplitude = 22;  // f64
constexpr std::uint32_t kColStrongestCycles = 23;     // f64
constexpr std::uint32_t kColSlopePerRound = 24;   // f64
constexpr std::uint32_t kColAddressesPerDay = 25; // f64
constexpr std::uint32_t kColStationary = 26;      // u8
constexpr std::uint32_t kColMeanShort = 27;       // f64
constexpr std::uint32_t kColFinalOperational = 28;  // f64
constexpr std::uint32_t kColMeanProbes = 29;      // f64
constexpr std::uint32_t kColDownRounds = 30;      // i32
constexpr std::uint32_t kColOutageStartCount = 31;  // u64
constexpr std::uint32_t kColOutageCount = 32;       // u64
constexpr std::uint32_t kColEstPShort = 33;       // f64
constexpr std::uint32_t kColEstTShort = 34;       // f64
constexpr std::uint32_t kColEstPLong = 35;        // f64
constexpr std::uint32_t kColEstTLong = 36;        // f64
constexpr std::uint32_t kColEstDeviation = 37;    // f64
constexpr std::uint32_t kColEstRounds = 38;       // i32
constexpr std::uint32_t kColSeriesValues = 40;    // f64, concatenated
constexpr std::uint32_t kColOutageStarts = 41;    // i64, concatenated
constexpr std::uint32_t kColOutages = 42;  // i64 pairs (start, rounds)

// Sanity bound on any serialized count: a campaign has < 2^32 of
// anything, and a corrupt header must not drive a multi-GB resize.
constexpr std::uint64_t kMaxCount = 1ull << 32;

void PutStats(ByteWriter& out, const report::ResilienceStats& stats) {
  const auto& p = stats.probes;
  out.Put(p.attempts);
  out.Put(p.errors);
  out.Put(p.answered);
  out.Put(p.lost);
  out.Put(p.rate_limited);
  out.Put(p.unreachable);
  out.Put(stats.rounds_attempted);
  out.Put(stats.rounds_failed);
  out.Put(stats.rounds_gapped);
  out.Put(stats.retries);
  out.Put(stats.backoff_seconds);
  out.Put(stats.forced_restarts);
  out.Put(stats.quarantined_blocks);
  out.Put(stats.checkpoints_written);
  // resumed_from_checkpoint is deliberately NOT persisted since v2: it
  // is process-lifetime information (AdoptCheckpoint sets it), and
  // keeping it out makes a resumed campaign's final checkpoint
  // byte-identical to an uninterrupted run's.
}

bool GetStats(ByteReader& in, report::ResilienceStats& stats) {
  auto& p = stats.probes;
  return in.Get(p.attempts) && in.Get(p.errors) && in.Get(p.answered) &&
         in.Get(p.lost) && in.Get(p.rate_limited) && in.Get(p.unreachable) &&
         in.Get(stats.rounds_attempted) && in.Get(stats.rounds_failed) &&
         in.Get(stats.rounds_gapped) && in.Get(stats.retries) &&
         in.Get(stats.backoff_seconds) && in.Get(stats.forced_restarts) &&
         in.Get(stats.quarantined_blocks) &&
         in.Get(stats.checkpoints_written);
}

void PutAnalysis(ByteWriter& out, const BlockAnalysis& analysis) {
  out.Put(analysis.block.Index());
  out.Put(util::BoolByte(analysis.probed));
  out.Put(util::CheckedNarrow<std::int32_t>(analysis.ever_active));
  out.Put(analysis.short_series.first_round);
  out.Put(static_cast<std::uint64_t>(analysis.short_series.size()));
  out.PutArray(std::span<const double>{analysis.short_series.values});
  out.Put(util::CheckedNarrow<std::int32_t>(analysis.observed_days));
  out.Put(util::CheckedNarrow<std::uint8_t>(
      static_cast<int>(analysis.diurnal.classification)));
  out.Put(util::CheckedNarrow<std::int32_t>(analysis.diurnal.n_days));
  out.Put(static_cast<std::uint64_t>(analysis.diurnal.daily_bin));
  out.Put(analysis.diurnal.daily_amplitude);
  out.Put(analysis.diurnal.phase);
  out.Put(static_cast<std::uint64_t>(analysis.diurnal.strongest_bin));
  out.Put(analysis.diurnal.strongest_amplitude);
  out.Put(analysis.diurnal.strongest_cycles_per_day);
  out.Put(analysis.stationarity.slope_per_round);
  out.Put(analysis.stationarity.addresses_per_day);
  out.Put(util::BoolByte(analysis.stationarity.stationary));
  out.Put(analysis.mean_short);
  out.Put(analysis.final_operational);
  out.Put(analysis.mean_probes_per_round);
  out.Put(util::CheckedNarrow<std::int32_t>(analysis.down_rounds));
  out.Put(static_cast<std::uint64_t>(analysis.outage_starts.size()));
  for (const auto start : analysis.outage_starts) out.Put(start);
  out.Put(static_cast<std::uint64_t>(analysis.outages.size()));
  for (const auto& outage : analysis.outages) {
    out.Put(outage.start_round);
    out.Put(outage.rounds);
  }
}

bool GetAnalysis(ByteReader& in, BlockAnalysis& analysis) {
  std::uint32_t index = 0;
  std::uint8_t probed = 0;
  std::int32_t ever_active = 0;
  std::uint64_t n_samples = 0;
  if (!in.Get(index) || !in.Get(probed) || !in.Get(ever_active) ||
      !in.Get(analysis.short_series.first_round) || !in.Get(n_samples) ||
      n_samples > kMaxCount) {
    return false;
  }
  analysis.block = net::Prefix24::FromIndex(index);
  analysis.probed = probed != 0;
  analysis.ever_active = ever_active;
  analysis.short_series.values.resize(n_samples);
  if (!in.GetArray(analysis.short_series.values.data(), n_samples)) {
    return false;
  }
  std::int32_t observed_days = 0;
  std::uint8_t classification = 0;
  std::int32_t n_days = 0;
  std::uint64_t daily_bin = 0;
  std::uint64_t strongest_bin = 0;
  std::uint8_t stationary = 0;
  std::int32_t down_rounds = 0;
  std::uint64_t n_starts = 0;
  if (!in.Get(observed_days) || !in.Get(classification) ||
      !in.Get(n_days) || !in.Get(daily_bin) ||
      !in.Get(analysis.diurnal.daily_amplitude) ||
      !in.Get(analysis.diurnal.phase) || !in.Get(strongest_bin) ||
      !in.Get(analysis.diurnal.strongest_amplitude) ||
      !in.Get(analysis.diurnal.strongest_cycles_per_day) ||
      !in.Get(analysis.stationarity.slope_per_round) ||
      !in.Get(analysis.stationarity.addresses_per_day) ||
      !in.Get(stationary) || !in.Get(analysis.mean_short) ||
      !in.Get(analysis.final_operational) ||
      !in.Get(analysis.mean_probes_per_round) || !in.Get(down_rounds) ||
      !in.Get(n_starts) || n_starts > kMaxCount) {
    return false;
  }
  analysis.observed_days = observed_days;
  analysis.diurnal.classification = static_cast<Diurnality>(classification);
  analysis.diurnal.n_days = n_days;
  analysis.diurnal.daily_bin = static_cast<std::size_t>(daily_bin);
  analysis.diurnal.strongest_bin = static_cast<std::size_t>(strongest_bin);
  analysis.stationarity.stationary = stationary != 0;
  analysis.down_rounds = down_rounds;
  analysis.outage_starts.resize(n_starts);
  for (auto& start : analysis.outage_starts) {
    if (!in.Get(start)) return false;
  }
  std::uint64_t n_outages = 0;
  if (!in.Get(n_outages) || n_outages > kMaxCount) return false;
  analysis.outages.resize(n_outages);
  for (auto& outage : analysis.outages) {
    if (!in.Get(outage.start_round) || !in.Get(outage.rounds)) {
      return false;
    }
  }
  return true;
}

void PutAnalyzerState(ByteWriter& out, const BlockAnalyzerState& state) {
  out.Put(state.estimator.p_short);
  out.Put(state.estimator.t_short);
  out.Put(state.estimator.p_long);
  out.Put(state.estimator.t_long);
  out.Put(state.estimator.deviation);
  out.Put(util::CheckedNarrow<std::int32_t>(state.estimator.rounds));
  out.Put(util::BoolByte(state.has_prober));
  out.Put(state.prober.cursor);
  out.Put(state.prober.belief);
  out.Put(static_cast<std::uint64_t>(state.raw.size()));
  for (const auto& observation : state.raw) {
    out.Put(observation.round);
    out.Put(observation.value);
  }
  out.Put(state.total_probes);
  out.Put(state.rounds_run);
  out.Put(util::CheckedNarrow<std::int32_t>(state.down_rounds));
  out.Put(util::BoolByte(state.previous_down));
  out.Put(static_cast<std::uint64_t>(state.outage_starts.size()));
  for (const auto start : state.outage_starts) out.Put(start);
  out.Put(static_cast<std::uint64_t>(state.outages.size()));
  for (const auto& outage : state.outages) {
    out.Put(outage.start_round);
    out.Put(outage.rounds);
  }
}

bool GetAnalyzerState(ByteReader& in, BlockAnalyzerState& state) {
  std::int32_t estimator_rounds = 0;
  std::uint8_t has_prober = 0;
  std::uint64_t n_raw = 0;
  if (!in.Get(state.estimator.p_short) || !in.Get(state.estimator.t_short) ||
      !in.Get(state.estimator.p_long) || !in.Get(state.estimator.t_long) ||
      !in.Get(state.estimator.deviation) || !in.Get(estimator_rounds) ||
      !in.Get(has_prober) || !in.Get(state.prober.cursor) ||
      !in.Get(state.prober.belief) || !in.Get(n_raw) || n_raw > kMaxCount) {
    return false;
  }
  state.estimator.rounds = estimator_rounds;
  state.has_prober = has_prober != 0;
  state.raw.resize(n_raw);
  for (auto& observation : state.raw) {
    if (!in.Get(observation.round) || !in.Get(observation.value)) {
      return false;
    }
  }
  std::int32_t down_rounds = 0;
  std::uint8_t previous_down = 0;
  std::uint64_t n_starts = 0;
  if (!in.Get(state.total_probes) || !in.Get(state.rounds_run) ||
      !in.Get(down_rounds) || !in.Get(previous_down) ||
      !in.Get(n_starts) || n_starts > kMaxCount) {
    return false;
  }
  state.down_rounds = down_rounds;
  state.previous_down = previous_down != 0;
  state.outage_starts.resize(n_starts);
  for (auto& start : state.outage_starts) {
    if (!in.Get(start)) return false;
  }
  std::uint64_t n_outages = 0;
  if (!in.Get(n_outages) || n_outages > kMaxCount) return false;
  state.outages.resize(n_outages);
  for (auto& outage : state.outages) {
    if (!in.Get(outage.start_round) || !in.Get(outage.rounds)) {
      return false;
    }
  }
  return true;
}

void AppendSection(ByteWriter& out, std::uint32_t id, ByteWriter payload) {
  const auto bytes = payload.Take();
  out.Put(id);
  out.Put(static_cast<std::uint64_t>(bytes.size()));
  out.Put(net::Crc32cOf(bytes));
  out.PutBytes(bytes);
}

bool DecodeMeta(ByteReader& in, Checkpoint& checkpoint,
                CheckpointLoadReport& report,
                std::uint32_t expected_version = kCheckpointVersion) {
  std::uint32_t meta_version = 0;
  if (!in.Get(meta_version)) return false;
  if (meta_version != expected_version) {
    // A v2 container carrying another version's payload is a spliced /
    // mixed-version file; refuse rather than reinterpret.
    report.version_refused = true;
    report.detail = "META format version mismatch";
    return false;
  }
  return in.Get(checkpoint.counts.strict) &&
         in.Get(checkpoint.counts.relaxed) &&
         in.Get(checkpoint.counts.non_diurnal) &&
         in.Get(checkpoint.counts.skipped) &&
         GetStats(in, checkpoint.stats) && in.Get(checkpoint.next_block) &&
         in.remaining() == 0;
}

bool DecodeCompleted(ByteReader& in, Checkpoint& checkpoint) {
  std::uint64_t count = 0;
  if (!in.Get(count) || count > kMaxCount) return false;
  checkpoint.completed.resize(count);
  for (auto& analysis : checkpoint.completed) {
    if (!GetAnalysis(in, analysis)) return false;
  }
  return in.remaining() == 0;
}

bool DecodeQuarantined(ByteReader& in, Checkpoint& checkpoint) {
  std::uint64_t count = 0;
  if (!in.Get(count) || count > kMaxCount) return false;
  checkpoint.quarantined.resize(count);
  for (auto& index : checkpoint.quarantined) {
    if (!in.Get(index)) return false;
  }
  return in.remaining() == 0;
}

bool DecodeInflight(ByteReader& in, Checkpoint& checkpoint) {
  std::uint8_t has_inflight = 0;
  if (!in.Get(has_inflight)) return false;
  checkpoint.has_inflight = has_inflight != 0;
  if (!checkpoint.has_inflight) return in.remaining() == 0;
  std::int32_t failures = 0;
  if (!in.Get(checkpoint.inflight_next_round) || !in.Get(failures) ||
      !GetAnalyzerState(in, checkpoint.inflight)) {
    return false;
  }
  checkpoint.inflight_consecutive_failures = failures;
  return in.remaining() == 0;
}

/// SLCK v1: the unframed stream format (no checksums, resumed flag
/// persisted). Reader is positioned just after the u32 version.
std::optional<Checkpoint> DecodeV1(ByteReader& in,
                                   CheckpointLoadReport& report) {
  const auto fail = [&report](const char* what) -> std::optional<Checkpoint> {
    report.corrupt_sections = std::max(report.corrupt_sections, 1);
    if (report.detail.empty()) report.detail = what;
    return std::nullopt;
  };
  Checkpoint checkpoint;
  std::uint8_t resumed = 0;
  if (!in.Get(checkpoint.fingerprint) ||
      !in.Get(checkpoint.counts.strict) ||
      !in.Get(checkpoint.counts.relaxed) ||
      !in.Get(checkpoint.counts.non_diurnal) ||
      !in.Get(checkpoint.counts.skipped) ||
      !GetStats(in, checkpoint.stats) || !in.Get(resumed)) {
    return fail("v1 header/stats truncated");
  }
  checkpoint.stats.resumed_from_checkpoint = resumed != 0;
  std::uint64_t completed_count = 0;
  if (!in.Get(completed_count) || completed_count > kMaxCount) {
    return fail("v1 completed count");
  }
  checkpoint.completed.resize(completed_count);
  for (auto& analysis : checkpoint.completed) {
    if (!GetAnalysis(in, analysis)) return fail("v1 completed record");
  }
  std::uint64_t quarantined_count = 0;
  if (!in.Get(quarantined_count) || quarantined_count > kMaxCount) {
    return fail("v1 quarantined count");
  }
  checkpoint.quarantined.resize(quarantined_count);
  for (auto& index : checkpoint.quarantined) {
    if (!in.Get(index)) return fail("v1 quarantined record");
  }
  std::uint8_t has_inflight = 0;
  if (!in.Get(checkpoint.next_block) || !in.Get(has_inflight)) {
    return fail("v1 cursor");
  }
  checkpoint.has_inflight = has_inflight != 0;
  if (checkpoint.has_inflight) {
    std::int32_t failures = 0;
    if (!in.Get(checkpoint.inflight_next_round) || !in.Get(failures) ||
        !GetAnalyzerState(in, checkpoint.inflight)) {
      return fail("v1 inflight state");
    }
    checkpoint.inflight_consecutive_failures = failures;
  }
  std::uint64_t transport_bytes = 0;
  if (!in.Get(transport_bytes) || transport_bytes > kMaxCount) {
    return fail("v1 transport length");
  }
  checkpoint.transport_state.resize(transport_bytes);
  if (!in.GetBytes(checkpoint.transport_state.data(), transport_bytes)) {
    return fail("v1 transport bytes");
  }
  report.generation = checkpoint.stats.checkpoints_written;
  return checkpoint;
}

/// SLCK v3: the columnar container. The whole span (not a ByteReader)
/// goes to the storage-layer parser, which validates every byte before
/// a column is exposed; this function only reassembles Checkpoint rows
/// from validated typed spans.
std::optional<Checkpoint> DecodeV3(std::span<const std::uint8_t> bytes,
                                   CheckpointLoadReport& report) {
  const auto fail = [&report](std::string what) -> std::optional<Checkpoint> {
    ++report.corrupt_sections;
    if (report.detail.empty()) report.detail = std::move(what);
    return std::nullopt;
  };

  storage::ColumnarReader reader;
  if (auto error = reader.Parse(
          bytes, std::string_view{kMagic, sizeof(kMagic)});
      !error.ok()) {
    return fail(error.detail);
  }
  report.generation = reader.generation();
  if (reader.kind() != kCheckpointKind) {
    return fail("container kind is not a checkpoint");
  }

  Checkpoint checkpoint;
  checkpoint.fingerprint = reader.fingerprint();

  const auto blob = [&reader](std::uint32_t id) {
    const storage::ColumnarColumn* column = reader.Find(id);
    return column != nullptr && column->elem_width == 1
               ? std::optional(column->bytes)
               : std::nullopt;
  };

  const auto meta_bytes = blob(kColMeta);
  if (!meta_bytes) return fail("META column missing");
  ByteReader meta{*meta_bytes};
  if (!DecodeMeta(meta, checkpoint, report, kCheckpointVersionColumnar)) {
    if (report.version_refused) return std::nullopt;
    return fail("META column malformed");
  }

  const storage::ColumnarColumn* quarantined = reader.Find(kColQuarantined);
  std::span<const std::uint32_t> quarantined_rows;
  if (quarantined == nullptr ||
      !reader.FetchTyped(kColQuarantined, quarantined->rows,
                         quarantined_rows)) {
    return fail("QUARANTINED column missing or mis-typed");
  }
  checkpoint.quarantined.assign(quarantined_rows.begin(),
                                quarantined_rows.end());

  const auto inflight_bytes = blob(kColInflight);
  if (!inflight_bytes) return fail("INFLIGHT column missing");
  ByteReader inflight{*inflight_bytes};
  if (!DecodeInflight(inflight, checkpoint)) {
    return fail("INFLIGHT column malformed");
  }

  const auto transport_bytes = blob(kColTransport);
  if (!transport_bytes) return fail("TRANSPORT column missing");
  checkpoint.transport_state.assign(transport_bytes->begin(),
                                    transport_bytes->end());

  // Completed analyses: every per-record column must agree on the row
  // count, and each blob must be exactly as long as the length columns
  // claim — no blob byte may be orphaned or double-counted.
  const storage::ColumnarColumn* index_column = reader.Find(kColBlockIndex);
  if (index_column == nullptr) return fail("COMPLETED index column missing");
  const std::uint64_t n = index_column->rows;
  if (n > kMaxCount) return fail("implausible completed count");

  std::span<const std::uint32_t> block_index;
  std::span<const std::uint8_t> probed, classification, stationary;
  std::span<const std::int32_t> ever_active, observed_days, n_days,
      down_rounds;
  std::span<const std::int64_t> series_first_round;
  std::span<const std::uint64_t> series_len, daily_bin, strongest_bin,
      outage_start_count, outage_count;
  std::span<const double> daily_amplitude, phase, strongest_amplitude,
      strongest_cycles, slope_per_round, addresses_per_day, mean_short,
      final_operational, mean_probes;
  if (!reader.FetchTyped(kColBlockIndex, n, block_index) ||
      !reader.FetchTyped(kColProbed, n, probed) ||
      !reader.FetchTyped(kColEverActive, n, ever_active) ||
      !reader.FetchTyped(kColSeriesFirstRound, n, series_first_round) ||
      !reader.FetchTyped(kColSeriesLen, n, series_len) ||
      !reader.FetchTyped(kColObservedDays, n, observed_days) ||
      !reader.FetchTyped(kColClassification, n, classification) ||
      !reader.FetchTyped(kColNDays, n, n_days) ||
      !reader.FetchTyped(kColDailyBin, n, daily_bin) ||
      !reader.FetchTyped(kColDailyAmplitude, n, daily_amplitude) ||
      !reader.FetchTyped(kColPhase, n, phase) ||
      !reader.FetchTyped(kColStrongestBin, n, strongest_bin) ||
      !reader.FetchTyped(kColStrongestAmplitude, n, strongest_amplitude) ||
      !reader.FetchTyped(kColStrongestCycles, n, strongest_cycles) ||
      !reader.FetchTyped(kColSlopePerRound, n, slope_per_round) ||
      !reader.FetchTyped(kColAddressesPerDay, n, addresses_per_day) ||
      !reader.FetchTyped(kColStationary, n, stationary) ||
      !reader.FetchTyped(kColMeanShort, n, mean_short) ||
      !reader.FetchTyped(kColFinalOperational, n, final_operational) ||
      !reader.FetchTyped(kColMeanProbes, n, mean_probes) ||
      !reader.FetchTyped(kColDownRounds, n, down_rounds) ||
      !reader.FetchTyped(kColOutageStartCount, n, outage_start_count) ||
      !reader.FetchTyped(kColOutageCount, n, outage_count)) {
    return fail("COMPLETED column missing, mis-typed, or row-count skew");
  }
  std::span<const double> est_p_short, est_t_short, est_p_long, est_t_long,
      est_deviation;
  std::span<const std::int32_t> est_rounds;
  if (!reader.FetchTyped(kColEstPShort, n, est_p_short) ||
      !reader.FetchTyped(kColEstTShort, n, est_t_short) ||
      !reader.FetchTyped(kColEstPLong, n, est_p_long) ||
      !reader.FetchTyped(kColEstTLong, n, est_t_long) ||
      !reader.FetchTyped(kColEstDeviation, n, est_deviation) ||
      !reader.FetchTyped(kColEstRounds, n, est_rounds)) {
    return fail("estimator column missing, mis-typed, or row-count skew");
  }

  const storage::ColumnarColumn* series_column =
      reader.Find(kColSeriesValues);
  const storage::ColumnarColumn* starts_column =
      reader.Find(kColOutageStarts);
  const storage::ColumnarColumn* outages_column = reader.Find(kColOutages);
  std::span<const double> series_values;
  std::span<const std::int64_t> outage_starts, outage_pairs;
  if (series_column == nullptr || starts_column == nullptr ||
      outages_column == nullptr ||
      !reader.FetchTyped(kColSeriesValues, series_column->rows,
                         series_values) ||
      !reader.FetchTyped(kColOutageStarts, starts_column->rows,
                         outage_starts) ||
      !reader.FetchTyped(kColOutages, outages_column->rows, outage_pairs)) {
    return fail("COMPLETED blob column missing or mis-typed");
  }

  checkpoint.completed.resize(n);
  checkpoint.estimators.resize(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    AvailabilityState& state = checkpoint.estimators[i];
    state.p_short = est_p_short[i];
    state.t_short = est_t_short[i];
    state.p_long = est_p_long[i];
    state.t_long = est_t_long[i];
    state.deviation = est_deviation[i];
    state.rounds = est_rounds[i];
  }
  std::uint64_t series_cursor = 0;
  std::uint64_t starts_cursor = 0;
  std::uint64_t outages_cursor = 0;  // in pairs
  for (std::uint64_t i = 0; i < n; ++i) {
    BlockAnalysis& analysis = checkpoint.completed[i];
    const std::uint64_t samples = series_len[i];
    const std::uint64_t starts = outage_start_count[i];
    const std::uint64_t outages = outage_count[i];
    if (samples > series_values.size() - series_cursor ||
        starts > outage_starts.size() - starts_cursor ||
        outages > outage_pairs.size() / 2 - outages_cursor) {
      return fail("COMPLETED blob shorter than its length columns");
    }
    analysis.block = net::Prefix24::FromIndex(block_index[i]);
    analysis.probed = probed[i] != 0;
    analysis.ever_active = ever_active[i];
    analysis.short_series.first_round = series_first_round[i];
    analysis.short_series.values.assign(
        series_values.begin() + static_cast<std::ptrdiff_t>(series_cursor),
        series_values.begin() +
            static_cast<std::ptrdiff_t>(series_cursor + samples));
    series_cursor += samples;
    analysis.observed_days = observed_days[i];
    analysis.diurnal.classification =
        static_cast<Diurnality>(classification[i]);
    analysis.diurnal.n_days = n_days[i];
    analysis.diurnal.daily_bin = static_cast<std::size_t>(daily_bin[i]);
    analysis.diurnal.daily_amplitude = daily_amplitude[i];
    analysis.diurnal.phase = phase[i];
    analysis.diurnal.strongest_bin =
        static_cast<std::size_t>(strongest_bin[i]);
    analysis.diurnal.strongest_amplitude = strongest_amplitude[i];
    analysis.diurnal.strongest_cycles_per_day = strongest_cycles[i];
    analysis.stationarity.slope_per_round = slope_per_round[i];
    analysis.stationarity.addresses_per_day = addresses_per_day[i];
    analysis.stationarity.stationary = stationary[i] != 0;
    analysis.mean_short = mean_short[i];
    analysis.final_operational = final_operational[i];
    analysis.mean_probes_per_round = mean_probes[i];
    analysis.down_rounds = down_rounds[i];
    analysis.outage_starts.assign(
        outage_starts.begin() + static_cast<std::ptrdiff_t>(starts_cursor),
        outage_starts.begin() +
            static_cast<std::ptrdiff_t>(starts_cursor + starts));
    starts_cursor += starts;
    analysis.outages.resize(outages);
    for (std::uint64_t o = 0; o < outages; ++o) {
      analysis.outages[o].start_round =
          outage_pairs[2 * (outages_cursor + o)];
      analysis.outages[o].rounds =
          outage_pairs[2 * (outages_cursor + o) + 1];
    }
    outages_cursor += outages;
  }
  if (series_cursor != series_values.size() ||
      starts_cursor != outage_starts.size() ||
      outages_cursor * 2 != outage_pairs.size()) {
    return fail("COMPLETED blob longer than its length columns");
  }
  return checkpoint;
}

}  // namespace

std::uint64_t CampaignFingerprint(const std::vector<BlockTarget>& targets,
                                  std::int64_t n_rounds, std::uint64_t seed,
                                  const AnalyzerConfig& config) {
  std::uint64_t hash = MixHash(seed, static_cast<std::uint64_t>(n_rounds),
                               targets.size());
  hash = MixHash(hash,
                 static_cast<std::uint64_t>(config.schedule.round_seconds),
                 static_cast<std::uint64_t>(
                     config.schedule.restart_every_rounds));
  hash = MixHash(hash, static_cast<std::uint64_t>(config.schedule.epoch_sec),
                 static_cast<std::uint64_t>(config.min_ever_active));
  for (const auto& target : targets) {
    hash = MixHash(hash, target.block.Index(), target.ever_active.size());
  }
  return hash;
}

std::vector<std::uint8_t> EncodeCheckpoint(const Checkpoint& checkpoint) {
  ByteWriter out;
  out.PutBytes(std::span{reinterpret_cast<const std::uint8_t*>(kMagic),
                         sizeof(kMagic)});

  ByteWriter header;
  header.Put(kCheckpointVersion);
  header.Put(checkpoint.fingerprint);
  header.Put(checkpoint.stats.checkpoints_written);  // generation
  header.Put(kSectionCount);
  out.PutBytes(header.bytes());
  out.Put(net::Crc32cOf(header.bytes()));

  ByteWriter meta;
  meta.Put(kCheckpointVersion);
  meta.Put(checkpoint.counts.strict);
  meta.Put(checkpoint.counts.relaxed);
  meta.Put(checkpoint.counts.non_diurnal);
  meta.Put(checkpoint.counts.skipped);
  PutStats(meta, checkpoint.stats);
  meta.Put(checkpoint.next_block);
  AppendSection(out, kSectionMeta, std::move(meta));

  ByteWriter completed;
  // The COMPLETED section carries nearly all of the file; pre-size both
  // it and the assembly buffer so encoding a campaign-sized checkpoint
  // is one pass of memcpys, not a chain of regrowth copies. 128 bytes
  // generously covers everything in a record besides its series.
  std::size_t completed_bytes = 8;
  for (const auto& analysis : checkpoint.completed) {
    completed_bytes += 128 + 8 * analysis.short_series.size() +
                       16 * analysis.outages.size() +
                       8 * analysis.outage_starts.size();
  }
  completed.Reserve(completed_bytes);
  out.Reserve(completed_bytes + checkpoint.transport_state.size() + 1024);
  completed.Put(static_cast<std::uint64_t>(checkpoint.completed.size()));
  for (const auto& analysis : checkpoint.completed) {
    PutAnalysis(completed, analysis);
  }
  AppendSection(out, kSectionCompleted, std::move(completed));

  ByteWriter quarantined;
  quarantined.Put(static_cast<std::uint64_t>(checkpoint.quarantined.size()));
  for (const auto index : checkpoint.quarantined) quarantined.Put(index);
  AppendSection(out, kSectionQuarantined, std::move(quarantined));

  ByteWriter inflight;
  inflight.Put(util::BoolByte(checkpoint.has_inflight));
  if (checkpoint.has_inflight) {
    inflight.Put(checkpoint.inflight_next_round);
    inflight.Put(util::CheckedNarrow<std::int32_t>(
        checkpoint.inflight_consecutive_failures));
    PutAnalyzerState(inflight, checkpoint.inflight);
  }
  AppendSection(out, kSectionInflight, std::move(inflight));

  ByteWriter transport;
  transport.PutBytes(checkpoint.transport_state);
  AppendSection(out, kSectionTransport, std::move(transport));

  return out.Take();
}

std::vector<std::uint8_t> EncodeCheckpointColumnar(
    const Checkpoint& checkpoint) {
  storage::ColumnarWriter writer(std::string_view{kMagic, sizeof(kMagic)},
                                 kCheckpointKind, checkpoint.fingerprint,
                                 checkpoint.stats.checkpoints_written);

  // The small v2 sections ride along as byte-blob columns with their
  // exact v2 payload encodings (META leads with the columnar format
  // version so a spliced v2 META blob is refused, mirroring v2's own
  // mixed-version check).
  ByteWriter meta;
  meta.Put(kCheckpointVersionColumnar);
  meta.Put(checkpoint.counts.strict);
  meta.Put(checkpoint.counts.relaxed);
  meta.Put(checkpoint.counts.non_diurnal);
  meta.Put(checkpoint.counts.skipped);
  PutStats(meta, checkpoint.stats);
  meta.Put(checkpoint.next_block);
  writer.Add(kColMeta, 1, meta.bytes());

  writer.AddTyped<std::uint32_t>(
      kColQuarantined, std::span<const std::uint32_t>{checkpoint.quarantined});

  ByteWriter inflight;
  inflight.Put(util::BoolByte(checkpoint.has_inflight));
  if (checkpoint.has_inflight) {
    inflight.Put(checkpoint.inflight_next_round);
    inflight.Put(util::CheckedNarrow<std::int32_t>(
        checkpoint.inflight_consecutive_failures));
    PutAnalyzerState(inflight, checkpoint.inflight);
  }
  writer.Add(kColInflight, 1, inflight.bytes());
  writer.Add(kColTransport, 1, checkpoint.transport_state);

  // COMPLETED, shredded: one fixed-width value per record per column,
  // series/outage payloads concatenated into blobs in record order.
  const std::size_t n = checkpoint.completed.size();
  std::vector<std::uint32_t> block_index;
  std::vector<std::uint8_t> probed, classification, stationary;
  std::vector<std::int32_t> ever_active, observed_days, n_days, down_rounds;
  std::vector<std::int64_t> series_first_round;
  std::vector<std::uint64_t> series_len, daily_bin, strongest_bin,
      outage_start_count, outage_count;
  std::vector<double> daily_amplitude, phase, strongest_amplitude,
      strongest_cycles, slope_per_round, addresses_per_day, mean_short,
      final_operational, mean_probes;
  for (auto* column :
       {&ever_active, &observed_days, &n_days, &down_rounds}) {
    column->reserve(n);
  }
  for (auto* column : {&daily_amplitude, &phase, &strongest_amplitude,
                       &strongest_cycles, &slope_per_round,
                       &addresses_per_day, &mean_short, &final_operational,
                       &mean_probes}) {
    column->reserve(n);
  }
  block_index.reserve(n);
  std::size_t total_samples = 0;
  std::size_t total_starts = 0;
  std::size_t total_outages = 0;
  for (const auto& analysis : checkpoint.completed) {
    total_samples += analysis.short_series.size();
    total_starts += analysis.outage_starts.size();
    total_outages += analysis.outages.size();
  }
  std::vector<double> series_values;
  series_values.reserve(total_samples);
  std::vector<std::int64_t> outage_starts, outage_pairs;
  outage_starts.reserve(total_starts);
  outage_pairs.reserve(2 * total_outages);

  for (const auto& analysis : checkpoint.completed) {
    block_index.push_back(analysis.block.Index());
    probed.push_back(util::BoolByte(analysis.probed));
    ever_active.push_back(
        util::CheckedNarrow<std::int32_t>(analysis.ever_active));
    series_first_round.push_back(analysis.short_series.first_round);
    series_len.push_back(analysis.short_series.size());
    series_values.insert(series_values.end(),
                         analysis.short_series.values.begin(),
                         analysis.short_series.values.end());
    observed_days.push_back(
        util::CheckedNarrow<std::int32_t>(analysis.observed_days));
    classification.push_back(util::CheckedNarrow<std::uint8_t>(
        static_cast<int>(analysis.diurnal.classification)));
    n_days.push_back(
        util::CheckedNarrow<std::int32_t>(analysis.diurnal.n_days));
    daily_bin.push_back(
        static_cast<std::uint64_t>(analysis.diurnal.daily_bin));
    daily_amplitude.push_back(analysis.diurnal.daily_amplitude);
    phase.push_back(analysis.diurnal.phase);
    strongest_bin.push_back(
        static_cast<std::uint64_t>(analysis.diurnal.strongest_bin));
    strongest_amplitude.push_back(analysis.diurnal.strongest_amplitude);
    strongest_cycles.push_back(analysis.diurnal.strongest_cycles_per_day);
    slope_per_round.push_back(analysis.stationarity.slope_per_round);
    addresses_per_day.push_back(analysis.stationarity.addresses_per_day);
    stationary.push_back(util::BoolByte(analysis.stationarity.stationary));
    mean_short.push_back(analysis.mean_short);
    final_operational.push_back(analysis.final_operational);
    mean_probes.push_back(analysis.mean_probes_per_round);
    down_rounds.push_back(
        util::CheckedNarrow<std::int32_t>(analysis.down_rounds));
    outage_start_count.push_back(analysis.outage_starts.size());
    outage_starts.insert(outage_starts.end(),
                         analysis.outage_starts.begin(),
                         analysis.outage_starts.end());
    outage_count.push_back(analysis.outages.size());
    for (const auto& outage : analysis.outages) {
      outage_pairs.push_back(outage.start_round);
      outage_pairs.push_back(outage.rounds);
    }
  }

  // Final estimator state, v3's addition over v2: pad with defaults
  // when the caller did not capture estimators (e.g. a re-encoded v2
  // decode) so the columns always agree with the record count.
  std::vector<double> est_p_short, est_t_short, est_p_long, est_t_long,
      est_deviation;
  std::vector<std::int32_t> est_rounds;
  for (auto* column : {&est_p_short, &est_t_short, &est_p_long, &est_t_long,
                       &est_deviation}) {
    column->reserve(n);
  }
  est_rounds.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const AvailabilityState state =
        i < checkpoint.estimators.size() ? checkpoint.estimators[i]
                                         : AvailabilityState{};
    est_p_short.push_back(state.p_short);
    est_t_short.push_back(state.t_short);
    est_p_long.push_back(state.p_long);
    est_t_long.push_back(state.t_long);
    est_deviation.push_back(state.deviation);
    est_rounds.push_back(util::CheckedNarrow<std::int32_t>(state.rounds));
  }

  const auto add = [&writer](std::uint32_t id, const auto& column) {
    using T = typename std::decay_t<decltype(column)>::value_type;
    writer.AddTyped<T>(id, std::span<const T>{column});
  };
  add(kColBlockIndex, block_index);
  add(kColProbed, probed);
  add(kColEverActive, ever_active);
  add(kColSeriesFirstRound, series_first_round);
  add(kColSeriesLen, series_len);
  add(kColObservedDays, observed_days);
  add(kColClassification, classification);
  add(kColNDays, n_days);
  add(kColDailyBin, daily_bin);
  add(kColDailyAmplitude, daily_amplitude);
  add(kColPhase, phase);
  add(kColStrongestBin, strongest_bin);
  add(kColStrongestAmplitude, strongest_amplitude);
  add(kColStrongestCycles, strongest_cycles);
  add(kColSlopePerRound, slope_per_round);
  add(kColAddressesPerDay, addresses_per_day);
  add(kColStationary, stationary);
  add(kColMeanShort, mean_short);
  add(kColFinalOperational, final_operational);
  add(kColMeanProbes, mean_probes);
  add(kColDownRounds, down_rounds);
  add(kColOutageStartCount, outage_start_count);
  add(kColOutageCount, outage_count);
  add(kColEstPShort, est_p_short);
  add(kColEstTShort, est_t_short);
  add(kColEstPLong, est_p_long);
  add(kColEstTLong, est_t_long);
  add(kColEstDeviation, est_deviation);
  add(kColEstRounds, est_rounds);
  add(kColSeriesValues, series_values);
  add(kColOutageStarts, outage_starts);
  add(kColOutages, outage_pairs);

  return writer.Finish();
}

std::vector<std::uint8_t> EncodeCheckpointAs(const Checkpoint& checkpoint,
                                             std::uint32_t format) {
  return format == kCheckpointVersionColumnar
             ? EncodeCheckpointColumnar(checkpoint)
             : EncodeCheckpoint(checkpoint);
}

std::optional<Checkpoint> DecodeCheckpoint(std::span<const std::uint8_t> bytes,
                                           CheckpointLoadReport* report) {
  CheckpointLoadReport scratch;
  CheckpointLoadReport& out = report != nullptr ? *report : scratch;
  out.found = true;

  ByteReader in{bytes};
  char magic[4] = {};
  if (!in.GetBytes(reinterpret_cast<std::uint8_t*>(magic), sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    out.bad_magic = true;
    out.detail = "bad magic";
    return std::nullopt;
  }
  if (!in.Get(out.version)) {
    out.corrupt_sections = 1;
    out.detail = "truncated before version";
    return std::nullopt;
  }
  if (out.version == 1) return DecodeV1(in, out);
  if (out.version == kCheckpointVersionColumnar) {
    return DecodeV3(bytes, out);
  }
  if (out.version != kCheckpointVersion) {
    out.version_refused = true;
    out.detail = "unsupported version";
    return std::nullopt;
  }

  Checkpoint checkpoint;
  std::uint32_t n_sections = 0;
  std::uint32_t header_crc = 0;
  if (!in.Get(checkpoint.fingerprint) || !in.Get(out.generation) ||
      !in.Get(n_sections) || !in.Get(header_crc)) {
    out.corrupt_sections = 1;
    out.detail = "truncated header";
    return std::nullopt;
  }
  if (bytes.size() < 4 + kHeaderBytes ||
      net::Crc32cOf(bytes.subspan(4, kHeaderBytes)) != header_crc) {
    out.corrupt_sections = 1;
    out.detail = "header CRC mismatch";
    return std::nullopt;
  }
  if (n_sections > 64) {
    out.corrupt_sections = 1;
    out.detail = "implausible section count";
    return std::nullopt;
  }

  const auto note = [&out](const std::string& what) {
    ++out.corrupt_sections;
    if (out.detail.empty()) out.detail = what;
  };

  bool seen[kSectionCount + 1] = {};
  for (std::uint32_t s = 0; s < n_sections; ++s) {
    std::uint32_t id = 0;
    std::uint64_t length = 0;
    std::uint32_t crc = 0;
    if (!in.Get(id) || !in.Get(length) || !in.Get(crc) ||
        length > in.remaining()) {
      // The frame chain itself is broken; nothing after it is locatable.
      note("section " + std::to_string(s) + " frame truncated");
      break;
    }
    const auto payload = in.Rest().first(length);
    in.Skip(length);
    if (net::Crc32cOf(payload) != crc) {
      note("section id " + std::to_string(id) + " CRC mismatch");
      continue;
    }
    if (id >= 1 && id <= kSectionCount) {
      if (seen[id]) {
        note("section id " + std::to_string(id) + " duplicated");
        continue;
      }
      seen[id] = true;
    }
    ByteReader section{payload};
    bool decoded = true;
    switch (id) {
      case kSectionMeta:
        decoded = DecodeMeta(section, checkpoint, out);
        if (out.version_refused) return std::nullopt;
        break;
      case kSectionCompleted:
        decoded = DecodeCompleted(section, checkpoint);
        break;
      case kSectionQuarantined:
        decoded = DecodeQuarantined(section, checkpoint);
        break;
      case kSectionInflight:
        decoded = DecodeInflight(section, checkpoint);
        break;
      case kSectionTransport:
        checkpoint.transport_state.assign(payload.begin(), payload.end());
        break;
      default:
        break;  // unknown-but-checksummed: skippable (forward compat)
    }
    if (!decoded) note("section id " + std::to_string(id) + " malformed");
  }

  if (in.remaining() != 0) note("trailing bytes after last section");
  for (std::uint32_t id = 1; id <= kSectionCount; ++id) {
    if (!seen[id]) note("section id " + std::to_string(id) + " missing");
  }
  if (out.corrupt_sections > 0) return std::nullopt;
  return checkpoint;
}

storage::Error WriteCheckpoint(storage::Env& env, const std::string& path,
                               const Checkpoint& checkpoint) {
  return storage::AtomicWrite(env, path, EncodeCheckpoint(checkpoint));
}

std::optional<Checkpoint> ReadCheckpoint(storage::Env& env,
                                         const std::string& path,
                                         CheckpointLoadReport* report) {
  std::vector<std::uint8_t> bytes;
  if (auto error = env.ReadAll(path, bytes); !error.ok()) {
    if (report != nullptr) {
      report->found = false;
      report->detail = error.ToString();
    }
    return std::nullopt;
  }
  return DecodeCheckpoint(bytes, report);
}

bool WriteCheckpoint(const std::string& path, const Checkpoint& checkpoint) {
  return WriteCheckpoint(storage::RealEnvInstance(), path, checkpoint).ok();
}

std::optional<Checkpoint> ReadCheckpoint(const std::string& path) {
  return ReadCheckpoint(storage::RealEnvInstance(), path, nullptr);
}

// ---------------------------------------------------------------------------
// CheckpointStore

CheckpointStore::CheckpointStore(storage::Env& env, std::string path,
                                 int keep, std::uint32_t format)
    : env_(env),
      path_(std::move(path)),
      dir_(storage::DirName(path_)),
      keep_(std::max(keep, 1)),
      format_(format) {
  const auto slash = path_.find_last_of('/');
  base_ = slash == std::string::npos ? path_ : path_.substr(slash + 1);
}

std::vector<std::pair<std::uint64_t, std::string>>
CheckpointStore::Generations() {
  std::vector<std::pair<std::uint64_t, std::string>> generations;
  const std::string prefix = base_ + ".g";
  for (const auto& name : env_.List(dir_)) {
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    const std::string digits = name.substr(prefix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;  // .corrupt remnants and other non-generation names
    }
    generations.emplace_back(std::strtoull(digits.c_str(), nullptr, 10),
                             dir_ + "/" + name);
  }
  std::sort(generations.begin(), generations.end());
  return generations;
}

storage::Error CheckpointStore::Save(const Checkpoint& checkpoint) {
  if (auto error = storage::AtomicWrite(
          env_, path_, EncodeCheckpointAs(checkpoint, format_));
      !error.ok()) {
    return error;
  }
  if (keep_ <= 1) return {};

  const std::uint64_t generation = checkpoint.stats.checkpoints_written;
  const std::string gen_path = path_ + ".g" + std::to_string(generation);
  if (env_.Exists(gen_path)) env_.Remove(gen_path);  // stale rerun leftover
  if (auto error = env_.Link(path_, gen_path); !error.ok()) return error;
  for (const auto& [gen, stale_path] : Generations()) {
    if (gen + static_cast<std::uint64_t>(keep_) <= generation) {
      env_.Remove(stale_path);
    }
  }
  return env_.SyncDir(dir_);
}

std::optional<Checkpoint> CheckpointStore::Load(std::uint64_t fingerprint,
                                                RecoveryEvents& events) {
  if (!env_.Exists(path_)) {
    // The primary file was never written or was deliberately deleted: a
    // fresh campaign. Stale generations from an earlier run must not
    // resurrect it behind the caller's back.
    DiscardGenerations();
    return std::nullopt;
  }

  std::vector<std::string> candidates{path_};
  auto generations = Generations();
  for (auto it = generations.rbegin(); it != generations.rend(); ++it) {
    candidates.push_back(it->second);
  }

  for (const auto& candidate : candidates) {
    // Through the Map seam: a v3 candidate decodes straight out of the
    // mapping (bulk column copies, no row-by-row pass over a heap
    // buffer); envs without real mmap fall back to a read, and decode
    // semantics are identical either way.
    storage::MappedRegion region;
    if (auto error = env_.Map(candidate, region); !error.ok()) continue;
    CheckpointLoadReport report;
    auto checkpoint = DecodeCheckpoint(region.bytes(), &report);
    if (!checkpoint) {
      events.corrupt_sections +=
          static_cast<std::uint64_t>(std::max(report.corrupt_sections, 1));
      ++events.generations_discarded;
      // Quarantine the damaged file for post-mortem; the next Save must
      // not hard-link on top of it either way.
      env_.Remove(candidate + ".corrupt");
      env_.Rename(candidate, candidate + ".corrupt");
      continue;
    }
    if (checkpoint->fingerprint != fingerprint) continue;
    if (candidate != path_) ++events.recoveries;
    return checkpoint;
  }
  return std::nullopt;
}

void CheckpointStore::DiscardGenerations() {
  const std::string prefix = base_ + ".g";
  for (const auto& name : env_.List(dir_)) {
    const bool generation_file =
        name.compare(0, prefix.size(), prefix) == 0;
    const bool remnant =
        name == base_ + ".corrupt" || name == base_ + ".tmp";
    if (generation_file || remnant) env_.Remove(dir_ + "/" + name);
  }
}

}  // namespace sleepwalk::core
