#include "sleepwalk/core/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "sleepwalk/util/narrow.h"
#include "sleepwalk/util/rng.h"

namespace sleepwalk::core {

namespace {

constexpr char kMagic[4] = {'S', 'L', 'C', 'K'};

template <typename T>
void Put(std::ofstream& out, T value) {
  // Host is little-endian on every supported target (see dataset.cc).
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
bool Get(std::ifstream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  return static_cast<bool>(in);
}

// Sanity bound on any serialized count: a campaign has < 2^32 of
// anything, and a corrupt header must not drive a multi-GB resize.
constexpr std::uint64_t kMaxCount = 1ull << 32;

void PutStats(std::ofstream& out, const report::ResilienceStats& stats) {
  const auto& p = stats.probes;
  Put(out, p.attempts);
  Put(out, p.errors);
  Put(out, p.answered);
  Put(out, p.lost);
  Put(out, p.rate_limited);
  Put(out, p.unreachable);
  Put(out, stats.rounds_attempted);
  Put(out, stats.rounds_failed);
  Put(out, stats.rounds_gapped);
  Put(out, stats.retries);
  Put(out, stats.backoff_seconds);
  Put(out, stats.forced_restarts);
  Put(out, stats.quarantined_blocks);
  Put(out, stats.checkpoints_written);
  Put(out, util::BoolByte(stats.resumed_from_checkpoint));
}

bool GetStats(std::ifstream& in, report::ResilienceStats& stats) {
  auto& p = stats.probes;
  std::uint8_t resumed = 0;
  const bool ok =
      Get(in, p.attempts) && Get(in, p.errors) && Get(in, p.answered) &&
      Get(in, p.lost) && Get(in, p.rate_limited) && Get(in, p.unreachable) &&
      Get(in, stats.rounds_attempted) && Get(in, stats.rounds_failed) &&
      Get(in, stats.rounds_gapped) && Get(in, stats.retries) &&
      Get(in, stats.backoff_seconds) && Get(in, stats.forced_restarts) &&
      Get(in, stats.quarantined_blocks) &&
      Get(in, stats.checkpoints_written) && Get(in, resumed);
  stats.resumed_from_checkpoint = resumed != 0;
  return ok;
}

void PutAnalysis(std::ofstream& out, const BlockAnalysis& analysis) {
  Put(out, analysis.block.Index());
  Put(out, util::BoolByte(analysis.probed));
  Put(out, util::CheckedNarrow<std::int32_t>(analysis.ever_active));
  Put(out, analysis.short_series.first_round);
  Put(out, static_cast<std::uint64_t>(analysis.short_series.size()));
  for (const double value : analysis.short_series.values) Put(out, value);
  Put(out, util::CheckedNarrow<std::int32_t>(analysis.observed_days));
  Put(out, util::CheckedNarrow<std::uint8_t>(
               static_cast<int>(analysis.diurnal.classification)));
  Put(out, util::CheckedNarrow<std::int32_t>(analysis.diurnal.n_days));
  Put(out, static_cast<std::uint64_t>(analysis.diurnal.daily_bin));
  Put(out, analysis.diurnal.daily_amplitude);
  Put(out, analysis.diurnal.phase);
  Put(out, static_cast<std::uint64_t>(analysis.diurnal.strongest_bin));
  Put(out, analysis.diurnal.strongest_amplitude);
  Put(out, analysis.diurnal.strongest_cycles_per_day);
  Put(out, analysis.stationarity.slope_per_round);
  Put(out, analysis.stationarity.addresses_per_day);
  Put(out, util::BoolByte(analysis.stationarity.stationary));
  Put(out, analysis.mean_short);
  Put(out, analysis.final_operational);
  Put(out, analysis.mean_probes_per_round);
  Put(out, util::CheckedNarrow<std::int32_t>(analysis.down_rounds));
  Put(out, static_cast<std::uint64_t>(analysis.outage_starts.size()));
  for (const auto start : analysis.outage_starts) Put(out, start);
  Put(out, static_cast<std::uint64_t>(analysis.outages.size()));
  for (const auto& outage : analysis.outages) {
    Put(out, outage.start_round);
    Put(out, outage.rounds);
  }
}

bool GetAnalysis(std::ifstream& in, BlockAnalysis& analysis) {
  std::uint32_t index = 0;
  std::uint8_t probed = 0;
  std::int32_t ever_active = 0;
  std::uint64_t n_samples = 0;
  if (!Get(in, index) || !Get(in, probed) || !Get(in, ever_active) ||
      !Get(in, analysis.short_series.first_round) || !Get(in, n_samples) ||
      n_samples > kMaxCount) {
    return false;
  }
  analysis.block = net::Prefix24::FromIndex(index);
  analysis.probed = probed != 0;
  analysis.ever_active = ever_active;
  analysis.short_series.values.resize(n_samples);
  for (auto& value : analysis.short_series.values) {
    if (!Get(in, value)) return false;
  }
  std::int32_t observed_days = 0;
  std::uint8_t classification = 0;
  std::int32_t n_days = 0;
  std::uint64_t daily_bin = 0;
  std::uint64_t strongest_bin = 0;
  std::uint8_t stationary = 0;
  std::int32_t down_rounds = 0;
  std::uint64_t n_starts = 0;
  if (!Get(in, observed_days) || !Get(in, classification) ||
      !Get(in, n_days) || !Get(in, daily_bin) ||
      !Get(in, analysis.diurnal.daily_amplitude) ||
      !Get(in, analysis.diurnal.phase) || !Get(in, strongest_bin) ||
      !Get(in, analysis.diurnal.strongest_amplitude) ||
      !Get(in, analysis.diurnal.strongest_cycles_per_day) ||
      !Get(in, analysis.stationarity.slope_per_round) ||
      !Get(in, analysis.stationarity.addresses_per_day) ||
      !Get(in, stationary) || !Get(in, analysis.mean_short) ||
      !Get(in, analysis.final_operational) ||
      !Get(in, analysis.mean_probes_per_round) || !Get(in, down_rounds) ||
      !Get(in, n_starts) || n_starts > kMaxCount) {
    return false;
  }
  analysis.observed_days = observed_days;
  analysis.diurnal.classification = static_cast<Diurnality>(classification);
  analysis.diurnal.n_days = n_days;
  analysis.diurnal.daily_bin = static_cast<std::size_t>(daily_bin);
  analysis.diurnal.strongest_bin = static_cast<std::size_t>(strongest_bin);
  analysis.stationarity.stationary = stationary != 0;
  analysis.down_rounds = down_rounds;
  analysis.outage_starts.resize(n_starts);
  for (auto& start : analysis.outage_starts) {
    if (!Get(in, start)) return false;
  }
  std::uint64_t n_outages = 0;
  if (!Get(in, n_outages) || n_outages > kMaxCount) return false;
  analysis.outages.resize(n_outages);
  for (auto& outage : analysis.outages) {
    if (!Get(in, outage.start_round) || !Get(in, outage.rounds)) {
      return false;
    }
  }
  return true;
}

void PutAnalyzerState(std::ofstream& out, const BlockAnalyzerState& state) {
  Put(out, state.estimator.p_short);
  Put(out, state.estimator.t_short);
  Put(out, state.estimator.p_long);
  Put(out, state.estimator.t_long);
  Put(out, state.estimator.deviation);
  Put(out, util::CheckedNarrow<std::int32_t>(state.estimator.rounds));
  Put(out, util::BoolByte(state.has_prober));
  Put(out, state.prober.cursor);
  Put(out, state.prober.belief);
  Put(out, static_cast<std::uint64_t>(state.raw.size()));
  for (const auto& observation : state.raw) {
    Put(out, observation.round);
    Put(out, observation.value);
  }
  Put(out, state.total_probes);
  Put(out, state.rounds_run);
  Put(out, util::CheckedNarrow<std::int32_t>(state.down_rounds));
  Put(out, util::BoolByte(state.previous_down));
  Put(out, static_cast<std::uint64_t>(state.outage_starts.size()));
  for (const auto start : state.outage_starts) Put(out, start);
  Put(out, static_cast<std::uint64_t>(state.outages.size()));
  for (const auto& outage : state.outages) {
    Put(out, outage.start_round);
    Put(out, outage.rounds);
  }
}

bool GetAnalyzerState(std::ifstream& in, BlockAnalyzerState& state) {
  std::int32_t estimator_rounds = 0;
  std::uint8_t has_prober = 0;
  std::uint64_t n_raw = 0;
  if (!Get(in, state.estimator.p_short) || !Get(in, state.estimator.t_short) ||
      !Get(in, state.estimator.p_long) || !Get(in, state.estimator.t_long) ||
      !Get(in, state.estimator.deviation) || !Get(in, estimator_rounds) ||
      !Get(in, has_prober) || !Get(in, state.prober.cursor) ||
      !Get(in, state.prober.belief) || !Get(in, n_raw) ||
      n_raw > kMaxCount) {
    return false;
  }
  state.estimator.rounds = estimator_rounds;
  state.has_prober = has_prober != 0;
  state.raw.resize(n_raw);
  for (auto& observation : state.raw) {
    if (!Get(in, observation.round) || !Get(in, observation.value)) {
      return false;
    }
  }
  std::int32_t down_rounds = 0;
  std::uint8_t previous_down = 0;
  std::uint64_t n_starts = 0;
  if (!Get(in, state.total_probes) || !Get(in, state.rounds_run) ||
      !Get(in, down_rounds) || !Get(in, previous_down) ||
      !Get(in, n_starts) || n_starts > kMaxCount) {
    return false;
  }
  state.down_rounds = down_rounds;
  state.previous_down = previous_down != 0;
  state.outage_starts.resize(n_starts);
  for (auto& start : state.outage_starts) {
    if (!Get(in, start)) return false;
  }
  std::uint64_t n_outages = 0;
  if (!Get(in, n_outages) || n_outages > kMaxCount) return false;
  state.outages.resize(n_outages);
  for (auto& outage : state.outages) {
    if (!Get(in, outage.start_round) || !Get(in, outage.rounds)) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::uint64_t CampaignFingerprint(const std::vector<BlockTarget>& targets,
                                  std::int64_t n_rounds, std::uint64_t seed,
                                  const AnalyzerConfig& config) {
  std::uint64_t hash = MixHash(seed, static_cast<std::uint64_t>(n_rounds),
                               targets.size());
  hash = MixHash(hash,
                 static_cast<std::uint64_t>(config.schedule.round_seconds),
                 static_cast<std::uint64_t>(
                     config.schedule.restart_every_rounds));
  hash = MixHash(hash, static_cast<std::uint64_t>(config.schedule.epoch_sec),
                 static_cast<std::uint64_t>(config.min_ever_active));
  for (const auto& target : targets) {
    hash = MixHash(hash, target.block.Index(), target.ever_active.size());
  }
  return hash;
}

bool WriteCheckpoint(const std::string& path, const Checkpoint& checkpoint) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out{tmp, std::ios::binary | std::ios::trunc};
    if (!out) return false;

    out.write(kMagic, sizeof(kMagic));
    Put(out, kCheckpointVersion);
    Put(out, checkpoint.fingerprint);
    Put(out, checkpoint.counts.strict);
    Put(out, checkpoint.counts.relaxed);
    Put(out, checkpoint.counts.non_diurnal);
    Put(out, checkpoint.counts.skipped);
    PutStats(out, checkpoint.stats);
    Put(out, static_cast<std::uint64_t>(checkpoint.completed.size()));
    for (const auto& analysis : checkpoint.completed) {
      PutAnalysis(out, analysis);
    }
    Put(out, static_cast<std::uint64_t>(checkpoint.quarantined.size()));
    for (const auto index : checkpoint.quarantined) Put(out, index);
    Put(out, checkpoint.next_block);
    Put(out, util::BoolByte(checkpoint.has_inflight));
    if (checkpoint.has_inflight) {
      Put(out, checkpoint.inflight_next_round);
      Put(out, util::CheckedNarrow<std::int32_t>(
                   checkpoint.inflight_consecutive_failures));
      PutAnalyzerState(out, checkpoint.inflight);
    }
    Put(out, static_cast<std::uint64_t>(checkpoint.transport_state.size()));
    out.write(
        reinterpret_cast<const char*>(checkpoint.transport_state.data()),
        static_cast<std::streamsize>(checkpoint.transport_state.size()));
    if (!out) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

std::optional<Checkpoint> ReadCheckpoint(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return std::nullopt;

  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return std::nullopt;
  }
  std::uint32_t version = 0;
  if (!Get(in, version) || version != kCheckpointVersion) {
    return std::nullopt;
  }

  Checkpoint checkpoint;
  if (!Get(in, checkpoint.fingerprint) ||
      !Get(in, checkpoint.counts.strict) ||
      !Get(in, checkpoint.counts.relaxed) ||
      !Get(in, checkpoint.counts.non_diurnal) ||
      !Get(in, checkpoint.counts.skipped) ||
      !GetStats(in, checkpoint.stats)) {
    return std::nullopt;
  }
  std::uint64_t completed_count = 0;
  if (!Get(in, completed_count) || completed_count > kMaxCount) {
    return std::nullopt;
  }
  checkpoint.completed.resize(completed_count);
  for (auto& analysis : checkpoint.completed) {
    if (!GetAnalysis(in, analysis)) return std::nullopt;
  }
  std::uint64_t quarantined_count = 0;
  if (!Get(in, quarantined_count) || quarantined_count > kMaxCount) {
    return std::nullopt;
  }
  checkpoint.quarantined.resize(quarantined_count);
  for (auto& index : checkpoint.quarantined) {
    if (!Get(in, index)) return std::nullopt;
  }
  std::uint8_t has_inflight = 0;
  if (!Get(in, checkpoint.next_block) || !Get(in, has_inflight)) {
    return std::nullopt;
  }
  checkpoint.has_inflight = has_inflight != 0;
  if (checkpoint.has_inflight) {
    std::int32_t failures = 0;
    if (!Get(in, checkpoint.inflight_next_round) || !Get(in, failures) ||
        !GetAnalyzerState(in, checkpoint.inflight)) {
      return std::nullopt;
    }
    checkpoint.inflight_consecutive_failures = failures;
  }
  std::uint64_t transport_bytes = 0;
  if (!Get(in, transport_bytes) || transport_bytes > kMaxCount) {
    return std::nullopt;
  }
  checkpoint.transport_state.resize(transport_bytes);
  in.read(reinterpret_cast<char*>(checkpoint.transport_state.data()),
          static_cast<std::streamsize>(transport_bytes));
  if (!in) return std::nullopt;
  return checkpoint;
}

}  // namespace sleepwalk::core
