// Per-worker working memory for the analysis hot loop.
//
// The steady-state pipeline — resample -> trim -> stationarity -> FFT ->
// classify — runs once per block, millions of times per campaign. Every
// stage used to allocate its working vectors per call; at scale that
// malloc traffic (and the cross-thread contention inside the allocator)
// is pure overhead, since consecutive blocks need identically-sized
// buffers. AnalysisScratch bundles each stage's buffers into one arena a
// worker owns for its whole shard: after the first block warms the
// capacities, BlockAnalyzer::Finish(scratch, out) performs zero heap
// allocations (enforced by tests/core/zero_alloc_test.cc).
//
// Not thread-safe — one AnalysisScratch per worker, by construction of
// the sharded executor. Sharing the immutable fft::Plan tables across
// workers while keeping all mutable state here is what preserves the
// N-worker byte-identity invariant (DESIGN.md §9, §10).
#ifndef SLEEPWALK_CORE_ANALYSIS_SCRATCH_H_
#define SLEEPWALK_CORE_ANALYSIS_SCRATCH_H_

#include <vector>

#include "sleepwalk/fft/plan.h"
#include "sleepwalk/fft/spectrum.h"
#include "sleepwalk/ts/clean.h"
#include "sleepwalk/ts/series.h"

namespace sleepwalk::core {

/// One worker's reusable buffers for BlockAnalyzer::Finish and friends.
struct AnalysisScratch {
  fft::FftScratch fft;            ///< transform buffers + memoized plan
  fft::Spectrum spectrum;         ///< amplitude/phase output, reused
  ts::RegularizeScratch regularize;  ///< per-round slot tables
  ts::EvenSeries even;            ///< regularized series
  std::vector<double> index;      ///< stationarity regressor (0, 1, ...)
  std::vector<double> centered;   ///< quick-screen mean-removed series
  // Columnar sweep buffers (core/store_analyzer.h, dataset reanalysis):
  std::vector<ts::Observation> observations;  ///< ring copy, round order
  ts::EvenSeries trimmed;         ///< midnight-trimmed series (no out.)
  std::vector<double> samples;    ///< f32 -> f64 widening (SLPW v3)
};

}  // namespace sleepwalk::core

#endif  // SLEEPWALK_CORE_ANALYSIS_SCRATCH_H_
