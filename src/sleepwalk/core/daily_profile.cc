#include "sleepwalk/core/daily_profile.h"

#include <cmath>

namespace sleepwalk::core {

double DailyProfile::SnapshotError(int hour) const noexcept {
  const int h = ((hour % 24) + 24) % 24;
  return std::fabs(mean_by_hour[static_cast<std::size_t>(h)] - DailyMean());
}

double DailyProfile::DailyMean() const noexcept {
  double sum = 0.0;
  int hours = 0;
  for (int h = 0; h < 24; ++h) {
    if (samples_by_hour[static_cast<std::size_t>(h)] == 0) continue;
    sum += mean_by_hour[static_cast<std::size_t>(h)];
    ++hours;
  }
  return hours > 0 ? sum / hours : 0.0;
}

DailyProfile ComputeDailyProfile(std::span<const double> series,
                                 std::int64_t round_seconds) {
  DailyProfile profile;
  if (round_seconds <= 0) return profile;
  std::array<double, 24> sums{};
  for (std::size_t i = 0; i < series.size(); ++i) {
    const std::int64_t second_of_day =
        (static_cast<std::int64_t>(i) * round_seconds) % 86400;
    const auto hour = static_cast<std::size_t>(second_of_day / 3600);
    sums[hour] += series[i];
    ++profile.samples_by_hour[hour];
  }

  bool first = true;
  for (int h = 0; h < 24; ++h) {
    const auto index = static_cast<std::size_t>(h);
    if (profile.samples_by_hour[index] == 0) continue;
    profile.mean_by_hour[index] =
        sums[index] / profile.samples_by_hour[index];
    if (first || profile.mean_by_hour[index] < profile.minimum) {
      profile.minimum = profile.mean_by_hour[index];
      profile.min_hour = h;
    }
    if (first || profile.mean_by_hour[index] > profile.maximum) {
      profile.maximum = profile.mean_by_hour[index];
      profile.max_hour = h;
    }
    first = false;
  }
  return profile;
}

}  // namespace sleepwalk::core
