#include "sleepwalk/core/block_analyzer.h"

#include <numeric>
#include <utility>

namespace sleepwalk::core {

BlockAnalyzer::BlockAnalyzer(net::Prefix24 block,
                             std::vector<std::uint8_t> ever_active,
                             double initial_availability, std::uint64_t seed,
                             const AnalyzerConfig& config)
    : block_(block), config_(config), scheduler_(config.schedule),
      estimator_(initial_availability, config.availability),
      ever_active_(static_cast<int>(ever_active.size())) {
  // The empty check is not redundant with the policy minimum: a config
  // with min_ever_active <= 0 must degrade to "block skipped", not feed
  // an empty set into the walker (which rejects it by throwing).
  if (!ever_active.empty() && ever_active_ >= config_.min_ever_active) {
    prober_.emplace(block, std::move(ever_active), seed, config_.prober);
  }
}

void BlockAnalyzer::AttachObs(const obs::Context& context) {
  obs_ = context;
  if (prober_) prober_->AttachObs(context);
}

void BlockAnalyzer::RunRound(net::Transport& transport, std::int64_t round) {
  if (!prober_) return;
  if (obs_.enabled()) obs_.SetVirtualTime(scheduler_.TimeOf(round));
  if (scheduler_.IsRestartRound(round)) {
    prober_->Restart();
    if (obs_.Logs(obs::Level::kDebug)) {
      obs_.log->Write(obs::Level::kDebug, "prober.restart",
                      {{"block", block_.ToString()},
                       {"round", round},
                       {"reason", "scheduled"}});
    }
  }

  const auto record = prober_->RunRound(transport, round,
                                        scheduler_.TimeOf(round),
                                        estimator_.Operational());
  estimator_.Observe(record.positives, record.probes);
  raw_.Add(round, estimator_.ShortTerm());
  total_probes_ += record.probes;
  ++rounds_run_;

  if (record.concluded_down) {
    ++down_rounds_;
    if (!previous_down_) {
      outage_starts_.push_back(round);
      outages_.push_back({round, 1});
    } else if (!outages_.empty()) {
      ++outages_.back().rounds;
    }
    previous_down_ = true;
  } else if (record.concluded_up) {
    previous_down_ = false;
  }
}

void BlockAnalyzer::RunCampaign(net::Transport& transport,
                                std::int64_t n_rounds) {
  for (std::int64_t round = 0; round < n_rounds; ++round) {
    RunRound(transport, round);
  }
}

BlockAnalyzerState BlockAnalyzer::ExportState() const {
  BlockAnalyzerState state;
  state.estimator = estimator_.ExportState();
  state.has_prober = prober_.has_value();
  if (prober_) state.prober = prober_->ExportState();
  state.raw = raw_.observations();
  state.total_probes = total_probes_;
  state.rounds_run = rounds_run_;
  state.down_rounds = down_rounds_;
  state.previous_down = previous_down_;
  state.outage_starts = outage_starts_;
  state.outages = outages_;
  return state;
}

void BlockAnalyzer::RestoreState(BlockAnalyzerState state) {
  estimator_.RestoreState(state.estimator);
  if (prober_ && state.has_prober) prober_->RestoreState(state.prober);
  raw_.RestoreObservations(std::move(state.raw));
  total_probes_ = state.total_probes;
  rounds_run_ = state.rounds_run;
  down_rounds_ = state.down_rounds;
  previous_down_ = state.previous_down;
  outage_starts_ = std::move(state.outage_starts);
  outages_ = std::move(state.outages);
}

BlockAnalysis BlockAnalyzer::Finish() const {
  AnalysisScratch scratch;
  BlockAnalysis analysis;
  Finish(scratch, analysis);
  return analysis;
}

void BlockAnalyzer::Finish(AnalysisScratch& scratch,
                           BlockAnalysis& out) const {
  const auto finish_span = obs_.Span("analyze.finish");
  // Reset every field in place: `out` is reused across blocks, and
  // clear() / copy-assign keep the vectors' capacity where a fresh
  // BlockAnalysis{} would free it.
  out.block = block_;
  out.ever_active = ever_active_;
  out.probed = prober_.has_value() && rounds_run_ > 0;
  out.short_series.first_round = 0;
  out.short_series.values.clear();
  out.observed_days = 0;
  out.diurnal = DiurnalResult{};
  out.stationarity = ts::StationarityResult{};
  out.mean_short = 0.0;
  out.final_operational = 0.0;
  out.mean_probes_per_round = 0.0;
  out.down_rounds = 0;
  out.outage_starts.clear();
  out.outages.clear();
  if (!out.probed) return;

  out.final_operational = estimator_.Operational();
  out.mean_probes_per_round =
      static_cast<double>(total_probes_) / static_cast<double>(rounds_run_);
  out.down_rounds = down_rounds_;
  out.outage_starts = outage_starts_;
  out.outages = outages_;

  bool ok = false;
  {
    const auto span = obs_.Span("analyze.resample");
    ok = ts::Regularize(raw_, scratch.regularize, scratch.even);
  }
  if (!ok) return;
  {
    const auto span = obs_.Span("analyze.trim");
    ok = ts::TrimToMidnightUtc(scratch.even, config_.schedule.epoch_sec,
                               config_.schedule.round_seconds,
                               out.short_series);
  }
  if (!ok) return;

  out.observed_days = ts::WholeDays(out.short_series.size(),
                                    config_.schedule.round_seconds);
  out.mean_short = std::accumulate(out.short_series.values.begin(),
                                   out.short_series.values.end(), 0.0) /
                   static_cast<double>(out.short_series.values.size());

  {
    const auto span = obs_.Span("analyze.stationarity");
    out.stationarity = ts::TestStationarity(
        out.short_series.values, ever_active_,
        config_.max_trend_addresses_per_day, config_.schedule.round_seconds,
        scratch.index);
  }
  {
    const auto span = obs_.Span("analyze.classify");
    out.diurnal = ClassifyDiurnal(out.short_series.values, out.observed_days,
                                  config_.diurnal, &obs_, scratch);
  }
  if (obs_.Logs(obs::Level::kDebug)) {
    obs_.log->Write(
        obs::Level::kDebug, "block.analyzed",
        {{"block", block_.ToString()},
         {"days", out.observed_days},
         {"mean_short", out.mean_short},
         {"classification",
          out.diurnal.IsStrict()    ? "strict"
          : out.diurnal.IsDiurnal() ? "relaxed"
                                    : "non_diurnal"},
         {"cycles_per_day", out.diurnal.strongest_cycles_per_day}});
  }
}

}  // namespace sleepwalk::core
