#include "sleepwalk/core/block_analyzer.h"

#include <numeric>
#include <utility>

namespace sleepwalk::core {

BlockAnalyzer::BlockAnalyzer(net::Prefix24 block,
                             std::vector<std::uint8_t> ever_active,
                             double initial_availability, std::uint64_t seed,
                             const AnalyzerConfig& config)
    : block_(block), config_(config), scheduler_(config.schedule),
      estimator_(initial_availability, config.availability),
      ever_active_(static_cast<int>(ever_active.size())) {
  // The empty check is not redundant with the policy minimum: a config
  // with min_ever_active <= 0 must degrade to "block skipped", not feed
  // an empty set into the walker (which rejects it by throwing).
  if (!ever_active.empty() && ever_active_ >= config_.min_ever_active) {
    prober_.emplace(block, std::move(ever_active), seed, config_.prober);
  }
}

void BlockAnalyzer::AttachObs(const obs::Context& context) {
  obs_ = context;
  if (prober_) prober_->AttachObs(context);
}

void BlockAnalyzer::RunRound(net::Transport& transport, std::int64_t round) {
  if (!prober_) return;
  if (obs_.enabled()) obs_.SetVirtualTime(scheduler_.TimeOf(round));
  if (scheduler_.IsRestartRound(round)) {
    prober_->Restart();
    if (obs_.Logs(obs::Level::kDebug)) {
      obs_.log->Write(obs::Level::kDebug, "prober.restart",
                      {{"block", block_.ToString()},
                       {"round", round},
                       {"reason", "scheduled"}});
    }
  }

  const auto record = prober_->RunRound(transport, round,
                                        scheduler_.TimeOf(round),
                                        estimator_.Operational());
  estimator_.Observe(record.positives, record.probes);
  raw_.Add(round, estimator_.ShortTerm());
  total_probes_ += record.probes;
  ++rounds_run_;

  if (record.concluded_down) {
    ++down_rounds_;
    if (!previous_down_) {
      outage_starts_.push_back(round);
      outages_.push_back({round, 1});
    } else if (!outages_.empty()) {
      ++outages_.back().rounds;
    }
    previous_down_ = true;
  } else if (record.concluded_up) {
    previous_down_ = false;
  }
}

void BlockAnalyzer::RunCampaign(net::Transport& transport,
                                std::int64_t n_rounds) {
  for (std::int64_t round = 0; round < n_rounds; ++round) {
    RunRound(transport, round);
  }
}

BlockAnalyzerState BlockAnalyzer::ExportState() const {
  BlockAnalyzerState state;
  state.estimator = estimator_.ExportState();
  state.has_prober = prober_.has_value();
  if (prober_) state.prober = prober_->ExportState();
  state.raw = raw_.observations();
  state.total_probes = total_probes_;
  state.rounds_run = rounds_run_;
  state.down_rounds = down_rounds_;
  state.previous_down = previous_down_;
  state.outage_starts = outage_starts_;
  state.outages = outages_;
  return state;
}

void BlockAnalyzer::RestoreState(BlockAnalyzerState state) {
  estimator_.RestoreState(state.estimator);
  if (prober_ && state.has_prober) prober_->RestoreState(state.prober);
  raw_.RestoreObservations(std::move(state.raw));
  total_probes_ = state.total_probes;
  rounds_run_ = state.rounds_run;
  down_rounds_ = state.down_rounds;
  previous_down_ = state.previous_down;
  outage_starts_ = std::move(state.outage_starts);
  outages_ = std::move(state.outages);
}

BlockAnalysis BlockAnalyzer::Finish() const {
  const auto finish_span = obs_.Span("analyze.finish");
  BlockAnalysis analysis;
  analysis.block = block_;
  analysis.ever_active = ever_active_;
  analysis.probed = prober_.has_value() && rounds_run_ > 0;
  if (!analysis.probed) return analysis;

  analysis.final_operational = estimator_.Operational();
  analysis.mean_probes_per_round =
      static_cast<double>(total_probes_) / static_cast<double>(rounds_run_);
  analysis.down_rounds = down_rounds_;
  analysis.outage_starts = outage_starts_;
  analysis.outages = outages_;

  std::optional<ts::EvenSeries> even;
  {
    const auto span = obs_.Span("analyze.resample");
    even = ts::Regularize(raw_);
  }
  if (!even) return analysis;
  std::optional<ts::EvenSeries> trimmed;
  {
    const auto span = obs_.Span("analyze.trim");
    trimmed = ts::TrimToMidnightUtc(
        *even, config_.schedule.epoch_sec, config_.schedule.round_seconds);
  }
  if (!trimmed) return analysis;

  analysis.short_series = *trimmed;
  analysis.observed_days = ts::WholeDays(trimmed->size(),
                                         config_.schedule.round_seconds);
  analysis.mean_short =
      std::accumulate(trimmed->values.begin(), trimmed->values.end(), 0.0) /
      static_cast<double>(trimmed->values.size());

  {
    const auto span = obs_.Span("analyze.stationarity");
    analysis.stationarity = ts::TestStationarity(
        trimmed->values, ever_active_, config_.max_trend_addresses_per_day,
        config_.schedule.round_seconds);
  }
  {
    const auto span = obs_.Span("analyze.classify");
    analysis.diurnal = ClassifyDiurnal(trimmed->values,
                                       analysis.observed_days,
                                       config_.diurnal, &obs_);
  }
  if (obs_.Logs(obs::Level::kDebug)) {
    obs_.log->Write(
        obs::Level::kDebug, "block.analyzed",
        {{"block", block_.ToString()},
         {"days", analysis.observed_days},
         {"mean_short", analysis.mean_short},
         {"classification",
          analysis.diurnal.IsStrict()    ? "strict"
          : analysis.diurnal.IsDiurnal() ? "relaxed"
                                         : "non_diurnal"},
         {"cycles_per_day", analysis.diurnal.strongest_cycles_per_day}});
  }
  return analysis;
}

}  // namespace sleepwalk::core
