// Campaign checkpoint persistence.
//
// A killed A_12w-style campaign used to lose everything; a checkpoint
// makes the campaign resumable *bit-identically*: it captures the
// completed per-block analyses at full double precision, the in-flight
// block's mutable state (estimator EWMAs, prober cursor/belief, raw
// A-hat_s observations, outage bookkeeping), the aggregate counts,
// resilience statistics, and the transport's serialized state (for
// stateful/simulated transports).
//
// Format "SLCK" v2 (little-endian; encode/decode are pure in-memory
// transforms over storage/bytes.h, moved atomically by storage/file.h):
//
//   magic "SLCK"
//   | u32 version | u64 campaign_fingerprint | u64 generation
//   | u32 n_sections | u32 header_crc32c            (over the 24 bytes
//                                                    after the magic)
//   then n_sections framed sections:
//   u32 section_id | u64 payload_len | u32 payload_crc32c | payload
//
// Sections (every one present exactly once):
//   META        format version (mixed-version refusal), diurnal counts,
//               resilience stats, next_block
//   COMPLETED   finished BlockAnalysis records (full f64 series)
//   QUARANTINED abandoned prefix indices
//   INFLIGHT    the open block's BlockAnalyzerState, if any
//   TRANSPORT   serialized transport state
//
// Every section is independently CRC32C-framed (net/checksum.h), so a
// torn write, a truncation, or a bit flip is *detected* — and the
// CheckpointStore below *recovers*: it rotates generation-numbered
// hard-linked snapshots (<path>.g<N>, keep last K) and falls back to
// the newest intact generation when the primary file is damaged,
// quarantining the corrupt file as <name>.corrupt for post-mortem.
//
// v1 files (the pre-checksum format) are still readable, and so are
// SLCK v3 columnar containers (storage/columnar.h) — the paper-scale
// layout a campaign opts into with checkpoint_format = 3. The
// fingerprint binds a checkpoint to its campaign:
// resuming with different targets, rounds, seed, or schedule is refused
// rather than silently producing a franken-dataset. The generation
// number is the checkpoint's own checkpoints_written count, so crashed
// and uninterrupted timelines number their snapshots identically.
#ifndef SLEEPWALK_CORE_CHECKPOINT_H_
#define SLEEPWALK_CORE_CHECKPOINT_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "sleepwalk/core/block_analyzer.h"
#include "sleepwalk/core/pipeline.h"
#include "sleepwalk/report/resilience.h"
#include "sleepwalk/storage/file.h"

namespace sleepwalk::core {

/// Row-oriented checkpoint format version; bump on any layout change.
inline constexpr std::uint32_t kCheckpointVersion = 2;

/// Columnar checkpoint format version (the storage/columnar.h container,
/// kind kCheckpointKind). Same magic and trust discipline as v2 but the
/// COMPLETED section becomes fixed-width per-block columns plus three
/// concatenated blobs (series values, outage starts, outage episodes),
/// so a paper-scale checkpoint loads through storage::Env::Map with one
/// bulk copy per column instead of one decode per field per record.
/// Campaigns opt in via SupervisorConfig::checkpoint_format = 3; the
/// decoder handles v1, v2, and v3 transparently.
inline constexpr std::uint32_t kCheckpointVersionColumnar = 3;

/// Everything a resumed campaign needs.
struct Checkpoint {
  std::uint64_t fingerprint = 0;
  DiurnalCounts counts;
  report::ResilienceStats stats;
  std::vector<BlockAnalysis> completed;
  /// Final estimator state per completed block, parallel to `completed`.
  /// Persisted by v3 containers only (v2's layout is frozen); empty
  /// after a v1/v2 decode. Feeds the outcome's columnar BlockStore so a
  /// v3-resumed campaign reproduces the estimator columns exactly.
  std::vector<AvailabilityState> estimators;
  std::vector<std::uint32_t> quarantined;  ///< prefix indices abandoned
  std::uint64_t next_block = 0;  ///< index of the first unfinished target

  bool has_inflight = false;
  std::int64_t inflight_next_round = 0;
  int inflight_consecutive_failures = 0;
  BlockAnalyzerState inflight;

  std::vector<std::uint8_t> transport_state;
};

/// What a decode attempt saw — the forensic record slck_fsck prints and
/// the recovery metrics count.
struct CheckpointLoadReport {
  bool found = false;          ///< file existed and was readable
  bool bad_magic = false;
  std::uint32_t version = 0;   ///< header version, when readable
  bool version_refused = false;  ///< unknown or mixed version
  int corrupt_sections = 0;    ///< CRC failures, truncations, framing
  std::uint64_t generation = 0;
  std::string detail;          ///< first failure, human-readable
};

/// Recovery accounting for one campaign start (exported on
/// CampaignOutcome and as supervisor_checkpoint_* metrics).
struct RecoveryEvents {
  std::uint64_t recoveries = 0;  ///< resumed from a fallback generation
  std::uint64_t corrupt_sections = 0;
  std::uint64_t generations_discarded = 0;
};

/// Identity of a campaign: seed, rounds, schedule, and the target list.
/// Two campaigns share a fingerprint iff a checkpoint from one is a valid
/// resume point for the other.
std::uint64_t CampaignFingerprint(const std::vector<BlockTarget>& targets,
                                  std::int64_t n_rounds, std::uint64_t seed,
                                  const AnalyzerConfig& config);

/// Serializes `checkpoint` as SLCK v2. The header's generation is the
/// checkpoint's own stats.checkpoints_written.
std::vector<std::uint8_t> EncodeCheckpoint(const Checkpoint& checkpoint);

/// Serializes `checkpoint` as an SLCK v3 columnar container (generation
/// = stats.checkpoints_written, like v2). Deterministic: two equal
/// checkpoints encode byte-identically, so resumed and uninterrupted
/// timelines still converge to the same file.
std::vector<std::uint8_t> EncodeCheckpointColumnar(
    const Checkpoint& checkpoint);

/// Dispatches on `format` (kCheckpointVersion or
/// kCheckpointVersionColumnar; anything else falls back to v2).
std::vector<std::uint8_t> EncodeCheckpointAs(const Checkpoint& checkpoint,
                                             std::uint32_t format);

/// Decodes SLCK v1, v2, or v3 bytes; nullopt on bad magic, version
/// mismatch, truncation, or any CRC failure (details in `report`).
std::optional<Checkpoint> DecodeCheckpoint(
    std::span<const std::uint8_t> bytes,
    CheckpointLoadReport* report = nullptr);

/// Atomically and durably writes `checkpoint` to `path` through `env`
/// (tmp + fsync + rename + dir-fsync; the tmp file is unlinked on every
/// error path and the Error carries the failing step's errno).
storage::Error WriteCheckpoint(storage::Env& env, const std::string& path,
                               const Checkpoint& checkpoint);

/// Reads one checkpoint file; nullopt on any I/O or decode failure.
std::optional<Checkpoint> ReadCheckpoint(
    storage::Env& env, const std::string& path,
    CheckpointLoadReport* report = nullptr);

/// Convenience wrappers over the process-wide real filesystem.
bool WriteCheckpoint(const std::string& path, const Checkpoint& checkpoint);
std::optional<Checkpoint> ReadCheckpoint(const std::string& path);

/// Generation-rotating checkpoint store.
///
/// The newest checkpoint always lives at exactly `path` (so external
/// tooling and byte-equality tests see one canonical file); the last
/// `keep` generations additionally survive as hard links `path.g<N>`.
/// Load() prefers the primary file and walks generations newest-first
/// when it is corrupt — the self-healing path.
class CheckpointStore {
 public:
  /// `keep` <= 1 disables rotation (primary file only). `format` picks
  /// the on-disk encoding Save() writes (kCheckpointVersion or
  /// kCheckpointVersionColumnar); Load() reads either regardless, so a
  /// campaign can switch formats across restarts.
  CheckpointStore(storage::Env& env, std::string path, int keep,
                  std::uint32_t format = kCheckpointVersion);

  /// Durably persists `checkpoint` and rotates generations.
  storage::Error Save(const Checkpoint& checkpoint);

  /// Newest intact checkpoint whose fingerprint matches. Corrupt
  /// candidates are quarantined (renamed *.corrupt) and counted in
  /// `events`; a fallback hit counts as a recovery. When the primary
  /// file is absent the campaign is considered deliberately fresh and
  /// stale generations are discarded rather than resurrected.
  std::optional<Checkpoint> Load(std::uint64_t fingerprint,
                                 RecoveryEvents& events);

  /// Removes every retained generation (and quarantined remnants).
  void DiscardGenerations();

  const std::string& path() const noexcept { return path_; }

 private:
  /// (generation, full path) of retained generation files, ascending.
  std::vector<std::pair<std::uint64_t, std::string>> Generations();

  storage::Env& env_;
  std::string path_;
  std::string dir_;
  std::string base_;  ///< file name of `path_` within `dir_`
  int keep_;
  std::uint32_t format_;
};

}  // namespace sleepwalk::core

#endif  // SLEEPWALK_CORE_CHECKPOINT_H_
