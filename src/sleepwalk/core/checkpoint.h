// Campaign checkpoint persistence.
//
// A killed A_12w-style campaign used to lose everything; a checkpoint
// makes the campaign resumable *bit-identically*: it captures the
// completed per-block analyses at full double precision, the in-flight
// block's mutable state (estimator EWMAs, prober cursor/belief, raw
// A-hat_s observations, outage bookkeeping), the aggregate counts,
// resilience statistics, and the transport's serialized state (for
// stateful/simulated transports).
//
// Format "SLCK" v1 (little-endian, like dataset.cc's "SLPW"):
//   magic "SLCK" | u32 version | u64 campaign_fingerprint
//   | counts (4 x i64) | resilience stats | u64 completed_count
//   | completed BlockAnalysis records (full f64 series)
//   | u64 quarantined_count | u32 prefix indices
//   | u64 next_block | u8 has_inflight
//   | [inflight: i64 next_round | i32 consecutive_failures
//      | BlockAnalyzerState]
//   | u64 transport_state_bytes | bytes
// The fingerprint binds a checkpoint to its campaign: resuming with
// different targets, rounds, seed, or schedule is refused rather than
// silently producing a franken-dataset.
#ifndef SLEEPWALK_CORE_CHECKPOINT_H_
#define SLEEPWALK_CORE_CHECKPOINT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sleepwalk/core/block_analyzer.h"
#include "sleepwalk/core/pipeline.h"
#include "sleepwalk/report/resilience.h"

namespace sleepwalk::core {

/// Checkpoint format version; bump on any layout change.
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Everything a resumed campaign needs.
struct Checkpoint {
  std::uint64_t fingerprint = 0;
  DiurnalCounts counts;
  report::ResilienceStats stats;
  std::vector<BlockAnalysis> completed;
  std::vector<std::uint32_t> quarantined;  ///< prefix indices abandoned
  std::uint64_t next_block = 0;  ///< index of the first unfinished target

  bool has_inflight = false;
  std::int64_t inflight_next_round = 0;
  int inflight_consecutive_failures = 0;
  BlockAnalyzerState inflight;

  std::vector<std::uint8_t> transport_state;
};

/// Identity of a campaign: seed, rounds, schedule, and the target list.
/// Two campaigns share a fingerprint iff a checkpoint from one is a valid
/// resume point for the other.
std::uint64_t CampaignFingerprint(const std::vector<BlockTarget>& targets,
                                  std::int64_t n_rounds, std::uint64_t seed,
                                  const AnalyzerConfig& config);

/// Atomically writes `checkpoint` to `path` (tmp file + rename), so a
/// crash mid-write leaves the previous checkpoint intact.
bool WriteCheckpoint(const std::string& path, const Checkpoint& checkpoint);

/// Reads a checkpoint; nullopt on I/O error, bad magic, version mismatch,
/// or truncation.
std::optional<Checkpoint> ReadCheckpoint(const std::string& path);

}  // namespace sleepwalk::core

#endif  // SLEEPWALK_CORE_CHECKPOINT_H_
