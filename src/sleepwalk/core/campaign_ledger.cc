#include "sleepwalk/core/campaign_ledger.h"

#include <algorithm>
#include <cmath>

#include "sleepwalk/util/rng.h"

namespace sleepwalk::core {

SupervisorMetrics::SupervisorMetrics(const obs::Context& context)
    : rounds(context.CounterOrNull("supervisor_rounds_total",
                                   "block-rounds attempted")),
      rounds_failed(context.CounterOrNull("supervisor_rounds_failed_total",
                                          "rounds lost after retries")),
      rounds_gapped(context.CounterOrNull("supervisor_rounds_gapped_total",
                                          "rounds skipped by clock gaps")),
      retries(context.CounterOrNull("supervisor_retries_total",
                                    "round re-executions")),
      backoff_seconds(context.CounterOrNull("supervisor_backoff_seconds_total",
                                            "total retry delay")),
      forced_restarts(context.CounterOrNull(
          "supervisor_forced_restarts_total", "injected prober restarts")),
      quarantined(context.CounterOrNull("supervisor_quarantined_total",
                                        "blocks abandoned as dead")),
      checkpoints(context.CounterOrNull(
          "supervisor_checkpoints_written_total", "snapshots persisted")),
      resumes(context.CounterOrNull("supervisor_checkpoint_resumes_total",
                                    "campaigns resumed from a snapshot")),
      checkpoint_recoveries(context.CounterOrNull(
          "supervisor_checkpoint_recoveries_total",
          "resumes that fell back to an older intact generation")),
      corrupt_sections(context.CounterOrNull(
          "supervisor_checkpoint_corrupt_sections_total",
          "checkpoint sections rejected by CRC/framing checks")),
      generations_discarded(context.CounterOrNull(
          "supervisor_checkpoint_generations_discarded_total",
          "checkpoint files quarantined as corrupt")),
      blocks_done(context.GaugeOrNull("campaign_blocks_done",
                                      "targets finished")),
      blocks_total(context.GaugeOrNull("campaign_blocks_total",
                                       "targets in the campaign")),
      rounds_per_sec(context.GaugeOrNull(
          "campaign_rounds_per_sec",
          "wall-clock processing rate (live campaigns only)")),
      backoff_delay(context.HistogramOrNull(
          "supervisor_backoff_delay_seconds",
          {0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0},
          "per-retry backoff delay")) {}

double BackoffDelay(const RetryConfig& retry, std::uint64_t seed,
                    std::uint32_t block, std::int64_t round, int attempt) {
  double delay = retry.base_delay_sec * std::ldexp(1.0, attempt);
  delay = std::min(delay, retry.max_delay_sec);
  if (retry.jitter > 0.0) {
    const std::uint64_t h =
        MixHash(seed ^ 0xbac0ffULL, (static_cast<std::uint64_t>(block) << 32) |
                                        static_cast<std::uint64_t>(attempt),
                static_cast<std::uint64_t>(round));
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
    delay *= 1.0 + retry.jitter * (2.0 * u - 1.0);
  }
  return std::max(delay, 0.0);
}

bool InGap(const SupervisorConfig& config, std::int64_t round) noexcept {
  for (const auto& [first, last] : config.gap_round_windows) {
    if (round >= first && round < last) return true;
  }
  return false;
}

bool IsForcedRestart(const SupervisorConfig& config,
                     std::int64_t round) noexcept {
  return std::find(config.forced_restart_rounds.begin(),
                   config.forced_restart_rounds.end(),
                   round) != config.forced_restart_rounds.end();
}

void ClassifyAnalysis(const BlockAnalysis& analysis, bool quarantined,
                      DiurnalCounts& counts) {
  if (quarantined || !analysis.probed || analysis.observed_days < 2) {
    ++counts.skipped;
    return;
  }
  switch (analysis.diurnal.classification) {
    case Diurnality::kStrictlyDiurnal:
      ++counts.strict;
      break;
    case Diurnality::kRelaxedDiurnal:
      ++counts.relaxed;
      break;
    case Diurnality::kNonDiurnal:
      ++counts.non_diurnal;
      break;
  }
}

BlockVerdict VerdictOf(const BlockAnalysis& analysis, bool quarantined) {
  BlockVerdict verdict;
  verdict.prefix_index = analysis.block.Index();
  verdict.probed = analysis.probed;
  verdict.quarantined = quarantined;
  verdict.stationary = analysis.stationarity.stationary;
  verdict.classification =
      static_cast<std::uint8_t>(analysis.diurnal.classification);
  verdict.ever_active = analysis.ever_active;
  verdict.observed_days = analysis.observed_days;
  verdict.down_rounds = analysis.down_rounds;
  verdict.mean_short = analysis.mean_short;
  verdict.final_operational = analysis.final_operational;
  verdict.mean_probes_per_round = analysis.mean_probes_per_round;
  return verdict;
}

std::vector<std::uint8_t> SnapshotTransport(net::Transport& transport) {
  std::vector<std::uint8_t> bytes;
  if (const auto* stateful =
          dynamic_cast<const net::StatefulTransport*>(&transport)) {
    stateful->SaveState(bytes);
  }
  return bytes;
}

}  // namespace sleepwalk::core
