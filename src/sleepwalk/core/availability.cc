#include "sleepwalk/core/availability.h"

namespace sleepwalk::core {

AvailabilityEstimator::AvailabilityEstimator(
    double initial_availability, const AvailabilityConfig& config)
    : config_(config) {
  state_.p_short = std::clamp(initial_availability, 0.0, 1.0);
  state_.p_long = state_.p_short;
  state_.deviation = config.initial_deviation;
}

void AvailabilityEstimator::Observe(int positives, int total) noexcept {
  AvailabilityObserve(state_, config_, positives, total);
}

double AvailabilityEstimator::ShortTerm() const noexcept {
  return AvailabilityShortTerm(state_);
}

double AvailabilityEstimator::LongTerm() const noexcept {
  return AvailabilityLongTerm(state_);
}

double AvailabilityEstimator::Operational() const noexcept {
  return AvailabilityOperational(state_, config_);
}

}  // namespace sleepwalk::core
