#include "sleepwalk/core/availability.h"

#include <algorithm>
#include <cmath>

namespace sleepwalk::core {

AvailabilityEstimator::AvailabilityEstimator(
    double initial_availability, const AvailabilityConfig& config)
    : config_(config),
      p_short_(std::clamp(initial_availability, 0.0, 1.0)),
      p_long_(p_short_),
      deviation_(config.initial_deviation) {}

void AvailabilityEstimator::Observe(int positives, int total) noexcept {
  if (total <= 0) return;
  const auto p = static_cast<double>(positives);
  const auto t = static_cast<double>(total);

  p_short_ = config_.alpha_short * p + (1.0 - config_.alpha_short) * p_short_;
  t_short_ = config_.alpha_short * t + (1.0 - config_.alpha_short) * t_short_;

  p_long_ = config_.alpha_long * p + (1.0 - config_.alpha_long) * p_long_;
  t_long_ = config_.alpha_long * t + (1.0 - config_.alpha_long) * t_long_;

  // Deviation of this round's raw ratio from the long-term estimate.
  const double sample_deviation = std::fabs(LongTerm() - p / t);
  deviation_ = config_.alpha_long * sample_deviation +
               (1.0 - config_.alpha_long) * deviation_;
  ++rounds_;
}

double AvailabilityEstimator::ShortTerm() const noexcept {
  return t_short_ > 0.0 ? p_short_ / t_short_ : 0.0;
}

double AvailabilityEstimator::LongTerm() const noexcept {
  return t_long_ > 0.0 ? p_long_ / t_long_ : 0.0;
}

double AvailabilityEstimator::Operational() const noexcept {
  return std::max(LongTerm() - config_.deviation_margin * deviation_,
                  config_.operational_floor);
}

}  // namespace sleepwalk::core
