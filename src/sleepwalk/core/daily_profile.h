// Time-of-day availability profiles (paper §5.6 "Applications").
//
// "one can scan the IPv4 space in tens of minutes to estimate the
//  availability of each /24 block, but this near-snapshot will be
//  representative only for non-diurnal blocks. For diurnal blocks, one
//  needs several measurements at different times-of-day to determine the
//  range of values."
//
// DailyProfile folds a midnight-aligned availability series into a
// per-hour-of-day profile: mean availability per hour, the daily
// min/max range, and the wake/sleep hours — the correction factors a
// snapshot scan needs.
#ifndef SLEEPWALK_CORE_DAILY_PROFILE_H_
#define SLEEPWALK_CORE_DAILY_PROFILE_H_

#include <array>
#include <cstdint>
#include <span>

namespace sleepwalk::core {

/// A block's average day.
struct DailyProfile {
  std::array<double, 24> mean_by_hour{};  ///< mean availability per hour
  std::array<int, 24> samples_by_hour{};
  double minimum = 0.0;  ///< lowest hourly mean (the block's "night")
  double maximum = 0.0;  ///< highest hourly mean (the block's "day")
  int min_hour = 0;      ///< UTC hour of the minimum
  int max_hour = 0;      ///< UTC hour of the maximum

  /// Daily swing; near zero for always-on blocks.
  double Range() const noexcept { return maximum - minimum; }

  /// How far a single snapshot at `hour` may misestimate the daily mean,
  /// as a fraction of availability.
  double SnapshotError(int hour) const noexcept;

  /// Mean across all hours (the number a snapshot tries to estimate).
  double DailyMean() const noexcept;
};

/// Folds a series that starts at midnight UTC (as produced by
/// TrimToMidnightUtc) into an hourly profile. `round_seconds` is the
/// sampling period (660 s).
DailyProfile ComputeDailyProfile(std::span<const double> series,
                                 std::int64_t round_seconds = 660);

}  // namespace sleepwalk::core

#endif  // SLEEPWALK_CORE_DAILY_PROFILE_H_
