#include "sleepwalk/core/diurnal.h"

#include <algorithm>

namespace sleepwalk::core {

namespace {

bool InDailySet(std::size_t bin, std::size_t daily, int neighbors) noexcept {
  return bin >= daily && bin <= daily + static_cast<std::size_t>(neighbors);
}

bool InHarmonicSet(std::size_t bin, std::size_t daily, int neighbors,
                   int max_harmonic) noexcept {
  for (int m = 2; m <= max_harmonic; ++m) {
    const std::size_t h = daily * static_cast<std::size_t>(m);
    if (bin >= h && bin <= h + static_cast<std::size_t>(neighbors)) {
      return true;
    }
  }
  return false;
}

}  // namespace

DiurnalResult ClassifySpectrum(const fft::Spectrum& spectrum, int n_days,
                               const DiurnalConfig& config) {
  DiurnalResult result;
  result.n_days = n_days;
  if (n_days < 2) return result;
  const auto daily = static_cast<std::size_t>(n_days);
  // Need at least the first harmonic in range for a meaningful test.
  if (spectrum.size() <= 2 * daily + 1) return result;

  // Daily component: the stronger of bins N_d and N_d + neighbor_bins.
  result.daily_bin = daily;
  result.daily_amplitude = spectrum.amplitude[daily];
  for (int j = 1; j <= config.neighbor_bins; ++j) {
    const std::size_t bin = daily + static_cast<std::size_t>(j);
    if (bin < spectrum.size() &&
        spectrum.amplitude[bin] > result.daily_amplitude) {
      result.daily_amplitude = spectrum.amplitude[bin];
      result.daily_bin = bin;
    }
  }
  result.phase = spectrum.phase[result.daily_bin];

  // Scan all non-DC bins for the overall winner, the strongest
  // non-harmonic competitor, and the strongest harmonic.
  double best = -1.0;
  std::size_t best_bin = 0;
  double best_other = 0.0;   // outside daily AND harmonic sets
  double best_harmonic = 0.0;
  for (std::size_t k = 1; k < spectrum.size(); ++k) {
    const double amp = spectrum.amplitude[k];
    if (amp > best) {
      best = amp;
      best_bin = k;
    }
    if (InDailySet(k, daily, config.neighbor_bins)) continue;
    if (InHarmonicSet(k, daily, config.neighbor_bins, config.max_harmonic)) {
      best_harmonic = std::max(best_harmonic, amp);
    } else {
      best_other = std::max(best_other, amp);
    }
  }
  result.strongest_bin = best_bin;
  result.strongest_amplitude = best;
  result.strongest_cycles_per_day =
      static_cast<double>(best_bin) / static_cast<double>(daily);

  const bool strongest_is_daily =
      InDailySet(best_bin, daily, config.neighbor_bins);
  const bool strongest_is_first_harmonic =
      best_bin >= 2 * daily &&
      best_bin <= 2 * daily + static_cast<std::size_t>(config.neighbor_bins);

  if (strongest_is_daily &&
      result.daily_amplitude >= config.strict_dominance * best_other &&
      result.daily_amplitude > best_harmonic) {
    result.classification = Diurnality::kStrictlyDiurnal;
  } else if (strongest_is_daily || strongest_is_first_harmonic) {
    result.classification = Diurnality::kRelaxedDiurnal;
  }
  return result;
}

DiurnalResult ClassifyDiurnal(std::span<const double> series, int n_days,
                              const DiurnalConfig& config,
                              const obs::Context* obs) {
  DiurnalResult result;
  result.n_days = n_days;
  if (n_days < 2 || series.size() < 4) return result;
  fft::Spectrum spectrum;
  {
    const auto span = obs != nullptr ? obs->Span("analyze.fft")
                                     : obs::ScopedSpan{};
    spectrum = fft::ComputeSpectrum(series, /*remove_mean=*/true);
  }
  return ClassifySpectrum(spectrum, n_days, config);
}

DiurnalResult ClassifyDiurnal(std::span<const double> series, int n_days,
                              const DiurnalConfig& config,
                              const obs::Context* obs,
                              AnalysisScratch& scratch) {
  DiurnalResult result;
  result.n_days = n_days;
  if (n_days < 2 || series.size() < 4) return result;
  {
    const auto span = obs != nullptr ? obs->Span("analyze.fft")
                                     : obs::ScopedSpan{};
    const fft::SpectrumOptions options;  // remove_mean, like the wrapper
    fft::ComputeSpectrum(series, options, scratch.fft, scratch.spectrum);
  }
  return ClassifySpectrum(scratch.spectrum, n_days, config);
}

}  // namespace sleepwalk::core
