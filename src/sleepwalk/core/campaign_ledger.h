// Shared campaign bookkeeping for the sequential supervisor and the
// parallel sharded executor.
//
// The ledger is the single synchronization point both runners agree on:
// completed analyses and diurnal counts, the resilience stats, the
// quarantine list, the processed-round counter that drives checkpoint
// cadence, and the early-stop/resume flags. Everything workers must
// agree on lives behind one capability so the clang -Wthread-safety
// build (scripts/static_analysis.sh, CI `static-analysis` job) rejects
// unlocked access at compile time. Per-block state — the analyzer, the
// retry counter, the round cursor — deliberately stays thread-local in
// the runners.
//
// The free helpers (backoff, gap/restart schedule checks, analysis
// classification, transport snapshotting) are the policy pieces the two
// runners must share byte-for-byte: a parallel run is only equivalent to
// a sequential one if every retry delay, every skipped round, and every
// classification decision is computed identically.
#ifndef SLEEPWALK_CORE_CAMPAIGN_LEDGER_H_
#define SLEEPWALK_CORE_CAMPAIGN_LEDGER_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sleepwalk/core/block_analyzer.h"
#include "sleepwalk/core/block_store.h"
#include "sleepwalk/core/checkpoint.h"
#include "sleepwalk/core/status.h"
#include "sleepwalk/core/supervisor.h"
#include "sleepwalk/net/ipv4.h"
#include "sleepwalk/net/transport.h"
#include "sleepwalk/obs/context.h"
#include "sleepwalk/report/resilience.h"
#include "sleepwalk/util/sync.h"

namespace sleepwalk::core {

/// Supervisor-level instruments, resolved once per campaign (or once per
/// block against a shard-local registry). All null when the registry is
/// absent. The instruments themselves are internally synchronized
/// (obs/metrics.h), so workers update them without further locking.
struct SupervisorMetrics {
  explicit SupervisorMetrics(const obs::Context& context);

  obs::Counter* rounds;
  obs::Counter* rounds_failed;
  obs::Counter* rounds_gapped;
  obs::Counter* retries;
  obs::Counter* backoff_seconds;
  obs::Counter* forced_restarts;
  obs::Counter* quarantined;
  obs::Counter* checkpoints;
  obs::Counter* resumes;
  obs::Counter* checkpoint_recoveries;
  obs::Counter* corrupt_sections;
  obs::Counter* generations_discarded;
  obs::Gauge* blocks_done;
  obs::Gauge* blocks_total;
  obs::Gauge* rounds_per_sec;
  obs::Histogram* backoff_delay;
};

/// Deterministic jittered exponential backoff. The jitter draw is a
/// stateless hash of (seed, block, round, attempt), so retry timing never
/// perturbs any RNG stream a checkpoint would have to capture — and a
/// worker thread computes the exact delay the sequential loop would.
double BackoffDelay(const RetryConfig& retry, std::uint64_t seed,
                    std::uint32_t block, std::int64_t round, int attempt);

/// Whether `round` falls in one of the campaign's clock-gap windows.
bool InGap(const SupervisorConfig& config, std::int64_t round) noexcept;

/// Whether the fault plan schedules a prober restart at `round`.
bool IsForcedRestart(const SupervisorConfig& config,
                     std::int64_t round) noexcept;

/// Folds one finished block's analysis into the diurnal counts.
/// Quarantined blocks degrade to partial results: whatever was measured
/// is kept in the analysis record, but the aggregate counts treat the
/// block as skipped rather than classifying a truncated series.
void ClassifyAnalysis(const BlockAnalysis& analysis, bool quarantined,
                      DiurnalCounts& counts);

/// Serializes the current transport state when the transport supports it.
std::vector<std::uint8_t> SnapshotTransport(net::Transport& transport);

/// Everything one finished block contributes to the campaign: its
/// analysis, its quarantine verdict, and the resilience-stats delta it
/// accumulated off to the side (a parallel worker counts into a private
/// delta; the coordinator commits deltas strictly in block order so
/// double-valued sums fold identically for any worker count).
struct BlockCommit {
  BlockAnalysis analysis;
  net::Prefix24 block;
  bool quarantined = false;
  report::ResilienceStats delta;
  std::int64_t rounds_processed = 0;
  /// Final EWMA estimator state at block completion, recorded into the
  /// outcome's columnar BlockStore (and persisted by v3 checkpoints).
  AvailabilityState estimator;
};

/// Maps a finished block's analysis to its fixed-width columnar verdict
/// (core/block_store.h). Pure projection: both runners and the resume
/// path must derive store rows from analyses through this one function
/// so the columnar mirror is runner-independent.
BlockVerdict VerdictOf(const BlockAnalysis& analysis, bool quarantined);

/// Shared mutable campaign state; see the file comment. All methods are
/// safe from any thread.
class CampaignLedger {
 public:
  explicit CampaignLedger(std::size_t n_targets,
                          const AvailabilityConfig& availability = {}) {
    outcome_.result.analyses.reserve(n_targets);
    outcome_.store.Reset(n_targets, availability);
  }

  /// Resume path: adopt everything a matching checkpoint carried. The
  /// columnar store rows for adopted blocks are rebuilt through the
  /// same VerdictOf projection a live commit uses; estimator columns
  /// are exact when the checkpoint carried them (v3) and defaults
  /// otherwise.
  void AdoptCheckpoint(Checkpoint& checkpoint) SLEEPWALK_EXCLUDES(mutex_) {
    util::MutexLock lock{mutex_};
    outcome_.result.analyses = std::move(checkpoint.completed);
    outcome_.result.counts = checkpoint.counts;
    outcome_.stats = checkpoint.stats;
    for (const auto index : checkpoint.quarantined) {
      outcome_.quarantined.push_back(net::Prefix24::FromIndex(index));
    }
    const auto& analyses = outcome_.result.analyses;
    for (std::size_t i = 0; i < analyses.size(); ++i) {
      if (i >= outcome_.store.size()) break;  // foreign-sized checkpoint
      const bool quarantined =
          std::find(checkpoint.quarantined.begin(),
                    checkpoint.quarantined.end(),
                    analyses[i].block.Index()) != checkpoint.quarantined.end();
      // v2 checkpoints never persisted estimator state; keep the
      // Reset-seeded defaults rather than clobbering them with zeros.
      const AvailabilityState estimator =
          i < checkpoint.estimators.size() ? checkpoint.estimators[i]
                                           : outcome_.store.ExportEstimator(i);
      outcome_.store.RecordVerdict(i, VerdictOf(analyses[i], quarantined),
                                   estimator);
    }
    outcome_.resumed = true;
    outcome_.stats.resumed_from_checkpoint = true;
  }

  void NoteGapped() SLEEPWALK_EXCLUDES(mutex_) {
    util::MutexLock lock{mutex_};
    ++outcome_.stats.rounds_gapped;
  }

  void NoteAttempted() SLEEPWALK_EXCLUDES(mutex_) {
    util::MutexLock lock{mutex_};
    ++outcome_.stats.rounds_attempted;
  }

  void NoteForcedRestart() SLEEPWALK_EXCLUDES(mutex_) {
    util::MutexLock lock{mutex_};
    ++outcome_.stats.forced_restarts;
  }

  void NoteRetry(double delay_sec) SLEEPWALK_EXCLUDES(mutex_) {
    util::MutexLock lock{mutex_};
    ++outcome_.stats.retries;
    outcome_.stats.backoff_seconds += delay_sec;
  }

  void NoteRoundFailed() SLEEPWALK_EXCLUDES(mutex_) {
    util::MutexLock lock{mutex_};
    ++outcome_.stats.rounds_failed;
  }

  void NoteQuarantined(net::Prefix24 block) SLEEPWALK_EXCLUDES(mutex_) {
    util::MutexLock lock{mutex_};
    ++outcome_.stats.quarantined_blocks;
    outcome_.quarantined.push_back(block);
  }

  /// Classifies and appends a finished block's analysis, mirroring it
  /// into the columnar store (row = position in the completion order).
  void FinishBlock(BlockAnalysis analysis, bool quarantined,
                   const AvailabilityState& estimator = {})
      SLEEPWALK_EXCLUDES(mutex_) {
    util::MutexLock lock{mutex_};
    ClassifyAnalysis(analysis, quarantined, outcome_.result.counts);
    const std::size_t row = outcome_.result.analyses.size();
    if (row < outcome_.store.size()) {
      outcome_.store.RecordVerdict(row, VerdictOf(analysis, quarantined),
                                   estimator);
    }
    outcome_.result.analyses.push_back(std::move(analysis));
  }

  /// Commits a whole finished block at once: classification + analysis
  /// append + quarantine list + the block's private stats delta + its
  /// processed-round count. The parallel executor's merge stage calls
  /// this in strict block-index order; returns the new global
  /// processed-round total so the coordinator can evaluate
  /// stop_after_rounds exactly where the sequential loop would have.
  std::int64_t CommitBlock(BlockCommit&& commit) SLEEPWALK_EXCLUDES(mutex_) {
    util::MutexLock lock{mutex_};
    ClassifyAnalysis(commit.analysis, commit.quarantined,
                     outcome_.result.counts);
    const std::size_t row = outcome_.result.analyses.size();
    if (row < outcome_.store.size()) {
      outcome_.store.RecordVerdict(
          row, VerdictOf(commit.analysis, commit.quarantined),
          commit.estimator);
    }
    outcome_.result.analyses.push_back(std::move(commit.analysis));
    if (commit.quarantined) outcome_.quarantined.push_back(commit.block);
    outcome_.stats.Merge(commit.delta);
    processed_rounds_ += commit.rounds_processed;
    return processed_rounds_;
  }

  /// Advances the global round counter, returning its new value.
  std::int64_t AdvanceRound() SLEEPWALK_EXCLUDES(mutex_) {
    util::MutexLock lock{mutex_};
    return ++processed_rounds_;
  }

  std::int64_t processed_rounds() const SLEEPWALK_EXCLUDES(mutex_) {
    util::MutexLock lock{mutex_};
    return processed_rounds_;
  }

  /// Builds a checkpoint snapshot of the current shared state. The
  /// write-ahead increment of checkpoints_written is part of the
  /// snapshot (it counts itself); a failed write is rolled back with
  /// NoteCheckpointWritten(false). File I/O happens outside the lock.
  Checkpoint BuildCheckpointSnapshot(std::uint64_t fingerprint,
                                     std::size_t next_block,
                                     bool has_inflight,
                                     std::int64_t next_round, int failures,
                                     const BlockAnalyzer* analyzer)
      SLEEPWALK_EXCLUDES(mutex_) {
    util::MutexLock lock{mutex_};
    Checkpoint checkpoint;
    checkpoint.fingerprint = fingerprint;
    checkpoint.counts = outcome_.result.counts;
    checkpoint.completed = outcome_.result.analyses;
    // Per-completed-block estimator state rides along (v3 containers
    // persist it; the v2 encoder ignores it, its layout being frozen).
    const std::size_t n_estimators =
        std::min(checkpoint.completed.size(), outcome_.store.size());
    checkpoint.estimators.reserve(n_estimators);
    for (std::size_t i = 0; i < n_estimators; ++i) {
      checkpoint.estimators.push_back(outcome_.store.ExportEstimator(i));
    }
    for (const auto& block : outcome_.quarantined) {
      checkpoint.quarantined.push_back(block.Index());
    }
    checkpoint.next_block = next_block;
    checkpoint.has_inflight = has_inflight;
    if (has_inflight) {
      checkpoint.inflight_next_round = next_round;
      checkpoint.inflight_consecutive_failures = failures;
      checkpoint.inflight = analyzer->ExportState();
    }
    ++outcome_.stats.checkpoints_written;  // the snapshot counts itself
    checkpoint.stats = outcome_.stats;
    return checkpoint;
  }

  void NoteCheckpointWritten(bool ok) SLEEPWALK_EXCLUDES(mutex_) {
    if (ok) return;
    util::MutexLock lock{mutex_};
    --outcome_.stats.checkpoints_written;
  }

  /// Records the checkpoint-recovery accounting from the resume attempt.
  void NoteRecovery(const RecoveryEvents& events) SLEEPWALK_EXCLUDES(mutex_) {
    util::MutexLock lock{mutex_};
    outcome_.recovery = events;
  }

  void NoteStoppedEarly() SLEEPWALK_EXCLUDES(mutex_) {
    util::MutexLock lock{mutex_};
    outcome_.stopped_early = true;
  }

  /// One locked read of everything /statusz reports from the ledger —
  /// snapshot isolation: progress, counts, stats, and recovery state in
  /// `status` are mutually consistent (taken under a single lock hold).
  /// The live fields (rates, shards, quantiles) are the runner's to
  /// fill. This is the read path the admin plane's status provider and,
  /// later, the online query service (ROADMAP item 2) serve from.
  void FillStatus(CampaignStatus& status) const SLEEPWALK_EXCLUDES(mutex_) {
    util::MutexLock lock{mutex_};
    status.blocks_done = outcome_.result.analyses.size();
    status.rounds_done = processed_rounds_;
    status.counts = outcome_.result.counts;
    status.stats = outcome_.stats;
    status.recovery = outcome_.recovery;
    status.resumed = outcome_.resumed;
    status.stopped_early = outcome_.stopped_early;
  }

  /// Point-in-time copy of the resilience ledger (heartbeats, logs).
  report::ResilienceStats stats_snapshot() const SLEEPWALK_EXCLUDES(mutex_) {
    util::MutexLock lock{mutex_};
    return outcome_.stats;
  }

  std::size_t blocks_done() const SLEEPWALK_EXCLUDES(mutex_) {
    util::MutexLock lock{mutex_};
    return outcome_.result.analyses.size();
  }

  DiurnalCounts counts_snapshot() const SLEEPWALK_EXCLUDES(mutex_) {
    util::MutexLock lock{mutex_};
    return outcome_.result.counts;
  }

  /// Final move-out; the ledger must not be used afterwards.
  CampaignOutcome TakeOutcome() SLEEPWALK_EXCLUDES(mutex_) {
    util::MutexLock lock{mutex_};
    return std::move(outcome_);
  }

 private:
  mutable util::Mutex mutex_;
  CampaignOutcome outcome_ SLEEPWALK_GUARDED_BY(mutex_);
  std::int64_t processed_rounds_ SLEEPWALK_GUARDED_BY(mutex_) = 0;
};

}  // namespace sleepwalk::core

#endif  // SLEEPWALK_CORE_CAMPAIGN_LEDGER_H_
