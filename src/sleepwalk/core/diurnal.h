// Spectral diurnal-block detection (paper §2.2 — the second contribution).
//
// The cleaned A-hat_s timeseries (one sample per 11-minute round, trimmed
// to midnight UTC boundaries) is Fourier-transformed. For an observation
// of N_d days, 1 cycle/day lives in bin k = N_d; bin N_d + 1 is also
// considered "to account for noise".
//
//   strictly diurnal: the strongest non-DC bin is the daily bin, its
//     amplitude is at least twice the next strongest non-harmonic bin,
//     and greater than every harmonic;
//   relaxed diurnal: the strongest bin is the daily bin or its first
//     harmonic, with no dominance requirement.
//
// The daily bin's complex phase says *when* the block wakes relative to
// the (midnight-UTC-aligned) observation start; §5.2 shows it tracks
// longitude. Phase is only meaningful for diurnal blocks — for the rest
// it is effectively random.
#ifndef SLEEPWALK_CORE_DIURNAL_H_
#define SLEEPWALK_CORE_DIURNAL_H_

#include <span>

#include "sleepwalk/core/analysis_scratch.h"
#include "sleepwalk/fft/spectrum.h"
#include "sleepwalk/obs/context.h"

namespace sleepwalk::core {

/// Classification outcome, ordered by strength.
enum class Diurnality {
  kNonDiurnal,
  kRelaxedDiurnal,
  kStrictlyDiurnal,
};

/// Detector thresholds (defaults are the paper's).
struct DiurnalConfig {
  /// Strict test: daily amplitude must be at least this multiple of the
  /// next strongest non-harmonic bin.
  double strict_dominance = 2.0;
  /// Bins k = N_d .. N_d + neighbor_bins count as the daily component.
  int neighbor_bins = 1;
  /// Harmonics 2*N_d, 3*N_d, ... up to this multiple are compared
  /// against (and excluded from the "non-harmonic" competitor set).
  int max_harmonic = 6;
};

/// Everything the detector extracts from one block's spectrum.
struct DiurnalResult {
  Diurnality classification = Diurnality::kNonDiurnal;
  int n_days = 0;
  std::size_t daily_bin = 0;        ///< the stronger of {N_d, N_d+1}
  double daily_amplitude = 0.0;
  double phase = 0.0;               ///< arg of the daily coefficient
  std::size_t strongest_bin = 0;    ///< argmax over non-DC bins
  double strongest_amplitude = 0.0;
  double strongest_cycles_per_day = 0.0;  ///< strongest_bin / N_d

  bool IsDiurnal() const noexcept {
    return classification != Diurnality::kNonDiurnal;
  }
  bool IsStrict() const noexcept {
    return classification == Diurnality::kStrictlyDiurnal;
  }
};

/// Classifies a cleaned, midnight-aligned availability series spanning
/// `n_days` whole days. Series shorter than 2 days are non-diurnal by
/// definition ("FFT over data too short ... can distort analysis").
/// A non-null `obs` wraps the transform in an "analyze.fft" tracer span
/// (per-phase timing for the analyze hot path); classification output
/// is independent of it.
DiurnalResult ClassifyDiurnal(std::span<const double> series, int n_days,
                              const DiurnalConfig& config = {},
                              const obs::Context* obs = nullptr);

/// Hot-loop variant: the spectrum is computed through the plan cache
/// into `scratch` (transform buffers + reused Spectrum), so a warm call
/// performs no heap allocation. Classification output is identical to
/// the allocating overload.
DiurnalResult ClassifyDiurnal(std::span<const double> series, int n_days,
                              const DiurnalConfig& config,
                              const obs::Context* obs,
                              AnalysisScratch& scratch);

/// Same classification applied to an already-computed spectrum.
DiurnalResult ClassifySpectrum(const fft::Spectrum& spectrum, int n_days,
                               const DiurnalConfig& config = {});

}  // namespace sleepwalk::core

#endif  // SLEEPWALK_CORE_DIURNAL_H_
