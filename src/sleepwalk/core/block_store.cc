#include "sleepwalk/core/block_store.h"

#include <cstring>
#include <new>

#include "sleepwalk/net/checksum.h"
#include "sleepwalk/storage/columnar.h"
#include "sleepwalk/util/rng.h"

namespace sleepwalk::core {

namespace {

constexpr std::string_view kStoreMagic = "SLCK";

// Snapshot column ids. META rides first; the per-block columns mirror
// the store's arena layout one-to-one so decode is one memcpy each.
constexpr std::uint32_t kColMeta = 1;
constexpr std::uint32_t kColPrefix = 2;
constexpr std::uint32_t kColPShort = 3;
constexpr std::uint32_t kColTShort = 4;
constexpr std::uint32_t kColPLong = 5;
constexpr std::uint32_t kColTLong = 6;
constexpr std::uint32_t kColDeviation = 7;
constexpr std::uint32_t kColRounds = 8;
constexpr std::uint32_t kColProbes = 9;
constexpr std::uint32_t kColPositives = 10;
constexpr std::uint32_t kColDownRounds = 11;
constexpr std::uint32_t kColFlags = 12;
constexpr std::uint32_t kColClassification = 13;
constexpr std::uint32_t kColEverActive = 14;
constexpr std::uint32_t kColObservedDays = 15;
constexpr std::uint32_t kColMeanShort = 16;
constexpr std::uint32_t kColFinalOperational = 17;
constexpr std::uint32_t kColMeanProbes = 18;
// Series ring columns (absent when series_capacity == 0; a PR 9 reader
// would refuse such a snapshot by its 3-word META, a PR 9 *file* still
// decodes here by its 2-word META).
constexpr std::uint32_t kColSeriesValue = 19;
constexpr std::uint32_t kColSeriesRound = 20;
constexpr std::uint32_t kColSeriesLen = 21;
constexpr std::uint32_t kColSeriesHead = 22;

std::size_t AlignUp(std::size_t value) { return (value + 63) / 64 * 64; }

storage::Error SnapshotError(const std::string& path, std::string detail) {
  storage::Error error;
  error.op = "columnar";
  error.path = path;
  error.detail = std::move(detail);
  return error;
}

}  // namespace

void BlockStore::Reset(std::size_t n_blocks,
                       const AvailabilityConfig& config,
                       std::int32_t series_capacity) {
  n_ = n_blocks;
  config_ = config;
  series_capacity_ = series_capacity > 0 ? series_capacity : 0;

  std::size_t cursor = 0;
  const auto carve = [&cursor](std::size_t elem, std::size_t count) {
    const std::size_t offset = AlignUp(cursor);
    cursor = offset + elem * count;
    return offset;
  };
  const auto carve_block = [&carve, n_blocks](std::size_t elem) {
    return carve(elem, n_blocks);
  };
  const std::size_t ring_slots =
      n_blocks * static_cast<std::size_t>(series_capacity_);
  prefix_off_ = carve_block(sizeof(std::uint32_t));
  p_short_off_ = carve_block(sizeof(double));
  t_short_off_ = carve_block(sizeof(double));
  p_long_off_ = carve_block(sizeof(double));
  t_long_off_ = carve_block(sizeof(double));
  deviation_off_ = carve_block(sizeof(double));
  rounds_off_ = carve_block(sizeof(std::int32_t));
  probes_off_ = carve_block(sizeof(std::uint64_t));
  positives_off_ = carve_block(sizeof(std::uint64_t));
  down_rounds_off_ = carve_block(sizeof(std::int32_t));
  flags_off_ = carve_block(sizeof(std::uint8_t));
  classification_off_ = carve_block(sizeof(std::uint8_t));
  ever_active_off_ = carve_block(sizeof(std::int32_t));
  observed_days_off_ = carve_block(sizeof(std::int32_t));
  mean_short_off_ = carve_block(sizeof(double));
  final_operational_off_ = carve_block(sizeof(double));
  mean_probes_off_ = carve_block(sizeof(double));
  series_value_off_ = carve(sizeof(double), ring_slots);
  series_round_off_ = carve(sizeof(std::int32_t), ring_slots);
  series_len_off_ = carve_block(sizeof(std::int32_t));
  series_head_off_ = carve_block(sizeof(std::int32_t));

  const std::size_t bytes = AlignUp(cursor);
  arena_.reset(static_cast<std::uint8_t*>(
      ::operator new(bytes == 0 ? 64 : bytes, std::align_val_t{64})));
  std::memset(arena_.get(), 0, bytes == 0 ? 64 : bytes);

  // Estimator columns start from the AvailabilityState defaults, not
  // all-zero: t EWMAs at 1.0, deviation at the configured prior.
  double* t_short = Column<double>(t_short_off_);
  double* t_long = Column<double>(t_long_off_);
  double* deviation = Column<double>(deviation_off_);
  for (std::size_t i = 0; i < n_; ++i) {
    t_short[i] = 1.0;
    t_long[i] = 1.0;
    deviation[i] = config_.initial_deviation;
  }
}

void BlockStore::SeedBlock(std::size_t i, std::uint32_t prefix_index,
                           double initial_availability) noexcept {
  Column<std::uint32_t>(prefix_off_)[i] = prefix_index;
  const double seeded =
      initial_availability < 0.0
          ? 0.0
          : (initial_availability > 1.0 ? 1.0 : initial_availability);
  Column<double>(p_short_off_)[i] = seeded;
  Column<double>(p_long_off_)[i] = seeded;
  Column<double>(t_short_off_)[i] = 1.0;
  Column<double>(t_long_off_)[i] = 1.0;
  Column<double>(deviation_off_)[i] = config_.initial_deviation;
  Column<std::int32_t>(rounds_off_)[i] = 0;
}

void BlockStore::Observe(std::size_t i, std::int32_t positives,
                         std::int32_t total) noexcept {
  const RoundSample sample{positives, total};
  ObserveRound(i, i + 1, {&sample, 1});
}

void BlockStore::ObserveRound(std::size_t begin, std::size_t end,
                              std::span<const RoundSample> samples) noexcept {
  if (begin >= end || end > n_ || samples.size() < end - begin) return;
  double* p_short = Column<double>(p_short_off_);
  double* t_short = Column<double>(t_short_off_);
  double* p_long = Column<double>(p_long_off_);
  double* t_long = Column<double>(t_long_off_);
  double* deviation = Column<double>(deviation_off_);
  std::int32_t* rounds = Column<std::int32_t>(rounds_off_);
  std::uint64_t* probes = Column<std::uint64_t>(probes_off_);
  std::uint64_t* positives = Column<std::uint64_t>(positives_off_);
  std::int32_t* down_rounds = Column<std::int32_t>(down_rounds_off_);

  for (std::size_t i = begin; i < end; ++i) {
    const RoundSample sample = samples[i - begin];
    // Load the block's state into locals, run THE shared step, store
    // back: same expressions as AvailabilityEstimator::Observe, so the
    // trajectories agree to the bit (proven in block_store_test).
    AvailabilityState state{p_short[i], t_short[i],    p_long[i],
                            t_long[i],  deviation[i], rounds[i]};
    AvailabilityObserve(state, config_, sample.positives, sample.total);
    p_short[i] = state.p_short;
    t_short[i] = state.t_short;
    p_long[i] = state.p_long;
    t_long[i] = state.t_long;
    deviation[i] = state.deviation;
    rounds[i] = state.rounds;
    if (sample.total > 0) {
      probes[i] += static_cast<std::uint64_t>(sample.total);
      positives[i] += static_cast<std::uint64_t>(
          sample.positives < 0 ? 0 : sample.positives);
      if (sample.positives <= 0) ++down_rounds[i];
    }
  }
}

void BlockStore::AppendSeriesSample(std::size_t i, std::int64_t round,
                                    double value) noexcept {
  if (series_capacity_ <= 0 || i >= n_) return;
  const auto cap = static_cast<std::size_t>(series_capacity_);
  std::int32_t* len = Column<std::int32_t>(series_len_off_) + i;
  std::int32_t* head = Column<std::int32_t>(series_head_off_) + i;
  const std::size_t slot =
      i * cap + (static_cast<std::size_t>(*head) +
                 static_cast<std::size_t>(*len)) %
                    cap;
  Column<double>(series_value_off_)[slot] = value;
  Column<std::int32_t>(series_round_off_)[slot] =
      static_cast<std::int32_t>(round);
  if (*len < series_capacity_) {
    ++*len;
  } else {
    *head = (*head + 1) % series_capacity_;
  }
}

void BlockStore::RecordSeriesRound(std::size_t begin, std::size_t end,
                                   std::int64_t round) noexcept {
  if (series_capacity_ <= 0 || begin >= end || end > n_) return;
  const auto cap = static_cast<std::size_t>(series_capacity_);
  const double* p_short = Column<double>(p_short_off_);
  const double* t_short = Column<double>(t_short_off_);
  double* values = Column<double>(series_value_off_);
  std::int32_t* rounds = Column<std::int32_t>(series_round_off_);
  std::int32_t* len = Column<std::int32_t>(series_len_off_);
  std::int32_t* head = Column<std::int32_t>(series_head_off_);
  const auto stamp = static_cast<std::int32_t>(round);
  for (std::size_t i = begin; i < end; ++i) {
    // Same expression as AvailabilityShortTerm over the estimator
    // columns — the recorded sample is bitwise what the scalar
    // analyzer's raw_.Add(round, estimator.ShortTerm()) records.
    const double value =
        t_short[i] > 0.0 ? p_short[i] / t_short[i] : 0.0;
    const std::size_t slot =
        i * cap + (static_cast<std::size_t>(head[i]) +
                   static_cast<std::size_t>(len[i])) %
                      cap;
    values[slot] = value;
    rounds[slot] = stamp;
    if (len[i] < series_capacity_) {
      ++len[i];
    } else {
      head[i] = (head[i] + 1) % series_capacity_;
    }
  }
}

std::int32_t BlockStore::SeriesLength(std::size_t i) const noexcept {
  if (series_capacity_ <= 0 || i >= n_) return 0;
  return Column<std::int32_t>(series_len_off_)[i];
}

void BlockStore::CopySeriesOrdered(std::size_t i,
                                   std::vector<ts::Observation>& out) const {
  out.clear();
  if (series_capacity_ <= 0 || i >= n_) return;
  const auto cap = static_cast<std::size_t>(series_capacity_);
  const double* values = Column<double>(series_value_off_) + i * cap;
  const std::int32_t* rounds = Column<std::int32_t>(series_round_off_) + i * cap;
  const std::int32_t len = Column<std::int32_t>(series_len_off_)[i];
  const std::int32_t head = Column<std::int32_t>(series_head_off_)[i];
  out.reserve(static_cast<std::size_t>(len));
  for (std::int32_t k = 0; k < len; ++k) {
    const auto slot = static_cast<std::size_t>((head + k) % series_capacity_);
    out.push_back({rounds[slot], values[slot]});
  }
}

void BlockStore::SetEverActive(std::size_t i, std::int32_t count) noexcept {
  Column<std::int32_t>(ever_active_off_)[i] = count;
}

AvailabilityState BlockStore::ExportEstimator(std::size_t i) const noexcept {
  return {Column<double>(p_short_off_)[i],   Column<double>(t_short_off_)[i],
          Column<double>(p_long_off_)[i],    Column<double>(t_long_off_)[i],
          Column<double>(deviation_off_)[i],
          Column<std::int32_t>(rounds_off_)[i]};
}

void BlockStore::RestoreEstimator(std::size_t i,
                                  const AvailabilityState& state) noexcept {
  Column<double>(p_short_off_)[i] = state.p_short;
  Column<double>(t_short_off_)[i] = state.t_short;
  Column<double>(p_long_off_)[i] = state.p_long;
  Column<double>(t_long_off_)[i] = state.t_long;
  Column<double>(deviation_off_)[i] = state.deviation;
  Column<std::int32_t>(rounds_off_)[i] = state.rounds;
}

double BlockStore::ShortTerm(std::size_t i) const noexcept {
  const AvailabilityState state = ExportEstimator(i);
  return AvailabilityShortTerm(state);
}

double BlockStore::Operational(std::size_t i) const noexcept {
  const AvailabilityState state = ExportEstimator(i);
  return AvailabilityOperational(state, config_);
}

void BlockStore::RecordVerdict(std::size_t i, const BlockVerdict& verdict,
                               const AvailabilityState& estimator) noexcept {
  Column<std::uint32_t>(prefix_off_)[i] = verdict.prefix_index;
  std::uint8_t flags = 0;
  if (verdict.probed) flags |= kBlockFlagProbed;
  if (verdict.quarantined) flags |= kBlockFlagQuarantined;
  if (verdict.stationary) flags |= kBlockFlagStationary;
  Column<std::uint8_t>(flags_off_)[i] = flags;
  Column<std::uint8_t>(classification_off_)[i] = verdict.classification;
  Column<std::int32_t>(ever_active_off_)[i] = verdict.ever_active;
  Column<std::int32_t>(observed_days_off_)[i] = verdict.observed_days;
  Column<std::int32_t>(down_rounds_off_)[i] = verdict.down_rounds;
  Column<double>(mean_short_off_)[i] = verdict.mean_short;
  Column<double>(final_operational_off_)[i] = verdict.final_operational;
  Column<double>(mean_probes_off_)[i] = verdict.mean_probes_per_round;
  RestoreEstimator(i, estimator);
}

#define SLEEPWALK_COLUMN_SPAN(type, offset)                         \
  std::span<const type> { Column<type>(offset), n_ }

std::span<const std::uint32_t> BlockStore::prefix_index() const noexcept {
  return SLEEPWALK_COLUMN_SPAN(std::uint32_t, prefix_off_);
}
std::span<const double> BlockStore::p_short() const noexcept {
  return SLEEPWALK_COLUMN_SPAN(double, p_short_off_);
}
std::span<const double> BlockStore::t_short() const noexcept {
  return SLEEPWALK_COLUMN_SPAN(double, t_short_off_);
}
std::span<const double> BlockStore::p_long() const noexcept {
  return SLEEPWALK_COLUMN_SPAN(double, p_long_off_);
}
std::span<const double> BlockStore::t_long() const noexcept {
  return SLEEPWALK_COLUMN_SPAN(double, t_long_off_);
}
std::span<const double> BlockStore::deviation() const noexcept {
  return SLEEPWALK_COLUMN_SPAN(double, deviation_off_);
}
std::span<const std::int32_t> BlockStore::rounds() const noexcept {
  return SLEEPWALK_COLUMN_SPAN(std::int32_t, rounds_off_);
}
std::span<const std::uint64_t> BlockStore::probes() const noexcept {
  return SLEEPWALK_COLUMN_SPAN(std::uint64_t, probes_off_);
}
std::span<const std::uint64_t> BlockStore::positives() const noexcept {
  return SLEEPWALK_COLUMN_SPAN(std::uint64_t, positives_off_);
}
std::span<const std::int32_t> BlockStore::down_rounds() const noexcept {
  return SLEEPWALK_COLUMN_SPAN(std::int32_t, down_rounds_off_);
}
std::span<const std::uint8_t> BlockStore::flags() const noexcept {
  return SLEEPWALK_COLUMN_SPAN(std::uint8_t, flags_off_);
}
std::span<const std::uint8_t> BlockStore::classification() const noexcept {
  return SLEEPWALK_COLUMN_SPAN(std::uint8_t, classification_off_);
}
std::span<const std::int32_t> BlockStore::ever_active() const noexcept {
  return SLEEPWALK_COLUMN_SPAN(std::int32_t, ever_active_off_);
}
std::span<const std::int32_t> BlockStore::observed_days() const noexcept {
  return SLEEPWALK_COLUMN_SPAN(std::int32_t, observed_days_off_);
}
std::span<const double> BlockStore::mean_short() const noexcept {
  return SLEEPWALK_COLUMN_SPAN(double, mean_short_off_);
}
std::span<const double> BlockStore::final_operational() const noexcept {
  return SLEEPWALK_COLUMN_SPAN(double, final_operational_off_);
}
std::span<const double> BlockStore::mean_probes_per_round() const noexcept {
  return SLEEPWALK_COLUMN_SPAN(double, mean_probes_off_);
}
std::span<const double> BlockStore::series_values() const noexcept {
  return {Column<double>(series_value_off_),
          n_ * static_cast<std::size_t>(series_capacity_)};
}
std::span<const std::int32_t> BlockStore::series_rounds() const noexcept {
  return {Column<std::int32_t>(series_round_off_),
          n_ * static_cast<std::size_t>(series_capacity_)};
}
std::span<const std::int32_t> BlockStore::series_len() const noexcept {
  if (series_capacity_ <= 0) return {};
  return SLEEPWALK_COLUMN_SPAN(std::int32_t, series_len_off_);
}
std::span<const std::int32_t> BlockStore::series_head() const noexcept {
  if (series_capacity_ <= 0) return {};
  return SLEEPWALK_COLUMN_SPAN(std::int32_t, series_head_off_);
}

#undef SLEEPWALK_COLUMN_SPAN

namespace {

template <typename T>
std::uint64_t FoldColumn(std::uint64_t hash, std::span<const T> column) {
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(column.data());
  return MixHash(hash, net::Crc32cOf({bytes, column.size_bytes()}),
                 column.size());
}

}  // namespace

std::uint64_t BlockStore::Digest() const noexcept {
  std::uint64_t hash = MixHash(
      0x5ee9b10cULL, n_, static_cast<std::uint64_t>(series_capacity_));
  hash = FoldColumn(hash, prefix_index());
  hash = FoldColumn(hash, p_short());
  hash = FoldColumn(hash, t_short());
  hash = FoldColumn(hash, p_long());
  hash = FoldColumn(hash, t_long());
  hash = FoldColumn(hash, deviation());
  hash = FoldColumn(hash, rounds());
  hash = FoldColumn(hash, probes());
  hash = FoldColumn(hash, positives());
  hash = FoldColumn(hash, down_rounds());
  hash = FoldColumn(hash, flags());
  hash = FoldColumn(hash, classification());
  hash = FoldColumn(hash, ever_active());
  hash = FoldColumn(hash, observed_days());
  hash = FoldColumn(hash, mean_short());
  hash = FoldColumn(hash, final_operational());
  hash = FoldColumn(hash, mean_probes_per_round());
  if (series_capacity_ > 0) {
    hash = FoldColumn(hash, series_values());
    hash = FoldColumn(hash, series_rounds());
    hash = FoldColumn(hash, series_len());
    hash = FoldColumn(hash, series_head());
  }
  return hash;
}

std::vector<std::uint8_t> BlockStore::EncodeSnapshot(
    std::uint64_t fingerprint, std::uint64_t rounds_done,
    std::uint64_t checkpoints_written) const {
  storage::ColumnarWriter writer(kStoreMagic, kStoreSnapshotKind,
                                 fingerprint, checkpoints_written);
  // Three META words since the series columns landed; PR 9 snapshots
  // carry two (DecodeSnapshot accepts both).
  const std::uint64_t meta[3] = {
      rounds_done, checkpoints_written,
      static_cast<std::uint64_t>(series_capacity_)};
  writer.AddTypedBorrowed<std::uint64_t>(kColMeta, meta);
  writer.AddTypedBorrowed(kColPrefix, prefix_index());
  writer.AddTypedBorrowed(kColPShort, p_short());
  writer.AddTypedBorrowed(kColTShort, t_short());
  writer.AddTypedBorrowed(kColPLong, p_long());
  writer.AddTypedBorrowed(kColTLong, t_long());
  writer.AddTypedBorrowed(kColDeviation, deviation());
  writer.AddTypedBorrowed(kColRounds, rounds());
  writer.AddTypedBorrowed(kColProbes, probes());
  writer.AddTypedBorrowed(kColPositives, positives());
  writer.AddTypedBorrowed(kColDownRounds, down_rounds());
  writer.AddTypedBorrowed(kColFlags, flags());
  writer.AddTypedBorrowed(kColClassification, classification());
  writer.AddTypedBorrowed(kColEverActive, ever_active());
  writer.AddTypedBorrowed(kColObservedDays, observed_days());
  writer.AddTypedBorrowed(kColMeanShort, mean_short());
  writer.AddTypedBorrowed(kColFinalOperational, final_operational());
  writer.AddTypedBorrowed(kColMeanProbes, mean_probes_per_round());
  if (series_capacity_ > 0) {
    writer.AddTypedBorrowed(kColSeriesValue, series_values());
    writer.AddTypedBorrowed(kColSeriesRound, series_rounds());
    writer.AddTypedBorrowed(kColSeriesLen, series_len());
    writer.AddTypedBorrowed(kColSeriesHead, series_head());
  }
  return writer.Finish();
}

storage::Error BlockStore::DecodeSnapshot(
    std::span<const std::uint8_t> file, std::uint64_t expect_fingerprint,
    std::uint64_t& rounds_done, std::uint64_t& checkpoints_written,
    const std::string& path) {
  storage::ColumnarReader reader;
  if (auto error = reader.Parse(file, kStoreMagic, path); !error.ok()) {
    return error;
  }
  if (reader.kind() != kStoreSnapshotKind) {
    return SnapshotError(path, "not a block-store snapshot (kind " +
                                   std::to_string(reader.kind()) + ")");
  }
  if (reader.fingerprint() != expect_fingerprint) {
    return SnapshotError(path, "campaign fingerprint mismatch");
  }
  // 2 META words = a PR 9 estimator-only snapshot (no series columns);
  // 3 = current layout with the ring capacity in meta[2].
  std::span<const std::uint64_t> meta;
  if (!reader.FetchTyped(kColMeta, 3, meta) &&
      !reader.FetchTyped(kColMeta, 2, meta)) {
    return SnapshotError(path, "META column missing or malformed");
  }
  const std::uint64_t meta_capacity = meta.size() == 3 ? meta[2] : 0;
  if (meta_capacity > (1ull << 30)) {
    return SnapshotError(path, "implausible series capacity");
  }
  const auto capacity = static_cast<std::int32_t>(meta_capacity);
  const storage::ColumnarColumn* prefix = reader.Find(kColPrefix);
  if (prefix == nullptr) {
    return SnapshotError(path, "prefix column missing");
  }
  const std::uint64_t rows = prefix->rows;
  if (capacity > 0 && rows > (1ull << 63) / meta_capacity / 8) {
    return SnapshotError(path, "implausible series extent");
  }

  std::span<const std::uint32_t> prefixes;
  std::span<const double> p_short, t_short, p_long, t_long, deviation;
  std::span<const double> mean_short, final_operational, mean_probes;
  std::span<const std::int32_t> rounds, down_rounds, ever_active;
  std::span<const std::int32_t> observed_days;
  std::span<const std::uint64_t> probes, positives;
  std::span<const std::uint8_t> flags, classification;
  const bool complete =
      reader.FetchTyped(kColPrefix, rows, prefixes) &&
      reader.FetchTyped(kColPShort, rows, p_short) &&
      reader.FetchTyped(kColTShort, rows, t_short) &&
      reader.FetchTyped(kColPLong, rows, p_long) &&
      reader.FetchTyped(kColTLong, rows, t_long) &&
      reader.FetchTyped(kColDeviation, rows, deviation) &&
      reader.FetchTyped(kColRounds, rows, rounds) &&
      reader.FetchTyped(kColProbes, rows, probes) &&
      reader.FetchTyped(kColPositives, rows, positives) &&
      reader.FetchTyped(kColDownRounds, rows, down_rounds) &&
      reader.FetchTyped(kColFlags, rows, flags) &&
      reader.FetchTyped(kColClassification, rows, classification) &&
      reader.FetchTyped(kColEverActive, rows, ever_active) &&
      reader.FetchTyped(kColObservedDays, rows, observed_days) &&
      reader.FetchTyped(kColMeanShort, rows, mean_short) &&
      reader.FetchTyped(kColFinalOperational, rows, final_operational) &&
      reader.FetchTyped(kColMeanProbes, rows, mean_probes);
  if (!complete) {
    return SnapshotError(path, "column set incomplete or row counts differ");
  }
  std::span<const double> series_value;
  std::span<const std::int32_t> series_round, series_len, series_head;
  if (capacity > 0) {
    const std::uint64_t ring_rows = rows * meta_capacity;
    const bool series_complete =
        reader.FetchTyped(kColSeriesValue, ring_rows, series_value) &&
        reader.FetchTyped(kColSeriesRound, ring_rows, series_round) &&
        reader.FetchTyped(kColSeriesLen, rows, series_len) &&
        reader.FetchTyped(kColSeriesHead, rows, series_head);
    if (!series_complete) {
      return SnapshotError(path, "series columns incomplete or mis-sized");
    }
  }

  Reset(rows, config_, capacity);
  const auto adopt = [this](auto offset, const auto& span) {
    using Element = typename std::remove_cvref_t<decltype(span)>::element_type;
    std::memcpy(Column<std::remove_const_t<Element>>(offset), span.data(),
                span.size_bytes());
  };
  adopt(prefix_off_, prefixes);
  adopt(p_short_off_, p_short);
  adopt(t_short_off_, t_short);
  adopt(p_long_off_, p_long);
  adopt(t_long_off_, t_long);
  adopt(deviation_off_, deviation);
  adopt(rounds_off_, rounds);
  adopt(probes_off_, probes);
  adopt(positives_off_, positives);
  adopt(down_rounds_off_, down_rounds);
  adopt(flags_off_, flags);
  adopt(classification_off_, classification);
  adopt(ever_active_off_, ever_active);
  adopt(observed_days_off_, observed_days);
  adopt(mean_short_off_, mean_short);
  adopt(final_operational_off_, final_operational);
  adopt(mean_probes_off_, mean_probes);
  if (capacity > 0) {
    adopt(series_value_off_, series_value);
    adopt(series_round_off_, series_round);
    adopt(series_len_off_, series_len);
    adopt(series_head_off_, series_head);
  }

  rounds_done = meta[0];
  checkpoints_written = meta[1];
  return {};
}

}  // namespace sleepwalk::core
