// Dataset-scale measurement pipeline: the A_12w-style campaign over many
// blocks, producing per-block analyses and aggregate diurnal counts.
#ifndef SLEEPWALK_CORE_PIPELINE_H_
#define SLEEPWALK_CORE_PIPELINE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "sleepwalk/core/block_analyzer.h"
#include "sleepwalk/net/transport.h"

namespace sleepwalk::core {

/// One block to measure: its ever-active history and prior availability.
struct BlockTarget {
  net::Prefix24 block;
  std::vector<std::uint8_t> ever_active;
  double initial_availability = 0.5;
};

/// Aggregate counts over a dataset.
struct DiurnalCounts {
  std::int64_t strict = 0;
  std::int64_t relaxed = 0;  ///< relaxed but not strict
  std::int64_t non_diurnal = 0;
  std::int64_t skipped = 0;  ///< sparse-policy or too-short blocks

  std::int64_t probed() const noexcept {
    return strict + relaxed + non_diurnal;
  }
  double StrictFraction() const noexcept {
    const auto total = probed();
    return total > 0 ? static_cast<double>(strict) /
                           static_cast<double>(total)
                     : 0.0;
  }
  double EitherFraction() const noexcept {
    const auto total = probed();
    return total > 0 ? static_cast<double>(strict + relaxed) /
                           static_cast<double>(total)
                     : 0.0;
  }
};

/// A full campaign's results.
struct DatasetResult {
  std::vector<BlockAnalysis> analyses;  ///< one per target, in order
  DiurnalCounts counts;
};

/// Runs an `n_rounds`-round campaign over every target through
/// `transport`. Blocks are measured one at a time (memory stays O(1
/// block)); `progress`, when set, is called after each block.
DatasetResult RunCampaign(
    std::vector<BlockTarget> targets, net::Transport& transport,
    std::int64_t n_rounds, const AnalyzerConfig& config = {},
    std::uint64_t seed = 0x51ee9,
    const std::function<void(std::size_t, std::size_t)>& progress = {});

}  // namespace sleepwalk::core

#endif  // SLEEPWALK_CORE_PIPELINE_H_
