// Dataset-scale measurement pipeline: the A_12w-style campaign over many
// blocks, producing per-block analyses and aggregate diurnal counts.
#ifndef SLEEPWALK_CORE_PIPELINE_H_
#define SLEEPWALK_CORE_PIPELINE_H_

#include <cstdint>
#include <cstddef>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "sleepwalk/core/block_analyzer.h"
#include "sleepwalk/net/transport.h"

namespace sleepwalk::core {

/// One block to measure: its ever-active history and prior availability.
struct BlockTarget {
  net::Prefix24 block;
  std::vector<std::uint8_t> ever_active;
  double initial_availability = 0.5;
};

/// Aggregate counts over a dataset.
struct DiurnalCounts {
  std::int64_t strict = 0;
  std::int64_t relaxed = 0;  ///< relaxed but not strict
  std::int64_t non_diurnal = 0;
  std::int64_t skipped = 0;  ///< sparse-policy or too-short blocks

  std::int64_t probed() const noexcept {
    return strict + relaxed + non_diurnal;
  }
  double StrictFraction() const noexcept {
    const auto total = probed();
    return total > 0 ? static_cast<double>(strict) /
                           static_cast<double>(total)
                     : 0.0;
  }
  double EitherFraction() const noexcept {
    const auto total = probed();
    return total > 0 ? static_cast<double>(strict + relaxed) /
                           static_cast<double>(total)
                     : 0.0;
  }
};

/// A full campaign's results.
struct DatasetResult {
  std::vector<BlockAnalysis> analyses;  ///< one per target, in order
  DiurnalCounts counts;
};

/// Campaign heartbeat payload, emitted after every finished block. The
/// deterministic fields (blocks/rounds/quarantined) also flow into the
/// obs log and metrics; the wall-derived rate and ETA only reach the
/// progress consumer (a live status line), never a deterministic sink.
struct CampaignProgress {
  std::size_t blocks_done = 0;
  std::size_t blocks_total = 0;
  std::int64_t rounds_done = 0;         ///< this process, incl. gaps
  std::uint64_t quarantined = 0;        ///< blocks abandoned so far
  double rounds_per_sec = 0.0;          ///< wall-clock rate; 0 if unknown
  /// Rounds until the next periodic checkpoint; -1 when checkpointing is
  /// off or only block-boundary snapshots are taken.
  std::int64_t rounds_to_checkpoint = -1;

  /// Wall-clock seconds until the next checkpoint at the current rate;
  /// -1 when unknown.
  double CheckpointEtaSec() const noexcept {
    return rounds_to_checkpoint >= 0 && rounds_per_sec > 0.0
               ? static_cast<double>(rounds_to_checkpoint) / rounds_per_sec
               : -1.0;
  }
};

/// Progress callback wrapper. New consumers take the full
/// CampaignProgress; legacy `(blocks_done, blocks_total)` callables are
/// adapted transparently so existing callers keep compiling.
class ProgressFn {
 public:
  ProgressFn() = default;
  ProgressFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            std::enable_if_t<
                std::is_invocable_v<F&, const CampaignProgress&>, int> = 0>
  ProgressFn(F fn)  // NOLINT(google-explicit-constructor)
      : fn_(std::move(fn)) {}

  /// Shim for the pre-telemetry callback shape.
  template <typename F,
            std::enable_if_t<
                !std::is_invocable_v<F&, const CampaignProgress&> &&
                    std::is_invocable_v<F&, std::size_t, std::size_t>,
                int> = 0>
  ProgressFn(F fn) {  // NOLINT(google-explicit-constructor)
    fn_ = [legacy = std::move(fn)](const CampaignProgress& p) mutable {
      legacy(p.blocks_done, p.blocks_total);
    };
  }

  /// std::function overloads preserve emptiness instead of wrapping an
  /// empty target (which would crash on call).
  ProgressFn(  // NOLINT(google-explicit-constructor)
      std::function<void(const CampaignProgress&)> fn)
      : fn_(std::move(fn)) {}
  ProgressFn(  // NOLINT(google-explicit-constructor)
      std::function<void(std::size_t, std::size_t)> fn) {
    if (fn) {
      fn_ = [legacy = std::move(fn)](const CampaignProgress& p) {
        legacy(p.blocks_done, p.blocks_total);
      };
    }
  }

  explicit operator bool() const noexcept { return static_cast<bool>(fn_); }
  void operator()(const CampaignProgress& progress) const { fn_(progress); }

 private:
  std::function<void(const CampaignProgress&)> fn_;
};

/// Runs an `n_rounds`-round campaign over every target through
/// `transport`. Blocks are measured one at a time (memory stays O(1
/// block)); `progress`, when set, is called after each block.
DatasetResult RunCampaign(std::vector<BlockTarget> targets,
                          net::Transport& transport, std::int64_t n_rounds,
                          const AnalyzerConfig& config = {},
                          std::uint64_t seed = 0x51ee9,
                          const ProgressFn& progress = {});

struct Dataset;  // core/dataset.h

/// Re-analyzes every stored series of `dataset` (stationarity screen +
/// FFT diurnal classification), fanning the independent blocks across
/// `workers` threads (<= 0 = HardwareWorkers()). Block i's analysis
/// lands at index i and classification is a pure per-block function, so
/// the result is identical for any worker count.
std::vector<BlockAnalysis> ReanalyzeDataset(const Dataset& dataset,
                                            const AnalyzerConfig& config = {},
                                            int workers = 0);

struct ColumnarDatasetView;  // core/dataset_columnar.h

/// Re-analyzes an SLPW v3 dataset straight off its mapped view and
/// aggregates DiurnalCounts — no per-block vectors or output analyses
/// are materialized, so a 1M-block sweep stays O(workers) in memory.
/// Counts match ReanalyzeDataset + ClassifyAnalysis of the same data
/// loaded via SLPW v2 exactly.
DiurnalCounts ReanalyzeDatasetColumnar(const ColumnarDatasetView& view,
                                       const AnalyzerConfig& config = {},
                                       int workers = 0);

}  // namespace sleepwalk::core

#endif  // SLEEPWALK_CORE_PIPELINE_H_
