#include "sleepwalk/core/quick_screen.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "sleepwalk/fft/goertzel.h"

namespace sleepwalk::core {

QuickScreenResult QuickDiurnalScreen(std::span<const double> series,
                                     int n_days,
                                     const QuickScreenConfig& config) {
  QuickScreenResult result;
  const std::size_t n = series.size();
  if (n_days < 2 || n < 8) return result;

  // Work on the mean-removed series (matching the full classifier).
  double mean = 0.0;
  for (const double v : series) mean += v;
  mean /= static_cast<double>(n);
  std::vector<double> centered(series.begin(), series.end());
  double energy = 0.0;
  for (auto& v : centered) {
    v -= mean;
    energy += v * v;
  }

  const auto daily = static_cast<std::size_t>(n_days);
  const double amp_daily = std::abs(fft::Goertzel(centered, daily));
  const double amp_neighbor =
      daily + 1 < n / 2 ? std::abs(fft::Goertzel(centered, daily + 1)) : 0.0;
  const double amp_harmonic =
      2 * daily < n / 2 ? std::abs(fft::Goertzel(centered, 2 * daily)) : 0.0;

  result.daily_amplitude = std::max(amp_daily, amp_neighbor);
  result.harmonic_amplitude = amp_harmonic;
  result.rms_amplitude = std::sqrt(energy);

  // score = bin amplitude / sqrt(total AC energy). A pure daily
  // sinusoid scores sqrt(n/2) (~30 for a 14-day series); white noise
  // concentrates no power anywhere and scores ~0.9 regardless of n.
  // Constant series leave only rounding residue in `energy`; treat
  // anything below ~1e-9 (availability is in [0,1]) as truly flat.
  if (result.rms_amplitude > 1e-9) {
    result.score = std::max(result.daily_amplitude,
                            result.harmonic_amplitude) /
                   result.rms_amplitude;
  }
  result.pass = result.score >= config.min_score;
  return result;
}

}  // namespace sleepwalk::core
