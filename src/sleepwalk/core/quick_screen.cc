#include "sleepwalk/core/quick_screen.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <complex>
#include <vector>

#include "sleepwalk/fft/goertzel.h"

namespace sleepwalk::core {

QuickScreenResult QuickDiurnalScreen(std::span<const double> series,
                                     int n_days,
                                     const QuickScreenConfig& config,
                                     std::vector<double>& centered_scratch) {
  QuickScreenResult result;
  const std::size_t n = series.size();
  if (n_days < 2 || n < 8) return result;

  // Work on the mean-removed series (matching the full classifier).
  double mean = 0.0;
  for (const double v : series) mean += v;
  mean /= static_cast<double>(n);
  centered_scratch.assign(series.begin(), series.end());
  double energy = 0.0;
  for (auto& v : centered_scratch) {
    v -= mean;
    energy += v * v;
  }

  // Daily bin, its neighbour, and the first harmonic — one pass over the
  // series for all of them (GoertzelMany), rather than three.
  const auto daily = static_cast<std::size_t>(n_days);
  std::array<std::size_t, 3> bins{};
  std::array<std::complex<double>, 3> coeffs{};
  std::size_t n_bins = 0;
  bins[n_bins++] = daily;
  const bool has_neighbor = daily + 1 < n / 2;
  if (has_neighbor) bins[n_bins++] = daily + 1;
  const bool has_harmonic = 2 * daily < n / 2;
  if (has_harmonic) bins[n_bins++] = 2 * daily;
  fft::GoertzelMany(centered_scratch,
                    std::span<const std::size_t>(bins.data(), n_bins),
                    std::span<std::complex<double>>(coeffs.data(), n_bins));

  std::size_t next = 0;
  const double amp_daily = std::abs(coeffs[next++]);
  const double amp_neighbor = has_neighbor ? std::abs(coeffs[next++]) : 0.0;
  const double amp_harmonic = has_harmonic ? std::abs(coeffs[next++]) : 0.0;

  result.daily_amplitude = std::max(amp_daily, amp_neighbor);
  result.harmonic_amplitude = amp_harmonic;
  result.rms_amplitude = std::sqrt(energy);

  // score = bin amplitude / sqrt(total AC energy). A pure daily
  // sinusoid scores sqrt(n/2) (~30 for a 14-day series); white noise
  // concentrates no power anywhere and scores ~0.9 regardless of n.
  // Constant series leave only rounding residue in `energy`; treat
  // anything below ~1e-9 (availability is in [0,1]) as truly flat.
  if (result.rms_amplitude > 1e-9) {
    result.score = std::max(result.daily_amplitude,
                            result.harmonic_amplitude) /
                   result.rms_amplitude;
  }
  result.pass = result.score >= config.min_score;
  return result;
}

QuickScreenResult QuickDiurnalScreen(std::span<const double> series,
                                     int n_days,
                                     const QuickScreenConfig& config) {
  std::vector<double> centered;
  return QuickDiurnalScreen(series, n_days, config, centered);
}

}  // namespace sleepwalk::core
