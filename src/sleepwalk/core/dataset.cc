#include "sleepwalk/core/dataset.h"

#include <cstring>
#include <numeric>
#include <utility>

#include "sleepwalk/core/dataset_columnar.h"
#include "sleepwalk/net/checksum.h"
#include "sleepwalk/storage/bytes.h"
#include "sleepwalk/util/narrow.h"

namespace sleepwalk::core {

namespace {

using storage::ByteReader;
using storage::ByteWriter;

constexpr char kMagic[4] = {'S', 'L', 'P', 'W'};

// Bytes between the magic and the header CRC: u32 version
// + i64 round_seconds + i64 epoch_sec + u64 block_count.
constexpr std::size_t kHeaderBytes = 4 + 8 + 8 + 8;

// Reject implausible counts before reserving (corrupt headers).
constexpr std::uint64_t kMaxCount = 1ull << 32;

void PutRecord(ByteWriter& out, const BlockAnalysis& analysis) {
  out.Put(analysis.block.Index());
  out.Put(util::CheckedNarrow<std::uint16_t>(analysis.ever_active));
  out.Put(util::BoolByte(analysis.probed));
  out.Put(analysis.short_series.first_round);
  out.Put(util::CheckedNarrow<std::uint32_t>(analysis.short_series.size()));
  for (const double value : analysis.short_series.values) {
    out.Put(static_cast<float>(value));
  }
}

bool GetRecord(ByteReader& in, StoredSeries& stored) {
  std::uint32_t index = 0;
  std::uint16_t ever_active = 0;
  std::uint8_t probed = 0;
  std::uint32_t n_samples = 0;
  if (!in.Get(index) || !in.Get(ever_active) || !in.Get(probed) ||
      !in.Get(stored.series.first_round) || !in.Get(n_samples)) {
    return false;
  }
  stored.block = net::Prefix24::FromIndex(index);
  stored.ever_active = ever_active;
  stored.probed = probed != 0;
  stored.series.values.resize(n_samples);
  for (auto& value : stored.series.values) {
    float sample = 0.0F;
    if (!in.Get(sample)) return false;
    value = static_cast<double>(sample);
  }
  return true;
}

/// SLPW v1: the unframed stream. Reader sits just after the version.
std::optional<Dataset> DecodeV1(ByteReader& in, DatasetLoadReport& report) {
  Dataset dataset;
  std::uint64_t block_count = 0;
  if (!in.Get(dataset.round_seconds) || !in.Get(dataset.epoch_sec) ||
      !in.Get(block_count) || block_count > kMaxCount) {
    report.corrupt_records = 1;
    report.detail = "v1 header truncated or implausible";
    return std::nullopt;
  }
  report.records_expected = block_count;
  dataset.blocks.reserve(block_count);
  for (std::uint64_t i = 0; i < block_count; ++i) {
    StoredSeries stored;
    if (!GetRecord(in, stored)) {
      report.corrupt_records = 1;
      report.detail = "v1 record " + std::to_string(i) + " truncated";
      return std::nullopt;
    }
    dataset.blocks.push_back(std::move(stored));
  }
  return dataset;
}

/// Shared v2 walk; `tolerant` decides whether a damaged record kills the
/// load or is skipped and counted.
std::optional<Dataset> DecodeV2(std::span<const std::uint8_t> bytes,
                                ByteReader& in, DatasetLoadReport& report,
                                bool tolerant) {
  Dataset dataset;
  std::uint64_t block_count = 0;
  std::uint32_t header_crc = 0;
  if (!in.Get(dataset.round_seconds) || !in.Get(dataset.epoch_sec) ||
      !in.Get(block_count) || !in.Get(header_crc)) {
    report.corrupt_records = 1;
    report.detail = "truncated header";
    return std::nullopt;
  }
  if (bytes.size() < 4 + kHeaderBytes ||
      net::Crc32cOf(bytes.subspan(4, kHeaderBytes)) != header_crc) {
    report.corrupt_records = 1;
    report.detail = "header CRC mismatch";
    return std::nullopt;
  }
  if (block_count > kMaxCount) {
    report.corrupt_records = 1;
    report.detail = "implausible block count";
    return std::nullopt;
  }
  report.records_expected = block_count;

  const auto note = [&report](std::string what) {
    ++report.corrupt_records;
    if (report.detail.empty()) report.detail = std::move(what);
  };

  dataset.blocks.reserve(block_count);
  for (std::uint64_t i = 0; i < block_count; ++i) {
    std::uint32_t length = 0;
    std::uint32_t crc = 0;
    if (!in.Get(length) || !in.Get(crc) || length > in.remaining()) {
      // The frame chain is broken; later records are not locatable. The
      // remnant belongs to this one broken frame, not to a second
      // "trailing bytes" defect.
      note("record " + std::to_string(i) + " frame truncated");
      if (tolerant) {
        in.Skip(in.remaining());
        break;
      }
      return std::nullopt;
    }
    const auto payload = in.Rest().first(length);
    in.Skip(length);
    if (net::Crc32cOf(payload) != crc) {
      note("record " + std::to_string(i) + " CRC mismatch");
      if (tolerant) continue;
      return std::nullopt;
    }
    ByteReader record{payload};
    StoredSeries stored;
    if (!GetRecord(record, stored) || record.remaining() != 0) {
      note("record " + std::to_string(i) + " malformed");
      if (tolerant) continue;
      return std::nullopt;
    }
    dataset.blocks.push_back(std::move(stored));
  }
  if (in.remaining() != 0) {
    note("trailing bytes after last record");
    if (!tolerant) return std::nullopt;
  }
  return dataset;
}

std::optional<Dataset> Decode(std::span<const std::uint8_t> bytes,
                              DatasetLoadReport& report, bool tolerant) {
  report.found = true;
  ByteReader in{bytes};
  char magic[4] = {};
  if (!in.GetBytes(reinterpret_cast<std::uint8_t*>(magic), sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    report.bad_magic = true;
    report.detail = "bad magic";
    return std::nullopt;
  }
  if (!in.Get(report.version)) {
    report.corrupt_records = 1;
    report.detail = "truncated before version";
    return std::nullopt;
  }
  if (report.version == 1) return DecodeV1(in, report);
  if (report.version == storage::kColumnarVersion) {
    // SLPW v3 interop: parse the columnar container (all-or-nothing —
    // per-column CRCs leave nothing to salvage record-by-record, so
    // strict and tolerant coincide) and materialize per-block vectors.
    ColumnarDatasetView view;
    if (auto error = ParseDatasetColumnar(bytes, view); !error.ok()) {
      report.corrupt_records = 1;
      report.detail = error.detail;
      return std::nullopt;
    }
    report.records_expected = view.size();
    return MaterializeDataset(view);
  }
  if (report.version != kDatasetVersion) {
    report.version_refused = true;
    report.detail = "unsupported version";
    return std::nullopt;
  }
  return DecodeV2(bytes, in, report, tolerant);
}

}  // namespace

std::vector<std::uint8_t> EncodeDataset(std::span<const BlockAnalysis> analyses,
                                        std::int64_t round_seconds,
                                        std::int64_t epoch_sec) {
  ByteWriter out;
  out.PutBytes(std::span{reinterpret_cast<const std::uint8_t*>(kMagic),
                         sizeof(kMagic)});
  ByteWriter header;
  // Exact header size up front: one u32 + two i64 + one u64. Also
  // placates GCC 12's -Wstringop-overflow, which at -O3 loses track of
  // vector regrowth across consecutive Put() calls.
  header.Reserve(sizeof(std::uint32_t) + 3 * sizeof(std::uint64_t));
  header.Put(kDatasetVersion);
  header.Put(round_seconds);
  header.Put(epoch_sec);
  header.Put(static_cast<std::uint64_t>(analyses.size()));
  out.PutBytes(header.bytes());
  out.Put(net::Crc32cOf(header.bytes()));

  ByteWriter record;
  for (const auto& analysis : analyses) {
    record = ByteWriter{};
    PutRecord(record, analysis);
    out.Put(util::CheckedNarrow<std::uint32_t>(record.size()));
    out.Put(net::Crc32cOf(record.bytes()));
    out.PutBytes(record.bytes());
  }
  return out.Take();
}

std::optional<Dataset> DecodeDataset(std::span<const std::uint8_t> bytes,
                                     DatasetLoadReport* report) {
  DatasetLoadReport scratch;
  return Decode(bytes, report != nullptr ? *report : scratch, false);
}

std::optional<Dataset> DecodeDatasetTolerant(
    std::span<const std::uint8_t> bytes, DatasetLoadReport* report) {
  DatasetLoadReport scratch;
  return Decode(bytes, report != nullptr ? *report : scratch, true);
}

storage::Error WriteDataset(storage::Env& env, const std::string& path,
                            std::span<const BlockAnalysis> analyses,
                            std::int64_t round_seconds,
                            std::int64_t epoch_sec) {
  return storage::AtomicWrite(
      env, path, EncodeDataset(analyses, round_seconds, epoch_sec));
}

std::optional<Dataset> ReadDataset(storage::Env& env, const std::string& path,
                                   DatasetLoadReport* report) {
  std::vector<std::uint8_t> bytes;
  if (auto error = env.ReadAll(path, bytes); !error.ok()) {
    if (report != nullptr) {
      report->found = false;
      report->detail = error.ToString();
    }
    return std::nullopt;
  }
  return DecodeDataset(bytes, report);
}

bool WriteDataset(const std::string& path,
                  std::span<const BlockAnalysis> analyses,
                  std::int64_t round_seconds, std::int64_t epoch_sec) {
  return WriteDataset(storage::RealEnvInstance(), path, analyses,
                      round_seconds, epoch_sec)
      .ok();
}

std::optional<Dataset> ReadDataset(const std::string& path) {
  return ReadDataset(storage::RealEnvInstance(), path, nullptr);
}

BlockAnalysis Reanalyze(const StoredSeries& stored,
                        const AnalyzerConfig& config) {
  AnalysisScratch scratch;
  BlockAnalysis analysis;
  Reanalyze(stored, config, scratch, analysis);
  return analysis;
}

void Reanalyze(const StoredSeries& stored, const AnalyzerConfig& config,
               AnalysisScratch& scratch, BlockAnalysis& out) {
  ReanalyzeSeries(stored.block, stored.ever_active, stored.probed,
                  stored.series.first_round, stored.series.values, config,
                  scratch, out);
}

void ReanalyzeSeries(net::Prefix24 block, int ever_active, bool probed,
                     std::int64_t first_round, std::span<const double> values,
                     const AnalyzerConfig& config, AnalysisScratch& scratch,
                     BlockAnalysis& out) {
  // Reset in place; clear()/assign keep capacities warm across the
  // reanalysis loop (see BlockAnalyzer::Finish).
  out.block = block;
  out.ever_active = ever_active;
  out.probed = probed;
  out.short_series.first_round = first_round;
  out.short_series.values.assign(values.begin(), values.end());
  out.observed_days = 0;
  out.diurnal = DiurnalResult{};
  out.stationarity = ts::StationarityResult{};
  out.mean_short = 0.0;
  out.final_operational = 0.0;
  out.mean_probes_per_round = 0.0;
  out.down_rounds = 0;
  out.outage_starts.clear();
  out.outages.clear();
  if (!probed || values.empty()) return;

  out.observed_days = ts::WholeDays(values.size(),
                                    config.schedule.round_seconds);
  out.mean_short = std::accumulate(values.begin(), values.end(), 0.0) /
                   static_cast<double>(values.size());
  out.stationarity = ts::TestStationarity(
      values, ever_active, config.max_trend_addresses_per_day,
      config.schedule.round_seconds, scratch.index);
  out.diurnal = ClassifyDiurnal(values, out.observed_days, config.diurnal,
                                nullptr, scratch);
}

}  // namespace sleepwalk::core
