#include "sleepwalk/core/dataset.h"

#include <cstring>
#include <fstream>
#include <numeric>

#include "sleepwalk/util/narrow.h"

namespace sleepwalk::core {

namespace {

constexpr char kMagic[4] = {'S', 'L', 'P', 'W'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void Put(std::ofstream& out, T value) {
  // Host is little-endian on every supported target; documented in the
  // header. A portable build would byte-swap here.
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
bool Get(std::ifstream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  return static_cast<bool>(in);
}

}  // namespace

bool WriteDataset(const std::string& path,
                  std::span<const BlockAnalysis> analyses,
                  std::int64_t round_seconds, std::int64_t epoch_sec) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  if (!out) return false;

  out.write(kMagic, sizeof(kMagic));
  Put(out, kVersion);
  Put(out, round_seconds);
  Put(out, epoch_sec);
  Put(out, static_cast<std::uint64_t>(analyses.size()));

  for (const auto& analysis : analyses) {
    Put(out, analysis.block.Index());
    Put(out, util::CheckedNarrow<std::uint16_t>(analysis.ever_active));
    Put(out, util::BoolByte(analysis.probed));
    Put(out, analysis.short_series.first_round);
    Put(out, util::CheckedNarrow<std::uint32_t>(analysis.short_series.size()));
    for (const double value : analysis.short_series.values) {
      Put(out, static_cast<float>(value));
    }
  }
  return static_cast<bool>(out);
}

std::optional<Dataset> ReadDataset(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return std::nullopt;

  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return std::nullopt;
  }
  std::uint32_t version = 0;
  if (!Get(in, version) || version != kVersion) return std::nullopt;

  Dataset dataset;
  std::uint64_t block_count = 0;
  if (!Get(in, dataset.round_seconds) || !Get(in, dataset.epoch_sec) ||
      !Get(in, block_count)) {
    return std::nullopt;
  }
  // Reject implausible counts before reserving (corrupt headers).
  if (block_count > (1ull << 32)) return std::nullopt;

  dataset.blocks.reserve(block_count);
  for (std::uint64_t i = 0; i < block_count; ++i) {
    StoredSeries stored;
    std::uint32_t index = 0;
    std::uint16_t ever_active = 0;
    std::uint8_t probed = 0;
    std::uint32_t n_samples = 0;
    if (!Get(in, index) || !Get(in, ever_active) || !Get(in, probed) ||
        !Get(in, stored.series.first_round) || !Get(in, n_samples)) {
      return std::nullopt;
    }
    stored.block = net::Prefix24::FromIndex(index);
    stored.ever_active = ever_active;
    stored.probed = probed != 0;
    stored.series.values.resize(n_samples);
    for (auto& value : stored.series.values) {
      float sample = 0.0F;
      if (!Get(in, sample)) return std::nullopt;
      value = static_cast<double>(sample);
    }
    dataset.blocks.push_back(std::move(stored));
  }
  return dataset;
}

BlockAnalysis Reanalyze(const StoredSeries& stored,
                        const AnalyzerConfig& config) {
  AnalysisScratch scratch;
  BlockAnalysis analysis;
  Reanalyze(stored, config, scratch, analysis);
  return analysis;
}

void Reanalyze(const StoredSeries& stored, const AnalyzerConfig& config,
               AnalysisScratch& scratch, BlockAnalysis& out) {
  // Reset in place; clear()/copy-assign keep capacities warm across the
  // reanalysis loop (see BlockAnalyzer::Finish).
  out.block = stored.block;
  out.ever_active = stored.ever_active;
  out.probed = stored.probed;
  out.short_series = stored.series;
  out.observed_days = 0;
  out.diurnal = DiurnalResult{};
  out.stationarity = ts::StationarityResult{};
  out.mean_short = 0.0;
  out.final_operational = 0.0;
  out.mean_probes_per_round = 0.0;
  out.down_rounds = 0;
  out.outage_starts.clear();
  out.outages.clear();
  if (!stored.probed || stored.series.values.empty()) return;

  out.observed_days = ts::WholeDays(stored.series.size(),
                                    config.schedule.round_seconds);
  out.mean_short =
      std::accumulate(stored.series.values.begin(),
                      stored.series.values.end(), 0.0) /
      static_cast<double>(stored.series.values.size());
  out.stationarity = ts::TestStationarity(
      stored.series.values, stored.ever_active,
      config.max_trend_addresses_per_day, config.schedule.round_seconds,
      scratch.index);
  out.diurnal = ClassifyDiurnal(stored.series.values, out.observed_days,
                                config.diurnal, nullptr, scratch);
}

}  // namespace sleepwalk::core
