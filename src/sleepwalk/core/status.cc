#include "sleepwalk/core/status.h"

#include <charconv>
#include <cmath>
#include <cstdint>

namespace sleepwalk::core {

namespace {

/// Shortest round-trip double formatting; non-finite values become JSON
/// null (NaN/Inf are not legal JSON numbers).
void AppendNumber(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  char buffer[32];
  const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value);
  out.append(buffer, static_cast<std::size_t>(ptr - buffer));
}

void AppendCount(std::string& out, std::uint64_t value) {
  char buffer[24];
  const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value);
  out.append(buffer, static_cast<std::size_t>(ptr - buffer));
}

void AppendSigned(std::string& out, std::int64_t value) {
  char buffer[24];
  const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value);
  out.append(buffer, static_cast<std::size_t>(ptr - buffer));
}

/// Metric names are [a-z0-9_]; escape defensively anyway.
void AppendString(std::string& out, const std::string& value) {
  out += '"';
  for (const char c : value) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

}  // namespace

std::vector<HistogramStatus> CollectHistogramStatus(
    const obs::Registry& registry) {
  std::vector<HistogramStatus> out;
  for (auto& [name, snapshot] : registry.HistogramSnapshots()) {
    if (snapshot.count == 0) continue;  // quantiles of nothing are noise
    HistogramStatus status;
    status.name = name;
    status.count = snapshot.count;
    status.quantiles = obs::SummarizeQuantiles(snapshot);
    out.push_back(std::move(status));
  }
  return out;
}

std::string RenderStatusJson(const CampaignStatus& status) {
  std::string out;
  out.reserve(1024);
  out += "{\"attached\":true,\"campaign\":{\"blocks_done\":";
  AppendCount(out, status.blocks_done);
  out += ",\"blocks_total\":";
  AppendCount(out, status.blocks_total);
  out += ",\"rounds_done\":";
  AppendSigned(out, status.rounds_done);
  out += ",\"resumed\":";
  out += status.resumed ? "true" : "false";
  out += ",\"stopped_early\":";
  out += status.stopped_early ? "true" : "false";
  out += ",\"counts\":{\"strict\":";
  AppendSigned(out, status.counts.strict);
  out += ",\"relaxed\":";
  AppendSigned(out, status.counts.relaxed);
  out += ",\"non_diurnal\":";
  AppendSigned(out, status.counts.non_diurnal);
  out += ",\"skipped\":";
  AppendSigned(out, status.counts.skipped);
  out += "}},\"resilience\":{\"rounds_attempted\":";
  AppendCount(out, status.stats.rounds_attempted);
  out += ",\"rounds_failed\":";
  AppendCount(out, status.stats.rounds_failed);
  out += ",\"rounds_gapped\":";
  AppendCount(out, status.stats.rounds_gapped);
  out += ",\"retries\":";
  AppendCount(out, status.stats.retries);
  out += ",\"backoff_seconds\":";
  AppendNumber(out, status.stats.backoff_seconds);
  out += ",\"forced_restarts\":";
  AppendCount(out, status.stats.forced_restarts);
  out += ",\"quarantined_blocks\":";
  AppendCount(out, status.stats.quarantined_blocks);
  out += ",\"probes\":{\"attempts\":";
  AppendCount(out, status.stats.probes.attempts);
  out += ",\"errors\":";
  AppendCount(out, status.stats.probes.errors);
  out += ",\"answered\":";
  AppendCount(out, status.stats.probes.answered);
  out += ",\"lost\":";
  AppendCount(out, status.stats.probes.lost);
  out += ",\"rate_limited\":";
  AppendCount(out, status.stats.probes.rate_limited);
  out += ",\"unreachable\":";
  AppendCount(out, status.stats.probes.unreachable);
  out += "}},\"checkpoint\":{\"written\":";
  AppendCount(out, status.stats.checkpoints_written);
  out += ",\"resumed_from_checkpoint\":";
  out += status.stats.resumed_from_checkpoint ? "true" : "false";
  out += ",\"recoveries\":";
  AppendCount(out, status.recovery.recoveries);
  out += ",\"corrupt_sections\":";
  AppendCount(out, status.recovery.corrupt_sections);
  out += ",\"generations_discarded\":";
  AppendCount(out, status.recovery.generations_discarded);
  out += "},\"live\":{\"rounds_per_sec\":";
  AppendNumber(out, status.rounds_per_sec);
  out += ",\"durability_tax_pct\":";
  AppendNumber(out, status.durability_tax_pct);
  out += ",\"workers\":";
  AppendCount(out, status.shards.size());
  out += ",\"shards\":[";
  for (std::size_t i = 0; i < status.shards.size(); ++i) {
    const auto& shard = status.shards[i];
    if (i > 0) out += ',';
    out += "{\"worker\":";
    AppendCount(out, shard.worker);
    out += ",\"blocks_run\":";
    AppendCount(out, shard.blocks_run);
    out += ",\"steals\":";
    AppendCount(out, shard.steals);
    out += ",\"idle_polls\":";
    AppendCount(out, shard.idle_polls);
    out += '}';
  }
  out += "]},\"quantiles\":[";
  for (std::size_t i = 0; i < status.quantiles.size(); ++i) {
    const auto& histogram = status.quantiles[i];
    if (i > 0) out += ',';
    out += "{\"name\":";
    AppendString(out, histogram.name);
    out += ",\"count\":";
    AppendCount(out, histogram.count);
    out += ",\"p50\":";
    AppendNumber(out, histogram.quantiles.p50);
    out += ",\"p95\":";
    AppendNumber(out, histogram.quantiles.p95);
    out += ",\"p99\":";
    AppendNumber(out, histogram.quantiles.p99);
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace sleepwalk::core
