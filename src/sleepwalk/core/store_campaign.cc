#include "sleepwalk/core/store_campaign.h"

#include <algorithm>
#include <thread>
#include <vector>

namespace sleepwalk::core {

namespace {

/// Seeds every block: prefix indices are just 0..n-1 (the synthetic
/// world), initial availability a per-block hash in [0, 1).
void SeedStore(BlockStore& store, const StoreCampaignConfig& config) {
  store.Reset(config.n_blocks, config.availability, config.series_capacity);
  for (std::size_t i = 0; i < config.n_blocks; ++i) {
    const auto prefix = static_cast<std::uint32_t>(i);
    store.SeedBlock(i, prefix,
                    SyntheticInitialAvailability(config.seed, prefix));
    store.SetEverActive(i, SyntheticEverActive(config.seed, prefix));
  }
}

/// One worker's share of a segment: rounds [first, last) over blocks
/// [begin, end). Samples are regenerated per round into a worker-local
/// buffer, then applied with the batched kernel.
void RunWorker(BlockStore& store, const StoreCampaignConfig& config,
               std::size_t begin, std::size_t end, std::int64_t first,
               std::int64_t last) {
  std::vector<RoundSample> samples(end - begin);
  const auto prefixes = store.prefix_index();
  const bool record_series = store.series_capacity() > 0;
  for (std::int64_t round = first; round < last; ++round) {
    for (std::size_t i = begin; i < end; ++i) {
      samples[i - begin] =
          SyntheticRoundSample(config.seed, prefixes[i], round);
    }
    store.ObserveRound(begin, end, samples);
    // Record the post-round A-hat_s like the scalar analyzer's
    // raw_.Add(round, estimator.ShortTerm()) — one batched pass.
    if (record_series) store.RecordSeriesRound(begin, end, round);
  }
}

/// Runs rounds [first, last) across all blocks with `workers` threads
/// owning contiguous ranges; serial when workers <= 1.
void RunSegment(BlockStore& store, const StoreCampaignConfig& config,
                std::int64_t first, std::int64_t last) {
  const std::size_t n = store.size();
  const int workers =
      std::max(1, std::min(config.workers,
                           static_cast<int>(n == 0 ? 1 : n)));
  if (workers == 1) {
    RunWorker(store, config, 0, n, first, last);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers);
  const std::size_t chunk = (n + workers - 1) / workers;
  for (int w = 0; w < workers; ++w) {
    const std::size_t begin = std::min(n, w * chunk);
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    pool.emplace_back([&store, &config, begin, end, first, last] {
      RunWorker(store, config, begin, end, first, last);
    });
  }
  for (auto& thread : pool) thread.join();
}

}  // namespace

std::uint64_t StoreCampaignFingerprint(const StoreCampaignConfig& config) {
  // Worker count and checkpoint cadence are deliberately excluded: a
  // snapshot is a valid resume point for any parallelism or stride.
  // Series capacity and the schedule ARE included: a snapshot without
  // the rings (or with a different round length) cannot seed the same
  // classify sweep.
  std::uint64_t hash =
      MixHash(config.seed, config.n_blocks,
              static_cast<std::uint64_t>(config.n_rounds));
  const auto& a = config.availability;
  hash = MixHash(hash, static_cast<std::uint64_t>(a.alpha_short * 1e9),
                 static_cast<std::uint64_t>(a.alpha_long * 1e9));
  hash = MixHash(hash,
                 static_cast<std::uint64_t>(a.operational_floor * 1e9),
                 static_cast<std::uint64_t>(a.initial_deviation * 1e9));
  if (config.series_capacity > 0) {
    hash = MixHash(
        hash, static_cast<std::uint64_t>(config.series_capacity),
        static_cast<std::uint64_t>(config.analyzer.schedule.round_seconds));
    hash = MixHash(
        hash, static_cast<std::uint64_t>(config.analyzer.schedule.epoch_sec),
        static_cast<std::uint64_t>(config.classify ? 1 : 0));
  }
  return hash;
}

StoreCampaignOutcome RunStoreCampaign(BlockStore& store,
                                      const StoreCampaignConfig& config) {
  StoreCampaignOutcome outcome;
  storage::Env& env =
      config.env != nullptr ? *config.env : storage::RealEnvInstance();
  const std::uint64_t fingerprint = StoreCampaignFingerprint(config);
  const bool checkpointing = !config.checkpoint_path.empty();

  std::int64_t rounds_done = 0;
  std::uint64_t checkpoints_written = 0;

  if (checkpointing && env.Exists(config.checkpoint_path)) {
    // Zero-copy resume: map the snapshot, adopt columns in place. A
    // mismatched fingerprint or corrupt file means a fresh start (the
    // snapshot belongs to some other campaign), never a franken-resume.
    storage::MappedRegion region;
    if (auto error = env.Map(config.checkpoint_path, region); error.ok()) {
      store.Reset(0, config.availability);
      std::uint64_t done = 0;
      std::uint64_t written = 0;
      if (store
              .DecodeSnapshot(region.bytes(), fingerprint, done, written,
                              config.checkpoint_path)
              .ok() &&
          store.size() == config.n_blocks) {
        rounds_done = static_cast<std::int64_t>(done);
        checkpoints_written = written;
        outcome.resumed = true;
      }
    }
  }
  if (!outcome.resumed) SeedStore(store, config);

  const std::int64_t stride = config.checkpoint_every_rounds > 0
                                  ? config.checkpoint_every_rounds
                                  : config.n_rounds;
  while (rounds_done < config.n_rounds) {
    const std::int64_t last =
        std::min(config.n_rounds,
                 stride > 0 ? rounds_done + stride : config.n_rounds);
    RunSegment(store, config, rounds_done, last);
    rounds_done = last;

    // The classify sweep runs when the final round completes, BEFORE
    // the final checkpoint: the snapshot then carries the verdict
    // columns, so a resume of a completed campaign (and the byte-
    // identity proof across kill points) sees classified state.
    if (config.classify && rounds_done >= config.n_rounds) {
      const int workers = std::max(1, config.workers);
      outcome.analyze = AnalyzeStore(store, config.analyzer, workers);
    }

    if (checkpointing) {
      ++checkpoints_written;  // write-ahead self-count, like SLCK v2
      const auto image =
          store.EncodeSnapshot(fingerprint, rounds_done, checkpoints_written);
      if (auto error =
              storage::AtomicWrite(env, config.checkpoint_path, image);
          !error.ok()) {
        --checkpoints_written;
        if (outcome.error.empty()) outcome.error = error.ToString();
      }
    }
    if (config.stop_after_rounds > 0 &&
        rounds_done >= config.stop_after_rounds &&
        rounds_done < config.n_rounds) {
      outcome.stopped_early = true;
      break;
    }
  }

  outcome.rounds_done = rounds_done;
  outcome.checkpoints_written = checkpoints_written;
  outcome.digest = store.Digest();
  return outcome;
}

}  // namespace sleepwalk::core
