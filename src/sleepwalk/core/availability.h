// Block availability estimation (paper §2.1 — the first contribution).
//
// From each probing round's biased sample (p positive of t probes, probing
// stops at the first positive) three EWMA estimates are maintained:
//
//   p-hat_s = alpha_s * p + (1 - alpha_s) * p-hat_s       (gain 0.1)
//   t-hat_s = alpha_s * t + (1 - alpha_s) * t-hat_s
//   A-hat_s = p-hat_s / t-hat_s                            (short-term)
//
//   same with alpha_l = 0.01                               (long-term)
//
//   d-hat_l = alpha_l * |A-hat_l - p/t| + (1 - alpha_l) * d-hat_l
//   A-hat_o = max(A-hat_l - d-hat_l / 2, 0.1)              (operational)
//
// Tracking p and t *separately* is the crux: with stop-on-first-positive
// sampling, E[p/t] > A (each positive arrives with a small t), but
// E[p]/E[t] = A exactly. The paper's earlier EWMA-of-the-ratio variant
// (kept here as RatioEwmaEstimator) "consistently over-estimates A-hat".
// The operational value is deliberately pushed *below* the long-term
// estimate by half the tracked deviation because Trinocular's outage
// inference produces false outages whenever A-hat_o > A (§2.1.1), and is
// floored at 0.1 because tiny values would demand excessive probing.
#ifndef SLEEPWALK_CORE_AVAILABILITY_H_
#define SLEEPWALK_CORE_AVAILABILITY_H_

#include <algorithm>
#include <cmath>

namespace sleepwalk::core {

/// Gains and bounds of the estimator (defaults are the paper's).
struct AvailabilityConfig {
  double alpha_short = 0.1;
  double alpha_long = 0.01;
  double operational_floor = 0.1;
  double deviation_margin = 0.5;  ///< A-hat_o = A-hat_l - margin * d-hat_l
  /// Initial deviation estimate; nonzero keeps early operational values
  /// conservative while history is still thin.
  double initial_deviation = 0.1;
};

/// Snapshot of an estimator's EWMA state, persisted by campaign
/// checkpoints so a resumed run continues the exact same trajectories.
/// Also the unit of the columnar block store (core/block_store.h): the
/// five doubles and the round counter each live in their own column,
/// and the batched update loops below are the only arithmetic either
/// representation runs — scalar and SoA trajectories are bitwise
/// identical by construction.
struct AvailabilityState {
  double p_short = 0.0;
  double t_short = 1.0;
  double p_long = 0.0;
  double t_long = 1.0;
  double deviation = 0.0;
  int rounds = 0;
};

/// A-hat_s for a state snapshot.
inline double AvailabilityShortTerm(const AvailabilityState& state) noexcept {
  return state.t_short > 0.0 ? state.p_short / state.t_short : 0.0;
}

/// A-hat_l for a state snapshot.
inline double AvailabilityLongTerm(const AvailabilityState& state) noexcept {
  return state.t_long > 0.0 ? state.p_long / state.t_long : 0.0;
}

/// A-hat_o for a state snapshot.
inline double AvailabilityOperational(
    const AvailabilityState& state, const AvailabilityConfig& config) noexcept {
  return std::max(
      AvailabilityLongTerm(state) - config.deviation_margin * state.deviation,
      config.operational_floor);
}

/// One round's EWMA update — THE estimator step. AvailabilityEstimator
/// delegates here and core/block_store.h runs this same body in its
/// batched across-blocks loop; keeping a single definition is what makes
/// the two representations produce bit-identical doubles (same
/// expressions, same order, no re-association).
inline void AvailabilityObserve(AvailabilityState& state,
                                const AvailabilityConfig& config,
                                int positives, int total) noexcept {
  if (total <= 0) return;
  const auto p = static_cast<double>(positives);
  const auto t = static_cast<double>(total);

  state.p_short =
      config.alpha_short * p + (1.0 - config.alpha_short) * state.p_short;
  state.t_short =
      config.alpha_short * t + (1.0 - config.alpha_short) * state.t_short;

  state.p_long =
      config.alpha_long * p + (1.0 - config.alpha_long) * state.p_long;
  state.t_long =
      config.alpha_long * t + (1.0 - config.alpha_long) * state.t_long;

  // Deviation of this round's raw ratio from the long-term estimate.
  const double sample_deviation =
      std::fabs(AvailabilityLongTerm(state) - p / t);
  state.deviation = config.alpha_long * sample_deviation +
                    (1.0 - config.alpha_long) * state.deviation;
  ++state.rounds;
}

/// The paper's three-estimate availability tracker for one /24 block.
class AvailabilityEstimator {
 public:
  /// `initial_availability` seeds both EWMAs ("based on historical data
  /// over several years. They may be off significantly").
  explicit AvailabilityEstimator(double initial_availability,
                                 const AvailabilityConfig& config = {});

  /// Feeds one round's observation: `positives` of `total` probes
  /// answered. Rounds with total == 0 are ignored.
  void Observe(int positives, int total) noexcept;

  /// Short-term estimate A-hat_s: noisy, adapts in a few rounds; the
  /// input to diurnal detection.
  double ShortTerm() const noexcept;

  /// Long-term estimate A-hat_l.
  double LongTerm() const noexcept;

  /// Tracked mean absolute deviation d-hat_l.
  double Deviation() const noexcept { return state_.deviation; }

  /// Operational estimate A-hat_o: conservative, designed to (almost)
  /// never exceed the true A; what outage inference consumes.
  double Operational() const noexcept;

  int rounds_observed() const noexcept { return state_.rounds; }

  /// Captures / restores the full EWMA state (checkpoint/resume).
  AvailabilityState ExportState() const noexcept { return state_; }
  void RestoreState(const AvailabilityState& state) noexcept {
    state_ = state;
  }

 private:
  AvailabilityConfig config_;
  AvailabilityState state_;
};

/// The legacy estimator used for dataset A_12w: EWMA applied directly to
/// the per-round ratio p/t. Kept for the ablation bench — it consistently
/// over-estimates under early-stopping sampling (§2.1.2 parenthetical).
class RatioEwmaEstimator {
 public:
  explicit RatioEwmaEstimator(double initial_availability,
                              double alpha = 0.1) noexcept
      : alpha_(alpha), value_(initial_availability) {}

  void Observe(int positives, int total) noexcept {
    if (total <= 0) return;
    const double ratio =
        static_cast<double>(positives) / static_cast<double>(total);
    value_ = alpha_ * ratio + (1.0 - alpha_) * value_;
  }

  double Value() const noexcept { return value_; }

 private:
  double alpha_;
  double value_;
};

}  // namespace sleepwalk::core

#endif  // SLEEPWALK_CORE_AVAILABILITY_H_
