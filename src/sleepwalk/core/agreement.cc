#include "sleepwalk/core/agreement.h"

#include <algorithm>

namespace sleepwalk::core {

AgreementClass AgreementClassOf(const BlockAnalysis& analysis) noexcept {
  if (analysis.diurnal.IsStrict()) return AgreementClass::kStrict;
  if (analysis.diurnal.IsDiurnal()) return AgreementClass::kRelaxed;
  return AgreementClass::kNeither;
}

std::int64_t AgreementMatrix::StrictAtFirst() const noexcept {
  const auto& row = counts[static_cast<std::size_t>(
      AgreementClass::kStrict)];
  return row[0] + row[1] + row[2];
}

double AgreementMatrix::StrictAgain() const noexcept {
  const auto total = StrictAtFirst();
  if (total == 0) return 0.0;
  return static_cast<double>(counts[0][0]) / static_cast<double>(total);
}

double AgreementMatrix::AtLeastRelaxed() const noexcept {
  const auto total = StrictAtFirst();
  if (total == 0) return 0.0;
  return static_cast<double>(counts[0][0] + counts[0][1]) /
         static_cast<double>(total);
}

double AgreementMatrix::StrongDisagreement() const noexcept {
  const auto total = StrictAtFirst();
  if (total == 0) return 0.0;
  return static_cast<double>(counts[0][2]) / static_cast<double>(total);
}

AgreementMatrix CompareRuns(std::span<const BlockAnalysis> first,
                            std::span<const BlockAnalysis> second) {
  AgreementMatrix matrix;
  const std::size_t n = std::min(first.size(), second.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto& a = first[i];
    const auto& b = second[i];
    if (!a.probed || !b.probed || a.observed_days < 2 ||
        b.observed_days < 2 || a.block != b.block) {
      continue;
    }
    ++matrix.compared;
    ++matrix.counts[static_cast<std::size_t>(AgreementClassOf(a))]
                   [static_cast<std::size_t>(AgreementClassOf(b))];
  }
  return matrix;
}

}  // namespace sleepwalk::core
