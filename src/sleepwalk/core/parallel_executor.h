// Work-stealing parallel campaign executor with a deterministic merge.
//
// The block universe is sharded across N worker threads. Each worker
// owns a private transport chain (built by the caller's ShardFactory —
// e.g. SimTransport + FaultyTransport), and each *block* gets private
// keyed RNG streams (util/rng.h StreamSeed), a private buffered
// logger/registry/tracer, and a private resilience-stats delta. Workers
// therefore share no mutable measurement state at all; the only
// cross-thread traffic is finished-block results flowing to the
// coordinator.
//
// Determinism argument (DESIGN.md §9): a block's measurement is a pure
// function of (campaign seed, block index, fault plan) — every random
// draw is keyed, never sequenced, so it cannot observe which worker ran
// it or what ran before it on that worker. The coordinator then commits
// results in strict block-index order: stats deltas fold in one fixed
// order (double sums are order-sensitive), buffered log bytes append in
// block order, spans graft in block order, and checkpoints always cover
// an exact block prefix. An N-worker run therefore produces
// byte-identical datasets, checkpoints, and telemetry to a 1-worker run
// with the same seed; tests/core/parallel_executor_test.cc and the
// bench harness (bench/parallel_scaling.cc) both pin this.
#ifndef SLEEPWALK_CORE_PARALLEL_EXECUTOR_H_
#define SLEEPWALK_CORE_PARALLEL_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sleepwalk/core/pipeline.h"
#include "sleepwalk/core/supervisor.h"
#include "sleepwalk/net/transport.h"
#include "sleepwalk/obs/context.h"
#include "sleepwalk/report/resilience.h"

namespace sleepwalk::core {

/// Number of workers a default-configured executor uses: the hardware
/// concurrency, floored at 1.
int HardwareWorkers() noexcept;

/// One worker's private transport chain. The factory must build chains
/// that are *interchangeable*: identically seeded and identically
/// configured, so a block probes the same whichever worker runs it (the
/// chains exist per worker for thread-safety, not for stream identity).
/// AttachObs is called once per block to point the chain's instruments
/// at that block's buffered telemetry; accounting() is sampled before
/// and after each block to attribute probe counts.
class ShardChain {
 public:
  virtual ~ShardChain() = default;

  /// The transport the block analyzer probes through.
  virtual net::Transport& transport() = 0;

  /// Re-points chain instrumentation at a block-local obs context.
  virtual void AttachObs(const obs::Context& context) {
    static_cast<void>(context);
  }

  /// Cumulative probe accounting for this chain; the executor takes
  /// per-block differences.
  virtual report::ProbeAccounting accounting() const { return {}; }
};

/// Builds worker `worker`'s private chain. Called once per worker, from
/// the coordinator thread, before any block runs.
using ShardFactory =
    std::function<std::unique_ptr<ShardChain>(std::size_t worker)>;

/// Minimal adapter for callers that already hold a thread-safe (or
/// single-worker) transport and want no chain instrumentation.
class PlainShardChain final : public ShardChain {
 public:
  explicit PlainShardChain(net::Transport& transport)
      : transport_(&transport) {}
  net::Transport& transport() override { return *transport_; }

 private:
  net::Transport* transport_;
};

struct ParallelConfig {
  /// Worker threads; <= 0 means HardwareWorkers().
  int workers = 0;
};

/// Runs (or resumes) a hardened campaign over `targets`, sharded across
/// worker threads, with results committed in block order so the outcome
/// is byte-identical for any worker count. Semantics follow
/// RunResilientCampaign with three block-granular differences:
///   * checkpoints are written after every committed block (never
///     mid-block), always with has_inflight=false and an empty
///     transport_state — a checkpoint is an exact block prefix;
///   * resume accepts only such block-boundary checkpoints (a mid-block
///     sequential checkpoint is refused and the campaign starts fresh);
///   * stop_after_rounds takes effect at the first block commit at or
///     past the threshold rather than mid-block.
CampaignOutcome RunParallelCampaign(std::vector<BlockTarget> targets,
                                    const ShardFactory& factory,
                                    std::int64_t n_rounds,
                                    const SupervisorConfig& config = {},
                                    const ParallelConfig& parallel = {});

}  // namespace sleepwalk::core

#endif  // SLEEPWALK_CORE_PARALLEL_EXECUTOR_H_
