// SLPW v3: the columnar dataset format for zero-copy re-analysis.
//
// SLPW v2 (core/dataset.h) frames one record per block; loading a
// million-block dataset through it costs a full decode pass and one
// heap vector per block before the first series is usable. v3 reuses
// the SLCK/SLPW v3 container engine (storage/columnar.h): per-block
// attributes are fixed-width columns, every cleaned A-hat_s series is
// concatenated into ONE f32 values column addressed by per-block
// offset/count columns, and the whole file is CRC'd per column. A
// reader maps the file (storage::Env::Map) and re-analyzes straight
// off the mapping — no per-block vectors are ever materialized.
//
// Layout (SLPW magic, version 3, kind kDatasetColumnarKind):
//   META        u64[4]  round_seconds | epoch_sec | blocks | samples
//   PREFIX      u32[n]  /24 index
//   EVER_ACTIVE i32[n]  |E(b)|
//   PROBED      u8[n]   0 = skipped by the sparse-block policy
//   FIRST_ROUND i64[n]  series start round (midnight-trimmed)
//   COUNT       u32[n]  samples in block i's series
//   OFFSET      u64[n]  start index into VALUES (must be the exact
//                       prefix sum of COUNT — validated, so hostile
//                       overlap/misalignment fails closed)
//   VALUES      f32[samples]  all series, concatenated
//
// Values stay f32 like v2 records, so re-analysis of the same campaign
// through either format is bitwise identical (dataset_columnar_test).
// v2 interop: DecodeDataset/ReadDataset sniff the version and
// materialize a v3 file into the same Dataset struct; the writer emits
// whichever format the caller picks.
#ifndef SLEEPWALK_CORE_DATASET_COLUMNAR_H_
#define SLEEPWALK_CORE_DATASET_COLUMNAR_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sleepwalk/core/dataset.h"
#include "sleepwalk/storage/columnar.h"

namespace sleepwalk::core {

/// SLPW-magic container kind for columnar datasets (the SLCK kinds in
/// block_store.h live under a different magic; the discriminator still
/// keeps any cross-wired file from parsing).
inline constexpr std::uint32_t kDatasetColumnarKind = 1;

/// Zero-copy view over a parsed v3 dataset. Spans point into the
/// caller's buffer or mapping, which must outlive the view.
struct ColumnarDatasetView {
  std::int64_t round_seconds = 660;
  std::int64_t epoch_sec = 0;
  std::span<const std::uint32_t> prefix;
  std::span<const std::int32_t> ever_active;
  std::span<const std::uint8_t> probed;
  std::span<const std::int64_t> first_round;
  std::span<const std::uint32_t> count;
  std::span<const std::uint64_t> offset;
  std::span<const float> values;

  std::size_t size() const noexcept { return prefix.size(); }

  /// Block i's cleaned series, straight out of the file.
  std::span<const float> SeriesOf(std::size_t i) const noexcept {
    return values.subspan(static_cast<std::size_t>(offset[i]), count[i]);
  }
};

/// Serializes analyses as an SLPW v3 image (column payloads borrowed,
/// one f32 conversion pass).
std::vector<std::uint8_t> EncodeDatasetColumnar(
    std::span<const BlockAnalysis> analyses, std::int64_t round_seconds = 660,
    std::int64_t epoch_sec = 0);

/// Full-strictness parse + cross-column validation (offsets must be the
/// exact prefix sum of counts and exhaust VALUES). On failure the view
/// is unusable and the Error names the violated invariant.
storage::Error ParseDatasetColumnar(std::span<const std::uint8_t> file,
                                    ColumnarDatasetView& view,
                                    const std::string& path = "<memory>");

/// Atomically writes the v3 encoding through `env`.
storage::Error WriteDatasetColumnar(storage::Env& env, const std::string& path,
                                    std::span<const BlockAnalysis> analyses,
                                    std::int64_t round_seconds = 660,
                                    std::int64_t epoch_sec = 0);

/// Zero-copy open: maps the file and parses a view over the mapping.
/// `region` owns the bytes and must outlive `view`.
storage::Error MapDatasetColumnar(storage::Env& env, const std::string& path,
                                  storage::MappedRegion& region,
                                  ColumnarDatasetView& view);

/// Re-analyzes block i straight off the view (f32 samples widened into
/// `scratch.samples`, then the exact Reanalyze stage chain). Bitwise
/// identical to Reanalyze() of the same block loaded via SLPW v2.
void ReanalyzeColumnar(const ColumnarDatasetView& view, std::size_t i,
                       const AnalyzerConfig& config, AnalysisScratch& scratch,
                       BlockAnalysis& out);

/// Materializes a v3 view into the v2 Dataset struct (interop for
/// consumers that want per-block vectors; the scale path should sweep
/// the view directly instead).
Dataset MaterializeDataset(const ColumnarDatasetView& view);

}  // namespace sleepwalk::core

#endif  // SLEEPWALK_CORE_DATASET_COLUMNAR_H_
