// Cross-dataset agreement (paper §3.3, Table 2).
//
// The paper compares the same 35 days measured from Los Angeles, Fort
// Collins, and Keio: per-block diurnal classes must agree for the method
// to be location-independent. AgreementMatrix is that comparison as a
// library function over any two runs of the pipeline.
#ifndef SLEEPWALK_CORE_AGREEMENT_H_
#define SLEEPWALK_CORE_AGREEMENT_H_

#include <array>
#include <cstdint>
#include <span>

#include "sleepwalk/core/block_analyzer.h"

namespace sleepwalk::core {

/// The paper's three-way class: d (strict), e (relaxed-only), N.
enum class AgreementClass : std::uint8_t { kStrict = 0, kRelaxed = 1,
                                           kNeither = 2 };

/// Classifies one analysis into the Table 2 categories.
AgreementClass AgreementClassOf(const BlockAnalysis& analysis) noexcept;

/// The 3x3 joint-count matrix between two datasets plus the headline
/// conditional rates.
struct AgreementMatrix {
  /// counts[a][b]: blocks in class `a` at site 1 and `b` at site 2.
  std::array<std::array<std::int64_t, 3>, 3> counts{};
  std::int64_t compared = 0;  ///< blocks probed & analyzable at both

  std::int64_t StrictAtFirst() const noexcept;
  /// Of site-1 strict blocks, the fraction strict at site 2 (paper: 85%).
  double StrictAgain() const noexcept;
  /// Of site-1 strict blocks, the fraction at least relaxed at site 2
  /// (paper: 98.8%).
  double AtLeastRelaxed() const noexcept;
  /// Of site-1 strict blocks, the fraction non-diurnal at site 2
  /// (paper: ~1.2% "strong disagreement").
  double StrongDisagreement() const noexcept;
};

/// Compares two same-length runs (index-aligned: analyses[i] must refer
/// to the same block in both). Blocks unprobed or too short at either
/// site are excluded, as the paper excludes unmeasured blocks.
AgreementMatrix CompareRuns(std::span<const BlockAnalysis> first,
                            std::span<const BlockAnalysis> second);

}  // namespace sleepwalk::core

#endif  // SLEEPWALK_CORE_AGREEMENT_H_
