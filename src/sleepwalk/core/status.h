// Live campaign status: the snapshot-isolated read path behind /statusz.
//
// A running campaign (sequential supervisor or parallel executor)
// attaches a provider to a StatusHub; the admin plane (serve/) calls
// Snapshot() from its own thread and gets a CampaignStatus assembled
// from one locked read of the CampaignLedger plus the executor's live
// runtime counters. This is the same read path ROADMAP item 2's online
// query service will serve from: readers never block the measurement
// loop beyond the ledger's own mutex, and they can never write.
//
// Determinism contract: the `campaign`/`resilience`/`checkpoint`
// sections are pure functions of campaign state and identical across
// worker counts; the `live` section (rates, durability tax, per-shard
// scheduling counters) is wall-derived and schedule-dependent, is
// explicitly excluded from the byte-determinism guarantees, and never
// flows back into any deterministic sink.
#ifndef SLEEPWALK_CORE_STATUS_H_
#define SLEEPWALK_CORE_STATUS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sleepwalk/core/checkpoint.h"
#include "sleepwalk/core/pipeline.h"
#include "sleepwalk/obs/export.h"
#include "sleepwalk/obs/metrics.h"
#include "sleepwalk/report/resilience.h"
#include "sleepwalk/util/sync.h"

namespace sleepwalk::core {

/// One worker's scheduling counters (parallel executor only; a
/// sequential campaign reports a single shard with zero steals).
struct ShardRuntime {
  std::uint64_t worker = 0;
  std::uint64_t blocks_run = 0;   ///< blocks this worker measured
  std::uint64_t steals = 0;       ///< blocks taken from another shard
  std::uint64_t idle_polls = 0;   ///< steal scans that found nothing
};

/// One histogram's /statusz summary: count + estimated quantiles.
struct HistogramStatus {
  std::string name;
  std::uint64_t count = 0;
  obs::QuantileSummary quantiles;
};

/// Point-in-time view of a running (or just-finished) campaign.
struct CampaignStatus {
  // Campaign progress — snapshot-isolated ledger read, deterministic.
  std::size_t blocks_done = 0;
  std::size_t blocks_total = 0;
  std::int64_t rounds_done = 0;
  DiurnalCounts counts;
  report::ResilienceStats stats;
  RecoveryEvents recovery;
  bool resumed = false;
  bool stopped_early = false;

  // Live runtime view — wall-derived and schedule-dependent.
  double rounds_per_sec = 0.0;
  /// Percentage of campaign wall time spent inside checkpoint writes
  /// (the durability tax, live counterpart of bench/checkpoint_io).
  double durability_tax_pct = 0.0;
  std::vector<ShardRuntime> shards;

  // Histogram quantile summaries from the campaign registry.
  std::vector<HistogramStatus> quantiles;
};

/// Quantile summaries for every non-empty histogram in `registry`,
/// name-sorted (one locked snapshot per histogram).
std::vector<HistogramStatus> CollectHistogramStatus(
    const obs::Registry& registry);

/// Renders a CampaignStatus as the /statusz JSON document. Keys are a
/// stable schema (regression-tested across worker counts); non-finite
/// numbers render as null.
std::string RenderStatusJson(const CampaignStatus& status);

/// Rendezvous between at most one running campaign and any number of
/// status readers. The hub outlives campaigns (the CLI owns it for the
/// process lifetime); a campaign's provider registration is scoped by
/// the RAII Registration so a reader can never observe a dangling
/// campaign.
class StatusHub {
 public:
  using Provider = std::function<CampaignStatus()>;

  /// Detaches the provider on destruction. Move-only.
  class Registration {
   public:
    Registration() = default;
    Registration(Registration&& other) noexcept
        : hub_(std::exchange(other.hub_, nullptr)) {}
    Registration& operator=(Registration&& other) noexcept {
      if (this != &other) {
        Reset();
        hub_ = std::exchange(other.hub_, nullptr);
      }
      return *this;
    }
    Registration(const Registration&) = delete;
    Registration& operator=(const Registration&) = delete;
    ~Registration() { Reset(); }

    /// Detaches now; idempotent. After return no Snapshot() call is
    /// running the provider (detach serializes on the hub mutex).
    void Reset() noexcept {
      if (hub_ != nullptr) std::exchange(hub_, nullptr)->Detach();
    }

   private:
    friend class StatusHub;
    explicit Registration(StatusHub* hub) noexcept : hub_(hub) {}
    StatusHub* hub_ = nullptr;
  };

  /// Attaches `provider` as the live campaign (last attach wins). The
  /// provider runs under the hub mutex — it must only take leaf locks
  /// (the ledger's) and return quickly.
  Registration Attach(Provider provider) SLEEPWALK_EXCLUDES(mutex_) {
    util::MutexLock lock{mutex_};
    provider_ = std::move(provider);
    return Registration{this};
  }

  /// Runs the attached provider; false when no campaign is attached.
  bool Snapshot(CampaignStatus& out) const SLEEPWALK_EXCLUDES(mutex_) {
    util::MutexLock lock{mutex_};
    if (!provider_) return false;
    out = provider_();
    return true;
  }

  bool attached() const SLEEPWALK_EXCLUDES(mutex_) {
    util::MutexLock lock{mutex_};
    return static_cast<bool>(provider_);
  }

 private:
  void Detach() SLEEPWALK_EXCLUDES(mutex_) {
    util::MutexLock lock{mutex_};
    provider_ = nullptr;
  }

  mutable util::Mutex mutex_;
  Provider provider_ SLEEPWALK_GUARDED_BY(mutex_);
};

}  // namespace sleepwalk::core

#endif  // SLEEPWALK_CORE_STATUS_H_
