// Dataset persistence.
//
// The paper's datasets (surveys and A_12w-style campaigns) are published
// through USC/LANDER [37]; this module gives the reproduction the same
// property: a measured campaign can be written to a compact binary file
// and re-analyzed later without re-probing.
//
// Format "SLPW" v1 (little-endian):
//   magic "SLPW" | u32 version | i64 round_seconds | i64 epoch_sec
//   | u64 block_count
//   then per block:
//   u32 prefix_index | u16 ever_active | u8 probed | i64 first_round
//   | u32 n_samples | n_samples * f32 (the cleaned A-hat_s series)
#ifndef SLEEPWALK_CORE_DATASET_H_
#define SLEEPWALK_CORE_DATASET_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sleepwalk/core/block_analyzer.h"
#include "sleepwalk/net/ipv4.h"
#include "sleepwalk/ts/series.h"

namespace sleepwalk::core {

/// One block's stored measurement.
struct StoredSeries {
  net::Prefix24 block;
  int ever_active = 0;
  bool probed = false;
  ts::EvenSeries series;  ///< cleaned, midnight-trimmed A-hat_s
};

/// A loaded dataset.
struct Dataset {
  std::int64_t round_seconds = 660;
  std::int64_t epoch_sec = 0;
  std::vector<StoredSeries> blocks;
};

/// Writes a campaign's analyses to `path`. Returns false on I/O error.
bool WriteDataset(const std::string& path,
                  std::span<const BlockAnalysis> analyses,
                  std::int64_t round_seconds = 660,
                  std::int64_t epoch_sec = 0);

/// Reads a dataset; nullopt on I/O error, bad magic, unsupported
/// version, or truncation.
std::optional<Dataset> ReadDataset(const std::string& path);

/// Re-analyzes a stored series: stationarity + diurnal classification,
/// as Finish() would have produced (probing statistics are not stored).
BlockAnalysis Reanalyze(const StoredSeries& stored,
                        const AnalyzerConfig& config = {});

/// Hot-loop variant for bulk reanalysis: all intermediates live in
/// `scratch` and the result is written into `out` (capacity reused), so
/// warm calls perform zero heap allocations. Output is identical to the
/// allocating Reanalyze().
void Reanalyze(const StoredSeries& stored, const AnalyzerConfig& config,
               AnalysisScratch& scratch, BlockAnalysis& out);

}  // namespace sleepwalk::core

#endif  // SLEEPWALK_CORE_DATASET_H_
