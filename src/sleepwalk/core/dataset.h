// Dataset persistence.
//
// The paper's datasets (surveys and A_12w-style campaigns) are published
// through USC/LANDER [37]; this module gives the reproduction the same
// property: a measured campaign can be written to a compact binary file
// and re-analyzed later without re-probing.
//
// Format "SLPW" v2 (little-endian; encoded in memory via
// storage/bytes.h, moved atomically by storage/file.h):
//   magic "SLPW"
//   | u32 version | i64 round_seconds | i64 epoch_sec | u64 block_count
//   | u32 header_crc32c                  (over the 28 bytes after magic)
//   then per block one framed record:
//   u32 payload_len | u32 payload_crc32c | payload
//   where payload is the v1 record:
//   u32 prefix_index | u16 ever_active | u8 probed | i64 first_round
//   | u32 n_samples | n_samples * f32 (the cleaned A-hat_s series)
//
// The per-record CRC32C turns silent bit rot into a detected, *localized*
// failure: the strict loader refuses the file, the tolerant loader skips
// the damaged record(s) and reports how many were lost. v1 files (no
// framing, no checksums) are still readable; the writer emits v2 only.
#ifndef SLEEPWALK_CORE_DATASET_H_
#define SLEEPWALK_CORE_DATASET_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sleepwalk/core/block_analyzer.h"
#include "sleepwalk/net/ipv4.h"
#include "sleepwalk/storage/file.h"
#include "sleepwalk/ts/series.h"

namespace sleepwalk::core {

/// Dataset format version; bump on any layout change.
inline constexpr std::uint32_t kDatasetVersion = 2;

/// One block's stored measurement.
struct StoredSeries {
  net::Prefix24 block;
  int ever_active = 0;
  bool probed = false;
  ts::EvenSeries series;  ///< cleaned, midnight-trimmed A-hat_s
};

/// A loaded dataset.
struct Dataset {
  std::int64_t round_seconds = 660;
  std::int64_t epoch_sec = 0;
  std::vector<StoredSeries> blocks;
};

/// What a dataset decode saw (mirrors CheckpointLoadReport; printed by
/// slck_fsck and asserted by the robustness tests).
struct DatasetLoadReport {
  bool found = false;          ///< file existed and was readable
  bool bad_magic = false;
  std::uint32_t version = 0;   ///< header version, when readable
  bool version_refused = false;
  int corrupt_records = 0;     ///< CRC failures / truncations seen
  std::uint64_t records_expected = 0;  ///< header block_count
  std::string detail;          ///< first failure, human-readable
};

/// Serializes analyses as SLPW v2.
std::vector<std::uint8_t> EncodeDataset(std::span<const BlockAnalysis> analyses,
                                        std::int64_t round_seconds = 660,
                                        std::int64_t epoch_sec = 0);

/// Decodes SLPW v1 or v2 bytes. Strict: any corrupt or truncated record
/// fails the whole load (details in `report`).
std::optional<Dataset> DecodeDataset(std::span<const std::uint8_t> bytes,
                                     DatasetLoadReport* report = nullptr);

/// Salvaging decode (v2 only benefits; v1 has no record framing): CRC-
/// damaged records are skipped and counted, intact ones are returned.
/// nullopt only when the header itself is unusable.
std::optional<Dataset> DecodeDatasetTolerant(
    std::span<const std::uint8_t> bytes, DatasetLoadReport* report = nullptr);

/// Atomically and durably writes the dataset through `env`.
storage::Error WriteDataset(storage::Env& env, const std::string& path,
                            std::span<const BlockAnalysis> analyses,
                            std::int64_t round_seconds = 660,
                            std::int64_t epoch_sec = 0);

/// Strict read through `env`; nullopt on any I/O or decode failure.
std::optional<Dataset> ReadDataset(storage::Env& env, const std::string& path,
                                   DatasetLoadReport* report = nullptr);

/// Convenience wrappers over the process-wide real filesystem.
bool WriteDataset(const std::string& path,
                  std::span<const BlockAnalysis> analyses,
                  std::int64_t round_seconds = 660,
                  std::int64_t epoch_sec = 0);
std::optional<Dataset> ReadDataset(const std::string& path);

/// Re-analyzes a stored series: stationarity + diurnal classification,
/// as Finish() would have produced (probing statistics are not stored).
BlockAnalysis Reanalyze(const StoredSeries& stored,
                        const AnalyzerConfig& config = {});

/// Hot-loop variant for bulk reanalysis: all intermediates live in
/// `scratch` and the result is written into `out` (capacity reused), so
/// warm calls perform zero heap allocations. Output is identical to the
/// allocating Reanalyze().
void Reanalyze(const StoredSeries& stored, const AnalyzerConfig& config,
               AnalysisScratch& scratch, BlockAnalysis& out);

/// THE stored-series analysis chain (WholeDays -> mean -> stationarity
/// -> classify) over caller-owned samples. Both dataset formats
/// delegate here — SLPW v2 from its decoded vectors, SLPW v3 straight
/// off the mapped f32 column — which is what makes their re-analyses
/// bitwise identical.
void ReanalyzeSeries(net::Prefix24 block, int ever_active, bool probed,
                     std::int64_t first_round, std::span<const double> values,
                     const AnalyzerConfig& config, AnalysisScratch& scratch,
                     BlockAnalysis& out);

}  // namespace sleepwalk::core

#endif  // SLEEPWALK_CORE_DATASET_H_
