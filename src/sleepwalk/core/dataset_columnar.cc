#include "sleepwalk/core/dataset_columnar.h"

#include <cstddef>
#include <utility>

#include "sleepwalk/util/narrow.h"

namespace sleepwalk::core {

namespace {

// Column ids inside the SLPW v3 container (file-format constants: never
// renumber, only append).
constexpr std::uint32_t kColMeta = 1;         // u64[4]
constexpr std::uint32_t kColPrefix = 2;       // u32[n]
constexpr std::uint32_t kColEverActive = 3;   // i32[n]
constexpr std::uint32_t kColProbed = 4;       // u8[n]
constexpr std::uint32_t kColFirstRound = 5;   // i64[n]
constexpr std::uint32_t kColCount = 6;        // u32[n]
constexpr std::uint32_t kColOffset = 7;       // u64[n]
constexpr std::uint32_t kColValues = 8;       // f32[samples]

// Same implausibility ceiling the SLPW v2 decoder applies to its header
// block count: reject before reserving.
constexpr std::uint64_t kMaxCount = 1ull << 32;

storage::Error DatasetError(const std::string& path, std::string detail) {
  storage::Error error;
  error.op = "parse-dataset";
  error.path = path;
  error.detail = std::move(detail);
  return error;
}

}  // namespace

std::vector<std::uint8_t> EncodeDatasetColumnar(
    std::span<const BlockAnalysis> analyses, std::int64_t round_seconds,
    std::int64_t epoch_sec) {
  const std::size_t n = analyses.size();
  std::vector<std::uint32_t> prefix(n);
  std::vector<std::int32_t> ever_active(n);
  std::vector<std::uint8_t> probed(n);
  std::vector<std::int64_t> first_round(n);
  std::vector<std::uint32_t> count(n);
  std::vector<std::uint64_t> offset(n);
  std::uint64_t samples = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& a = analyses[i];
    prefix[i] = a.block.Index();
    ever_active[i] = util::CheckedNarrow<std::int32_t>(a.ever_active);
    probed[i] = util::BoolByte(a.probed);
    first_round[i] = a.short_series.first_round;
    count[i] = util::CheckedNarrow<std::uint32_t>(a.short_series.size());
    offset[i] = samples;
    samples += count[i];
  }
  // One f32 conversion pass; v2 records narrow samples the same way, so
  // re-analysis through either format sees identical bits.
  std::vector<float> values;
  values.reserve(samples);
  for (const auto& a : analyses) {
    for (const double v : a.short_series.values) {
      values.push_back(static_cast<float>(v));
    }
  }
  const std::uint64_t meta[4] = {static_cast<std::uint64_t>(round_seconds),
                                 static_cast<std::uint64_t>(epoch_sec),
                                 static_cast<std::uint64_t>(n), samples};

  storage::ColumnarWriter writer("SLPW", kDatasetColumnarKind,
                                 /*fingerprint=*/0, /*generation=*/0);
  writer.AddTypedBorrowed<std::uint64_t>(kColMeta, meta);
  writer.AddTypedBorrowed<std::uint32_t>(kColPrefix, prefix);
  writer.AddTypedBorrowed<std::int32_t>(kColEverActive, ever_active);
  writer.AddTypedBorrowed<std::uint8_t>(kColProbed, probed);
  writer.AddTypedBorrowed<std::int64_t>(kColFirstRound, first_round);
  writer.AddTypedBorrowed<std::uint32_t>(kColCount, count);
  writer.AddTypedBorrowed<std::uint64_t>(kColOffset, offset);
  writer.AddTypedBorrowed<float>(kColValues, values);
  return writer.Finish();
}

storage::Error ParseDatasetColumnar(std::span<const std::uint8_t> file,
                                    ColumnarDatasetView& view,
                                    const std::string& path) {
  view = ColumnarDatasetView{};
  storage::ColumnarReader reader;
  if (auto error = reader.Parse(file, "SLPW", path); !error.ok()) {
    return error;
  }
  if (reader.kind() != kDatasetColumnarKind) {
    return DatasetError(path, "not a columnar dataset (kind " +
                                  std::to_string(reader.kind()) + ")");
  }
  std::span<const std::uint64_t> meta;
  if (!reader.FetchTyped(kColMeta, 4, meta)) {
    return DatasetError(path, "META column missing or malformed");
  }
  const std::uint64_t blocks = meta[2];
  const std::uint64_t samples = meta[3];
  if (blocks > kMaxCount || samples > kMaxCount) {
    return DatasetError(path, "implausible block or sample count");
  }
  if (!reader.FetchTyped(kColPrefix, blocks, view.prefix) ||
      !reader.FetchTyped(kColEverActive, blocks, view.ever_active) ||
      !reader.FetchTyped(kColProbed, blocks, view.probed) ||
      !reader.FetchTyped(kColFirstRound, blocks, view.first_round) ||
      !reader.FetchTyped(kColCount, blocks, view.count) ||
      !reader.FetchTyped(kColOffset, blocks, view.offset) ||
      !reader.FetchTyped(kColValues, samples, view.values)) {
    view = ColumnarDatasetView{};
    return DatasetError(path, "column set incomplete or row counts differ");
  }
  // OFFSET must be the exact prefix sum of COUNT and exhaust VALUES.
  // Anything else — overlapping series, gaps, an offset past the end —
  // is a forged or damaged directory; fail closed before SeriesOf() can
  // hand out a span crossing block boundaries.
  std::uint64_t running = 0;
  for (std::uint64_t i = 0; i < blocks; ++i) {
    if (view.offset[i] != running) {
      view = ColumnarDatasetView{};
      return DatasetError(path, "offset column is not the prefix sum of "
                                "counts (block " +
                                    std::to_string(i) + ")");
    }
    running += view.count[i];
  }
  if (running != samples) {
    view = ColumnarDatasetView{};
    return DatasetError(path, "counts do not exhaust the values column");
  }
  view.round_seconds = static_cast<std::int64_t>(meta[0]);
  view.epoch_sec = static_cast<std::int64_t>(meta[1]);
  return {};
}

storage::Error WriteDatasetColumnar(storage::Env& env, const std::string& path,
                                    std::span<const BlockAnalysis> analyses,
                                    std::int64_t round_seconds,
                                    std::int64_t epoch_sec) {
  return storage::AtomicWrite(
      env, path, EncodeDatasetColumnar(analyses, round_seconds, epoch_sec));
}

storage::Error MapDatasetColumnar(storage::Env& env, const std::string& path,
                                  storage::MappedRegion& region,
                                  ColumnarDatasetView& view) {
  if (auto error = env.Map(path, region); !error.ok()) return error;
  return ParseDatasetColumnar(region.bytes(), view, path);
}

void ReanalyzeColumnar(const ColumnarDatasetView& view, std::size_t i,
                       const AnalyzerConfig& config, AnalysisScratch& scratch,
                       BlockAnalysis& out) {
  const auto series = view.SeriesOf(i);
  scratch.samples.resize(series.size());
  for (std::size_t k = 0; k < series.size(); ++k) {
    scratch.samples[k] = static_cast<double>(series[k]);
  }
  ReanalyzeSeries(net::Prefix24::FromIndex(view.prefix[i]),
                  view.ever_active[i], view.probed[i] != 0,
                  view.first_round[i], scratch.samples, config, scratch, out);
}

Dataset MaterializeDataset(const ColumnarDatasetView& view) {
  Dataset dataset;
  dataset.round_seconds = view.round_seconds;
  dataset.epoch_sec = view.epoch_sec;
  dataset.blocks.resize(view.size());
  for (std::size_t i = 0; i < view.size(); ++i) {
    auto& stored = dataset.blocks[i];
    stored.block = net::Prefix24::FromIndex(view.prefix[i]);
    stored.ever_active = view.ever_active[i];
    stored.probed = view.probed[i] != 0;
    stored.series.first_round = view.first_round[i];
    const auto series = view.SeriesOf(i);
    stored.series.values.resize(series.size());
    for (std::size_t k = 0; k < series.size(); ++k) {
      stored.series.values[k] = static_cast<double>(series[k]);
    }
  }
  return dataset;
}

}  // namespace sleepwalk::core
