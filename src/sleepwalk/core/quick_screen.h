// Cheap diurnal pre-screening via Goertzel (DESIGN.md §5 ablation).
//
// The full classifier needs the complete spectrum (the strict test
// compares the daily bin against *every* competitor). But a streaming
// deployment triaging millions of blocks can afford a two-stage design:
// an O(n) Goertzel screen that evaluates only the daily bin, its
// neighbour and first harmonic against the series' total AC power, and
// the full FFT only for blocks that pass. micro_perf quantifies the
// ~100x per-block saving; quick_screen_test bounds the screening loss.
#ifndef SLEEPWALK_CORE_QUICK_SCREEN_H_
#define SLEEPWALK_CORE_QUICK_SCREEN_H_

#include <span>
#include <vector>

namespace sleepwalk::core {

/// Result of the Goertzel screen.
struct QuickScreenResult {
  double daily_amplitude = 0.0;     ///< max over bins N_d, N_d+1
  double harmonic_amplitude = 0.0;  ///< first harmonic (2*N_d)
  double rms_amplitude = 0.0;       ///< sqrt(mean bin power), AC only
  /// Ratio of daily amplitude to the RMS bin amplitude; diurnal blocks
  /// concentrate power in the daily bin, so this is large for them.
  double score = 0.0;
  bool pass = false;
};

/// Screening knobs.
struct QuickScreenConfig {
  /// Blocks whose daily (or first-harmonic) score is below this are
  /// declared non-diurnal without a full FFT. 3.0 keeps essentially all
  /// true diurnal blocks (see quick_screen_test sweeps).
  double min_score = 3.0;
};

/// Runs the screen on a cleaned, midnight-aligned series of `n_days`
/// days. Never passes series shorter than 2 days.
QuickScreenResult QuickDiurnalScreen(std::span<const double> series,
                                     int n_days,
                                     const QuickScreenConfig& config = {});

/// Hot-loop variant: `centered_scratch` holds the mean-removed copy of
/// the series (capacity reused across calls) and all requested bins are
/// evaluated in a single pass over it via GoertzelMany. Results are
/// bitwise identical to the allocating overload.
QuickScreenResult QuickDiurnalScreen(std::span<const double> series,
                                     int n_days,
                                     const QuickScreenConfig& config,
                                     std::vector<double>& centered_scratch);

}  // namespace sleepwalk::core

#endif  // SLEEPWALK_CORE_QUICK_SCREEN_H_
