// End-of-campaign analysis as a batch sweep over BlockStore columns.
//
// The scalar path (BlockAnalyzer::Finish) finalizes one block at a
// time from per-block heap state. At paper scale the analyzer input
// lives in the store's series ring columns instead, and this sweep
// runs the identical stage chain — copy the ring in round order,
// ts::Regularize, ts::TrimToMidnightUtc, mean, ts::TestStationarity,
// ClassifyDiurnal through the plan cache — over contiguous block
// ranges, reusing ONE AnalysisScratch (and thus one FftScratch) per
// worker. Results land in the store's existing verdict columns.
//
// Equivalence contract: for the same recorded samples the verdict
// columns are bitwise identical to projecting the scalar
// BlockAnalyzer::Finish output through VerdictOf (campaign_ledger.cc)
// — same ts::/core:: calls, same doubles, same order; proven by
// tests/core/store_analyzer_test.cc and re-checked at scale by
// bench/parallel_scaling.
//
// The optional Goertzel screen (core/quick_screen.h) is a triage mode
// for streaming deployments: blocks failing the O(n) screen skip the
// FFT and are declared non-diurnal. It trades a bounded screening loss
// for ~100x less spectral work, so it is OFF by default — the
// equivalence contract above holds only with the screen disabled.
#ifndef SLEEPWALK_CORE_STORE_ANALYZER_H_
#define SLEEPWALK_CORE_STORE_ANALYZER_H_

#include <cstdint>

#include "sleepwalk/core/analysis_scratch.h"
#include "sleepwalk/core/block_store.h"
#include "sleepwalk/core/diurnal.h"
#include "sleepwalk/core/quick_screen.h"
#include "sleepwalk/probing/scheduler.h"

namespace sleepwalk::core {

/// Sweep knobs: the analysis-stage subset of AnalyzerConfig plus the
/// screen toggle.
struct StoreAnalyzerConfig {
  probing::ScheduleConfig schedule;  ///< round_seconds + epoch_sec
  DiurnalConfig diurnal;
  /// Stationarity threshold: address changes per day (§2.2).
  double max_trend_addresses_per_day = 1.0;
  /// Two-stage triage: Goertzel-screen each series and FFT-classify
  /// only the blocks that pass. Breaks bitwise equivalence with the
  /// always-FFT scalar path (bounded loss, see quick_screen_test), so
  /// default off.
  bool goertzel_screen = false;
  QuickScreenConfig screen;
};

/// What a sweep saw (summed across workers; deterministic).
struct StoreAnalyzeStats {
  std::uint64_t analyzed = 0;      ///< blocks with any recorded rounds
  std::uint64_t classified = 0;    ///< reached the classify stage
  std::uint64_t diurnal = 0;       ///< classified != non-diurnal
  std::uint64_t screened_out = 0;  ///< skipped the FFT via the screen
};

/// Analyzes blocks [begin, end) in place, one block at a time through
/// `scratch`. Single-threaded; the unit of work AnalyzeStore shards.
StoreAnalyzeStats AnalyzeStoreRange(BlockStore& store, std::size_t begin,
                                    std::size_t end,
                                    const StoreAnalyzerConfig& config,
                                    AnalysisScratch& scratch);

/// Full-store sweep with `workers` threads owning contiguous ranges
/// (serial when <= 1). Block verdicts are index-local, so any worker
/// count produces byte-identical columns.
StoreAnalyzeStats AnalyzeStore(BlockStore& store,
                               const StoreAnalyzerConfig& config,
                               int workers = 1);

}  // namespace sleepwalk::core

#endif  // SLEEPWALK_CORE_STORE_ANALYZER_H_
