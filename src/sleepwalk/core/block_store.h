// Columnar (SoA) per-block campaign state with arena allocation.
//
// A campaign's mutable per-block state — the three-EWMA availability
// estimator (§2.1), probe accounting, and classification verdicts —
// used to live scattered across AvailabilityEstimator objects,
// BlockAnalyzer members, and the ledger's vector<BlockAnalysis>. At
// paper scale (the A_12w dataset covers 3.7M /24s) that layout touches
// one cache line per block per field and serializes a checkpoint one
// field at a time. The BlockStore flips the layout: one arena, one
// fixed-width column per field, blocks contiguous within each column,
// so the estimator update batches across blocks in a tight loop
// (ObserveRound) and a checkpoint is one memcpy per column into the
// mmap-able SLCK v3 container (storage/columnar.h).
//
// The store also carries the analyzer's input: fixed-capacity ring
// buffers of per-round A-hat_s samples + round stamps, laid out as two
// more columns (block i's ring at [i*capacity, (i+1)*capacity)) with
// per-block length/head columns. RecordSeriesRound appends a whole
// round across a block range in one pass; core/store_analyzer.h sweeps
// the rings through regularize/trim/stationarity/classify at the end
// of a campaign, writing the verdict columns in place.
//
// Equivalence contract: the batched kernel calls the exact
// AvailabilityObserve step AvailabilityEstimator delegates to
// (core/availability.h) — scalar-object and columnar trajectories are
// bitwise identical, which the block_store tests prove sample-for-
// sample against AvailabilityEstimator.
//
// The store is the substrate for two consumers:
//   * the campaign ledger records every committed block's verdict and
//     final estimator state here (columnar mirror of the outcome);
//   * the scale runner (core/store_campaign.h) drives 100k-1M block
//     campaigns directly on the columns, checkpointing through the v3
//     zero-copy snapshot below.
#ifndef SLEEPWALK_CORE_BLOCK_STORE_H_
#define SLEEPWALK_CORE_BLOCK_STORE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sleepwalk/core/availability.h"
#include "sleepwalk/storage/file.h"
#include "sleepwalk/ts/series.h"

namespace sleepwalk::core {

/// One round's biased sample for one block: `positives` of `total`
/// probes answered (stop-on-first-positive semantics upstream).
struct RoundSample {
  std::int32_t positives = 0;
  std::int32_t total = 0;
};

/// A finished block's classification verdict, flattened from
/// BlockAnalysis (the mapping lives in campaign_ledger.cc so this
/// header stays below block_analyzer in the include DAG).
struct BlockVerdict {
  std::uint32_t prefix_index = 0;
  bool probed = false;
  bool quarantined = false;
  bool stationary = false;
  std::uint8_t classification = 0;  ///< Diurnality enum value
  std::int32_t ever_active = 0;
  std::int32_t observed_days = 0;
  std::int32_t down_rounds = 0;
  double mean_short = 0.0;
  double final_operational = 0.0;
  double mean_probes_per_round = 0.0;
};

/// BlockVerdict flag bits (the `flags` column).
inline constexpr std::uint8_t kBlockFlagProbed = 1u << 0;
inline constexpr std::uint8_t kBlockFlagQuarantined = 1u << 1;
inline constexpr std::uint8_t kBlockFlagStationary = 1u << 2;

/// The SoA store. Movable; not copyable (the arena is owned).
class BlockStore {
 public:
  BlockStore() = default;
  BlockStore(BlockStore&&) = default;
  BlockStore& operator=(BlockStore&&) = default;
  BlockStore(const BlockStore&) = delete;
  BlockStore& operator=(const BlockStore&) = delete;

  /// Sizes the arena for `n_blocks` and zero-initializes every column
  /// (estimator columns get the AvailabilityState defaults: t = 1.0,
  /// deviation = config.initial_deviation). `series_capacity` samples of
  /// per-block A-hat_s ring-buffer series are carved per block (0 keeps
  /// the store estimator-only, PR 9 behaviour).
  void Reset(std::size_t n_blocks, const AvailabilityConfig& config = {},
             std::int32_t series_capacity = 0);

  std::size_t size() const noexcept { return n_; }
  const AvailabilityConfig& config() const noexcept { return config_; }
  std::int32_t series_capacity() const noexcept { return series_capacity_; }

  /// Seeds block `i`'s estimator exactly like the
  /// AvailabilityEstimator constructor ("based on historical data").
  void SeedBlock(std::size_t i, std::uint32_t prefix_index,
                 double initial_availability) noexcept;

  /// Scalar estimator step for one block (the shared
  /// AvailabilityObserve arithmetic) plus probe accounting.
  void Observe(std::size_t i, std::int32_t positives,
               std::int32_t total) noexcept;

  /// The batched kernel: one round's samples for the contiguous block
  /// range [begin, end), samples[i - begin] belonging to block i. Tight
  /// loop over the columns; trajectories are bitwise identical to
  /// per-block Observe() calls.
  void ObserveRound(std::size_t begin, std::size_t end,
                    std::span<const RoundSample> samples) noexcept;

  /// Appends one A-hat_s sample (round stamp + value) to block i's ring.
  /// When the ring is full the oldest sample is overwritten; the ring
  /// always holds the most recent `series_capacity` samples in round
  /// order. No-op when the store was Reset without series columns.
  void AppendSeriesSample(std::size_t i, std::int64_t round,
                          double value) noexcept;

  /// The batched series kernel: records round `round`'s A-hat_s (derived
  /// from the estimator columns, same arithmetic as ShortTerm) for every
  /// block in [begin, end). Runs right after ObserveRound in the scale
  /// campaign's inner loop; per-block trajectories are bitwise identical
  /// to AppendSeriesSample(i, round, ShortTerm(i)) calls.
  void RecordSeriesRound(std::size_t begin, std::size_t end,
                         std::int64_t round) noexcept;

  /// Number of valid samples in block i's ring (<= series_capacity).
  std::int32_t SeriesLength(std::size_t i) const noexcept;

  /// Copies block i's ring oldest-to-newest into `out` (capacity
  /// reused). The analysis sweep's bridge to ts::Regularize.
  void CopySeriesOrdered(std::size_t i,
                         std::vector<ts::Observation>& out) const;

  /// Sets the block's ever-active address count (the stationarity
  /// test's scale factor), recorded at seed time — before any verdict
  /// exists — by the scale campaign.
  void SetEverActive(std::size_t i, std::int32_t count) noexcept;

  /// Estimator state round-trip (checkpoint/resume and the ledger's
  /// commit path).
  AvailabilityState ExportEstimator(std::size_t i) const noexcept;
  void RestoreEstimator(std::size_t i,
                        const AvailabilityState& state) noexcept;

  /// Derived estimates for block `i` (same arithmetic as
  /// AvailabilityEstimator's accessors).
  double ShortTerm(std::size_t i) const noexcept;
  double Operational(std::size_t i) const noexcept;

  /// Records a finished block's verdict and final estimator state.
  void RecordVerdict(std::size_t i, const BlockVerdict& verdict,
                     const AvailabilityState& estimator) noexcept;

  // Column views (tests, reports, and the snapshot encoder). Spans are
  // invalidated by Reset().
  std::span<const std::uint32_t> prefix_index() const noexcept;
  std::span<const double> p_short() const noexcept;
  std::span<const double> t_short() const noexcept;
  std::span<const double> p_long() const noexcept;
  std::span<const double> t_long() const noexcept;
  std::span<const double> deviation() const noexcept;
  std::span<const std::int32_t> rounds() const noexcept;
  std::span<const std::uint64_t> probes() const noexcept;
  std::span<const std::uint64_t> positives() const noexcept;
  std::span<const std::int32_t> down_rounds() const noexcept;
  std::span<const std::uint8_t> flags() const noexcept;
  std::span<const std::uint8_t> classification() const noexcept;
  std::span<const std::int32_t> ever_active() const noexcept;
  std::span<const std::int32_t> observed_days() const noexcept;
  std::span<const double> mean_short() const noexcept;
  std::span<const double> final_operational() const noexcept;
  std::span<const double> mean_probes_per_round() const noexcept;
  // Series ring columns: values/rounds are n * series_capacity (block
  // i's ring occupies [i * capacity, (i+1) * capacity)); len/head are
  // per-block. Empty spans when the store has no series columns.
  std::span<const double> series_values() const noexcept;
  std::span<const std::int32_t> series_rounds() const noexcept;
  std::span<const std::int32_t> series_len() const noexcept;
  std::span<const std::int32_t> series_head() const noexcept;

  /// Order-sensitive digest over every column — the cheap byte-identity
  /// probe the scale bench compares across worker counts and resumes.
  std::uint64_t Digest() const noexcept;

  /// Serializes the store as an SLCK v3 container (kind =
  /// kStoreSnapshotKind). `rounds_done` and `checkpoints_written` ride
  /// in the META column so a resumed campaign continues both counters
  /// exactly (generation = checkpoints_written, mirroring v2).
  std::vector<std::uint8_t> EncodeSnapshot(
      std::uint64_t fingerprint, std::uint64_t rounds_done,
      std::uint64_t checkpoints_written) const;

  /// Parses + validates a v3 snapshot (typically over a
  /// storage::MappedRegion) and adopts its columns — one memcpy per
  /// column, no per-field decode. On failure the store is left Reset to
  /// the file's row count or untouched on header-level refusal; the
  /// Error names the violated invariant.
  storage::Error DecodeSnapshot(std::span<const std::uint8_t> file,
                                std::uint64_t expect_fingerprint,
                                std::uint64_t& rounds_done,
                                std::uint64_t& checkpoints_written,
                                const std::string& path = "<memory>");

 private:
  template <typename T>
  T* Column(std::size_t offset) noexcept {
    return reinterpret_cast<T*>(arena_.get() + offset);
  }
  template <typename T>
  const T* Column(std::size_t offset) const noexcept {
    return reinterpret_cast<const T*>(arena_.get() + offset);
  }

  struct ArenaDelete {
    void operator()(std::uint8_t* p) const noexcept {
      ::operator delete(p, std::align_val_t{64});
    }
  };

  std::size_t n_ = 0;
  std::int32_t series_capacity_ = 0;
  AvailabilityConfig config_;
  std::unique_ptr<std::uint8_t[], ArenaDelete> arena_;

  // Column byte offsets into the arena (64-byte aligned each).
  std::size_t prefix_off_ = 0;
  std::size_t p_short_off_ = 0;
  std::size_t t_short_off_ = 0;
  std::size_t p_long_off_ = 0;
  std::size_t t_long_off_ = 0;
  std::size_t deviation_off_ = 0;
  std::size_t rounds_off_ = 0;
  std::size_t probes_off_ = 0;
  std::size_t positives_off_ = 0;
  std::size_t down_rounds_off_ = 0;
  std::size_t flags_off_ = 0;
  std::size_t classification_off_ = 0;
  std::size_t ever_active_off_ = 0;
  std::size_t observed_days_off_ = 0;
  std::size_t mean_short_off_ = 0;
  std::size_t final_operational_off_ = 0;
  std::size_t mean_probes_off_ = 0;
  std::size_t series_value_off_ = 0;
  std::size_t series_round_off_ = 0;
  std::size_t series_len_off_ = 0;
  std::size_t series_head_off_ = 0;
};

/// Container `kind` discriminators for files carrying the SLCK magic:
/// a v3 campaign checkpoint (core/checkpoint.h) vs a raw store
/// snapshot (this header). Readers refuse the wrong kind.
inline constexpr std::uint32_t kCheckpointKind = 1;
inline constexpr std::uint32_t kStoreSnapshotKind = 2;

}  // namespace sleepwalk::core

#endif  // SLEEPWALK_CORE_BLOCK_STORE_H_
