#include "sleepwalk/core/store_analyzer.h"

#include <algorithm>
#include <numeric>
#include <thread>
#include <vector>

#include "sleepwalk/ts/clean.h"
#include "sleepwalk/ts/stationarity.h"

namespace sleepwalk::core {

StoreAnalyzeStats AnalyzeStoreRange(BlockStore& store, std::size_t begin,
                                    std::size_t end,
                                    const StoreAnalyzerConfig& config,
                                    AnalysisScratch& scratch) {
  StoreAnalyzeStats stats;
  end = std::min(end, store.size());
  const auto prefixes = store.prefix_index();
  const auto rounds = store.rounds();
  const auto probes = store.probes();
  const auto down_rounds = store.down_rounds();
  const auto flags = store.flags();
  const auto ever_active = store.ever_active();

  for (std::size_t i = begin; i < end; ++i) {
    // Mirror of BlockAnalyzer::Finish + VerdictOf, field for field. The
    // verdict starts from the Finish() reset state (all zero) with the
    // identity/bookkeeping fields the sweep does not compute preserved.
    BlockVerdict verdict;
    verdict.prefix_index = prefixes[i];
    verdict.quarantined = (flags[i] & kBlockFlagQuarantined) != 0;
    verdict.ever_active = ever_active[i];
    verdict.probed = rounds[i] > 0;
    const AvailabilityState estimator = store.ExportEstimator(i);
    if (!verdict.probed) {
      store.RecordVerdict(i, verdict, estimator);
      continue;
    }
    ++stats.analyzed;

    // Accounting stage (set even when the series is too short to
    // classify, exactly like the scalar path).
    verdict.final_operational =
        AvailabilityOperational(estimator, store.config());
    verdict.mean_probes_per_round = static_cast<double>(probes[i]) /
                                    static_cast<double>(rounds[i]);
    verdict.down_rounds = down_rounds[i];

    store.CopySeriesOrdered(i, scratch.observations);
    bool ok = ts::Regularize(
        std::span<const ts::Observation>(scratch.observations),
        scratch.regularize, scratch.even);
    if (ok) {
      ok = ts::TrimToMidnightUtc(scratch.even, config.schedule.epoch_sec,
                                 config.schedule.round_seconds,
                                 scratch.trimmed);
    }
    if (!ok) {
      store.RecordVerdict(i, verdict, estimator);
      continue;
    }

    verdict.observed_days = ts::WholeDays(scratch.trimmed.size(),
                                          config.schedule.round_seconds);
    verdict.mean_short =
        std::accumulate(scratch.trimmed.values.begin(),
                        scratch.trimmed.values.end(), 0.0) /
        static_cast<double>(scratch.trimmed.values.size());
    verdict.stationary =
        ts::TestStationarity(scratch.trimmed.values, ever_active[i],
                             config.max_trend_addresses_per_day,
                             config.schedule.round_seconds, scratch.index)
            .stationary;

    ++stats.classified;
    DiurnalResult diurnal;
    bool run_fft = true;
    if (config.goertzel_screen) {
      const auto screen =
          QuickDiurnalScreen(scratch.trimmed.values, verdict.observed_days,
                             config.screen, scratch.centered);
      if (!screen.pass) {
        run_fft = false;  // triaged non-diurnal, skip the transform
        ++stats.screened_out;
      }
    }
    if (run_fft) {
      diurnal = ClassifyDiurnal(scratch.trimmed.values,
                                verdict.observed_days, config.diurnal,
                                nullptr, scratch);
    }
    verdict.classification =
        static_cast<std::uint8_t>(diurnal.classification);
    if (diurnal.IsDiurnal()) ++stats.diurnal;
    store.RecordVerdict(i, verdict, estimator);
  }
  return stats;
}

StoreAnalyzeStats AnalyzeStore(BlockStore& store,
                               const StoreAnalyzerConfig& config,
                               int workers) {
  const std::size_t n = store.size();
  const int used = std::max(
      1, std::min(workers, static_cast<int>(n == 0 ? 1 : n)));
  if (used == 1) {
    AnalysisScratch scratch;
    return AnalyzeStoreRange(store, 0, n, config, scratch);
  }
  // Contiguous ranges like the campaign's RunSegment: every verdict is
  // index-local, so the columns come out byte-identical at any width.
  std::vector<StoreAnalyzeStats> partial(static_cast<std::size_t>(used));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(used));
  const std::size_t chunk = (n + used - 1) / used;
  for (int w = 0; w < used; ++w) {
    const std::size_t begin = std::min(n, w * chunk);
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    pool.emplace_back([&store, &config, &partial, w, begin, end] {
      AnalysisScratch scratch;
      partial[static_cast<std::size_t>(w)] =
          AnalyzeStoreRange(store, begin, end, config, scratch);
    });
  }
  for (auto& thread : pool) thread.join();
  StoreAnalyzeStats stats;
  for (const auto& p : partial) {
    stats.analyzed += p.analyzed;
    stats.classified += p.classified;
    stats.diurnal += p.diurnal;
    stats.screened_out += p.screened_out;
  }
  return stats;
}

}  // namespace sleepwalk::core
