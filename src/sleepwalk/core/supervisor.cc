#include "sleepwalk/core/supervisor.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "sleepwalk/core/checkpoint.h"
#include "sleepwalk/util/rng.h"

namespace sleepwalk::core {

namespace {

/// Deterministic jittered exponential backoff. The jitter draw is a
/// stateless hash of (seed, block, round, attempt), so retry timing never
/// perturbs any RNG stream a checkpoint would have to capture.
double BackoffDelay(const RetryConfig& retry, std::uint64_t seed,
                    std::uint32_t block, std::int64_t round, int attempt) {
  double delay = retry.base_delay_sec * std::ldexp(1.0, attempt);
  delay = std::min(delay, retry.max_delay_sec);
  if (retry.jitter > 0.0) {
    const std::uint64_t h =
        MixHash(seed ^ 0xbac0ffULL, (static_cast<std::uint64_t>(block) << 32) |
                                        static_cast<std::uint64_t>(attempt),
                static_cast<std::uint64_t>(round));
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
    delay *= 1.0 + retry.jitter * (2.0 * u - 1.0);
  }
  return std::max(delay, 0.0);
}

bool InGap(const SupervisorConfig& config, std::int64_t round) noexcept {
  for (const auto& [first, last] : config.gap_round_windows) {
    if (round >= first && round < last) return true;
  }
  return false;
}

bool IsForcedRestart(const SupervisorConfig& config,
                     std::int64_t round) noexcept {
  return std::find(config.forced_restart_rounds.begin(),
                   config.forced_restart_rounds.end(),
                   round) != config.forced_restart_rounds.end();
}

void Classify(const BlockAnalysis& analysis, bool quarantined,
              DiurnalCounts& counts) {
  // Quarantined blocks degrade to partial results: whatever was measured
  // is kept in the analysis record, but the aggregate counts treat the
  // block as skipped rather than classifying a truncated series.
  if (quarantined || !analysis.probed || analysis.observed_days < 2) {
    ++counts.skipped;
    return;
  }
  switch (analysis.diurnal.classification) {
    case Diurnality::kStrictlyDiurnal:
      ++counts.strict;
      break;
    case Diurnality::kRelaxedDiurnal:
      ++counts.relaxed;
      break;
    case Diurnality::kNonDiurnal:
      ++counts.non_diurnal;
      break;
  }
}

/// Serializes the current transport state when the transport supports it.
std::vector<std::uint8_t> SnapshotTransport(net::Transport& transport) {
  std::vector<std::uint8_t> bytes;
  if (const auto* stateful =
          dynamic_cast<const net::StatefulTransport*>(&transport)) {
    stateful->SaveState(bytes);
  }
  return bytes;
}

}  // namespace

CampaignOutcome RunResilientCampaign(std::vector<BlockTarget> targets,
                                     net::Transport& transport,
                                     std::int64_t n_rounds,
                                     const SupervisorConfig& config) {
  CampaignOutcome outcome;
  outcome.result.analyses.reserve(targets.size());

  const std::uint64_t fingerprint =
      CampaignFingerprint(targets, n_rounds, config.seed, config.analyzer);

  std::size_t first_block = 0;
  std::int64_t resume_round = 0;
  int consecutive_failures = 0;
  bool resume_inflight = false;
  BlockAnalyzerState inflight_state;

  if (!config.checkpoint_path.empty()) {
    if (auto checkpoint = ReadCheckpoint(config.checkpoint_path);
        checkpoint && checkpoint->fingerprint == fingerprint &&
        checkpoint->completed.size() == checkpoint->next_block &&
        checkpoint->next_block <= targets.size()) {
      // Restore the transport stream first: if the snapshot does not fit
      // this transport, the checkpoint belongs to a different setup and
      // resuming would not be bit-identical — start over instead.
      bool transport_ok = true;
      if (!checkpoint->transport_state.empty()) {
        auto* stateful = dynamic_cast<net::StatefulTransport*>(&transport);
        transport_ok =
            stateful && stateful->RestoreState(checkpoint->transport_state);
      }
      if (transport_ok) {
        outcome.result.analyses = std::move(checkpoint->completed);
        outcome.result.counts = checkpoint->counts;
        outcome.stats = checkpoint->stats;
        for (const auto index : checkpoint->quarantined) {
          outcome.quarantined.push_back(net::Prefix24::FromIndex(index));
        }
        first_block = checkpoint->next_block;
        if (checkpoint->has_inflight) {
          resume_inflight = true;
          resume_round = checkpoint->inflight_next_round;
          consecutive_failures = checkpoint->inflight_consecutive_failures;
          inflight_state = std::move(checkpoint->inflight);
        }
        outcome.resumed = true;
        outcome.stats.resumed_from_checkpoint = true;
      }
    }
  }

  // Global (this-process) round counter driving checkpoint cadence and
  // the stop_after_rounds kill switch; gap rounds count — they consume
  // wall-clock just like probed rounds.
  std::int64_t processed_rounds = 0;

  const auto save = [&](std::size_t next_block, bool has_inflight,
                        std::int64_t next_round, int failures,
                        const BlockAnalyzer* analyzer) {
    if (config.checkpoint_path.empty()) return;
    Checkpoint checkpoint;
    checkpoint.fingerprint = fingerprint;
    checkpoint.counts = outcome.result.counts;
    checkpoint.completed = outcome.result.analyses;
    for (const auto& block : outcome.quarantined) {
      checkpoint.quarantined.push_back(block.Index());
    }
    checkpoint.next_block = next_block;
    checkpoint.has_inflight = has_inflight;
    if (has_inflight) {
      checkpoint.inflight_next_round = next_round;
      checkpoint.inflight_consecutive_failures = failures;
      checkpoint.inflight = analyzer->ExportState();
    }
    checkpoint.transport_state = SnapshotTransport(transport);
    ++outcome.stats.checkpoints_written;  // the snapshot counts itself
    checkpoint.stats = outcome.stats;
    if (!WriteCheckpoint(config.checkpoint_path, checkpoint)) {
      --outcome.stats.checkpoints_written;
    }
  };

  for (std::size_t i = first_block; i < targets.size(); ++i) {
    auto& target = targets[i];
    const std::uint32_t block_index = target.block.Index();
    BlockAnalyzer analyzer{target.block, std::move(target.ever_active),
                           target.initial_availability,
                           config.seed ^ block_index, config.analyzer};
    std::int64_t start_round = 0;
    if (resume_inflight) {
      analyzer.RestoreState(std::move(inflight_state));
      start_round = resume_round;
      resume_inflight = false;
    } else {
      consecutive_failures = 0;
    }

    bool quarantined = false;
    for (std::int64_t round = start_round; round < n_rounds; ++round) {
      if (InGap(config, round)) {
        // The prober slept through this round: no probes, no A-hat_s
        // sample. The cleaning stage later interpolates the hole.
        ++outcome.stats.rounds_gapped;
      } else {
        if (IsForcedRestart(config, round)) {
          analyzer.ForceRestart();
          ++outcome.stats.forced_restarts;
        }
        ++outcome.stats.rounds_attempted;

        bool succeeded = false;
        for (int attempt = 0; attempt < std::max(config.retry.max_attempts, 1);
             ++attempt) {
          const auto snapshot = analyzer.prober_state();
          try {
            analyzer.RunRound(transport, round);
            succeeded = true;
            break;
          } catch (const net::TransportError&) {
            // Roll back the half-run round so a retry does not
            // double-apply belief and walker-cursor updates.
            analyzer.restore_prober_state(snapshot);
            if (attempt + 1 >= std::max(config.retry.max_attempts, 1)) break;
            ++outcome.stats.retries;
            const double delay = BackoffDelay(config.retry, config.seed,
                                              block_index, round, attempt);
            outcome.stats.backoff_seconds += delay;
            if (config.sleeper) config.sleeper(delay);
          }
        }

        if (succeeded) {
          consecutive_failures = 0;
        } else {
          ++outcome.stats.rounds_failed;
          ++consecutive_failures;
          if (config.quarantine_after_failures > 0 &&
              consecutive_failures >= config.quarantine_after_failures) {
            quarantined = true;
            ++outcome.stats.quarantined_blocks;
            outcome.quarantined.push_back(target.block);
          }
        }
      }

      ++processed_rounds;
      const bool stopping = config.stop_after_rounds > 0 &&
                            processed_rounds >= config.stop_after_rounds;
      if (quarantined) break;
      if (stopping || (config.checkpoint_every_rounds > 0 &&
                       processed_rounds % config.checkpoint_every_rounds ==
                           0)) {
        // Always in-flight, even after the final round: resume restores
        // the analyzer (round loop is empty) and goes straight to
        // Finish(), instead of re-running the block from scratch.
        save(i, /*has_inflight=*/true, round + 1, consecutive_failures,
             &analyzer);
        if (stopping) {
          outcome.stopped_early = true;
          return outcome;
        }
      }
    }

    auto analysis = analyzer.Finish();
    Classify(analysis, quarantined, outcome.result.counts);
    outcome.result.analyses.push_back(std::move(analysis));
    save(i + 1, /*has_inflight=*/false, 0, 0, nullptr);
    if (config.progress) config.progress(i + 1, targets.size());
  }

  return outcome;
}

}  // namespace sleepwalk::core
