#include "sleepwalk/core/supervisor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <utility>

#include "sleepwalk/core/campaign_ledger.h"
#include "sleepwalk/core/checkpoint.h"
#include "sleepwalk/core/status.h"
#include "sleepwalk/storage/instrumented_env.h"
#include "sleepwalk/util/rng.h"
#include "sleepwalk/util/sync.h"

namespace sleepwalk::core {

// The campaign bookkeeping (CampaignLedger, SupervisorMetrics, backoff
// and schedule helpers) lives in core/campaign_ledger.h, shared with the
// parallel executor: both runners must compute identical retry delays,
// gap decisions, and classifications for the byte-equivalence contract.

namespace {

/// Monotonic-nanosecond clock injected into the storage decorator for
/// live (non-deterministic) runs; deterministic runs pass an empty
/// function and get no latency instruments at all.
std::uint64_t MonotonicNowNs() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now()  // sleeplint: allow(no-wallclock)
              .time_since_epoch())
          .count());
}

}  // namespace

CampaignOutcome RunResilientCampaign(std::vector<BlockTarget> targets,
                                     net::Transport& transport,
                                     std::int64_t n_rounds,
                                     const SupervisorConfig& config) {
  CampaignLedger ledger{targets.size(), config.analyzer.availability};

  const std::uint64_t fingerprint =
      CampaignFingerprint(targets, n_rounds, config.seed, config.analyzer);

  const obs::Context& obs = config.obs;
  SupervisorMetrics metrics{obs};
  // Wall-derived values (rounds/sec) are kept out of every sink when the
  // logger is deterministic — the determinism contract of DESIGN.md §7.
  // This is the supervisor's only wall-clock read, and it never reaches
  // a deterministic sink or any campaign state.
  const bool deterministic =
      obs.log == nullptr || obs.log->config().deterministic;
  const auto wall_start =
      std::chrono::steady_clock::now();  // sleeplint: allow(no-wallclock)
  const auto campaign_span = obs.Span("campaign");
  if (metrics.blocks_total != nullptr) {
    metrics.blocks_total->Set(static_cast<double>(targets.size()));
  }
  if (obs.Logs(obs::Level::kInfo)) {
    obs.log->Write(obs::Level::kInfo, "campaign.start",
                   {{"blocks", static_cast<std::uint64_t>(targets.size())},
                    {"rounds", n_rounds},
                    {"seed", config.seed},
                    {"fingerprint", fingerprint},
                    {"checkpointing", !config.checkpoint_path.empty()}});
  }

  std::size_t first_block = 0;
  std::int64_t resume_round = 0;
  int consecutive_failures = 0;
  bool resume_inflight = false;
  BlockAnalyzerState inflight_state;

  // Checkpoint I/O goes through the instrumented decorator: op/byte
  // counters are deterministic (the op sequence is), latency histograms
  // only exist when the injected clock is non-empty (live runs). The
  // decorator is pass-through, so persisted bytes and failpoint
  // ordinals are untouched.
  storage::Env& base_env =
      config.env != nullptr ? *config.env : storage::RealEnvInstance();
  storage::InstrumentedEnv env{
      base_env, obs,
      deterministic ? storage::InstrumentedEnv::NowNsFn{} : MonotonicNowNs};
  CheckpointStore store{env, config.checkpoint_path,
                        config.checkpoint_keep, config.checkpoint_format};

  // Wall time spent inside checkpoint writes, for the live
  // durability-tax readout. Read only by the status provider below —
  // never by a deterministic sink.
  std::atomic<std::uint64_t> checkpoint_wall_ns{0};

  if (!config.checkpoint_path.empty()) {
    RecoveryEvents recovery;
    auto checkpoint = store.Load(fingerprint, recovery);
    ledger.NoteRecovery(recovery);
    if (recovery.generations_discarded > 0) {
      if (metrics.corrupt_sections != nullptr) {
        metrics.corrupt_sections->Inc(
            static_cast<double>(recovery.corrupt_sections));
      }
      if (metrics.generations_discarded != nullptr) {
        metrics.generations_discarded->Inc(
            static_cast<double>(recovery.generations_discarded));
      }
      if (metrics.checkpoint_recoveries != nullptr &&
          recovery.recoveries > 0) {
        metrics.checkpoint_recoveries->Inc(
            static_cast<double>(recovery.recoveries));
      }
      const auto level =
          recovery.recoveries > 0 ? obs::Level::kWarn : obs::Level::kError;
      if (obs.Logs(level)) {
        obs.log->Write(level, "checkpoint.recover",
                       {{"path", config.checkpoint_path},
                        {"recovered", recovery.recoveries > 0},
                        {"corrupt_sections", recovery.corrupt_sections},
                        {"generations_discarded",
                         recovery.generations_discarded}});
      }
    }
    if (checkpoint &&
        checkpoint->completed.size() == checkpoint->next_block &&
        checkpoint->next_block <= targets.size()) {
      // Restore the transport stream first: if the snapshot does not fit
      // this transport, the checkpoint belongs to a different setup and
      // resuming would not be bit-identical — start over instead.
      bool transport_ok = true;
      if (!checkpoint->transport_state.empty()) {
        auto* stateful = dynamic_cast<net::StatefulTransport*>(&transport);
        transport_ok =
            stateful && stateful->RestoreState(checkpoint->transport_state);
      }
      if (transport_ok) {
        first_block = checkpoint->next_block;
        if (checkpoint->has_inflight) {
          resume_inflight = true;
          resume_round = checkpoint->inflight_next_round;
          consecutive_failures = checkpoint->inflight_consecutive_failures;
          inflight_state = std::move(checkpoint->inflight);
        }
        ledger.AdoptCheckpoint(*checkpoint);
        if (metrics.resumes != nullptr) metrics.resumes->Inc();
        if (obs.Logs(obs::Level::kInfo)) {
          obs.log->Write(
              obs::Level::kInfo, "checkpoint.resume",
              {{"path", config.checkpoint_path},
               {"fingerprint", fingerprint},
               {"next_block", static_cast<std::uint64_t>(first_block)},
               {"inflight", resume_inflight},
               {"inflight_round", resume_round}});
        }
      }
    }
  }

  const auto save = [&](std::size_t next_block, bool has_inflight,
                        std::int64_t next_round, int failures,
                        const BlockAnalyzer* analyzer) {
    if (config.checkpoint_path.empty()) return;
    Checkpoint checkpoint = ledger.BuildCheckpointSnapshot(
        fingerprint, next_block, has_inflight, next_round, failures,
        analyzer);
    checkpoint.transport_state = SnapshotTransport(transport);
    const auto span = obs.Span("checkpoint.write");
    const std::uint64_t save_start = MonotonicNowNs();
    const auto error = store.Save(checkpoint);
    checkpoint_wall_ns.fetch_add(MonotonicNowNs() - save_start,
                                 std::memory_order_relaxed);
    const bool ok = error.ok();
    ledger.NoteCheckpointWritten(ok);
    if (ok && metrics.checkpoints != nullptr) metrics.checkpoints->Inc();
    const auto level = ok ? obs::Level::kDebug : obs::Level::kError;
    if (obs.Logs(level)) {
      obs.log->Write(level, "checkpoint.write",
                     {{"path", config.checkpoint_path},
                      {"fingerprint", fingerprint},
                      {"next_block", static_cast<std::uint64_t>(next_block)},
                      {"inflight", has_inflight},
                      {"ok", ok},
                      {"error", ok ? std::string{} : error.ToString()}});
    }
  };

  // Live-status provider for the admin plane: one snapshot-isolated
  // ledger read plus wall-derived rates. Registration is scoped to this
  // frame (declared after `ledger`, destroyed first), so a reader can
  // never observe the campaign after it is torn down.
  StatusHub::Registration status_registration;
  if (config.status != nullptr) {
    const std::size_t blocks_total = targets.size();
    const obs::Registry* registry = obs.metrics;
    status_registration = config.status->Attach(
        [&ledger, &checkpoint_wall_ns, wall_start, blocks_total, registry] {
          CampaignStatus status;
          ledger.FillStatus(status);
          status.blocks_total = blocks_total;
          const auto elapsed_ns =
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now()  // sleeplint: allow(no-wallclock)
                  - wall_start)
                  .count();
          if (elapsed_ns > 0) {
            status.rounds_per_sec = static_cast<double>(status.rounds_done) *
                                    1e9 / static_cast<double>(elapsed_ns);
            status.durability_tax_pct =
                100.0 *
                static_cast<double>(
                    checkpoint_wall_ns.load(std::memory_order_relaxed)) /
                static_cast<double>(elapsed_ns);
          }
          // A sequential campaign is one shard that never steals.
          ShardRuntime shard;
          shard.blocks_run = status.blocks_done;
          status.shards.push_back(shard);
          if (registry != nullptr) {
            status.quantiles = CollectHistogramStatus(*registry);
          }
          return status;
        });
  }

  // One scratch arena and one reusable analysis buffer for the whole
  // campaign: Finish() stops allocating once capacities warm up.
  AnalysisScratch analysis_scratch;
  BlockAnalysis finished;
  for (std::size_t i = first_block; i < targets.size(); ++i) {
    auto& target = targets[i];
    const std::uint32_t block_index = target.block.Index();
    BlockAnalyzer analyzer{target.block, std::move(target.ever_active),
                           target.initial_availability,
                           StreamSeed(config.seed, block_index),
                           config.analyzer};
    analyzer.AttachObs(obs);
    const auto block_span = obs.Span("block");
    std::int64_t start_round = 0;
    if (resume_inflight) {
      analyzer.RestoreState(std::move(inflight_state));
      start_round = resume_round;
      resume_inflight = false;
    } else {
      consecutive_failures = 0;
    }

    bool quarantined = false;
    for (std::int64_t round = start_round; round < n_rounds; ++round) {
      if (InGap(config, round)) {
        // The prober slept through this round: no probes, no A-hat_s
        // sample. The cleaning stage later interpolates the hole.
        ledger.NoteGapped();
        if (metrics.rounds_gapped != nullptr) metrics.rounds_gapped->Inc();
      } else {
        if (IsForcedRestart(config, round)) {
          analyzer.ForceRestart();
          ledger.NoteForcedRestart();
          if (metrics.forced_restarts != nullptr) {
            metrics.forced_restarts->Inc();
          }
          if (obs.Logs(obs::Level::kDebug)) {
            obs.log->Write(obs::Level::kDebug, "prober.restart",
                           {{"block", target.block.ToString()},
                            {"round", round},
                            {"reason", "forced"}});
          }
        }
        ledger.NoteAttempted();
        if (metrics.rounds != nullptr) metrics.rounds->Inc();

        bool succeeded = false;
        for (int attempt = 0; attempt < std::max(config.retry.max_attempts, 1);
             ++attempt) {
          const auto snapshot = analyzer.prober_state();
          try {
            analyzer.RunRound(transport, round);
            succeeded = true;
            break;
          } catch (const net::TransportError&) {
            // Roll back the half-run round so a retry does not
            // double-apply belief and walker-cursor updates.
            analyzer.restore_prober_state(snapshot);
            if (attempt + 1 >= std::max(config.retry.max_attempts, 1)) break;
            const double delay = BackoffDelay(config.retry, config.seed,
                                              block_index, round, attempt);
            ledger.NoteRetry(delay);
            if (metrics.retries != nullptr) metrics.retries->Inc();
            if (metrics.backoff_seconds != nullptr) {
              metrics.backoff_seconds->Inc(delay);
            }
            if (metrics.backoff_delay != nullptr) {
              metrics.backoff_delay->Observe(delay);
            }
            if (obs.Logs(obs::Level::kDebug)) {
              obs.log->Write(obs::Level::kDebug, "round.retry",
                             {{"block", target.block.ToString()},
                              {"round", round},
                              {"attempt", attempt + 1},
                              {"delay_sec", delay}});
            }
            if (config.sleeper) config.sleeper(delay);
          }
        }

        if (succeeded) {
          consecutive_failures = 0;
        } else {
          ledger.NoteRoundFailed();
          ++consecutive_failures;
          if (metrics.rounds_failed != nullptr) metrics.rounds_failed->Inc();
          if (obs.Logs(obs::Level::kWarn)) {
            obs.log->Write(obs::Level::kWarn, "round.failed",
                           {{"block", target.block.ToString()},
                            {"round", round},
                            {"consecutive_failures", consecutive_failures}});
          }
          if (config.quarantine_after_failures > 0 &&
              consecutive_failures >= config.quarantine_after_failures) {
            quarantined = true;
            ledger.NoteQuarantined(target.block);
            if (metrics.quarantined != nullptr) metrics.quarantined->Inc();
            if (obs.Logs(obs::Level::kWarn)) {
              obs.log->Write(obs::Level::kWarn, "block.quarantined",
                             {{"block", target.block.ToString()},
                              {"round", round},
                              {"consecutive_failures",
                               consecutive_failures}});
            }
          }
        }
      }

      const std::int64_t processed_rounds = ledger.AdvanceRound();
      const bool stopping = config.stop_after_rounds > 0 &&
                            processed_rounds >= config.stop_after_rounds;
      if (quarantined) break;
      if (stopping || (config.checkpoint_every_rounds > 0 &&
                       processed_rounds % config.checkpoint_every_rounds ==
                           0)) {
        // Always in-flight, even after the final round: resume restores
        // the analyzer (round loop is empty) and goes straight to
        // Finish(), instead of re-running the block from scratch.
        save(i, /*has_inflight=*/true, round + 1, consecutive_failures,
             &analyzer);
        if (stopping) {
          ledger.NoteStoppedEarly();
          if (obs.Logs(obs::Level::kInfo)) {
            obs.log->Write(obs::Level::kInfo, "campaign.stopped",
                           {{"blocks_done", static_cast<std::uint64_t>(i)},
                            {"rounds_done", processed_rounds},
                            {"reason", "stop_after_rounds"}});
          }
          return ledger.TakeOutcome();
        }
      }
    }

    analyzer.Finish(analysis_scratch, finished);
    ledger.FinishBlock(finished, quarantined,
                       analyzer.ExportState().estimator);
    const bool boundary_due =
        config.checkpoint_every_blocks <= 1 ||
        (i + 1) % static_cast<std::size_t>(config.checkpoint_every_blocks) ==
            0 ||
        i + 1 == targets.size();  // completion always checkpoints
    if (boundary_due) save(i + 1, /*has_inflight=*/false, 0, 0, nullptr);

    CampaignProgress heartbeat;
    heartbeat.blocks_done = i + 1;
    heartbeat.blocks_total = targets.size();
    heartbeat.rounds_done = ledger.processed_rounds();
    heartbeat.quarantined = ledger.stats_snapshot().quarantined_blocks;
    // Wall-derived rate: fine for the live progress consumer, but only
    // exported as a metric when the sinks are non-deterministic.
    const double elapsed_sec =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now()  // sleeplint: allow(no-wallclock)
            - wall_start)
            .count();
    if (elapsed_sec > 0.0) {
      heartbeat.rounds_per_sec =
          static_cast<double>(heartbeat.rounds_done) / elapsed_sec;
    }
    if (!config.checkpoint_path.empty() &&
        config.checkpoint_every_rounds > 0) {
      heartbeat.rounds_to_checkpoint =
          config.checkpoint_every_rounds -
          heartbeat.rounds_done % config.checkpoint_every_rounds;
    }
    if (metrics.blocks_done != nullptr) {
      metrics.blocks_done->Set(static_cast<double>(heartbeat.blocks_done));
    }
    if (!deterministic && metrics.rounds_per_sec != nullptr) {
      metrics.rounds_per_sec->Set(heartbeat.rounds_per_sec);
    }
    if (obs.Logs(obs::Level::kDebug)) {
      obs.log->Write(
          obs::Level::kDebug, "campaign.heartbeat",
          {{"blocks_done", static_cast<std::uint64_t>(heartbeat.blocks_done)},
           {"blocks_total",
            static_cast<std::uint64_t>(heartbeat.blocks_total)},
           {"rounds_done", heartbeat.rounds_done},
           {"quarantined", heartbeat.quarantined}});
    }
    if (config.progress) config.progress(heartbeat);
  }

  if (obs.Logs(obs::Level::kInfo)) {
    const auto counts = ledger.counts_snapshot();
    const auto stats = ledger.stats_snapshot();
    obs.log->Write(
        obs::Level::kInfo, "campaign.done",
        {{"blocks", static_cast<std::uint64_t>(ledger.blocks_done())},
         {"strict", counts.strict},
         {"relaxed", counts.relaxed},
         {"non_diurnal", counts.non_diurnal},
         {"skipped", counts.skipped},
         {"rounds_attempted", stats.rounds_attempted},
         {"rounds_failed", stats.rounds_failed},
         {"retries", stats.retries},
         {"quarantined", stats.quarantined_blocks},
         {"resumed", stats.resumed_from_checkpoint}});
  }
  return ledger.TakeOutcome();
}

}  // namespace sleepwalk::core
