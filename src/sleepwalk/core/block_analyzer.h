// Per-block measurement pipeline: adaptive probing -> availability
// estimation -> cleaned A-hat_s timeseries -> diurnal classification.
//
// This is the composition of the paper's §2.1 and §2.2 for one /24:
// each round the Trinocular prober runs with the current operational
// estimate A-hat_o, its (p, t) counts update the estimator, and the
// short-term estimate A-hat_s is recorded. At the end the series is
// regularized, trimmed to midnight UTC, stationarity-checked, and
// spectrally classified.
#ifndef SLEEPWALK_CORE_BLOCK_ANALYZER_H_
#define SLEEPWALK_CORE_BLOCK_ANALYZER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "sleepwalk/core/analysis_scratch.h"
#include "sleepwalk/core/availability.h"
#include "sleepwalk/core/diurnal.h"
#include "sleepwalk/net/ipv4.h"
#include "sleepwalk/net/transport.h"
#include "sleepwalk/obs/context.h"
#include "sleepwalk/probing/prober.h"
#include "sleepwalk/probing/scheduler.h"
#include "sleepwalk/ts/clean.h"
#include "sleepwalk/ts/stationarity.h"

namespace sleepwalk::core {

/// Analyzer knobs combining the sub-component configurations.
struct AnalyzerConfig {
  AvailabilityConfig availability;
  DiurnalConfig diurnal;
  probing::ProberConfig prober;
  probing::ScheduleConfig schedule;
  /// Trinocular policy: blocks with fewer ever-active addresses than this
  /// are not probed (§3.2.4 — the source of sparse-block false negatives).
  int min_ever_active = 15;
  /// Stationarity threshold: address changes per day (§2.2).
  double max_trend_addresses_per_day = 1.0;
};

/// One contiguous run of down verdicts (an outage episode).
struct OutageEpisode {
  std::int64_t start_round = 0;
  std::int64_t rounds = 0;  ///< consecutive rounds with a down verdict

  /// Duration given the campaign's round length.
  double DurationHours(std::int64_t round_seconds = 660) const noexcept {
    return static_cast<double>(rounds * round_seconds) / 3600.0;
  }
};

/// Everything measured about one block.
struct BlockAnalysis {
  net::Prefix24 block;
  bool probed = false;  ///< false => skipped by the sparse-block policy
  int ever_active = 0;

  /// Cleaned + midnight-trimmed short-term availability series.
  ts::EvenSeries short_series;
  int observed_days = 0;

  DiurnalResult diurnal;
  ts::StationarityResult stationarity;

  double mean_short = 0.0;        ///< mean A-hat_s over the campaign
  double final_operational = 0.0; ///< A-hat_o after the last round
  double mean_probes_per_round = 0.0;
  int down_rounds = 0;            ///< rounds with an outage verdict
  std::vector<std::int64_t> outage_starts;  ///< first round of each outage
  std::vector<OutageEpisode> outages;       ///< contiguous down episodes
};

/// Round-boundary snapshot of one analyzer's mutable state. Everything
/// not derivable from (BlockTarget, seed, config): the estimator's EWMAs,
/// the prober's cursor/belief, the accumulated raw A-hat_s series, and
/// the outage bookkeeping. Serialized into campaign checkpoints.
struct BlockAnalyzerState {
  AvailabilityState estimator;
  bool has_prober = false;
  probing::ProberState prober;
  std::vector<ts::Observation> raw;
  std::int64_t total_probes = 0;
  std::int64_t rounds_run = 0;
  int down_rounds = 0;
  bool previous_down = false;
  std::vector<std::int64_t> outage_starts;
  std::vector<OutageEpisode> outages;
};

/// Drives one block through a probing campaign.
class BlockAnalyzer {
 public:
  /// `ever_active` lists E(b)'s last-octets (from "historical data");
  /// `initial_availability` seeds the estimator. When E(b) is smaller
  /// than the policy minimum (or empty) the analyzer refuses to probe.
  BlockAnalyzer(net::Prefix24 block, std::vector<std::uint8_t> ever_active,
                double initial_availability, std::uint64_t seed,
                const AnalyzerConfig& config = {});

  /// True when the block passes the probing policy.
  bool probing_enabled() const noexcept { return prober_.has_value(); }

  /// Attaches telemetry (forwarded to the prober): the campaign clock is
  /// advanced to each round's virtual time, scheduled prober restarts
  /// are logged (the §4 artifact source), and Finish()'s analyze stages
  /// — resample, trim, stationarity, FFT, classify — run under tracer
  /// spans. Inert: analysis output is identical with or without it.
  void AttachObs(const obs::Context& context);

  /// Runs one round (restarting the prober first on restart boundaries)
  /// and records the post-round A-hat_s sample.
  void RunRound(net::Transport& transport, std::int64_t round);

  /// Runs rounds [0, n_rounds).
  void RunCampaign(net::Transport& transport, std::int64_t n_rounds);

  const AvailabilityEstimator& estimator() const noexcept {
    return estimator_;
  }

  /// Raw (uncleaned) A-hat_s observations recorded so far.
  const ts::RawSeries& raw_series() const noexcept { return raw_; }

  /// Forces a prober restart outside the schedule — fault injection of
  /// the §4 restart artifact, or a real supervisor-driven recovery.
  void ForceRestart() noexcept {
    if (prober_) prober_->Restart();
  }

  /// Prober-only snapshot, cheap enough to take every round: restoring it
  /// rolls back a round that died mid-probing (transport error) so the
  /// round can be retried without double-applying belief updates.
  probing::ProberState prober_state() const noexcept {
    return prober_ ? prober_->ExportState() : probing::ProberState{};
  }
  void restore_prober_state(const probing::ProberState& state) noexcept {
    if (prober_) prober_->RestoreState(state);
  }

  /// Captures / restores everything mutable (checkpoint/resume). The
  /// analyzer must have been constructed from the same target, seed and
  /// config for RestoreState to make sense.
  BlockAnalyzerState ExportState() const;
  void RestoreState(BlockAnalyzerState state);

  /// Rounds executed so far (resume continues from here).
  std::int64_t rounds_run() const noexcept { return rounds_run_; }

  /// Finalizes: cleans, trims, tests stationarity, classifies.
  BlockAnalysis Finish() const;

  /// Hot-loop variant: every intermediate lives in `scratch` and the
  /// result is written into `out` (whose vector capacities are reused),
  /// so a warm call performs zero heap allocations. Output is identical
  /// to the allocating Finish().
  void Finish(AnalysisScratch& scratch, BlockAnalysis& out) const;

 private:
  net::Prefix24 block_;
  AnalyzerConfig config_;
  probing::RoundScheduler scheduler_;
  AvailabilityEstimator estimator_;
  std::optional<probing::AdaptiveProber> prober_;
  int ever_active_ = 0;
  obs::Context obs_;

  ts::RawSeries raw_;
  std::int64_t total_probes_ = 0;
  std::int64_t rounds_run_ = 0;
  int down_rounds_ = 0;
  bool previous_down_ = false;
  std::vector<std::int64_t> outage_starts_;
  std::vector<OutageEpisode> outages_;
};

}  // namespace sleepwalk::core

#endif  // SLEEPWALK_CORE_BLOCK_ANALYZER_H_
