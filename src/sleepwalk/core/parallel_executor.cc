#include "sleepwalk/core/parallel_executor.h"

#include <atomic>
#include <chrono>
#include <cstddef>
#include <deque>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>

#include "sleepwalk/core/campaign_ledger.h"
#include "sleepwalk/core/checkpoint.h"
#include "sleepwalk/core/status.h"
#include "sleepwalk/storage/instrumented_env.h"
#include "sleepwalk/util/rng.h"
#include "sleepwalk/util/sync.h"

namespace sleepwalk::core {

namespace {

/// Monotonic nanoseconds for the storage decorator and the live
/// durability-tax readout; values never reach a deterministic sink.
std::uint64_t MonotonicNowNs() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now()  // sleeplint: allow(no-wallclock)
              .time_since_epoch())
          .count());
}

/// The shape of the caller's obs context, captured once so every block
/// can build a private buffered mirror: same log config, same sink
/// kinds, same trace determinism. A sink kind the parent lacks is not
/// buffered (the bytes would be dropped at merge anyway).
struct ObsShape {
  bool log = false;
  obs::LogConfig log_config;
  bool text = false;
  bool jsonl = false;
  bool metrics = false;
  bool tracer = false;
  bool trace_deterministic = true;
};

/// Everything one finished block ships back to the coordinator. The
/// commit lands in the ledger; the telemetry buffers are merged into the
/// parent sinks — both strictly in block-index order.
struct BlockResult {
  std::size_t index = 0;
  BlockCommit commit;
  std::int64_t final_vt = -1;  ///< block-local campaign clock at finish
  std::string log_text;
  std::string log_jsonl;
  std::vector<obs::SpanRecord> spans;
  std::unique_ptr<obs::Registry> registry;
};

report::ProbeAccounting Subtract(const report::ProbeAccounting& after,
                                 const report::ProbeAccounting& before) {
  report::ProbeAccounting delta;
  delta.attempts = after.attempts - before.attempts;
  delta.errors = after.errors - before.errors;
  delta.answered = after.answered - before.answered;
  delta.lost = after.lost - before.lost;
  delta.rate_limited = after.rate_limited - before.rate_limited;
  delta.unreachable = after.unreachable - before.unreachable;
  return delta;
}

/// Work-stealing block queue: worker w starts with the blocks strided
/// w, w+N, w+2N, ... (a near-even static split that keeps the
/// coordinator's reorder window small) and, once drained, steals single
/// blocks from the tail of the currently richest victim. Scheduling is
/// free to be nondeterministic — block results are schedule-independent
/// by construction, and the ordered commit stage erases any trace of
/// who ran what.
class WorkQueue {
 public:
  WorkQueue(std::size_t n_workers, std::size_t first_block,
            std::size_t n_blocks)
      : steals_(n_workers), idle_polls_(n_workers) {
    shards_.reserve(n_workers);
    for (std::size_t w = 0; w < n_workers; ++w) {
      shards_.push_back(std::make_unique<Shard>());
    }
    for (std::size_t i = first_block; i < n_blocks; ++i) {
      auto& shard = *shards_[(i - first_block) % n_workers];
      util::MutexLock lock{shard.mutex};
      shard.blocks.push_back(i);
    }
  }

  /// Next block for `worker`: own front, else a steal; nullopt when the
  /// whole queue is drained.
  std::optional<std::size_t> Pop(std::size_t worker) {
    {
      auto& own = *shards_[worker];
      util::MutexLock lock{own.mutex};
      if (!own.blocks.empty()) {
        const std::size_t block = own.blocks.front();
        own.blocks.pop_front();
        return block;
      }
    }
    while (true) {
      std::size_t best = shards_.size();
      std::size_t best_size = 0;
      for (std::size_t victim = 0; victim < shards_.size(); ++victim) {
        if (victim == worker) continue;
        auto& shard = *shards_[victim];
        util::MutexLock lock{shard.mutex};
        if (shard.blocks.size() > best_size) {
          best = victim;
          best_size = shard.blocks.size();
        }
      }
      if (best == shards_.size()) return std::nullopt;
      auto& shard = *shards_[best];
      util::MutexLock lock{shard.mutex};
      if (shard.blocks.empty()) {
        idle_polls_[worker].fetch_add(1, std::memory_order_relaxed);
        continue;  // lost the race; rescan
      }
      const std::size_t block = shard.blocks.back();
      shard.blocks.pop_back();
      steals_[worker].fetch_add(1, std::memory_order_relaxed);
      return block;
    }
  }

  /// Live scheduling telemetry for /statusz. Steal/idle counts are
  /// schedule-dependent, so they must never reach a deterministic sink —
  /// the status provider's "live" section is their only consumer.
  std::uint64_t steals(std::size_t worker) const {
    return steals_[worker].load(std::memory_order_relaxed);
  }
  std::uint64_t idle_polls(std::size_t worker) const {
    return idle_polls_[worker].load(std::memory_order_relaxed);
  }

 private:
  struct Shard {
    util::Mutex mutex;
    std::deque<std::size_t> blocks SLEEPWALK_GUARDED_BY(mutex);
  };
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::atomic<std::uint64_t>> steals_;
  std::vector<std::atomic<std::uint64_t>> idle_polls_;
};

/// Finished blocks waiting for their turn in the ordered commit stage.
class CompletionQueue {
 public:
  void Push(BlockResult result) SLEEPWALK_EXCLUDES(mutex_) {
    {
      util::MutexLock lock{mutex_};
      pending_.emplace(result.index, std::move(result));
    }
    cv_.NotifyAll();
  }

  /// Blocks until the result for `index` arrives, then hands it out.
  BlockResult WaitFor(std::size_t index) SLEEPWALK_EXCLUDES(mutex_) {
    util::MutexLock lock{mutex_};
    auto it = pending_.find(index);
    while (it == pending_.end()) {
      cv_.Wait(mutex_);
      it = pending_.find(index);
    }
    BlockResult result = std::move(it->second);
    pending_.erase(it);
    return result;
  }

 private:
  util::Mutex mutex_;
  util::CondVar cv_;
  std::map<std::size_t, BlockResult> pending_ SLEEPWALK_GUARDED_BY(mutex_);
};

/// Measures one block end to end on a worker thread: same round loop as
/// RunResilientCampaign (gaps, forced restarts, retry with rollback,
/// quarantine), but every side effect lands in block-private state — a
/// stats delta instead of the shared ledger, buffered sinks instead of
/// the parent's. The worker never touches the campaign's obs context.
BlockResult RunBlock(std::size_t index, BlockTarget& target,
                     ShardChain& chain, const SupervisorConfig& config,
                     std::int64_t n_rounds, const ObsShape& shape,
                     AnalysisScratch& scratch) {
  BlockResult out;
  out.index = index;

  std::ostringstream text_buf;
  std::ostringstream jsonl_buf;
  std::optional<obs::Logger> logger;
  if (shape.log) {
    logger.emplace(shape.log_config);
    if (shape.text) logger->AddTextSink(&text_buf);
    if (shape.jsonl) logger->AddJsonlSink(&jsonl_buf);
  }
  if (shape.metrics) out.registry = std::make_unique<obs::Registry>();
  std::optional<obs::Tracer> tracer;
  if (shape.tracer) {
    tracer.emplace(obs::TraceConfig{shape.trace_deterministic});
  }
  obs::Context block_obs;
  block_obs.log = logger ? &*logger : nullptr;
  block_obs.metrics = out.registry.get();
  block_obs.tracer = tracer ? &*tracer : nullptr;

  chain.AttachObs(block_obs);
  const auto accounting_before = chain.accounting();
  SupervisorMetrics metrics{block_obs};
  net::Transport& transport = chain.transport();

  const std::uint32_t block_index = target.block.Index();
  BlockAnalyzer analyzer{target.block, std::move(target.ever_active),
                         target.initial_availability,
                         StreamSeed(config.seed, block_index),
                         config.analyzer};
  analyzer.AttachObs(block_obs);

  report::ResilienceStats delta;
  bool quarantined = false;
  int consecutive_failures = 0;
  std::int64_t rounds_processed = 0;
  {
    const auto block_span = block_obs.Span("block");
    for (std::int64_t round = 0; round < n_rounds; ++round) {
      if (InGap(config, round)) {
        ++delta.rounds_gapped;
        if (metrics.rounds_gapped != nullptr) metrics.rounds_gapped->Inc();
      } else {
        if (IsForcedRestart(config, round)) {
          analyzer.ForceRestart();
          ++delta.forced_restarts;
          if (metrics.forced_restarts != nullptr) {
            metrics.forced_restarts->Inc();
          }
          if (block_obs.Logs(obs::Level::kDebug)) {
            block_obs.log->Write(obs::Level::kDebug, "prober.restart",
                                 {{"block", target.block.ToString()},
                                  {"round", round},
                                  {"reason", "forced"}});
          }
        }
        ++delta.rounds_attempted;
        if (metrics.rounds != nullptr) metrics.rounds->Inc();

        bool succeeded = false;
        for (int attempt = 0;
             attempt < std::max(config.retry.max_attempts, 1); ++attempt) {
          const auto snapshot = analyzer.prober_state();
          try {
            analyzer.RunRound(transport, round);
            succeeded = true;
            break;
          } catch (const net::TransportError&) {
            analyzer.restore_prober_state(snapshot);
            if (attempt + 1 >= std::max(config.retry.max_attempts, 1)) break;
            const double delay = BackoffDelay(config.retry, config.seed,
                                              block_index, round, attempt);
            ++delta.retries;
            delta.backoff_seconds += delay;
            if (metrics.retries != nullptr) metrics.retries->Inc();
            if (metrics.backoff_seconds != nullptr) {
              metrics.backoff_seconds->Inc(delay);
            }
            if (metrics.backoff_delay != nullptr) {
              metrics.backoff_delay->Observe(delay);
            }
            if (block_obs.Logs(obs::Level::kDebug)) {
              block_obs.log->Write(obs::Level::kDebug, "round.retry",
                                   {{"block", target.block.ToString()},
                                    {"round", round},
                                    {"attempt", attempt + 1},
                                    {"delay_sec", delay}});
            }
            if (config.sleeper) config.sleeper(delay);
          }
        }

        if (succeeded) {
          consecutive_failures = 0;
        } else {
          ++delta.rounds_failed;
          ++consecutive_failures;
          if (metrics.rounds_failed != nullptr) metrics.rounds_failed->Inc();
          if (block_obs.Logs(obs::Level::kWarn)) {
            block_obs.log->Write(obs::Level::kWarn, "round.failed",
                                 {{"block", target.block.ToString()},
                                  {"round", round},
                                  {"consecutive_failures",
                                   consecutive_failures}});
          }
          if (config.quarantine_after_failures > 0 &&
              consecutive_failures >= config.quarantine_after_failures) {
            quarantined = true;
            ++delta.quarantined_blocks;
            if (metrics.quarantined != nullptr) metrics.quarantined->Inc();
            if (block_obs.Logs(obs::Level::kWarn)) {
              block_obs.log->Write(obs::Level::kWarn, "block.quarantined",
                                   {{"block", target.block.ToString()},
                                    {"round", round},
                                    {"consecutive_failures",
                                     consecutive_failures}});
            }
          }
        }
      }

      ++rounds_processed;
      if (quarantined) break;
    }
    // Worker-owned scratch: transform tables come from the shared
    // immutable PlanCache, every mutable buffer is this worker's, so the
    // analysis bytes are independent of worker count.
    analyzer.Finish(scratch, out.commit.analysis);
  }

  out.commit.estimator = analyzer.ExportState().estimator;
  out.commit.block = target.block;
  out.commit.quarantined = quarantined;
  out.commit.delta = delta;
  out.commit.delta.probes = Subtract(chain.accounting(), accounting_before);
  out.commit.rounds_processed = rounds_processed;
  out.final_vt = logger ? logger->virtual_time()
                        : (tracer ? tracer->virtual_time() : -1);
  out.log_text = std::move(text_buf).str();
  out.log_jsonl = std::move(jsonl_buf).str();
  if (tracer) out.spans = tracer->spans();
  return out;
}

}  // namespace

int HardwareWorkers() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

CampaignOutcome RunParallelCampaign(std::vector<BlockTarget> targets,
                                    const ShardFactory& factory,
                                    std::int64_t n_rounds,
                                    const SupervisorConfig& config,
                                    const ParallelConfig& parallel) {
  CampaignLedger ledger{targets.size(), config.analyzer.availability};

  const std::uint64_t fingerprint =
      CampaignFingerprint(targets, n_rounds, config.seed, config.analyzer);

  const obs::Context& obs = config.obs;
  SupervisorMetrics metrics{obs};
  const bool deterministic =
      obs.log == nullptr || obs.log->config().deterministic;
  // Wall-derived values (rounds/sec) never reach deterministic sinks or
  // campaign state, exactly as in the sequential supervisor.
  const auto wall_start =
      std::chrono::steady_clock::now();  // sleeplint: allow(no-wallclock)
  const auto campaign_span = obs.Span("campaign");
  if (metrics.blocks_total != nullptr) {
    metrics.blocks_total->Set(static_cast<double>(targets.size()));
  }
  if (obs.Logs(obs::Level::kInfo)) {
    obs.log->Write(obs::Level::kInfo, "campaign.start",
                   {{"blocks", static_cast<std::uint64_t>(targets.size())},
                    {"rounds", n_rounds},
                    {"seed", config.seed},
                    {"fingerprint", fingerprint},
                    {"checkpointing", !config.checkpoint_path.empty()}});
  }

  storage::Env& base_env =
      config.env != nullptr ? *config.env : storage::RealEnvInstance();
  // Instrumentation wraps *outside* any FaultyEnv the caller injected, so
  // failpoint ordinals (and thus crash-sweep censuses) are unchanged. The
  // wall clock is only injected for non-deterministic runs; without it no
  // latency histogram exists and exposition stays byte-stable.
  storage::InstrumentedEnv env{base_env, obs,
                               deterministic
                                   ? storage::InstrumentedEnv::NowNsFn{}
                                   : MonotonicNowNs};
  CheckpointStore store{env, config.checkpoint_path,
                        config.checkpoint_keep, config.checkpoint_format};
  // Wall nanoseconds spent inside checkpoint saves — the numerator of the
  // live durability-tax readout in /statusz.
  std::atomic<std::uint64_t> checkpoint_wall_ns{0};

  std::size_t first_block = 0;
  if (!config.checkpoint_path.empty()) {
    RecoveryEvents recovery;
    auto checkpoint = store.Load(fingerprint, recovery);
    ledger.NoteRecovery(recovery);
    if (recovery.generations_discarded > 0) {
      if (metrics.corrupt_sections != nullptr) {
        metrics.corrupt_sections->Inc(
            static_cast<double>(recovery.corrupt_sections));
      }
      if (metrics.generations_discarded != nullptr) {
        metrics.generations_discarded->Inc(
            static_cast<double>(recovery.generations_discarded));
      }
      if (metrics.checkpoint_recoveries != nullptr &&
          recovery.recoveries > 0) {
        metrics.checkpoint_recoveries->Inc(
            static_cast<double>(recovery.recoveries));
      }
      const auto level =
          recovery.recoveries > 0 ? obs::Level::kWarn : obs::Level::kError;
      if (obs.Logs(level)) {
        obs.log->Write(level, "checkpoint.recover",
                       {{"path", config.checkpoint_path},
                        {"recovered", recovery.recoveries > 0},
                        {"corrupt_sections", recovery.corrupt_sections},
                        {"generations_discarded",
                         recovery.generations_discarded}});
      }
    }
    // Parallel checkpoints are always exact block prefixes; anything
    // with in-flight analyzer state or a captured transport stream came
    // from a mid-block sequential snapshot and is refused (resuming it
    // block-granularly would double-count the partial rounds).
    if (checkpoint &&
        checkpoint->completed.size() == checkpoint->next_block &&
        checkpoint->next_block <= targets.size() &&
        !checkpoint->has_inflight && checkpoint->transport_state.empty()) {
      first_block = checkpoint->next_block;
      ledger.AdoptCheckpoint(*checkpoint);
      if (metrics.resumes != nullptr) metrics.resumes->Inc();
      if (obs.Logs(obs::Level::kInfo)) {
        obs.log->Write(
            obs::Level::kInfo, "checkpoint.resume",
            {{"path", config.checkpoint_path},
             {"fingerprint", fingerprint},
             {"next_block", static_cast<std::uint64_t>(first_block)},
             {"inflight", false},
             {"inflight_round", std::int64_t{0}}});
      }
    }
  }

  const auto emit_done = [&] {
    if (obs.Logs(obs::Level::kInfo)) {
      const auto counts = ledger.counts_snapshot();
      const auto stats = ledger.stats_snapshot();
      obs.log->Write(
          obs::Level::kInfo, "campaign.done",
          {{"blocks", static_cast<std::uint64_t>(ledger.blocks_done())},
           {"strict", counts.strict},
           {"relaxed", counts.relaxed},
           {"non_diurnal", counts.non_diurnal},
           {"skipped", counts.skipped},
           {"rounds_attempted", stats.rounds_attempted},
           {"rounds_failed", stats.rounds_failed},
           {"retries", stats.retries},
           {"quarantined", stats.quarantined_blocks},
           {"resumed", stats.resumed_from_checkpoint}});
    }
  };

  if (first_block >= targets.size()) {
    emit_done();
    return ledger.TakeOutcome();
  }

  const std::size_t remaining = targets.size() - first_block;
  const int requested =
      parallel.workers > 0 ? parallel.workers : HardwareWorkers();
  const std::size_t n_workers =
      std::min(static_cast<std::size_t>(std::max(requested, 1)), remaining);

  ObsShape shape;
  shape.log = obs.log != nullptr;
  if (shape.log) {
    shape.log_config = obs.log->config();
    shape.text = obs.log->has_text_sink();
    shape.jsonl = obs.log->has_jsonl_sink();
  }
  shape.metrics = obs.metrics != nullptr;
  shape.tracer = obs.tracer != nullptr;
  if (shape.tracer) {
    shape.trace_deterministic = obs.tracer->config().deterministic;
  }

  WorkQueue queue{n_workers, first_block, targets.size()};
  CompletionQueue completions;
  std::atomic<bool> stop{false};

  std::vector<std::unique_ptr<ShardChain>> chains;
  chains.reserve(n_workers);
  for (std::size_t w = 0; w < n_workers; ++w) chains.push_back(factory(w));

  // Per-worker live runtime counters for /statusz; relaxed atomics,
  // never folded into campaign results or deterministic telemetry.
  std::vector<std::atomic<std::uint64_t>> blocks_run(n_workers);

  std::vector<std::thread> pool;
  pool.reserve(n_workers);
  for (std::size_t w = 0; w < n_workers; ++w) {
    pool.emplace_back([&, w] {
      auto& chain = *chains[w];
      AnalysisScratch scratch;  // reused for every block this worker runs
      while (!stop.load(std::memory_order_relaxed)) {
        const auto index = queue.Pop(w);
        if (!index) break;
        completions.Push(
            RunBlock(*index, targets[*index], chain, config, n_rounds,
                     shape, scratch));
        blocks_run[w].fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Joins the pool on every exit from this frame — including a crash
  // failpoint (util::CrashInjected) unwinding out of a checkpoint save
  // in the commit loop below. Without this, ~thread() on a joinable
  // worker would turn the simulated power cut into std::terminate.
  struct PoolJoiner {
    std::atomic<bool>& stop;
    std::vector<std::thread>& pool;
    ~PoolJoiner() {
      stop.store(true, std::memory_order_relaxed);
      for (auto& thread : pool) {
        if (thread.joinable()) thread.join();
      }
    }
  } join_pool{stop, pool};

  // Declared after the joiner so the provider detaches before any worker
  // state it reads (queue, blocks_run, ledger) is torn down. The provider
  // is a pure reader: it takes only the hub's and the ledger's locks
  // (lock order hub -> ledger) and never writes campaign state.
  StatusHub::Registration status_registration;
  if (config.status != nullptr) {
    const std::size_t blocks_total = targets.size();
    const obs::Registry* registry = obs.metrics;
    status_registration = config.status->Attach(
        [&ledger, &queue, &blocks_run, &checkpoint_wall_ns, wall_start,
         blocks_total, registry, n_workers] {
          CampaignStatus status;
          ledger.FillStatus(status);
          status.blocks_total = blocks_total;
          const auto elapsed_ns =
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::
                      now()  // sleeplint: allow(no-wallclock)
                  - wall_start)
                  .count();
          if (elapsed_ns > 0) {
            status.rounds_per_sec = static_cast<double>(status.rounds_done) *
                                    1e9 / static_cast<double>(elapsed_ns);
            status.durability_tax_pct =
                100.0 *
                static_cast<double>(
                    checkpoint_wall_ns.load(std::memory_order_relaxed)) /
                static_cast<double>(elapsed_ns);
          }
          status.shards.reserve(n_workers);
          for (std::size_t w = 0; w < n_workers; ++w) {
            ShardRuntime shard;
            shard.worker = w;
            shard.blocks_run = blocks_run[w].load(std::memory_order_relaxed);
            shard.steals = queue.steals(w);
            shard.idle_polls = queue.idle_polls(w);
            status.shards.push_back(shard);
          }
          if (registry != nullptr) {
            status.quantiles = CollectHistogramStatus(*registry);
          }
          return status;
        });
  }

  bool stopped = false;
  for (std::size_t i = first_block; i < targets.size(); ++i) {
    BlockResult result = completions.WaitFor(i);
    const std::int64_t processed_rounds =
        ledger.CommitBlock(std::move(result.commit));

    // Merge this block's buffered telemetry — registry first (values),
    // then log bytes, then spans — and advance the campaign clock to the
    // block's final virtual time so the coordinator's own records (the
    // checkpoint write, the heartbeat) are stamped where the sequential
    // loop would stamp them.
    if (obs.metrics != nullptr && result.registry != nullptr) {
      obs.metrics->MergeFrom(*result.registry);
    }
    if (obs.log != nullptr) {
      obs.log->AppendRaw(result.log_text, result.log_jsonl);
    }
    if (obs.tracer != nullptr) obs.tracer->Graft(result.spans);
    if (result.final_vt >= 0) obs.SetVirtualTime(result.final_vt);
    // The gauge merge is last-wins, so restore the campaign-level gauges
    // the block-local registries know nothing about.
    if (metrics.blocks_done != nullptr) {
      metrics.blocks_done->Set(static_cast<double>(ledger.blocks_done()));
    }
    if (metrics.blocks_total != nullptr) {
      metrics.blocks_total->Set(static_cast<double>(targets.size()));
    }

    const bool boundary_due =
        config.checkpoint_every_blocks <= 1 ||
        (i + 1) % static_cast<std::size_t>(config.checkpoint_every_blocks) ==
            0 ||
        i + 1 == targets.size();  // completion always checkpoints
    if (!config.checkpoint_path.empty() && boundary_due) {
      Checkpoint checkpoint = ledger.BuildCheckpointSnapshot(
          fingerprint, i + 1, /*has_inflight=*/false, 0, 0, nullptr);
      const auto span = obs.Span("checkpoint.write");
      const std::uint64_t save_start = MonotonicNowNs();
      const auto error = store.Save(checkpoint);
      checkpoint_wall_ns.fetch_add(MonotonicNowNs() - save_start,
                                   std::memory_order_relaxed);
      const bool ok = error.ok();
      ledger.NoteCheckpointWritten(ok);
      if (ok && metrics.checkpoints != nullptr) metrics.checkpoints->Inc();
      const auto level = ok ? obs::Level::kDebug : obs::Level::kError;
      if (obs.Logs(level)) {
        obs.log->Write(level, "checkpoint.write",
                       {{"path", config.checkpoint_path},
                        {"fingerprint", fingerprint},
                        {"next_block", static_cast<std::uint64_t>(i + 1)},
                        {"inflight", false},
                        {"ok", ok},
                        {"error", ok ? std::string{} : error.ToString()}});
      }
    }

    if (config.stop_after_rounds > 0 &&
        processed_rounds >= config.stop_after_rounds) {
      ledger.NoteStoppedEarly();
      if (obs.Logs(obs::Level::kInfo)) {
        obs.log->Write(obs::Level::kInfo, "campaign.stopped",
                       {{"blocks_done", static_cast<std::uint64_t>(i + 1)},
                        {"rounds_done", processed_rounds},
                        {"reason", "stop_after_rounds"}});
      }
      stopped = true;
      break;
    }

    CampaignProgress heartbeat;
    heartbeat.blocks_done = i + 1;
    heartbeat.blocks_total = targets.size();
    heartbeat.rounds_done = processed_rounds;
    heartbeat.quarantined = ledger.stats_snapshot().quarantined_blocks;
    const double elapsed_sec =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now()  // sleeplint: allow(no-wallclock)
            - wall_start)
            .count();
    if (elapsed_sec > 0.0) {
      heartbeat.rounds_per_sec =
          static_cast<double>(heartbeat.rounds_done) / elapsed_sec;
    }
    if (!config.checkpoint_path.empty() &&
        config.checkpoint_every_rounds > 0) {
      heartbeat.rounds_to_checkpoint =
          config.checkpoint_every_rounds -
          heartbeat.rounds_done % config.checkpoint_every_rounds;
    }
    if (!deterministic && metrics.rounds_per_sec != nullptr) {
      metrics.rounds_per_sec->Set(heartbeat.rounds_per_sec);
    }
    if (obs.Logs(obs::Level::kDebug)) {
      obs.log->Write(
          obs::Level::kDebug, "campaign.heartbeat",
          {{"blocks_done", static_cast<std::uint64_t>(heartbeat.blocks_done)},
           {"blocks_total",
            static_cast<std::uint64_t>(heartbeat.blocks_total)},
           {"rounds_done", heartbeat.rounds_done},
           {"quarantined", heartbeat.quarantined}});
    }
    if (config.progress) config.progress(heartbeat);
  }

  stop.store(true, std::memory_order_relaxed);
  for (auto& thread : pool) {
    if (thread.joinable()) thread.join();
  }

  if (!stopped) emit_done();
  return ledger.TakeOutcome();
}

}  // namespace sleepwalk::core
