// Resilient campaign supervisor.
//
// RunCampaign assumes a perfect transport and an uninterrupted process;
// a real A_12w-style campaign gets neither. The supervisor hardens the
// same per-block measurement loop with:
//   * retry with exponential backoff — a round aborted by a
//     net::TransportError is rolled back (prober cursor + belief) and
//     re-run, with deterministic jittered delays, capped;
//   * quarantine — a block whose rounds keep failing after retries is
//     abandoned and accounted under DiurnalCounts::skipped; the campaign
//     degrades to partial results instead of aborting;
//   * checkpoint/resume — the full mutable state is periodically written
//     to a versioned snapshot (core/checkpoint.h); a killed campaign
//     resumed from its latest checkpoint produces a byte-identical
//     DatasetResult to an uninterrupted run;
//   * fault-plan hooks — scheduled prober restarts (the §4 artifact) and
//     clock-gap windows (rounds the prober sleeps through), which the
//     cleaning stage (§2.2) then has to repair.
// Every recovery action is counted in a report::ResilienceStats so
// experiments can state how much signal survived.
#ifndef SLEEPWALK_CORE_SUPERVISOR_H_
#define SLEEPWALK_CORE_SUPERVISOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sleepwalk/core/block_store.h"
#include "sleepwalk/core/checkpoint.h"
#include "sleepwalk/core/pipeline.h"
#include "sleepwalk/obs/context.h"
#include "sleepwalk/report/resilience.h"
#include "sleepwalk/storage/file.h"

namespace sleepwalk::core {

class StatusHub;  // core/status.h

/// Retry-with-backoff policy for transport errors.
struct RetryConfig {
  int max_attempts = 4;         ///< total tries per round (1 = no retry)
  double base_delay_sec = 0.5;  ///< first backoff delay
  double max_delay_sec = 30.0;  ///< exponential growth cap
  double jitter = 0.5;  ///< +/- fraction of the delay, deterministic
};

/// Supervisor knobs. Defaults: retries on, quarantine after 3
/// consecutively failed rounds, no checkpointing, no injected faults.
struct SupervisorConfig {
  AnalyzerConfig analyzer;
  std::uint64_t seed = 0x51ee9;
  RetryConfig retry;
  /// Consecutive failed rounds (after retries) before a block is
  /// quarantined; <= 0 disables quarantine.
  int quarantine_after_failures = 3;

  /// Checkpoint snapshot path; empty disables checkpointing. When the
  /// file already holds a checkpoint with a matching fingerprint, Run()
  /// resumes from it.
  std::string checkpoint_path;
  /// Global rounds between checkpoints (0 = only at block boundaries).
  std::int64_t checkpoint_every_rounds = 0;
  /// Block boundaries between checkpoints (<= 1 = every boundary). A
  /// checkpoint re-serializes every completed analysis, so per-block
  /// saves cost O(blocks^2) over a campaign; raising the stride trades
  /// redo-work after a crash for durability overhead (bench/
  /// checkpoint_io measures the trade). Campaign completion always
  /// writes a final checkpoint whatever the stride.
  int checkpoint_every_blocks = 1;
  /// Checkpoint generations retained as hard links <path>.g<N> alongside
  /// the primary file; when the primary is corrupt on resume, Run()
  /// self-heals from the newest intact generation. <= 1 keeps only the
  /// primary file (no rotation, no self-healing).
  int checkpoint_keep = 3;
  /// On-disk checkpoint encoding: kCheckpointVersionColumnar (3, the
  /// page-aligned columnar container loaded zero-copy through
  /// storage::Env::Map — the right choice at paper scale, and the
  /// default) or kCheckpointVersion (2, row-oriented; campaigns pinned
  /// to the legacy layout set it explicitly). Resume reads either
  /// format regardless of this setting.
  std::uint32_t checkpoint_format = kCheckpointVersionColumnar;
  /// Filesystem seam all persistence goes through; null means the real
  /// POSIX filesystem. Tests inject storage::MemEnv or storage::FaultyEnv
  /// here to prove crash safety.
  storage::Env* env = nullptr;

  /// Injected prober restarts (fault plan) in campaign round numbers.
  std::vector<std::int64_t> forced_restart_rounds;
  /// Half-open round ranges [first, last) the prober sleeps through.
  std::vector<std::pair<std::int64_t, std::int64_t>> gap_round_windows;

  /// Stop (as if SIGKILLed at a round boundary) after this many globally
  /// processed rounds, writing a final checkpoint; 0 = run to completion.
  /// Exercised by crash/resume tests and usable for cooperative
  /// time-slicing.
  std::int64_t stop_after_rounds = 0;

  /// Called with each backoff delay; wire a real sleep for live probing,
  /// leave empty for simulation (delays are accounted, not slept).
  std::function<void(double)> sleeper;
  /// Heartbeat callback, invoked after each finished block with the full
  /// CampaignProgress; legacy (blocks_done, total) callables still bind
  /// (see core::ProgressFn).
  ProgressFn progress;

  /// Live-status rendezvous for the admin plane (serve/); null = no
  /// status publishing. The campaign attaches a snapshot provider for
  /// the duration of the run; the hub must outlive the call. Read-only
  /// observation: attaching a hub changes no campaign, checkpoint, or
  /// telemetry byte (enforced with the obs inertness tests).
  StatusHub* status = nullptr;

  /// Telemetry handle (null-object by default — a campaign without
  /// sinks pays one branch per instrumentation point). Every recovery
  /// action (retry, backoff, quarantine, checkpoint write/resume) is
  /// logged and counted; the campaign clock advances with virtual round
  /// time. Guaranteed inert: results and checkpoints are byte-identical
  /// whatever is attached here.
  obs::Context obs;
};

/// A campaign's results plus its resilience accounting. `stats.probes`
/// stays empty unless the caller merges transport-level accounting (for
/// example faults::FaultyTransport::accounting()).
struct CampaignOutcome {
  DatasetResult result;
  report::ResilienceStats stats;
  std::vector<net::Prefix24> quarantined;
  RecoveryEvents recovery;     ///< checkpoint corruption/self-heal events
  bool resumed = false;        ///< picked up from a checkpoint
  bool stopped_early = false;  ///< hit stop_after_rounds; result partial
  /// Columnar mirror of the outcome: row i is result.analyses[i]'s
  /// verdict and final estimator state (core/block_store.h), sized to
  /// the full target list (rows past analyses.size() are defaults when
  /// the campaign stopped early). Estimator columns for resumed blocks
  /// are exact when the checkpoint was v3 (v2 never persisted them).
  BlockStore store;
};

/// Runs (or resumes) a hardened campaign over `targets` through
/// `transport` for `n_rounds` rounds per block.
CampaignOutcome RunResilientCampaign(std::vector<BlockTarget> targets,
                                     net::Transport& transport,
                                     std::int64_t n_rounds,
                                     const SupervisorConfig& config = {});

}  // namespace sleepwalk::core

#endif  // SLEEPWALK_CORE_SUPERVISOR_H_
