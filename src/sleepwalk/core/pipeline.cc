#include "sleepwalk/core/pipeline.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>

#include "sleepwalk/core/campaign_ledger.h"
#include "sleepwalk/core/dataset.h"
#include "sleepwalk/core/dataset_columnar.h"
#include "sleepwalk/core/parallel_executor.h"
#include "sleepwalk/core/supervisor.h"

namespace sleepwalk::core {

DatasetResult RunCampaign(std::vector<BlockTarget> targets,
                          net::Transport& transport, std::int64_t n_rounds,
                          const AnalyzerConfig& config, std::uint64_t seed,
                          const ProgressFn& progress) {
  // The plain campaign is the resilient one with recovery switched off:
  // no checkpointing, no injected faults, and on a well-behaved transport
  // the retry/quarantine paths never trigger.
  SupervisorConfig supervisor;
  supervisor.analyzer = config;
  supervisor.seed = seed;
  supervisor.progress = progress;
  return RunResilientCampaign(std::move(targets), transport, n_rounds,
                              supervisor)
      .result;
}

std::vector<BlockAnalysis> ReanalyzeDataset(const Dataset& dataset,
                                            const AnalyzerConfig& config,
                                            int workers) {
  const std::size_t n = dataset.blocks.size();
  std::vector<BlockAnalysis> analyses(n);
  if (n == 0) return analyses;
  const std::size_t n_workers = std::min<std::size_t>(
      static_cast<std::size_t>(workers > 0 ? workers : HardwareWorkers()), n);
  if (n_workers <= 1) {
    AnalysisScratch scratch;
    for (std::size_t i = 0; i < n; ++i) {
      Reanalyze(dataset.blocks[i], config, scratch, analyses[i]);
    }
    return analyses;
  }
  // Classification is a pure function of one stored series, so a shared
  // claim counter plus by-index writes into the pre-sized vector needs
  // no further synchronization and keeps the output order fixed. Each
  // worker owns one AnalysisScratch for its whole run, so the loop
  // allocates only while buffer capacities warm up.
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(n_workers);
  for (std::size_t w = 0; w < n_workers; ++w) {
    pool.emplace_back([&] {
      AnalysisScratch scratch;
      while (true) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        Reanalyze(dataset.blocks[i], config, scratch, analyses[i]);
      }
    });
  }
  for (auto& thread : pool) thread.join();
  return analyses;
}

DiurnalCounts ReanalyzeDatasetColumnar(const ColumnarDatasetView& view,
                                       const AnalyzerConfig& config,
                                       int workers) {
  const std::size_t n = view.size();
  DiurnalCounts counts;
  if (n == 0) return counts;
  const std::size_t n_workers = std::min<std::size_t>(
      static_cast<std::size_t>(workers > 0 ? workers : HardwareWorkers()), n);
  if (n_workers <= 1) {
    AnalysisScratch scratch;
    BlockAnalysis analysis;
    for (std::size_t i = 0; i < n; ++i) {
      ReanalyzeColumnar(view, i, config, scratch, analysis);
      ClassifyAnalysis(analysis, /*quarantined=*/false, counts);
    }
    return counts;
  }
  // Same claim-counter fan-out as ReanalyzeDataset, but each worker
  // folds into a private DiurnalCounts and reuses ONE BlockAnalysis —
  // nothing per-block is ever materialized, which is what lets the
  // 1M-block sweep run in O(workers) memory over the mapping.
  std::atomic<std::size_t> next{0};
  std::vector<DiurnalCounts> partial(n_workers);
  std::vector<std::thread> pool;
  pool.reserve(n_workers);
  for (std::size_t w = 0; w < n_workers; ++w) {
    pool.emplace_back([&, w] {
      AnalysisScratch scratch;
      BlockAnalysis analysis;
      while (true) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        ReanalyzeColumnar(view, i, config, scratch, analysis);
        ClassifyAnalysis(analysis, /*quarantined=*/false, partial[w]);
      }
    });
  }
  for (auto& thread : pool) thread.join();
  for (const auto& p : partial) {
    counts.strict += p.strict;
    counts.relaxed += p.relaxed;
    counts.non_diurnal += p.non_diurnal;
    counts.skipped += p.skipped;
  }
  return counts;
}

}  // namespace sleepwalk::core
