#include "sleepwalk/core/pipeline.h"

#include <utility>

namespace sleepwalk::core {

DatasetResult RunCampaign(
    std::vector<BlockTarget> targets, net::Transport& transport,
    std::int64_t n_rounds, const AnalyzerConfig& config, std::uint64_t seed,
    const std::function<void(std::size_t, std::size_t)>& progress) {
  DatasetResult result;
  result.analyses.reserve(targets.size());

  for (std::size_t i = 0; i < targets.size(); ++i) {
    auto& target = targets[i];
    BlockAnalyzer analyzer{target.block, std::move(target.ever_active),
                           target.initial_availability,
                           seed ^ target.block.Index(), config};
    analyzer.RunCampaign(transport, n_rounds);
    auto analysis = analyzer.Finish();

    if (!analysis.probed || analysis.observed_days < 2) {
      ++result.counts.skipped;
    } else {
      switch (analysis.diurnal.classification) {
        case Diurnality::kStrictlyDiurnal:
          ++result.counts.strict;
          break;
        case Diurnality::kRelaxedDiurnal:
          ++result.counts.relaxed;
          break;
        case Diurnality::kNonDiurnal:
          ++result.counts.non_diurnal;
          break;
      }
    }
    result.analyses.push_back(std::move(analysis));
    if (progress) progress(i + 1, targets.size());
  }
  return result;
}

}  // namespace sleepwalk::core
