#include "sleepwalk/core/pipeline.h"

#include <utility>

#include "sleepwalk/core/supervisor.h"

namespace sleepwalk::core {

DatasetResult RunCampaign(std::vector<BlockTarget> targets,
                          net::Transport& transport, std::int64_t n_rounds,
                          const AnalyzerConfig& config, std::uint64_t seed,
                          const ProgressFn& progress) {
  // The plain campaign is the resilient one with recovery switched off:
  // no checkpointing, no injected faults, and on a well-behaved transport
  // the retry/quarantine paths never trigger.
  SupervisorConfig supervisor;
  supervisor.analyzer = config;
  supervisor.seed = seed;
  supervisor.progress = progress;
  return RunResilientCampaign(std::move(targets), transport, n_rounds,
                              supervisor)
      .result;
}

}  // namespace sleepwalk::core
