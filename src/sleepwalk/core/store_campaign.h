// Paper-scale campaign runner over the columnar BlockStore.
//
// The full measurement pipeline (core/parallel_executor.h) carries a
// prober, retry machinery, and per-block analysis — right for 400
// blocks, far too heavy to size the system at the paper's 3.7M. This
// runner drives ONLY the per-round estimator + probe-accounting state
// through BlockStore::ObserveRound, the batched kernel, which is the
// load that actually dominates at scale.
//
// Determinism is structural: each block's observation for round r is a
// pure function of (seed, prefix_index, r), and blocks are independent,
// so any partition of the block range across workers produces the same
// final columns byte-for-byte. Workers own contiguous ranges (no
// stealing, no false sharing: ranges are long and columns are
// 64-byte-aligned); the only synchronization is the join at each
// checkpoint-segment boundary.
//
// Checkpoint/resume: at every segment boundary the store serializes as
// an SLCK v3 snapshot (block_store.h) written via storage::AtomicWrite
// and re-loaded through the storage::Env::Map zero-copy seam. A run
// killed at a boundary and resumed — at ANY worker count — finishes
// with columns byte-identical to an uninterrupted run, which
// bench/parallel_scaling and the block_store tests verify by digest
// and by final-snapshot byte equality.
#ifndef SLEEPWALK_CORE_STORE_CAMPAIGN_H_
#define SLEEPWALK_CORE_STORE_CAMPAIGN_H_

#include <cstdint>
#include <string>

#include "sleepwalk/core/block_store.h"
#include "sleepwalk/core/store_analyzer.h"
#include "sleepwalk/storage/file.h"
#include "sleepwalk/util/rng.h"

namespace sleepwalk::core {

/// Scale-runner knobs. Defaults: serial, no checkpointing.
struct StoreCampaignConfig {
  std::size_t n_blocks = 0;
  std::int64_t n_rounds = 0;
  std::uint64_t seed = 0x51ee9;
  int workers = 1;
  AvailabilityConfig availability;

  /// Snapshot path; empty disables checkpointing (and resume).
  std::string checkpoint_path;
  /// Rounds per checkpoint segment (<= 0: only the final snapshot).
  std::int64_t checkpoint_every_rounds = 0;
  /// Storage seam; null = the real POSIX filesystem.
  storage::Env* env = nullptr;

  /// Stop (as if SIGKILLed) at the first segment boundary at or after
  /// this many rounds, leaving the boundary snapshot on disk;
  /// 0 = run to completion. The crash/resume tests' kill switch.
  std::int64_t stop_after_rounds = 0;

  /// Per-block A-hat_s ring capacity (samples retained for the
  /// end-of-campaign classify sweep). 0 = estimator-only (PR 9
  /// behaviour): no series columns, no classification possible.
  std::int32_t series_capacity = 0;
  /// Run the full analyze+classify sweep (core/store_analyzer.h) over
  /// the columns when the last round completes, before the final
  /// checkpoint — so the final snapshot carries the verdicts and a
  /// killed+resumed run stays byte-identical to an uninterrupted one.
  bool classify = false;
  /// Sweep knobs (schedule/diurnal/stationarity/screen).
  StoreAnalyzerConfig analyzer;
};

/// What a (possibly resumed, possibly killed) store campaign reports.
struct StoreCampaignOutcome {
  bool resumed = false;
  bool stopped_early = false;
  std::int64_t rounds_done = 0;
  std::uint64_t checkpoints_written = 0;
  std::uint64_t digest = 0;  ///< BlockStore::Digest() of the final state
  std::string error;         ///< first storage failure, empty when clean
  /// Classify-sweep outcome (all zero unless config.classify ran this
  /// process; a resumed-complete campaign's verdicts live in the
  /// snapshot columns, not here).
  StoreAnalyzeStats analyze;
};

/// The deterministic synthetic observation for (seed, block, round):
/// what a Trinocular round against a simulated block would report, as a
/// pure hash so scale benches never pay transport costs. Exposed for
/// tests (the resume proof replays it).
inline RoundSample SyntheticRoundSample(std::uint64_t seed,
                                        std::uint32_t prefix_index,
                                        std::int64_t round) noexcept {
  const std::uint64_t hash =
      MixHash(seed, prefix_index, static_cast<std::uint64_t>(round));
  // 1..8 probes; positives biased by a per-block "availability" nibble
  // plus a coarse diurnal swing so estimator trajectories look like
  // the paper's rather than white noise.
  const auto total = static_cast<std::int32_t>(1 + (hash & 0x7));
  const auto level = static_cast<std::int32_t>((hash >> 3) & 0xf);
  const auto day_phase = static_cast<std::int32_t>(
      (static_cast<std::uint64_t>(round) + (hash >> 7)) % 131);
  std::int32_t positives =
      (level + (day_phase < 66 ? 4 : 0)) * total / 24;
  if (positives > total) positives = total;
  return {positives, total};
}

/// Per-block seed-time attributes, exposed so the scalar reference in
/// tests/benches can reconstruct exactly what SeedStore planted.
inline double SyntheticInitialAvailability(std::uint64_t seed,
                                           std::uint32_t prefix_index) noexcept {
  const std::uint64_t hash = MixHash(seed ^ 0xb10c5eedULL, prefix_index);
  return static_cast<double>(hash & 0xffff) / 65536.0;
}

/// Synthetic E(b) size: 16..79 ever-active addresses, comfortably past
/// the Trinocular probing floor and varied enough to exercise the
/// stationarity scale factor.
inline std::int32_t SyntheticEverActive(std::uint64_t seed,
                                        std::uint32_t prefix_index) noexcept {
  const std::uint64_t hash = MixHash(seed ^ 0xb10c5eedULL, prefix_index);
  return 16 + static_cast<std::int32_t>((hash >> 16) & 0x3f);
}

/// Identity of a store campaign; snapshots from a different identity
/// are refused on resume.
std::uint64_t StoreCampaignFingerprint(const StoreCampaignConfig& config);

/// Runs (or resumes) the campaign, leaving the final state in `store`.
StoreCampaignOutcome RunStoreCampaign(BlockStore& store,
                                      const StoreCampaignConfig& config);

}  // namespace sleepwalk::core

#endif  // SLEEPWALK_CORE_STORE_CAMPAIGN_H_
