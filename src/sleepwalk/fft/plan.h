// Plan-based spectral kernels: precompute everything a transform of one
// size ever needs, once, and reuse it for every block in the campaign.
//
// Every /24 in a campaign ends in the same §2.2 spectral classification,
// and all blocks share one series length N (the trimmed whole-day grid).
// The plan-free kernels in fft.h rebuild the Bluestein chirp, recompute
// FFT(b), derive twiddles through an error-accumulating `w *= wlen`
// recurrence, and heap-allocate three size-m buffers on every call. A
// `Plan` hoists all of that into construction:
//   * the bit-reversal permutation and per-stage twiddle tables (each
//     factor evaluated directly by cos/sin, no recurrence drift),
//   * for non-power-of-two N, the Bluestein chirp w_k = exp(-i*pi*k^2/N)
//     and the frequency-domain kernel FFT(b) — so each transform costs
//     two size-m FFTs instead of three plus a chirp recomputation,
//   * for even N, a packed real-input path: N reals fold into an N/2
//     complex transform plus an O(N) twiddle unpack, halving the
//     dominant cost of `ForwardReal`.
//
// Plans are immutable after construction; all per-call working memory
// lives in a caller-owned FftScratch, so one shared plan serves any
// number of threads while each worker reuses its own scratch and the
// steady-state transform performs zero heap allocations. The process-
// wide PlanCache hands out shared_ptr<const Plan> under a mutex; plan
// construction is deterministic, so every thread observes bitwise-
// identical tables regardless of who built them (the byte-identity
// invariant of DESIGN.md §9 is preserved — see §10 for the argument).
#ifndef SLEEPWALK_FFT_PLAN_H_
#define SLEEPWALK_FFT_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "sleepwalk/fft/fft.h"
#include "sleepwalk/util/sync.h"

namespace sleepwalk::fft {

class Plan;

/// Per-caller working memory for plan execution. Buffers grow to the
/// high-water mark of the sizes they serve and are then reused, so a
/// worker that analyzes same-length series allocates only on its first
/// block. Not thread-safe: one FftScratch per worker thread.
struct FftScratch {
  std::vector<Complex> conv;    ///< Bluestein convolution buffer (size m)
  std::vector<Complex> packed;  ///< real-input packing / complexified input
  std::vector<Complex> half;    ///< half-size transform output (real path)
  std::vector<Complex> coeffs;  ///< DFT coefficients (spectrum pipeline)
  std::vector<double> real;     ///< preprocessed real series (spectrum)
  /// Last plan this scratch executed with; callers that loop over
  /// same-length series skip the PlanCache mutex entirely.
  std::shared_ptr<const Plan> plan;
};

/// An immutable transform plan for one size N. Thread-safe to share:
/// execution only reads the tables and writes caller-owned buffers.
class Plan {
 public:
  /// Builds every table needed for size-n transforms. Throws
  /// std::invalid_argument for n == 0 and std::length_error when the
  /// Bluestein extension 2n-1 (or its power-of-two ceiling) would
  /// overflow std::size_t.
  explicit Plan(std::size_t n);

  std::size_t size() const noexcept { return n_; }

  /// True when n is a power of two (direct radix-2, no Bluestein).
  bool radix2() const noexcept { return chirp_.empty(); }

  /// Size of the underlying radix-2 kernel: n for power-of-two plans,
  /// the Bluestein convolution length m otherwise.
  std::size_t kernel_size() const noexcept { return kernel_.n; }

  /// Forward DFT (paper convention, unnormalized) of `in` into `out`.
  /// in.size() must equal size(). `out` is resized; with warm capacity
  /// the call performs no heap allocation.
  void Forward(std::span<const Complex> in, FftScratch& scratch,
               std::vector<Complex>& out) const;

  /// Forward DFT of real input. Even sizes fold into one size-n/2
  /// complex transform plus an O(n) unpack; the output is the full
  /// n-point spectrum with exact conjugate symmetry.
  void ForwardReal(std::span<const double> in, FftScratch& scratch,
                   std::vector<Complex>& out) const;

  /// Normalized inverse DFT (Inverse(Forward(x)) == x up to rounding).
  /// Single-pass: inverse twiddles are conjugated table reads and the
  /// Bluestein kernel conjugates in place — no conjugate-copy round
  /// trip like the plan-free fft::InversePlanless.
  void Inverse(std::span<const Complex> in, FftScratch& scratch,
               std::vector<Complex>& out) const;

 private:
  /// Radix-2 machinery for one power-of-two size: precomputed
  /// bit-reversal permutation and per-stage twiddle tables (stage with
  /// butterfly span `len` owns len/2 factors at offset len/2 - 1).
  struct Radix2Kernel {
    std::size_t n = 0;
    std::vector<std::uint32_t> bitrev;
    std::vector<Complex> twiddles;

    void Transform(std::span<Complex> data, bool inverse) const;
  };

  static Radix2Kernel MakeKernel(std::size_t n);

  /// Bluestein convolution shared by Forward/Inverse: `load` fills
  /// scratch.conv[0..n) with the chirp-premultiplied input.
  void BluesteinExecute(FftScratch& scratch, bool inverse,
                        std::vector<Complex>& out) const;

  std::size_t n_ = 0;
  Radix2Kernel kernel_;            ///< size n (radix2) or m (Bluestein)
  std::vector<Complex> chirp_;     ///< exp(-i*pi*k^2/n); empty when radix2
  std::vector<Complex> fft_b_;     ///< FFT of the Bluestein kernel (size m)
  std::vector<Complex> real_twiddles_;  ///< exp(-2*pi*i*k/n), k in [0, n/2]
  std::unique_ptr<const Plan> half_;    ///< size-n/2 sub-plan (even n >= 4)
};

/// Process-wide, thread-safe plan registry keyed by transform size.
/// Plans are built outside the lock (construction is trig-heavy) and
/// published under it; when two threads race to build the same size the
/// first insert wins and the duplicate is discarded — construction is
/// deterministic, so the discarded plan was bitwise identical anyway.
class PlanCache {
 public:
  /// The singleton used by the fft:: convenience entry points.
  static PlanCache& Global();

  /// Returns the shared plan for size n, building it on first request.
  std::shared_ptr<const Plan> Get(std::size_t n);

  /// Number of distinct sizes currently cached (test/diagnostic hook).
  std::size_t cached_plans() const;

 private:
  mutable util::Mutex mutex_;
  std::unordered_map<std::size_t, std::shared_ptr<const Plan>> plans_
      SLEEPWALK_GUARDED_BY(mutex_);
};

/// Shorthand for PlanCache::Global().Get(n).
std::shared_ptr<const Plan> GetPlan(std::size_t n);

}  // namespace sleepwalk::fft

#endif  // SLEEPWALK_FFT_PLAN_H_
