#include "sleepwalk/fft/plan.h"

#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>
#include <utility>

#include "sleepwalk/util/narrow.h"

namespace sleepwalk::fft {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

void CheckSize(std::size_t got, std::size_t want) {
  if (got != want) {
    throw std::invalid_argument("fft::Plan: input size does not match plan");
  }
}

}  // namespace

Plan::Radix2Kernel Plan::MakeKernel(std::size_t n) {
  Radix2Kernel kernel;
  kernel.n = n;
  if (n <= 1) return kernel;
  if (n > std::numeric_limits<std::uint32_t>::max()) {
    throw std::length_error("fft::Plan: kernel size exceeds bitrev range");
  }

  // Bit-reversal permutation, tabulated once with the same incremental
  // carry walk the in-place kernel used per call.
  kernel.bitrev.resize(n);
  kernel.bitrev[0] = 0;
  std::size_t j = 0;
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    kernel.bitrev[i] = util::CheckedNarrow<std::uint32_t>(j);
  }

  // Per-stage twiddles, every factor from its own cos/sin evaluation —
  // no `w *= wlen` recurrence, so stage len's last factor is as accurate
  // as its first. Stage with butterfly span `len` owns len/2 entries at
  // offset len/2 - 1 (= 1 + 2 + ... + len/4); total n - 1.
  kernel.twiddles.resize(n - 1);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    Complex* stage = kernel.twiddles.data() + (len / 2 - 1);
    const double step = -kTwoPi / static_cast<double>(len);
    for (std::size_t k = 0; k < len / 2; ++k) {
      const double angle = step * static_cast<double>(k);
      stage[k] = Complex{std::cos(angle), std::sin(angle)};
    }
  }
  return kernel;
}

void Plan::Radix2Kernel::Transform(std::span<Complex> data,
                                   bool inverse) const {
  const std::size_t size = n;
  if (size <= 1) return;

  for (std::size_t i = 1; i < size; ++i) {
    const std::size_t j = bitrev[i];
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= size; len <<= 1) {
    const Complex* stage = twiddles.data() + (len / 2 - 1);
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < size; i += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const Complex w = inverse ? std::conj(stage[k]) : stage[k];
        const Complex u = data[i + k];
        const Complex v = data[i + k + half] * w;
        data[i + k] = u + v;
        data[i + k + half] = u - v;
      }
    }
  }
}

Plan::Plan(std::size_t n) : n_(n) {
  if (n == 0) {
    throw std::invalid_argument("fft::Plan: size must be positive");
  }

  if (IsPowerOfTwo(n)) {
    kernel_ = MakeKernel(n);
  } else {
    if (n > std::numeric_limits<std::size_t>::max() / 2) {
      throw std::length_error(
          "fft::Plan: Bluestein extension 2n-1 overflows size_t");
    }
    const std::size_t m = detail::NextPowerOfTwoChecked(2 * n - 1);
    kernel_ = MakeKernel(m);

    // Chirp factors w_k = exp(-i*pi*k^2/n); the widened k^2 mod 2n keeps
    // the angle small (accuracy) and unwrapped (correctness at large n).
    chirp_.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
      const auto k2 = static_cast<double>(detail::ChirpIndex(k, n));
      const double angle = std::numbers::pi * k2 / static_cast<double>(n);
      chirp_[k] = Complex{std::cos(angle), -std::sin(angle)};
    }

    // Frequency-domain Bluestein kernel FFT(b), computed once here and
    // reused by every transform (the plan-free path recomputes it each
    // call — one of its three size-m FFTs).
    fft_b_.assign(m, Complex{});
    fft_b_[0] = std::conj(chirp_[0]);
    for (std::size_t k = 1; k < n; ++k) {
      fft_b_[k] = std::conj(chirp_[k]);
      fft_b_[m - k] = fft_b_[k];  // circular symmetry for negative lags
    }
    kernel_.Transform(fft_b_, /*inverse=*/false);
  }

  // Packed real-input path: even n folds into one n/2 complex transform
  // plus an O(n) twiddle unpack. n == 2 gains nothing over complexifying.
  if (n % 2 == 0 && n >= 4) {
    const std::size_t h = n / 2;
    real_twiddles_.resize(h);
    for (std::size_t k = 0; k < h; ++k) {
      const double angle = -kTwoPi * static_cast<double>(k) /
                           static_cast<double>(n);
      real_twiddles_[k] = Complex{std::cos(angle), std::sin(angle)};
    }
    half_ = std::make_unique<const Plan>(h);
  }
}

void Plan::BluesteinExecute(FftScratch& scratch, bool inverse,
                            std::vector<Complex>& out) const {
  const std::size_t m = kernel_.n;
  kernel_.Transform(scratch.conv, /*inverse=*/false);
  if (inverse) {
    // b is index-symmetric, so FFT(b) is even and FFT(conj(b))[k] is
    // simply conj(FFT(b)[k]) — the forward table serves both directions.
    for (std::size_t k = 0; k < m; ++k) {
      scratch.conv[k] *= std::conj(fft_b_[k]);
    }
  } else {
    for (std::size_t k = 0; k < m; ++k) scratch.conv[k] *= fft_b_[k];
  }
  kernel_.Transform(scratch.conv, /*inverse=*/true);

  const double scale =
      inverse ? 1.0 / (static_cast<double>(m) * static_cast<double>(n_))
              : 1.0 / static_cast<double>(m);
  out.resize(n_);
  if (inverse) {
    for (std::size_t k = 0; k < n_; ++k) {
      out[k] = scratch.conv[k] * scale * std::conj(chirp_[k]);
    }
  } else {
    for (std::size_t k = 0; k < n_; ++k) {
      out[k] = scratch.conv[k] * scale * chirp_[k];
    }
  }
}

void Plan::Forward(std::span<const Complex> in, FftScratch& scratch,
                   std::vector<Complex>& out) const {
  CheckSize(in.size(), n_);
  if (radix2()) {
    out.assign(in.begin(), in.end());
    kernel_.Transform(out, /*inverse=*/false);
    return;
  }
  scratch.conv.assign(kernel_.n, Complex{});
  for (std::size_t k = 0; k < n_; ++k) {
    scratch.conv[k] = in[k] * chirp_[k];
  }
  BluesteinExecute(scratch, /*inverse=*/false, out);
}

void Plan::Inverse(std::span<const Complex> in, FftScratch& scratch,
                   std::vector<Complex>& out) const {
  CheckSize(in.size(), n_);
  if (radix2()) {
    out.assign(in.begin(), in.end());
    kernel_.Transform(out, /*inverse=*/true);
    const double scale = 1.0 / static_cast<double>(n_);
    for (auto& value : out) value *= scale;
    return;
  }
  scratch.conv.assign(kernel_.n, Complex{});
  for (std::size_t k = 0; k < n_; ++k) {
    scratch.conv[k] = in[k] * std::conj(chirp_[k]);
  }
  BluesteinExecute(scratch, /*inverse=*/true, out);
}

void Plan::ForwardReal(std::span<const double> in, FftScratch& scratch,
                       std::vector<Complex>& out) const {
  CheckSize(in.size(), n_);
  if (half_ == nullptr) {
    // Odd or tiny sizes: complexify and take the general path.
    scratch.packed.resize(n_);
    for (std::size_t k = 0; k < n_; ++k) {
      scratch.packed[k] = Complex{in[k], 0.0};
    }
    Forward(scratch.packed, scratch, out);
    return;
  }

  // Fold x[2j], x[2j+1] into z[j] = x[2j] + i*x[2j+1] and transform at
  // half size; the even/odd sub-spectra then separate algebraically:
  //   E[k] = (Z[k] + conj(Z[h-k])) / 2,  O[k] = -i*(Z[k] - conj(Z[h-k])) / 2,
  //   X[k] = E[k] + W^k O[k],  X[k+h] = E[k] - W^k O[k].
  const std::size_t h = n_ / 2;
  scratch.packed.resize(h);
  for (std::size_t j = 0; j < h; ++j) {
    scratch.packed[j] = Complex{in[2 * j], in[2 * j + 1]};
  }
  half_->Forward(scratch.packed, scratch, scratch.half);

  out.resize(n_);
  for (std::size_t k = 0; k < h; ++k) {
    const Complex z_k = scratch.half[k];
    const Complex z_mirror = std::conj(scratch.half[(h - k) % h]);
    const Complex even = 0.5 * (z_k + z_mirror);
    const Complex odd = Complex{0.0, -0.5} * (z_k - z_mirror);
    const Complex cross = real_twiddles_[k] * odd;
    out[k] = even + cross;
    out[k + h] = even - cross;
  }
}

PlanCache& PlanCache::Global() {
  static PlanCache* const cache = new PlanCache;
  return *cache;
}

std::shared_ptr<const Plan> PlanCache::Get(std::size_t n) {
  {
    util::MutexLock lock(mutex_);
    auto it = plans_.find(n);
    if (it != plans_.end()) return it->second;
  }
  // Build outside the lock: construction is trig-heavy and would
  // otherwise serialize every worker behind the first cold size. A
  // racing duplicate is bitwise identical (construction is
  // deterministic), so first-insert-wins loses nothing.
  auto built = std::make_shared<const Plan>(n);
  util::MutexLock lock(mutex_);
  auto [it, inserted] = plans_.emplace(n, std::move(built));
  return it->second;
}

std::size_t PlanCache::cached_plans() const {
  util::MutexLock lock(mutex_);
  return plans_.size();
}

std::shared_ptr<const Plan> GetPlan(std::size_t n) {
  return PlanCache::Global().Get(n);
}

}  // namespace sleepwalk::fft
