#include "sleepwalk/fft/spectrum.h"

#include <cmath>
#include <numbers>
#include <numeric>

#include "sleepwalk/fft/fft.h"

namespace sleepwalk::fft {

namespace {

void RemoveMean(std::vector<double>& series) {
  const double mean = std::accumulate(series.begin(), series.end(), 0.0) /
                      static_cast<double>(series.size());
  for (auto& value : series) value -= mean;
}

// Least-squares removal of a + b*i (closed form over the index grid).
void Detrend(std::vector<double>& series) {
  const auto n = static_cast<double>(series.size());
  if (series.size() < 2) return;
  const double mean_x = (n - 1.0) / 2.0;
  double mean_y = 0.0;
  for (const double v : series) mean_y += v;
  mean_y /= n;
  double sxy = 0.0;
  double sxx = 0.0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    const double dx = static_cast<double>(i) - mean_x;
    sxy += dx * (series[i] - mean_y);
    sxx += dx * dx;
  }
  const double slope = sxx > 0.0 ? sxy / sxx : 0.0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    series[i] -= mean_y + slope * (static_cast<double>(i) - mean_x);
  }
}

void ApplyHann(std::vector<double>& series) {
  const auto n = static_cast<double>(series.size());
  if (series.size() < 2) return;
  for (std::size_t i = 0; i < series.size(); ++i) {
    const double w = 0.5 * (1.0 - std::cos(2.0 * std::numbers::pi *
                                           static_cast<double>(i) /
                                           (n - 1.0)));
    series[i] *= w;
  }
}

}  // namespace

void ComputeSpectrum(std::span<const double> series,
                     const SpectrumOptions& options, FftScratch& scratch,
                     Spectrum& out) {
  const std::size_t n = series.size();
  out.input_size = n;
  out.amplitude.clear();
  out.phase.clear();
  if (n == 0) return;

  scratch.real.assign(series.begin(), series.end());
  if (options.detrend) {
    Detrend(scratch.real);
  } else if (options.remove_mean) {
    RemoveMean(scratch.real);
  }
  if (options.hann_window) ApplyHann(scratch.real);

  // The scratch memoizes the last plan so a worker grinding through
  // same-length blocks never touches the PlanCache mutex.
  if (scratch.plan == nullptr || scratch.plan->size() != n) {
    scratch.plan = GetPlan(n);
  }
  scratch.plan->ForwardReal(scratch.real, scratch, scratch.coeffs);

  const std::size_t bins = n / 2 + 1;
  out.amplitude.resize(bins);
  out.phase.resize(bins);
  for (std::size_t k = 0; k < bins; ++k) {
    out.amplitude[k] = std::abs(scratch.coeffs[k]);
    out.phase[k] = std::arg(scratch.coeffs[k]);
  }
}

Spectrum ComputeSpectrum(std::span<const double> series,
                         const SpectrumOptions& options) {
  FftScratch scratch;
  Spectrum spectrum;
  ComputeSpectrum(series, options, scratch, spectrum);
  return spectrum;
}

Spectrum ComputeSpectrum(std::span<const double> series, bool remove_mean) {
  SpectrumOptions options;
  options.remove_mean = remove_mean;
  return ComputeSpectrum(series, options);
}

std::size_t StrongestBin(const Spectrum& spectrum) noexcept {
  std::size_t best = 0;
  double best_amp = -1.0;
  for (std::size_t k = 1; k < spectrum.size(); ++k) {
    if (spectrum.amplitude[k] > best_amp) {
      best_amp = spectrum.amplitude[k];
      best = k;
    }
  }
  return best;
}

}  // namespace sleepwalk::fft
