#include "sleepwalk/fft/fft.h"

#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

#include "sleepwalk/fft/plan.h"

namespace sleepwalk::fft {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

// Bluestein's chirp-z transform: expresses an arbitrary-n DFT as a
// convolution, evaluated with power-of-two FFTs of size >= 2n-1.
std::vector<Complex> ForwardBluestein(std::span<const Complex> input) {
  const std::size_t n = input.size();
  if (n > std::numeric_limits<std::size_t>::max() / 2) {
    throw std::length_error("fft: Bluestein extension 2n-1 overflows size_t");
  }
  const std::size_t m = detail::NextPowerOfTwoChecked(2 * n - 1);

  // Chirp factors w_k = exp(-i*pi*k^2/n). k^2 mod 2n keeps the angle
  // argument small enough to stay accurate for large k.
  std::vector<Complex> chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    const auto k2 = static_cast<double>(detail::ChirpIndex(k, n));
    const double angle = std::numbers::pi * k2 / static_cast<double>(n);
    chirp[k] = Complex{std::cos(angle), -std::sin(angle)};
  }

  std::vector<Complex> a(m, Complex{});
  for (std::size_t k = 0; k < n; ++k) a[k] = input[k] * chirp[k];

  std::vector<Complex> b(m, Complex{});
  b[0] = std::conj(chirp[0]);
  for (std::size_t k = 1; k < n; ++k) {
    b[k] = std::conj(chirp[k]);
    b[m - k] = b[k];  // circular symmetry for negative lags
  }

  FftRadix2InPlace(a, /*inverse=*/false);
  FftRadix2InPlace(b, /*inverse=*/false);
  for (std::size_t k = 0; k < m; ++k) a[k] *= b[k];
  FftRadix2InPlace(a, /*inverse=*/true);

  std::vector<Complex> output(n);
  const double scale = 1.0 / static_cast<double>(m);
  for (std::size_t k = 0; k < n; ++k) {
    output[k] = a[k] * scale * chirp[k];
  }
  return output;
}

// Thread-local working memory behind the convenience entry points, so
// callers that have not adopted explicit scratch still hit the
// zero-steady-state-allocation path.
FftScratch& LocalScratch() {
  thread_local FftScratch scratch;
  return scratch;
}

}  // namespace

namespace detail {

std::size_t NextPowerOfTwoChecked(std::size_t n) {
  constexpr std::size_t kHighBit =
      std::size_t{1} << (std::numeric_limits<std::size_t>::digits - 1);
  if (n > kHighBit) {
    throw std::length_error("fft: transform size exceeds addressable range");
  }
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::size_t ChirpIndex(std::size_t k, std::size_t n) noexcept {
  const std::size_t modulus = 2 * n;  // callers guarantee 2n fits
#ifdef __SIZEOF_INT128__
  __extension__ using Wide = unsigned __int128;
  return static_cast<std::size_t>((Wide{k} * Wide{k}) % Wide{modulus});
#else
  // Portable fallback: square-by-doubling mod 2n, O(log k) additions.
  std::size_t result = 0;
  std::size_t addend = k % modulus;
  std::size_t times = k;
  while (times != 0) {
    if (times & 1) result = (result + addend) % modulus;
    addend = (addend + addend) % modulus;
    times >>= 1;
  }
  return result;
#endif
}

}  // namespace detail

void FftRadix2InPlace(std::span<Complex> data, bool inverse) {
  const std::size_t n = data.size();
  if (n <= 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? kTwoPi : -kTwoPi) / static_cast<double>(len);
    const Complex wlen{std::cos(angle), std::sin(angle)};
    for (std::size_t i = 0; i < n; i += len) {
      Complex w{1.0, 0.0};
      for (std::size_t j = 0; j < len / 2; ++j) {
        const Complex u = data[i + j];
        const Complex v = data[i + j + len / 2] * w;
        data[i + j] = u + v;
        data[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

std::vector<Complex> Forward(std::span<const Complex> input) {
  if (input.empty()) return {};
  std::vector<Complex> output;
  GetPlan(input.size())->Forward(input, LocalScratch(), output);
  return output;
}

std::vector<Complex> ForwardReal(std::span<const double> input) {
  if (input.empty()) return {};
  std::vector<Complex> output;
  GetPlan(input.size())->ForwardReal(input, LocalScratch(), output);
  return output;
}

std::vector<Complex> Inverse(std::span<const Complex> input) {
  if (input.empty()) return {};
  std::vector<Complex> output;
  GetPlan(input.size())->Inverse(input, LocalScratch(), output);
  return output;
}

std::vector<Complex> ForwardPlanless(std::span<const Complex> input) {
  if (input.empty()) return {};
  if (IsPowerOfTwo(input.size())) {
    std::vector<Complex> data(input.begin(), input.end());
    FftRadix2InPlace(data, /*inverse=*/false);
    return data;
  }
  return ForwardBluestein(input);
}

std::vector<Complex> ForwardRealPlanless(std::span<const double> input) {
  std::vector<Complex> data(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    data[i] = Complex{input[i], 0.0};
  }
  return ForwardPlanless(data);
}

std::vector<Complex> InversePlanless(std::span<const Complex> input) {
  const std::size_t n = input.size();
  if (n == 0) return {};
  // Inverse via conjugation: IDFT(x) = conj(DFT(conj(x))) / n.
  std::vector<Complex> data(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = std::conj(input[i]);
  auto transformed = ForwardPlanless(data);
  const double scale = 1.0 / static_cast<double>(n);
  for (auto& value : transformed) value = std::conj(value) * scale;
  return transformed;
}

std::vector<Complex> DftNaive(std::span<const Complex> input) {
  const std::size_t n = input.size();
  std::vector<Complex> output(n, Complex{});
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t m = 0; m < n; ++m) {
      const double angle = -kTwoPi * static_cast<double>(k * m) /
                           static_cast<double>(n);
      output[k] += input[m] * Complex{std::cos(angle), std::sin(angle)};
    }
  }
  return output;
}

}  // namespace sleepwalk::fft
