// Discrete Fourier transforms.
//
// The diurnal detector (paper §2.2) needs the full amplitude spectrum of an
// 11-minute availability timeseries whose length is rarely a power of two
// (e.g. 4581 samples for 35 days). We provide:
//   * an iterative radix-2 Cooley-Tukey FFT for power-of-two sizes,
//   * Bluestein's chirp-z algorithm for arbitrary sizes, and
//   * a naive O(n^2) DFT used as the test oracle.
// Conventions match the paper: forward transform
//   alpha_k = sum_m a_m * exp(-2*pi*i*m*k/n), unnormalized;
// the inverse divides by n so Inverse(Forward(x)) == x.
#ifndef SLEEPWALK_FFT_FFT_H_
#define SLEEPWALK_FFT_FFT_H_

#include <complex>
#include <span>
#include <vector>

namespace sleepwalk::fft {

using Complex = std::complex<double>;

/// True when n is a power of two (n >= 1).
constexpr bool IsPowerOfTwo(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

/// In-place radix-2 FFT. data.size() must be a power of two.
/// inverse=true computes the unnormalized inverse (conjugate transform);
/// callers wanting a true inverse must divide by n afterwards.
void FftRadix2InPlace(std::span<Complex> data, bool inverse);

/// Forward DFT of arbitrary-length complex input. Dispatches to radix-2
/// when possible, Bluestein otherwise.
std::vector<Complex> Forward(std::span<const Complex> input);

/// Forward DFT of real input.
std::vector<Complex> ForwardReal(std::span<const double> input);

/// Normalized inverse DFT (Inverse(Forward(x)) == x up to rounding).
std::vector<Complex> Inverse(std::span<const Complex> input);

/// Naive O(n^2) DFT; the correctness oracle for tests.
std::vector<Complex> DftNaive(std::span<const Complex> input);

}  // namespace sleepwalk::fft

#endif  // SLEEPWALK_FFT_FFT_H_
