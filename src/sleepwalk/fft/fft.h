// Discrete Fourier transforms.
//
// The diurnal detector (paper §2.2) needs the full amplitude spectrum of an
// 11-minute availability timeseries whose length is rarely a power of two
// (e.g. 4581 samples for 35 days). We provide:
//   * an iterative radix-2 Cooley-Tukey FFT for power-of-two sizes,
//   * Bluestein's chirp-z algorithm for arbitrary sizes, and
//   * a naive O(n^2) DFT used as the test oracle.
// Conventions match the paper: forward transform
//   alpha_k = sum_m a_m * exp(-2*pi*i*m*k/n), unnormalized;
// the inverse divides by n so Inverse(Forward(x)) == x.
//
// Two implementation tiers share these conventions:
//   * fft::Plan (plan.h) — precomputed tables, cached per size, zero
//     steady-state allocation. The convenience entry points below
//     (Forward/ForwardReal/Inverse) route through the process-wide
//     PlanCache with a thread-local scratch, so every caller gets the
//     fast path without managing plans.
//   * the *Planless variants — the original self-contained kernels that
//     recompute twiddles and chirps per call. They remain the
//     plan-independent reference for property tests and the "before"
//     side of bench/fft_perf.
#ifndef SLEEPWALK_FFT_FFT_H_
#define SLEEPWALK_FFT_FFT_H_

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace sleepwalk::fft {

using Complex = std::complex<double>;

/// True when n is a power of two (n >= 1).
constexpr bool IsPowerOfTwo(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

/// In-place radix-2 FFT. data.size() must be a power of two.
/// inverse=true computes the unnormalized inverse (conjugate transform);
/// callers wanting a true inverse must divide by n afterwards.
void FftRadix2InPlace(std::span<Complex> data, bool inverse);

/// Forward DFT of arbitrary-length complex input. Dispatches through the
/// process-wide PlanCache (plan.h) with a thread-local scratch.
std::vector<Complex> Forward(std::span<const Complex> input);

/// Forward DFT of real input; even sizes take the packed half-size path.
std::vector<Complex> ForwardReal(std::span<const double> input);

/// Normalized inverse DFT (Inverse(Forward(x)) == x up to rounding).
std::vector<Complex> Inverse(std::span<const Complex> input);

/// Plan-free forward DFT: recomputes twiddles/chirp every call. Reference
/// baseline for property tests and bench/fft_perf.
std::vector<Complex> ForwardPlanless(std::span<const Complex> input);

/// Plan-free forward DFT of real input (complexify + ForwardPlanless).
std::vector<Complex> ForwardRealPlanless(std::span<const double> input);

/// Plan-free normalized inverse via the conjugate trick (two passes).
std::vector<Complex> InversePlanless(std::span<const Complex> input);

/// Naive O(n^2) DFT; the correctness oracle for tests.
std::vector<Complex> DftNaive(std::span<const Complex> input);

namespace detail {

/// Smallest power of two >= n. Throws std::length_error when that power
/// does not fit in std::size_t (n > 2^63 on 64-bit) instead of spinning
/// the old unguarded loop forever on a wrapped shift.
std::size_t NextPowerOfTwoChecked(std::size_t n);

/// Bluestein chirp exponent (k * k) % (2 * n), computed in widened
/// arithmetic so k*k cannot wrap even when n approaches 2^32 (where the
/// naive 64-bit product overflows long before memory does).
std::size_t ChirpIndex(std::size_t k, std::size_t n) noexcept;

}  // namespace detail

}  // namespace sleepwalk::fft

#endif  // SLEEPWALK_FFT_FFT_H_
