// Goertzel's algorithm: O(n) evaluation of a single DFT bin.
//
// When a caller only needs the diurnal bin (k = N_d) and its harmonics —
// e.g. streaming classification where the full spectrum is not required —
// Goertzel is far cheaper than a full FFT. bench/fft_perf quantifies the
// tradeoff, including the bin count at which a planned FFT wins
// (DESIGN.md §5, §10).
#ifndef SLEEPWALK_FFT_GOERTZEL_H_
#define SLEEPWALK_FFT_GOERTZEL_H_

#include <complex>
#include <cstddef>
#include <span>

namespace sleepwalk::fft {

/// Computes DFT bin k of a real input series with the same convention as
/// Forward(): alpha_k = sum_m x_m exp(-2*pi*i*m*k/n).
std::complex<double> Goertzel(std::span<const double> input, std::size_t k);

/// Evaluates several DFT bins in one pass over the input: the quick
/// screen needs 3 bins (daily, daily+1, 2*daily), and walking the series
/// once instead of once per bin keeps it memory-bound rather than
/// cache-miss-bound on long campaigns. Each bin's recurrence performs
/// the exact arithmetic of the single-bin Goertzel in the same order, so
/// out[i] is bitwise identical to Goertzel(input, bins[i]).
/// `out.size()` must be >= `bins.size()`.
void GoertzelMany(std::span<const double> input,
                  std::span<const std::size_t> bins,
                  std::span<std::complex<double>> out);

}  // namespace sleepwalk::fft

#endif  // SLEEPWALK_FFT_GOERTZEL_H_
