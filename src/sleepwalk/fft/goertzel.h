// Goertzel's algorithm: O(n) evaluation of a single DFT bin.
//
// When a caller only needs the diurnal bin (k = N_d) and its harmonics —
// e.g. streaming classification where the full spectrum is not required —
// Goertzel is far cheaper than a full FFT. bench/micro_perf quantifies the
// tradeoff (DESIGN.md §5).
#ifndef SLEEPWALK_FFT_GOERTZEL_H_
#define SLEEPWALK_FFT_GOERTZEL_H_

#include <complex>
#include <span>

namespace sleepwalk::fft {

/// Computes DFT bin k of a real input series with the same convention as
/// Forward(): alpha_k = sum_m x_m exp(-2*pi*i*m*k/n).
std::complex<double> Goertzel(std::span<const double> input, std::size_t k);

}  // namespace sleepwalk::fft

#endif  // SLEEPWALK_FFT_GOERTZEL_H_
