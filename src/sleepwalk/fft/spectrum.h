// Amplitude/phase spectrum helpers on top of the raw transforms.
#ifndef SLEEPWALK_FFT_SPECTRUM_H_
#define SLEEPWALK_FFT_SPECTRUM_H_

#include <complex>
#include <span>
#include <vector>

#include "sleepwalk/fft/plan.h"

namespace sleepwalk::fft {

/// One-sided spectrum of a real series: amplitude and phase for bins
/// k in [0, n/2]. Bin 0 is DC.
struct Spectrum {
  std::vector<double> amplitude;  ///< |alpha_k| for k in [0, n/2].
  std::vector<double> phase;      ///< arg(alpha_k), radians in [-pi, pi].
  std::size_t input_size = 0;     ///< n, the number of time samples.

  /// Number of one-sided bins (n/2 + 1).
  std::size_t size() const noexcept { return amplitude.size(); }

  /// Frequency of bin k in cycles per full observation window.
  /// With N_d observation days, bin N_d is 1 cycle/day.
  double CyclesPerWindow(std::size_t k) const noexcept {
    return static_cast<double>(k);
  }

  /// Frequency of bin k in Hz given the sampling period in seconds
  /// (paper: k / (R*n) with R = 660 s).
  double FrequencyHz(std::size_t k, double sample_period_sec) const noexcept {
    return static_cast<double>(k) /
           (sample_period_sec * static_cast<double>(input_size));
  }
};

/// Preprocessing applied before the transform.
struct SpectrumOptions {
  /// Subtract the series mean so DC leakage does not mask nearby bins
  /// (the detector always excludes bin 0; this also suppresses leakage
  /// from a large constant offset).
  bool remove_mean = true;
  /// Subtract the least-squares linear trend as well. §2.2 screens
  /// non-stationary blocks out; detrending is the milder alternative
  /// for slightly-trending series.
  bool detrend = false;
  /// Apply a Hann window. Reduces leakage from non-integer-period
  /// components at the cost of widening each peak (amplitudes shrink by
  /// the window's coherent gain, 0.5).
  bool hann_window = false;
};

/// Computes the one-sided spectrum of a real series into `out`,
/// transforming through the plan cache with caller-owned scratch. With
/// warm scratch/output capacity the call performs no heap allocation —
/// this is the analysis hot loop's entry point.
void ComputeSpectrum(std::span<const double> series,
                     const SpectrumOptions& options, FftScratch& scratch,
                     Spectrum& out);

/// Allocating convenience wrapper.
Spectrum ComputeSpectrum(std::span<const double> series,
                         const SpectrumOptions& options);

/// Back-compatible overload: mean removal only.
Spectrum ComputeSpectrum(std::span<const double> series,
                         bool remove_mean = true);

/// Index of the largest amplitude among bins [1, n/2] (DC excluded).
/// Returns 0 for series with fewer than 2 bins.
std::size_t StrongestBin(const Spectrum& spectrum) noexcept;

}  // namespace sleepwalk::fft

#endif  // SLEEPWALK_FFT_SPECTRUM_H_
