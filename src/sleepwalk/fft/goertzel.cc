#include "sleepwalk/fft/goertzel.h"

#include <cmath>
#include <numbers>

namespace sleepwalk::fft {

std::complex<double> Goertzel(std::span<const double> input, std::size_t k) {
  const std::size_t n = input.size();
  if (n == 0) return {};
  const double omega =
      2.0 * std::numbers::pi * static_cast<double>(k) / static_cast<double>(n);
  const double coeff = 2.0 * std::cos(omega);
  double s_prev = 0.0;
  double s_prev2 = 0.0;
  for (const double x : input) {
    const double s = x + coeff * s_prev - s_prev2;
    s_prev2 = s_prev;
    s_prev = s;
  }
  // Phase-correct extraction for the forward (negative exponent)
  // convention used by Forward(): X(k) = e^{j*omega}*s_{N-1} - s_{N-2}.
  const double real = s_prev * std::cos(omega) - s_prev2;
  const double imag = s_prev * std::sin(omega);
  return {real, imag};
}

}  // namespace sleepwalk::fft
