#include "sleepwalk/fft/goertzel.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <numbers>

namespace sleepwalk::fft {

namespace {

// Chunk width for GoertzelMany: enough for the quick screen's 3 bins
// (and any plausible harmonic set) to run in one input pass with all
// state in registers/stack, while keeping the function allocation-free
// for arbitrarily long bin lists.
constexpr std::size_t kManyChunk = 8;

}  // namespace

std::complex<double> Goertzel(std::span<const double> input, std::size_t k) {
  const std::size_t n = input.size();
  if (n == 0) return {};
  const double omega =
      2.0 * std::numbers::pi * static_cast<double>(k) / static_cast<double>(n);
  const double coeff = 2.0 * std::cos(omega);
  double s_prev = 0.0;
  double s_prev2 = 0.0;
  for (const double x : input) {
    const double s = x + coeff * s_prev - s_prev2;
    s_prev2 = s_prev;
    s_prev = s;
  }
  // Phase-correct extraction for the forward (negative exponent)
  // convention used by Forward(): X(k) = e^{j*omega}*s_{N-1} - s_{N-2}.
  const double real = s_prev * std::cos(omega) - s_prev2;
  const double imag = s_prev * std::sin(omega);
  return {real, imag};
}

void GoertzelMany(std::span<const double> input,
                  std::span<const std::size_t> bins,
                  std::span<std::complex<double>> out) {
  const std::size_t n = input.size();
  if (n == 0) {
    for (std::size_t i = 0; i < bins.size(); ++i) out[i] = {};
    return;
  }

  // Each chunk of bins shares one walk over the input. The per-bin
  // recurrence is the exact expression of Goertzel() evaluated in the
  // same order, so results are bitwise identical to the one-bin calls.
  for (std::size_t base = 0; base < bins.size(); base += kManyChunk) {
    const std::size_t count = std::min(kManyChunk, bins.size() - base);
    std::array<double, kManyChunk> omega{};
    std::array<double, kManyChunk> coeff{};
    std::array<double, kManyChunk> s_prev{};
    std::array<double, kManyChunk> s_prev2{};
    for (std::size_t i = 0; i < count; ++i) {
      omega[i] = 2.0 * std::numbers::pi * static_cast<double>(bins[base + i]) /
                 static_cast<double>(n);
      coeff[i] = 2.0 * std::cos(omega[i]);
    }
    for (const double x : input) {
      for (std::size_t i = 0; i < count; ++i) {
        const double s = x + coeff[i] * s_prev[i] - s_prev2[i];
        s_prev2[i] = s_prev[i];
        s_prev[i] = s;
      }
    }
    for (std::size_t i = 0; i < count; ++i) {
      const double real = s_prev[i] * std::cos(omega[i]) - s_prev2[i];
      const double imag = s_prev[i] * std::sin(omega[i]);
      out[base + i] = {real, imag};
    }
  }
}

}  // namespace sleepwalk::fft
