// Policy analysis: which external factors correlate with diurnal
// Internet use? (paper §2.4, §5.4)
//
// Measures a small world, aggregates diurnal fractions per country,
// joins CIA-Factbook-style indicators, and runs the paper's ANOVA:
// single factors plus pairwise interactions.
//
// Build & run:  ./build/examples/policy_anova
#include <iostream>
#include <map>

#include "sleepwalk/sleepwalk.h"

int main() {
  using namespace sleepwalk;
  std::cout << "measuring a simulated Internet to test policy factors...\n";

  sim::WorldConfig world_config;
  world_config.total_blocks = 2500;
  world_config.seed = 0x907a;
  world_config.min_blocks_per_country = 30;
  const auto world = sim::SimWorld::Generate(world_config);
  auto transport = world.MakeTransport(0x907a);

  std::vector<core::BlockTarget> targets;
  for (const auto& block : world.blocks()) {
    targets.push_back({block.spec.block, sim::EverActiveOctets(block.spec),
                       sim::TrueAvailability(block.spec, 13 * 3600)});
  }
  core::AnalyzerConfig config;
  const probing::RoundScheduler scheduler{config.schedule};
  const auto result = core::RunCampaign(
      std::move(targets), *transport, scheduler.RoundsForDays(7), config);

  // Country-level aggregation (here from generator tags; the benches do
  // the full geolocation join).
  struct Agg {
    int blocks = 0;
    int diurnal = 0;
  };
  std::map<std::string_view, Agg> per_country;
  for (std::size_t i = 0; i < world.blocks().size(); ++i) {
    const auto& analysis = result.analyses[i];
    if (!analysis.probed || analysis.observed_days < 2) continue;
    auto& agg = per_country[world.blocks()[i].country->code];
    ++agg.blocks;
    if (analysis.diurnal.IsStrict()) ++agg.diurnal;
  }

  std::vector<double> diurnal_fraction;
  std::vector<double> gdp;
  std::vector<double> electricity;
  std::vector<double> users_per_host;
  for (const auto& [code, agg] : per_country) {
    if (agg.blocks < 20) continue;
    const auto* info = world::FindCountry(code);
    if (info == nullptr) continue;
    diurnal_fraction.push_back(static_cast<double>(agg.diurnal) /
                               agg.blocks);
    gdp.push_back(info->gdp_per_capita_usd / 1000.0);
    electricity.push_back(info->electricity_kwh_per_capita / 1000.0);
    users_per_host.push_back(info->internet_users_per_host);
  }
  std::cout << "countries with enough measured blocks: "
            << diurnal_fraction.size() << "\n\n";

  // Single factors.
  report::TextTable singles{{"factor", "p-value", "verdict"}};
  const auto verdict = [](double p) {
    return p < 0.01 ? "strongly significant"
           : p < 0.05 ? "significant" : "not significant";
  };
  const double p_gdp = stats::SingleFactorPValue(diurnal_fraction, gdp);
  const double p_elec =
      stats::SingleFactorPValue(diurnal_fraction, electricity);
  const double p_users =
      stats::SingleFactorPValue(diurnal_fraction, users_per_host);
  singles.AddRow({"GDP per capita", report::Scientific(p_gdp, 2),
                  verdict(p_gdp)});
  singles.AddRow({"electricity per capita", report::Scientific(p_elec, 2),
                  verdict(p_elec)});
  singles.AddRow({"Internet users per host",
                  report::Scientific(p_users, 2), verdict(p_users)});
  singles.Print(std::cout);

  // A pairwise interaction, as in the paper's Table 5 off-diagonals.
  const double p_pair = stats::PairInteractionPValue(
      diurnal_fraction, gdp, electricity);
  std::cout << "\nGDP x electricity interaction: p = "
            << report::Scientific(p_pair, 2) << " (" << verdict(p_pair)
            << ")\n";

  // The directional story: poorer countries sleep more.
  const double r = stats::PearsonCorrelation(gdp, diurnal_fraction);
  std::cout << "\ncorrelation(GDP, diurnal fraction) = "
            << report::Fixed(r, 3)
            << (r < -0.3 ? "  -> wealthier countries are more always-on "
                           "(the paper's central finding)"
                         : "")
            << "\n";
  return 0;
}
